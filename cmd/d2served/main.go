// Command d2served runs the coloring-as-a-service daemon: the warm-session
// server of internal/serve behind an HTTP/JSON endpoint.
//
//	POST /v1/do      {"op":"open"|"color"|"verify"|"recolor"|"stats"|"close", ...}
//	GET  /v1/stats   server and per-session counters
//	GET  /healthz    liveness
//
// Sessions hold a built CSR plus resident warm kernels (trial runner,
// verifier, repair session), bounded by -budget with LRU eviction; queued
// same-session requests are executed in one batching window. A -debug
// listener exposes net/http/pprof and an expvar snapshot of the serve
// counters for live inspection.
//
// Example:
//
//	d2served -addr :8080 -debug :6060 -budget 2147483648
//	d2served -selfcheck    # loopback smoke: open/color/verify/recolor/stats, then exit
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"d2color/internal/graph"
	"d2color/internal/repair"
	"d2color/internal/serve"

	// Register every default algorithm instance.
	_ "d2color/internal/baseline"
	_ "d2color/internal/detd2"
	_ "d2color/internal/mis"
	_ "d2color/internal/polylogd2"
	_ "d2color/internal/randd2"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "d2served:", err)
		os.Exit(1)
	}
}

// publishOnce guards the expvar registration: expvar.Publish panics on
// duplicate names, and tests call run more than once per process.
var publishOnce sync.Once

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("d2served", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		addr      = fs.String("addr", "127.0.0.1:8080", "serve address for the request API")
		debug     = fs.String("debug", "", "debug address for pprof + expvar (empty: disabled)")
		budget    = fs.Int64("budget", 0, "resident-bytes budget across cached sessions (0: unlimited)")
		batchMax  = fs.Int("batchmax", 0, "max requests per dispatch window (0: default 64)")
		unbatched = fs.Bool("unbatched", false, "disable request batching (control arm)")
		mode      = fs.String("mode", "local", "recolor repair mode: local | global")
		parallel  = fs.Bool("parallel", false, "use the sharded engine for session kernels")
		workers   = fs.Int("workers", 0, "sharded engine workers (0: GOMAXPROCS)")
		selfcheck = fs.Bool("selfcheck", false, "serve on a loopback port, run a request cycle against it, and exit")
		drainWait = fs.Duration("drain", 5*time.Second, "graceful-drain deadline on SIGTERM/SIGINT (in-flight work is hard-canceled past it)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var rmode repair.Mode
	switch *mode {
	case "local":
		rmode = repair.ModeLocal
	case "global":
		rmode = repair.ModeGlobal
	default:
		return fmt.Errorf("unknown -mode %q (want local or global)", *mode)
	}

	srv := serve.NewServer(serve.Options{
		ResidentBudget: *budget,
		BatchMax:       *batchMax,
		Unbatched:      *unbatched,
		Parallel:       *parallel,
		Workers:        *workers,
		RepairMode:     rmode,
	})
	defer srv.Close()

	if *debug != "" {
		publishOnce.Do(func() {
			expvar.Publish("d2serve", expvar.Func(func() any { return srv.Stats() }))
		})
		// pprof and expvar register on the default mux; serve it on its own
		// listener so the request API stays separate.
		go func() {
			if err := http.ListenAndServe(*debug, nil); err != nil {
				fmt.Fprintf(os.Stderr, "d2served: debug listener: %v\n", err)
			}
		}()
		fmt.Fprintf(out, "debug listening on %s (pprof at /debug/pprof/, counters at /debug/vars)\n", *debug)
	}

	if *selfcheck {
		return runSelfcheck(srv, out)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: serve.NewHandler(srv)}
	fmt.Fprintf(out, "serving on %s\n", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	// Graceful drain, in order: Drain flips /healthz to 503 "draining" and
	// rejects new work immediately, finishes (or, past -drain, hard-cancels)
	// every in-flight request, and closes every session's kernels; only then
	// does the HTTP listener shut down — so a request that slipped in before
	// the signal still gets its real answer, not a connection reset.
	fmt.Fprintln(out, "draining")
	dctx, dcancel := context.WithTimeout(context.Background(), *drainWait)
	defer dcancel()
	if err := srv.Drain(dctx); err != nil {
		fmt.Fprintf(out, "drain deadline passed, in-flight work canceled: %v\n", err)
	}
	sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		return err
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Fprintln(out, "drained, exiting")
	return nil
}

// runSelfcheck serves on an ephemeral loopback port and drives one full
// request cycle through the HTTP transport — the end-to-end smoke a deploy
// can run before pointing real traffic at a build.
func runSelfcheck(srv *serve.Server, out io.Writer) error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: serve.NewHandler(srv)}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	defer hs.Close()

	tr := serve.NewHTTPTransport("http://"+ln.Addr().String(), nil)
	spec := graph.GeneratorSpec{Kind: "ba", N: 2000, Degree: 3, Seed: 1}
	var resp serve.Response
	if err := tr.Do(&serve.Request{Op: serve.OpOpen, Session: "selfcheck", Spec: &spec}, &resp); err != nil {
		return fmt.Errorf("open: %w", err)
	}
	fmt.Fprintf(out, "open: n=%d m=%d est=%d bytes\n", resp.Nodes, resp.Edges, resp.EstimatedBytes)
	if err := tr.Do(&serve.Request{Op: serve.OpColor, Session: "selfcheck", Algorithm: "relaxed", Seed: 1}, &resp); err != nil {
		return fmt.Errorf("color: %w", err)
	}
	fmt.Fprintf(out, "color: alg=%s palette=%d colors=%d valid=%v hash=%016x\n",
		resp.Algorithm, resp.PaletteSize, resp.ColorsUsed, resp.Valid, resp.Hash)
	if err := tr.Do(&serve.Request{Op: serve.OpVerify, Session: "selfcheck"}, &resp); err != nil {
		return fmt.Errorf("verify: %w", err)
	}
	if !resp.Valid {
		return fmt.Errorf("selfcheck: coloring failed verification")
	}
	if err := tr.Do(&serve.Request{Op: serve.OpRecolor, Session: "selfcheck", Corrupt: 8, Seed: 2}, &resp); err != nil {
		return fmt.Errorf("recolor: %w", err)
	}
	fmt.Fprintf(out, "recolor: dirty=%d ball=%d recolored=%d complete=%v\n",
		resp.Dirty, resp.Ball, resp.Recolored, resp.Complete)
	if err := tr.Do(&serve.Request{Op: serve.OpVerify, Session: "selfcheck"}, &resp); err != nil {
		return fmt.Errorf("verify after recolor: %w", err)
	}
	if !resp.Valid {
		return fmt.Errorf("selfcheck: post-repair coloring failed verification")
	}
	if err := tr.Do(&serve.Request{Op: serve.OpStats}, &resp); err != nil {
		return fmt.Errorf("stats: %w", err)
	}
	st := resp.Stats
	fmt.Fprintf(out, "stats: sessions=%d requests=%d resident=%d bytes\n",
		len(st.Sessions), st.Requests, st.ResidentEstimate)
	fmt.Fprintln(out, "selfcheck ok")
	return nil
}
