package main

import (
	"strings"
	"testing"
)

func TestSelfcheck(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-selfcheck"}, &sb); err != nil {
		t.Fatalf("selfcheck: %v\noutput:\n%s", err, sb.String())
	}
	out := sb.String()
	for _, want := range []string{"open:", "color:", "valid=true", "recolor:", "stats:", "selfcheck ok"} {
		if !strings.Contains(out, want) {
			t.Errorf("selfcheck output missing %q:\n%s", want, out)
		}
	}
}

func TestSelfcheckGlobalUnbatched(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-selfcheck", "-mode", "global", "-unbatched"}, &sb); err != nil {
		t.Fatalf("selfcheck (global, unbatched): %v\noutput:\n%s", err, sb.String())
	}
}

func TestBadMode(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-mode", "sideways"}, &sb); err == nil {
		t.Fatal("want error for unknown -mode")
	}
}
