package main

import (
	"errors"
	"io"
	"net/http"
	"os"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"d2color/internal/graph"
	"d2color/internal/serve"
)

// syncWriter is a concurrency-safe sink for run's output: the daemon
// goroutine writes while the test polls for the bound address and the drain
// markers.
type syncWriter struct {
	mu sync.Mutex
	b  strings.Builder
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.Write(p)
}

func (w *syncWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.String()
}

var servingAddr = regexp.MustCompile(`serving on (\S+)`)

// TestSigtermDrainsUnderLoad is the end-to-end drain acceptance: a real
// SIGTERM against the daemon while kernel work is in flight must flip
// /healthz to 503 "draining", let the in-flight requests finish (or cancel
// them past -drain), shut the listener down, and return nil — the exit-0,
// no-connection-reset path a rolling deploy depends on.
func TestSigtermDrainsUnderLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("drives a real daemon with n=30k kernel runs")
	}
	out := &syncWriter{}
	done := make(chan error, 1)
	go func() { done <- run([]string{"-addr", "127.0.0.1:0", "-drain", "30s"}, out) }()

	var addr string
	deadline := time.Now().Add(10 * time.Second)
	for addr == "" {
		if m := servingAddr.FindStringSubmatch(out.String()); m != nil {
			addr = m[1]
		} else if time.Now().After(deadline) {
			t.Fatalf("daemon never reported its address:\n%s", out.String())
		} else {
			time.Sleep(5 * time.Millisecond)
		}
	}

	tr := serve.NewHTTPTransport("http://"+addr, nil)
	spec := graph.GeneratorSpec{Kind: "gnp-avg", N: 30000, P: 8, Seed: 3}
	var resp serve.Response
	if err := tr.Do(&serve.Request{Op: serve.OpOpen, Session: "d", Spec: &spec}, &resp); err != nil {
		t.Fatalf("open: %v", err)
	}

	// Two slow colorings in flight when the signal lands. Under the generous
	// -drain they must complete with real answers, not resets or cancels.
	inflight := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func(seed uint64) {
			w := serve.NewHTTPTransport("http://"+addr, nil)
			var r serve.Response
			inflight <- w.Do(&serve.Request{Op: serve.OpColor, Session: "d", Seed: seed}, &r)
		}(uint64(7 + i))
	}
	for {
		if err := tr.Do(&serve.Request{Op: serve.OpStats}, &resp); err != nil {
			t.Fatalf("stats: %v", err)
		}
		if resp.Stats.Inflight > 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatalf("kill: %v", err)
	}

	// The drain window is open while the colorings run: /healthz must report
	// 503 "draining" in it (the listener still answers — only after Drain
	// returns does the HTTP shutdown start).
	sawDraining := false
	for !sawDraining {
		hr, err := http.Get("http://" + addr + "/healthz")
		if err != nil {
			break // listener already gone: too late to observe
		}
		body, _ := io.ReadAll(hr.Body)
		hr.Body.Close()
		if hr.StatusCode == http.StatusServiceUnavailable && strings.Contains(string(body), "draining") {
			sawDraining = true
		} else if hr.StatusCode == http.StatusOK {
			time.Sleep(time.Millisecond) // signal not yet processed
		} else {
			t.Fatalf("healthz during drain: status %d body %q", hr.StatusCode, body)
		}
	}
	if !sawDraining {
		t.Error("never observed /healthz 503 draining during the drain window")
	}

	for i := 0; i < 2; i++ {
		if err := <-inflight; err != nil {
			t.Errorf("in-flight coloring %d under graceful drain: %v", i, err)
		}
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v, want nil after graceful drain", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not exit after SIGTERM")
	}
	for _, want := range []string{"draining", "drained, exiting"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

// TestSigtermHardCancelPastDeadline drives the other drain arm: with a tiny
// -drain budget the in-flight run is hard-canceled (ErrCanceled over the
// wire) and the daemon still exits cleanly — stuck work cannot wedge a
// shutdown.
func TestSigtermHardCancelPastDeadline(t *testing.T) {
	if testing.Short() {
		t.Skip("drives a real daemon with n=30k kernel runs")
	}
	out := &syncWriter{}
	done := make(chan error, 1)
	go func() { done <- run([]string{"-addr", "127.0.0.1:0", "-drain", "1ms"}, out) }()

	var addr string
	deadline := time.Now().Add(10 * time.Second)
	for addr == "" {
		if m := servingAddr.FindStringSubmatch(out.String()); m != nil {
			addr = m[1]
		} else if time.Now().After(deadline) {
			t.Fatalf("daemon never reported its address:\n%s", out.String())
		} else {
			time.Sleep(5 * time.Millisecond)
		}
	}

	tr := serve.NewHTTPTransport("http://"+addr, nil)
	spec := graph.GeneratorSpec{Kind: "gnp-avg", N: 30000, P: 8, Seed: 3}
	var resp serve.Response
	if err := tr.Do(&serve.Request{Op: serve.OpOpen, Session: "d", Spec: &spec}, &resp); err != nil {
		t.Fatalf("open: %v", err)
	}
	inflight := make(chan error, 1)
	go func() {
		w := serve.NewHTTPTransport("http://"+addr, nil)
		var r serve.Response
		inflight <- w.Do(&serve.Request{Op: serve.OpColor, Session: "d", Seed: 9}, &r)
	}()
	for {
		if err := tr.Do(&serve.Request{Op: serve.OpStats}, &resp); err != nil {
			t.Fatalf("stats: %v", err)
		}
		if resp.Stats.Inflight > 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatalf("kill: %v", err)
	}
	if err := <-inflight; !errors.Is(err, serve.ErrCanceled) {
		t.Errorf("in-flight coloring past the drain deadline: %v, want ErrCanceled", err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v, want nil after hard-cancel drain", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not exit after SIGTERM")
	}
	if !strings.Contains(out.String(), "drain deadline passed") {
		t.Errorf("output missing the hard-cancel marker:\n%s", out.String())
	}
}
