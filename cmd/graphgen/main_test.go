package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunEdgesAndStats(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-graph", "grid", "-n", "4", "-m", "5", "-edges"}, &buf); err != nil {
		t.Fatalf("grid: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "#") {
		t.Error("stats header missing")
	}
	// 4x5 grid has 4*4 + 3*5 = 31 edges.
	edgeLines := 0
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if !strings.HasPrefix(line, "#") && line != "" {
			edgeLines++
		}
	}
	if edgeLines != 31 {
		t.Errorf("edge lines = %d, want 31", edgeLines)
	}
}

func TestRunStatsOnly(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-graph", "hoffman-singleton"}, &buf); err != nil {
		t.Fatalf("hoffman-singleton: %v", err)
	}
	if !strings.Contains(buf.String(), "Δ=7") {
		t.Errorf("stats should report Δ=7:\n%s", buf.String())
	}
}

func TestRunErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-graph", "bogus"}, &buf); err == nil {
		t.Error("unknown generator should error")
	}
	if err := run([]string{"-notaflag"}, &buf); err == nil {
		t.Error("unknown flag should error")
	}
}
