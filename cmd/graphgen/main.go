// Command graphgen generates one of the workload graphs and prints either a
// structural summary or the full edge list, so that the workloads used by the
// experiments can be inspected or exported to other tools.
//
// For generator kinds with a closed-form expected size, graphgen first
// prints the estimated resident bytes of simulating on the graph — the CSR,
// the 32-bit engine's message plane and inbox arena, and a bit-packed
// coloring — before paying the generation cost, so a 10⁷-node spec can be
// sized against a machine's memory in milliseconds.
//
// Example:
//
//	graphgen -graph unitdisk -n 200 -p 0.15 -stats
//	graphgen -graph gnp-avg -n 10000000 -p 8 -estimate -stats=false
//	graphgen -graph cliquechain -n 5 -m 8 -edges > chain.txt
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"math"
	"os"

	"d2color/internal/graph"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "graphgen:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("graphgen", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		kind     = fs.String("graph", "gnp", "graph generator kind (see cmd/d2color)")
		n        = fs.Int("n", 256, "primary size parameter")
		m        = fs.Int("m", 0, "secondary size parameter")
		degree   = fs.Int("degree", 8, "degree-like parameter")
		p        = fs.Float64("p", 0.05, "probability / radius parameter")
		seed     = fs.Int64("seed", 1, "random seed")
		edges    = fs.Bool("edges", false, "print the edge list (u v per line)")
		stats    = fs.Bool("stats", true, "print structural statistics")
		estimate = fs.Bool("estimate", true, "print the estimated resident bytes of simulating on the spec before generating")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	spec := graph.GeneratorSpec{Kind: *kind, N: *n, M: *m, Degree: *degree, P: *p, Seed: *seed}
	w := bufio.NewWriter(out)
	defer w.Flush()
	if *estimate {
		if en, em, ok := expectedSize(spec); ok {
			printResidentEstimate(w, spec, en, em)
			w.Flush() // the estimate is useful even if generation then takes minutes
		}
	}
	if !*stats && !*edges {
		return nil
	}
	g, err := spec.Generate()
	if err != nil {
		return err
	}
	if *stats {
		// Every distance-2 statistic below (Δ(G²), avg d2-degree, m(G²))
		// comes from the streaming Dist2View — sizing a workload's square no
		// longer materializes it.
		st := graph.ComputeStats(g)
		fmt.Fprintf(w, "# %s\n# %s\n", spec.String(), st.String())
		fmt.Fprintf(w, "# d2: Δ(G²)=%d avg(G²)=%.2f m(G²)=%d palette Δ²+1=%d\n",
			st.MaxDist2Deg, st.AvgDist2Deg, st.Dist2Edges, st.SquaredBound+1)
	}
	if *edges {
		for _, e := range g.Edges() {
			fmt.Fprintf(w, "%d %d\n", e.U, e.V)
		}
	}
	return nil
}

// expectedSize returns the spec's expected node and undirected-edge counts in
// closed form for the kinds where one exists (random kinds: in expectation).
func expectedSize(s graph.GeneratorSpec) (n, m float64, ok bool) {
	switch s.Kind {
	case "gnp":
		n = float64(s.N)
		m = n * (n - 1) / 2 * s.P
	case "gnp-avg":
		n = float64(s.N)
		m = n * s.P / 2 // P is the target average degree
	case "ba":
		n = float64(s.N)
		ma := float64(s.Degree) // attachments per node (clamped like the generator)
		if ma < 1 {
			ma = 1
		}
		if ma > n-1 {
			ma = n - 1
		}
		if n <= 1 {
			ma = 0
		}
		m = ma*(ma+1)/2 + (n-ma-1)*ma // exact, not just expected
	case "regular":
		n = float64(s.N)
		m = n * float64(s.Degree) / 2
	case "grid":
		r, c := float64(s.N), float64(s.M)
		n = r * c
		m = r*(c-1) + c*(r-1)
	case "torus":
		r, c := float64(s.N), float64(s.M)
		n = r * c
		m = 2 * n
	case "unitdisk":
		n = float64(s.N)
		m = n * (n - 1) / 2 * math.Pi * s.P * s.P // expected pairs within radius P (boundary effects ignored)
	case "complete":
		n = float64(s.N)
		m = n * (n - 1) / 2
	case "cycle":
		n = float64(s.N)
		m = n
	case "path", "star":
		n = float64(s.N)
		m = n - 1
	default:
		return 0, 0, false // no closed form; the exact stats follow generation
	}
	if n <= 0 || m < 0 {
		return 0, 0, false
	}
	return n, m, true
}

// printResidentEstimate sizes the three resident tiers of a simulation on an
// (n, m) graph via graph.EstimateResidency — the same closed forms the
// serving plane's session-cache budget uses for admission and eviction.
func printResidentEstimate(w io.Writer, s graph.GeneratorSpec, n, m float64) {
	est := graph.EstimateResidency(n, m)
	fmt.Fprintf(w, "# est. simulation residency for %s: E[n]=%.3g E[m]=%.3g\n", s.String(), n, m)
	fmt.Fprintf(w, "# est. CSR+edge-index %s, message plane+inboxes %s, packed coloring %s (%d bits/node) — total ≈ %s\n",
		fmtBytes(est.CSRBytes), fmtBytes(est.PlaneBytes), fmtBytes(est.ColoringBytes), est.PackedBits, fmtBytes(est.Total()))
}

// fmtBytes renders a byte count with a binary unit.
func fmtBytes(b float64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2f GiB", b/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1f MiB", b/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1f KiB", b/(1<<10))
	default:
		return fmt.Sprintf("%.0f B", b)
	}
}
