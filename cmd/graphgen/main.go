// Command graphgen generates one of the workload graphs and prints either a
// structural summary or the full edge list, so that the workloads used by the
// experiments can be inspected or exported to other tools.
//
// Example:
//
//	graphgen -graph unitdisk -n 200 -p 0.15 -stats
//	graphgen -graph cliquechain -n 5 -m 8 -edges > chain.txt
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"d2color/internal/graph"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "graphgen:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("graphgen", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		kind   = fs.String("graph", "gnp", "graph generator kind (see cmd/d2color)")
		n      = fs.Int("n", 256, "primary size parameter")
		m      = fs.Int("m", 0, "secondary size parameter")
		degree = fs.Int("degree", 8, "degree-like parameter")
		p      = fs.Float64("p", 0.05, "probability / radius parameter")
		seed   = fs.Int64("seed", 1, "random seed")
		edges  = fs.Bool("edges", false, "print the edge list (u v per line)")
		stats  = fs.Bool("stats", true, "print structural statistics")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	spec := graph.GeneratorSpec{Kind: *kind, N: *n, M: *m, Degree: *degree, P: *p, Seed: *seed}
	g, err := spec.Generate()
	if err != nil {
		return err
	}
	w := bufio.NewWriter(out)
	defer w.Flush()
	if *stats {
		// Every distance-2 statistic below (Δ(G²), avg d2-degree, m(G²))
		// comes from the streaming Dist2View — sizing a workload's square no
		// longer materializes it.
		st := graph.ComputeStats(g)
		fmt.Fprintf(w, "# %s\n# %s\n", spec.String(), st.String())
		fmt.Fprintf(w, "# d2: Δ(G²)=%d avg(G²)=%.2f m(G²)=%d palette Δ²+1=%d\n",
			st.MaxDist2Deg, st.AvgDist2Deg, st.Dist2Edges, st.SquaredBound+1)
	}
	if *edges {
		for _, e := range g.Edges() {
			fmt.Fprintf(w, "%d %d\n", e.U, e.V)
		}
	}
	return nil
}
