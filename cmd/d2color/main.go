// Command d2color runs one distance-2 coloring algorithm on one generated
// graph and reports the palette, the colors used and the CONGEST round cost.
//
// Example:
//
//	d2color -graph gnp -n 1024 -p 0.01 -algo rand-improved -seed 7
//	d2color -graph unitdisk -n 500 -p 0.12 -algo deterministic
//	d2color -graph cliquechain -n 10 -m 10 -algo polylog -eps 0.5
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"d2color/internal/core"
	"d2color/internal/graph"
	"d2color/internal/verify"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "d2color:", err)
		os.Exit(1)
	}
}

// algoNames lists core's own algorithm set for the -algo flag help. Solve
// additionally accepts any name registered in the alg registry by a linked
// package; its unknown-algorithm error lists what is actually registered.
func algoNames() string {
	names := make([]string, 0, 8)
	for _, a := range core.Algorithms() {
		names = append(names, string(a))
	}
	return strings.Join(names, ", ")
}

type output struct {
	Graph       string `json:"graph"`
	Nodes       int    `json:"nodes"`
	Edges       int    `json:"edges"`
	MaxDegree   int    `json:"maxDegree"`
	Algorithm   string `json:"algorithm"`
	PaletteSize int    `json:"paletteSize"`
	ColorsUsed  int    `json:"colorsUsed"`
	Rounds      int    `json:"rounds"`
	Messages    int    `json:"messages"`
	Valid       bool   `json:"valid"`
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("d2color", flag.ContinueOnError)
	fs.SetOutput(w)
	var (
		input    = fs.String("input", "", "read the graph from an edge-list file (as written by graphgen -edges) instead of generating one")
		kind     = fs.String("graph", "gnp", "graph generator: gnp, gnp-avg, regular, grid, torus, tree, cliquechain, unitdisk, taskresource, complete, cycle, path, star, doublestar, petersen, hoffman-singleton")
		n        = fs.Int("n", 256, "primary size parameter")
		m        = fs.Int("m", 0, "secondary size parameter (grid cols, clique size, resources)")
		degree   = fs.Int("degree", 8, "degree-like parameter (regular degree, tree branching, tasks per resource)")
		p        = fs.Float64("p", 0.05, "probability / radius / average degree parameter")
		seed     = fs.Uint64("seed", 1, "random seed")
		algo     = fs.String("algo", string(core.AlgorithmAuto), "algorithm: "+algoNames())
		eps      = fs.Float64("eps", 1, "epsilon for the polylog and relaxed algorithms")
		parallel = fs.Bool("parallel", false, "run simulations on the sharded-parallel CONGEST engine (same results, different wall clock)")
		workers  = fs.Int("workers", 0, "goroutine pool size for -parallel (0 = GOMAXPROCS)")
		asJSON   = fs.Bool("json", false, "emit JSON instead of text")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	spec := graph.GeneratorSpec{Kind: *kind, N: *n, M: *m, Degree: *degree, P: *p, Seed: int64(*seed)}
	var g *graph.Graph
	var err error
	graphLabel := spec.String()
	if *input != "" {
		f, ferr := os.Open(*input)
		if ferr != nil {
			return ferr
		}
		defer f.Close()
		g, err = graph.ReadEdgeList(f)
		graphLabel = *input
	} else {
		g, err = spec.Generate()
	}
	if err != nil {
		return err
	}

	res, err := core.Solve(g, core.Options{
		Algorithm: core.Algorithm(*algo),
		Seed:      *seed,
		Epsilon:   *eps,
		Parallel:  *parallel,
		Workers:   *workers,
	})
	if err != nil {
		return err
	}
	rep := verify.CheckD2(g, res.Coloring, res.PaletteSize)

	out := output{
		Graph:       graphLabel,
		Nodes:       g.NumNodes(),
		Edges:       g.NumEdges(),
		MaxDegree:   g.MaxDegree(),
		Algorithm:   string(res.Algorithm),
		PaletteSize: res.PaletteSize,
		ColorsUsed:  res.ColorsUsed,
		Rounds:      res.Metrics.TotalRounds(),
		Messages:    res.Metrics.MessagesSent,
		Valid:       rep.Valid,
	}
	if *asJSON {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(out)
	}
	fmt.Fprintf(w, "graph:        %s (n=%d, m=%d, Δ=%d)\n", out.Graph, out.Nodes, out.Edges, out.MaxDegree)
	fmt.Fprintf(w, "algorithm:    %s\n", out.Algorithm)
	fmt.Fprintf(w, "palette:      %d\n", out.PaletteSize)
	fmt.Fprintf(w, "colors used:  %d\n", out.ColorsUsed)
	fmt.Fprintf(w, "rounds:       %d\n", out.Rounds)
	fmt.Fprintf(w, "messages:     %d\n", out.Messages)
	fmt.Fprintf(w, "valid:        %v\n", out.Valid)
	return nil
}
