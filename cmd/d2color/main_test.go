package main

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"
)

func TestRunTextOutput(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-graph", "gnp", "-n", "120", "-p", "0.05", "-algo", "rand-improved", "-seed", "3"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"algorithm:", "rand-improved", "valid:", "true", "rounds:"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunJSONOutput(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-graph", "cliquechain", "-n", "3", "-m", "5", "-algo", "deterministic", "-json"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	var out output
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if !out.Valid {
		t.Error("JSON output should report a valid coloring")
	}
	if out.Algorithm != "deterministic" {
		t.Errorf("algorithm = %q", out.Algorithm)
	}
	if out.Nodes != 15 {
		t.Errorf("nodes = %d, want 15", out.Nodes)
	}
	if out.PaletteSize == 0 || out.ColorsUsed == 0 {
		t.Error("palette / colors should be positive")
	}
}

func TestRunAllAlgorithmsViaCLI(t *testing.T) {
	for _, algo := range []string{"auto", "rand-basic", "polylog", "greedy", "naive", "relaxed"} {
		var buf bytes.Buffer
		err := run([]string{"-graph", "gnp", "-n", "80", "-p", "0.06", "-algo", algo, "-seed", "2"}, &buf)
		if err != nil {
			t.Errorf("%s: %v", algo, err)
		}
	}
}

func TestRunFromEdgeListFile(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/g.txt"
	if err := os.WriteFile(path, []byte("# nodes: 4\n0 1\n1 2\n2 3\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run([]string{"-input", path, "-algo", "greedy", "-json"}, &buf); err != nil {
		t.Fatal(err)
	}
	var out output
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.Nodes != 4 || out.Edges != 3 || !out.Valid {
		t.Errorf("unexpected output: %+v", out)
	}
	if err := run([]string{"-input", dir + "/missing.txt"}, &buf); err == nil {
		t.Error("missing input file should error")
	}
}

func TestRunErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-graph", "nonsense"}, &buf); err == nil {
		t.Error("unknown generator should error")
	}
	if err := run([]string{"-algo", "nonsense", "-graph", "path", "-n", "5"}, &buf); err == nil {
		t.Error("unknown algorithm should error")
	}
	if err := run([]string{"-bogusflag"}, &buf); err == nil {
		t.Error("unknown flag should error")
	}
}
