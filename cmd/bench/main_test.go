package main

import (
	"testing"
)

func TestParseBenchOutput(t *testing.T) {
	out := `
goos: linux
BenchmarkTrialPhase/engine=sequential-8         	      20	  11880627 ns/op	       0 B/op	       0 allocs/op
BenchmarkVerify/n=10000-8   	      30	    326619 ns/op	       4 B/op	       0 allocs/op
BenchmarkE1RandomizedD2-8    	       1	 123456789 ns/op	       42.0 table-rows	 2488 B/op	       9 allocs/op
PASS
`
	got := parseBenchOutput(out)
	if len(got) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %v", len(got), got)
	}
	tp, ok := got["BenchmarkTrialPhase/engine=sequential"]
	if !ok {
		t.Fatal("GOMAXPROCS suffix not stripped")
	}
	if tp.NsPerOp != 11880627 || tp.AllocsPerOp != 0 {
		t.Errorf("trial phase = %+v", tp)
	}
	v := got["BenchmarkVerify/n=10000"]
	if v.NsPerOp != 326619 || v.BytesPerOp != 4 {
		t.Errorf("verify = %+v", v)
	}
	// Custom ReportMetric columns must not derail B/op and allocs/op.
	e1 := got["BenchmarkE1RandomizedD2"]
	if e1.BytesPerOp != 2488 || e1.AllocsPerOp != 9 {
		t.Errorf("custom-metric line = %+v", e1)
	}
}

func TestParseBenchOutputIgnoresNonResultLines(t *testing.T) {
	got := parseBenchOutput("ok  \td2color/internal/trial\t0.3s\nBenchmarkBroken abc ns/op\n")
	if len(got) != 0 {
		t.Fatalf("want no results, got %v", got)
	}
}
