// Command bench runs the repository's pinned benchmark set with -benchmem
// and writes a JSON snapshot mapping each benchmark to its ns/op, B/op and
// allocs/op. The snapshot starts the perf trajectory of the project: every
// PR regenerates BENCH_<pr>.json through the CI bench step, so regressions
// in the hot kernels (trial phases, verification, greedy picks, the message
// plane, the distance-2 stream, the sweep grid, since ISSUE 8 the
// incremental repair and fault-decision kernels, and since ISSUE 10 the
// cancellation latency of an in-flight kernel run) are visible as diffs
// between snapshots rather than anecdotes.
//
// Since ISSUE 7 the snapshot also carries the memory probe: peak resident
// set and bytes per node for the greedy and relaxed algorithms on the
// standard n = 10⁶ sparse workload — the figure of merit of the memory diet,
// made first-class so its trajectory diffs like the nanoseconds do.
//
// Run from the repository root:
//
//	go run ./cmd/bench                      # 1-iteration smoke, BENCH_10.json
//	go run ./cmd/bench -benchtime 5x        # steadier numbers
//	go run ./cmd/bench -memprobe 0          # skip the n=1e6 memory probe
//	go run ./cmd/bench -out snapshots/B.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"

	"d2color/internal/harness"
)

// pinnedSet is the benchmark selection the snapshot tracks: one entry per
// hot subsystem, chosen so the set stays fast enough for CI yet covers every
// kernel the perf work of PRs 1–5 optimized.
var pinnedSet = []struct {
	pkg   string
	bench string
}{
	{"./internal/trial", "BenchmarkTrialPhase$|BenchmarkCancelLatency$"},
	{"./internal/verify", "BenchmarkVerify$|BenchmarkVerifyWarmed|BenchmarkVerifyOutOfRange"},
	{"./internal/baseline", "BenchmarkGreedyD2$|BenchmarkJohanssonD1$"},
	{"./internal/bitset", "BenchmarkFirstFreePick"},
	{"./internal/congest", "BenchmarkDeliver|BenchmarkPayloadRound"},
	{"./internal/graph", "BenchmarkDist2View$|BenchmarkBuilder"},
	{"./internal/sweep", "BenchmarkSweepGrid"},
	{"./internal/repair", "BenchmarkRepairCorrupt|BenchmarkChurnEpoch"},
	{"./internal/fault", "BenchmarkDropDecision"},
	{"./internal/serve", "BenchmarkWarmVerifyRequest$|BenchmarkWarmRecolorRequest$|BenchmarkServeColorQueryBatched$|BenchmarkServeColorQueryUnbatched$"},
}

// measurement is one benchmark's snapshot entry.
type measurement struct {
	NsPerOp     float64 `json:"nsPerOp"`
	BytesPerOp  float64 `json:"bytesPerOp"`
	AllocsPerOp float64 `json:"allocsPerOp"`
}

// snapshot is the file layout of BENCH_<pr>.json. Cores records the
// machine's CPU count: the sharded-engine benchmarks embed their worker
// count in the benchmark name, and a snapshot from a 1-core runner is not
// comparable to one from an 8-core runner for those entries. Memory holds
// the n = 10⁶ peak-RSS probe (omitted with -memprobe 0); MemoryReliable
// records whether the platform allowed resetting VmHWM between probes —
// when false the readings are monotone and unfit for cross-snapshot
// comparison.
type snapshot struct {
	Benchtime      string                 `json:"benchtime"`
	Cores          int                    `json:"cores"`
	Benchmarks     map[string]measurement `json:"benchmarks"`
	Memory         []harness.MemoryProbe  `json:"memory,omitempty"`
	MemoryReliable bool                   `json:"memoryReliable,omitempty"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	var (
		out       = fs.String("out", "BENCH_10.json", "snapshot file to write")
		benchtime = fs.String("benchtime", "1x", "-benchtime passed to go test (1x = smoke, 5x+ = steadier)")
		memprobe  = fs.Int("memprobe", 1_000_000, "node count for the peak-RSS memory probe (0 disables)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	snap := snapshot{Benchtime: *benchtime, Cores: runtime.NumCPU(), Benchmarks: map[string]measurement{}}
	for _, entry := range pinnedSet {
		fmt.Fprintf(stdout, "== %s -bench %s\n", entry.pkg, entry.bench)
		cmd := exec.Command("go", "test", entry.pkg, "-run", "^$",
			"-bench", entry.bench, "-benchmem", "-benchtime", *benchtime)
		cmd.Stderr = os.Stderr
		output, err := cmd.Output()
		if err != nil {
			return fmt.Errorf("%s: %w", entry.pkg, err)
		}
		stdout.Write(output)
		prefix := strings.TrimPrefix(entry.pkg, "./internal/")
		for name, m := range parseBenchOutput(string(output)) {
			snap.Benchmarks[prefix+"/"+name] = m
		}
	}

	if *memprobe > 0 {
		fmt.Fprintf(stdout, "== memory probe (gnp avg deg 8, n=%d, packed colorings)\n", *memprobe)
		probes, reliable, err := harness.RunMemoryProbe(*memprobe, 1, []string{"greedy", "relaxed"})
		if err != nil {
			return err
		}
		snap.Memory, snap.MemoryReliable = probes, reliable
		for _, p := range probes {
			fmt.Fprintf(stdout, "%-10s peak %.0f MiB  %.0f B/node  (reliable=%v)\n",
				p.Algorithm, p.PeakRSSMiB, p.BytesPerNode, reliable)
		}
	}

	data, err := json.MarshalIndent(orderedSnapshot(snap), "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote %d benchmarks to %s\n", len(snap.Benchmarks), *out)
	return nil
}

// gomaxprocsSuffix strips the trailing -<GOMAXPROCS> go test appends to
// benchmark names, so snapshots compare across machines.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// parseBenchOutput extracts name → measurement from `go test -bench` output.
// A result line is the benchmark name, the iteration count, then value/unit
// pairs (ns/op always; B/op and allocs/op with -benchmem; custom
// ReportMetric units are ignored).
func parseBenchOutput(output string) map[string]measurement {
	results := map[string]measurement{}
	for _, line := range strings.Split(output, "\n") {
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := gomaxprocsSuffix.ReplaceAllString(fields[0], "")
		var m measurement
		ok := false
		for i := 2; i+1 < len(fields); i += 2 {
			value, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			switch fields[i+1] {
			case "ns/op":
				m.NsPerOp = value
				ok = true
			case "B/op":
				m.BytesPerOp = value
			case "allocs/op":
				m.AllocsPerOp = value
			}
		}
		if ok {
			results[name] = m
		}
	}
	return results
}

// orderedSnapshot re-marshals the map through a sorted intermediate so the
// snapshot file is stable under diff.
func orderedSnapshot(s snapshot) any {
	names := make([]string, 0, len(s.Benchmarks))
	for name := range s.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	type namedMeasurement struct {
		Name string `json:"name"`
		measurement
	}
	out := struct {
		Benchtime      string                `json:"benchtime"`
		Cores          int                   `json:"cores"`
		Memory         []harness.MemoryProbe `json:"memory,omitempty"`
		MemoryReliable bool                  `json:"memoryReliable,omitempty"`
		Benchmarks     []namedMeasurement    `json:"benchmarks"`
	}{Benchtime: s.Benchtime, Cores: s.Cores, Memory: s.Memory, MemoryReliable: s.MemoryReliable}
	for _, name := range names {
		out.Benchmarks = append(out.Benchmarks, namedMeasurement{Name: name, measurement: s.Benchmarks[name]})
	}
	return out
}
