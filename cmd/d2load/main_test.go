package main

import (
	"encoding/json"
	"strings"
	"testing"

	"d2color/internal/serve"
)

func TestRunSingleMixQuick(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-mix", "many-small/query", "-quick", "-requests", "120", "-conc", "4"}, &sb); err != nil {
		t.Fatalf("d2load: %v\noutput:\n%s", err, sb.String())
	}
	out := sb.String()
	if !strings.Contains(out, "many-small/query") {
		t.Errorf("missing mix row:\n%s", out)
	}
}

func TestRunJSONAllQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("runs all five quick mixes")
	}
	var sb strings.Builder
	if err := run([]string{"-mix", "all", "-quick", "-json"}, &sb); err != nil {
		t.Fatalf("d2load: %v\noutput:\n%s", err, sb.String())
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 5 { // four mixes + unbatched twin
		t.Fatalf("got %d report lines, want 5:\n%s", len(lines), sb.String())
	}
	seen := map[string]serve.LoadReport{}
	for _, line := range lines {
		var rep serve.LoadReport
		if err := json.Unmarshal([]byte(line), &rep); err != nil {
			t.Fatalf("bad JSON line %q: %v", line, err)
		}
		if rep.Errors != 0 {
			t.Errorf("mix %s: %d errors", rep.Mix, rep.Errors)
		}
		if rep.P50 > rep.P95 || rep.P95 > rep.P99 || rep.P99 > rep.Max {
			t.Errorf("mix %s: non-monotone percentiles %v %v %v %v", rep.Mix, rep.P50, rep.P95, rep.P99, rep.Max)
		}
		if rep.RequestsPerSec <= 0 || rep.Requests == 0 {
			t.Errorf("mix %s: empty report %+v", rep.Mix, rep)
		}
		seen[rep.Mix] = rep
	}
	for _, want := range []string{"many-small/query", "many-small/query/unbatched", "many-small/churn", "one-huge/query", "one-huge/churn"} {
		if _, ok := seen[want]; !ok {
			t.Errorf("missing mix %s", want)
		}
	}
	// The eviction-exercising mixes must actually evict.
	if seen["many-small/query"].Evictions == 0 {
		t.Errorf("many-small/query: no evictions under the sized budget")
	}
}

func TestUnknownMix(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-mix", "nope"}, &sb); err == nil {
		t.Fatal("want error for unknown mix")
	}
}
