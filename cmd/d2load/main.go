// Command d2load is the deterministic load driver for the serving plane: it
// replays named closed-loop request mixes against an in-process server (or a
// remote d2served via -addr) and reports latency percentiles and sustained
// colorings/sec.
//
// The four standard mixes cross {many-small-graphs, one-huge-graph} with
// {query-heavy, churn-heavy}; "all" also runs an unbatched twin of the
// many-small query mix, so the batching win is measured in the same breath.
// Request schedules are deterministic per (mix, seed) — two runs issue the
// identical request sequences, so p50/p99 deltas between builds are real.
//
// Overload knobs shape degraded-mode runs: -queue-depth bounds the
// in-process server's per-session queues (excess requests shed with 503),
// -deadline-ms attaches a deadline to every request, and -retries makes the
// driver a well-behaved client — transient 503s and deadline cancels retry
// with capped exponential backoff and seeded jitter (the jitter stream is
// disjoint from the schedule stream, so retry timing never changes which
// requests are issued). The report then splits outcomes into retried, shed
// and canceled counts, and acc-p99: the post-retry tail of
// ultimately-successful requests.
//
// Example:
//
//	d2load -mix all
//	d2load -mix many-small/query -unbatched -json
//	d2load -mix one-huge/churn -addr http://127.0.0.1:8080
//	d2load -mix many-small/query -conc 32 -queue-depth 2 -retries 3
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"d2color/internal/serve"

	// Register every default algorithm instance.
	_ "d2color/internal/baseline"
	_ "d2color/internal/detd2"
	_ "d2color/internal/mis"
	_ "d2color/internal/polylogd2"
	_ "d2color/internal/randd2"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "d2load:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("d2load", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		mix       = fs.String("mix", "all", `mix name ("all", or one of the standard mixes)`)
		quick     = fs.Bool("quick", false, "quick-scale mixes (CI smoke sizes)")
		requests  = fs.Int("requests", 0, "override total requests per mix")
		conc      = fs.Int("conc", 0, "override concurrency")
		sessions  = fs.Int("sessions", 0, "override session count")
		n         = fs.Int("n", 0, "override per-session graph size")
		seed      = fs.Uint64("seed", 0, "override schedule seed")
		unbatched = fs.Bool("unbatched", false, "disable server-side batching")
		asJSON    = fs.Bool("json", false, "emit reports as JSON lines")
		addr      = fs.String("addr", "", "drive a remote server at this base URL instead of in-process")

		retries    = fs.Int("retries", 0, "client retries of 503s and deadline cancels (capped exponential backoff + seeded jitter)")
		retryBase  = fs.Duration("retry-base", 0, "base backoff between retries (0: 200µs; capped at 16x)")
		deadlineMS = fs.Int64("deadline-ms", 0, "per-request deadline in milliseconds (0: none)")
		queueDepth = fs.Int("queue-depth", 0, "in-process server per-session queue bound (0: serve default)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	specs := serve.StandardMixes(*quick)
	if *mix != "all" {
		idx := -1
		var names []string
		for i, s := range specs {
			names = append(names, s.Mix)
			if s.Mix == *mix {
				idx = i
			}
		}
		if idx < 0 {
			return fmt.Errorf("unknown mix %q (want all, %s)", *mix, strings.Join(names, ", "))
		}
		specs = specs[idx : idx+1]
	}

	w := bufio.NewWriter(out)
	defer w.Flush()
	if !*asJSON {
		fmt.Fprintf(w, "%-24s %9s %6s %10s %10s %10s %9s %11s %7s %6s %6s %6s %7s %10s\n",
			"mix", "requests", "conc", "p50", "p95", "p99", "req/s", "colorings/s", "batch", "evict",
			"retry", "shed", "cancel", "acc-p99")
	}
	for _, spec := range specs {
		applyOverrides(&spec, *requests, *conc, *sessions, *n, *seed, *unbatched)
		spec.Retries, spec.RetryBase = *retries, *retryBase
		spec.DeadlineMillis, spec.QueueDepth = *deadlineMS, *queueDepth
		if err := runMix(w, spec, *addr, *asJSON); err != nil {
			return err
		}
		// "all" includes the unbatched control twin of the coalescing-friendly
		// query mix, so batched-vs-unbatched is one report apart.
		if *mix == "all" && spec.Mix == "many-small/query" && !spec.Unbatched {
			twin := spec
			twin.Mix = spec.Mix + "/unbatched"
			twin.Unbatched = true
			if err := runMix(w, twin, *addr, *asJSON); err != nil {
				return err
			}
		}
	}
	return nil
}

func applyOverrides(spec *serve.LoadSpec, requests, conc, sessions, n int, seed uint64, unbatched bool) {
	if requests > 0 {
		spec.Requests = requests
	}
	if conc > 0 {
		spec.Concurrency = conc
	}
	if sessions > 0 {
		spec.Sessions = sessions
		spec.Budget = 0 // an overridden population invalidates the mix's sized budget
	}
	if n > 0 {
		spec.N = n
		spec.Budget = 0
	}
	if seed != 0 {
		spec.Seed = seed
	}
	if unbatched {
		spec.Unbatched = true
	}
}

func runMix(w io.Writer, spec serve.LoadSpec, addr string, asJSON bool) error {
	var rep serve.LoadReport
	var err error
	if addr != "" {
		rep, err = serve.RunLoadWith(func() serve.Transport {
			return serve.NewHTTPTransport(strings.TrimRight(addr, "/"), nil)
		}, spec)
	} else {
		rep, err = serve.RunLoad(spec)
	}
	if err != nil {
		return fmt.Errorf("mix %s: %w", spec.Mix, err)
	}
	// Sheds and deadline cancels are configured outcomes (bounded queues,
	// -deadline-ms), reported in their own columns; only errors beyond them
	// mean the run itself is broken.
	if unexpected := rep.Errors - rep.Shed - rep.Canceled; unexpected > 0 {
		return fmt.Errorf("mix %s: %d request errors", spec.Mix, unexpected)
	}
	if asJSON {
		return json.NewEncoder(w).Encode(rep)
	}
	// acc-p99 is the post-retry tail of ultimately-successful requests —
	// the latency a retrying client actually observes under overload.
	fmt.Fprintf(w, "%-24s %9d %6d %10s %10s %10s %9.0f %11.1f %7.1f %6d %6d %6d %7d %10s\n",
		rep.Mix, rep.Requests, rep.Concurrency,
		fmtDur(rep.P50), fmtDur(rep.P95), fmtDur(rep.P99),
		rep.RequestsPerSec, rep.ColoringsPerSec, rep.MeanBatch, rep.Evictions,
		rep.Retried, rep.Shed, rep.Canceled, fmtDur(rep.AcceptedP99))
	return nil
}

// fmtDur rounds for the table (full precision lives in -json).
func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return d.Round(10 * time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(10 * time.Microsecond).String()
	default:
		return d.Round(time.Microsecond).String()
	}
}
