package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestUnknownExperimentIDIsAnError(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-quick", "-only", "E42"}, &out)
	if err == nil {
		t.Fatal("-only E42 should fail instead of silently running nothing")
	}
	if !strings.Contains(err.Error(), "E42") {
		t.Errorf("error should name the unknown ID: %v", err)
	}
	if !strings.Contains(err.Error(), "E1") || !strings.Contains(err.Error(), "E10") {
		t.Errorf("error should list the valid IDs: %v", err)
	}
	if out.Len() != 0 {
		t.Errorf("nothing should be emitted on an ID error, got %q", out.String())
	}
}

func TestUnknownIDMixedWithValidIsStillAnError(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-quick", "-only", "E3, E42"}, &out)
	if err == nil {
		t.Fatal("a mix of valid and unknown IDs should fail before running anything")
	}
	if !strings.Contains(err.Error(), "E42") {
		t.Errorf("error should name the unknown ID: %v", err)
	}
}

func TestOnlyFiltering(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-quick", "-reps", "1", "-only", "E3,E6"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "E3 — ") || !strings.Contains(s, "E6 — ") {
		t.Errorf("output should contain E3 and E6 tables:\n%s", s)
	}
	if strings.Contains(s, "E1 — ") || strings.Contains(s, "E4 — ") {
		t.Errorf("output should not contain unselected experiments:\n%s", s)
	}
}

func TestBadFlagIsAnError(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}, &bytes.Buffer{}); err == nil {
		t.Fatal("unknown flags should be an error")
	}
}

func TestJSONLinesOutput(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-quick", "-reps", "1", "-only", "E3", "-json"}, &out); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) < 3 {
		t.Fatalf("expected table/row/done records, got %d lines", len(lines))
	}
	types := map[string]int{}
	for _, line := range lines {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("line is not valid JSON: %q: %v", line, err)
		}
		if rec["experiment"] != "E3" {
			t.Errorf("record for wrong experiment: %v", rec)
		}
		types[rec["type"].(string)]++
	}
	if types["table"] != 1 || types["done"] != 1 || types["row"] == 0 {
		t.Errorf("unexpected record mix: %v", types)
	}
}

func TestCSVDirSinkWritesFiles(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	if err := run([]string{"-quick", "-reps", "1", "-only", "E3", "-csv", dir}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "E3.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "rounds") {
		t.Errorf("CSV missing header: %q", string(data))
	}
}

func TestJobsValuesProduceIdenticalOutput(t *testing.T) {
	var seq, par bytes.Buffer
	if err := run([]string{"-quick", "-reps", "1", "-only", "E5", "-jobs", "1"}, &seq); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-quick", "-reps", "1", "-only", "E5", "-jobs", "7"}, &par); err != nil {
		t.Fatal(err)
	}
	strip := func(s string) string {
		var keep []string
		for _, line := range strings.Split(s, "\n") {
			if strings.Contains(line, "wall-clock") {
				continue
			}
			keep = append(keep, line)
		}
		return strings.Join(keep, "\n")
	}
	if strip(seq.String()) != strip(par.String()) {
		t.Errorf("-jobs 1 and -jobs 7 disagree:\n--- jobs=1 ---\n%s\n--- jobs=7 ---\n%s", seq.String(), par.String())
	}
}

func TestUncreatableCSVDirFailsBeforeRunning(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-quick", "-only", "E3", "-csv", "/proc/definitely/not/writable"}, &out)
	if err == nil {
		t.Fatal("an uncreatable -csv directory should be an error")
	}
	if out.Len() != 0 {
		t.Errorf("no sweep should run before the directory check, got %q", out.String())
	}
}
