// Command experiments regenerates the experiment tables E1–E14 described in
// EXPERIMENTS.md: E1–E10 reproduce the quantitative claims of the paper,
// E11 is the million-node scale experiment, E12 is the churn-tolerance
// experiment (incremental repair vs full rerun under fault epochs), E13 is
// the serving-plane load experiment (closed-loop mixes against the
// warm-session server), and E14 is the chaos experiment (overload shedding,
// deadline storms, panic quarantine, graceful drain). E11–E14 carry
// wall-clock/throughput/peak-RSS columns that are inherently
// machine-dependent, hence excluded from byte-identity guarantees. The sweeps are executed by the declarative grid
// engine (internal/sweep): every workload × algorithm × engine cell fans out
// over -jobs workers, and the generated tables are byte-identical for every
// -jobs value up to the self-profiling wall-clock note each one ends with.
//
// Example:
//
//	experiments                 # run everything at full size
//	experiments -quick          # small sweeps (seconds)
//	experiments -only E3,E6     # a subset (unknown IDs are an error)
//	experiments -jobs 1         # disable the grid fan-out
//	experiments -json           # JSON-lines records instead of text tables
//	experiments -csv out/       # also write one CSV per experiment
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"d2color/internal/harness"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		quick    = fs.Bool("quick", false, "run reduced sweeps")
		seed     = fs.Uint64("seed", 1, "random seed")
		reps     = fs.Int("reps", 0, "repetitions for randomized measurements (0 = default)")
		only     = fs.String("only", "", "comma-separated experiment IDs (default: all)")
		csvDir   = fs.String("csv", "", "directory to write per-experiment CSV files")
		asJSON   = fs.Bool("json", false, "emit JSON-lines records instead of text tables")
		jobs     = fs.Int("jobs", 0, "worker pool that fans out the sweep grids' cells (0 = GOMAXPROCS, 1 = sequential); tables are identical for every value apart from their wall-clock note")
		parallel = fs.Bool("parallel", false, "run simulations on the sharded-parallel CONGEST engine when the grid is sequential (-jobs 1); identical tables, different wall clock")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := harness.Config{Quick: *quick, Seed: *seed, Repetitions: *reps, Parallel: *parallel, Jobs: *jobs}

	var ids []string
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			if id = strings.TrimSpace(id); id != "" {
				ids = append(ids, id)
			}
		}
	}

	sinks := []harness.Sink{harness.TextSink{W: stdout}}
	if *asJSON {
		sinks = []harness.Sink{harness.JSONLSink{W: stdout}}
	}
	if *csvDir != "" {
		// Fail on an uncreatable directory before any sweep runs, not after
		// the first experiment finishes.
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
		sinks = append(sinks, harness.CSVDirSink{Dir: *csvDir})
	}
	return harness.Run(cfg, ids, harness.MultiSink(sinks...))
}
