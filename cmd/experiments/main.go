// Command experiments regenerates the experiment tables E1–E9 described in
// EXPERIMENTS.md, reproducing the quantitative claims of the paper.
//
// Example:
//
//	experiments                 # run everything at full size
//	experiments -quick          # small sweeps (seconds)
//	experiments -only E3,E6     # a subset
//	experiments -csv out/       # also write one CSV per experiment
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"d2color/internal/harness"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		quick    = fs.Bool("quick", false, "run reduced sweeps")
		seed     = fs.Uint64("seed", 1, "random seed")
		reps     = fs.Int("reps", 0, "repetitions for randomized measurements (0 = default)")
		only     = fs.String("only", "", "comma-separated experiment IDs (default: all)")
		csvDir   = fs.String("csv", "", "directory to write per-experiment CSV files")
		parallel = fs.Bool("parallel", false, "run simulations on the sharded-parallel CONGEST engine (identical tables, different wall clock)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := harness.Config{Quick: *quick, Seed: *seed, Repetitions: *reps, Parallel: *parallel}

	wanted := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			wanted[strings.TrimSpace(id)] = true
		}
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
	}

	for _, e := range harness.All() {
		if len(wanted) > 0 && !wanted[e.ID] {
			continue
		}
		table, err := e.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		if err := table.Render(os.Stdout); err != nil {
			return err
		}
		if *csvDir != "" {
			f, err := os.Create(filepath.Join(*csvDir, e.ID+".csv"))
			if err != nil {
				return err
			}
			if err := table.WriteCSV(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
	}
	return nil
}
