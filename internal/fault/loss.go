package fault

import (
	"sync/atomic"

	"d2color/internal/graph"
	"d2color/internal/rng"
)

// The engine-side fault models. congest.FaultModel demands pure functions of
// (round, slot) and (round, node) — the sharded engine calls them from many
// workers and its byte-identity-with-sequential guarantee relies on the
// answer not depending on evaluation order. Both plans therefore decide by
// rehashing a stack-allocated SplitMix64 stream per query instead of
// advancing shared state; the only mutation is an atomic loss counter, which
// observes decisions without influencing them.

// Domain-separation salts so a DropPlan and a CrashPlan sharing a seed do
// not correlate.
const (
	dropSalt  = 0xD20B_0001
	crashSalt = 0xD20B_0002
)

// hashBernoulli is a pure coin: true with probability p, as a function of
// (seed, key) only.
func hashBernoulli(seed, key uint64, p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	var s rng.Source
	s.ResetSplit(seed, key)
	return s.Float64() < p
}

// DropPlan drops each delivered message independently with probability P
// during rounds [FromRound, ToRound) — ToRound <= 0 means "forever". The
// decision is a pure hash of (Seed, round, slot), so a given message's fate
// is fixed regardless of engine, worker count, or delivery order.
type DropPlan struct {
	Seed      uint64
	P         float64
	FromRound int // first lossy round (0-based)
	ToRound   int // first reliable round again; <= 0 means no end

	drops atomic.Int64
}

// DropMessage implements congest.FaultModel.
func (d *DropPlan) DropMessage(round int, slot int32) bool {
	if round < d.FromRound || (d.ToRound > 0 && round >= d.ToRound) {
		return false
	}
	if !hashBernoulli(d.Seed^dropSalt, uint64(round)<<32|uint64(uint32(slot)), d.P) {
		return false
	}
	d.drops.Add(1)
	return true
}

// Crashed implements congest.FaultModel; a pure drop plan crashes nobody.
func (d *DropPlan) Crashed(round int, v graph.NodeID) bool { return false }

// Drops returns how many messages the engine actually discarded so far (the
// engine only consults the plan for slots carrying a fresh message).
func (d *DropPlan) Drops() int64 { return d.drops.Load() }

// ResetCounters zeroes the loss counter, e.g. between runs sharing a plan.
func (d *DropPlan) ResetCounters() { d.drops.Store(0) }

// CrashPlan crashes each node independently with probability P for the
// round window [FromRound, FromRound+Downtime) and restarts it afterwards
// with its state intact (crash-restart, not crash-stop). Downtime <= 0
// disables the plan. Which nodes crash is a pure hash of (Seed, node).
type CrashPlan struct {
	Seed      uint64
	P         float64
	FromRound int
	Downtime  int
}

// DropMessage implements congest.FaultModel; a pure crash plan drops nothing.
func (c *CrashPlan) DropMessage(round int, slot int32) bool { return false }

// Crashed implements congest.FaultModel.
func (c *CrashPlan) Crashed(round int, v graph.NodeID) bool {
	if round < c.FromRound || round >= c.FromRound+c.Downtime {
		return false
	}
	return hashBernoulli(c.Seed^crashSalt, uint64(v), c.P)
}

// Selected reports whether v is one of the nodes this plan crashes during
// its window — useful for asserting which nodes were frozen.
func (c *CrashPlan) Selected(v graph.NodeID) bool {
	if c.Downtime <= 0 {
		return false
	}
	return hashBernoulli(c.Seed^crashSalt, uint64(v), c.P)
}

// Plan composes an optional DropPlan and an optional CrashPlan into one
// congest.FaultModel. Either field may be nil.
type Plan struct {
	Drop  *DropPlan
	Crash *CrashPlan
}

// DropMessage implements congest.FaultModel.
func (p Plan) DropMessage(round int, slot int32) bool {
	return p.Drop != nil && p.Drop.DropMessage(round, slot)
}

// Crashed implements congest.FaultModel.
func (p Plan) Crashed(round int, v graph.NodeID) bool {
	return p.Crash != nil && p.Crash.Crashed(round, v)
}
