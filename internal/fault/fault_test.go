package fault

import (
	"fmt"
	"reflect"
	"slices"
	"testing"

	"d2color/internal/coloring"
	"d2color/internal/graph"
	"d2color/internal/trial"
	"d2color/internal/verify"
)

// greedyD2 builds a valid distance-2 coloring to corrupt.
func greedyD2(g *graph.Graph) coloring.Coloring {
	view := graph.NewDist2View(g)
	c := coloring.New(g.NumNodes())
	used := make(map[int]bool)
	for v := 0; v < g.NumNodes(); v++ {
		clear(used)
		view.ForEachDist2(graph.NodeID(v), func(w graph.NodeID) bool {
			if c[w] != coloring.Uncolored {
				used[c[w]] = true
			}
			return true
		})
		col := 0
		for used[col] {
			col++
		}
		c[v] = col
	}
	return c
}

// TestCorruptColorsCreatesConflicts: every victim that has a colored d2
// neighbor ends up in the verifier's conflict-node set, for all three
// targets, and the victim list is sorted and duplicate-free.
func TestCorruptColorsCreatesConflicts(t *testing.T) {
	g := graph.GNPWithAverageDegree(200, 6, 3)
	view := graph.NewDist2View(g)
	clean := greedyD2(g)
	if rep := verify.CheckD2(g, clean, 0); !rep.Valid {
		t.Fatalf("fixture coloring invalid: %v", rep.Error())
	}
	for _, target := range []Target{TargetUniform, TargetHighDegree, TargetConflictDense} {
		t.Run(target.String(), func(t *testing.T) {
			c := slices.Clone(clean)
			in := NewInjector(11)
			victims := in.CorruptColors(g, c, 12, target, 0)
			if len(victims) != 12 {
				t.Fatalf("got %d victims, want 12", len(victims))
			}
			if !slices.IsSorted(victims) {
				t.Fatalf("victims not sorted: %v", victims)
			}
			if uniq := slices.Compact(slices.Clone(victims)); len(uniq) != len(victims) {
				t.Fatalf("victims contain duplicates: %v", victims)
			}
			conflicts := verify.ConflictNodesD2(g, c)
			for _, v := range victims {
				if view.Dist2Degree(v) == 0 {
					continue // isolated victims get a random color, no conflict forced
				}
				if _, ok := slices.BinarySearch(conflicts, v); !ok {
					t.Errorf("victim %d (d2-degree %d) not in conflict set %v",
						v, view.Dist2Degree(v), conflicts)
				}
			}
		})
	}
}

func TestCorruptTargetsHub(t *testing.T) {
	g := graph.Star(10) // hub is node 0, degree 9; leaves have degree 1
	c := greedyD2(g)
	victims := NewInjector(5).CorruptColors(g, c, 1, TargetHighDegree, 0)
	if !slices.Equal(victims, []graph.NodeID{0}) {
		t.Fatalf("high-degree target picked %v, want the hub [0]", victims)
	}
}

func TestCorruptAllWhenKExceedsColored(t *testing.T) {
	g := graph.Path(5)
	c := coloring.New(5)
	c[1], c[3] = 0, 1 // only two colored nodes
	victims := NewInjector(1).CorruptColors(g, c, 10, TargetUniform, 4)
	if !slices.Equal(victims, []graph.NodeID{1, 3}) {
		t.Fatalf("got victims %v, want every colored node [1 3]", victims)
	}
	if c[0] != coloring.Uncolored || c[2] != coloring.Uncolored || c[4] != coloring.Uncolored {
		t.Fatalf("uncolored nodes were touched: %v", c)
	}
}

// TestInjectorDeterminism: two injectors with one seed and one call sequence
// produce byte-identical corruption and churn scripts, and the overlays they
// drive end in identical states.
func TestInjectorDeterminism(t *testing.T) {
	base := graph.GNPWithAverageDegree(120, 5, 2)
	clean := greedyD2(base)

	type transcript struct {
		Victims  []graph.NodeID
		Colors   coloring.Coloring
		Ins, Del []graph.Edge
		NewNode  graph.NodeID
		Wire     []graph.Edge
		Removed  graph.NodeID
		Nbrs     []graph.NodeID
		Edges    []graph.Edge // final compacted state
	}
	run := func() transcript {
		in := NewInjector(77)
		c := slices.Clone(clean)
		victims := in.CorruptColors(base, c, 9, TargetUniform, 0)
		o := graph.NewOverlay(base)
		ins := in.InsertRandomEdges(o, 15)
		del := in.DeleteRandomEdges(o, 10)
		nn, wire := in.AddWiredNode(o, 3)
		rm, nbrs, ok := in.RemoveRandomNode(o)
		if !ok {
			t.Fatal("RemoveRandomNode found no live node")
		}
		return transcript{victims, c, ins, del, nn, wire, rm, nbrs, o.Compact().Edges()}
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same-seed transcripts diverge:\na: %+v\nb: %+v", a, b)
	}
	if len(a.Ins) != 15 || len(a.Del) != 10 {
		t.Fatalf("churn script came up short: %d inserts, %d deletes", len(a.Ins), len(a.Del))
	}
}

func TestDropPlanWindowAndDeterminism(t *testing.T) {
	mk := func() *DropPlan { return &DropPlan{Seed: 3, P: 0.5, FromRound: 2, ToRound: 5} }
	p1, p2 := mk(), mk()
	inWindow, dropped := 0, 0
	for round := 0; round < 8; round++ {
		for slot := int32(0); slot < 200; slot++ {
			d1 := p1.DropMessage(round, slot)
			if d2 := p2.DropMessage(round, slot); d1 != d2 {
				t.Fatalf("decision for (round %d, slot %d) not deterministic", round, slot)
			}
			if round < 2 || round >= 5 {
				if d1 {
					t.Fatalf("dropped outside window at round %d", round)
				}
				continue
			}
			inWindow++
			if d1 {
				dropped++
			}
		}
	}
	if dropped == 0 || dropped == inWindow {
		t.Fatalf("p=0.5 dropped %d of %d in-window messages", dropped, inWindow)
	}
	if got := p1.Drops(); got != int64(dropped) {
		t.Fatalf("Drops() = %d, want %d", got, dropped)
	}
	p1.ResetCounters()
	if p1.Drops() != 0 {
		t.Fatal("ResetCounters did not zero the drop counter")
	}
	always := &DropPlan{Seed: 1, P: 1}
	if !always.DropMessage(0, 0) {
		t.Fatal("P=1 plan delivered a message")
	}
	never := &DropPlan{Seed: 1, P: 0}
	if never.DropMessage(0, 0) {
		t.Fatal("P=0 plan dropped a message")
	}
}

func TestCrashPlanWindow(t *testing.T) {
	p := &CrashPlan{Seed: 9, P: 0.4, FromRound: 3, Downtime: 2}
	crashedAny := false
	for v := graph.NodeID(0); v < 100; v++ {
		sel := p.Selected(v)
		crashedAny = crashedAny || sel
		for round := 0; round < 8; round++ {
			want := sel && round >= 3 && round < 5
			if got := p.Crashed(round, v); got != want {
				t.Fatalf("Crashed(%d, %d) = %v, want %v", round, v, got, want)
			}
		}
	}
	if !crashedAny {
		t.Fatal("p=0.4 crash plan selected no node out of 100")
	}
	idle := &CrashPlan{Seed: 9, P: 1, FromRound: 0, Downtime: 0}
	if idle.Crashed(0, 0) || idle.Selected(0) {
		t.Fatal("Downtime=0 plan crashed a node")
	}
}

func TestPlanComposesNilSafely(t *testing.T) {
	var empty Plan
	if empty.DropMessage(0, 0) || empty.Crashed(0, 0) {
		t.Fatal("zero Plan injected a fault")
	}
	full := Plan{
		Drop:  &DropPlan{Seed: 2, P: 1},
		Crash: &CrashPlan{Seed: 2, P: 1, FromRound: 0, Downtime: 1},
	}
	if !full.DropMessage(0, 0) || !full.Crashed(0, 0) {
		t.Fatal("composed Plan suppressed its members")
	}
}

// TestTrialUnderMessageLoss is the loss story end to end: a trial run under a
// lossy network is still byte-deterministic (identical colorings and drop
// counts across two runs), loses real messages, and — because dropped
// adoption notifications leave neighbors with stale knowledge — can adopt
// conflicting colors that the verifier's conflict-node set then catches.
func TestTrialUnderMessageLoss(t *testing.T) {
	g := graph.GNPWithAverageDegree(150, 6, 3)
	maxDeg := 0
	for v := 0; v < g.NumNodes(); v++ {
		if d := g.Degree(graph.NodeID(v)); d > maxDeg {
			maxDeg = d
		}
	}
	// A tight palette plus moderate loss is the conflict-producing regime:
	// color collisions are frequent, and a dropped adoption broadcast leaves
	// the common neighbor unable to veto the second adoption. (High loss
	// rates produce *fewer* conflicts — adoption needs all 2·deg message legs
	// of a phase to survive, so almost nothing gets colored at all.)
	runOnce := func() (coloring.Coloring, int64) {
		plan := &DropPlan{Seed: 21, P: 0.1}
		res, _ := trial.Run(g, trial.Config{
			PaletteSize: maxDeg + 1,
			Scope:       trial.ScopeDistance2,
			MaxPhases:   40,
			Seed:        5,
			Faults:      plan,
		})
		return res.Coloring, plan.Drops()
	}
	c1, drops1 := runOnce()
	c2, drops2 := runOnce()
	if !slices.Equal(c1, c2) {
		t.Fatal("lossy trial runs with one seed produced different colorings")
	}
	if drops1 != drops2 {
		t.Fatalf("drop counts diverge across identical runs: %d vs %d", drops1, drops2)
	}
	if drops1 == 0 {
		t.Fatal("p=0.1 drop plan lost no message")
	}
	conflicts := verify.ConflictNodesD2(g, c1)
	if len(conflicts) == 0 {
		t.Fatal("lossy run produced no d2 conflicts — the loss story fixture regressed")
	}
	t.Logf("lossy run: %d drops, %d conflict nodes", drops1, len(conflicts))
}

func BenchmarkDropDecision(b *testing.B) {
	p := &DropPlan{Seed: 7, P: 0.1}
	for i := 0; i < b.N; i++ {
		p.DropMessage(i&1023, int32(i))
	}
}

func ExampleInjector_CorruptColors() {
	g := graph.Star(6)
	c := greedyD2(g)
	victims := NewInjector(42).CorruptColors(g, c, 2, TargetHighDegree, 0)
	fmt.Println(len(victims))
	// Output: 2
}
