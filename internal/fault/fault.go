// Package fault is the adversary of the robustness plane: a deterministic,
// seeded injector that corrupts colorings (targeted at high-degree or
// conflict-dense nodes as well as uniformly), drives edge/node churn scripts
// against a graph.Overlay, and supplies engine-pluggable message-drop and
// node-crash models (see loss.go).
//
// Determinism is the package's contract: every decision is drawn from one
// sequential SplitMix64 stream owned by the Injector (or, for the engine
// fault models, from a pure hash of (seed, round, slot/node)), so two
// injectors with the same seed and the same call sequence produce
// byte-identical victim sets, corrupt colors and churn scripts — which is
// what makes fault-injected experiments and their repair transcripts exactly
// reproducible.
package fault

import (
	"fmt"
	"slices"
	"sort"

	"d2color/internal/coloring"
	"d2color/internal/graph"
	"d2color/internal/rng"
)

// Target selects how CorruptColors picks its victims.
type Target int

const (
	// TargetUniform corrupts uniformly random colored nodes.
	TargetUniform Target = iota
	// TargetHighDegree corrupts the highest-degree colored nodes (ties by
	// ascending ID) — the hubs whose distance-2 balls are largest, so repair
	// pays its worst locality.
	TargetHighDegree
	// TargetConflictDense corrupts the nodes with the largest distance-2
	// degree (ties by ascending ID): the densest conflict neighborhoods,
	// where a duplicated color collides with the most constraints.
	TargetConflictDense
)

func (t Target) String() string {
	switch t {
	case TargetUniform:
		return "uniform"
	case TargetHighDegree:
		return "high-degree"
	case TargetConflictDense:
		return "conflict-dense"
	default:
		return fmt.Sprintf("Target(%d)", int(t))
	}
}

// Injector is a deterministic fault source. Not safe for concurrent use.
type Injector struct {
	src *rng.Source
}

// NewInjector returns an injector whose entire behavior is a function of
// seed and the sequence of calls made on it.
func NewInjector(seed uint64) *Injector {
	return &Injector{src: rng.Split(seed, 0xFA017)}
}

// insertAttemptSlack bounds rejection sampling in the churn helpers: after
// 20 tries per requested event plus a flat floor, the injector gives up on
// the remainder (a nearly-complete graph simply has no room for more edges).
const insertAttemptSlack = 20

// CorruptColors adversarially corrupts the colors of k victims of c in
// place. A victim's new color duplicates a uniformly chosen colored
// distance-2 neighbor's color — a guaranteed conflict — falling back to a
// uniform color from [0, palette) for victims with no colored d2 neighbor.
// Victims are distinct colored nodes selected per target; fewer than k
// colored nodes means every one is hit. The sorted victim set is returned —
// exactly the dirty set a repair pass should be seeded with.
func (in *Injector) CorruptColors(g *graph.Graph, c coloring.Coloring, k int, target Target, palette int) []graph.NodeID {
	n := g.NumNodes()
	if len(c) != n {
		panic(fmt.Sprintf("fault: coloring has %d entries for %d nodes", len(c), n))
	}
	if palette <= 0 {
		palette = 1
		for _, col := range c {
			if col >= palette {
				palette = col + 1
			}
		}
	}
	victims := in.pickVictims(g, c, k, target)
	slices.Sort(victims)
	view := graph.NewDist2View(g)
	var nbrColors []int
	for _, v := range victims {
		nbrColors = nbrColors[:0]
		view.ForEachDist2(v, func(w graph.NodeID) bool {
			if c[w] != coloring.Uncolored {
				nbrColors = append(nbrColors, c[w])
			}
			return true
		})
		if len(nbrColors) > 0 {
			c[v] = nbrColors[in.src.Intn(len(nbrColors))]
		} else {
			c[v] = in.src.Intn(palette)
		}
	}
	return victims
}

// pickVictims selects k distinct colored nodes per target.
func (in *Injector) pickVictims(g *graph.Graph, c coloring.Coloring, k int, target Target) []graph.NodeID {
	n := g.NumNodes()
	colored := make([]graph.NodeID, 0, n)
	for v := 0; v < n; v++ {
		if c[v] != coloring.Uncolored {
			colored = append(colored, graph.NodeID(v))
		}
	}
	if k >= len(colored) {
		return colored
	}
	switch target {
	case TargetHighDegree:
		sort.SliceStable(colored, func(i, j int) bool {
			di, dj := g.Degree(colored[i]), g.Degree(colored[j])
			if di != dj {
				return di > dj
			}
			return colored[i] < colored[j]
		})
		return slices.Clone(colored[:k])
	case TargetConflictDense:
		view := graph.NewDist2View(g)
		d2 := make([]int, len(colored))
		for i, v := range colored {
			d2[i] = view.Dist2Degree(v)
		}
		idx := make([]int, len(colored))
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(a, b int) bool {
			if d2[idx[a]] != d2[idx[b]] {
				return d2[idx[a]] > d2[idx[b]]
			}
			return colored[idx[a]] < colored[idx[b]]
		})
		out := make([]graph.NodeID, k)
		for i := 0; i < k; i++ {
			out[i] = colored[idx[i]]
		}
		return out
	default: // TargetUniform: rejection-sample distinct colored nodes
		marks := graph.NewMarkSet(n)
		out := make([]graph.NodeID, 0, k)
		for len(out) < k {
			v := colored[in.src.Intn(len(colored))]
			if marks.Add(v) {
				out = append(out, v)
			}
		}
		return out
	}
}

// InsertRandomEdges inserts up to count random new edges between distinct
// live non-adjacent nodes of o, applying them to the overlay, and returns
// the inserted edges (normalized). On dense or tiny graphs fewer edges may
// be found within the bounded attempt budget.
func (in *Injector) InsertRandomEdges(o *graph.Overlay, count int) []graph.Edge {
	n := o.NumNodes()
	if n < 2 || count <= 0 {
		return nil
	}
	out := make([]graph.Edge, 0, count)
	for attempts := insertAttemptSlack*count + 100; attempts > 0 && len(out) < count; attempts-- {
		u, v := graph.NodeID(in.src.Intn(n)), graph.NodeID(in.src.Intn(n))
		if u == v || !o.Alive(u) || !o.Alive(v) || o.HasEdge(u, v) {
			continue
		}
		if err := o.AddEdge(u, v); err != nil {
			panic(err) // unreachable: endpoints validated above
		}
		out = append(out, graph.Edge{U: u, V: v}.Normalize())
	}
	return out
}

// DeleteRandomEdges deletes up to count random live edges of o, applying the
// deletions, and returns the removed edges (normalized). Endpoint-biased
// sampling (uniform node, then uniform incident edge) keeps each draw O(deg)
// without materializing the edge list; churn scripts do not need exact
// edge-uniformity.
func (in *Injector) DeleteRandomEdges(o *graph.Overlay, count int) []graph.Edge {
	n := o.NumNodes()
	if n == 0 || count <= 0 || o.NumEdges() == 0 {
		return nil
	}
	out := make([]graph.Edge, 0, count)
	for attempts := insertAttemptSlack*count + 100; attempts > 0 && len(out) < count; attempts-- {
		if o.NumEdges() == 0 {
			break
		}
		u := graph.NodeID(in.src.Intn(n))
		deg := o.Degree(u)
		if deg == 0 {
			continue
		}
		j := in.src.Intn(deg)
		var v graph.NodeID = -1
		o.ForEachNeighbor(u, func(w graph.NodeID) bool {
			if j == 0 {
				v = w
				return false
			}
			j--
			return true
		})
		if v < 0 || !o.RemoveEdge(u, v) {
			continue
		}
		out = append(out, graph.Edge{U: u, V: v}.Normalize())
	}
	return out
}

// AddWiredNode appends one node to o and wires it to up to wire random
// distinct live nodes, returning the new node's ID and its edges.
func (in *Injector) AddWiredNode(o *graph.Overlay, wire int) (graph.NodeID, []graph.Edge) {
	v := o.AddNodes(1)
	if wire <= 0 || o.NumLiveNodes() < 2 {
		return v, nil
	}
	out := make([]graph.Edge, 0, wire)
	for attempts := insertAttemptSlack*wire + 100; attempts > 0 && len(out) < wire; attempts-- {
		u := graph.NodeID(in.src.Intn(o.NumNodes()))
		if u == v || !o.Alive(u) || o.HasEdge(u, v) {
			continue
		}
		if err := o.AddEdge(u, v); err != nil {
			panic(err)
		}
		out = append(out, graph.Edge{U: u, V: v}.Normalize())
	}
	return v, out
}

// RemoveRandomNode tombstones a uniformly random live node of o, returning
// it with its former neighbors (the nodes whose constraints changed — dirty
// seeds for repair). ok is false when no live node was found.
func (in *Injector) RemoveRandomNode(o *graph.Overlay) (v graph.NodeID, nbrs []graph.NodeID, ok bool) {
	n := o.NumNodes()
	if o.NumLiveNodes() == 0 {
		return -1, nil, false
	}
	for attempts := insertAttemptSlack + 100; attempts > 0; attempts-- {
		cand := graph.NodeID(in.src.Intn(n))
		if !o.Alive(cand) {
			continue
		}
		nbrs = o.AppendNeighbors(nil, cand)
		o.RemoveNode(cand)
		return cand, nbrs, true
	}
	return -1, nil, false
}
