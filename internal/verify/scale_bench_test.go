package verify

import "testing"

// BenchmarkVerifyScale1M measures the full CheckD2 pass at the million-node
// scale of experiment E11 (sparse GNP, greedy-colored). Excluded from the
// pinned CI set; run manually to reproduce the README scale table.
func BenchmarkVerifyScale1M(b *testing.B) {
	g, c := benchGraphAndColoring(1_000_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rep := CheckD2(g, c, 0); !rep.Valid {
			b.Fatal("valid coloring rejected")
		}
	}
}
