package verify

import (
	"fmt"
	"testing"

	"d2color/internal/coloring"
	"d2color/internal/graph"
)

// benchGraphAndColoring builds a sparse GNP workload together with a valid
// greedy d2-coloring of it (the shape every experiment run feeds the
// verifier).
func benchGraphAndColoring(n int) (*graph.Graph, coloring.Coloring) {
	g := graph.GNPWithAverageDegree(n, 8, 17)
	d2 := graph.NewDist2View(g)
	c := coloring.New(n)
	used := map[int]bool{}
	for v := 0; v < n; v++ {
		clear(used)
		d2.ForEachDist2(graph.NodeID(v), func(u graph.NodeID) bool {
			if c[u] != coloring.Uncolored {
				used[c[u]] = true
			}
			return true
		})
		col := 0
		for used[col] {
			col++
		}
		c[v] = col
	}
	return g, c
}

// BenchmarkVerify measures the full CheckD2 pass (conflict scan + color
// stats) on a valid coloring — the verifier cost every experiment repetition
// pays.
func BenchmarkVerify(b *testing.B) {
	for _, n := range []int{10_000, 100_000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			g, c := benchGraphAndColoring(n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if rep := CheckD2(g, c, 0); !rep.Valid {
					b.Fatal("valid coloring rejected")
				}
			}
		})
	}
}

// BenchmarkVerifyOutOfRange measures CheckD2 on a coloring sprinkled with
// colors outside the dense table range (the corrupt-coloring slow path): the
// out-of-range bookkeeping must not churn allocations per neighborhood.
func BenchmarkVerifyOutOfRange(b *testing.B) {
	g, c := benchGraphAndColoring(10_000)
	huge := int(^uint(0)>>1) - 64
	for v := 0; v < len(c); v += 97 {
		c[v] = huge + v%13 // far outside any dense table
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := CheckD2(g, c, 0)
		if rep.Valid {
			b.Fatal("out-of-palette colors must be flagged by the complete check")
		}
	}
}

// benchWarmedValid is the shared body of the 0-alloc regression gates: a
// warmed Checker running CheckD2 on a valid coloring (optionally sprinkled
// with distinct out-of-range colors, exercising the pooled slow list).
func benchWarmedValid(b *testing.B, outOfRange bool) {
	g, c := benchGraphAndColoring(10_000)
	if outOfRange {
		huge := int(^uint(0)>>1) - len(c)
		for v := 0; v < len(c); v += 97 {
			c[v] = huge + v // distinct per node: valid, but far outside the dense range
		}
	}
	ch := NewChecker()
	if rep := ch.CheckD2(g, c, 0); !rep.Valid {
		b.Fatal("coloring must be valid")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rep := ch.CheckD2(g, c, 0); !rep.Valid {
			b.Fatal("valid coloring rejected")
		}
	}
}

// BenchmarkVerifyWarmed is the warmed-Checker probe; its 0 allocs/op
// acceptance criterion is enforced by TestVerifyAllocFree.
func BenchmarkVerifyWarmed(b *testing.B) {
	b.Run("dense", func(b *testing.B) { benchWarmedValid(b, false) })
	b.Run("outOfRange", func(b *testing.B) { benchWarmedValid(b, true) })
}

// TestVerifyAllocFree asserts that a warmed verifier performs zero heap
// allocations per pass, on purely dense colorings and on colorings routed
// through the out-of-range slow list alike.
func TestVerifyAllocFree(t *testing.T) {
	if testing.Short() {
		t.Skip("n=10k benchmark probe skipped in -short mode")
	}
	for _, tc := range []struct {
		name       string
		outOfRange bool
	}{{"dense", false}, {"outOfRange", true}} {
		res := testing.Benchmark(func(b *testing.B) { benchWarmedValid(b, tc.outOfRange) })
		if allocs := res.AllocsPerOp(); allocs != 0 {
			t.Errorf("%s: warmed CheckD2 at n=10k: %d allocs/op, want 0", tc.name, allocs)
		}
	}
}
