package verify

import (
	"testing"

	"d2color/internal/coloring"
	"d2color/internal/graph"
)

func pathColoring(n int, colors ...int) coloring.Coloring {
	c := coloring.New(n)
	for i, col := range colors {
		c[i] = col
	}
	return c
}

func TestCheckD1Valid(t *testing.T) {
	g := graph.Path(4)
	c := pathColoring(4, 0, 1, 0, 1)
	rep := CheckD1(g, c, 2)
	if !rep.Valid {
		t.Fatalf("valid 2-coloring of a path rejected: %v", rep.Error())
	}
	if rep.ColorsUsed != 2 || rep.MaxColor != 1 {
		t.Errorf("stats = %+v", rep)
	}
	if rep.Error() != nil {
		t.Error("Error() should be nil for a valid report")
	}
}

func TestCheckD1Conflict(t *testing.T) {
	g := graph.Path(3)
	c := pathColoring(3, 0, 0, 1)
	rep := CheckD1(g, c, 2)
	if rep.Valid {
		t.Fatal("adjacent same-colored nodes should be rejected")
	}
	if rep.Violations[0].Kind != "conflict-d1" {
		t.Errorf("violation kind = %q, want conflict-d1", rep.Violations[0].Kind)
	}
	if rep.Error() == nil {
		t.Error("Error() should be non-nil for an invalid report")
	}
}

func TestCheckD2ValidAndConflict(t *testing.T) {
	// Path 0-1-2: a valid d2-coloring needs 3 colors for the middle section.
	g := graph.Path(3)
	valid := pathColoring(3, 0, 1, 2)
	if rep := CheckD2(g, valid, 3); !rep.Valid {
		t.Fatalf("valid d2-coloring rejected: %v", rep.Error())
	}
	// 0 and 2 are at distance 2, same color -> invalid for d2, valid for d1.
	bad := pathColoring(3, 0, 1, 0)
	if rep := CheckD1(g, bad, 2); !rep.Valid {
		t.Error("distance-2 conflict should be fine for a d1 check")
	}
	rep := CheckD2(g, bad, 2)
	if rep.Valid {
		t.Fatal("distance-2 conflict not detected")
	}
	if rep.Violations[0].Kind != "conflict-d2" {
		t.Errorf("violation kind = %q, want conflict-d2", rep.Violations[0].Kind)
	}
}

func TestUncoloredDetected(t *testing.T) {
	g := graph.Path(3)
	c := coloring.New(3)
	c[0] = 0
	rep := CheckD2(g, c, 3)
	if rep.Valid {
		t.Fatal("incomplete coloring accepted")
	}
	foundUncolored := false
	for _, v := range rep.Violations {
		if v.Kind == "uncolored" {
			foundUncolored = true
		}
	}
	if !foundUncolored {
		t.Error("missing 'uncolored' violation")
	}
}

func TestPaletteBound(t *testing.T) {
	g := graph.Path(2)
	c := pathColoring(2, 0, 9)
	rep := CheckD1(g, c, 5)
	if rep.Valid {
		t.Fatal("color outside palette accepted")
	}
	if rep.Violations[0].Kind != "palette" {
		t.Errorf("violation kind = %q, want palette", rep.Violations[0].Kind)
	}
	// paletteSize <= 0 skips the bound check.
	if rep := CheckD1(g, c, 0); !rep.Valid {
		t.Error("palette bound should be skipped when paletteSize <= 0")
	}
}

func TestLengthMismatch(t *testing.T) {
	g := graph.Path(4)
	c := coloring.New(2)
	if rep := CheckD2(g, c, 3); rep.Valid {
		t.Error("length mismatch should be rejected")
	}
	if rep := CheckPartialD2(g, c); rep.Valid {
		t.Error("length mismatch should be rejected by partial check too")
	}
}

func TestCheckPartialD2(t *testing.T) {
	g := graph.Star(5) // G² is a clique on 5 nodes
	c := coloring.New(5)
	c[1] = 3
	c[2] = 4
	if rep := CheckPartialD2(g, c); !rep.Valid {
		t.Fatalf("conflict-free partial coloring rejected: %v", rep.Error())
	}
	c[3] = 3 // leaves 1 and 3 share a color but are d2-adjacent through the hub
	rep := CheckPartialD2(g, c)
	if rep.Valid {
		t.Fatal("partial d2 conflict not detected")
	}
}

func TestGreedySquareColoringAlwaysValid(t *testing.T) {
	// Sanity: a sequential greedy coloring of G² must pass CheckD2 on a
	// variety of graphs. This also exercises the checker on larger inputs.
	gens := []*graph.Graph{
		graph.GNP(60, 0.08, 1),
		graph.Grid(6, 7),
		graph.CliqueChain(4, 5, 0),
		graph.Star(20),
		graph.NewBuilder(0).Build(),
		graph.NewBuilder(1).Build(),
	}
	for gi, g := range gens {
		sq := g.Square()
		c := coloring.New(g.NumNodes())
		for v := 0; v < g.NumNodes(); v++ {
			used := make(map[int]bool)
			for _, u := range sq.Neighbors(graph.NodeID(v)) {
				if c[u] != coloring.Uncolored {
					used[c[u]] = true
				}
			}
			col := 0
			for used[col] {
				col++
			}
			c[v] = col
		}
		rep := CheckD2(g, c, 0)
		if !rep.Valid {
			t.Errorf("graph %d: greedy square coloring rejected: %v", gi, rep.Error())
		}
	}
}

func TestViolationString(t *testing.T) {
	v := Violation{Kind: "conflict-d2", U: 1, V: 2, Info: "share color 3"}
	if v.String() == "" {
		t.Error("Violation.String should be non-empty")
	}
}

func TestViolationCap(t *testing.T) {
	// A monochromatic clique produces a quadratic number of conflicts; the
	// report must stay bounded.
	g := graph.Complete(40)
	c := coloring.New(40)
	for i := range c {
		c[i] = 0
	}
	rep := CheckD2(g, c, 1)
	if rep.Valid {
		t.Fatal("monochromatic clique accepted")
	}
	if len(rep.Violations) > maxViolations {
		t.Errorf("violations not capped: %d", len(rep.Violations))
	}
}

func TestCheckPartialD2DetectsNegativeSentinelConflicts(t *testing.T) {
	// Regression: a buggy negative color (any sentinel other than Uncolored)
	// shared within distance 2 must still be reported — CheckPartialD2 has no
	// palette bound, so the conflict scan is the only thing that can catch it.
	g := graph.Path(3)
	c := coloring.New(3)
	c[0] = -2
	c[2] = -2 // distance 2 through node 1
	rep := CheckPartialD2(g, c)
	if rep.Valid {
		t.Fatal("two distance-2 nodes sharing color -2 must be invalid")
	}
	found := false
	for _, v := range rep.Violations {
		if v.Kind == "conflict-d2" {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected a conflict-d2 violation, got %v", rep.Violations)
	}
}

func TestCheckD2SurvivesHugeColors(t *testing.T) {
	// Regression: a corrupt coloring with an enormous color value must yield
	// a Report (palette violation + detected conflicts), not an OOM-sized
	// dense table or a makeslice panic.
	g := graph.Path(3)
	c := coloring.New(3)
	huge := int(^uint(0) >> 1) // math.MaxInt
	c[0] = huge
	c[1] = 5
	c[2] = huge // conflicts with node 0 at distance 2
	rep := CheckD2(g, c, 10)
	if rep.Valid {
		t.Fatal("huge out-of-palette colors must be invalid")
	}
	foundConflict := false
	for _, v := range rep.Violations {
		if v.Kind == "conflict-d2" {
			foundConflict = true
		}
	}
	if !foundConflict {
		t.Fatalf("the shared huge color must still be reported as a d2 conflict, got %v", rep.Violations)
	}
}
