package verify

import (
	"fmt"
	"slices"
	"testing"

	"d2color/internal/coloring"
	"d2color/internal/graph"
	"d2color/internal/rng"
)

// conflictNodesOracle finds every node in a d2 conflict by brute-force pair
// enumeration over a streaming distance-2 view.
func conflictNodesOracle(g *graph.Graph, c coloring.Coloring) []graph.NodeID {
	view := graph.NewDist2View(g)
	var out []graph.NodeID
	var buf []graph.NodeID
	for u := 0; u < g.NumNodes(); u++ {
		if c[u] == coloring.Uncolored {
			continue
		}
		hit := false
		buf = view.AppendDist2(buf[:0], graph.NodeID(u))
		for _, v := range buf {
			if c[v] != coloring.Uncolored && c[v] == c[u] {
				hit = true
				break
			}
		}
		if hit {
			out = append(out, graph.NodeID(u))
		}
	}
	return out
}

func TestConflictNodesD2MatchesOracle(t *testing.T) {
	families := []struct {
		name string
		g    *graph.Graph
	}{
		{"gnp", graph.GNPWithAverageDegree(150, 7, 3)},
		{"unitdisk", graph.UnitDisk(90, 0.16, 5)},
		{"star", graph.Star(24)},
		{"cliquechain", graph.CliqueChain(4, 5, 0)},
	}
	for _, fam := range families {
		for _, seed := range []uint64{1, 7, 42} {
			t.Run(fmt.Sprintf("%s/seed%d", fam.name, seed), func(t *testing.T) {
				n := fam.g.NumNodes()
				src := rng.New(seed)
				// Start from a proper coloring? Not needed: a random small
				// palette guarantees plenty of conflicts, some uncolored
				// nodes, and a few out-of-dense-range colors to exercise the
				// slow table.
				c := coloring.New(n)
				for v := 0; v < n; v++ {
					switch src.Intn(10) {
					case 0: // stays uncolored
					case 1:
						c[v] = 1 << 40 // huge color: slow-table path
					default:
						c[v] = src.Intn(6)
					}
				}
				want := conflictNodesOracle(fam.g, c)
				ch := NewChecker()
				got := ch.AppendConflictNodesD2(fam.g, c, nil)
				if !slices.Equal(got, want) {
					t.Fatalf("conflict set diverges from oracle:\ngot  %v\nwant %v", got, want)
				}
				// Pooled reuse: a second pass on the same Checker agrees.
				if again := ch.AppendConflictNodesD2(fam.g, c, nil); !slices.Equal(again, want) {
					t.Fatalf("warm Checker diverged on reuse: %v", again)
				}
				// Packed path agrees wherever the packed form can represent
				// the coloring (no huge colors).
				clean := coloring.New(n)
				for v := range clean {
					if c[v] != coloring.Uncolored && c[v] < 6 {
						clean[v] = c[v]
					}
				}
				p := coloring.NewPacked(n, 6)
				for v := range clean {
					if clean[v] != coloring.Uncolored {
						p.Set(graph.NodeID(v), clean[v])
					}
				}
				wantClean := conflictNodesOracle(fam.g, clean)
				if gotPacked := ch.AppendConflictNodesD2Packed(fam.g, p, nil); !slices.Equal(gotPacked, wantClean) {
					t.Fatalf("packed conflict set diverges: got %v want %v", gotPacked, wantClean)
				}
			})
		}
	}
}

func TestConflictNodesD2CleanColoring(t *testing.T) {
	g := graph.Grid(6, 6)
	// Color by (row*3+col) mod pattern wide enough to be d2-valid on a grid:
	// use a 3x3 tiling → 9 colors, distance-2 valid.
	c := coloring.New(g.NumNodes())
	for r := 0; r < 6; r++ {
		for col := 0; col < 6; col++ {
			c[r*6+col] = (r%3)*3 + col%3
		}
	}
	if rep := CheckD2(g, c, 0); !rep.Valid {
		t.Fatalf("fixture coloring invalid: %v", rep.Error())
	}
	if got := ConflictNodesD2(g, c); len(got) != 0 {
		t.Fatalf("clean coloring produced conflict nodes %v", got)
	}
}

// TestConflictNodesD2AppendsToDst: the dst-append contract — existing prefix
// untouched, appended suffix sorted.
func TestConflictNodesD2AppendsToDst(t *testing.T) {
	g := graph.Path(4)
	c := pathColoring(4, 0, 1, 0, 2) // nodes 0 and 2 share a color at distance 2
	dst := []graph.NodeID{99}
	ch := NewChecker()
	dst = ch.AppendConflictNodesD2(g, c, dst)
	want := []graph.NodeID{99, 0, 2}
	if !slices.Equal(dst, want) {
		t.Fatalf("got %v want %v", dst, want)
	}
}

// TestCountOnlyPathStillAllocFree guards the satellite constraint: adding the
// conflict-set scan must not cost the warmed count-only Report path its
// 0 allocs/op.
func TestCountOnlyPathStillAllocFree(t *testing.T) {
	g := graph.GNPWithAverageDegree(400, 8, 1)
	c := coloring.New(g.NumNodes())
	for v := range c {
		c[v] = v // trivially valid
	}
	ch := NewChecker()
	ch.CheckD2(g, c, 0) // warm
	if allocs := testing.AllocsPerRun(10, func() { ch.CheckD2(g, c, 0) }); allocs > 0 {
		t.Errorf("warmed CheckD2 allocated %.1f times, want 0", allocs)
	}
	// The conflict-set path itself is also alloc-free once warmed and given
	// a capacious dst.
	buf := make([]graph.NodeID, 0, g.NumNodes())
	ch.AppendConflictNodesD2(g, c, buf)
	if allocs := testing.AllocsPerRun(10, func() { ch.AppendConflictNodesD2(g, c, buf[:0]) }); allocs > 0 {
		t.Errorf("warmed AppendConflictNodesD2 allocated %.1f times, want 0", allocs)
	}
}
