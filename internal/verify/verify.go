// Package verify is the correctness oracle for colorings: it checks
// distance-1 and distance-2 validity, completeness and palette bounds. Every
// test and every experiment run passes its output through these checks, so a
// bug in an algorithm cannot silently produce an invalid result.
package verify

import (
	"fmt"

	"d2color/internal/coloring"
	"d2color/internal/graph"
)

// Violation describes a single constraint violation found by a check.
type Violation struct {
	Kind string       // "uncolored", "conflict-d1", "conflict-d2", "palette"
	U, V graph.NodeID // offending node(s); V is -1 for single-node violations
	Info string
}

func (v Violation) String() string {
	return fmt.Sprintf("%s: u=%d v=%d %s", v.Kind, v.U, v.V, v.Info)
}

// Report is the outcome of a verification pass.
type Report struct {
	Valid      bool
	Violations []Violation
	ColorsUsed int
	MaxColor   int
}

// Error returns nil if the report is valid, otherwise an error summarizing
// the first violation and the violation count.
func (r Report) Error() error {
	if r.Valid {
		return nil
	}
	first := ""
	if len(r.Violations) > 0 {
		first = r.Violations[0].String()
	}
	return fmt.Errorf("verify: %d violation(s), first: %s", len(r.Violations), first)
}

// maxViolations bounds how many violations a report records, so that a badly
// broken coloring does not produce an enormous report.
const maxViolations = 64

// CheckD2 verifies that c is a complete, valid distance-2 coloring of g with
// all colors inside [0, paletteSize). Pass paletteSize <= 0 to skip the
// palette bound check.
func CheckD2(g *graph.Graph, c coloring.Coloring, paletteSize int) Report {
	return check(g, c, paletteSize, true)
}

// CheckD1 verifies that c is a complete, valid (distance-1) vertex coloring
// of g with all colors inside [0, paletteSize). Pass paletteSize <= 0 to skip
// the palette bound check.
func CheckD1(g *graph.Graph, c coloring.Coloring, paletteSize int) Report {
	return check(g, c, paletteSize, false)
}

// CheckPartialD2 verifies that the colored subset of c has no distance-2
// conflicts (uncolored nodes are allowed). This is the invariant maintained
// at every intermediate step of every algorithm.
func CheckPartialD2(g *graph.Graph, c coloring.Coloring) Report {
	rep := Report{Valid: true}
	if len(c) != g.NumNodes() {
		rep.addViolation(Violation{Kind: "palette", U: -1, V: -1,
			Info: fmt.Sprintf("coloring has %d entries for %d nodes", len(c), g.NumNodes())})
		return rep
	}
	checkConflicts(g, c, true, &rep)
	fillColorStats(c, &rep)
	return rep
}

func check(g *graph.Graph, c coloring.Coloring, paletteSize int, dist2 bool) Report {
	rep := Report{Valid: true}
	if len(c) != g.NumNodes() {
		rep.addViolation(Violation{Kind: "palette", U: -1, V: -1,
			Info: fmt.Sprintf("coloring has %d entries for %d nodes", len(c), g.NumNodes())})
		return rep
	}
	for u := 0; u < g.NumNodes(); u++ {
		col := c[u]
		if col == coloring.Uncolored {
			rep.addViolation(Violation{Kind: "uncolored", U: graph.NodeID(u), V: -1, Info: "node has no color"})
			continue
		}
		if col < 0 || (paletteSize > 0 && col >= paletteSize) {
			rep.addViolation(Violation{Kind: "palette", U: graph.NodeID(u), V: -1,
				Info: fmt.Sprintf("color %d outside palette [0,%d)", col, paletteSize)})
		}
	}
	checkConflicts(g, c, dist2, &rep)
	fillColorStats(c, &rep)
	return rep
}

// checkConflicts finds colored node pairs at distance 1 (and, if dist2, also
// distance 2) sharing a color.
func checkConflicts(g *graph.Graph, c coloring.Coloring, dist2 bool, rep *Report) {
	if !dist2 {
		for u := 0; u < g.NumNodes(); u++ {
			cu := c[u]
			if cu == coloring.Uncolored {
				continue
			}
			for _, v := range g.Neighbors(graph.NodeID(u)) {
				if int(v) > u && c[v] == cu {
					rep.addViolation(Violation{Kind: "conflict-d1", U: graph.NodeID(u), V: v,
						Info: fmt.Sprintf("both have color %d", cu)})
				}
			}
		}
		return
	}
	// A d2-coloring is equivalent to: for every node w, all colored nodes in
	// {w} ∪ N(w) have distinct colors. Checking that form costs O(Σ deg²)
	// CSR walks and — with the generation-stamped color table below — zero
	// allocations per node, rather than materializing G².
	//
	// The dense table covers the well-formed color range [0, limit); colors
	// outside it (huge values from an upstream overflow bug, or negative
	// sentinels other than Uncolored) go through a small per-neighborhood map
	// so that a corrupt coloring still yields a Report instead of an OOM —
	// and so conflicts between out-of-range colors are still detected (the
	// partial check has no palette bound to catch them otherwise).
	maxColor := -1
	for _, col := range c {
		if col > maxColor {
			maxColor = col
		}
	}
	const denseColorLimit = 1 << 22 // 4M colors ≈ 48 MB of table, far above any sane palette
	limit := 0
	if maxColor >= 0 {
		limit = denseColorLimit
		if maxColor < denseColorLimit {
			limit = maxColor + 1
		}
	}
	seenGen := make([]uint32, limit) // generation stamp per color
	seenBy := make([]graph.NodeID, limit)
	gen := uint32(0)
	var slow map[int]graph.NodeID // colors outside [0, limit), reset per neighborhood
	for w := 0; w < g.NumNodes(); w++ {
		gen++
		if len(slow) > 0 {
			clear(slow)
		}
		consider := func(x graph.NodeID) {
			cx := c[x]
			if cx == coloring.Uncolored {
				return
			}
			if cx >= 0 && cx < limit {
				if seenGen[cx] == gen {
					if prev := seenBy[cx]; prev != x {
						rep.addViolation(Violation{Kind: "conflict-d2", U: prev, V: x,
							Info: fmt.Sprintf("share color %d within the closed neighborhood of %d", cx, w)})
					}
					return
				}
				seenGen[cx] = gen
				seenBy[cx] = x
				return
			}
			if slow == nil {
				slow = make(map[int]graph.NodeID, 4)
			}
			if prev, ok := slow[cx]; ok {
				if prev != x {
					rep.addViolation(Violation{Kind: "conflict-d2", U: prev, V: x,
						Info: fmt.Sprintf("share color %d within the closed neighborhood of %d", cx, w)})
				}
				return
			}
			slow[cx] = x
		}
		consider(graph.NodeID(w))
		for _, v := range g.Neighbors(graph.NodeID(w)) {
			consider(v)
		}
	}
}

func fillColorStats(c coloring.Coloring, rep *Report) {
	rep.ColorsUsed = c.NumColorsUsed()
	rep.MaxColor = c.MaxColor()
}

func (r *Report) addViolation(v Violation) {
	r.Valid = false
	if len(r.Violations) < maxViolations {
		r.Violations = append(r.Violations, v)
	}
}
