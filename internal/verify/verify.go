// Package verify is the correctness oracle for colorings: it checks
// distance-1 and distance-2 validity, completeness and palette bounds. Every
// test and every experiment run passes its output through these checks, so a
// bug in an algorithm cannot silently produce an invalid result.
//
// The checks run on a pooled Checker whose scratch — a generation-stamped
// conflict bitset over colors, plus a pooled, cleared-in-place table for colors outside
// the dense range — is reused across calls, so a warmed verifier performs
// zero heap allocations per pass (see BenchmarkVerify). The package-level
// functions draw Checkers from an internal pool; hot callers that verify in
// a loop can hold their own via NewChecker.
package verify

import (
	"fmt"
	"sync"

	"d2color/internal/bitset"
	"d2color/internal/coloring"
	"d2color/internal/graph"
)

// Violation describes a single constraint violation found by a check.
type Violation struct {
	Kind string       // "uncolored", "conflict-d1", "conflict-d2", "palette"
	U, V graph.NodeID // offending node(s); V is -1 for single-node violations
	Info string
}

func (v Violation) String() string {
	return fmt.Sprintf("%s: u=%d v=%d %s", v.Kind, v.U, v.V, v.Info)
}

// Report is the outcome of a verification pass. When Canceled is set the
// pass was stopped early by the Checker's cooperative cancellation hook
// (SetCancel): Valid is false, and the other fields cover only the prefix
// scanned before the cancel fired — the report must not be treated as a
// verdict on the coloring.
type Report struct {
	Valid      bool
	Violations []Violation
	ColorsUsed int
	MaxColor   int
	Canceled   bool
}

// Error returns nil if the report is valid, otherwise an error summarizing
// the first violation and the violation count.
func (r Report) Error() error {
	if r.Valid {
		return nil
	}
	first := ""
	if len(r.Violations) > 0 {
		first = r.Violations[0].String()
	}
	return fmt.Errorf("verify: %d violation(s), first: %s", len(r.Violations), first)
}

// maxViolations bounds how many violations a report records, so that a badly
// broken coloring does not produce an enormous report.
const maxViolations = 64

// denseColorLimit bounds the dense conflict bitset: 4M colors is 512 KB of
// words plus 256 KB of stamps, far above any sane palette. Colors outside
// [0, denseColorLimit) go through the Checker's slow table.
const denseColorLimit = 1 << 22

// Checker holds the reusable scratch of the verification passes. A Checker
// is not safe for concurrent use; the package-level Check functions draw one
// from an internal pool per call, loops that verify many colorings can hold
// their own. A warmed Checker allocates nothing per pass on a valid
// coloring.
type Checker struct {
	// seen is the generation-stamped conflict bitset over colors
	// [0, limit): one Reset per neighborhood, one fused TestAndSet per
	// colored member. Who previously held a duplicated color is recovered by
	// re-walking the neighborhood — conflicts are the rare case, so the scan
	// stays one bit-op per node on valid colorings instead of maintaining a
	// holder table.
	seen *bitset.Stamped
	// slow is the pooled association table for colors outside the dense
	// range (huge values from an upstream overflow bug, or negative
	// sentinels other than Uncolored). Unlike the former per-call map it is
	// allocated once per Checker and reset in place with clear() — the
	// buckets survive, so a warmed verifier stays allocation-free — and it
	// keeps O(1) lookups so a mass-corrupt coloring (n distinct huge
	// colors) degrades linearly, not quadratically.
	slow map[int]graph.NodeID
	// colors is the cache-dense int32 copy of the coloring the distance-2
	// scan reads instead of the []int original: every in-range color fits
	// (the dense limit is 4M), Uncolored stays -1, and out-of-range colors
	// become the slowColor marker. The scan's random accesses then touch
	// half the memory.
	colors []int32
	// statsRow is the plain row behind the branch-free distinct-color count
	// (ColorsUsed = one Set per node + one popcount).
	statsRow bitset.Row
	// nodeSeen deduplicates the conflict-node-set scan (see conflicts.go).
	// Lazily allocated on the first conflict-set call, so count-only Checkers
	// never pay for it.
	nodeSeen *bitset.Stamped
	// cancel is the optional cooperative cancellation hook (SetCancel),
	// polled every cancelStride nodes by the O(n+m) conflict scan. nil (the
	// default, and always the case for pool-drawn Checkers) disables polling.
	cancel func() bool
}

// cancelStride is how many nodes the conflict scan processes between polls
// of the cancellation hook: frequent enough that a canceled 10⁷-node pass
// stops in well under a millisecond, rare enough to be free on the hot path.
const cancelStride = 2048

// SetCancel installs a cooperative cancellation hook on this Checker: the
// conflict scans poll it periodically and, once it returns true, return a
// Report with Canceled set instead of finishing the pass. nil removes the
// hook. The package-level Check functions use pooled Checkers without hooks;
// only owners of long-lived Checkers (the serving plane's sessions) install
// one.
func (ch *Checker) SetCancel(f func() bool) { ch.cancel = f }

// slowColor marks, in the int32 scratch, a color outside [0, limit); the
// actual value is read back from the original coloring on this (corrupt,
// hence rare) path.
const slowColor = int32(-2)

// NewChecker returns an empty Checker; its scratch grows on first use and is
// reused afterwards.
func NewChecker() *Checker {
	return &Checker{seen: bitset.NewStamped(0), slow: make(map[int]graph.NodeID)}
}

// resetSlow empties the out-of-range table in place (bucket-preserving).
func (ch *Checker) resetSlow() {
	if len(ch.slow) > 0 {
		clear(ch.slow)
	}
}

var checkerPool = sync.Pool{New: func() any { return NewChecker() }}

// colorView is the read access the checks need; coloring.Coloring and
// *coloring.Packed both satisfy it. The checks are generic over it as a type
// parameter — not an interface value — so neither backing is boxed and the
// warmed passes stay allocation-free.
type colorView interface {
	Len() int
	Get(v graph.NodeID) int
}

// CheckD2 verifies that c is a complete, valid distance-2 coloring of g with
// all colors inside [0, paletteSize). Pass paletteSize <= 0 to skip the
// palette bound check.
func CheckD2(g *graph.Graph, c coloring.Coloring, paletteSize int) Report {
	ch := checkerPool.Get().(*Checker)
	defer checkerPool.Put(ch)
	return ch.CheckD2(g, c, paletteSize)
}

// CheckD1 verifies that c is a complete, valid (distance-1) vertex coloring
// of g with all colors inside [0, paletteSize). Pass paletteSize <= 0 to skip
// the palette bound check.
func CheckD1(g *graph.Graph, c coloring.Coloring, paletteSize int) Report {
	ch := checkerPool.Get().(*Checker)
	defer checkerPool.Put(ch)
	return ch.CheckD1(g, c, paletteSize)
}

// CheckPartialD2 verifies that the colored subset of c has no distance-2
// conflicts (uncolored nodes are allowed). This is the invariant maintained
// at every intermediate step of every algorithm.
func CheckPartialD2(g *graph.Graph, c coloring.Coloring) Report {
	ch := checkerPool.Get().(*Checker)
	defer checkerPool.Put(ch)
	return ch.CheckPartialD2(g, c)
}

// CheckD2Packed is CheckD2 over a bit-packed coloring, without unpacking it.
func CheckD2Packed(g *graph.Graph, c *coloring.Packed, paletteSize int) Report {
	ch := checkerPool.Get().(*Checker)
	defer checkerPool.Put(ch)
	return ch.CheckD2Packed(g, c, paletteSize)
}

// CheckD1Packed is CheckD1 over a bit-packed coloring.
func CheckD1Packed(g *graph.Graph, c *coloring.Packed, paletteSize int) Report {
	ch := checkerPool.Get().(*Checker)
	defer checkerPool.Put(ch)
	return ch.CheckD1Packed(g, c, paletteSize)
}

// CheckD2 is the Checker-scoped form of the package-level CheckD2.
func (ch *Checker) CheckD2(g *graph.Graph, c coloring.Coloring, paletteSize int) Report {
	return check(ch, g, c, paletteSize, true)
}

// CheckD1 is the Checker-scoped form of the package-level CheckD1.
func (ch *Checker) CheckD1(g *graph.Graph, c coloring.Coloring, paletteSize int) Report {
	return check(ch, g, c, paletteSize, false)
}

// CheckD2Packed is the Checker-scoped form of the package-level CheckD2Packed.
func (ch *Checker) CheckD2Packed(g *graph.Graph, c *coloring.Packed, paletteSize int) Report {
	return check(ch, g, c, paletteSize, true)
}

// CheckD1Packed is the Checker-scoped form of the package-level CheckD1Packed.
func (ch *Checker) CheckD1Packed(g *graph.Graph, c *coloring.Packed, paletteSize int) Report {
	return check(ch, g, c, paletteSize, false)
}

// CheckPartialD2 is the Checker-scoped form of the package-level
// CheckPartialD2.
func (ch *Checker) CheckPartialD2(g *graph.Graph, c coloring.Coloring) Report {
	return checkPartial(ch, g, c)
}

// CheckPartialD2Packed is CheckPartialD2 over a bit-packed coloring.
func (ch *Checker) CheckPartialD2Packed(g *graph.Graph, c *coloring.Packed) Report {
	return checkPartial(ch, g, c)
}

// checkPartial and check are generic free functions rather than Checker
// methods only because Go methods cannot take type parameters; the Checker
// still owns all scratch.
func checkPartial[C colorView](ch *Checker, g *graph.Graph, c C) Report {
	rep := Report{Valid: true}
	if c.Len() != g.NumNodes() {
		rep.addViolation(Violation{Kind: "palette", U: -1, V: -1,
			Info: fmt.Sprintf("coloring has %d entries for %d nodes", c.Len(), g.NumNodes())})
		return rep
	}
	limit, maxColor := prepare(ch, c)
	checkConflicts(ch, g, c, limit, true, &rep)
	fillColorStats(ch, c, limit, maxColor, &rep)
	return rep
}

func check[C colorView](ch *Checker, g *graph.Graph, c C, paletteSize int, dist2 bool) Report {
	rep := Report{Valid: true}
	if c.Len() != g.NumNodes() {
		rep.addViolation(Violation{Kind: "palette", U: -1, V: -1,
			Info: fmt.Sprintf("coloring has %d entries for %d nodes", c.Len(), g.NumNodes())})
		return rep
	}
	for u := 0; u < g.NumNodes(); u++ {
		col := c.Get(graph.NodeID(u))
		if col == coloring.Uncolored {
			rep.addViolation(Violation{Kind: "uncolored", U: graph.NodeID(u), V: -1, Info: "node has no color"})
			continue
		}
		if col < 0 || (paletteSize > 0 && col >= paletteSize) {
			rep.addViolation(Violation{Kind: "palette", U: graph.NodeID(u), V: -1,
				Info: fmt.Sprintf("color %d outside palette [0,%d)", col, paletteSize)})
		}
	}
	limit, maxColor := prepare(ch, c)
	checkConflicts(ch, g, c, limit, dist2, &rep)
	fillColorStats(ch, c, limit, maxColor, &rep)
	return rep
}

// prepare sizes the conflict bitset for c's color range and rebuilds the
// int32 color scratch, shared by the conflict scan and the color stats. One
// fused pass: any color in [0, denseColorLimit) is below the final limit
// (limit = min(maxColor+1, denseColorLimit) and the color is ≤ maxColor), so
// the conversion can use the fixed cap while the same loop finds maxColor.
func prepare[C colorView](ch *Checker, c C) (limit, maxColor int) {
	n := c.Len()
	if cap(ch.colors) < n {
		ch.colors = make([]int32, n)
	} else {
		ch.colors = ch.colors[:n]
	}
	maxColor = -1
	for i := 0; i < n; i++ {
		col := c.Get(graph.NodeID(i))
		if col > maxColor {
			maxColor = col
		}
		switch {
		case col == coloring.Uncolored:
			ch.colors[i] = -1
		case col >= 0 && col < denseColorLimit:
			ch.colors[i] = int32(col)
		default:
			ch.colors[i] = slowColor
		}
	}
	if maxColor >= 0 {
		limit = denseColorLimit
		if maxColor < denseColorLimit {
			limit = maxColor + 1
		}
	}
	ch.seen.Grow(limit)
	return limit, maxColor
}

// slowSeen records color cx held by x in the out-of-range table and returns
// the previous holder, if any — the pooled slow path shared by the conflict
// scan and the color stats.
func (ch *Checker) slowSeen(cx int, x graph.NodeID) (graph.NodeID, bool) {
	if prev, ok := ch.slow[cx]; ok {
		return prev, true
	}
	ch.slow[cx] = x
	return 0, false
}

// checkConflicts finds colored node pairs at distance 1 (and, if dist2, also
// distance 2) sharing a color. prepare must have run for this coloring: the
// scan reads the cache-dense int32 scratch instead of the []int original.
func checkConflicts[C colorView](ch *Checker, g *graph.Graph, c C, limit int, dist2 bool, rep *Report) {
	colors := ch.colors
	cancel := ch.cancel
	if !dist2 {
		for u := 0; u < g.NumNodes(); u++ {
			if cancel != nil && u%cancelStride == 0 && cancel() {
				rep.Canceled, rep.Valid = true, false
				return
			}
			cu := colors[u]
			if cu == -1 {
				continue
			}
			for _, v := range g.Neighbors(graph.NodeID(u)) {
				// Two slow markers only match when the real colors do.
				if int(v) > u && colors[v] == cu && (cu != slowColor || c.Get(v) == c.Get(graph.NodeID(u))) {
					rep.addViolation(Violation{Kind: "conflict-d1", U: graph.NodeID(u), V: v,
						Info: fmt.Sprintf("both have color %d", c.Get(graph.NodeID(u)))})
				}
			}
		}
		return
	}
	// A d2-coloring is equivalent to: for every node w, all colored nodes in
	// {w} ∪ N(w) have distinct colors. Checking that form costs O(n + m)
	// CSR walks and — with the generation-stamped conflict bitset — zero
	// allocations per node, rather than materializing G². w itself is
	// considered first (it seeds the fresh bitset, never a duplicate), then
	// its neighbors in CSR order — the walk order that defines which holder
	// a violation names.
	for w := 0; w < g.NumNodes(); w++ {
		if cancel != nil && w%cancelStride == 0 && cancel() {
			rep.Canceled, rep.Valid = true, false
			return
		}
		ch.seen.Reset()
		ch.resetSlow()
		nbrs := g.Neighbors(graph.NodeID(w))
		if cw := colors[w]; cw >= 0 {
			ch.seen.Set(int(cw))
		} else if cw == slowColor {
			ch.slowSeen(c.Get(graph.NodeID(w)), graph.NodeID(w))
		}
		for i, x := range nbrs {
			cx := colors[x]
			if cx == -1 {
				continue
			}
			if cx >= 0 {
				if ch.seen.TestAndSet(int(cx)) {
					// Duplicate: recover the first holder by re-walking the
					// prefix (conflicts are the rare case; the holder is the
					// first matching node in walk order, exactly what the
					// former seenBy table stored).
					if prev, ok := ch.firstHolder(graph.NodeID(w), nbrs[:i], cx); ok && prev != x {
						rep.addViolation(Violation{Kind: "conflict-d2", U: prev, V: x,
							Info: fmt.Sprintf("share color %d within the closed neighborhood of %d", c.Get(x), w)})
					}
				}
				continue
			}
			if prev, dup := ch.slowSeen(c.Get(x), x); dup {
				if prev != x {
					rep.addViolation(Violation{Kind: "conflict-d2", U: prev, V: x,
						Info: fmt.Sprintf("share color %d within the closed neighborhood of %d", c.Get(x), w)})
				}
			}
		}
	}
}

// firstHolder returns the first node in neighborhood walk order (w, then the
// given neighbor prefix) whose dense scratch color is cx.
func (ch *Checker) firstHolder(w graph.NodeID, prefix []graph.NodeID, cx int32) (graph.NodeID, bool) {
	if ch.colors[w] == cx {
		return w, true
	}
	for _, v := range prefix {
		if ch.colors[v] == cx {
			return v, true
		}
	}
	return 0, false
}

// fillColorStats computes ColorsUsed and MaxColor with a branch-free mark
// pass over a plain bitset row plus one popcount, instead of a per-call map;
// negative sentinels other than Uncolored count as distinct colors, matching
// Coloring.NumColorsUsed. prepare must have run for this coloring.
func fillColorStats[C colorView](ch *Checker, c C, limit, maxColor int, rep *Report) {
	rep.MaxColor = maxColor
	words := bitset.WordsFor(limit)
	if cap(ch.statsRow) < words {
		ch.statsRow = make(bitset.Row, words)
	} else {
		ch.statsRow = ch.statsRow[:words]
		ch.statsRow.ClearAll()
	}
	ch.resetSlow()
	for i, col := range ch.colors {
		if col >= 0 {
			ch.statsRow.Set(int(col))
		} else if col == slowColor {
			ch.slowSeen(c.Get(graph.NodeID(i)), 0)
		}
	}
	rep.ColorsUsed = ch.statsRow.Count() + len(ch.slow)
}

func (r *Report) addViolation(v Violation) {
	r.Valid = false
	if len(r.Violations) < maxViolations {
		r.Violations = append(r.Violations, v)
	}
}
