package verify

import (
	"fmt"
	"slices"

	"d2color/internal/bitset"
	"d2color/internal/coloring"
	"d2color/internal/graph"
)

// This file is the repair-seeding side of the oracle: where the Report path
// counts violations (capped at maxViolations, because a human reads it), the
// conflict-set path enumerates every node involved in at least one distance-2
// color conflict — exactly the dirty set an incremental repair pass needs.
// The count-only path is untouched: the node-set scan uses its own
// generation-stamped node bitset, allocated lazily on the first conflict-set
// call, so warmed count-only Checkers stay 0 allocs/op.

// ConflictNodesD2 returns every node of g involved in a distance-2 color
// conflict under c, sorted ascending. Uncolored nodes are not conflicts
// (mirror CheckPartialD2); use the Report checks for completeness.
func ConflictNodesD2(g *graph.Graph, c coloring.Coloring) []graph.NodeID {
	ch := checkerPool.Get().(*Checker)
	defer checkerPool.Put(ch)
	return ch.AppendConflictNodesD2(g, c, nil)
}

// AppendConflictNodesD2 appends every node involved in at least one
// distance-2 color conflict to dst and returns the extended slice; the
// appended suffix is sorted ascending and duplicate-free. Unlike the Report
// checks it never caps: a mass corruption reports every victim, which is what
// seeds repair. It panics if c and g disagree on the node count.
func (ch *Checker) AppendConflictNodesD2(g *graph.Graph, c coloring.Coloring, dst []graph.NodeID) []graph.NodeID {
	return appendConflictNodes(ch, g, c, dst)
}

// AppendConflictNodesD2Packed is AppendConflictNodesD2 over a bit-packed
// coloring, without unpacking it.
func (ch *Checker) AppendConflictNodesD2Packed(g *graph.Graph, c *coloring.Packed, dst []graph.NodeID) []graph.NodeID {
	return appendConflictNodes(ch, g, c, dst)
}

// appendConflictNodes runs the same closed-neighborhood scan as
// checkConflicts — a d2-coloring is valid iff for every node w all colored
// nodes of {w} ∪ N(w) have distinct colors — but marks both endpoints of
// every duplicate into a node-indexed stamped bitset instead of building
// (capped) Violations.
func appendConflictNodes[C colorView](ch *Checker, g *graph.Graph, c C, dst []graph.NodeID) []graph.NodeID {
	n := g.NumNodes()
	if c.Len() != n {
		panic(fmt.Sprintf("verify: coloring has %d entries for %d nodes", c.Len(), n))
	}
	prepare(ch, c)
	if ch.nodeSeen == nil {
		ch.nodeSeen = bitset.NewStamped(0)
	}
	ch.nodeSeen.Grow(n)
	ch.nodeSeen.Reset()
	start := len(dst)
	cancel := ch.cancel
	for w := 0; w < n; w++ {
		// Same cooperative cancel poll as the Report scans. The slice has no
		// Canceled flag, so an aborted scan simply returns the conflicts found
		// so far — callers that install a hook re-check it themselves before
		// acting on the (possibly partial) dirty set.
		if cancel != nil && w%cancelStride == 0 && cancel() {
			break
		}
		ch.seen.Reset()
		ch.resetSlow()
		nbrs := g.Neighbors(graph.NodeID(w))
		if cw := ch.colors[w]; cw >= 0 {
			ch.seen.Set(int(cw))
		} else if cw == slowColor {
			ch.slowSeen(c.Get(graph.NodeID(w)), graph.NodeID(w))
		}
		for i, x := range nbrs {
			cx := ch.colors[x]
			if cx == -1 {
				continue
			}
			var prev graph.NodeID
			dup := false
			if cx >= 0 {
				if ch.seen.TestAndSet(int(cx)) {
					prev, dup = ch.firstHolder(graph.NodeID(w), nbrs[:i], cx)
				}
			} else {
				prev, dup = ch.slowSeen(c.Get(x), x)
			}
			if !dup || prev == x {
				continue
			}
			if !ch.nodeSeen.TestAndSet(int(prev)) {
				dst = append(dst, prev)
			}
			if !ch.nodeSeen.TestAndSet(int(x)) {
				dst = append(dst, x)
			}
		}
	}
	slices.Sort(dst[start:])
	return dst
}
