package verify

import (
	"testing"
	"testing/quick"

	"d2color/internal/coloring"
	"d2color/internal/graph"
)

// greedyD2 is a minimal local copy of the greedy reference coloring (the
// baseline package depends on verify, so importing it here would be a cycle).
func greedyD2(g *graph.Graph) coloring.Coloring {
	sq := g.Square()
	c := coloring.New(g.NumNodes())
	for v := 0; v < g.NumNodes(); v++ {
		used := make(map[int]bool)
		for _, u := range sq.Neighbors(graph.NodeID(v)) {
			if c[u] != coloring.Uncolored {
				used[c[u]] = true
			}
		}
		col := 0
		for used[col] {
			col++
		}
		c[v] = col
	}
	return c
}

// Property: corrupting a valid d2-coloring by copying a distance-2
// neighbour's color onto a node is always detected.
func TestPropertyCorruptionDetected(t *testing.T) {
	f := func(seed int64, pick uint16) bool {
		g := graph.GNP(35, 0.12, seed)
		c := greedyD2(g)
		if !CheckD2(g, c, 0).Valid {
			return false // greedy must be valid
		}
		sq := g.Square()
		// Find a node with at least one d2-neighbour and copy that
		// neighbour's color onto it.
		v := int(pick) % g.NumNodes()
		for i := 0; i < g.NumNodes(); i++ {
			cand := (v + i) % g.NumNodes()
			nbrs := sq.Neighbors(graph.NodeID(cand))
			if len(nbrs) == 0 {
				continue
			}
			c[cand] = c[nbrs[int(pick)%len(nbrs)]]
			return !CheckD2(g, c, 0).Valid
		}
		return true // edgeless graph: nothing to corrupt
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: removing a node's color is always detected by the complete check
// and never by the partial check (which allows uncolored nodes).
func TestPropertyUncoloredDetectedOnlyByCompleteCheck(t *testing.T) {
	f := func(seed int64, pick uint16) bool {
		g := graph.GNP(30, 0.1, seed)
		if g.NumNodes() == 0 {
			return true
		}
		c := greedyD2(g)
		v := int(pick) % g.NumNodes()
		c[v] = coloring.Uncolored
		return !CheckD2(g, c, 0).Valid && CheckPartialD2(g, c).Valid
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
