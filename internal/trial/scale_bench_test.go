package trial

import (
	"testing"

	"d2color/internal/graph"
)

// BenchmarkTrialPhaseScale1M measures one warmed-up full-traffic trial phase
// at the million-node scale of experiment E11. Excluded from the pinned CI
// set; run manually to reproduce the README scale table.
func BenchmarkTrialPhaseScale1M(b *testing.B) {
	g := graph.GNPWithAverageDegree(1_000_000, 8, 42)
	r := NewRunner(g, false, 0)
	if err := r.Start(Config{PaletteSize: g.MaxDegree()*g.MaxDegree() + 1,
		Scope: ScopeDistance2, Seed: 1, Picker: conflictPicker}); err != nil {
		b.Fatal(err)
	}
	r.Phase() // warm-up
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Phase()
	}
}
