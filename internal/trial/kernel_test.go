package trial

import (
	"fmt"
	"testing"

	"d2color/internal/coloring"
	"d2color/internal/graph"
	"d2color/internal/rng"
)

// kernelConfigs is a spread of trial configurations exercising every code
// path of the kernel: both scopes, the known-colors picker, partial activity
// and an initial coloring.
func kernelConfigs(g *graph.Graph, seed uint64) []Config {
	delta := g.MaxDegree()
	init := coloring.New(g.NumNodes())
	init[0] = 3
	return []Config{
		{PaletteSize: delta*delta + 1, Scope: ScopeDistance2, Seed: seed},
		{PaletteSize: delta + 1, Scope: ScopeDistance1, Seed: seed, AvoidKnownUsed: true},
		{PaletteSize: 2*delta*delta + 5, Scope: ScopeDistance2, Seed: seed, ActiveProbability: 0.5, MaxPhases: 6},
		{PaletteSize: delta*delta + 4, Scope: ScopeDistance2, Seed: seed, Initial: init},
	}
}

// A Runner re-run with a new config must behave byte-identically to a fresh
// kernel on a fresh network — same colorings, same phases, same Metrics —
// for either engine, across seeds, even when the configs alternate scopes
// and pickers between runs.
func TestRunnerReuseMatchesFreshRuns(t *testing.T) {
	g := graph.GNP(80, 0.07, 11)
	for _, parallel := range []bool{false, true} {
		reused := NewRunner(g, parallel, 0)
		for _, seed := range []uint64{1, 7, 42} {
			for i, cfg := range kernelConfigs(g, seed) {
				t.Run(fmt.Sprintf("parallel=%v/seed=%d/cfg=%d", parallel, seed, i), func(t *testing.T) {
					fresh, err := Run(g, Config{PaletteSize: cfg.PaletteSize, Scope: cfg.Scope,
						MaxPhases: cfg.MaxPhases, ActiveProbability: cfg.ActiveProbability,
						AvoidKnownUsed: cfg.AvoidKnownUsed, Seed: cfg.Seed, Initial: cfg.Initial,
						Parallel: parallel})
					if err != nil {
						t.Fatalf("fresh: %v", err)
					}
					again, err := reused.Run(cfg)
					if err != nil {
						t.Fatalf("reused: %v", err)
					}
					if fresh.Phases != again.Phases || fresh.Complete != again.Complete {
						t.Fatalf("phases/complete differ: fresh (%d,%v) vs reused (%d,%v)",
							fresh.Phases, fresh.Complete, again.Phases, again.Complete)
					}
					if fresh.Metrics != again.Metrics {
						t.Fatalf("metrics differ:\nfresh:  %v\nreused: %v", fresh.Metrics, again.Metrics)
					}
					for v := range fresh.Coloring {
						if fresh.Coloring[v] != again.Coloring[v] {
							t.Fatalf("node %d: fresh color %d, reused color %d",
								v, fresh.Coloring[v], again.Coloring[v])
						}
					}
				})
			}
		}
	}
}

// A run-to-completion run that cannot complete must surface the exhausted
// phase budget distinctly instead of silently returning incomplete.
func TestPhaseBudgetExhaustedIsSurfaced(t *testing.T) {
	g := graph.Complete(12)
	// One color for a clique's square can never complete.
	res, err := Run(g, Config{PaletteSize: 1, Seed: 1, PhaseCap: 9})
	if err == nil {
		t.Fatal("impossible run-to-completion config should return an error")
	}
	if !res.BudgetExhausted {
		t.Error("Result.BudgetExhausted should be set")
	}
	if res.Complete {
		t.Error("run cannot be complete")
	}
	if res.Phases != 9 {
		t.Errorf("phases = %d, want the PhaseCap 9", res.Phases)
	}
	// An explicit MaxPhases cap is an expected partial run: no error.
	res, err = Run(g, Config{PaletteSize: 1, Seed: 1, MaxPhases: 5})
	if err != nil {
		t.Fatalf("explicitly capped run should not error: %v", err)
	}
	if res.Complete || res.BudgetExhausted {
		t.Errorf("capped run: complete=%v budgetExhausted=%v, want false/false", res.Complete, res.BudgetExhausted)
	}
}

// The default backstop scales with log n, not n.
func TestDefaultPhaseCapScalesLogarithmically(t *testing.T) {
	if c := defaultPhaseCap(1); c != 128 {
		t.Errorf("defaultPhaseCap(1) = %d, want 128", c)
	}
	c10k := defaultPhaseCap(10_000)
	if c10k != 64*14+128 {
		t.Errorf("defaultPhaseCap(10000) = %d, want %d", c10k, 64*14+128)
	}
	if c1m := defaultPhaseCap(1_000_000); c1m >= 10_000 {
		t.Errorf("defaultPhaseCap(1e6) = %d; the backstop must stay logarithmic", c1m)
	}
}

// conflictPicker makes every live node propose color 0 every phase: all
// proposals collide at distance 2, nobody ever adopts, and every phase
// carries full message traffic — the steady-state worst case.
func conflictPicker(v graph.NodeID, _ *rng.Source, paletteSize int) int { return 0 }

// The warmed-up kernel must execute a full-traffic phase without a single
// heap allocation: payloads travel as words, per-node state lives in flat
// arrays, and the completion check is a counter read.
func TestWarmPhaseDoesNotAllocate(t *testing.T) {
	g := graph.GNPWithAverageDegree(2_000, 12, 21)
	r := NewRunner(g, false, 0)
	if err := r.Start(Config{PaletteSize: g.MaxDegree()*g.MaxDegree() + 1,
		Scope: ScopeDistance2, Seed: 5, Picker: conflictPicker}); err != nil {
		t.Fatal(err)
	}
	r.Phase() // warm-up: plane buckets and inboxes grow to steady state
	allocs := testing.AllocsPerRun(10, func() { r.Phase() })
	if allocs > 0 {
		t.Errorf("warmed-up phase allocated %.1f times, want 0", allocs)
	}
}

// benchWarmedTrialPhase is the shared body of BenchmarkTrialPhase and
// TestTrialPhaseAllocFree: one warmed-up trial phase (three simulated
// CONGEST rounds) of the kernel at experiment scale — n = 10k, average
// degree 12, every node proposing every phase.
func benchWarmedTrialPhase(b *testing.B, parallel bool) {
	g := graph.GNPWithAverageDegree(10_000, 12, 42)
	r := NewRunner(g, parallel, 0)
	if err := r.Start(Config{PaletteSize: g.MaxDegree()*g.MaxDegree() + 1,
		Scope: ScopeDistance2, Seed: 1, Picker: conflictPicker}); err != nil {
		b.Fatal(err)
	}
	r.Phase() // warm-up
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Phase()
	}
}

// BenchmarkTrialPhase reports the warmed-up phase cost; the headline
// assertion — 0 allocs/op on the sequential engine — is enforced by
// TestTrialPhaseAllocFree via AllocsPerOp over the same body.
func BenchmarkTrialPhase(b *testing.B) {
	for _, parallel := range []bool{false, true} {
		name := "engine=sequential"
		if parallel {
			name = "engine=sharded"
		}
		b.Run(name, func(b *testing.B) { benchWarmedTrialPhase(b, parallel) })
	}
}

// TestTrialPhaseAllocFree runs BenchmarkTrialPhase's sequential case through
// the benchmark harness and asserts the acceptance criterion directly:
// a warmed-up phase at n = 10k reports 0 allocs/op.
func TestTrialPhaseAllocFree(t *testing.T) {
	if testing.Short() {
		t.Skip("n=10k benchmark probe skipped in -short mode")
	}
	res := testing.Benchmark(func(b *testing.B) { benchWarmedTrialPhase(b, false) })
	if allocs := res.AllocsPerOp(); allocs != 0 {
		t.Errorf("warmed-up trial phase at n=10k: %d allocs/op, want 0", allocs)
	}
}
