package trial

import (
	"testing"
	"testing/quick"

	"d2color/internal/coloring"
	"d2color/internal/graph"
	"d2color/internal/rng"
	"d2color/internal/verify"
)

func TestRunRejectsBadPalette(t *testing.T) {
	if _, err := Run(graph.Path(3), Config{PaletteSize: 0}); err == nil {
		t.Error("palette size 0 should be rejected")
	}
}

func TestD2TrialProducesValidColoring(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"gnp":    graph.GNP(80, 0.05, 1),
		"grid":   graph.Grid(8, 8),
		"star":   graph.Star(12),
		"clique": graph.Complete(8),
		"chain":  graph.CliqueChain(4, 5, 0),
	}
	for name, g := range graphs {
		delta := g.MaxDegree()
		palette := delta*delta + 1
		res, err := Run(g, Config{PaletteSize: palette, Scope: ScopeDistance2, Seed: 7})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.Complete {
			t.Fatalf("%s: trial run did not complete (phases=%d)", name, res.Phases)
		}
		if rep := verify.CheckD2(g, res.Coloring, palette); !rep.Valid {
			t.Errorf("%s: invalid d2-coloring: %v", name, rep.Error())
		}
		if res.Metrics.Rounds != 3*res.Phases {
			t.Errorf("%s: rounds=%d, want 3*phases=%d", name, res.Metrics.Rounds, 3*res.Phases)
		}
	}
}

func TestD1TrialProducesValidColoring(t *testing.T) {
	g := graph.GNP(100, 0.06, 3)
	palette := g.MaxDegree() + 1
	res, err := Run(g, Config{PaletteSize: palette, Scope: ScopeDistance1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatal("d1 trial did not complete")
	}
	if rep := verify.CheckD1(g, res.Coloring, palette); !rep.Valid {
		t.Errorf("invalid (Δ+1)-coloring: %v", rep.Error())
	}
}

func TestLargerPaletteFinishesFaster(t *testing.T) {
	// With a (1+ε)Δ² palette the simple algorithm finishes in O(log n)
	// phases; with exactly Δ²+1 colors it is typically slower on dense
	// neighborhoods. We only assert the qualitative ordering on a clique
	// chain averaged over seeds (weak but stable).
	g := graph.CliqueChain(6, 6, 0)
	delta := g.MaxDegree()
	small, large := 0, 0
	for seed := uint64(0); seed < 5; seed++ {
		rs, err := Run(g, Config{PaletteSize: delta*delta + 1, Seed: seed})
		if err != nil || !rs.Complete {
			t.Fatalf("small palette run failed: %v", err)
		}
		rl, err := Run(g, Config{PaletteSize: 2 * delta * delta, Seed: seed})
		if err != nil || !rl.Complete {
			t.Fatalf("large palette run failed: %v", err)
		}
		small += rs.Phases
		large += rl.Phases
	}
	if large > small {
		t.Errorf("doubling the palette should not slow completion: small=%d large=%d", small, large)
	}
}

func TestMaxPhasesRespected(t *testing.T) {
	g := graph.Complete(12)
	// One single color for a clique's square can never complete.
	res, err := Run(g, Config{PaletteSize: 1, MaxPhases: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Complete {
		t.Error("1-color palette on a clique cannot be complete")
	}
	if res.Phases != 5 {
		t.Errorf("phases = %d, want 5", res.Phases)
	}
	// The partial result must still be conflict-free.
	if rep := verify.CheckPartialD2(g, res.Coloring); !rep.Valid {
		t.Errorf("partial coloring has conflicts: %v", rep.Error())
	}
}

func TestInitialColoringRespected(t *testing.T) {
	g := graph.Path(5)
	init := coloring.New(5)
	init[2] = 7
	res, err := Run(g, Config{PaletteSize: 10, Seed: 2, Initial: init})
	if err != nil {
		t.Fatal(err)
	}
	if res.Coloring[2] != 7 {
		t.Errorf("pre-colored node changed color: %d", res.Coloring[2])
	}
	if init[0] != coloring.Uncolored {
		t.Error("input coloring must not be modified")
	}
	if rep := verify.CheckD2(g, res.Coloring, 10); !rep.Valid {
		t.Errorf("final coloring invalid: %v", rep.Error())
	}
}

func TestCustomPickerAndQuietNodes(t *testing.T) {
	g := graph.Path(4)
	// A picker that always stays quiet: nothing gets colored.
	res, err := Run(g, Config{
		PaletteSize: 5,
		MaxPhases:   3,
		Seed:        1,
		Picker: func(v graph.NodeID, src *rng.Source, paletteSize int) int {
			return -1
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Coloring.NumColored() != 0 {
		t.Errorf("quiet picker should color nothing, colored %d", res.Coloring.NumColored())
	}
	if res.Complete {
		t.Error("run with quiet picker cannot be complete")
	}
}

func TestActiveProbability(t *testing.T) {
	g := graph.Complete(6)
	res, err := Run(g, Config{PaletteSize: 40, ActiveProbability: 0.5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatal("run with activity 0.5 should still complete")
	}
	if rep := verify.CheckD2(g, res.Coloring, 40); !rep.Valid {
		t.Errorf("invalid coloring: %v", rep.Error())
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	g := graph.GNP(50, 0.08, 9)
	palette := g.MaxDegree()*g.MaxDegree() + 1
	a, err := Run(g, Config{PaletteSize: palette, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(g, Config{PaletteSize: palette, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	for v := range a.Coloring {
		if a.Coloring[v] != b.Coloring[v] {
			t.Fatalf("node %d differs between identical runs", v)
		}
	}
	if a.Phases != b.Phases {
		t.Errorf("phase counts differ: %d vs %d", a.Phases, b.Phases)
	}
}

func TestParallelEngineMatchesSequential(t *testing.T) {
	g := graph.GNP(60, 0.07, 4)
	palette := g.MaxDegree()*g.MaxDegree() + 1
	seq, err := Run(g, Config{PaletteSize: palette, Seed: 17, Parallel: false})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Run(g, Config{PaletteSize: palette, Seed: 17, Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	for v := range seq.Coloring {
		if seq.Coloring[v] != par.Coloring[v] {
			t.Fatalf("node %d: sequential color %d, parallel color %d", v, seq.Coloring[v], par.Coloring[v])
		}
	}
}

func TestPropertyPartialColoringsAlwaysConflictFree(t *testing.T) {
	// Whatever the seed and phase budget, the produced (possibly partial)
	// coloring never contains a distance-2 conflict.
	f := func(seed uint64, phases uint8) bool {
		g := graph.GNP(40, 0.1, int64(seed%8))
		palette := g.MaxDegree()*g.MaxDegree() + 1
		res, err := Run(g, Config{PaletteSize: palette, Seed: seed, MaxPhases: int(phases%7) + 1})
		if err != nil {
			return false
		}
		return verify.CheckPartialD2(g, res.Coloring).Valid
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestUniformPickerBounds(t *testing.T) {
	if got := UniformPicker(0, nil, 0); got != -1 {
		t.Errorf("UniformPicker with empty palette = %d, want -1", got)
	}
}
