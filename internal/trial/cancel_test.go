package trial

import (
	"errors"
	"sync/atomic"
	"testing"

	"d2color/internal/graph"
)

// TestCancelMidRunLeavesRunnerByteIdentical pins the cancellation safety
// contract at the kernel level: a run stopped mid-flight by Config.Cancel
// returns ErrCanceled with a usable partial Result, and — the part the
// serving plane's warm-session reuse depends on — leaves the runner in a
// state where the next run is byte-identical to the same run on a fresh
// kernel. Checked on both engines.
func TestCancelMidRunLeavesRunnerByteIdentical(t *testing.T) {
	g := graph.GNPWithAverageDegree(3_000, 10, 9)
	delta := g.MaxDegree()
	cfg := Config{PaletteSize: delta*delta + 1, Scope: ScopeDistance2, Seed: 7}
	for _, parallel := range []bool{false, true} {
		name := "engine=sequential"
		if parallel {
			name = "engine=sharded"
		}
		t.Run(name, func(t *testing.T) {
			fcfg := cfg
			fcfg.Parallel = parallel
			fresh, err := Run(g, fcfg)
			if err != nil {
				t.Fatal(err)
			}

			r := NewRunner(g, parallel, 0)
			defer r.Close()
			first, err := r.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}

			// Trip the hook after a couple of polls: the engine polls between
			// rounds, so this cancels genuinely mid-run.
			var polls atomic.Int64
			ccfg := cfg
			ccfg.Seed = 8
			ccfg.Cancel = func() bool { return polls.Add(1) > 2 }
			partial, err := r.Run(ccfg)
			if !errors.Is(err, ErrCanceled) {
				t.Fatalf("canceled run: got %v, want ErrCanceled", err)
			}
			if !partial.Canceled {
				t.Error("Result.Canceled not set on a canceled run")
			}
			if partial.Complete {
				t.Error("a run canceled after 2 polls cannot be complete at n=3000")
			}
			if len(partial.Coloring) != g.NumNodes() {
				t.Errorf("partial result has %d colors, want %d", len(partial.Coloring), g.NumNodes())
			}

			// The interrupted kernel must replay the original run exactly.
			again, err := r.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			for who, want := range map[string]Result{"pre-cancel run": first, "fresh kernel": fresh} {
				if again.Phases != want.Phases || again.Metrics != want.Metrics {
					t.Errorf("post-cancel rerun vs %s: phases/metrics differ: (%d,%v) vs (%d,%v)",
						who, again.Phases, again.Metrics, want.Phases, want.Metrics)
				}
				for v := range want.Coloring {
					if again.Coloring[v] != want.Coloring[v] {
						t.Fatalf("post-cancel rerun vs %s: node %d colored %d, want %d",
							who, v, again.Coloring[v], want.Coloring[v])
					}
				}
			}
		})
	}
}

// BenchmarkCancelLatency measures the cancellation latency the serving
// plane's deadline and drain paths rely on: the time from the cancel flag
// flipping to RunPhases unwinding, on an in-flight n = 50k run. The claim is
// O(one round) — the engine polls the hook between rounds — so the op cost
// is a fraction of one phase, independent of the remaining phase budget.
func BenchmarkCancelLatency(b *testing.B) {
	g := graph.GNPWithAverageDegree(50_000, 8, 1)
	r := NewRunner(g, false, 0)
	defer r.Close()
	var stop atomic.Bool
	delta := g.MaxDegree()
	cfg := Config{PaletteSize: delta*delta + 1, Scope: ScopeDistance2, Seed: 1,
		Picker: conflictPicker, // never completes: cancel is the only exit
		Cancel: stop.Load}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		stop.Store(false)
		if err := r.Start(cfg); err != nil {
			b.Fatal(err)
		}
		r.Phase() // in flight: plane buckets and inboxes at steady state
		b.StartTimer()
		stop.Store(true)
		if err := r.RunPhases(); !errors.Is(err, ErrCanceled) {
			b.Fatalf("got %v, want ErrCanceled", err)
		}
	}
}
