// Package trial implements the distributed "try a random color" primitive of
// the paper (Section 2.2) on top of the CONGEST simulator.
//
// Recall what trying a color means: the node sends the candidate color to all
// its immediate neighbors, who report back whether they or any of their own
// neighbors are using (or simultaneously proposing) that color. If all
// answers are negative, the node adopts the color.
//
// Each trial phase costs three simulated rounds:
//
//	round 3t   (propose): live, active nodes broadcast their candidate color;
//	                      nodes that adopted a color in the previous phase
//	                      broadcast the adoption so neighbors stay up to date;
//	round 3t+1 (answer):  every node answers each proposing neighbor whether
//	                      the candidate conflicts with its own color/proposal,
//	                      any of its neighbors' colors, or another proposal it
//	                      received this phase;
//	round 3t+2 (adopt):   proposers that received only negative answers adopt.
//
// The primitive is exactly the building block of: Step 2 of d2-Color, the
// FinishColoring subroutine, the (1+ε)Δ²-palette baseline, and the
// Johansson-style (Δ+1)-coloring baseline on G (with distance-1 conflict
// checking).
package trial

import (
	"fmt"

	"d2color/internal/coloring"
	"d2color/internal/congest"
	"d2color/internal/graph"
	"d2color/internal/rng"
)

// Scope selects which conflicts invalidate a trial.
type Scope int

// Conflict scopes.
const (
	// ScopeDistance2 rejects a candidate used or proposed within distance 2
	// (the d2-coloring setting).
	ScopeDistance2 Scope = iota + 1
	// ScopeDistance1 rejects a candidate used or proposed by an immediate
	// neighbor only (the ordinary coloring setting).
	ScopeDistance1
)

// Picker chooses the candidate color a live node tries in one phase.
// available is the node's current view of colors not known to conflict (for
// the plain algorithm this is simply the full palette). Returning a negative
// color means "stay quiet this phase".
type Picker func(v graph.NodeID, src *rng.Source, paletteSize int) int

// UniformPicker tries a uniform random color from the full palette.
func UniformPicker(v graph.NodeID, src *rng.Source, paletteSize int) int {
	if paletteSize <= 0 {
		return -1
	}
	return src.Intn(paletteSize)
}

// Config controls a trial run.
type Config struct {
	// PaletteSize is the number of colors, [0, PaletteSize).
	PaletteSize int
	// Scope selects distance-1 or distance-2 conflict checking.
	Scope Scope
	// MaxPhases bounds the number of phases; 0 means run until complete (with
	// the simulator's round limit as a backstop).
	MaxPhases int
	// ActiveProbability is the probability that a live node participates in a
	// phase; 0 means 1 (always active).
	ActiveProbability float64
	// Picker chooses candidate colors; nil means UniformPicker.
	Picker Picker
	// AvoidKnownUsed makes live nodes draw their candidate uniformly from the
	// colors not known (from received adoption notifications) to be used by a
	// neighbor, falling back to the whole palette when no such color remains.
	// This is the classical simple algorithm for ordinary coloring ([19, 9]
	// in the paper), where a node can afford to track its neighbors' colors;
	// the distance-2 algorithms deliberately do not use it (Section 2.1).
	// Ignored when a custom Picker is supplied.
	AvoidKnownUsed bool
	// Seed seeds the per-node randomness.
	Seed uint64
	// Parallel runs the underlying simulator on the sharded-parallel engine
	// (byte-deterministic with the sequential one).
	Parallel bool
	// Workers bounds the sharded engine's goroutine pool; 0 means GOMAXPROCS.
	Workers int
	// Initial is an optional partial coloring to start from; nodes already
	// colored in it never participate. It is not modified.
	Initial coloring.Coloring
}

// Result reports the outcome of a trial run.
type Result struct {
	Coloring coloring.Coloring
	Phases   int
	Metrics  congest.Metrics
	Complete bool
}

// message payloads.
type (
	proposeMsg struct{ Color int }
	adoptMsg   struct{ Color int }
	answerMsg  struct {
		Color    int
		Conflict bool
	}
)

// process is the per-node state machine.
type process struct {
	cfg       *Config
	color     int
	nbrColors map[graph.NodeID]int
	proposal  int  // candidate this phase, -1 if none
	announced bool // adoption already broadcast
	phases    int
}

// Run executes trial phases on g until the coloring is complete or the phase
// budget is exhausted.
func Run(g *graph.Graph, cfg Config) (Result, error) {
	if cfg.PaletteSize <= 0 {
		return Result{}, fmt.Errorf("trial: palette size must be positive, got %d", cfg.PaletteSize)
	}
	if cfg.Scope == 0 {
		cfg.Scope = ScopeDistance2
	}
	if cfg.ActiveProbability <= 0 || cfg.ActiveProbability > 1 {
		cfg.ActiveProbability = 1
	}

	n := g.NumNodes()
	net := congest.New(g, congest.Config{Seed: cfg.Seed, Parallel: cfg.Parallel, Workers: cfg.Workers})
	procs := make([]*process, n)
	for v := 0; v < n; v++ {
		p := &process{cfg: &cfg, color: coloring.Uncolored, proposal: -1,
			nbrColors: make(map[graph.NodeID]int, g.Degree(graph.NodeID(v)))}
		if cfg.Initial != nil && cfg.Initial[v] != coloring.Uncolored {
			p.color = cfg.Initial[v]
			p.announced = false // will announce in the first propose round
		}
		procs[v] = p
		net.SetProcess(graph.NodeID(v), p)
	}

	maxPhases := cfg.MaxPhases
	if maxPhases <= 0 {
		maxPhases = 4*n + 64 // generous completion backstop
	}
	phases := 0
	for ; phases < maxPhases; phases++ {
		done := true
		for _, p := range procs {
			if p.color == coloring.Uncolored {
				done = false
				break
			}
		}
		if done {
			break
		}
		net.RunRounds(3)
	}

	out := coloring.New(n)
	complete := true
	for v, p := range procs {
		out[v] = p.color
		if p.color == coloring.Uncolored {
			complete = false
		}
	}
	return Result{Coloring: out, Phases: phases, Metrics: net.Metrics(), Complete: complete}, nil
}

// Step implements congest.Process. The process never "halts" in the
// simulator's sense because colored nodes still answer queries; termination
// is driven by the phase loop in Run.
func (p *process) Step(ctx *congest.Context, round int, inbox []congest.Message) bool {
	switch round % 3 {
	case 0:
		p.stepPropose(ctx, inbox)
	case 1:
		p.stepAnswer(ctx, inbox)
	case 2:
		p.stepAdopt(ctx, inbox)
	}
	return false
}

// stepPropose records adoption notifications from the previous phase and
// broadcasts this node's candidate (if live and active) or its fresh adoption.
func (p *process) stepPropose(ctx *congest.Context, inbox []congest.Message) {
	p.recordAdoptions(inbox)
	p.proposal = -1
	if p.color != coloring.Uncolored {
		if !p.announced {
			ctx.Broadcast(adoptMsg{Color: p.color})
			p.announced = true
		}
		return
	}
	if p.cfg.ActiveProbability < 1 && !ctx.Rand().Bernoulli(p.cfg.ActiveProbability) {
		return
	}
	var cand int
	if p.cfg.AvoidKnownUsed && p.cfg.Picker == nil {
		cand = p.pickAvoidingKnown(ctx)
	} else {
		picker := p.cfg.Picker
		if picker == nil {
			picker = UniformPicker
		}
		cand = picker(ctx.NodeID(), ctx.Rand(), p.cfg.PaletteSize)
	}
	if cand < 0 || cand >= p.cfg.PaletteSize {
		return
	}
	p.proposal = cand
	ctx.Broadcast(proposeMsg{Color: cand})
	// A node with no neighbors has nobody to object; it can adopt directly.
	if ctx.Degree() == 0 {
		p.color = cand
		p.announced = true
	}
}

// stepAnswer answers every proposing neighbor. For distance-2 scope a
// candidate conflicts if it equals this node's color or proposal, any of this
// node's other neighbors' colors, or another proposal received this phase.
// For distance-1 scope only this node's own color and proposal count.
func (p *process) stepAnswer(ctx *congest.Context, inbox []congest.Message) {
	p.recordAdoptions(inbox)
	proposals := make(map[graph.NodeID]int, len(inbox))
	colorProposedBy := make(map[int]int) // candidate color -> number of proposers among neighbors
	for _, m := range inbox {
		if pr, ok := m.Payload.(proposeMsg); ok {
			proposals[m.From] = pr.Color
			colorProposedBy[pr.Color]++
		}
	}
	for from, cand := range proposals {
		conflict := false
		if p.color == cand || (p.proposal == cand && p.color == coloring.Uncolored) {
			conflict = true
		}
		if p.cfg.Scope == ScopeDistance2 && !conflict {
			// Another neighbor of this node proposed the same color: the two
			// proposers are at distance <= 2 through us.
			if colorProposedBy[cand] > 1 {
				conflict = true
			}
			if !conflict {
				for nbr, col := range p.nbrColors {
					if nbr != from && col == cand {
						conflict = true
						break
					}
				}
			}
		}
		_ = ctx.Send(from, answerMsg{Color: cand, Conflict: conflict})
	}
}

// stepAdopt adopts the proposal if every neighbor answered "no conflict".
func (p *process) stepAdopt(ctx *congest.Context, inbox []congest.Message) {
	if p.proposal < 0 || p.color != coloring.Uncolored {
		return
	}
	answers := 0
	for _, m := range inbox {
		if a, ok := m.Payload.(answerMsg); ok && a.Color == p.proposal {
			answers++
			if a.Conflict {
				p.proposal = -1
				return
			}
		}
	}
	if answers == ctx.Degree() {
		p.color = p.proposal
		p.announced = false // broadcast in the next propose round
	}
	p.proposal = -1
}

// pickAvoidingKnown draws a uniform candidate among the palette colors not
// known to be used by a neighbor; if every color is known used (impossible
// for a (Δ+1)-sized palette), it falls back to the whole palette.
func (p *process) pickAvoidingKnown(ctx *congest.Context) int {
	used := make(map[int]struct{}, len(p.nbrColors))
	for _, c := range p.nbrColors {
		if c >= 0 && c < p.cfg.PaletteSize {
			used[c] = struct{}{}
		}
	}
	free := p.cfg.PaletteSize - len(used)
	if free <= 0 {
		return ctx.Rand().Intn(p.cfg.PaletteSize)
	}
	idx := ctx.Rand().Intn(free)
	for c := 0; c < p.cfg.PaletteSize; c++ {
		if _, ok := used[c]; ok {
			continue
		}
		if idx == 0 {
			return c
		}
		idx--
	}
	return ctx.Rand().Intn(p.cfg.PaletteSize)
}

func (p *process) recordAdoptions(inbox []congest.Message) {
	for _, m := range inbox {
		if a, ok := m.Payload.(adoptMsg); ok {
			p.nbrColors[m.From] = a.Color
		}
	}
}
