// Package trial implements the distributed "try a random color" primitive of
// the paper (Section 2.2) on top of the CONGEST simulator.
//
// Recall what trying a color means: the node sends the candidate color to all
// its immediate neighbors, who report back whether they or any of their own
// neighbors are using (or simultaneously proposing) that color. If all
// answers are negative, the node adopts the color.
//
// Each trial phase costs three simulated rounds:
//
//	round 3t   (propose): live, active nodes broadcast their candidate color;
//	                      nodes that adopted a color in the previous phase
//	                      broadcast the adoption so neighbors stay up to date;
//	round 3t+1 (answer):  every node answers each proposing neighbor whether
//	                      the candidate conflicts with its own color/proposal,
//	                      any of its neighbors' colors, or another proposal it
//	                      received this phase;
//	round 3t+2 (adopt):   proposers that received only negative answers adopt.
//
// The primitive is exactly the building block of: Step 2 of d2-Color, the
// FinishColoring subroutine, the (1+ε)Δ²-palette baseline, and the
// Johansson-style (Δ+1)-coloring baseline on G (with distance-1 conflict
// checking).
//
// Because the primitive underlies every simulated experiment, it is built as
// a reusable, allocation-free kernel (see Runner): all per-node state lives
// in flat arrays keyed by node or by CSR edge slot, message payloads are
// plain uint64 words (see codec.go), and a Runner can be re-run with a new
// Config without rebuilding its n processes or its network. A warmed-up
// phase executes with zero heap allocations.
package trial

import (
	"errors"
	"fmt"
	"math"
	"math/bits"
	"slices"
	"sync/atomic"

	"d2color/internal/bitset"
	"d2color/internal/coloring"
	"d2color/internal/congest"
	"d2color/internal/graph"
	"d2color/internal/rng"
)

// Scope selects which conflicts invalidate a trial.
type Scope int

// Conflict scopes.
const (
	// ScopeDistance2 rejects a candidate used or proposed within distance 2
	// (the d2-coloring setting).
	ScopeDistance2 Scope = iota + 1
	// ScopeDistance1 rejects a candidate used or proposed by an immediate
	// neighbor only (the ordinary coloring setting).
	ScopeDistance1
)

// Picker chooses the candidate color a live node tries in one phase.
// available is the node's current view of colors not known to conflict (for
// the plain algorithm this is simply the full palette). Returning a negative
// color means "stay quiet this phase".
type Picker func(v graph.NodeID, src *rng.Source, paletteSize int) int

// UniformPicker tries a uniform random color from the full palette.
func UniformPicker(v graph.NodeID, src *rng.Source, paletteSize int) int {
	if paletteSize <= 0 {
		return -1
	}
	return src.Intn(paletteSize)
}

// Config controls a trial run.
type Config struct {
	// PaletteSize is the number of colors, [0, PaletteSize).
	PaletteSize int
	// Scope selects distance-1 or distance-2 conflict checking.
	Scope Scope
	// MaxPhases bounds the number of phases. A run stopped by an explicit
	// MaxPhases simply reports Complete == false (callers that cap phases
	// expect partial colorings). 0 means run until complete, with PhaseCap as
	// the backstop.
	MaxPhases int
	// PhaseCap is the hard backstop for MaxPhases == 0 runs. The primitive
	// completes in O(log n) phases w.h.p. on every palette this repository
	// uses, so the default cap — 64·⌈log₂ n⌉ + 128 phases — is dozens of
	// times the expectation; hitting it means the configuration cannot
	// complete (e.g. an adversarially small palette), and Run surfaces that
	// as ErrPhaseBudget with Result.BudgetExhausted set rather than silently
	// returning an incomplete coloring.
	PhaseCap int
	// ActiveProbability is the probability that a live node participates in a
	// phase; 0 means 1 (always active).
	ActiveProbability float64
	// Picker chooses candidate colors; nil means UniformPicker.
	Picker Picker
	// AvoidKnownUsed makes live nodes draw their candidate uniformly from the
	// colors not known (from received adoption notifications) to be used by a
	// neighbor, falling back to the whole palette when no such color remains.
	// This is the classical simple algorithm for ordinary coloring ([19, 9]
	// in the paper), where a node can afford to track its neighbors' colors;
	// the distance-2 algorithms deliberately do not use it (Section 2.1).
	// Ignored when a custom Picker is supplied.
	AvoidKnownUsed bool
	// Seed seeds the per-node randomness.
	Seed uint64
	// Parallel runs the underlying simulator on the sharded-parallel engine
	// (byte-deterministic with the sequential one). Used by the Run
	// convenience wrapper; a Runner fixes its engine at construction.
	Parallel bool
	// Workers bounds the sharded engine's goroutine pool; 0 means GOMAXPROCS.
	Workers int
	// Initial is an optional partial coloring to start from; nodes already
	// colored in it never participate. It is not modified.
	Initial coloring.Coloring
	// Active is an optional partial-activation mask forwarded to the engine:
	// nodes with Active[v] false are frozen — they neither step nor receive —
	// and uncolored frozen nodes do not count toward completion, so the run
	// terminates once every *active* node is colored. This is how the repair
	// kernel confines a run to a dirty distance-2 ball on a warm full-graph
	// kernel. nil means every node runs. The caller must not mutate the mask
	// while the run executes, and should ensure every uncolored node it wants
	// colored is active.
	Active []bool
	// Faults is an optional fault model (message drops, transient node
	// crashes) installed on the engine for this run; nil disables injection.
	// Injected loss can leave conflicts or uncolored nodes behind — that is
	// the point — so fault-injected runs are typically driven under MaxPhases
	// with verification (and repair) downstream.
	Faults congest.FaultModel
	// PreloadInitial treats Initial's colors as already announced: every
	// node starts out knowing each neighbor's Initial color (as if the
	// adoption broadcasts of round 0 had happened before the run), and
	// pre-colored nodes skip that broadcast. With the default uniform
	// picker the final coloring is byte-identical to a non-preloaded run —
	// round-0 announcements are recorded by receivers before any answer is
	// computed, so the knowledge state at every decision point matches —
	// while the messages the broadcasts would have cost disappear from the
	// metrics. (With AvoidKnownUsed the preloaded knowledge legitimately
	// changes the phase-0 draws, so no identity is promised.) The repair
	// kernel runs on extracted neighborhoods where most nodes are fixed
	// context; preloading removes the context's broadcast storm.
	PreloadInitial bool
	// ExtraKnown optionally seeds per-node known-used colors beyond what
	// any neighbor announces: ExtraKnown[v] lists colors node v must treat
	// as used by a neighbor (duplicates and out-of-palette colors are
	// ignored). The repair kernel uses it to stand in for frozen context
	// outside an extracted subgraph — a boundary node keeps vetoing the
	// colors of full-graph neighbors that the subgraph does not contain.
	// Non-nil ExtraKnown forces the palette-bitset known tier (the sorted
	// per-slot tier has no room for colors without a slot); its length must
	// be the node count.
	ExtraKnown [][]int32
	// PackedOutput makes Run assemble the result bit-packed
	// (Result.Packed set, Result.Coloring nil): ⌈log₂(palette+1)⌉ bits/node
	// instead of 8 bytes, the representation the 10⁷-node scale runs keep.
	// The colors themselves are byte-identical to the unpacked run.
	PackedOutput bool
	// Cancel is an optional cooperative cancellation hook, the request-scoped
	// sibling of PhaseCap: RunPhases polls it before every phase and the
	// engine polls it between simulated rounds, so a canceled run — even a
	// 10⁷-node one — stops within O(one round) and returns ErrCanceled with
	// the partial Result (phases executed so far, partial Metrics). The hook
	// must be cheap and safe to call from the Runner's goroutine; nil (the
	// default) disables polling. Cancellation never corrupts the kernel:
	// Start fully rewinds every flat array and the engine, so the next run
	// on the same warm Runner is byte-identical to a fresh kernel's.
	Cancel func() bool
}

// Result reports the outcome of a trial run.
type Result struct {
	// Coloring is the assignment as a plain []int; nil when the run asked for
	// packed output.
	Coloring coloring.Coloring
	// Packed is the bit-packed assignment, set instead of Coloring when
	// Config.PackedOutput was requested (or FinishPacked called).
	Packed   *coloring.Packed
	Phases   int
	Metrics  congest.Metrics
	Complete bool
	// BudgetExhausted is set when a run-to-completion (MaxPhases == 0) run
	// hit its PhaseCap backstop; Run additionally returns ErrPhaseBudget.
	BudgetExhausted bool
	// Canceled is set when the run was stopped by Config.Cancel (or a
	// runner-level SetCancel hook); Run additionally returns ErrCanceled.
	Canceled bool
}

// ErrPhaseBudget is returned (wrapped) when a run-to-completion trial run
// exhausts its phase backstop; the partial Result is still returned.
var ErrPhaseBudget = errors.New("trial: phase budget exhausted before the coloring completed")

// ErrCanceled is returned (wrapped) when a run is stopped by its cooperative
// cancellation hook (Config.Cancel or Runner.SetCancel); the partial Result —
// phases executed, partial Metrics — is still returned. Mirrors the
// ErrPhaseBudget contract: the kernel stays fully reusable, and the next
// Start rewinds it to a state byte-identical to a fresh kernel.
var ErrCanceled = errors.New("trial: run canceled")

// defaultPhaseCap returns the backstop for run-to-completion runs:
// 64·⌈log₂ n⌉ + 128, matching the O(log n) w.h.p. completion bound with a
// wide safety margin.
func defaultPhaseCap(n int) int {
	if n < 2 {
		return 128
	}
	return 64*bits.Len(uint(n-1)) + 128
}

// Message kinds and payload codecs of the trial protocol. A payload is one
// O(log n)-bit word: colors come from a palette of at most Δ²+1 ≤ n² colors,
// so a color is at most two ⌈log₂ n⌉-bit words' worth of bits and the
// constant-factor word declarations below match the seed implementation
// (every trial message is charged one word, the paper's O(log n)-bit unit).
const (
	kindPropose congest.Kind = iota + 1 // Word = EncodeColor(candidate)
	kindAdopt                           // Word = EncodeColor(adopted color)
	kindAnswer                          // Word = EncodeAnswer(candidate, conflict)
)

// EncodeColor packs a non-negative color into a payload word.
func EncodeColor(c int) uint64 { return uint64(c) }

// DecodeColor inverts EncodeColor.
func DecodeColor(w uint64) int { return int(w) }

// EncodeAnswer packs an answer — the echoed candidate color plus the
// conflict bit — into one payload word.
func EncodeAnswer(color int, conflict bool) uint64 {
	w := uint64(color) << 1
	if conflict {
		w |= 1
	}
	return w
}

// DecodeAnswer inverts EncodeAnswer.
func DecodeAnswer(w uint64) (color int, conflict bool) {
	return int(w >> 1), w&1 == 1
}

// uncolored is the flat-array sentinel, identical to coloring.Uncolored.
const uncolored int32 = int32(coloring.Uncolored)

// Runner is the reusable allocation-free kernel executing trial phases on a
// fixed topology. All mutable per-node state lives in flat arrays — indexed
// by node, by CSR edge slot for neighbor-color knowledge (the slot range of
// node v doubles as v's scratch region in the answer round), or in per-node
// palette bitset rows for known-color membership — and the underlying
// network, its processes and every buffer are built once in NewRunner. Start
// rewinds the whole kernel for a new Config in O(n + m + n·palette/64),
// allocating only when the palette outgrows every earlier Start, so repeated
// sub-protocol invocations on the same graph (the harness's averaged
// repetitions, the baselines, randd2's step 2) stop rebuilding n processes
// and a fresh network each time.
//
// A Runner is not safe for concurrent use; run one Runner per goroutine.
type Runner struct {
	g   *graph.Graph
	ix  *graph.EdgeIndex
	net congest.Engine

	procs []nodeProc

	cfg     Config
	picker  Picker
	palette int32

	// Per-node state.
	color     []int32 // current color, uncolored if none
	proposal  []int32 // candidate this phase, -1 if none
	announced []bool  // adoption already broadcast

	// Per-edge-slot state; the region of node v is ix.Offsets[v] ..
	// ix.Offsets[v+1]. nbrColor mirrors the seed path's per-node
	// map[NodeID]int of neighbor colors as a slice indexed by neighbor
	// position.
	nbrColor    []int32
	propScratch []int32 // answer-round scratch: the phase's proposal colors, sorted

	// Known-colors state — which colors has a neighbor announced? Two
	// tiers, selected per Start (deterministically, from topology + palette
	// alone, so results never depend on the choice):
	//
	// The common tier is knownBits: one palette bitset row per node
	// (knownWords words each, carved out of one flat backing slice); bit c
	// of row v is set iff some neighbor announced color c. The answer
	// round's "is this color used by a neighbor" check is one AND, and
	// pickAvoidingKnown's free-color draw is a popcount plus a word scan.
	// Colors outside [0, PaletteSize) (possible via Config.Initial) are
	// never recorded: a candidate is always inside the palette, so such
	// colors cannot conflict.
	//
	// The rows cost n·⌈palette/64⌉ words. On degenerate palette ≫ degree
	// topologies (a star under a Δ²-sized palette) that is quadratic-plus in
	// n while a node can only ever learn deg(v) colors — so when the rows
	// would dwarf the O(n + m) edge-slot budget (see knownTierIsBitset),
	// Start falls back to the sorted known-colors prefix per CSR slot region
	// (binary-searched membership, merge-scan draw), which is bounded by the
	// slot count. Both tiers answer the identical queries; colorings and
	// Metrics are byte-identical either way.
	//
	// Sized in Start, where the palette is first known; a Runner re-Started
	// with a larger palette grows the backing slices once and reuses them.
	useBitset   bool
	knownBits   []uint64
	knownWords  int
	knownSorted []int32 // sorted-prefix tier: v's region is ix.Offsets[v]..ix.Offsets[v+1]
	numKnown    []int32
	// forceKnownTier pins the tier for the equivalence tests: 0 = select
	// automatically, >0 = bitset, <0 = sorted prefix.
	forceKnownTier int

	// live is the number of uncolored nodes — the completion frontier that
	// replaces the seed path's O(n) per-phase scan over all processes. It is
	// only decremented (colors are permanent), from node steps; the counter
	// is atomic because the sharded engine steps nodes concurrently, and the
	// final value is deterministic (decrements commute).
	live   atomic.Int64
	phases int

	// cancelHook is the runner-level cancellation hook (SetCancel), OR-ed
	// with each run's Config.Cancel; cancelFn is the bound method value
	// installed on the engine, allocated once at construction so Start stays
	// allocation-free.
	cancelHook func() bool
	cancelFn   func() bool
}

// nodeProc adapts one node of the Runner to the congest.Process interface.
// The n values live in one flat slice, allocated once per Runner.
type nodeProc struct {
	r *Runner
	v graph.NodeID
}

// Step implements congest.Process. The process never "halts" in the
// simulator's sense because colored nodes still answer queries; termination
// is driven by the phase loop.
func (p *nodeProc) Step(ctx *congest.Context, round int, inbox []congest.Message) bool {
	switch round % 3 {
	case 0:
		p.r.stepPropose(p.v, ctx, inbox)
	case 1:
		p.r.stepAnswer(p.v, ctx, inbox)
	case 2:
		p.r.stepAdopt(p.v, ctx, inbox)
	}
	return false
}

// NewRunner builds a trial kernel for g. The engine implementation
// (sequential or sharded-parallel) is fixed at construction; per-run knobs —
// palette, scope, seed, picker, phase budgets — arrive with each Start/Run.
func NewRunner(g *graph.Graph, parallel bool, workers int) *Runner {
	n := g.NumNodes()
	ix := g.EdgeIndex()
	slots := ix.NumSlots()
	r := &Runner{
		g:           g,
		ix:          ix,
		net:         congest.New(g, congest.Config{Parallel: parallel, Workers: workers}),
		procs:       make([]nodeProc, n),
		color:       make([]int32, n),
		proposal:    make([]int32, n),
		announced:   make([]bool, n),
		nbrColor:    make([]int32, slots),
		propScratch: make([]int32, slots),
	}
	for v := 0; v < n; v++ {
		r.procs[v] = nodeProc{r: r, v: graph.NodeID(v)}
		r.net.SetProcess(graph.NodeID(v), &r.procs[v])
	}
	r.cancelFn = r.canceled
	return r
}

// SetCancel installs a runner-level cooperative cancellation hook that
// applies to every subsequent run (OR-ed with each run's Config.Cancel),
// taking effect at the next Start. The serving plane uses it to point a
// long-lived warm kernel at "the current request's cancel flag" once,
// instead of threading a Cancel through every algorithm's Config. nil
// removes the hook.
func (r *Runner) SetCancel(f func() bool) { r.cancelHook = f }

// canceled reports whether the current run's cancellation hook (per-run
// Config.Cancel or runner-level SetCancel) has fired.
func (r *Runner) canceled() bool {
	if r.cfg.Cancel != nil && r.cfg.Cancel() {
		return true
	}
	return r.cancelHook != nil && r.cancelHook()
}

// Close releases the kernel's network (parking the sharded engine's
// persistent worker team). Idempotent; the Runner must not be used after
// Close. Owners of long-lived kernels — the sweep engine's per-cell memo,
// any future session cache — call this on teardown so pooled goroutines
// never outlive the kernel they serve.
func (r *Runner) Close() { r.net.Close() }

// Start validates cfg and rewinds the kernel for a new run: network reset to
// cfg.Seed, every flat array cleared, the live counter recomputed from
// cfg.Initial. It allocates only when cfg.PaletteSize exceeds every palette
// this Runner has started before (the per-node palette bitset rows grow
// once); re-Starts at or below a seen palette allocate nothing.
func (r *Runner) Start(cfg Config) error {
	if cfg.PaletteSize <= 0 {
		return fmt.Errorf("trial: palette size must be positive, got %d", cfg.PaletteSize)
	}
	if cfg.PaletteSize > math.MaxInt32 {
		return fmt.Errorf("trial: palette size %d exceeds the int32 color range", cfg.PaletteSize)
	}
	if cfg.Scope == 0 {
		cfg.Scope = ScopeDistance2
	}
	if cfg.ActiveProbability <= 0 || cfg.ActiveProbability > 1 {
		cfg.ActiveProbability = 1
	}
	if cfg.Active != nil && len(cfg.Active) != r.g.NumNodes() {
		return fmt.Errorf("trial: activation mask has length %d, want %d", len(cfg.Active), r.g.NumNodes())
	}
	if cfg.ExtraKnown != nil && len(cfg.ExtraKnown) != r.g.NumNodes() {
		return fmt.Errorf("trial: ExtraKnown has length %d, want %d", len(cfg.ExtraKnown), r.g.NumNodes())
	}
	r.cfg = cfg
	r.picker = cfg.Picker
	r.palette = int32(cfg.PaletteSize)
	r.phases = 0
	r.net.Reset(cfg.Seed)
	r.net.SetActive(cfg.Active)
	r.net.SetFaults(cfg.Faults)
	if cfg.Cancel != nil || r.cancelHook != nil {
		// Reset cleared the engine-level hook; reinstall the bound method
		// value so rounds poll cancellation. Left nil when no hook is set —
		// the uncancellable hot path keeps its single nil check per round.
		r.net.SetCancel(r.cancelFn)
	}

	n := r.g.NumNodes()
	r.knownWords = bitset.WordsFor(cfg.PaletteSize)
	r.useBitset = knownTierIsBitset(n, r.ix.NumSlots(), r.knownWords)
	if r.forceKnownTier != 0 {
		r.useBitset = r.forceKnownTier > 0 // test hook: pin one tier
	}
	if cfg.ExtraKnown != nil {
		r.useBitset = true // slot-less colors have no home in the sorted tier
	}
	if r.useBitset {
		if need := n * r.knownWords; need > cap(r.knownBits) {
			r.knownBits = make([]uint64, need)
		} else {
			r.knownBits = r.knownBits[:need]
			bitset.Row(r.knownBits).ClearAll()
		}
	} else {
		if r.knownSorted == nil {
			r.knownSorted = make([]int32, r.ix.NumSlots())
			r.numKnown = make([]int32, n)
		} else {
			clear(r.numKnown)
		}
	}

	live := int64(0)
	for v := 0; v < n; v++ {
		c := uncolored
		if cfg.Initial != nil && cfg.Initial[v] != coloring.Uncolored {
			c = int32(cfg.Initial[v])
		} else if cfg.Active == nil || cfg.Active[v] {
			live++ // frozen uncolored nodes are not part of this run's frontier
		}
		r.color[v] = c
		r.proposal[v] = -1
		r.announced[v] = false // pre-colored nodes announce in the first propose round
	}
	for e := range r.nbrColor {
		r.nbrColor[e] = uncolored
	}
	if cfg.PreloadInitial && cfg.Initial != nil {
		for v := 0; v < n; v++ {
			base := r.ix.Offsets[v]
			targets := r.ix.Targets[base:r.ix.Offsets[v+1]]
			for i, u := range targets {
				if c := r.color[u]; c != uncolored {
					r.nbrColor[base+int32(i)] = c
					r.recordKnown(graph.NodeID(v), c)
				}
			}
			if r.color[v] != uncolored {
				r.announced[v] = true // knowledge delivered out of band; skip the broadcast
			}
		}
	}
	for v := range cfg.ExtraKnown {
		for _, c := range cfg.ExtraKnown[v] {
			if c >= 0 && c < r.palette {
				r.knownRow(graph.NodeID(v)).Set(int(c)) // bitset tier forced above
			}
		}
	}
	r.live.Store(live)
	return nil
}

// recordKnown marks color c as known used by a neighbor of v on whichever
// tier the run selected. On the sorted tier the caller must have a free slot
// in v's region for it (one per neighbor, the recordAdoptions/preload
// invariant).
func (r *Runner) recordKnown(v graph.NodeID, c int32) {
	if r.useBitset {
		if c >= 0 && c < r.palette {
			r.knownRow(v).Set(int(c))
		}
		return
	}
	base := r.ix.Offsets[v]
	known := r.knownSorted[base : base+r.numKnown[v]+1]
	lo, _ := slices.BinarySearch(known[:len(known)-1], c)
	copy(known[lo+1:], known[lo:])
	known[lo] = c
	r.numKnown[v]++
}

// knownTierIsBitset selects the known-colors representation for a run: the
// palette bitset rows unless their footprint would exceed twice the flat
// per-slot budget. The comparison is in bytes — the rows cost 8·n·words
// bytes, the sorted-prefix tier 4·(n + slots) (numKnown plus the int32 slot
// regions every other kernel structure is already sized by) — so wide
// palettes on sparse graphs (a (1+ε)Δ² palette at avg degree 8) fall back to
// the prefix tier instead of dominating the kernel's residency. The choice
// is a pure function of topology and palette, so it can never make two runs
// diverge; both tiers are byte-identical in results.
func knownTierIsBitset(n, slots, words int) bool {
	return 8*n*words <= 2*4*(n+slots)
}

// knownRow returns node v's palette bitset of colors known used by a
// neighbor (bitset tier only).
func (r *Runner) knownRow(v graph.NodeID) bitset.Row {
	base := int(v) * r.knownWords
	return bitset.Row(r.knownBits[base : base+r.knownWords])
}

// Phase executes one trial phase (three simulated rounds) and reports
// whether the coloring is complete afterwards. A warmed-up Phase performs no
// heap allocations.
func (r *Runner) Phase() bool {
	r.net.RunRounds(3)
	r.phases++
	return r.live.Load() == 0
}

// Graph returns the topology the kernel was built for.
func (r *Runner) Graph() *graph.Graph { return r.g }

// Complete reports whether every node is colored.
func (r *Runner) Complete() bool { return r.live.Load() == 0 }

// Phases returns the number of phases executed since Start.
func (r *Runner) Phases() int { return r.phases }

// Metrics returns the engine metrics accumulated since Start.
func (r *Runner) Metrics() congest.Metrics { return r.net.Metrics() }

// Color returns v's current color, coloring.Uncolored if it has none. This is
// the read-back hook for callers that drive Start/RunPhases themselves and
// want the result without a Finish allocation (the repair kernel's zero-alloc
// global mode reads back only the dirty set this way).
func (r *Runner) Color(v graph.NodeID) int { return int(r.color[v]) }

// RunPhases executes phases until the coloring completes or the phase budget
// of the Config passed to Start is exhausted — the loop of Run, factored out
// so callers can keep the colors in the kernel's flat arrays instead of
// paying Finish's allocation. A warmed-up Start + RunPhases + Color read-back
// cycle performs no heap allocations (only the budget *error* path formats).
// Calling it again without a fresh Start continues against the same budget.
func (r *Runner) RunPhases() error {
	maxPhases := r.cfg.MaxPhases
	capped := maxPhases > 0
	if !capped {
		maxPhases = r.cfg.PhaseCap
		if maxPhases <= 0 {
			maxPhases = defaultPhaseCap(r.g.NumNodes())
		}
	}
	for r.phases < maxPhases && !r.Complete() {
		// Poll cancellation once per phase; the engine additionally polls it
		// between the phase's three rounds, so a cancel that fires mid-phase
		// stops the simulation within one round and is surfaced here on the
		// next iteration. Only the error path below allocates.
		if r.canceled() {
			return fmt.Errorf("%w (%d phases, %d nodes uncolored)",
				ErrCanceled, r.phases, r.live.Load())
		}
		r.Phase()
	}
	if r.canceled() && !r.Complete() {
		return fmt.Errorf("%w (%d phases, %d nodes uncolored)",
			ErrCanceled, r.phases, r.live.Load())
	}
	// Budget exhaustion is judged against the run's frontier (live active
	// uncolored nodes), not completeness of the full coloring: under a
	// partial-activation mask frozen uncolored nodes legitimately stay
	// uncolored.
	if !r.Complete() && !capped {
		return fmt.Errorf("%w (%d phases, %d nodes uncolored)",
			ErrPhaseBudget, r.phases, r.live.Load())
	}
	return nil
}

// Finish assembles the Result of the run so far (the coloring slice is the
// only allocation).
func (r *Runner) Finish() Result {
	n := r.g.NumNodes()
	out := coloring.New(n)
	complete := true
	for v := 0; v < n; v++ {
		out[v] = int(r.color[v])
		if r.color[v] == uncolored {
			complete = false
		}
	}
	return Result{Coloring: out, Phases: r.phases, Metrics: r.net.Metrics(), Complete: complete}
}

// FinishPacked assembles the Result with the coloring bit-packed instead of
// []int — the only allocation is the ⌈log₂(palette+1)⌉-bits/node backing.
// The packing palette covers every color present (Config.Initial may carry
// colors above Config.PaletteSize), so the pack never truncates.
func (r *Runner) FinishPacked() Result {
	n := r.g.NumNodes()
	packPalette := int32(r.palette)
	complete := true
	for v := 0; v < n; v++ {
		if c := r.color[v]; c == uncolored {
			complete = false
		} else if c >= packPalette {
			packPalette = c + 1
		}
	}
	out := coloring.NewPacked(n, int(packPalette))
	for v := 0; v < n; v++ {
		if c := r.color[v]; c != uncolored {
			out.Set(graph.NodeID(v), int(c))
		}
	}
	return Result{Packed: out, Phases: r.phases, Metrics: r.net.Metrics(), Complete: complete}
}

// Run executes trial phases until the coloring is complete or the phase
// budget is exhausted. It may be called repeatedly with different configs;
// each call behaves exactly like a fresh run on a fresh network.
func (r *Runner) Run(cfg Config) (Result, error) {
	if err := r.Start(cfg); err != nil {
		return Result{}, err
	}
	budgetErr := r.RunPhases()
	var res Result
	if cfg.PackedOutput {
		res = r.FinishPacked()
	} else {
		res = r.Finish()
	}
	if budgetErr != nil {
		if errors.Is(budgetErr, ErrCanceled) {
			res.Canceled = true
		} else {
			res.BudgetExhausted = true
		}
		return res, budgetErr
	}
	return res, nil
}

// Run executes trial phases on g until the coloring is complete or the phase
// budget is exhausted, on a freshly built kernel (closed before returning).
// Callers running the primitive repeatedly on one graph should build a
// Runner once and reuse it.
func Run(g *graph.Graph, cfg Config) (Result, error) {
	r := NewRunner(g, cfg.Parallel, cfg.Workers)
	defer r.Close()
	return r.Run(cfg)
}

// stepPropose records adoption notifications from the previous phase and
// broadcasts this node's candidate (if live and active) or its fresh adoption.
func (r *Runner) stepPropose(v graph.NodeID, ctx *congest.Context, inbox []congest.Message) {
	r.recordAdoptions(v, inbox)
	r.proposal[v] = -1
	if r.color[v] != uncolored {
		if !r.announced[v] {
			ctx.Broadcast(kindAdopt, EncodeColor(int(r.color[v])))
			r.announced[v] = true
		}
		return
	}
	if r.cfg.ActiveProbability < 1 && !ctx.Rand().Bernoulli(r.cfg.ActiveProbability) {
		return
	}
	var cand int
	if r.cfg.AvoidKnownUsed && r.picker == nil {
		cand = r.pickAvoidingKnown(v, ctx)
	} else {
		picker := r.picker
		if picker == nil {
			picker = UniformPicker
		}
		cand = picker(v, ctx.Rand(), r.cfg.PaletteSize)
	}
	if cand < 0 || cand >= r.cfg.PaletteSize {
		return
	}
	r.proposal[v] = int32(cand)
	ctx.Broadcast(kindPropose, EncodeColor(cand))
	// A node with no neighbors has nobody to object; it can adopt directly.
	if ctx.Degree() == 0 {
		r.color[v] = int32(cand)
		r.announced[v] = true
		r.live.Add(-1)
	}
}

// stepAnswer answers every proposing neighbor. For distance-2 scope a
// candidate conflicts if it equals this node's color or proposal, any of this
// node's other neighbors' colors, or another proposal received this phase.
// For distance-1 scope only this node's own color and proposal count.
//
// The inbox arrives sorted by sender (the message plane guarantees it), so
// the node's slot region is walked with a single merge pointer and each
// answer is addressed to the sender's out-slot directly — the whole step is
// O(deg) plus one in-place sort of the phase's proposal colors. The "used by
// a neighbor" membership test is one AND into the node's palette bitset row
// (or a binary search into the sorted prefix on the fallback tier).
func (r *Runner) stepAnswer(v graph.NodeID, ctx *congest.Context, inbox []congest.Message) {
	r.recordAdoptions(v, inbox)
	base := r.ix.Offsets[v]
	d2 := r.cfg.Scope == ScopeDistance2

	// Gather this phase's proposal colors into the scratch region; sorting
	// them makes "did two neighbors propose this color" a binary search. A
	// proposer is by definition uncolored, so it can never appear among the
	// known neighbor colors — no sender exclusion is needed there.
	props := r.propScratch[base:base:r.ix.Offsets[v+1]] // capped: appends stay in v's region
	if d2 {
		for i := range inbox {
			if inbox[i].Kind == kindPropose {
				props = append(props, int32(DecodeColor(inbox[i].Word)))
			}
		}
		slices.Sort(props)
	}

	nbr := 0 // merge pointer into v's neighbor list (inbox is sender-sorted)
	targets := r.ix.Targets[base:r.ix.Offsets[v+1]]
	for i := range inbox {
		m := &inbox[i]
		if m.Kind != kindPropose {
			continue
		}
		for targets[nbr] != m.From {
			nbr++
		}
		cand := int32(DecodeColor(m.Word))
		conflict := r.color[v] == cand || (r.proposal[v] == cand && r.color[v] == uncolored)
		if d2 && !conflict {
			// Another neighbor of this node proposed the same color: the two
			// proposers are at distance <= 2 through us.
			if lo, dup := slices.BinarySearch(props, cand); dup && lo+1 < len(props) && props[lo+1] == cand {
				conflict = true
			} else if r.knownContains(v, base, cand) {
				conflict = true
			}
		}
		ctx.SendToNeighbor(nbr, kindAnswer, EncodeAnswer(int(cand), conflict))
	}
}

// stepAdopt adopts the proposal if every neighbor answered "no conflict".
func (r *Runner) stepAdopt(v graph.NodeID, ctx *congest.Context, inbox []congest.Message) {
	if r.proposal[v] < 0 || r.color[v] != uncolored {
		return
	}
	answers := 0
	for i := range inbox {
		if inbox[i].Kind != kindAnswer {
			continue
		}
		color, conflict := DecodeAnswer(inbox[i].Word)
		if int32(color) == r.proposal[v] {
			answers++
			if conflict {
				r.proposal[v] = -1
				return
			}
		}
	}
	if answers == ctx.Degree() {
		r.color[v] = r.proposal[v]
		r.announced[v] = false // broadcast in the next propose round
		r.live.Add(-1)
	}
	r.proposal[v] = -1
}

// knownContains reports whether color cand is known used by a neighbor of
// v, on whichever tier the run selected. base is v's slot-region offset.
func (r *Runner) knownContains(v graph.NodeID, base int32, cand int32) bool {
	if r.useBitset {
		return r.knownRow(v).Test(int(cand))
	}
	known := r.knownSorted[base : base+r.numKnown[v]]
	_, used := slices.BinarySearch(known, cand)
	return used
}

// pickAvoidingKnown draws a uniform candidate among the palette colors not
// known to be used by a neighbor; if every color is known used (impossible
// for a (Δ+1)-sized palette), it falls back to the whole palette. On the
// bitset tier the distinct-color count is a popcount and the idx-th free
// color a word scan (NthZero) — the row stores each color once and only
// in-palette colors, which is exactly the distinct/in-palette filtering the
// sorted-region merge of the fallback tier performs; both tiers therefore
// draw the identical color from the identical random stream.
func (r *Runner) pickAvoidingKnown(v graph.NodeID, ctx *congest.Context) int {
	if r.useBitset {
		known := r.knownRow(v)
		free := r.cfg.PaletteSize - known.Count()
		if free <= 0 {
			return ctx.Rand().Intn(r.cfg.PaletteSize)
		}
		idx := ctx.Rand().Intn(free)
		if c := known.NthZero(idx, r.cfg.PaletteSize); c >= 0 {
			return c
		}
		return ctx.Rand().Intn(r.cfg.PaletteSize)
	}
	base := r.ix.Offsets[v]
	known := r.knownSorted[base : base+r.numKnown[v]]
	// Count the distinct known colors inside the palette (the region is
	// sorted; duplicates and out-of-palette colors are skipped).
	used := 0
	prev := int32(-1)
	for _, c := range known {
		if c != prev && c < r.palette {
			used++
			prev = c
		}
	}
	free := r.cfg.PaletteSize - used
	if free <= 0 {
		return ctx.Rand().Intn(r.cfg.PaletteSize)
	}
	idx := ctx.Rand().Intn(free)
	// Select the idx-th free color by merging [0, palette) against the
	// sorted known region.
	j := 0
	for c := int32(0); c < r.palette; c++ {
		for j < len(known) && known[j] < c {
			j++
		}
		if j < len(known) && known[j] == c {
			continue
		}
		if idx == 0 {
			return int(c)
		}
		idx--
	}
	return ctx.Rand().Intn(r.cfg.PaletteSize)
}

// recordAdoptions folds adoption notifications into the node's slot region:
// nbrColor gets the sender's color at its neighbor position, and the color
// is recorded in the known-colors tier — set in the palette bitset row on
// the common tier (in-palette colors only: out-of-palette colors, possible
// via Config.Initial, can never match a candidate), or inserted into the
// sorted prefix on the fallback tier. The inbox is sorted by sender, so one
// merge pointer finds every sender's slot in O(deg) total.
func (r *Runner) recordAdoptions(v graph.NodeID, inbox []congest.Message) {
	base := r.ix.Offsets[v]
	targets := r.ix.Targets[base:r.ix.Offsets[v+1]]
	nbr := 0
	for i := range inbox {
		m := &inbox[i]
		if m.Kind != kindAdopt {
			continue
		}
		for targets[nbr] != m.From {
			nbr++
		}
		if r.nbrColor[base+int32(nbr)] != uncolored {
			continue // colors are permanent; an adoption is announced once
		}
		c := int32(DecodeColor(m.Word))
		r.nbrColor[base+int32(nbr)] = c
		r.recordKnown(v, c)
	}
}
