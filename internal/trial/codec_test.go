package trial

import (
	"testing"
	"testing/quick"

	"d2color/internal/congest"
)

func TestColorCodecRoundTrip(t *testing.T) {
	for _, c := range []int{0, 1, 7, 1 << 20, 1<<31 - 1} {
		if got := DecodeColor(EncodeColor(c)); got != c {
			t.Errorf("color round trip of %d = %d", c, got)
		}
	}
}

func TestAnswerCodecRoundTrip(t *testing.T) {
	f := func(color uint32, conflict bool) bool {
		c, k := DecodeAnswer(EncodeAnswer(int(color), conflict))
		return c == int(color) && k == conflict
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// The trial protocol charges one word per message (the seed-path accounting:
// a color is one O(log n)-bit quantity, the answer's conflict bit rides
// along). The honest word count of every encodable payload must stay within
// the constant-factor budget the paper's O(log n)-bit messages allow: a
// color from a Δ²+1 ≤ n²+1 palette occupies at most 2 ⌈log₂ n⌉-bit words,
// an answer at most 3 (two words of color plus the shifted-in bit).
func TestCodecWordsAccounting(t *testing.T) {
	for _, n := range []int{16, 100, 1024, 1 << 16} {
		delta := n - 1 // densest possible topology
		maxColor := delta*delta + 1 - 1
		if got := congest.WordsFor(EncodeColor(maxColor), n); got > 2 {
			t.Errorf("n=%d: propose payload needs %d words, want <= 2", n, got)
		}
		if got := congest.WordsFor(EncodeAnswer(maxColor, true), n); got > 3 {
			t.Errorf("n=%d: answer payload needs %d words, want <= 3", n, got)
		}
	}
}
