package trial

import (
	"slices"
	"testing"

	"d2color/internal/coloring"
	"d2color/internal/graph"
)

// TestPreloadInitialByteIdentity pins the PreloadInitial contract: with the
// default picker, pre-announcing Initial's colors changes the message bill
// but not a single output color, because round-0 broadcasts are recorded by
// receivers before any answer or adoption decision reads the knowledge.
func TestPreloadInitialByteIdentity(t *testing.T) {
	g := graph.GNPWithAverageDegree(250, 6, 3)
	n := g.NumNodes()
	// Pre-color ~2/3 of the nodes with a valid partial d2 coloring: color
	// greedily and then uncolor every third node.
	view := graph.NewDist2View(g)
	initial := coloring.New(n)
	used := make(map[int]bool)
	for v := 0; v < n; v++ {
		clear(used)
		view.ForEachDist2(graph.NodeID(v), func(w graph.NodeID) bool {
			if initial[w] != coloring.Uncolored {
				used[initial[w]] = true
			}
			return true
		})
		c := 0
		for used[c] {
			c++
		}
		initial[v] = c
	}
	for v := 0; v < n; v += 3 {
		initial[v] = coloring.Uncolored
	}

	d := g.MaxDegree()
	run := func(preload bool) Result {
		res, err := Run(g, Config{
			PaletteSize:    d*d + 1,
			Scope:          ScopeDistance2,
			Seed:           7,
			Initial:        initial,
			PreloadInitial: preload,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain, preloaded := run(false), run(true)
	if !slices.Equal(plain.Coloring, preloaded.Coloring) {
		t.Fatal("PreloadInitial changed the output coloring")
	}
	if preloaded.Metrics.MessagesSent >= plain.Metrics.MessagesSent {
		t.Fatalf("preload did not save messages: %d vs %d",
			preloaded.Metrics.MessagesSent, plain.Metrics.MessagesSent)
	}
}

// TestExtraKnownVetoes: a color seeded through ExtraKnown acts exactly like
// a neighbor-announced color — the node vetoes proposals for it, which can
// make an otherwise-colorable instance uncolorable.
func TestExtraKnownVetoes(t *testing.T) {
	g := graph.Path(2) // 0 — 1
	initial := coloring.New(2)
	initial[1] = 0 // node 1 fixed; node 0 must find a color in {0, 1}

	// Without context, node 0 settles on color 1.
	res, err := Run(g, Config{PaletteSize: 2, Scope: ScopeDistance2, Seed: 3, Initial: initial})
	if err != nil {
		t.Fatal(err)
	}
	if res.Coloring[0] != 1 {
		t.Fatalf("baseline run picked color %d, want 1", res.Coloring[0])
	}

	// Node 1 "remembers" an out-of-graph neighbor using color 1: now every
	// candidate of node 0 is vetoed and the run cannot complete.
	res, err = Run(g, Config{
		PaletteSize: 2,
		Scope:       ScopeDistance2,
		Seed:        3,
		Initial:     initial,
		ExtraKnown:  [][]int32{nil, {1}},
		MaxPhases:   8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Coloring[0] != coloring.Uncolored {
		t.Fatalf("node 0 adopted color %d despite the ExtraKnown veto", res.Coloring[0])
	}

	// Out-of-palette and duplicate entries are ignored without effect.
	res, err = Run(g, Config{
		PaletteSize: 2,
		Scope:       ScopeDistance2,
		Seed:        3,
		Initial:     initial,
		ExtraKnown:  [][]int32{nil, {-4, 99, 0, 0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Coloring[0] != 1 {
		t.Fatalf("noise ExtraKnown changed the result: color %d, want 1", res.Coloring[0])
	}

	// Length validation.
	if _, err := Run(g, Config{PaletteSize: 2, Scope: ScopeDistance2, ExtraKnown: [][]int32{nil}}); err == nil {
		t.Fatal("short ExtraKnown was accepted")
	}
}
