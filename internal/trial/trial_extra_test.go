package trial

import (
	"testing"

	"d2color/internal/graph"
	"d2color/internal/rng"
	"d2color/internal/verify"
)

func TestAvoidKnownUsedSpeedsUpTightPalette(t *testing.T) {
	// On the square of a dense graph with exactly Δ(G²)+1 colors, the
	// whole-palette picker wastes most tries once few colors remain free,
	// while the known-available picker (the classical simple algorithm)
	// completes in a logarithmic number of phases. Compare the two on the
	// same instance and seed.
	g := graph.Complete(60) // distance-1 scope on K60 ~ the tightest palette
	palette := g.MaxDegree() + 1
	blind, err := Run(g, Config{PaletteSize: palette, Scope: ScopeDistance1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	aware, err := Run(g, Config{PaletteSize: palette, Scope: ScopeDistance1, Seed: 3, AvoidKnownUsed: true})
	if err != nil {
		t.Fatal(err)
	}
	if !aware.Complete {
		t.Fatal("known-available picker should complete")
	}
	if rep := verify.CheckD1(g, aware.Coloring, palette); !rep.Valid {
		t.Fatalf("invalid coloring: %v", rep.Error())
	}
	if blind.Complete && blind.Phases < aware.Phases {
		t.Errorf("whole-palette picker (%d phases) should not beat the known-available picker (%d phases) on a clique",
			blind.Phases, aware.Phases)
	}
}

func TestAvoidKnownUsedStillValidOnD2Scope(t *testing.T) {
	g := graph.CliqueChain(4, 6, 0)
	palette := g.MaxDegree()*g.MaxDegree() + 1
	res, err := Run(g, Config{PaletteSize: palette, Scope: ScopeDistance2, Seed: 9, AvoidKnownUsed: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatal("run did not complete")
	}
	if rep := verify.CheckD2(g, res.Coloring, palette); !rep.Valid {
		t.Errorf("invalid coloring: %v", rep.Error())
	}
}

func TestCustomPickerOverridesAvoidKnownUsed(t *testing.T) {
	// An explicit picker wins over AvoidKnownUsed (documented behaviour).
	g := graph.Path(3)
	calls := 0
	res, err := Run(g, Config{
		PaletteSize:    4,
		Seed:           1,
		AvoidKnownUsed: true,
		MaxPhases:      2,
		Picker: func(v graph.NodeID, _ *rng.Source, paletteSize int) int {
			calls++
			return -1 // stay quiet
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Error("custom picker was not invoked")
	}
	if res.Coloring.NumColored() != 0 {
		t.Error("quiet picker should color nothing")
	}
}

func TestIsolatedNodesColorImmediately(t *testing.T) {
	g := graph.NewBuilder(5).Build() // no edges at all
	res, err := Run(g, Config{PaletteSize: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatal("isolated nodes should all color themselves")
	}
	if res.Phases != 1 {
		t.Errorf("isolated nodes should finish in one phase, took %d", res.Phases)
	}
}
