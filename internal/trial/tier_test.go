package trial

import (
	"fmt"
	"testing"

	"d2color/internal/bitset"
	"d2color/internal/graph"
)

// The two known-colors tiers (palette bitset rows vs sorted slot-region
// prefixes) must be byte-identical: same colorings, same phases, same
// Metrics, across scopes, pickers and seeds. This is the oracle suite for
// the trial half of the palette kernel — the sorted tier IS the pre-bitset
// implementation.
func TestKnownTiersAreByteIdentical(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"gnp":  graph.GNP(70, 0.08, 11),
		"star": graph.Star(30),
		"grid": graph.Grid(7, 7),
	}
	for name, g := range graphs {
		for _, seed := range []uint64{1, 7, 42} {
			for i, cfg := range kernelConfigs(g, seed) {
				t.Run(fmt.Sprintf("%s/seed=%d/cfg=%d", name, seed, i), func(t *testing.T) {
					rb := NewRunner(g, false, 0)
					rb.forceKnownTier = 1
					rs := NewRunner(g, false, 0)
					rs.forceKnownTier = -1
					bres, err := rb.Run(cfg)
					if err != nil {
						t.Fatalf("bitset tier: %v", err)
					}
					sres, err := rs.Run(cfg)
					if err != nil {
						t.Fatalf("sorted tier: %v", err)
					}
					if bres.Phases != sres.Phases || bres.Complete != sres.Complete {
						t.Fatalf("phases/complete differ: bitset (%d,%v) vs sorted (%d,%v)",
							bres.Phases, bres.Complete, sres.Phases, sres.Complete)
					}
					if bres.Metrics != sres.Metrics {
						t.Fatalf("metrics differ:\nbitset: %v\nsorted: %v", bres.Metrics, sres.Metrics)
					}
					for v := range bres.Coloring {
						if bres.Coloring[v] != sres.Coloring[v] {
							t.Fatalf("node %d: bitset color %d, sorted color %d",
								v, bres.Coloring[v], sres.Coloring[v])
						}
					}
				})
			}
		}
	}
}

// Degenerate palette ≫ degree topologies must select the sorted tier so the
// kernel's memory stays O(n + m): a star under a Δ²-scale palette would
// otherwise allocate n·Δ²/64 words.
func TestKnownTierSelection(t *testing.T) {
	star := graph.Star(2000) // Δ = 1999, Δ²+1 ≈ 4M colors
	r := NewRunner(star, false, 0)
	delta := star.MaxDegree()
	if err := r.Start(Config{PaletteSize: delta*delta + 1, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if r.useBitset {
		t.Fatal("star graph under a Δ² palette must fall back to the sorted tier")
	}
	if len(r.knownBits) != 0 {
		t.Errorf("sorted-tier start grew the bitset rows to %d words", len(r.knownBits))
	}
	// A sparse bounded-degree workload stays on the bitset tier.
	g := graph.GNPWithAverageDegree(2000, 8, 3)
	r2 := NewRunner(g, false, 0)
	delta = g.MaxDegree()
	if err := r2.Start(Config{PaletteSize: delta*delta + 1, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if !r2.useBitset {
		t.Fatal("sparse GNP under a Δ² palette should use the bitset tier")
	}
	// The predicate itself, in bytes: bitset iff 8·n·words stays within
	// twice the 4·(n+slots) flat-array budget.
	if knownTierIsBitset(1000, 8000, 1000) {
		t.Error("1000 nodes × 1000 words must not pick the bitset tier over 8000 slots")
	}
	if !knownTierIsBitset(1000, 8000, 8) {
		t.Error("8 words per row fits the byte budget and must pick the bitset tier")
	}
	if knownTierIsBitset(1000, 8000, 16) {
		t.Error("16 words per row is 128 KB of rows against a 36 KB flat budget; must fall back to the sorted tier")
	}
	_ = bitset.WordsFor // keep the import meaningful if assertions change
}

// A Runner reused across Starts must survive tier switches (small palette →
// bitset, huge palette → sorted, and back) with fresh state each time.
func TestKnownTierSwitchOnReuse(t *testing.T) {
	g := graph.Star(100)
	delta := g.MaxDegree()
	r := NewRunner(g, false, 0)
	fresh := func(palette int) Result {
		res, err := Run(g, Config{PaletteSize: palette, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	for _, palette := range []int{delta + 1, delta*delta + 1, delta + 1} {
		want := fresh(palette)
		got, err := r.Run(Config{PaletteSize: palette, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		if got.Phases != want.Phases || got.Metrics != want.Metrics {
			t.Fatalf("palette %d: reused kernel diverged (phases %d vs %d)", palette, got.Phases, want.Phases)
		}
		for v := range want.Coloring {
			if got.Coloring[v] != want.Coloring[v] {
				t.Fatalf("palette %d node %d: %d vs %d", palette, v, got.Coloring[v], want.Coloring[v])
			}
		}
	}
}
