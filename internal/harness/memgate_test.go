package harness

import (
	"os"
	"testing"
)

// memoryEnvelope is the recorded bytes-per-node ceiling at n = 10⁶ (sparse
// GNP, average degree 8, packed colorings, sequential engine) that the
// D2_MEMORY_GATE CI job enforces. The measured figures after the ISSUE 7
// memory diet are ~50 B/node (greedy: resident CSR + packed output +
// transient scratch) and ~730 B/node (relaxed: CSR + the 24-byte message
// plane, the inbox arena, the trial kernel and the sorted known-colors
// tier), down from 1551 B/node before the diet. The envelopes leave
// headroom for allocator and GC variation across machines while still
// locking in well over the 35% reduction the issue demanded (≤ ~1008
// B/node for relaxed).
var memoryEnvelope = map[string]float64{
	"greedy":  96,
	"relaxed": 900,
}

// TestMemoryEnvelopeAtMillion is the memory regression gate: opt-in via
// D2_MEMORY_GATE=1 (the reading needs a quiet machine and a Linux /proc, so
// ordinary test sweeps skip it; the CI job owns its runner and a regression
// fails the build). It runs the standard n = 10⁶ probe and compares each
// algorithm's peak resident bytes per node against the recorded envelope.
func TestMemoryEnvelopeAtMillion(t *testing.T) {
	if os.Getenv("D2_MEMORY_GATE") != "1" {
		t.Skip("memory gate is opt-in: set D2_MEMORY_GATE=1 (CI memory job)")
	}
	probes, reliable, err := RunMemoryProbe(1_000_000, 1, []string{"greedy", "relaxed"})
	if err != nil {
		t.Fatal(err)
	}
	if !reliable {
		t.Skip("platform does not allow resetting VmHWM; per-algorithm readings would be monotone")
	}
	for _, p := range probes {
		limit := memoryEnvelope[p.Algorithm]
		t.Logf("%s: peak %.0f MiB over n=%d m=%d → %.0f B/node (envelope %.0f)",
			p.Algorithm, p.PeakRSSMiB, p.N, p.M, p.BytesPerNode, limit)
		if p.BytesPerNode > limit {
			t.Errorf("%s regressed: %.0f resident bytes per node exceeds the recorded envelope of %.0f",
				p.Algorithm, p.BytesPerNode, limit)
		}
	}
}
