package harness

import (
	"strconv"
	"testing"
)

// TestE13Smoke runs the serving-plane experiment's quick pipeline (the four
// standard mixes plus the unbatched twin at CI sizes) once and checks the
// structural invariants: row shape, monotone percentiles, no request errors
// (runE13 fails on those itself), positive throughput, coalescing on the
// batched query mix, and evictions under the sized budget. Every measured
// column is wall-clock derived, so there is no rerun-and-compare half — E13
// is Volatile like E11.
func TestE13Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("load mixes skipped in -short mode (CI runs this via its own step)")
	}
	table, err := runE13(Config{Quick: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 5 {
		t.Fatalf("quick E13 should have 4 mixes + 1 unbatched twin = 5 rows, got %d", len(table.Rows))
	}
	col := func(name string) int {
		for i, c := range table.Columns {
			if c == name {
				return i
			}
		}
		t.Fatalf("missing column %q", name)
		return -1
	}
	mixCol := col("mix")
	p50Col, p95Col, p99Col := col("p50 ms"), col("p95 ms"), col("p99 ms")
	reqsCol, rpsCol := col("requests"), col("req/s")
	coalCol, evictCol, batchCol := col("coalesced"), col("evict"), col("batch")

	rows := map[string][]string{}
	for _, row := range table.Rows {
		rows[row[mixCol]] = row
		p50, err1 := strconv.ParseFloat(row[p50Col], 64)
		p95, err2 := strconv.ParseFloat(row[p95Col], 64)
		p99, err3 := strconv.ParseFloat(row[p99Col], 64)
		if err1 != nil || err2 != nil || err3 != nil || p50 <= 0 || p50 > p95 || p95 > p99 {
			t.Errorf("row %v: non-monotone or non-positive percentiles", row)
		}
		if reqs, err := strconv.Atoi(row[reqsCol]); err != nil || reqs <= 0 {
			t.Errorf("row %v: requests = %q, want > 0", row, row[reqsCol])
		}
		if rps, err := strconv.ParseFloat(row[rpsCol], 64); err != nil || rps <= 0 {
			t.Errorf("row %v: req/s = %q, want > 0", row, row[rpsCol])
		}
	}
	for _, want := range []string{"many-small/query", "many-small/query/unbatched", "many-small/churn", "one-huge/query", "one-huge/churn"} {
		if _, ok := rows[want]; !ok {
			t.Fatalf("missing mix row %q", want)
		}
	}
	// The batched query mix must actually batch and coalesce; its unbatched
	// twin must not.
	q, un := rows["many-small/query"], rows["many-small/query/unbatched"]
	if coal, err := strconv.Atoi(q[coalCol]); err != nil || coal == 0 {
		t.Errorf("batched query mix coalesced %q requests, want > 0", q[coalCol])
	}
	if un[coalCol] != "0" {
		t.Errorf("unbatched twin coalesced %q requests, want 0", un[coalCol])
	}
	if batch, err := strconv.ParseFloat(un[batchCol], 64); err != nil || batch > 1 {
		t.Errorf("unbatched twin mean batch = %q, want <= 1", un[batchCol])
	}
	// The many-small mixes run under a ~70% budget: eviction must happen.
	if q[evictCol] == "0" {
		t.Errorf("many-small/query: no evictions under the sized budget")
	}
	// The single-session huge mixes never evict.
	if rows["one-huge/query"][evictCol] != "0" {
		t.Errorf("one-huge/query: unexpected evictions %q", rows["one-huge/query"][evictCol])
	}
}
