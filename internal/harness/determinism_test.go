package harness

import (
	"bytes"
	"os"
	"testing"
)

// render returns the table bytes with the wall clock zeroed (the only
// scheduling-dependent field).
func renderStable(t *testing.T, table *Table) []byte {
	t.Helper()
	table.Elapsed = 0
	var buf bytes.Buffer
	if err := table.Render(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSweepMatchesPreRefactorGoldens pins the sweep-engine-generated E1/E3
// tables to goldens captured from the hand-written pre-refactor loops (Quick,
// Seed 1, Repetitions 2), for a sequential and a saturated grid alike.
func TestSweepMatchesPreRefactorGoldens(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full quick sweeps")
	}
	for _, tc := range []struct {
		golden string
		run    func(Config) (*Table, error)
	}{
		{"E1_quick_seed1_reps2.golden", runE1},
		{"E3_quick_seed1_reps2.golden", runE3},
	} {
		want, err := os.ReadFile("testdata/" + tc.golden)
		if err != nil {
			t.Fatal(err)
		}
		for _, jobs := range []int{1, 8} {
			cfg := Config{Quick: true, Seed: 1, Repetitions: 2, Jobs: jobs}
			table, err := tc.run(cfg)
			if err != nil {
				t.Fatalf("%s jobs=%d: %v", tc.golden, jobs, err)
			}
			if got := renderStable(t, table); !bytes.Equal(got, want) {
				t.Errorf("%s jobs=%d: table diverged from the pre-refactor loops\n--- got ---\n%s\n--- want ---\n%s",
					tc.golden, jobs, got, want)
			}
		}
	}
}

// TestAllExperimentsJobsInvariant asserts that every experiment's table is
// byte-identical for a sequential and a saturated grid (the order-preserving
// fold argument of DESIGN.md §8). Volatile experiments (E11's wall-clock and
// RSS columns) cannot be compared byte-wise and have their own smoke test.
func TestAllExperimentsJobsInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full quick sweeps twice")
	}
	for _, e := range All() {
		e := e
		if e.Volatile {
			continue
		}
		t.Run(e.ID, func(t *testing.T) {
			seq, err := e.Run(Config{Quick: true, Seed: 1, Repetitions: 2, Jobs: 1})
			if err != nil {
				t.Fatal(err)
			}
			par, err := e.Run(Config{Quick: true, Seed: 1, Repetitions: 2, Jobs: 8})
			if err != nil {
				t.Fatal(err)
			}
			if got, want := renderStable(t, par), renderStable(t, seq); !bytes.Equal(got, want) {
				t.Errorf("jobs=8 table differs from jobs=1:\n--- jobs=8 ---\n%s\n--- jobs=1 ---\n%s", got, want)
			}
		})
	}
}
