// Package harness defines and runs the experiments E1–E13 that reproduce the
// quantitative claims of the paper, plus the million-node scale experiment,
// the churn-tolerance experiment, and the serving-plane load experiment
// (see EXPERIMENTS.md and DESIGN.md §8).
//
// The paper is a theory paper without empirical tables; each experiment
// regenerates a table whose *shape* validates one theorem or lemma: round
// counts scale as the theorem's bound predicts, palettes stay within the
// stated size, and the baselines lose where the paper says they must.
//
// Each experiment is declarative: a sweep.Spec (a grid of workload points ×
// algorithm instances × engines × seed repetitions, executed grid-parallel
// by internal/sweep) plus a small row-shaping closure that turns the
// aggregated cells into a Table. The generated tables are byte-identical for
// every Config.Jobs value, apart from the wall-clock note each one ends with.
package harness

import (
	"io"
	"runtime"
	"sort"

	"d2color/internal/alg"
	"d2color/internal/sweep"
)

// Config controls every experiment run.
type Config struct {
	// Quick shrinks the sweeps (used by tests and -short benchmarks).
	Quick bool
	// Seed drives all randomness.
	Seed uint64
	// Repetitions averages randomized measurements over this many seeds;
	// 0 means 3 (1 in Quick mode).
	Repetitions int
	// Parallel runs the message-level simulations inside the experiments on
	// the sharded-parallel CONGEST engine. The engines are byte-deterministic
	// with each other, so the generated tables are identical either way. It
	// only engages when the grid itself runs sequentially (Jobs == 1):
	// nesting sharded engines inside a saturated cell pool would add
	// scheduling overhead without changing a single table cell.
	Parallel bool
	// Jobs bounds the worker pool that fans the sweep grid's cells
	// (workload × algorithm × engine combinations, each with its repetitions
	// folded in order) over the machine; 0 means GOMAXPROCS, 1 disables the
	// fan-out. Tables are byte-identical for every value, apart from the
	// wall-clock note Render appends.
	Jobs int
	// Workers is the deprecated name of Jobs (it used to bound the
	// repetition-only fan-out); it is honored when Jobs is 0.
	Workers int
}

func (c Config) reps() int {
	if c.Repetitions > 0 {
		return c.Repetitions
	}
	if c.Quick {
		return 1
	}
	return 3
}

// jobs resolves the grid fan-out bound.
func (c Config) jobs() int {
	if c.Jobs > 0 {
		return c.Jobs
	}
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// engineAxis returns the single-engine axis the experiment specs run on: the
// config's engine choice when the grid is sequential, the sequential engine
// when cells fan out (see Config.Parallel).
func (c Config) engineAxis() []sweep.EngineAxis {
	if c.Parallel && c.jobs() == 1 {
		return []sweep.EngineAxis{{Name: "parallel", Engine: alg.Engine{Parallel: true}}}
	}
	return []sweep.EngineAxis{{Name: "sequential"}}
}

// runGrid executes the spec with the config's fan-out and shapes the grid
// into t (typically one row per cell or per point); it stamps the sweep's
// wall clock on the table so rendered sweeps are self-profiling.
func runGrid(cfg Config, spec sweep.Spec, t *Table, shape func(grid *sweep.Grid)) (*Table, error) {
	grid, err := sweep.Run(spec, sweep.Options{Jobs: cfg.jobs()})
	if err != nil {
		return nil, err
	}
	shape(grid)
	t.Elapsed = grid.Elapsed
	return t, nil
}

// Experiment is one reproducible experiment.
type Experiment struct {
	ID    string
	Title string
	Claim string
	Run   func(cfg Config) (*Table, error)
	// Volatile marks experiments whose tables contain inherently
	// machine-dependent columns (wall clock, RSS); byte-identity
	// comparisons must skip them. The workload/measurement columns of a
	// volatile table are still deterministic per seed.
	Volatile bool
}

// All returns the experiments in ID order.
func All() []Experiment {
	exps := []Experiment{
		{
			ID:    "E1",
			Title: "Randomized d2-coloring: rounds vs n and vs Δ",
			Claim: "Theorem 1.1: Δ²+1 colors in O(log Δ · log n) rounds w.h.p.",
			Run:   runE1,
		},
		{
			ID:    "E2",
			Title: "Basic vs improved final phase",
			Claim: "Corollary 2.1 (O(log³ n)) vs Theorem 1.1 (O(log Δ · log n)): the basic finisher grows strictly faster in n",
			Run:   runE2,
		},
		{
			ID:    "E3",
			Title: "Deterministic d2-coloring: rounds vs Δ",
			Claim: "Theorem 1.2: Δ²+1 colors in O(Δ² + log* n) rounds",
			Run:   runE3,
		},
		{
			ID:    "E4",
			Title: "Deterministic (1+ε)Δ² coloring",
			Claim: "Theorem 1.3: (1+ε)Δ² colors in polylog n rounds",
			Run:   runE4,
		},
		{
			ID:    "E5",
			Title: "Local refinement splitting quality",
			Claim: "Theorem 3.2 / Lemma A.5: every constrained vertex keeps at most (1+λ)·deg/2 neighbours of each color",
			Run:   runE5,
		},
		{
			ID:    "E6",
			Title: "Linial stage on G²",
			Claim: "Theorem B.1: O(Δ⁴) colors in O(Δ + log* n) rounds",
			Run:   runE6,
		},
		{
			ID:    "E7",
			Title: "LearnPalette and FinishColoring",
			Claim: "Lemma 2.14 + Lemma 2.15 + Theorem 2.16: |Tv| = O(log n) and FinishColoring completes in O(log n) phases",
			Run:   runE7,
		},
		{
			ID:    "E8",
			Title: "Naive G² simulation vs the paper's algorithm",
			Claim: "Introduction: simulating G² costs a Θ(Δ) factor; the paper's algorithm wins for Δ ≫ log n",
			Run:   runE8,
		},
		{
			ID:    "E9",
			Title: "Slack generation from sparsity",
			Claim: "Proposition 2.5 / Observation 1: ζ-sparse nodes obtain slack Ω(ζ) after the initial random trials",
			Run:   runE9,
		},
		{
			ID:    "E10",
			Title: "Reduce machinery in the dense regime (Moore graphs)",
			Claim: "Section 2.1: colored helpers' queries and proposals colour live nodes when neighbourhoods are Δ²-dense",
			Run:   runE10,
		},
		{
			ID:       "E11",
			Title:    "Million-node scale: throughput and memory of the palette kernels",
			Claim:    "ROADMAP north star: sparse n = 10⁶ workloads fit in commodity memory and color at scale",
			Run:      runE11,
			Volatile: true,
		},
		{
			ID:       "E12",
			Title:    "Churn tolerance: incremental repair vs full rerun under fault epochs",
			Claim:    "ROADMAP robustness item: ball-confined incremental repair heals corruption and churn at a small fraction of full-rerun cost",
			Run:      runE12,
			Volatile: true,
		},
		{
			ID:       "E13",
			Title:    "Coloring as a service: latency and throughput under closed-loop load",
			Claim:    "ROADMAP serving item: warm sessions with batched dispatch serve query-heavy mixes with bounded tails, and batching beats unbatched dispatch where requests coalesce",
			Run:      runE13,
			Volatile: true,
		},
		{
			ID:       "E14",
			Title:    "Chaos: overload shedding, deadline storms, panic quarantine, and graceful drain",
			Claim:    "ROADMAP robustness item: the serving plane degrades predictably — bounded queues shed excess load, deadlines cancel cooperatively with warm kernels reusable byte-identically, panics quarantine without leaks, drains complete against a deadline",
			Run:      runE14,
			Volatile: true,
		},
	}
	sort.Slice(exps, func(i, j int) bool { return exps[i].ID < exps[j].ID })
	return exps
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// RunAll runs every experiment and renders the tables to w.
func RunAll(cfg Config, w io.Writer) error {
	return Run(cfg, nil, TextSink{W: w})
}
