package harness

import (
	"fmt"
	"runtime/debug"

	"d2color/internal/alg"
	"d2color/internal/graph"
	"d2color/internal/verify"
)

// MemoryProbe is one algorithm's measured memory footprint on the standard
// scale workload: the peak resident set (VmHWM) covering the resident CSR
// graph plus the algorithm's kernel, coloring and scratch, normalized to
// bytes per node. It is the number the ISSUE 7 memory diet is judged by —
// cmd/bench persists it into BENCH_<pr>.json and the D2_MEMORY_GATE CI job
// fails the build when it regresses past the recorded envelope.
type MemoryProbe struct {
	Algorithm    string  `json:"algorithm"`
	N            int     `json:"n"`
	M            int     `json:"m"`
	PeakRSSMiB   float64 `json:"peakRSSMiB"`
	BytesPerNode float64 `json:"bytesPerNode"`
}

// RunMemoryProbe builds the standard scale workload (sparse GNP at average
// degree 8) once and runs each named registry algorithm on it with
// bit-packed output on the sequential engine, reporting per-run peak RSS.
// Before each run the heap is scavenged back to the OS and the VmHWM
// high-water mark reset, so a probe covers the shared resident graph plus
// that algorithm alone. reliable is false when the platform does not allow
// resetting VmHWM (non-Linux, locked-down /proc): the readings are then
// monotone across probes and unfit for a regression gate.
//
// Every probe's coloring is re-verified distance-2 valid so a future
// "optimization" cannot trade correctness for residency unnoticed.
func RunMemoryProbe(n int, seed uint64, algNames []string) (probes []MemoryProbe, reliable bool, err error) {
	g := graph.GNPWithAverageDegree(n, 8, int64(seed)+int64(n))
	reliable = true
	for _, name := range algNames {
		a, ok := alg.Get(name)
		if !ok {
			return nil, false, fmt.Errorf("memory probe: algorithm %q is not registered", name)
		}
		debug.FreeOSMemory()
		reliable = resetPeakRSS() && reliable
		res, err := a.Run(g, alg.Engine{PackedColors: true}, seed)
		if err != nil {
			return nil, false, fmt.Errorf("memory probe %s: %w", name, err)
		}
		rss := peakRSSMB()
		if res.Packed == nil {
			return nil, false, fmt.Errorf("memory probe %s: no packed coloring produced", name)
		}
		if verr := verify.CheckD2Packed(g, res.Packed, res.PaletteSize).Error(); verr != nil {
			return nil, false, fmt.Errorf("memory probe %s: invalid coloring: %w", name, verr)
		}
		probes = append(probes, MemoryProbe{
			Algorithm:    name,
			N:            g.NumNodes(),
			M:            g.NumEdges(),
			PeakRSSMiB:   rss,
			BytesPerNode: rss * 1024 * 1024 / float64(g.NumNodes()),
		})
	}
	return probes, reliable, nil
}
