package harness

import (
	"strconv"
	"testing"
)

// TestE11Smoke runs the scale experiment's short-mode pipeline (n = 50k,
// both workload families × both algorithms) and checks the deterministic
// columns: the smoke keeps the million-node path from rotting without
// paying million-node cost in CI.
func TestE11Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("50k-node sweeps skipped in -short mode (CI runs this via its own step)")
	}
	table, err := runE11(Config{Quick: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 6 {
		t.Fatalf("quick E11 should have 2 points × (greedy + relaxed×2 engines) = 6 rows, got %d", len(table.Rows))
	}
	col := func(name string) int {
		for i, c := range table.Columns {
			if c == name {
				return i
			}
		}
		t.Fatalf("missing column %q", name)
		return -1
	}
	nCol, colorsCol, paletteCol, engineCol := col("n"), col("colors used"), col("palette"), col("engine")
	engines := map[string]int{}
	for _, row := range table.Rows {
		engines[row[engineCol]]++
		n, err := strconv.Atoi(row[nCol])
		if err != nil || n != 50_000 {
			t.Errorf("row %v: n = %q, want 50000", row, row[nCol])
		}
		colors, err := strconv.Atoi(row[colorsCol])
		if err != nil || colors <= 0 {
			t.Errorf("row %v: colors used = %q, want > 0", row, row[colorsCol])
		}
		palette, err := strconv.Atoi(row[paletteCol])
		if err != nil || colors > palette {
			t.Errorf("row %v: colors %d exceed the advertised palette %q", row, colors, row[paletteCol])
		}
	}
	// Both engines must appear: the relaxed rows run the engine axis, so the
	// pooled sharded engine is on E11's measured path even in the smoke.
	if engines["sequential"] != 4 || engines["sharded"] != 2 {
		t.Errorf("engine column mix = %v, want 4× sequential + 2× sharded", engines)
	}
	// The deterministic columns must not depend on the run: regenerate and
	// compare everything except the volatile wall-clock/throughput/RSS.
	again, err := runE11(Config{Quick: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	volatile := map[int]bool{col("wall s"): true, col("colors/s"): true, col("peak RSS MiB"): true, col("B/node"): true}
	for ri := range table.Rows {
		for ci := range table.Columns {
			if volatile[ci] {
				continue
			}
			if table.Rows[ri][ci] != again.Rows[ri][ci] {
				t.Errorf("row %d column %q diverged between runs: %q vs %q",
					ri, table.Columns[ci], table.Rows[ri][ci], again.Rows[ri][ci])
			}
		}
	}
}
