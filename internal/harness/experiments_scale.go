package harness

import (
	"fmt"
	"math"
	"os"
	"runtime/debug"
	"strconv"
	"strings"

	"d2color/internal/alg"
	"d2color/internal/graph"
	"d2color/internal/sweep"
	"d2color/internal/verify"
)

// resetPeakRSS resets the kernel's resident-set high-water mark (writing 5
// to /proc/self/clear_refs), so the VmHWM read after a workload cell
// reflects that cell alone. It reports whether the reset took effect;
// where it does not (non-Linux, locked-down /proc), VmHWM readings are
// monotone over the process lifetime — E11 runs its points in ascending
// size order so the readings stay meaningful even then.
func resetPeakRSS() bool {
	return os.WriteFile("/proc/self/clear_refs", []byte("5"), 0) == nil
}

// peakRSSMB returns the process's peak resident set size (VmHWM) in MiB, or
// 0 when the platform does not expose /proc/self/status.
func peakRSSMB() float64 {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return 0
		}
		return kb / 1024
	}
	return 0
}

// rssString formats a peak-RSS reading, "n/a" where unavailable.
func rssString(mb float64) string {
	if mb <= 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.0f", mb)
}

// bytesPerNodeString converts a peak-RSS reading into resident bytes per
// node, the scale experiment's memory-diet figure of merit.
func bytesPerNodeString(mb float64, n int) string {
	if mb <= 0 || n <= 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.0f", mb*1024*1024/float64(n))
}

// unitDiskRadius returns the radius giving an expected average degree of
// avgDeg on n uniform points (E[deg] ≈ n·π·r², ignoring boundary effects).
func unitDiskRadius(n int, avgDeg float64) float64 {
	return math.Sqrt(avgDeg / (math.Pi * float64(n)))
}

// runE11 is the scale experiment the word-parallel palette kernels and the
// 32-bit node plane unlock: sparse GNP and unit-disk workloads at n up to
// 10⁷, colored by the sequential greedy floor and the simulated (1+ε)Δ²
// relaxed algorithm, with throughput (nodes colored per wall second),
// peak-RSS and resident-bytes-per-node columns. Unlike E1–E10 the
// wall-clock and RSS columns are inherently machine- and
// scheduling-dependent — the experiment is registered Volatile and excluded
// from byte-identity comparisons; the n/m/Δ/palette/colors columns remain
// deterministic per seed.
//
// Every (point, algorithm, engine) cell runs as its own single-cell sweep
// (Jobs forced to 1) with the point's graph built once and shared: before
// each cell the heap is scavenged (debug.FreeOSMemory) and the VmHWM
// high-water mark reset, so each row's peak RSS covers the resident graph
// plus that cell's kernel alone. Colorings are produced bit-packed
// (sweep.Spec.PackedColors) and every sample is re-verified distance-2
// valid outside the timed region — round-count validation at true scale.
func runE11(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E11",
		Title: "Scale ceiling: throughput and memory of the packed 32-bit kernels up to n = 10⁷",
		Claim: "ROADMAP north star: the 32-bit node plane and bit-packed colorings keep sparse workloads at n = 10⁷ within commodity memory while coloring millions of nodes per second (greedy) / simulating every CONGEST message at scale (relaxed)",
		Columns: []string{"workload", "n", "m", "Δ", "algorithm", "engine", "palette", "colors used",
			"wall s", "colors/s", "peak RSS MiB", "B/node"},
	}
	type scalePoint struct {
		name  string
		n     int
		build func() (*graph.Graph, error)
	}
	gnp := func(n int) scalePoint {
		return scalePoint{name: fmt.Sprintf("gnp(avg deg 8, n=%d)", n), n: n, build: func() (*graph.Graph, error) {
			return graph.GNPWithAverageDegree(n, 8, int64(cfg.Seed)+int64(n)), nil
		}}
	}
	disk := func(n int) scalePoint {
		r := unitDiskRadius(n, 8)
		return scalePoint{name: fmt.Sprintf("unitdisk(r=%.2g, n=%d)", r, n), n: n, build: func() (*graph.Graph, error) {
			return graph.UnitDisk(n, r, int64(cfg.Seed)+int64(n)+1), nil
		}}
	}
	points := []scalePoint{gnp(100_000), disk(100_000), gnp(1_000_000), disk(1_000_000), gnp(10_000_000)}
	if cfg.Quick {
		// The short-mode smoke: the same pipeline at n = 50k, small enough
		// for CI to exercise the scale path on every push.
		points = []scalePoint{gnp(50_000), disk(50_000)}
	}

	// Greedy is a zero-communication sequential scan (no engine to vary);
	// the simulated relaxed algorithm runs on the engine axis — the
	// sequential reference and the pooled sharded engine, the pair the
	// ISSUE 6 multicore gate compares at this scale. All engines are
	// byte-deterministic, so the sharded row may only differ in the
	// wall-clock columns. At n = 10⁷ the engine axis is restricted to
	// sequential: the sharded row would re-answer a question the 10⁶ points
	// already answer, at ten times the wall-clock.
	type cellSpec struct {
		algName string
		engine  sweep.EngineAxis
	}
	cellsFor := func(n int) []cellSpec {
		cells := []cellSpec{
			{"greedy", sweep.EngineAxis{Name: "sequential"}},
			{"relaxed", sweep.EngineAxis{Name: "sequential"}},
		}
		if n <= 1_000_000 {
			cells = append(cells, cellSpec{"relaxed", sweep.EngineAxis{Name: "sharded", Engine: alg.Engine{Parallel: true}}})
		}
		return cells
	}

	perCellRSS := true
	for _, sp := range points {
		g, err := sp.build()
		if err != nil {
			return nil, err
		}
		pt := sweep.Point{Label: sp.name, Build: func() (*graph.Graph, string, error) { return g, "", nil }}
		for _, cs := range cellsFor(sp.n) {
			// Scavenge the previous cell's garbage back to the OS before
			// resetting the high-water mark, so this cell's reading starts
			// from the resident graph rather than dead kernel pages.
			debug.FreeOSMemory()
			perCellRSS = resetPeakRSS() && perCellRSS
			spec := sweep.Spec{
				Name:         "E11/" + sp.name,
				Points:       []sweep.Point{pt},
				Algorithms:   []sweep.AlgAxis{{Alg: alg.MustGet(cs.algName), Reps: 1}},
				Engines:      []sweep.EngineAxis{cs.engine},
				Seed:         cfg.Seed,
				PackedColors: true,
			}
			grid, err := sweep.Run(spec, sweep.Options{Jobs: 1})
			if err != nil {
				return nil, err
			}
			t.Elapsed += grid.Elapsed
			rss := peakRSSMB()
			c := grid.Cell(0, 0, 0)
			if c.Sample == nil || c.Sample.Packed == nil {
				return nil, fmt.Errorf("E11 %s/%s: sweep returned no packed sample coloring", sp.name, cs.algName)
			}
			if err := verify.CheckD2Packed(g, c.Sample.Packed, c.Sample.PaletteSize).Error(); err != nil {
				return nil, fmt.Errorf("E11 %s/%s/%s: sample coloring failed distance-2 verification: %w",
					sp.name, cs.algName, cs.engine.Name, err)
			}
			secs := c.Mean(sweep.MeasureSeconds)
			throughput := 0.0
			if secs > 0 {
				throughput = float64(g.NumNodes()) / secs
			}
			t.AddRow(c.Label, itoa(g.NumNodes()), itoa(g.NumEdges()), itoa(g.MaxDegree()),
				c.Alg.Name(), cs.engine.Name, itoa(c.Alg.PaletteBound(g)),
				itoa(int(c.Mean(sweep.MeasureColors))),
				fmt.Sprintf("%.2f", secs), fmt.Sprintf("%.0f", throughput),
				rssString(rss), bytesPerNodeString(rss, g.NumNodes()))
		}
	}
	if perCellRSS {
		t.AddNote("cells run sequentially; the heap is scavenged and the RSS high-water mark (VmHWM) reset via /proc/self/clear_refs before each cell, so every peak-RSS/B-per-node reading covers the resident graph plus that cell's kernel alone")
	} else {
		t.AddNote("cells run sequentially in ascending size; the platform does not allow resetting VmHWM, so each peak-RSS reading is the monotone process high-water mark up to that cell")
	}
	t.AddNote("wall-clock, RSS and B/node columns are machine-dependent (the experiment is excluded from byte-identity checks); n, m, Δ, palette and colors are deterministic per seed")
	t.AddNote("colorings are produced bit-packed (⌈log₂(palette+1)⌉ bits per node) and every sample is re-verified distance-2 valid by the packed checker outside the timed region")
	t.AddNote("relaxed simulates every CONGEST message of the (1+ε)Δ² trial algorithm; greedy is the zero-communication sequential floor")
	t.AddNote("engine axis (relaxed rows): sequential vs the pooled sharded engine at GOMAXPROCS workers; the engines are byte-identical, so only the wall-clock columns may differ. The n = 10⁷ point runs sequential-only to bound single-run wall-clock")
	return t, nil
}
