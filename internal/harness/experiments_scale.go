package harness

import (
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"d2color/internal/alg"
	"d2color/internal/graph"
	"d2color/internal/sweep"
)

// resetPeakRSS resets the kernel's resident-set high-water mark (writing 5
// to /proc/self/clear_refs), so the VmHWM read after a workload point
// reflects that point alone. It reports whether the reset took effect;
// where it does not (non-Linux, locked-down /proc), VmHWM readings are
// monotone over the process lifetime — E11 runs its points in ascending
// size order so the readings stay meaningful even then.
func resetPeakRSS() bool {
	return os.WriteFile("/proc/self/clear_refs", []byte("5"), 0) == nil
}

// peakRSSMB returns the process's peak resident set size (VmHWM) in MiB, or
// 0 when the platform does not expose /proc/self/status.
func peakRSSMB() float64 {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return 0
		}
		return kb / 1024
	}
	return 0
}

// rssString formats a peak-RSS reading, "n/a" where unavailable.
func rssString(mb float64) string {
	if mb <= 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.0f", mb)
}

// unitDiskRadius returns the radius giving an expected average degree of
// avgDeg on n uniform points (E[deg] ≈ n·π·r², ignoring boundary effects).
func unitDiskRadius(n int, avgDeg float64) float64 {
	return math.Sqrt(avgDeg / (math.Pi * float64(n)))
}

// runE11 is the million-node scale experiment the word-parallel palette
// kernels unlock: sparse GNP and unit-disk workloads at n up to 10⁶, colored
// by the sequential greedy floor and the simulated (1+ε)Δ² relaxed
// algorithm, with throughput (nodes colored per wall second) and peak-RSS
// columns. Unlike E1–E10 the wall-clock and RSS columns are inherently
// machine- and scheduling-dependent — the experiment is registered Volatile
// and excluded from byte-identity comparisons; the n/m/Δ/palette/colors
// columns remain deterministic per seed.
//
// The workload points run strictly sequentially in ascending size (one
// single-point sweep each, Jobs forced to 1), so per-row wall clocks are
// unshared and the monotone VmHWM reading after each point reflects that
// point's footprint.
func runE11(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E11",
		Title: "Million-node scale: throughput and memory of the bitset palette kernels",
		Claim: "ROADMAP north star: the palette kernels keep sparse workloads at n = 10⁶ within commodity memory and color them at millions of nodes per second (greedy) / simulated CONGEST at scale (relaxed)",
		Columns: []string{"workload", "n", "m", "Δ", "algorithm", "engine", "palette", "colors used",
			"wall s", "colors/s", "peak RSS MiB"},
	}
	type scalePoint struct {
		name string
		n    int
		p    sweep.Point
	}
	mk := func(name string, n int, build func() (*graph.Graph, string, error)) scalePoint {
		return scalePoint{name: name, n: n, p: sweep.Point{Label: name, Build: build}}
	}
	gnp := func(n int) scalePoint {
		return mk(fmt.Sprintf("gnp(avg deg 8, n=%d)", n), n, func() (*graph.Graph, string, error) {
			return graph.GNPWithAverageDegree(n, 8, int64(cfg.Seed)+int64(n)), "", nil
		})
	}
	disk := func(n int) scalePoint {
		r := unitDiskRadius(n, 8)
		return mk(fmt.Sprintf("unitdisk(r=%.2g, n=%d)", r, n), n, func() (*graph.Graph, string, error) {
			return graph.UnitDisk(n, r, int64(cfg.Seed)+int64(n)+1), "", nil
		})
	}
	points := []scalePoint{gnp(100_000), disk(100_000), gnp(1_000_000), disk(1_000_000)}
	if cfg.Quick {
		// The short-mode smoke: the same pipeline at n = 50k, small enough
		// for CI to exercise the scale path on every push.
		points = []scalePoint{gnp(50_000), disk(50_000)}
	}

	// Two sub-sweeps per point: greedy is a zero-communication sequential
	// scan (no engine to vary), while the simulated relaxed algorithm runs on
	// the engine axis — the sequential reference and the pooled sharded
	// engine, the pair the ISSUE 6 multicore gate compares at this scale.
	// All engines are byte-deterministic, so the sharded row may only differ
	// in the wall-clock columns.
	batches := []struct {
		algs    []sweep.AlgAxis
		engines []sweep.EngineAxis
	}{
		{
			algs:    []sweep.AlgAxis{{Alg: alg.MustGet("greedy"), Reps: 1}},
			engines: []sweep.EngineAxis{{Name: "sequential"}},
		},
		{
			algs: []sweep.AlgAxis{{Alg: alg.MustGet("relaxed"), Reps: 1}},
			engines: []sweep.EngineAxis{
				{Name: "sequential"},
				{Name: "sharded", Engine: alg.Engine{Parallel: true}},
			},
		},
	}
	perPointRSS := true
	for _, sp := range points {
		perPointRSS = resetPeakRSS() && perPointRSS
		type rowCell struct {
			c      *sweep.Cell
			engine string
		}
		var cells []rowCell
		for _, batch := range batches {
			spec := sweep.Spec{
				Name:       "E11/" + sp.name,
				Points:     []sweep.Point{sp.p},
				Algorithms: batch.algs,
				Engines:    batch.engines,
				Seed:       cfg.Seed,
			}
			grid, err := sweep.Run(spec, sweep.Options{Jobs: 1})
			if err != nil {
				return nil, err
			}
			t.Elapsed += grid.Elapsed
			for ei := range batch.engines {
				cells = append(cells, rowCell{grid.Cell(0, 0, ei), batch.engines[ei].Name})
			}
		}
		rss := peakRSSMB()
		for _, rc := range cells {
			c, g := rc.c, rc.c.G
			secs := c.Mean(sweep.MeasureSeconds)
			throughput := 0.0
			if secs > 0 {
				throughput = float64(g.NumNodes()) / secs
			}
			t.AddRow(c.Label, itoa(g.NumNodes()), itoa(g.NumEdges()), itoa(g.MaxDegree()),
				c.Alg.Name(), rc.engine, itoa(c.Alg.PaletteBound(g)),
				itoa(int(c.Mean(sweep.MeasureColors))),
				fmt.Sprintf("%.2f", secs), fmt.Sprintf("%.0f", throughput), rssString(rss))
		}
	}
	if perPointRSS {
		t.AddNote("points run sequentially; the RSS high-water mark (VmHWM) is reset via /proc/self/clear_refs before each point, so every reading reflects that point alone")
	} else {
		t.AddNote("points run sequentially in ascending size; the platform does not allow resetting VmHWM, so each peak-RSS reading is the monotone process high-water mark up to that point")
	}
	t.AddNote("wall-clock and RSS columns are machine-dependent (the experiment is excluded from byte-identity checks); n, m, Δ, palette and colors are deterministic per seed")
	t.AddNote("relaxed simulates every CONGEST message of the (1+ε)Δ² trial algorithm; greedy is the zero-communication sequential floor")
	t.AddNote("engine axis (relaxed rows): sequential vs the pooled sharded engine at GOMAXPROCS workers; the engines are byte-identical, so only the wall-clock columns may differ")
	return t, nil
}
