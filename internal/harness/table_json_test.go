package harness

import (
	"bytes"
	"os"
	"strings"
	"testing"
	"time"
)

func sampleTable() *Table {
	t := &Table{
		ID:      "T1",
		Title:   "sample",
		Claim:   "a claim",
		Columns: []string{"n", "rounds"},
		Elapsed: 1500 * time.Millisecond,
	}
	t.AddRow("128", "12.00")
	t.AddRow("256", "14.00")
	t.AddNote("a note")
	return t
}

// TestWriteJSONGolden pins the JSON table shape.
func TestWriteJSONGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleTable().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile("testdata/table.json.golden")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("WriteJSON diverged from golden\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

func TestRenderReportsWallClock(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleTable().Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "note: wall-clock 1.5s") {
		t.Errorf("rendering should report the wall clock:\n%s", buf.String())
	}
	zero := sampleTable()
	zero.Elapsed = 0
	buf.Reset()
	if err := zero.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "wall-clock") {
		t.Errorf("zero elapsed should render no wall-clock note:\n%s", buf.String())
	}
}

func TestJSONLSink(t *testing.T) {
	var buf bytes.Buffer
	if err := (JSONLSink{W: &buf}).Emit(sampleTable()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	// 1 table + 2 rows + 1 note + 1 done.
	if len(lines) != 5 {
		t.Fatalf("expected 5 records, got %d:\n%s", len(lines), buf.String())
	}
	if !strings.Contains(lines[1], `"cells":{"n":"128","rounds":"12.00"}`) {
		t.Errorf("row record should key cells by column: %s", lines[1])
	}
	if !strings.Contains(lines[4], `"elapsedMs":1500`) {
		t.Errorf("done record should carry the wall clock: %s", lines[4])
	}
}

func TestRunRejectsUnknownIDs(t *testing.T) {
	err := Run(Config{Quick: true}, []string{"E42"}, TextSink{W: &bytes.Buffer{}})
	if err == nil || !strings.Contains(err.Error(), "E42") {
		t.Fatalf("unknown experiment IDs should error naming the ID, got %v", err)
	}
	for _, e := range All() {
		if !strings.Contains(err.Error(), e.ID) {
			t.Errorf("error should list valid ID %s: %v", e.ID, err)
		}
	}
}

func TestRunDeduplicatesIDs(t *testing.T) {
	var buf bytes.Buffer
	if err := Run(Config{Quick: true, Repetitions: 1, Seed: 1}, []string{"E3", "E3"}, TextSink{W: &buf}); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "E3 — "); got != 1 {
		t.Errorf("duplicate -only IDs should run once, table rendered %d times", got)
	}
}
