package harness

import (
	"strconv"
	"testing"
)

// TestE12Smoke runs the churn experiment's quick pipeline (n = 2000, both
// families × all three fault mixes at one rate) twice and checks the
// deterministic columns: row shape, positive workloads, locality in (0, 1],
// and byte-identity of everything except the wall-clock-derived columns.
func TestE12Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("churn sweeps skipped in -short mode (CI runs this via its own step)")
	}
	table, err := runE12(Config{Quick: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 6 {
		t.Fatalf("quick E12 should have 2 families × 3 mixes × 1 rate = 6 rows, got %d", len(table.Rows))
	}
	col := func(name string) int {
		for i, c := range table.Columns {
			if c == name {
				return i
			}
		}
		t.Fatalf("missing column %q", name)
		return -1
	}
	dirtyCol, ballCol, recoloredCol, localityCol := col("dirty/ep"), col("ball/ep"), col("recolored/ep"), col("locality")
	for _, row := range table.Rows {
		dirty, err := strconv.ParseFloat(row[dirtyCol], 64)
		if err != nil || dirty <= 0 {
			t.Errorf("row %v: dirty/ep = %q, want > 0", row, row[dirtyCol])
		}
		ball, err := strconv.ParseFloat(row[ballCol], 64)
		if err != nil || ball < dirty {
			t.Errorf("row %v: ball/ep %q smaller than dirty/ep %q", row, row[ballCol], row[dirtyCol])
		}
		recolored, err := strconv.ParseFloat(row[recoloredCol], 64)
		if err != nil || recolored <= 0 || recolored > dirty {
			t.Errorf("row %v: recolored/ep = %q, want in (0, dirty/ep]", row, row[recoloredCol])
		}
		locality, err := strconv.ParseFloat(row[localityCol], 64)
		if err != nil || locality <= 0 || locality > 1 {
			t.Errorf("row %v: locality = %q, want in (0, 1]", row, row[localityCol])
		}
	}
	// Regenerate and compare every column that is not wall-clock-derived:
	// the injector scripts and the repair kernel must be byte-deterministic.
	again, err := runE12(Config{Quick: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	volatile := map[int]bool{
		col("repair ms/ep"): true, col("rerun ms/ep"): true,
		col("speedup"): true, col("recolored/s"): true,
	}
	for ri := range table.Rows {
		for ci := range table.Columns {
			if volatile[ci] {
				continue
			}
			if table.Rows[ri][ci] != again.Rows[ri][ci] {
				t.Errorf("row %d column %q diverged between runs: %q vs %q",
					ri, table.Columns[ci], table.Rows[ri][ci], again.Rows[ri][ci])
			}
		}
	}
}
