package harness

import (
	"d2color/internal/alg"
	"d2color/internal/coloring"
	"d2color/internal/congest"
	"d2color/internal/detd2"
	"d2color/internal/graph"
	"d2color/internal/polylogd2"
	"d2color/internal/splitting"
	"d2color/internal/sweep"
)

// regularPoint is a pairing-model random-regular workload point; the label is
// the post-clamping effective degree parameter, which E3/E6 print as their
// own "d" column.
func regularPoint(n, d int, seed int64) sweep.Point {
	return sweep.Point{Build: func() (*graph.Graph, string, error) {
		g, effD := graph.RandomRegularEffective(n, d, seed)
		return g, itoa(effD), nil
	}}
}

// runE3 measures Theorem 1.2: rounds of the deterministic algorithm as Δ
// grows at fixed n.
func runE3(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E3",
		Title: "Deterministic d2-coloring (Linial → locally-iterative → reduction)",
		Claim: "Theorem 1.2: Δ²+1 colors in O(Δ² + log* n) rounds",
		Columns: []string{"n", "d", "Δ", "palette", "colors used", "rounds",
			"rounds / Δ²", "linial", "iterative", "reduction"},
	}
	n := 600
	ds := []int{4, 8, 16, 24, 32}
	if cfg.Quick {
		n = 200
		ds = []int{4, 8}
	}
	var points []sweep.Point
	for _, d := range ds {
		points = append(points, regularPoint(n, d, int64(cfg.Seed)+int64(d)))
	}
	spec := sweep.Spec{
		Name:       "E3",
		Points:     points,
		Algorithms: []sweep.AlgAxis{{Alg: alg.MustGet("deterministic")}},
		Engines:    cfg.engineAxis(),
		Seed:       cfg.Seed,
	}
	return runGrid(cfg, spec, t, func(grid *sweep.Grid) {
		for pi := range points {
			c := grid.Cell(pi, 0, 0)
			res := c.Sample.Details.(*detd2.Result)
			delta := c.G.MaxDegree()
			rounds := c.Mean(sweep.MeasureRounds)
			t.AddRow(itoa(n), c.Label, itoa(delta), itoa(res.PaletteSize), itoa(res.Coloring.NumColorsUsed()),
				ftoa(rounds), ftoa(rounds/float64(delta*delta)),
				itoa(res.Stages.LinialRounds), itoa(res.Stages.IterativeRounds), itoa(res.Stages.ReductionRounds))
		}
		t.AddNote("the d column is the post-clamping effective pairing-model degree, so rows are self-describing")
		t.AddNote("expected shape: rounds grow with Δ and rounds/Δ² never exceeds a small constant (the theorem is an upper bound; random regular inputs finish the locally-iterative phases early, so growth is sub-quadratic in practice)")
	})
}

// runE4 measures Theorem 1.3: the (1+ε)Δ² deterministic coloring.
func runE4(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E4",
		Title: "Deterministic (1+ε)Δ² coloring of G² (recursive splitting + parallel parts)",
		Claim: "Theorem 1.3: (1+ε)Δ² colors in polylog n rounds",
		Columns: []string{"n", "Δ", "ε", "budget (1+ε)Δ²", "colors used", "parts", "levels",
			"rounds", "rounds / log³ n", "direct fallback"},
	}
	ns := []int{128, 256, 512}
	epss := []float64{0.5, 1, 2}
	if cfg.Quick {
		ns = []int{96, 160}
		epss = []float64{1}
	}
	var points []sweep.Point
	for _, n := range ns {
		points = append(points, gnpAvgPoint(n, 8, int64(cfg.Seed)+int64(n),
			func(float64) string { return "" }))
	}
	// The ε grid is the algorithm axis: one parameterized polylog instance
	// per ε value.
	var algs []sweep.AlgAxis
	for _, eps := range epss {
		algs = append(algs, sweep.AlgAxis{Alg: polylogd2.Algorithm(polylogd2.Options{
			Epsilon:         eps,
			DegreeThreshold: 6,
			ThresholdCoeff:  1,
		})})
	}
	spec := sweep.Spec{
		Name:       "E4",
		Points:     points,
		Algorithms: algs,
		Engines:    cfg.engineAxis(),
		Seed:       cfg.Seed,
	}
	return runGrid(cfg, spec, t, func(grid *sweep.Grid) {
		for pi := range points {
			for ei := range epss {
				c := grid.Cell(pi, ei, 0)
				res := c.Sample.Details.(*polylogd2.Result)
				n := c.G.NumNodes()
				logN := log2f(n)
				rounds := c.Mean(sweep.MeasureRounds)
				t.AddRow(itoa(n), itoa(c.G.MaxDegree()), ftoa(epss[ei]), itoa(res.PaletteBound), itoa(res.ColorsUsed),
					itoa(res.NumParts), itoa(res.Levels), ftoa(rounds), ftoa(rounds/(logN*logN*logN)),
					btoa(res.UsedDirectFallback))
			}
		}
		t.AddNote("the splitting stop threshold is set to 6 so the recursion is exercised at simulation scale (the paper's threshold Θ(ε⁻²·log³ n) exceeds every reachable degree, see DESIGN.md §2)")
		t.AddNote("expected shape: colors stay within the (1+ε)Δ² budget and the normalized round column does not blow up with n")
	})
}

// splitMethod names one local-refinement splitting implementation.
type splitMethod struct {
	name  string
	class alg.Determinism
	run   func(g *graph.Graph, parts []int, opts splitting.Options) (splitting.Result, error)
}

var splitMethods = []splitMethod{
	{"randomized", alg.Randomized, splitting.RandomizedSplit},
	{"k-wise", alg.Randomized, splitting.LimitedIndependenceSplit},
	{"deterministic", alg.Deterministic, splitting.DeterministicSplit},
}

// splitAlgorithm wraps one splitting method at one λ as an inline algorithm
// instance: the red/blue split is its 2-coloring and the splitting.Result
// rides along as Details.
func splitAlgorithm(m splitMethod, lambda float64) alg.Algorithm {
	return alg.Func{
		AlgName: "split-" + m.name,
		Class:   m.class,
		NotD2:   true, // a red/blue split, not a distance-2 coloring
		Palette: func(*graph.Graph) int { return 2 },
		RunFunc: func(g *graph.Graph, _ alg.Engine, seed uint64) (alg.Result, error) {
			parts := splitting.UniformPartition(g.NumNodes())
			res, err := m.run(g, parts, splitting.Options{Lambda: lambda, ThresholdCoeff: 1, Seed: seed})
			if err != nil {
				return alg.Result{}, err
			}
			c := coloring.New(g.NumNodes())
			for v, red := range res.Red {
				if red {
					c[v] = 1
				} else {
					c[v] = 0
				}
			}
			return alg.Result{Coloring: c, PaletteSize: 2,
				Metrics: congest.Metrics{ChargedRounds: res.Rounds}, Details: &res}, nil
		},
	}
}

// runE5 measures the local refinement splitting (Definition 3.1) quality for
// all three implementations.
func runE5(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E5",
		Title:   "Local refinement splitting: randomized vs limited-independence vs deterministic",
		Claim:   "Theorem 3.2 / Lemma A.5: all constrained vertices keep ≤ (1+λ)·deg/2 neighbours of each color",
		Columns: []string{"workload", "λ", "method", "constrained", "violations", "max imbalance", "rounds"},
	}
	points := []sweep.Point{
		{Label: "K(150,150)", Build: func() (*graph.Graph, string, error) { return graph.CompleteBipartite(150, 150), "", nil }},
		{Label: "K200", Build: func() (*graph.Graph, string, error) { return graph.Complete(200), "", nil }},
		{Label: "gnp dense", Build: func() (*graph.Graph, string, error) { return graph.GNP(250, 0.4, int64(cfg.Seed)), "", nil }},
	}
	lambdas := []float64{0.3, 0.5, 1.0}
	if cfg.Quick {
		points = points[:1]
		lambdas = []float64{0.5}
	}
	// The λ × method grid is the algorithm axis, λ-major so the generated
	// rows keep the historical order.
	var algs []sweep.AlgAxis
	for _, lambda := range lambdas {
		for _, m := range splitMethods {
			algs = append(algs, sweep.AlgAxis{Alg: splitAlgorithm(m, lambda), Reps: 1})
		}
	}
	spec := sweep.Spec{
		Name:       "E5",
		Points:     points,
		Algorithms: algs,
		Engines:    cfg.engineAxis(),
		Seed:       cfg.Seed,
	}
	return runGrid(cfg, spec, t, func(grid *sweep.Grid) {
		for pi := range points {
			for li, lambda := range lambdas {
				for mi, m := range splitMethods {
					c := grid.Cell(pi, li*len(splitMethods)+mi, 0)
					res := c.Sample.Details.(*splitting.Result)
					t.AddRow(c.Label, ftoa(lambda), m.name, itoa(res.Constrained), itoa(res.Violations),
						ftoa(res.MaxImbalance), itoa(res.Rounds))
				}
			}
		}
		t.AddNote("expected shape: zero violations for the deterministic method on every row; the randomized methods can occasionally violate because the degree threshold is scaled far below the paper's 12·log n/λ² (that scaled threshold is exactly why the paper needs the larger constant)")
		t.AddNote("the deterministic rounds include the network-decomposition substitute's charge (DESIGN.md §2)")
	})
}

// runE6 measures the Linial stage of Theorem B.1 in isolation.
func runE6(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E6",
		Title: "Linial stage on G²",
		Claim: "Theorem B.1: O(Δ⁴) colors in O(Δ + log* n) rounds",
		Columns: []string{"n", "d", "Δ", "Δ⁴", "Linial colors", "colors / Δ⁴",
			"Linial rounds", "rounds − 2Δ (log* part)"},
	}
	n := 400
	ds := []int{4, 8, 16, 24}
	if cfg.Quick {
		n = 150
		ds = []int{4, 8}
	}
	var points []sweep.Point
	for _, d := range ds {
		points = append(points, regularPoint(n, d, int64(cfg.Seed)+int64(d)))
	}
	spec := sweep.Spec{
		Name:       "E6",
		Points:     points,
		Algorithms: []sweep.AlgAxis{{Alg: alg.MustGet("deterministic")}},
		Engines:    cfg.engineAxis(),
		Seed:       cfg.Seed,
	}
	return runGrid(cfg, spec, t, func(grid *sweep.Grid) {
		for pi := range points {
			c := grid.Cell(pi, 0, 0)
			res := c.Sample.Details.(*detd2.Result)
			delta := c.G.MaxDegree()
			d4 := delta * delta * delta * delta
			t.AddRow(itoa(n), c.Label, itoa(delta), itoa(d4), itoa(res.Stages.LinialColors),
				ftoa(float64(res.Stages.LinialColors)/float64(maxI(d4, 1))),
				itoa(res.Stages.LinialRounds), itoa(res.Stages.LinialRounds-2*delta))
		}
		t.AddNote("expected shape: Linial colors stay within a constant multiple of Δ⁴ and the log* remainder stays tiny (n = %d)", n)
	})
}
