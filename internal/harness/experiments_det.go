package harness

import (
	"d2color/internal/detd2"
	"d2color/internal/graph"
	"d2color/internal/polylogd2"
	"d2color/internal/splitting"
)

// runE3 measures Theorem 1.2: rounds of the deterministic algorithm as Δ
// grows at fixed n.
func runE3(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E3",
		Title: "Deterministic d2-coloring (Linial → locally-iterative → reduction)",
		Claim: "Theorem 1.2: Δ²+1 colors in O(Δ² + log* n) rounds",
		Columns: []string{"n", "d", "Δ", "palette", "colors used", "rounds",
			"rounds / Δ²", "linial", "iterative", "reduction"},
	}
	n := 600
	ds := []int{4, 8, 16, 24, 32}
	if cfg.Quick {
		n = 200
		ds = []int{4, 8}
	}
	for _, d := range ds {
		g, effD := graph.RandomRegularEffective(n, d, int64(cfg.Seed)+int64(d))
		delta := g.MaxDegree()
		res, err := detd2.Run(g, detd2.Options{Seed: cfg.Seed, Parallel: cfg.Parallel})
		if err != nil {
			return nil, err
		}
		rounds := float64(res.Metrics.TotalRounds())
		t.AddRow(itoa(n), itoa(effD), itoa(delta), itoa(res.PaletteSize), itoa(res.Coloring.NumColorsUsed()),
			ftoa(rounds), ftoa(rounds/float64(delta*delta)),
			itoa(res.Stages.LinialRounds), itoa(res.Stages.IterativeRounds), itoa(res.Stages.ReductionRounds))
	}
	t.AddNote("the d column is the post-clamping effective pairing-model degree, so rows are self-describing")
	t.AddNote("expected shape: rounds grow with Δ and rounds/Δ² never exceeds a small constant (the theorem is an upper bound; random regular inputs finish the locally-iterative phases early, so growth is sub-quadratic in practice)")
	return t, nil
}

// runE4 measures Theorem 1.3: the (1+ε)Δ² deterministic coloring.
func runE4(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E4",
		Title: "Deterministic (1+ε)Δ² coloring of G² (recursive splitting + parallel parts)",
		Claim: "Theorem 1.3: (1+ε)Δ² colors in polylog n rounds",
		Columns: []string{"n", "Δ", "ε", "budget (1+ε)Δ²", "colors used", "parts", "levels",
			"rounds", "rounds / log³ n", "direct fallback"},
	}
	ns := []int{128, 256, 512}
	epss := []float64{0.5, 1, 2}
	if cfg.Quick {
		ns = []int{96, 160}
		epss = []float64{1}
	}
	for _, n := range ns {
		for _, eps := range epss {
			g := graph.GNPWithAverageDegree(n, 8, int64(cfg.Seed)+int64(n))
			delta := g.MaxDegree()
			res, err := polylogd2.ColorG2(g, polylogd2.Options{
				Epsilon:         eps,
				DegreeThreshold: 6,
				ThresholdCoeff:  1,
				Seed:            cfg.Seed,
			})
			if err != nil {
				return nil, err
			}
			logN := log2f(n)
			rounds := float64(res.Metrics.TotalRounds())
			t.AddRow(itoa(n), itoa(delta), ftoa(eps), itoa(res.PaletteBound), itoa(res.ColorsUsed),
				itoa(res.NumParts), itoa(res.Levels), ftoa(rounds), ftoa(rounds/(logN*logN*logN)),
				btoa(res.UsedDirectFallback))
		}
	}
	t.AddNote("the splitting stop threshold is set to 6 so the recursion is exercised at simulation scale (the paper's threshold Θ(ε⁻²·log³ n) exceeds every reachable degree, see DESIGN.md §2)")
	t.AddNote("expected shape: colors stay within the (1+ε)Δ² budget and the normalized round column does not blow up with n")
	return t, nil
}

// runE5 measures the local refinement splitting (Definition 3.1) quality for
// all three implementations.
func runE5(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E5",
		Title:   "Local refinement splitting: randomized vs limited-independence vs deterministic",
		Claim:   "Theorem 3.2 / Lemma A.5: all constrained vertices keep ≤ (1+λ)·deg/2 neighbours of each color",
		Columns: []string{"workload", "λ", "method", "constrained", "violations", "max imbalance", "rounds"},
	}
	workloads := []struct {
		name string
		g    *graph.Graph
	}{
		{"K(150,150)", graph.CompleteBipartite(150, 150)},
		{"K200", graph.Complete(200)},
		{"gnp dense", graph.GNP(250, 0.4, int64(cfg.Seed))},
	}
	lambdas := []float64{0.3, 0.5, 1.0}
	if cfg.Quick {
		workloads = workloads[:1]
		lambdas = []float64{0.5}
	}
	for _, w := range workloads {
		parts := splitting.UniformPartition(w.g.NumNodes())
		for _, lambda := range lambdas {
			opts := splitting.Options{Lambda: lambda, ThresholdCoeff: 1, Seed: cfg.Seed}
			type method struct {
				name string
				run  func() (splitting.Result, error)
			}
			methods := []method{
				{"randomized", func() (splitting.Result, error) { return splitting.RandomizedSplit(w.g, parts, opts) }},
				{"k-wise", func() (splitting.Result, error) { return splitting.LimitedIndependenceSplit(w.g, parts, opts) }},
				{"deterministic", func() (splitting.Result, error) { return splitting.DeterministicSplit(w.g, parts, opts) }},
			}
			for _, m := range methods {
				res, err := m.run()
				if err != nil {
					return nil, err
				}
				t.AddRow(w.name, ftoa(lambda), m.name, itoa(res.Constrained), itoa(res.Violations),
					ftoa(res.MaxImbalance), itoa(res.Rounds))
			}
		}
	}
	t.AddNote("expected shape: zero violations for the deterministic method on every row; the randomized methods can occasionally violate because the degree threshold is scaled far below the paper's 12·log n/λ² (that scaled threshold is exactly why the paper needs the larger constant)")
	t.AddNote("the deterministic rounds include the network-decomposition substitute's charge (DESIGN.md §2)")
	return t, nil
}

// runE6 measures the Linial stage of Theorem B.1 in isolation.
func runE6(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E6",
		Title: "Linial stage on G²",
		Claim: "Theorem B.1: O(Δ⁴) colors in O(Δ + log* n) rounds",
		Columns: []string{"n", "d", "Δ", "Δ⁴", "Linial colors", "colors / Δ⁴",
			"Linial rounds", "rounds − 2Δ (log* part)"},
	}
	n := 400
	ds := []int{4, 8, 16, 24}
	if cfg.Quick {
		n = 150
		ds = []int{4, 8}
	}
	for _, d := range ds {
		g, effD := graph.RandomRegularEffective(n, d, int64(cfg.Seed)+int64(d))
		delta := g.MaxDegree()
		res, err := detd2.Run(g, detd2.Options{Seed: cfg.Seed, Parallel: cfg.Parallel})
		if err != nil {
			return nil, err
		}
		d4 := delta * delta * delta * delta
		t.AddRow(itoa(n), itoa(effD), itoa(delta), itoa(d4), itoa(res.Stages.LinialColors),
			ftoa(float64(res.Stages.LinialColors)/float64(maxI(d4, 1))),
			itoa(res.Stages.LinialRounds), itoa(res.Stages.LinialRounds-2*delta))
	}
	t.AddNote("expected shape: Linial colors stay within a constant multiple of Δ⁴ and the log* remainder stays tiny (n = %d)", n)
	return t, nil
}
