package harness

import (
	"strconv"
	"testing"
)

// TestE14Smoke runs the chaos experiment's quick pipeline twice with the same
// seed and pins its deterministic columns byte-identically across the runs:
// scenario names, session counts, offered request counts, and the invariant
// verdicts (which fold in the structural claims — sheds happen at 2x
// capacity, retries fire, cancels land, panic streaks quarantine without
// leaking, the drain completes). The count and latency columns depend on
// runtime interleaving and are volatile, checked only for shape.
func TestE14Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos scenarios skipped in -short mode (CI runs this via its own step)")
	}
	run := func() *Table {
		t.Helper()
		table, err := runE14(Config{Quick: true, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		return table
	}
	table := run()

	wantScenarios := []string{"baseline/1x", "overload/2x", "overload/retry",
		"deadline-storm", "panic-storm", "drain-under-load"}
	if len(table.Rows) != len(wantScenarios) {
		t.Fatalf("E14 should have %d scenario rows, got %d", len(wantScenarios), len(table.Rows))
	}
	col := func(name string) int {
		for i, c := range table.Columns {
			if c == name {
				return i
			}
		}
		t.Fatalf("missing column %q", name)
		return -1
	}
	scenCol, invCol := col("scenario"), col("invariant")
	sessCol, offCol := col("sessions"), col("offered")
	shedCol, retryCol, cancelCol := col("shed"), col("retried"), col("canceled")
	panicsCol, quarCol := col("panics"), col("quar")

	rows := map[string][]string{}
	for i, row := range table.Rows {
		if row[scenCol] != wantScenarios[i] {
			t.Errorf("row %d: scenario %q, want %q", i, row[scenCol], wantScenarios[i])
		}
		rows[row[scenCol]] = row
		// The invariant column folds every structural claim; anything but
		// "ok" is a hardening regression.
		if row[invCol] != "ok" {
			t.Errorf("scenario %s: invariant = %q", row[scenCol], row[invCol])
		}
	}

	atoi := func(s string) int {
		v, err := strconv.Atoi(s)
		if err != nil {
			t.Fatalf("non-integer count %q", s)
		}
		return v
	}
	// Structural outcomes beyond the invariant verdicts: the overload rows
	// must show real shedding and retrying, the storm must cancel, and the
	// panic storm must both panic and quarantine.
	if atoi(rows["overload/2x"][shedCol]) == 0 {
		t.Error("overload/2x: no requests shed at 2x capacity")
	}
	if atoi(rows["overload/retry"][retryCol]) == 0 {
		t.Error("overload/retry: clients never retried")
	}
	if atoi(rows["deadline-storm"][cancelCol])+atoi(rows["deadline-storm"][retryCol]) == 0 {
		t.Error("deadline-storm: no cancels or retries")
	}
	if atoi(rows["panic-storm"][panicsCol]) == 0 || atoi(rows["panic-storm"][quarCol]) == 0 {
		t.Error("panic-storm: no panics recovered or no quarantines")
	}
	if atoi(rows["baseline/1x"][shedCol]) != 0 {
		t.Error("baseline/1x: shed requests without overload")
	}

	// Rerun-and-compare: the deterministic columns must be byte-identical.
	again := run()
	if len(again.Rows) != len(table.Rows) {
		t.Fatalf("rerun produced %d rows, want %d", len(again.Rows), len(table.Rows))
	}
	for i := range table.Rows {
		for _, c := range []int{scenCol, sessCol, offCol, invCol} {
			if table.Rows[i][c] != again.Rows[i][c] {
				t.Errorf("row %d column %q differs across identical runs: %q vs %q",
					i, table.Columns[c], table.Rows[i][c], again.Rows[i][c])
			}
		}
	}
}
