package harness

import (
	"bytes"
	"strings"
	"testing"
)

func TestAllExperimentsDefined(t *testing.T) {
	exps := All()
	if len(exps) != 14 {
		t.Fatalf("expected 14 experiments, got %d", len(exps))
	}
	seen := make(map[string]bool)
	for _, e := range exps {
		if e.ID == "" || e.Title == "" || e.Claim == "" || e.Run == nil {
			t.Errorf("experiment %+v incomplete", e.ID)
		}
		if seen[e.ID] {
			t.Errorf("duplicate experiment ID %s", e.ID)
		}
		seen[e.ID] = true
	}
	if _, ok := ByID("E1"); !ok {
		t.Error("ByID(E1) should exist")
	}
	if _, ok := ByID("E99"); ok {
		t.Error("ByID(E99) should not exist")
	}
}

func TestEveryExperimentRunsInQuickMode(t *testing.T) {
	if testing.Short() {
		t.Skip("quick experiment sweep still takes a few seconds")
	}
	cfg := Config{Quick: true, Seed: 1, Repetitions: 1}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			table, err := e.Run(cfg)
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(table.Rows) == 0 {
				t.Fatalf("%s: empty table", e.ID)
			}
			for _, row := range table.Rows {
				if len(row) != len(table.Columns) {
					t.Errorf("%s: row width %d != %d columns", e.ID, len(row), len(table.Columns))
				}
			}
			var buf bytes.Buffer
			if err := table.Render(&buf); err != nil {
				t.Fatalf("%s: render: %v", e.ID, err)
			}
			if !strings.Contains(buf.String(), e.ID) {
				t.Errorf("%s: rendering does not mention the experiment ID", e.ID)
			}
			var csvBuf bytes.Buffer
			if err := table.WriteCSV(&csvBuf); err != nil {
				t.Fatalf("%s: csv: %v", e.ID, err)
			}
		})
	}
}

func TestTableHelpers(t *testing.T) {
	table := &Table{ID: "T", Title: "test", Columns: []string{"a", "b"}}
	table.AddRow("1")           // short row padded
	table.AddRow("1", "2", "3") // long row truncated
	table.AddNote("hello %d", 42)
	if len(table.Rows) != 2 {
		t.Fatalf("rows = %d", len(table.Rows))
	}
	if table.Rows[0][1] != "" || table.Rows[1][1] != "2" {
		t.Errorf("row padding/truncation wrong: %v", table.Rows)
	}
	if len(table.Notes) != 1 || !strings.Contains(table.Notes[0], "42") {
		t.Errorf("notes wrong: %v", table.Notes)
	}
	var buf bytes.Buffer
	if err := table.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "hello 42") || !strings.Contains(out, "test") {
		t.Errorf("rendering missing content:\n%s", out)
	}
}

func TestFormatHelpers(t *testing.T) {
	if itoa(5) != "5" || ftoa(1.5) != "1.50" || btoa(true) != "yes" || btoa(false) != "no" {
		t.Error("format helpers wrong")
	}
	if log2f(1) != 1 || log2f(8) != 3 {
		t.Error("log2f wrong")
	}
	if maxI(2, 3) != 3 || maxI(4, 1) != 4 {
		t.Error("maxI wrong")
	}
}

func TestConfigReps(t *testing.T) {
	if (Config{}).reps() != 3 {
		t.Error("default reps should be 3")
	}
	if (Config{Quick: true}).reps() != 1 {
		t.Error("quick reps should be 1")
	}
	if (Config{Repetitions: 7}).reps() != 7 {
		t.Error("explicit reps should win")
	}
}
