package harness

import (
	"fmt"
	"slices"
	"time"

	"d2color/internal/baseline"
	"d2color/internal/coloring"
	"d2color/internal/fault"
	"d2color/internal/graph"
	"d2color/internal/repair"
)

// runE12 is the robustness-plane experiment: a valid coloring is subjected
// to epochs of deterministic seeded faults — color corruption, edge and node
// churn, or a mix — at a sweep of per-node event rates, and the incremental
// repair kernel heals it. Each row aggregates one (workload, mix, rate)
// cell's epochs and compares the repair wall clock against rerunning the
// full (1+ε)Δ² baseline on the same post-churn topology.
//
// The measurement columns (dirty, ball, recolored, locality, phases,
// rounds) are byte-deterministic per seed: the injector scripts its faults
// from one SplitMix64 stream and the repair kernel is deterministic, warm or
// fresh. The wall-clock-derived columns (repair/rerun ms, speedup,
// recolored/s) are machine-dependent, so the experiment is registered
// Volatile and excluded from byte-identity comparisons, like E11.
func runE12(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E12",
		Title: "Churn tolerance: incremental repair vs full rerun under fault epochs",
		Claim: "ROADMAP robustness item: repair confined to the dirty distance-2 ball heals corruption and churn at a small fraction of a full rerun's work, with repair locality ≪ 1",
		Columns: []string{"workload", "n", "mix", "rate", "epochs",
			"dirty/ep", "ball/ep", "recolored/ep", "locality",
			"phases/ep", "rounds/ep", "repair ms/ep", "rerun ms/ep", "speedup", "recolored/s"},
	}
	start := time.Now()

	n, epochs := 20_000, 4
	rates := []float64{0.001, 0.01, 0.05}
	if cfg.Quick {
		n, epochs = 2_000, 2
		rates = []float64{0.01}
	}
	mixes := []string{"corrupt", "churn", "mixed"}
	parallel := cfg.Parallel && cfg.jobs() == 1

	type family struct {
		name  string
		build func() *graph.Graph
	}
	families := []family{
		{fmt.Sprintf("gnp(avg deg 6, n=%d)", n), func() *graph.Graph {
			return graph.GNPWithAverageDegree(n, 6, int64(cfg.Seed)+int64(n))
		}},
		{fmt.Sprintf("unitdisk(avg deg 6, n=%d)", n), func() *graph.Graph {
			return graph.UnitDisk(n, unitDiskRadius(n, 6), int64(cfg.Seed)+int64(n)+1)
		}},
	}

	for fi, fam := range families {
		g0 := fam.build()
		// One clean starting coloring per family, shared by every cell: the
		// same baseline whose full rerun each epoch is timed against.
		rel, err := baseline.RelaxedD2(g0, baseline.Options{Epsilon: 1, Seed: cfg.Seed + uint64(fi)})
		if err != nil {
			return nil, fmt.Errorf("E12 %s: initial coloring: %w", fam.name, err)
		}
		for mi, mix := range mixes {
			for ri, rate := range rates {
				cell := uint64(fi*100 + mi*10 + ri)
				inj := fault.NewInjector(cfg.Seed ^ (0xE12<<16 + cell))
				cur := g0
				// The baseline palette covers every color the working
				// coloring can hold and keeps ample slack for the mild
				// degree drift edge churn causes.
				ses := repair.NewSession(cur, rel.Coloring, repair.Options{
					Palette:  rel.PaletteSize,
					Mode:     repair.ModeLocal,
					Parallel: parallel,
				})
				var totDirty, totBall, totRecolored, totPhases, totRounds int
				var repairWall, rerunWall time.Duration
				for e := 0; e < epochs; e++ {
					seed := cfg.Seed + cell*1000 + uint64(e)
					events := max(1, int(rate*float64(cur.NumNodes())))
					var dirty []graph.NodeID
					if mix != "corrupt" {
						// Edge + node churn: fold the overlay deltas into a
						// fresh CSR (IDs are stable; removed nodes become
						// isolated), carry the coloring over, and rebind.
						churn := events
						if mix == "mixed" {
							churn = (events + 1) / 2
						}
						o := graph.NewOverlay(cur)
						inj.InsertRandomEdges(o, (churn+1)/2)
						inj.DeleteRandomEdges(o, (churn+1)/2)
						inj.AddWiredNode(o, 3)
						rm, _, rmOK := inj.RemoveRandomNode(o)
						cur = o.Compact()
						cols := slices.Clone(ses.Colors())
						for len(cols) < cur.NumNodes() {
							cols = append(cols, coloring.Uncolored)
						}
						if rmOK {
							cols[rm] = coloring.Uncolored
						}
						ses.Rebind(cur, cols)
					}
					if mix != "churn" {
						corrupt := events
						if mix == "mixed" {
							corrupt = (events + 1) / 2
						}
						dirty = inj.CorruptColors(cur, ses.Colors(), corrupt, fault.TargetUniform, ses.Palette())
					}

					repairStart := time.Now()
					var reports []repair.Report
					if mix == "corrupt" {
						// The corrupted set is known exactly — repair it
						// directly, the detection-free fast path.
						rep, err := ses.Repair(dirty, seed)
						if err != nil {
							return nil, fmt.Errorf("E12 %s/%s/%g epoch %d: %w", fam.name, mix, rate, e, err)
						}
						reports = []repair.Report{rep}
					} else if reports, err = ses.Stabilize(seed, 16); err != nil {
						return nil, fmt.Errorf("E12 %s/%s/%g epoch %d: %w", fam.name, mix, rate, e, err)
					}
					repairWall += time.Since(repairStart)
					if c := ses.Conflicts(); len(c) != 0 {
						return nil, fmt.Errorf("E12 %s/%s/%g epoch %d: %d conflicts survived a fault-free repair", fam.name, mix, rate, e, len(c))
					}
					for _, rep := range reports {
						totDirty += rep.Dirty
						totBall += rep.Ball
						totRecolored += len(rep.Recolored)
						totPhases += rep.Phases
						totRounds += rep.Rounds
					}

					// The comparison point: recolor the post-churn topology
					// from scratch with the same baseline family.
					rerunStart := time.Now()
					if _, err := baseline.RelaxedD2(cur, baseline.Options{Epsilon: 1, Seed: seed, Parallel: parallel}); err != nil {
						return nil, fmt.Errorf("E12 %s/%s/%g epoch %d rerun: %w", fam.name, mix, rate, e, err)
					}
					rerunWall += time.Since(rerunStart)
				}
				ses.Close()

				perEp := func(total int) string { return fmt.Sprintf("%.1f", float64(total)/float64(epochs)) }
				locality := 0.0
				if totBall > 0 {
					locality = float64(totRecolored) / float64(totBall)
				}
				repairMS := float64(repairWall.Microseconds()) / 1000 / float64(epochs)
				rerunMS := float64(rerunWall.Microseconds()) / 1000 / float64(epochs)
				speedup, throughput := "n/a", "n/a"
				if repairWall > 0 {
					speedup = fmt.Sprintf("%.1f", float64(rerunWall)/float64(repairWall))
					throughput = fmt.Sprintf("%.0f", float64(totRecolored)/repairWall.Seconds())
				}
				t.AddRow(fam.name, itoa(n), mix, fmt.Sprintf("%g", rate), itoa(epochs),
					perEp(totDirty), perEp(totBall), perEp(totRecolored),
					fmt.Sprintf("%.4f", locality), perEp(totPhases), perEp(totRounds),
					fmt.Sprintf("%.2f", repairMS), fmt.Sprintf("%.2f", rerunMS),
					speedup, throughput)
			}
		}
	}
	t.Elapsed = time.Since(start)
	t.AddNote("rate is fault events per node per epoch; corrupt epochs flip that many colors to a conflicting value, churn epochs split the budget between edge inserts and deletes and add/remove one wired node, mixed epochs split it between the two")
	t.AddNote("corrupt epochs repair the known victim set directly; churn and mixed epochs run the self-stabilization loop (detect conflicts + uncolored nodes, repair, repeat) — fault-free it converges in one iteration")
	t.AddNote("locality = recolored / |N²[dirty]| summed over the cell's repairs: the fraction of the affected ball the repair actually rewrote")
	t.AddNote("rerun ms times the full (1+ε)Δ² baseline on the same post-churn topology; speedup = rerun/repair wall, recolored/s = repair throughput under churn")
	t.AddNote("dirty/ball/recolored/locality/phases/rounds are byte-deterministic per seed; the wall-clock columns are machine-dependent (the experiment is excluded from byte-identity checks)")
	return t, nil
}
