package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// Sink consumes finished experiment tables. All sinks are fed from the same
// aggregated records (the Table), so every output format reports identical
// numbers.
type Sink interface {
	Emit(t *Table) error
}

// TextSink renders aligned plain-text tables to W.
type TextSink struct{ W io.Writer }

// Emit implements Sink.
func (s TextSink) Emit(t *Table) error { return t.Render(s.W) }

// CSVDirSink writes one <ID>.csv file per table into Dir (created on first
// use).
type CSVDirSink struct{ Dir string }

// Emit implements Sink.
func (s CSVDirSink) Emit(t *Table) error {
	if err := os.MkdirAll(s.Dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(s.Dir, t.ID+".csv"))
	if err != nil {
		return err
	}
	if err := t.WriteCSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// JSONLSink streams tables as JSON lines: one "table" record carrying the
// metadata, one "row" record per table row (cells keyed by column name), one
// "note" record per note, and a closing "done" record with the wall clock.
// The format is append-friendly, so long sweeps can be tailed and
// post-processed with standard line-oriented tooling.
type JSONLSink struct{ W io.Writer }

type jsonlRecord struct {
	Type       string            `json:"type"`
	Experiment string            `json:"experiment"`
	Title      string            `json:"title,omitempty"`
	Claim      string            `json:"claim,omitempty"`
	Columns    []string          `json:"columns,omitempty"`
	Cells      map[string]string `json:"cells,omitempty"`
	Note       string            `json:"note,omitempty"`
	ElapsedMS  float64           `json:"elapsedMs,omitempty"`
}

// Emit implements Sink.
func (s JSONLSink) Emit(t *Table) error {
	enc := json.NewEncoder(s.W)
	if err := enc.Encode(jsonlRecord{Type: "table", Experiment: t.ID, Title: t.Title, Claim: t.Claim, Columns: t.Columns}); err != nil {
		return err
	}
	for _, row := range t.Rows {
		cells := make(map[string]string, len(t.Columns))
		for i, col := range t.Columns {
			if i < len(row) {
				cells[col] = row[i]
			}
		}
		if err := enc.Encode(jsonlRecord{Type: "row", Experiment: t.ID, Cells: cells}); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if err := enc.Encode(jsonlRecord{Type: "note", Experiment: t.ID, Note: n}); err != nil {
			return err
		}
	}
	return enc.Encode(jsonlRecord{Type: "done", Experiment: t.ID, ElapsedMS: t.elapsedMS()})
}

// MultiSink fans each table out to every sink in order.
func MultiSink(sinks ...Sink) Sink { return multiSink(sinks) }

type multiSink []Sink

// Emit implements Sink.
func (m multiSink) Emit(t *Table) error {
	for _, s := range m {
		if err := s.Emit(t); err != nil {
			return err
		}
	}
	return nil
}

// Run executes the selected experiments (nil or empty ids means all) and
// feeds every finished table to the sink. Unknown IDs are an error listing
// the valid ones, so a typo cannot silently run nothing.
func Run(cfg Config, ids []string, sink Sink) error {
	selected := All()
	if len(ids) > 0 {
		byID := make(map[string]Experiment, len(selected))
		valid := make([]string, 0, len(selected))
		for _, e := range selected {
			byID[e.ID] = e
			valid = append(valid, e.ID)
		}
		selected = selected[:0]
		seen := make(map[string]bool, len(ids))
		var unknown []string
		for _, id := range ids {
			if seen[id] {
				continue
			}
			seen[id] = true
			if e, ok := byID[id]; ok {
				selected = append(selected, e)
			} else {
				unknown = append(unknown, id)
			}
		}
		if len(unknown) > 0 {
			return fmt.Errorf("harness: unknown experiment ID(s) %v; valid IDs are %v", unknown, valid)
		}
	}
	for _, e := range selected {
		table, err := e.Run(cfg)
		if err != nil {
			return fmt.Errorf("harness: %s: %w", e.ID, err)
		}
		if err := sink.Emit(table); err != nil {
			return fmt.Errorf("harness: emit %s: %w", e.ID, err)
		}
	}
	return nil
}
