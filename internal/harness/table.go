package harness

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// Table is a rendered experiment result: a titled grid of cells plus
// free-form notes (the qualitative claims the table supports).
type Table struct {
	ID      string
	Title   string
	Claim   string
	Columns []string
	Rows    [][]string
	Notes   []string
	// Elapsed is the wall clock the generating sweep spent; Render reports
	// it as a trailing note (omitted when zero) so sweeps are self-profiling.
	// Determinism comparisons zero it before rendering.
	Elapsed time.Duration
}

// AddRow appends a row; missing cells are padded and extra cells dropped so a
// malformed caller cannot corrupt the rendering.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Columns))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddNote appends a note line.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render writes an aligned plain-text rendering.
func (t *Table) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%s — %s\n", t.ID, t.Title); err != nil {
		return err
	}
	if t.Claim != "" {
		if _, err := fmt.Fprintf(w, "claim: %s\n", t.Claim); err != nil {
			return err
		}
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			parts[i] = pad(cell, widths[i])
		}
		_, err := fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
		return err
	}
	if err := writeRow(t.Columns); err != nil {
		return err
	}
	rule := make([]string, len(t.Columns))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	if err := writeRow(rule); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "  note: %s\n", n); err != nil {
			return err
		}
	}
	if t.Elapsed > 0 {
		if _, err := fmt.Fprintf(w, "  note: wall-clock %s\n", t.Elapsed.Round(time.Millisecond)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// WriteCSV writes the table as CSV (columns header + rows; title/claim/notes
// are emitted as comment-style leading rows).
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	defer cw.Flush()
	if err := cw.Write([]string{"# " + t.ID, t.Title}); err != nil {
		return err
	}
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// tableJSON is the stable JSON shape of a table (used by WriteJSON and, row
// by row, by the JSON-lines sink).
type tableJSON struct {
	ID        string     `json:"id"`
	Title     string     `json:"title"`
	Claim     string     `json:"claim,omitempty"`
	Columns   []string   `json:"columns"`
	Rows      [][]string `json:"rows"`
	Notes     []string   `json:"notes,omitempty"`
	ElapsedMS float64    `json:"elapsedMs,omitempty"`
}

// elapsedMS is the one wall-clock-to-milliseconds conversion shared by every
// JSON-emitting sink, so the formats cannot drift apart.
func (t *Table) elapsedMS() float64 {
	return float64(t.Elapsed) / float64(time.Millisecond)
}

// WriteJSON writes the whole table as one indented JSON object.
func (t *Table) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(tableJSON{
		ID:        t.ID,
		Title:     t.Title,
		Claim:     t.Claim,
		Columns:   t.Columns,
		Rows:      t.Rows,
		Notes:     t.Notes,
		ElapsedMS: t.elapsedMS(),
	})
}

func pad(s string, width int) string {
	if len(s) >= width {
		return s
	}
	return s + strings.Repeat(" ", width-len(s))
}

// Formatting helpers shared by the experiment drivers.

func itoa(v int) string { return strconv.Itoa(v) }

func ftoa(v float64) string { return strconv.FormatFloat(v, 'f', 2, 64) }

func btoa(v bool) string {
	if v {
		return "yes"
	}
	return "no"
}
