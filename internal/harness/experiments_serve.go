package harness

import (
	"fmt"
	"time"

	"d2color/internal/serve"
)

// runE13 is the serving-plane experiment: the four standard closed-loop load
// mixes of cmd/d2load — {many-small-graphs, one-huge-graph} × {query-heavy,
// churn-heavy} — replayed against the warm-session server, plus an unbatched
// control twin of the coalescing-friendly query mix. Each row is one mix:
// request percentiles at the transport boundary, sustained request and
// coloring throughput, and the server-side batching/eviction counters.
//
// The request schedules are deterministic per (mix, seed) — two runs issue
// byte-identical request sequences — but every measured column is wall-clock
// derived, so the experiment is registered Volatile like E11/E12. The
// structural claims (batching coalesces, eviction happens under the sized
// budget, no request errors) are asserted by the smoke test rather than by
// table bytes.
func runE13(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E13",
		Title: "Coloring as a service: latency and throughput under closed-loop load",
		Claim: "ROADMAP serving item: warm sessions with batched dispatch serve query-heavy mixes with bounded tails, and batching beats unbatched dispatch where requests coalesce",
		Columns: []string{"mix", "sessions", "graph", "requests", "conc", "batch",
			"p50 ms", "p95 ms", "p99 ms", "req/s", "colorings/s", "coalesced", "evict", "reopens"},
	}
	start := time.Now()

	specs := serve.StandardMixes(cfg.Quick)
	// The unbatched twin of the coalescing-friendly mix, so the batching win
	// is two adjacent rows of the same table.
	for _, spec := range specs {
		if spec.Mix == "many-small/query" {
			twin := spec
			twin.Mix = spec.Mix + "/unbatched"
			twin.Unbatched = true
			specs = append(specs, twin)
			break
		}
	}
	for _, spec := range specs {
		if spec.Seed == 0 {
			spec.Seed = cfg.Seed
		}
		spec.Parallel = cfg.Parallel && cfg.jobs() == 1
		rep, err := serve.RunLoad(spec)
		if err != nil {
			return nil, fmt.Errorf("E13 %s: %w", spec.Mix, err)
		}
		if rep.Errors > 0 {
			return nil, fmt.Errorf("E13 %s: %d request errors", spec.Mix, rep.Errors)
		}
		ms := func(d time.Duration) string { return fmt.Sprintf("%.3f", float64(d.Microseconds())/1000) }
		t.AddRow(rep.Mix, itoa(rep.Sessions), fmt.Sprintf("%s(n=%d)", spec.Family, spec.N),
			itoa(rep.Requests), itoa(rep.Concurrency), fmt.Sprintf("%.1f", rep.MeanBatch),
			ms(rep.P50), ms(rep.P95), ms(rep.P99),
			fmt.Sprintf("%.0f", rep.RequestsPerSec), fmt.Sprintf("%.1f", rep.ColoringsPerSec),
			fmt.Sprintf("%d", rep.Coalesced), fmt.Sprintf("%d", rep.Evictions), itoa(rep.Reopens))
	}

	t.Elapsed = time.Since(start)
	t.AddNote("closed loop: each of conc workers issues its next request only after the previous response; latency is measured per request at the transport boundary")
	t.AddNote("the many-small mixes run under a resident budget of ~70%% of the session population, so LRU eviction and client-side reopens (the cache-miss cold path, included in the latency) are part of the distribution")
	t.AddNote("batch = mean requests per dispatch window; coalesced counts requests answered from a window's memo instead of a kernel pass; the /unbatched row is the control arm with the window disabled")
	t.AddNote("request schedules are deterministic per (mix, seed); every measured column is wall-clock derived, so the experiment is Volatile and excluded from byte-identity checks")
	return t, nil
}
