package harness

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"d2color/internal/graph"
	"d2color/internal/repair"
	"d2color/internal/serve"
)

// runE14 is the chaos experiment: the serving plane driven through overload,
// deadline storms, injected worker panics, and a drain under live load — the
// failure modes PR 10's hardening exists for. Each row is one scenario:
//
//   - baseline/1x: the reference mix at low concurrency (the unloaded tail
//     the chaos gate compares against).
//   - overload/2x: ~2× capacity against a queue depth of 2 — the server must
//     shed (503) instead of queueing unboundedly.
//   - overload/retry: the same offered load from clients with seeded
//     backoff-and-retry — sheds convert to retries, accepted work completes.
//   - deadline-storm: forced ~1ms deadlines on half the requests plus
//     injected dispatch delays; canceled kernels unwind cooperatively and
//     the warm kernel's next run is byte-identical (checked inline against
//     a fresh server).
//   - panic-storm: a hash-pure plan panics a fraction of recolor requests in
//     the worker; panicking requests fail structurally, streaks quarantine
//     the session, clients reopen, and after Close every worker has exited
//     (opened == shutdown, goroutines at baseline).
//   - drain-under-load: Drain called while closed-loop workers hammer the
//     server; admission flips to draining, in-flight work finishes, and the
//     server closes inside the deadline.
//
// Request schedules, fault plans, and the invariant checks are deterministic
// per seed; every measured column (latencies, shed/retry/cancel counts —
// which depend on runtime interleaving) is volatile. The smoke test pins the
// deterministic columns byte-identically across two runs and asserts the
// structural outcomes (sheds happen, retries happen, cancels happen,
// quarantine fires, drain completes).
func runE14(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E14",
		Title: "Chaos: overload shedding, deadline storms, panic quarantine, and graceful drain",
		Claim: "ROADMAP robustness item: the serving plane degrades predictably — bounded queues shed excess load, deadlines cancel cooperatively with warm kernels reusable byte-identically, panics quarantine without leaks, drains complete against a deadline",
		Columns: []string{"scenario", "sessions", "offered", "shed", "retried", "canceled",
			"panics", "quar", "p99 ms", "acc-p99 ms", "drain ms", "invariant"},
	}
	start := time.Now()

	n, sessions, reqs, conc := 2000, 2, 2400, 16
	if cfg.Quick {
		n, reqs, conc = 600, 600, 12
	}
	ms := func(d time.Duration) string { return fmt.Sprintf("%.3f", float64(d.Microseconds())/1000) }
	addLoadRow := func(scenario string, rep serve.LoadReport, drainMS, invariant string) {
		t.AddRow(scenario, itoa(rep.Sessions), itoa(rep.Requests),
			itoa(rep.Shed), itoa(rep.Retried), itoa(rep.Canceled),
			fmt.Sprintf("%d", rep.ServerPanics), fmt.Sprintf("%d", rep.Quarantined),
			ms(rep.P99), ms(rep.AcceptedP99), drainMS, invariant)
	}

	base := serve.LoadSpec{
		Sessions: sessions, Family: "ba", N: n, Deg: 3,
		Requests: reqs, Concurrency: conc,
		VerifyFraction: 0.7, RecolorFraction: 0.1, Corrupt: 4, ColorSeeds: 1,
		Hot: 1.0, Seed: cfg.Seed, Mode: repair.ModeLocal,
	}

	// baseline/1x: low concurrency, deep queue — the unloaded tail.
	spec := base
	spec.Mix, spec.Concurrency = "baseline/1x", 2
	rep, err := serve.RunLoad(spec)
	if err != nil {
		return nil, fmt.Errorf("E14 baseline: %w", err)
	}
	inv := "ok"
	if rep.Errors > 0 {
		inv = fmt.Sprintf("FAIL: %d errors unloaded", rep.Errors)
	}
	addLoadRow(spec.Mix, rep, "-", inv)

	// overload/2x: the hot-keyed mix at full concurrency against queue depth
	// 2 — far past one worker's capacity; the only well-behaved outcome is
	// shedding.
	spec = base
	spec.Mix, spec.QueueDepth = "overload/2x", 2
	rep, err = serve.RunLoad(spec)
	if err != nil {
		return nil, fmt.Errorf("E14 overload: %w", err)
	}
	inv = "ok"
	switch {
	case rep.Shed == 0:
		inv = "FAIL: no sheds at 2x capacity"
	case rep.Shed+rep.Canceled >= rep.Requests:
		inv = "FAIL: nothing accepted under overload"
	}
	addLoadRow(spec.Mix, rep, "-", inv)

	// overload/retry: the same offered load from retrying clients.
	spec.Mix, spec.Retries = "overload/retry", 4
	rep, err = serve.RunLoad(spec)
	if err != nil {
		return nil, fmt.Errorf("E14 retry: %w", err)
	}
	inv = "ok"
	if rep.Retried == 0 {
		inv = "FAIL: overloaded clients never retried"
	}
	addLoadRow(spec.Mix, rep, "-", inv)

	// deadline-storm: forced ~1ms deadlines on half the requests plus
	// dispatch delays, on a graph big enough that a full color run takes
	// well past 1ms — so the color slice (distinct seeds, never coalesced)
	// guarantees real mid-kernel cancels, and the queue waits behind them
	// cancel queued requests before they touch a kernel.
	stormN, stormReqs := 20000, 800
	if cfg.Quick {
		stormN, stormReqs = 6000, 300
	}
	spec = base
	spec.Mix = "deadline-storm"
	spec.Sessions, spec.Family, spec.N, spec.Deg = 1, "gnp", stormN, 8
	spec.Requests, spec.Mode = stormReqs, repair.ModeGlobal
	spec.VerifyFraction, spec.RecolorFraction, spec.ColorSeeds = 0.3, 0.2, 64
	spec.Retries = 2
	spec.Chaos = serve.ChaosOptions{
		Seed:          cfg.Seed,
		DelayFraction: 0.2, MaxDelay: time.Millisecond,
		CancelFraction: 0.5, StormDeadlineMillis: 1,
	}
	rep, err = serve.RunLoad(spec)
	if err != nil {
		return nil, fmt.Errorf("E14 storm: %w", err)
	}
	inv = "ok"
	if rep.Canceled == 0 && rep.Retried == 0 {
		inv = "FAIL: storm produced no cancels"
	}
	if reuseOK, rerr := cancelReuseCheck(cfg); rerr != nil {
		return nil, fmt.Errorf("E14 reuse check: %w", rerr)
	} else if !reuseOK {
		inv = "FAIL: warm kernel not byte-identical after cancel"
	}
	addLoadRow(spec.Mix, rep, "-", inv)

	// panic-storm and drain-under-load run bespoke drivers (they need the
	// server handle after Close).
	row, err := panicStorm(cfg, n, reqs, conc)
	if err != nil {
		return nil, fmt.Errorf("E14 panic-storm: %w", err)
	}
	t.Rows = append(t.Rows, row)

	row, err = drainUnderLoad(cfg, n, conc)
	if err != nil {
		return nil, fmt.Errorf("E14 drain: %w", err)
	}
	t.Rows = append(t.Rows, row)

	t.Elapsed = time.Since(start)
	t.AddNote("closed loop at ~2x one worker's capacity: queue depth 2, hot-keyed traffic; shed = requests rejected 503 after retries, retried = backoff-and-retry attempts (seeded jitter, disjoint from the schedule stream)")
	t.AddNote("deadline-storm forces ~1ms deadlines on half the requests; canceled kernels unwind within O(one simulated round) and the invariant column includes a byte-identity check of the warm kernel's next run against a fresh server")
	t.AddNote("panic-storm panics a hash-pure fraction of recolor requests inside the worker; after Close, opened == shutdown and goroutines return to baseline (no engine leak)")
	t.AddNote("schedules, fault plans and invariants are deterministic per seed; every count and latency column depends on runtime interleaving and is volatile")
	return t, nil
}

// cancelReuseCheck pins the cancellation acceptance criterion: color a graph
// on a warm session, cancel a second run mid-kernel with a ~1ms deadline,
// rerun the first request, and require hash and metrics byte-identical to
// both the pre-cancel run and a fresh server's run. Checked for the
// sequential and the sharded engine.
func cancelReuseCheck(cfg Config) (bool, error) {
	n := 20000
	if cfg.Quick {
		n = 6000
	}
	spec := &graph.GeneratorSpec{Kind: "gnp-avg", N: n, P: 8, Seed: int64(cfg.Seed)}
	for _, parallel := range []bool{false, true} {
		run := func() (serve.Response, serve.Response, error) {
			srv := serve.NewServer(serve.Options{Parallel: parallel})
			defer srv.Close()
			var first, again serve.Response
			var resp serve.Response
			if err := srv.Do(&serve.Request{Op: serve.OpOpen, Session: "x", Spec: spec}, &resp); err != nil {
				return first, again, err
			}
			if err := srv.Do(&serve.Request{Op: serve.OpColor, Session: "x", Seed: 7}, &first); err != nil {
				return first, again, err
			}
			// A different-seed run forced to cancel mid-kernel (an n=20000
			// coloring takes well over 1ms).
			err := srv.Do(&serve.Request{Op: serve.OpColor, Session: "x", Seed: 8, DeadlineMillis: 1}, &resp)
			if err != nil && !errors.Is(err, serve.ErrCanceled) {
				return first, again, err
			}
			err = srv.Do(&serve.Request{Op: serve.OpColor, Session: "x", Seed: 7}, &again)
			return first, again, err
		}
		first, again, err := run()
		if err != nil {
			return false, err
		}
		fresh, _, err := run()
		if err != nil {
			return false, err
		}
		if again.Hash != first.Hash || again.Metrics != first.Metrics ||
			again.Hash != fresh.Hash || again.Metrics != fresh.Metrics {
			return false, nil
		}
	}
	return true, nil
}

// panicStorm drives a server whose ChaosPanic hook panics a hash-pure
// fraction of recolor requests, with a quarantine threshold of 2. Clients
// reopen quarantined sessions like any eviction. After Close: opened must
// equal shutdown and the goroutine count must return to baseline.
func panicStorm(cfg Config, n, reqs, conc int) ([]string, error) {
	baseGoroutines := runtime.NumGoroutine()
	plan := serve.PanicPlan(cfg.Seed, 0.35)
	srv := serve.NewServer(serve.Options{
		QuarantineAfter: 2,
		// Panic only recolor requests: setup and reopen (open + color) must
		// stay fault-free or the storm cannot re-admit quarantined sessions.
		ChaosPanic: func(req *serve.Request) bool { return req.Op == serve.OpRecolor && plan(req) },
	})
	spec := &graph.GeneratorSpec{Kind: "ba", N: n, Degree: 3, Seed: int64(cfg.Seed)}
	open := func(cl *serve.Client) error {
		var resp serve.Response
		err := cl.Do(&serve.Request{Op: serve.OpOpen, Session: "p0", Spec: spec}, &resp)
		if err != nil && !errors.Is(err, serve.ErrSessionExists) {
			return err
		}
		err = cl.Do(&serve.Request{Op: serve.OpColor, Session: "p0", Seed: 7}, &resp)
		if err != nil && !errors.Is(err, serve.ErrUnknownSession) {
			return err
		}
		return nil
	}
	if err := open(srv.NewClient()); err != nil {
		srv.Close()
		return nil, err
	}

	var panicked, quarantinedSeen, served, reopens int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	per := reqs / conc
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl := srv.NewClient()
			rng := splitmixHarness{state: cfg.Seed ^ (uint64(w+1) * 0xa5a5a5a5a5a5a5a5)}
			var resp serve.Response
			var nPanic, nQuar, nOK, nReopen int64
			for i := 0; i < per; i++ {
				req := serve.Request{Op: serve.OpRecolor, Session: "p0", Corrupt: 4, Seed: rng.next() % 64}
				err := cl.Do(&req, &resp)
				for attempt := 0; errors.Is(err, serve.ErrUnknownSession) && attempt < 3; attempt++ {
					if open(cl) != nil {
						break
					}
					nReopen++
					err = cl.Do(&req, &resp)
				}
				switch {
				case err == nil:
					nOK++
				case errors.Is(err, serve.ErrPanicked):
					nPanic++
				case errors.Is(err, serve.ErrQuarantined):
					nQuar++
				}
			}
			mu.Lock()
			panicked += nPanic
			quarantinedSeen += nQuar
			served += nOK
			reopens += nReopen
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	srv.Close()
	st := srv.Stats()

	inv := "ok"
	switch {
	case st.Panics == 0:
		inv = "FAIL: plan injected no panics"
	case st.Quarantined == 0:
		inv = "FAIL: panic streaks never quarantined"
	case st.Opened != st.Shutdown:
		inv = fmt.Sprintf("FAIL: opened %d != shutdown %d after close", st.Opened, st.Shutdown)
	case !goroutinesSettled(baseGoroutines, 5*time.Second):
		inv = fmt.Sprintf("FAIL: goroutines %d above baseline %d after close", runtime.NumGoroutine(), baseGoroutines)
	}
	return []string{"panic-storm", "1", itoa(per * conc), "0", "0", "0",
		fmt.Sprintf("%d", st.Panics), fmt.Sprintf("%d", st.Quarantined), "-", "-", "-", inv}, nil
}

// drainUnderLoad opens a session, points closed-loop workers at it, then
// calls Drain with a deadline while they hammer: admission must flip to
// draining, in-flight work must finish, and the server must be fully closed
// (opened == shutdown) inside the deadline.
func drainUnderLoad(cfg Config, n, conc int) ([]string, error) {
	srv := serve.NewServer(serve.Options{})
	spec := &graph.GeneratorSpec{Kind: "ba", N: n, Degree: 3, Seed: int64(cfg.Seed)}
	var resp serve.Response
	if err := srv.Do(&serve.Request{Op: serve.OpOpen, Session: "d0", Spec: spec}, &resp); err != nil {
		srv.Close()
		return nil, err
	}
	if err := srv.Do(&serve.Request{Op: serve.OpColor, Session: "d0", Seed: 7}, &resp); err != nil {
		srv.Close()
		return nil, err
	}

	var answered, badStops int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl := srv.NewClient()
			var resp serve.Response
			var ok int64
			for {
				err := cl.Do(&serve.Request{Op: serve.OpVerify, Session: "d0"}, &resp)
				if err == nil {
					ok++
					continue
				}
				mu.Lock()
				answered += ok
				if !errors.Is(err, serve.ErrDraining) && !errors.Is(err, serve.ErrServerClosed) &&
					!errors.Is(err, serve.ErrCanceled) {
					badStops++
				}
				mu.Unlock()
				return
			}
		}()
	}
	// Let the loop establish real in-flight load, then drain against a
	// deadline generous next to the verify service time.
	time.Sleep(20 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	t0 := time.Now()
	drainErr := srv.Drain(ctx)
	drainMS := time.Since(t0)
	cancel()
	wg.Wait()
	st := srv.Stats()

	inv := "ok"
	switch {
	case drainErr != nil:
		inv = fmt.Sprintf("FAIL: drain missed deadline: %v", drainErr)
	case st.Inflight != 0:
		inv = fmt.Sprintf("FAIL: %d requests in flight after drain", st.Inflight)
	case st.Opened != st.Shutdown:
		inv = fmt.Sprintf("FAIL: opened %d != shutdown %d after drain", st.Opened, st.Shutdown)
	case badStops > 0:
		inv = fmt.Sprintf("FAIL: %d workers stopped on unexpected errors", badStops)
	case answered == 0:
		inv = "FAIL: no requests served before drain"
	}
	return []string{"drain-under-load", "1", "-", "0", "0", "0", "0", "0", "-", "-",
		fmt.Sprintf("%.3f", float64(drainMS.Microseconds())/1000), inv}, nil
}

// goroutinesSettled polls until the goroutine count returns to (near) the
// baseline — the same leak probe the serve lifecycle tests use, tolerating
// the runtime's own transient goroutines.
func goroutinesSettled(base int, within time.Duration) bool {
	deadline := time.Now().Add(within)
	for {
		if runtime.NumGoroutine() <= base+2 {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// splitmixHarness is a local SplitMix64 stream for bespoke chaos drivers
// (the serve package's stream is unexported).
type splitmixHarness struct{ state uint64 }

func (r *splitmixHarness) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
