package harness

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"d2color/internal/baseline"
	"d2color/internal/graph"
	"d2color/internal/randd2"
	"d2color/internal/sparsity"
	"d2color/internal/trial"
)

// log2f returns log₂(x) clamped below at 1 (avoids division by ~0 in ratios).
func log2f(x int) float64 {
	if x < 2 {
		return 1
	}
	return math.Log2(float64(x))
}

// runRandAveraged runs the randomized algorithm `reps` times with different
// seeds and returns the average total rounds, average active rounds and the
// worst-case colors used.
//
// Runs with distinct seeds are independent, so the repetitions fan out over
// a bounded worker pool (cfg.repWorkers()); each worker owns one reusable
// trial kernel, so a worker's repetitions share the kernel's network and
// flat per-node state instead of rebuilding them per run. Results are folded
// in repetition order, so the averages and the sampled first repetition are
// byte-identical to a serial execution.
func runRandAveraged(g *graph.Graph, variant randd2.Variant, cfg Config, reps int) (avgTotal, avgActive float64, maxColors int, sample *randd2.Result, err error) {
	results := make([]randd2.Result, reps)
	errs := make([]error, reps)
	workers := cfg.repWorkers()
	if workers > reps {
		workers = reps
	}
	if workers > 1 {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				// The rep pool already saturates the cores, so each worker
				// runs the byte-deterministic sequential engine: nesting a
				// sharded engine per worker would only add scheduling
				// overhead without changing a single table cell.
				tk := trial.NewRunner(g, false, 0)
				for {
					i := int(next.Add(1)) - 1
					if i >= reps {
						return
					}
					results[i], errs[i] = randd2.Run(g, randd2.Options{Variant: variant,
						Seed: cfg.Seed + uint64(i)*101, TrialKernel: tk})
				}
			}()
		}
		wg.Wait()
	} else {
		tk := trial.NewRunner(g, cfg.Parallel, 0)
		for i := 0; i < reps; i++ {
			results[i], errs[i] = randd2.Run(g, randd2.Options{Variant: variant,
				Seed: cfg.Seed + uint64(i)*101, Parallel: cfg.Parallel, TrialKernel: tk})
		}
	}
	for i := 0; i < reps; i++ {
		if errs[i] != nil {
			return 0, 0, 0, nil, errs[i]
		}
		res := results[i]
		avgTotal += float64(res.Metrics.TotalRounds())
		avgActive += float64(res.ActiveRounds)
		if c := res.Coloring.NumColorsUsed(); c > maxColors {
			maxColors = c
		}
		if i == 0 {
			r := res
			sample = &r
		}
	}
	avgTotal /= float64(reps)
	avgActive /= float64(reps)
	return avgTotal, avgActive, maxColors, sample, nil
}

// runE1 measures Theorem 1.1: rounds of the improved randomized algorithm as
// n grows (fixed average degree) and as Δ grows (fixed n).
func runE1(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E1",
		Title: "Randomized d2-coloring (improved final phase)",
		Claim: "Theorem 1.1: Δ²+1 colors, O(log Δ · log n) rounds",
		Columns: []string{"workload", "n", "Δ", "palette Δ²+1", "colors used",
			"rounds (sched)", "rounds (active)", "rounds / (log Δ · log n)"},
	}
	ns := []int{256, 512, 1024, 2048, 4096}
	degs := []float64{6, 12, 24, 48}
	if cfg.Quick {
		ns = []int{128, 256, 512}
		degs = []float64{6, 12}
	}
	reps := cfg.reps()

	for _, n := range ns {
		g, effDeg := graph.GNPWithAverageDegreeEffective(n, 12, int64(cfg.Seed)+int64(n))
		delta := g.MaxDegree()
		total, active, colors, _, err := runRandAveraged(g, randd2.VariantImproved, cfg, reps)
		if err != nil {
			return nil, err
		}
		norm := total / (log2f(delta) * log2f(n))
		t.AddRow(fmt.Sprintf("n-sweep (avg deg %s)", ftoa(effDeg)), itoa(n), itoa(delta), itoa(delta*delta+1), itoa(colors),
			ftoa(total), ftoa(active), ftoa(norm))
	}
	nFixed := 1024
	if cfg.Quick {
		nFixed = 384
	}
	for _, d := range degs {
		g, effDeg := graph.GNPWithAverageDegreeEffective(nFixed, d, int64(cfg.Seed)+int64(d*17))
		delta := g.MaxDegree()
		total, active, colors, _, err := runRandAveraged(g, randd2.VariantImproved, cfg, reps)
		if err != nil {
			return nil, err
		}
		norm := total / (log2f(delta) * log2f(nFixed))
		t.AddRow(fmt.Sprintf("Δ-sweep (n=%d, avg deg %s)", nFixed, ftoa(effDeg)), itoa(nFixed), itoa(delta), itoa(delta*delta+1), itoa(colors),
			ftoa(total), ftoa(active), ftoa(norm))
	}
	t.AddNote("workload labels carry the post-clamping effective generator parameters, so every row is self-describing")
	t.AddNote("expected shape: the normalized column stays within a small constant band as n and Δ grow")
	t.AddNote("colors used never exceed Δ²+1 (verified on every run)")
	return t, nil
}

// runE2 compares the basic final phase (Corollary 2.1) with the improved one
// (Theorem 1.1) as n grows.
func runE2(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E2",
		Title: "Final phase comparison: Reduce(c₂·log n, 1) vs LearnPalette+FinishColoring",
		Claim: "Corollary 2.1 is O(log³ n); Theorem 1.1 is O(log Δ · log n); the gap widens with n",
		Columns: []string{"n", "Δ", "basic rounds", "improved rounds", "basic/improved",
			"basic / log³ n", "improved / (log Δ · log n)"},
	}
	ns := []int{256, 512, 1024, 2048}
	if cfg.Quick {
		ns = []int{128, 256}
	}
	reps := cfg.reps()
	for _, n := range ns {
		g := graph.GNPWithAverageDegree(n, 12, int64(cfg.Seed)+int64(n))
		delta := g.MaxDegree()
		basicTotal, _, _, _, err := runRandAveraged(g, randd2.VariantBasic, cfg, reps)
		if err != nil {
			return nil, err
		}
		improvedTotal, _, _, _, err := runRandAveraged(g, randd2.VariantImproved, cfg, reps)
		if err != nil {
			return nil, err
		}
		logN := log2f(n)
		t.AddRow(itoa(n), itoa(delta), ftoa(basicTotal), ftoa(improvedTotal),
			ftoa(basicTotal/math.Max(improvedTotal, 1)),
			ftoa(basicTotal/(logN*logN*logN)),
			ftoa(improvedTotal/(log2f(delta)*logN)))
	}
	t.AddNote("expected shape: the basic/improved ratio grows with n; both normalized columns stay bounded")
	return t, nil
}

// runE7 measures the final-phase machinery of Section 2.6 on dense workloads.
func runE7(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E7",
		Title: "LearnPalette correction size and FinishColoring phases",
		Claim: "Lemma 2.15: |Tv| = O(log n); Lemma 2.14: FinishColoring completes in O(log n) phases",
		Columns: []string{"workload", "n", "Δ", "live at finish", "max live per nbhd",
			"max |Tv|", "finish phases", "finish phases / log n"},
	}
	ns := []int{200, 400, 800, 1600}
	if cfg.Quick {
		ns = []int{150, 300}
	}
	// With the default number of initial trial phases the final phase often
	// receives a fully colored graph, which would make this table vacuous.
	// Shrinking the initial phase budget (C0) and the main-loop span (C1)
	// leaves live nodes for LearnPalette + FinishColoring to handle, which is
	// the machinery this experiment measures. The workloads have Δ ≈ √n so
	// that d2-neighbourhoods are a constant fraction of the palette and the
	// initial trials genuinely leave stragglers.
	params := randd2.Default()
	params.C0 = 0.2
	params.C1 = 0.05
	for _, n := range ns {
		avgDeg := 0.9 * math.Sqrt(float64(n))
		g, effDeg := graph.GNPWithAverageDegreeEffective(n, avgDeg, int64(cfg.Seed)+int64(n))
		res, err := randd2.Run(g, randd2.Options{Variant: randd2.VariantImproved, Seed: cfg.Seed, Params: &params, Parallel: cfg.Parallel})
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("gnp(avg deg %.1f)", effDeg), itoa(n), itoa(g.MaxDegree()),
			itoa(res.PaletteStats.LiveNodes), itoa(res.PaletteStats.MaxLivePerNbr),
			itoa(res.PaletteStats.MaxMissing), itoa(res.FinishStats.Phases),
			ftoa(float64(res.FinishStats.Phases)/log2f(n)))
	}
	t.AddNote("the initial-phase budget is reduced (C0=0.2, C1=0.05) so that live nodes actually reach the final phase at simulation scale")
	t.AddNote("expected shape: FinishColoring phases grow at most logarithmically in n; |Tv| stays far below the palette size (the O(log n) bound of Lemma 2.15 assumes the ζ = O(log n) regime)")
	return t, nil
}

// runE8 compares the naive G²-simulation strawman against the improved
// randomized algorithm as Δ grows at fixed n.
func runE8(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E8",
		Title: "Naive G² simulation vs Improved-d2-Color (fixed n, growing Δ)",
		Claim: "Simulating one G² round costs Θ(Δ) rounds on G, so the naive algorithm scales linearly in Δ while the paper's algorithm scales as log Δ",
		Columns: []string{"n", "avg deg", "Δ", "naive rounds", "improved rounds", "naive/improved",
			"naive / Δ", "improved / log Δ"},
	}
	n := 1024
	degs := []float64{4, 8, 16, 32, 64, 96}
	if cfg.Quick {
		n = 256
		degs = []float64{4, 8}
	}
	for _, d := range degs {
		g, effDeg := graph.GNPWithAverageDegreeEffective(n, d, int64(cfg.Seed)+int64(d*31))
		delta := g.MaxDegree()
		naive, err := baseline.NaiveD2(g, baseline.Options{Seed: cfg.Seed, Parallel: cfg.Parallel})
		if err != nil {
			return nil, err
		}
		improvedTotal, _, _, _, err := runRandAveraged(g, randd2.VariantImproved, cfg, cfg.reps())
		if err != nil {
			return nil, err
		}
		naiveRounds := float64(naive.Metrics.TotalRounds())
		t.AddRow(itoa(n), ftoa(effDeg), itoa(delta), ftoa(naiveRounds), ftoa(improvedTotal),
			ftoa(naiveRounds/math.Max(improvedTotal, 1)),
			ftoa(naiveRounds/float64(maxI(delta, 1))),
			ftoa(improvedTotal/log2f(delta)))
	}
	t.AddNote("expected shape: naive/Δ stays roughly flat (linear-in-Δ cost) while improved/log Δ grows only slowly; the naive/improved ratio therefore grows with Δ and the crossover (naive losing outright) happens once Δ exceeds the polylog factors — extrapolate the two flat columns to locate it")
	return t, nil
}

// runE9 validates the slack-generation claim: after the initial random
// trials, sparse nodes have slack proportional to their sparsity.
func runE9(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E9",
		Title: "Slack generation from sparsity (after the initial random-trial phase)",
		Claim: "Proposition 2.5 / Observation 1: a ζ-sparse node obtains slack ≥ ζ/(4e³) w.h.p.",
		Columns: []string{"workload", "n", "Δ", "avg ζ", "avg slack", "min slack/ζ (ζ≥1)",
			"frac slack ≥ ζ/4e³", "live after step 2"},
	}
	workloads := []struct {
		name string
		g    *graph.Graph
	}{
		{"gnp avg8", graph.GNPWithAverageDegree(600, 8, int64(cfg.Seed))},
		{"gnp avg16", graph.GNPWithAverageDegree(600, 16, int64(cfg.Seed)+1)},
		{"cliquechain 10×10", graph.CliqueChain(10, 10, 0)},
		{"unitdisk", graph.UnitDisk(400, 0.12, int64(cfg.Seed)+2)},
	}
	if cfg.Quick {
		workloads = workloads[:2]
	}
	const fourECubed = 4 * math.E * math.E * math.E
	for _, w := range workloads {
		g := w.g
		delta := g.MaxDegree()
		palette := delta*delta + 1
		phases := int(math.Ceil(3 * log2f(g.NumNodes())))
		res, err := trial.Run(g, trial.Config{PaletteSize: palette, Scope: trial.ScopeDistance2,
			MaxPhases: phases, Seed: cfg.Seed, Parallel: cfg.Parallel})
		if err != nil {
			return nil, err
		}
		d2 := graph.NewDist2View(g)
		zetas := sparsity.AllSparsities(d2, delta)
		var sumZ, sumSlack, minRatio float64
		minRatio = math.Inf(1)
		okCount, constrained := 0, 0
		live := 0
		for v := 0; v < g.NumNodes(); v++ {
			z := zetas[v]
			s := float64(sparsity.Slack(d2, res.Coloring, palette, graph.NodeID(v)))
			sumZ += z
			sumSlack += s
			if !res.Coloring.IsColored(graph.NodeID(v)) {
				live++
			}
			if z >= 1 {
				constrained++
				if ratio := s / z; ratio < minRatio {
					minRatio = ratio
				}
				if s >= z/fourECubed {
					okCount++
				}
			}
		}
		n := float64(g.NumNodes())
		frac := 1.0
		if constrained > 0 {
			frac = float64(okCount) / float64(constrained)
		}
		if math.IsInf(minRatio, 1) {
			minRatio = 0
		}
		t.AddRow(w.name, itoa(g.NumNodes()), itoa(delta), ftoa(sumZ/n), ftoa(sumSlack/n),
			ftoa(minRatio), ftoa(frac), itoa(live))
	}
	t.AddNote("expected shape: the fraction of nodes with slack ≥ ζ/(4e³) is ≈ 1 on every workload")
	return t, nil
}

// runE10 exercises the Reduce machinery (queries, helper trials, forwarded
// proposals) in the zero-sparsity regime it was designed for: Moore graphs of
// diameter 2, whose squares are complete graphs.
func runE10(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E10",
		Title: "Reduce machinery in the dense (zero-sparsity) regime",
		Claim: "Section 2.1/2.5: on Δ²-dense neighbourhoods the colored nodes' assistance (queries → helper trials → proposals) colours the remaining live nodes",
		Columns: []string{"workload", "n", "Δ", "live after step 2", "reduce phases",
			"queries sent", "queries dropped", "proposals", "colored by reduce", "live at finish"},
	}
	workloads := []struct {
		name string
		g    *graph.Graph
	}{
		{"petersen", graph.Petersen()},
		{"hoffman-singleton", graph.HoffmanSingleton()},
	}
	if cfg.Quick {
		workloads = workloads[1:]
	}
	// Reduced initial budget and aggressive query/activity probabilities so
	// that live nodes actually reach the main loop at n ≤ 50 (the paper's
	// constants target n where Δ² ≫ 6000·log n; see DESIGN.md §2).
	params := randd2.Default()
	params.C0 = 0.3
	params.C1 = 0.9
	params.QueryDenominator = 1
	params.ActiveDenominator = 1
	for _, w := range workloads {
		res, err := randd2.Run(w.g, randd2.Options{
			Variant:                      randd2.VariantImproved,
			Params:                       &params,
			Seed:                         cfg.Seed,
			Parallel:                     cfg.Parallel,
			DisableDeterministicFallback: true,
		})
		if err != nil {
			return nil, err
		}
		liveAfterStep2 := w.g.NumNodes() - res.InitialColored
		phases, queries, dropped, proposals, colored := 0, 0, 0, 0, 0
		for _, s := range res.ReduceStats {
			phases += s.Phases
			queries += s.QueriesSent
			dropped += s.QueriesDropped
			proposals += s.Proposals
			colored += s.NodesColored
		}
		t.AddRow(w.name, itoa(w.g.NumNodes()), itoa(w.g.MaxDegree()), itoa(liveAfterStep2),
			itoa(phases), itoa(queries), itoa(dropped), itoa(proposals), itoa(colored),
			itoa(res.PaletteStats.LiveNodes))
	}
	t.AddNote("expected shape: queries and proposals are non-zero and a positive number of live nodes are colored by Reduce itself (the rest are finished by LearnPalette+FinishColoring)")
	t.AddNote("only the 5-cycle, Petersen and Hoffman–Singleton graphs realize the exact Δ²-dense regime; larger dense instances do not exist (Moore bound), which is why the asymptotic analysis works with near-dense 'solid' nodes instead")
	return t, nil
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}
