package harness

import (
	"fmt"
	"math"

	"d2color/internal/alg"
	// The blank import guarantees the baseline package's init registration
	// (E8 pulls "naive" out of the registry by name).
	_ "d2color/internal/baseline"
	"d2color/internal/graph"
	"d2color/internal/randd2"
	"d2color/internal/sparsity"
	"d2color/internal/sweep"
	"d2color/internal/trial"
)

// log2f returns log₂(x) clamped below at 1 (avoids division by ~0 in ratios).
func log2f(x int) float64 {
	if x < 2 {
		return 1
	}
	return math.Log2(float64(x))
}

// observeActive records the randomized algorithm's active-round count (the
// total at the moment the coloring first became complete) as the "active"
// measure of the cell.
func observeActive(_ int, res *alg.Result, rec *sweep.Recorder) {
	if r, ok := res.Details.(*randd2.Result); ok {
		rec.Add("active", float64(r.ActiveRounds))
	}
}

// gnpAvgPoint is a G(n,p) workload point with a fixed expected average
// degree; the label embeds the post-clamping effective parameters, so every
// generated row is self-describing.
func gnpAvgPoint(n int, avgDeg float64, seed int64, label func(effDeg float64) string) sweep.Point {
	return sweep.Point{Build: func() (*graph.Graph, string, error) {
		g, effDeg := graph.GNPWithAverageDegreeEffective(n, avgDeg, seed)
		return g, label(effDeg), nil
	}}
}

// runE1 measures Theorem 1.1: rounds of the improved randomized algorithm as
// n grows (fixed average degree) and as Δ grows (fixed n).
func runE1(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E1",
		Title: "Randomized d2-coloring (improved final phase)",
		Claim: "Theorem 1.1: Δ²+1 colors, O(log Δ · log n) rounds",
		Columns: []string{"workload", "n", "Δ", "palette Δ²+1", "colors used",
			"rounds (sched)", "rounds (active)", "rounds / (log Δ · log n)"},
	}
	ns := []int{256, 512, 1024, 2048, 4096}
	degs := []float64{6, 12, 24, 48}
	nFixed := 1024
	if cfg.Quick {
		ns = []int{128, 256, 512}
		degs = []float64{6, 12}
		nFixed = 384
	}
	var points []sweep.Point
	for _, n := range ns {
		points = append(points, gnpAvgPoint(n, 12, int64(cfg.Seed)+int64(n),
			func(eff float64) string { return fmt.Sprintf("n-sweep (avg deg %s)", ftoa(eff)) }))
	}
	for _, d := range degs {
		points = append(points, gnpAvgPoint(nFixed, d, int64(cfg.Seed)+int64(d*17),
			func(eff float64) string { return fmt.Sprintf("Δ-sweep (n=%d, avg deg %s)", nFixed, ftoa(eff)) }))
	}
	spec := sweep.Spec{
		Name:       "E1",
		Points:     points,
		Algorithms: []sweep.AlgAxis{{Alg: alg.MustGet("rand-improved")}},
		Engines:    cfg.engineAxis(),
		Reps:       cfg.reps(),
		Seed:       cfg.Seed,
		Observe:    observeActive,
	}
	return runGrid(cfg, spec, t, func(grid *sweep.Grid) {
		for pi := range points {
			c := grid.Cell(pi, 0, 0)
			n, delta := c.G.NumNodes(), c.G.MaxDegree()
			total := c.Mean(sweep.MeasureRounds)
			norm := total / (log2f(delta) * log2f(n))
			t.AddRow(c.Label, itoa(n), itoa(delta), itoa(delta*delta+1),
				itoa(int(c.Max(sweep.MeasureColors))),
				ftoa(total), ftoa(c.Mean("active")), ftoa(norm))
		}
		t.AddNote("workload labels carry the post-clamping effective generator parameters, so every row is self-describing")
		t.AddNote("expected shape: the normalized column stays within a small constant band as n and Δ grow")
		t.AddNote("colors used never exceed Δ²+1 (verified on every run)")
	})
}

// runE2 compares the basic final phase (Corollary 2.1) with the improved one
// (Theorem 1.1) as n grows.
func runE2(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E2",
		Title: "Final phase comparison: Reduce(c₂·log n, 1) vs LearnPalette+FinishColoring",
		Claim: "Corollary 2.1 is O(log³ n); Theorem 1.1 is O(log Δ · log n); the gap widens with n",
		Columns: []string{"n", "Δ", "basic rounds", "improved rounds", "basic/improved",
			"basic / log³ n", "improved / (log Δ · log n)"},
	}
	ns := []int{256, 512, 1024, 2048}
	if cfg.Quick {
		ns = []int{128, 256}
	}
	var points []sweep.Point
	for _, n := range ns {
		points = append(points, gnpAvgPoint(n, 12, int64(cfg.Seed)+int64(n),
			func(float64) string { return "" }))
	}
	spec := sweep.Spec{
		Name:   "E2",
		Points: points,
		Algorithms: []sweep.AlgAxis{
			{Alg: alg.MustGet("rand-basic")},
			{Alg: alg.MustGet("rand-improved")},
		},
		Engines: cfg.engineAxis(),
		Reps:    cfg.reps(),
		Seed:    cfg.Seed,
	}
	return runGrid(cfg, spec, t, func(grid *sweep.Grid) {
		for pi := range points {
			basic := grid.Cell(pi, 0, 0)
			improved := grid.Cell(pi, 1, 0)
			n, delta := basic.G.NumNodes(), basic.G.MaxDegree()
			basicTotal := basic.Mean(sweep.MeasureRounds)
			improvedTotal := improved.Mean(sweep.MeasureRounds)
			logN := log2f(n)
			t.AddRow(itoa(n), itoa(delta), ftoa(basicTotal), ftoa(improvedTotal),
				ftoa(basicTotal/math.Max(improvedTotal, 1)),
				ftoa(basicTotal/(logN*logN*logN)),
				ftoa(improvedTotal/(log2f(delta)*logN)))
		}
		t.AddNote("expected shape: the basic/improved ratio grows with n; both normalized columns stay bounded")
	})
}

// runE7 measures the final-phase machinery of Section 2.6 on dense workloads.
func runE7(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E7",
		Title: "LearnPalette correction size and FinishColoring phases",
		Claim: "Lemma 2.15: |Tv| = O(log n); Lemma 2.14: FinishColoring completes in O(log n) phases",
		Columns: []string{"workload", "n", "Δ", "live at finish", "max live per nbhd",
			"max |Tv|", "finish phases", "finish phases / log n"},
	}
	ns := []int{200, 400, 800, 1600}
	if cfg.Quick {
		ns = []int{150, 300}
	}
	// With the default number of initial trial phases the final phase often
	// receives a fully colored graph, which would make this table vacuous.
	// Shrinking the initial phase budget (C0) and the main-loop span (C1)
	// leaves live nodes for LearnPalette + FinishColoring to handle, which is
	// the machinery this experiment measures. The workloads have Δ ≈ √n so
	// that d2-neighbourhoods are a constant fraction of the palette and the
	// initial trials genuinely leave stragglers.
	params := randd2.Default()
	params.C0 = 0.2
	params.C1 = 0.05
	var points []sweep.Point
	for _, n := range ns {
		points = append(points, gnpAvgPoint(n, 0.9*math.Sqrt(float64(n)), int64(cfg.Seed)+int64(n),
			func(eff float64) string { return fmt.Sprintf("gnp(avg deg %.1f)", eff) }))
	}
	spec := sweep.Spec{
		Name:   "E7",
		Points: points,
		Algorithms: []sweep.AlgAxis{
			{Alg: randd2.Algorithm(randd2.Options{Variant: randd2.VariantImproved, Params: &params}), Reps: 1},
		},
		Engines: cfg.engineAxis(),
		Seed:    cfg.Seed,
	}
	return runGrid(cfg, spec, t, func(grid *sweep.Grid) {
		for pi := range points {
			c := grid.Cell(pi, 0, 0)
			res := c.Sample.Details.(*randd2.Result)
			n := c.G.NumNodes()
			t.AddRow(c.Label, itoa(n), itoa(c.G.MaxDegree()),
				itoa(res.PaletteStats.LiveNodes), itoa(res.PaletteStats.MaxLivePerNbr),
				itoa(res.PaletteStats.MaxMissing), itoa(res.FinishStats.Phases),
				ftoa(float64(res.FinishStats.Phases)/log2f(n)))
		}
		t.AddNote("the initial-phase budget is reduced (C0=0.2, C1=0.05) so that live nodes actually reach the final phase at simulation scale")
		t.AddNote("expected shape: FinishColoring phases grow at most logarithmically in n; |Tv| stays far below the palette size (the O(log n) bound of Lemma 2.15 assumes the ζ = O(log n) regime)")
	})
}

// runE8 compares the naive G²-simulation strawman against the improved
// randomized algorithm as Δ grows at fixed n.
func runE8(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E8",
		Title: "Naive G² simulation vs Improved-d2-Color (fixed n, growing Δ)",
		Claim: "Simulating one G² round costs Θ(Δ) rounds on G, so the naive algorithm scales linearly in Δ while the paper's algorithm scales as log Δ",
		Columns: []string{"n", "avg deg", "Δ", "naive rounds", "improved rounds", "naive/improved",
			"naive / Δ", "improved / log Δ"},
	}
	n := 1024
	degs := []float64{4, 8, 16, 32, 64, 96}
	if cfg.Quick {
		n = 256
		degs = []float64{4, 8}
	}
	var points []sweep.Point
	for _, d := range degs {
		points = append(points, gnpAvgPoint(n, d, int64(cfg.Seed)+int64(d*31), ftoa))
	}
	spec := sweep.Spec{
		Name:   "E8",
		Points: points,
		Algorithms: []sweep.AlgAxis{
			{Alg: alg.MustGet("naive"), Reps: 1},
			{Alg: alg.MustGet("rand-improved")},
		},
		Engines: cfg.engineAxis(),
		Reps:    cfg.reps(),
		Seed:    cfg.Seed,
	}
	return runGrid(cfg, spec, t, func(grid *sweep.Grid) {
		for pi := range points {
			naive := grid.Cell(pi, 0, 0)
			improved := grid.Cell(pi, 1, 0)
			delta := naive.G.MaxDegree()
			naiveRounds := naive.Mean(sweep.MeasureRounds)
			improvedTotal := improved.Mean(sweep.MeasureRounds)
			t.AddRow(itoa(n), naive.Label, itoa(delta), ftoa(naiveRounds), ftoa(improvedTotal),
				ftoa(naiveRounds/math.Max(improvedTotal, 1)),
				ftoa(naiveRounds/float64(maxI(delta, 1))),
				ftoa(improvedTotal/log2f(delta)))
		}
		t.AddNote("expected shape: naive/Δ stays roughly flat (linear-in-Δ cost) while improved/log Δ grows only slowly; the naive/improved ratio therefore grows with Δ and the crossover (naive losing outright) happens once Δ exceeds the polylog factors — extrapolate the two flat columns to locate it")
	})
}

// initialTrialsAlgorithm is the "step 2 only" slice of the randomized
// algorithm: 3·log₂ n phases of whole-palette random trials on G², the
// machinery Proposition 2.5 analyses. It is an inline algorithm instance
// rather than a registered one because only E9 measures it in isolation.
var initialTrialsAlgorithm = alg.Func{
	AlgName: "initial-trials",
	Class:   alg.Randomized,
	Palette: alg.D2Palette,
	RunFunc: func(g *graph.Graph, eng alg.Engine, seed uint64) (alg.Result, error) {
		palette := alg.D2Palette(g)
		phases := int(math.Ceil(3 * log2f(g.NumNodes())))
		res, err := trial.Run(g, trial.Config{PaletteSize: palette, Scope: trial.ScopeDistance2,
			MaxPhases: phases, Seed: seed, Parallel: eng.Parallel, Workers: eng.Workers})
		if err != nil {
			return alg.Result{}, err
		}
		return alg.Result{Coloring: res.Coloring, PaletteSize: palette, Metrics: res.Metrics}, nil
	},
}

// runE9 validates the slack-generation claim: after the initial random
// trials, sparse nodes have slack proportional to their sparsity.
func runE9(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E9",
		Title: "Slack generation from sparsity (after the initial random-trial phase)",
		Claim: "Proposition 2.5 / Observation 1: a ζ-sparse node obtains slack ≥ ζ/(4e³) w.h.p.",
		Columns: []string{"workload", "n", "Δ", "avg ζ", "avg slack", "min slack/ζ (ζ≥1)",
			"frac slack ≥ ζ/4e³", "live after step 2"},
	}
	points := []sweep.Point{
		{Label: "gnp avg8", Build: func() (*graph.Graph, string, error) {
			return graph.GNPWithAverageDegree(600, 8, int64(cfg.Seed)), "", nil
		}},
		{Label: "gnp avg16", Build: func() (*graph.Graph, string, error) {
			return graph.GNPWithAverageDegree(600, 16, int64(cfg.Seed)+1), "", nil
		}},
		{Label: "cliquechain 10×10", Build: func() (*graph.Graph, string, error) {
			return graph.CliqueChain(10, 10, 0), "", nil
		}},
		{Label: "unitdisk", Build: func() (*graph.Graph, string, error) {
			return graph.UnitDisk(400, 0.12, int64(cfg.Seed)+2), "", nil
		}},
	}
	if cfg.Quick {
		points = points[:2]
	}
	spec := sweep.Spec{
		Name:       "E9",
		Points:     points,
		Algorithms: []sweep.AlgAxis{{Alg: initialTrialsAlgorithm, Reps: 1}},
		Engines:    cfg.engineAxis(),
		Seed:       cfg.Seed,
	}
	const fourECubed = 4 * math.E * math.E * math.E
	return runGrid(cfg, spec, t, func(grid *sweep.Grid) {
		for pi := range points {
			c := grid.Cell(pi, 0, 0)
			g, col := c.G, c.Sample.Coloring
			delta := g.MaxDegree()
			palette := delta*delta + 1
			d2 := graph.NewDist2View(g)
			zetas := sparsity.AllSparsities(d2, delta)
			var sumZ, sumSlack, minRatio float64
			minRatio = math.Inf(1)
			okCount, constrained := 0, 0
			live := 0
			for v := 0; v < g.NumNodes(); v++ {
				z := zetas[v]
				s := float64(sparsity.Slack(d2, col, palette, graph.NodeID(v)))
				sumZ += z
				sumSlack += s
				if !col.IsColored(graph.NodeID(v)) {
					live++
				}
				if z >= 1 {
					constrained++
					if ratio := s / z; ratio < minRatio {
						minRatio = ratio
					}
					if s >= z/fourECubed {
						okCount++
					}
				}
			}
			n := float64(g.NumNodes())
			frac := 1.0
			if constrained > 0 {
				frac = float64(okCount) / float64(constrained)
			}
			if math.IsInf(minRatio, 1) {
				minRatio = 0
			}
			t.AddRow(c.Label, itoa(g.NumNodes()), itoa(delta), ftoa(sumZ/n), ftoa(sumSlack/n),
				ftoa(minRatio), ftoa(frac), itoa(live))
		}
		t.AddNote("expected shape: the fraction of nodes with slack ≥ ζ/(4e³) is ≈ 1 on every workload")
	})
}

// runE10 exercises the Reduce machinery (queries, helper trials, forwarded
// proposals) in the zero-sparsity regime it was designed for: Moore graphs of
// diameter 2, whose squares are complete graphs.
func runE10(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E10",
		Title: "Reduce machinery in the dense (zero-sparsity) regime",
		Claim: "Section 2.1/2.5: on Δ²-dense neighbourhoods the colored nodes' assistance (queries → helper trials → proposals) colours the remaining live nodes",
		Columns: []string{"workload", "n", "Δ", "live after step 2", "reduce phases",
			"queries sent", "queries dropped", "proposals", "colored by reduce", "live at finish"},
	}
	points := []sweep.Point{
		{Label: "petersen", Build: func() (*graph.Graph, string, error) { return graph.Petersen(), "", nil }},
		{Label: "hoffman-singleton", Build: func() (*graph.Graph, string, error) { return graph.HoffmanSingleton(), "", nil }},
	}
	if cfg.Quick {
		points = points[1:]
	}
	// Reduced initial budget and aggressive query/activity probabilities so
	// that live nodes actually reach the main loop at n ≤ 50 (the paper's
	// constants target n where Δ² ≫ 6000·log n; see DESIGN.md §2).
	params := randd2.Default()
	params.C0 = 0.3
	params.C1 = 0.9
	params.QueryDenominator = 1
	params.ActiveDenominator = 1
	spec := sweep.Spec{
		Name:   "E10",
		Points: points,
		Algorithms: []sweep.AlgAxis{
			{Alg: randd2.Algorithm(randd2.Options{
				Variant:                      randd2.VariantImproved,
				Params:                       &params,
				DisableDeterministicFallback: true,
			}), Reps: 1},
		},
		Engines: cfg.engineAxis(),
		Seed:    cfg.Seed,
	}
	return runGrid(cfg, spec, t, func(grid *sweep.Grid) {
		for pi := range points {
			c := grid.Cell(pi, 0, 0)
			res := c.Sample.Details.(*randd2.Result)
			liveAfterStep2 := c.G.NumNodes() - res.InitialColored
			phases, queries, dropped, proposals, colored := 0, 0, 0, 0, 0
			for _, s := range res.ReduceStats {
				phases += s.Phases
				queries += s.QueriesSent
				dropped += s.QueriesDropped
				proposals += s.Proposals
				colored += s.NodesColored
			}
			t.AddRow(c.Label, itoa(c.G.NumNodes()), itoa(c.G.MaxDegree()), itoa(liveAfterStep2),
				itoa(phases), itoa(queries), itoa(dropped), itoa(proposals), itoa(colored),
				itoa(res.PaletteStats.LiveNodes))
		}
		t.AddNote("expected shape: queries and proposals are non-zero and a positive number of live nodes are colored by Reduce itself (the rest are finished by LearnPalette+FinishColoring)")
		t.AddNote("only the 5-cycle, Petersen and Hoffman–Singleton graphs realize the exact Δ²-dense regime; larger dense instances do not exist (Moore bound), which is why the asymptotic analysis works with near-dense 'solid' nodes instead")
	})
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}
