package graph

// Moore-type graphs: degree-Δ graphs of diameter 2 on Δ²+1 vertices. Their
// squares are complete graphs, so every distance-2 neighbourhood has exactly
// Δ² nodes and zero sparsity — the densest possible regime for distance-2
// coloring and the regime in which the paper's Reduce machinery (and its
// similarity graphs H, Ĥ) is actually load-bearing. Only three non-trivial
// Moore graphs of diameter 2 exist: the 5-cycle, the Petersen graph (Δ = 3)
// and the Hoffman–Singleton graph (Δ = 7); the latter two are provided here
// as worst-case workloads for tests and experiments.

// Petersen returns the Petersen graph: 10 vertices, 3-regular, girth 5,
// diameter 2. Its square is K₁₀.
func Petersen() *Graph {
	b := NewBuilder(10)
	for i := 0; i < 5; i++ {
		_ = b.AddEdge(NodeID(i), NodeID((i+1)%5))     // outer 5-cycle
		_ = b.AddEdge(NodeID(i), NodeID(5+i))         // spokes
		_ = b.AddEdge(NodeID(5+i), NodeID(5+(i+2)%5)) // inner pentagram
	}
	return b.Build()
}

// HoffmanSingleton returns the Hoffman–Singleton graph: 50 vertices,
// 7-regular, girth 5, diameter 2. Its square is K₅₀, i.e. every node has
// exactly Δ² = 49 distance-2 neighbours and sparsity 0.
//
// Construction (standard): five pentagons P_h (vertices p_{h,j}, edges
// j ~ j±1 mod 5) and five pentagrams Q_i (vertices q_{i,j}, edges
// j ~ j±2 mod 5), plus the join p_{h,j} ~ q_{i, h·i+j mod 5}.
func HoffmanSingleton() *Graph {
	b := NewBuilder(50)
	p := func(h, j int) NodeID { return NodeID(5*h + (j%5+5)%5) }
	q := func(i, j int) NodeID { return NodeID(25 + 5*i + (j%5+5)%5) }
	for h := 0; h < 5; h++ {
		for j := 0; j < 5; j++ {
			_ = b.AddEdge(p(h, j), p(h, j+1)) // pentagon
			_ = b.AddEdge(q(h, j), q(h, j+2)) // pentagram
		}
	}
	for h := 0; h < 5; h++ {
		for i := 0; i < 5; i++ {
			for j := 0; j < 5; j++ {
				_ = b.AddEdge(p(h, j), q(i, h*i+j))
			}
		}
	}
	return b.Build()
}
