package graph

import "math/bits"

// ResidencyEstimate is the closed-form resident-bytes estimate of simulating
// on an (n, m) graph, sized against the actual layouts of the three resident
// tiers (DESIGN §11): the CSR with its reverse edge index (4-byte offsets,
// targets and reverse slots), the CONGEST engine's message plane plus inbox
// arena (a 24-byte inline Message and 8 bytes of count/generation per
// directed edge, a 24-byte inbox header per node), and a bit-packed
// distance-2 coloring under the (Δ̄+1)² palette proxy, where Δ̄ is the
// average degree. It is shared by `graphgen -estimate` and the serving
// plane's session-cache admission budget.
type ResidencyEstimate struct {
	CSRBytes      float64 // CSR + reverse edge index
	PlaneBytes    float64 // message plane + inbox arena
	ColoringBytes float64 // bit-packed coloring under the palette proxy
	PackedBits    int     // bits per node of the packed coloring
}

// Total is the sum of the three tiers.
func (e ResidencyEstimate) Total() float64 {
	return e.CSRBytes + e.PlaneBytes + e.ColoringBytes
}

// EstimateResidency computes the closed-form residency estimate for an
// (n, m)-graph simulation. Heavy-tailed degree distributions need a few more
// bits per node than the average-degree palette proxy suggests.
func EstimateResidency(n, m float64) ResidencyEstimate {
	slots := 2 * m
	csr := 4*(n+1) + 4*slots          // offsets + targets
	csr += 4*(n+1) + 4*slots          // edge index: slot offsets + reverse slots
	plane := (24+4+4)*slots + 4*(n+1) // inline Message + count + generation per slot
	plane += 24*slots + 24*n          // inbox arena + per-node headers
	avgDeg := 0.0
	if n > 0 {
		avgDeg = 2 * m / n
	}
	palette := (avgDeg + 1) * (avgDeg + 1)
	packedBits := bits.Len64(uint64(palette) + 1)
	return ResidencyEstimate{
		CSRBytes:      csr,
		PlaneBytes:    plane,
		ColoringBytes: n * float64(packedBits) / 8,
		PackedBits:    packedBits,
	}
}
