package graph

import (
	"errors"
	"testing"
)

// TestBuilderOverflowGuardNodes exercises the n ≥ 2³¹ arm of the 32-bit
// node-plane guard: a builder over more than MaxNodes nodes is poisoned at
// construction — AddEdge and Err report ErrTooManyNodes, and Build panics
// with it instead of silently truncating node IDs.
func TestBuilderOverflowGuardNodes(t *testing.T) {
	b := NewBuilder(MaxNodes + 1)
	if err := b.Err(); !errors.Is(err, ErrTooManyNodes) {
		t.Fatalf("Err() = %v, want ErrTooManyNodes", err)
	}
	if err := b.AddEdge(0, 1); !errors.Is(err, ErrTooManyNodes) {
		t.Fatalf("AddEdge = %v, want ErrTooManyNodes", err)
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Build on a poisoned builder should panic")
		}
		err, ok := r.(error)
		if !ok || !errors.Is(err, ErrTooManyNodes) {
			t.Fatalf("Build panicked with %v, want ErrTooManyNodes", r)
		}
	}()
	b.Build()
}

// TestBuilderOverflowGuardSlots exercises the 2m ≥ 2³¹ arm: once the
// appended directed slot count reaches the 32-bit limit, AddEdge fails with
// the sticky ErrTooManyEdges. The counter is advanced directly (white box) —
// actually appending 2³⁰ edges would need 8 GiB.
func TestBuilderOverflowGuardSlots(t *testing.T) {
	b := NewBuilder(4)
	if err := b.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	b.slots = maxEdgeSlots - 1 // one slot left: the next edge needs two
	if err := b.AddEdge(2, 3); !errors.Is(err, ErrTooManyEdges) {
		t.Fatalf("AddEdge at the slot limit = %v, want ErrTooManyEdges", err)
	}
	if err := b.Err(); !errors.Is(err, ErrTooManyEdges) {
		t.Fatalf("Err() = %v, want sticky ErrTooManyEdges", err)
	}
	// Sticky: later well-formed adds keep failing rather than corrupting the
	// already-inconsistent counts.
	if err := b.AddEdge(0, 2); !errors.Is(err, ErrTooManyEdges) {
		t.Fatalf("AddEdge after overflow = %v, want ErrTooManyEdges", err)
	}
}

// TestBuilderChunkBoundaries drives the chunked edge store across many tiny
// chunks — duplicates, both orientations, appends straddling chunk seams —
// and checks the finished CSR is identical to the single-chunk build.
func TestBuilderChunkBoundaries(t *testing.T) {
	const n = 37
	var edges []Edge
	for u := 0; u < n; u++ {
		for k := 1; k <= 4; k++ {
			v := (u + k*5 + 1) % n
			if u != v {
				edges = append(edges, Edge{U: NodeID(u), V: NodeID(v)})
			}
		}
	}
	// Duplicates in both orientations must still collapse.
	edges = append(edges, edges[3], Edge{U: edges[5].V, V: edges[5].U})

	want, err := FromEdges(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	for _, chunkEdges := range []int{1, 2, 3, 7, len(edges) + 1} {
		b := NewBuilder(n)
		b.chunkEdges = chunkEdges
		for _, e := range edges {
			if err := b.AddEdge(e.U, e.V); err != nil {
				t.Fatal(err)
			}
		}
		if len(edges) > chunkEdges && len(b.chunks) < 2 {
			t.Fatalf("chunkEdges=%d: expected multiple chunks, got %d", chunkEdges, len(b.chunks))
		}
		g := b.Build()
		if g.NumNodes() != want.NumNodes() || g.NumEdges() != want.NumEdges() || g.MaxDegree() != want.MaxDegree() {
			t.Fatalf("chunkEdges=%d: got %v, want %v", chunkEdges, g, want)
		}
		for u := 0; u < n; u++ {
			got, exp := g.Neighbors(NodeID(u)), want.Neighbors(NodeID(u))
			if len(got) != len(exp) {
				t.Fatalf("chunkEdges=%d: node %d has %d neighbors, want %d", chunkEdges, u, len(got), len(exp))
			}
			for i := range got {
				if got[i] != exp[i] {
					t.Fatalf("chunkEdges=%d: node %d neighbor %d = %d, want %d", chunkEdges, u, i, got[i], exp[i])
				}
			}
		}
	}
}

// TestBuilderBuildConsumesAndReusable pins the chunked builder's contract:
// Build consumes the pending edges (the chunk store is released during the
// scatter), leaving an empty builder that can assemble a fresh graph.
func TestBuilderBuildConsumesAndReusable(t *testing.T) {
	b := NewBuilder(5)
	mustAdd := func(u, v NodeID) {
		t.Helper()
		if err := b.AddEdge(u, v); err != nil {
			t.Fatal(err)
		}
	}
	mustAdd(0, 1)
	mustAdd(1, 2)
	g1 := b.Build()
	if g1.NumEdges() != 2 {
		t.Fatalf("first build: %d edges, want 2", g1.NumEdges())
	}
	if b.chunks != nil || b.slots != 0 {
		t.Fatal("Build should release the chunk store")
	}
	if g2 := b.Build(); g2.NumEdges() != 0 || g2.NumNodes() != 5 {
		t.Fatalf("build after consume: %v, want 5 nodes 0 edges", g2)
	}
	mustAdd(3, 4)
	g3 := b.Build()
	if g3.NumEdges() != 1 || g3.Degree(3) != 1 || g3.Degree(0) != 0 {
		t.Fatalf("reused builder: %v", g3)
	}
	// The first graph must be unaffected by the reuse.
	if g1.NumEdges() != 2 || g1.Degree(0) != 1 {
		t.Fatalf("earlier graph mutated by builder reuse: %v", g1)
	}
}
