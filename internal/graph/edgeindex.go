package graph

import "sort"

// EdgeIndex is a CSR (compressed sparse row) view of a graph's directed edge
// slots. Every undirected edge {u, v} contributes two directed slots, (u→v)
// and (v→u); a slot is a stable dense integer that identifies the directed
// edge for the lifetime of the graph. The CONGEST simulator keys its
// preallocated per-edge message buffers and bandwidth accounting by slot, so
// the per-round hot path never consults a map.
//
// The index is built lazily, once per graph (see Graph.EdgeIndex), and is
// immutable afterwards.
type EdgeIndex struct {
	// Offsets has length NumNodes()+1; the out-slots of node u are
	// Offsets[u] .. Offsets[u+1]-1, in ascending order of target.
	Offsets []int32
	// Targets[e] is the head of directed edge slot e. Within one source node
	// the targets appear in the graph's (sorted) neighbor order, so the i-th
	// neighbor of u owns slot Offsets[u]+i.
	Targets []NodeID
	// Rev[e] is the slot of the reverse directed edge: if slot e is (u→v),
	// Rev[e] is (v→u). Rev is an involution: Rev[Rev[e]] == e.
	Rev []int32
}

// maxEdgeSlots bounds the directed slot count so slots fit in int32. 2^31-1
// slots of message buffers is far beyond what the simulator can hold in
// memory anyway.
const maxEdgeSlots = 1<<31 - 1

// EdgeIndex returns the CSR edge index of g, building it on first use. The
// returned index is shared and must not be modified. Safe for concurrent use.
func (g *Graph) EdgeIndex() *EdgeIndex {
	g.ixOnce.Do(func() { g.ix = buildEdgeIndex(g) })
	return g.ix
}

func buildEdgeIndex(g *Graph) *EdgeIndex {
	// The graph is already CSR-native, so the index aliases the graph's
	// (immutable) offset and target arrays and only computes Rev.
	ix := &EdgeIndex{
		Offsets: g.off,
		Targets: g.tgt,
		Rev:     make([]int32, len(g.tgt)),
	}
	for u := 0; u < g.n; u++ {
		base := ix.Offsets[u]
		for i, v := range g.Neighbors(NodeID(u)) {
			// The reverse slot is u's position in v's sorted neighbor list.
			lst := g.Neighbors(v)
			j := sort.Search(len(lst), func(k int) bool { return lst[k] >= NodeID(u) })
			ix.Rev[base+int32(i)] = ix.Offsets[v] + int32(j)
		}
	}
	return ix
}

// NumSlots returns the number of directed edge slots (2m).
func (ix *EdgeIndex) NumSlots() int { return len(ix.Targets) }

// OutSlot returns the slot of the directed edge from u to its i-th neighbor
// (in the graph's sorted neighbor order). i is not range-checked.
func (ix *EdgeIndex) OutSlot(u NodeID, i int) int32 { return ix.Offsets[u] + int32(i) }

// Slot returns the slot of the directed edge (u→v) and whether it exists.
// Runs in O(log deg(u)).
func (ix *EdgeIndex) Slot(u, v NodeID) (int32, bool) {
	if int(u) < 0 || int(u) >= len(ix.Offsets)-1 {
		return -1, false
	}
	lo, hi := ix.Offsets[u], ix.Offsets[u+1]
	t := ix.Targets[lo:hi]
	j := sort.Search(len(t), func(k int) bool { return t[k] >= v })
	if j < len(t) && t[j] == v {
		return lo + int32(j), true
	}
	return -1, false
}
