// Package graph provides the undirected graph substrate used by every
// algorithm in this repository: a CSR-native adjacency structure, streaming
// distance-2 views (the square graph G² is never materialized on the hot
// paths), workload generators and basic structural queries.
//
// Graphs are simple (no self-loops, no parallel edges) and undirected. Nodes
// are identified by dense integer indices 0..n-1; the CONGEST simulator
// assigns O(log n)-bit identifiers separately (see internal/congest).
package graph

import (
	"errors"
	"fmt"
	"slices"
	"sort"
	"sync"
)

// NodeID identifies a node of a Graph. IDs are dense: 0..NumNodes()-1.
type NodeID int

// Edge is an undirected edge between two nodes. By convention U < V in
// normalized form, but Edge values produced by callers are normalized lazily.
type Edge struct {
	U, V NodeID
}

// Normalize returns the edge with endpoints ordered so that U <= V.
func (e Edge) Normalize() Edge {
	if e.U > e.V {
		return Edge{U: e.V, V: e.U}
	}
	return e
}

// Graph is an immutable simple undirected graph with dense node IDs, stored
// in CSR (compressed sparse row) form: one offsets array of length n+1 and
// one flat targets array of length 2m holding every node's sorted neighbor
// list back to back. Construct one with a Builder or one of the generators in
// this package.
type Graph struct {
	n        int
	off      []int32  // CSR offsets; neighbors of u are tgt[off[u]:off[u+1]]
	tgt      []NodeID // flat neighbor array, sorted within each node's range
	numEdges int
	maxDeg   int

	// ix is the lazily built CSR edge index (see EdgeIndex).
	ixOnce sync.Once
	ix     *EdgeIndex
}

// Errors returned by graph construction and queries.
var (
	ErrSelfLoop       = errors.New("graph: self-loop edges are not allowed")
	ErrNodeOutOfRange = errors.New("graph: node index out of range")
	ErrDuplicateEdge  = errors.New("graph: duplicate edge")
)

// Builder incrementally assembles a Graph. Edges are appended to a flat pair
// list and finalized by Build with a counting-sort into CSR followed by a
// per-node sort and dedupe — O(m log Δ) time, zero maps. The zero value is
// not usable; use NewBuilder.
type Builder struct {
	n      int
	us, vs []NodeID // appended endpoint pairs; duplicates collapse at Build
}

// NewBuilder returns a Builder for a graph with n nodes and no edges.
func NewBuilder(n int) *Builder {
	if n < 0 {
		n = 0
	}
	return &Builder{n: n}
}

// Grow hints that about m further edges will be added, preallocating the
// internal pair lists. Generators with known edge counts use it to emit the
// CSR arrays without intermediate reallocation.
func (b *Builder) Grow(m int) {
	if m <= 0 {
		return
	}
	if need := len(b.us) + m; need > cap(b.us) {
		us := make([]NodeID, len(b.us), need)
		copy(us, b.us)
		b.us = us
		vs := make([]NodeID, len(b.vs), need)
		copy(vs, b.vs)
		b.vs = vs
	}
}

// NumNodes returns the number of nodes the builder was created with.
func (b *Builder) NumNodes() int { return b.n }

// AddEdge adds the undirected edge {u, v}. It returns an error for self-loops
// and out-of-range endpoints. Adding an existing edge is a no-op (duplicates
// are collapsed by Build).
func (b *Builder) AddEdge(u, v NodeID) error {
	if u == v {
		return fmt.Errorf("%w: {%d,%d}", ErrSelfLoop, u, v)
	}
	if int(u) < 0 || int(u) >= b.n || int(v) < 0 || int(v) >= b.n {
		return fmt.Errorf("%w: {%d,%d} with n=%d", ErrNodeOutOfRange, u, v, b.n)
	}
	b.us = append(b.us, u)
	b.vs = append(b.vs, v)
	return nil
}

// HasEdge reports whether the edge {u, v} has been added. It scans the pair
// list (O(edges added)); it exists for tests and small fixtures, not for hot
// paths.
func (b *Builder) HasEdge(u, v NodeID) bool {
	if int(u) < 0 || int(u) >= b.n || int(v) < 0 || int(v) >= b.n {
		return false
	}
	for i := range b.us {
		if (b.us[i] == u && b.vs[i] == v) || (b.us[i] == v && b.vs[i] == u) {
			return true
		}
	}
	return false
}

// Build finalizes the builder into an immutable Graph. Neighbor lists are
// sorted so that iteration order is deterministic; duplicate edges collapse.
// The builder stays usable (Build does not consume the pair list).
func (b *Builder) Build() *Graph {
	// Counting sort of the directed slots by source node.
	deg := make([]int32, b.n+1)
	for i := range b.us {
		deg[b.us[i]+1]++
		deg[b.vs[i]+1]++
	}
	slots := 0
	for i := 1; i <= b.n; i++ {
		slots += int(deg[i])
		if slots > maxEdgeSlots {
			panic("graph: too many directed edges for a CSR graph")
		}
		deg[i] += deg[i-1]
	}
	off := deg // deg now holds the offsets; reuse the allocation
	tgt := make([]NodeID, slots)
	pos := make([]int32, b.n)
	for i := 0; i < b.n; i++ {
		pos[i] = off[i]
	}
	for i := range b.us {
		u, v := b.us[i], b.vs[i]
		tgt[pos[u]] = v
		pos[u]++
		tgt[pos[v]] = u
		pos[v]++
	}
	// Per-node sort + in-place dedupe, compacting the flat array as we go.
	w := int32(0)
	maxDeg := 0
	prevEnd := int32(0)
	for u := 0; u < b.n; u++ {
		lo, hi := prevEnd, off[u+1]
		prevEnd = hi
		lst := tgt[lo:hi]
		slices.Sort(lst)
		start := w
		for i, v := range lst {
			if i > 0 && v == lst[i-1] {
				continue
			}
			tgt[w] = v
			w++
		}
		off[u] = start
		if d := int(w - start); d > maxDeg {
			maxDeg = d
		}
	}
	off[b.n] = w
	// Shift offsets: off[u] currently holds the start of u; that is already
	// the CSR convention, nothing further to do.
	return &Graph{n: b.n, off: off, tgt: tgt[:w:w], numEdges: int(w) / 2, maxDeg: maxDeg}
}

// fromCSR wraps prebuilt CSR arrays into a Graph. The caller guarantees that
// every node's range of tgt is sorted, duplicate- and self-loop-free, and
// symmetric (v appears under u iff u appears under v).
func fromCSR(n int, off []int32, tgt []NodeID) *Graph {
	maxDeg := 0
	for u := 0; u < n; u++ {
		if d := int(off[u+1] - off[u]); d > maxDeg {
			maxDeg = d
		}
	}
	return &Graph{n: n, off: off, tgt: tgt, numEdges: len(tgt) / 2, maxDeg: maxDeg}
}

// FromEdges builds a graph with n nodes and the given edges. Duplicate edges
// are collapsed; self-loops and out-of-range endpoints cause an error.
func FromEdges(n int, edges []Edge) (*Graph, error) {
	b := NewBuilder(n)
	b.Grow(len(edges))
	for _, e := range edges {
		if err := b.AddEdge(e.U, e.V); err != nil {
			return nil, err
		}
	}
	return b.Build(), nil
}

// MustFromEdges is FromEdges that panics on error. It is intended for tests
// and package-internal fixtures with statically known-good input.
func MustFromEdges(n int, edges []Edge) *Graph {
	g, err := FromEdges(n, edges)
	if err != nil {
		panic(err)
	}
	return g
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return g.n }

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int { return g.numEdges }

// MaxDegree returns Δ, the maximum degree over all nodes (0 for empty graphs).
func (g *Graph) MaxDegree() int { return g.maxDeg }

// Degree returns the degree of node u.
func (g *Graph) Degree(u NodeID) int { return int(g.off[u+1] - g.off[u]) }

// Neighbors returns the neighbor list of u (a subslice of the CSR target
// array, sorted ascending). The returned slice is owned by the graph and must
// not be modified; copy it if mutation is needed.
func (g *Graph) Neighbors(u NodeID) []NodeID { return g.tgt[g.off[u]:g.off[u+1]] }

// NeighborsCopy returns a fresh copy of the neighbor list of u.
func (g *Graph) NeighborsCopy(u NodeID) []NodeID {
	out := make([]NodeID, g.Degree(u))
	copy(out, g.Neighbors(u))
	return out
}

// HasEdge reports whether {u, v} is an edge. Runs in O(log deg(u)).
func (g *Graph) HasEdge(u, v NodeID) bool {
	if int(u) < 0 || int(u) >= g.n || int(v) < 0 || int(v) >= g.n {
		return false
	}
	lst := g.Neighbors(u)
	i := sort.Search(len(lst), func(i int) bool { return lst[i] >= v })
	return i < len(lst) && lst[i] == v
}

// Edges returns all edges in normalized (U < V) order, sorted.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.numEdges)
	for u := 0; u < g.n; u++ {
		for _, v := range g.Neighbors(NodeID(u)) {
			if NodeID(u) < v {
				out = append(out, Edge{U: NodeID(u), V: v})
			}
		}
	}
	return out
}

// Nodes returns the node IDs 0..n-1.
func (g *Graph) Nodes() []NodeID {
	out := make([]NodeID, g.n)
	for i := range out {
		out[i] = NodeID(i)
	}
	return out
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	off := make([]int32, len(g.off))
	copy(off, g.off)
	tgt := make([]NodeID, len(g.tgt))
	copy(tgt, g.tgt)
	return &Graph{n: g.n, off: off, tgt: tgt, numEdges: g.numEdges, maxDeg: g.maxDeg}
}

// InducedSubgraph returns the subgraph induced by keep (nodes with keep[v]
// true), along with a mapping from new dense IDs to original IDs. Nodes not
// kept are dropped together with their incident edges.
func (g *Graph) InducedSubgraph(keep []bool) (*Graph, []NodeID) {
	if len(keep) != g.n {
		panic(fmt.Sprintf("graph: keep mask has length %d, want %d", len(keep), g.n))
	}
	oldToNew := make([]int32, g.n)
	newToOld := make([]NodeID, 0, g.n)
	for v := 0; v < g.n; v++ {
		if keep[v] {
			oldToNew[v] = int32(len(newToOld))
			newToOld = append(newToOld, NodeID(v))
		} else {
			oldToNew[v] = -1
		}
	}
	// Emit the sub-CSR directly: the source lists are sorted and the kept
	// relabelling is monotone, so each new list stays sorted without resorting.
	nn := len(newToOld)
	off := make([]int32, nn+1)
	for i, orig := range newToOld {
		cnt := int32(0)
		for _, v := range g.Neighbors(orig) {
			if keep[v] {
				cnt++
			}
		}
		off[i+1] = off[i] + cnt
	}
	tgt := make([]NodeID, off[nn])
	w := int32(0)
	for _, orig := range newToOld {
		for _, v := range g.Neighbors(orig) {
			if keep[v] {
				tgt[w] = NodeID(oldToNew[v])
				w++
			}
		}
	}
	return fromCSR(nn, off, tgt), newToOld
}

// DegreeHistogram returns a map from degree value to the number of nodes with
// that degree.
func (g *Graph) DegreeHistogram() map[int]int {
	h := make(map[int]int)
	for u := 0; u < g.n; u++ {
		h[g.Degree(NodeID(u))]++
	}
	return h
}

// AverageDegree returns the average degree 2m/n (0 for the empty graph).
func (g *Graph) AverageDegree() float64 {
	if g.n == 0 {
		return 0
	}
	return 2 * float64(g.numEdges) / float64(g.n)
}

// String returns a short human-readable summary of the graph.
func (g *Graph) String() string {
	return fmt.Sprintf("Graph(n=%d, m=%d, Δ=%d)", g.n, g.numEdges, g.maxDeg)
}
