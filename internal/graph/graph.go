// Package graph provides the undirected graph substrate used by every
// algorithm in this repository: a CSR-native adjacency structure, streaming
// distance-2 views (the square graph G² is never materialized on the hot
// paths), workload generators and basic structural queries.
//
// Graphs are simple (no self-loops, no parallel edges) and undirected. Nodes
// are identified by dense integer indices 0..n-1; the CONGEST simulator
// assigns O(log n)-bit identifiers separately (see internal/congest).
package graph

import (
	"errors"
	"fmt"
	"slices"
	"sort"
	"sync"
)

// NodeID identifies a node of a Graph. IDs are dense: 0..NumNodes()-1.
//
// NodeID is 32 bits wide: every node-indexed array of the hot path — the CSR
// target array, the edge index's reverse slots, the CONGEST message plane's
// endpoint fields — stores node identifiers at half the width of the previous
// int representation, which is what lets 10⁷-node simulations fit in
// commodity memory. Graphs are bounded by MaxNodes nodes and maxEdgeSlots
// directed edge slots; the Builder enforces both bounds once, at graph
// assembly, so no other layer needs a range check.
type NodeID int32

// MaxNodes is the largest node count a Graph supports: node IDs, CSR offsets
// and directed edge slots are all 32-bit values.
const MaxNodes = 1<<31 - 1

// Edge is an undirected edge between two nodes. By convention U < V in
// normalized form, but Edge values produced by callers are normalized lazily.
type Edge struct {
	U, V NodeID
}

// Normalize returns the edge with endpoints ordered so that U <= V.
func (e Edge) Normalize() Edge {
	if e.U > e.V {
		return Edge{U: e.V, V: e.U}
	}
	return e
}

// Graph is an immutable simple undirected graph with dense node IDs, stored
// in CSR (compressed sparse row) form: one offsets array of length n+1 and
// one flat targets array of length 2m holding every node's sorted neighbor
// list back to back. Construct one with a Builder or one of the generators in
// this package.
type Graph struct {
	n        int
	off      []int32  // CSR offsets; neighbors of u are tgt[off[u]:off[u+1]]
	tgt      []NodeID // flat neighbor array, sorted within each node's range
	numEdges int
	maxDeg   int

	// ix is the lazily built CSR edge index (see EdgeIndex).
	ixOnce sync.Once
	ix     *EdgeIndex
}

// Errors returned by graph construction and queries.
var (
	ErrSelfLoop       = errors.New("graph: self-loop edges are not allowed")
	ErrNodeOutOfRange = errors.New("graph: node index out of range")
	ErrDuplicateEdge  = errors.New("graph: duplicate edge")
	// ErrTooManyNodes and ErrTooManyEdges are the 32-bit node-plane overflow
	// guards: they fire once, at graph assembly, when a graph would exceed
	// MaxNodes nodes or maxEdgeSlots directed edge slots. Every downstream
	// structure (CSR targets, edge-index slots, message endpoints) relies on
	// this single guard to store node and slot indices in 32 bits.
	ErrTooManyNodes = errors.New("graph: node count exceeds the 32-bit node plane (MaxNodes)")
	ErrTooManyEdges = errors.New("graph: directed edge slots exceed the 32-bit node plane")
)

// builderChunkEdges is the number of edges one builder chunk holds (8 MiB of
// endpoint pairs). Chunks bound the builder's transient memory shape: Build
// releases each chunk right after scattering it into the CSR arrays, so
// finalization never holds the full unsorted edge list and the finished CSR
// simultaneously.
const builderChunkEdges = 1 << 20

// Builder incrementally assembles a Graph. Appended edges are stored once
// (8 bytes per edge) in fixed-size chunks, and per-node slot counts are
// maintained incrementally, so Build can allocate the CSR arrays up front and
// scatter chunk by chunk — releasing every chunk as soon as it is consumed —
// followed by a per-node sort and dedupe: O(m log Δ) time, zero maps, and a
// peak transient of one edge-pair copy instead of the former two. The zero
// value is not usable; use NewBuilder.
type Builder struct {
	n      int
	chunks [][]int32 // appended endpoint pairs, interleaved u,v; released by Build
	deg    []int32   // deg[i+1] counts node i's directed slots (duplicates included); nil until first AddEdge
	slots  int       // total directed slots appended (2 per edge, duplicates included)
	err    error     // sticky overflow state; AddEdge reports it, Build panics on it

	// chunkEdges overrides builderChunkEdges in tests exercising chunk
	// boundaries; 0 means the default.
	chunkEdges int
}

// NewBuilder returns a Builder for a graph with n nodes and no edges.
// A node count beyond MaxNodes poisons the builder: AddEdge returns
// ErrTooManyNodes and Build panics with it.
func NewBuilder(n int) *Builder {
	if n < 0 {
		n = 0
	}
	b := &Builder{n: n}
	if n > MaxNodes {
		b.err = fmt.Errorf("%w: n=%d > %d", ErrTooManyNodes, n, MaxNodes)
	}
	return b
}

// chunkCap returns the per-chunk edge capacity.
func (b *Builder) chunkCap() int {
	if b.chunkEdges > 0 {
		return b.chunkEdges
	}
	return builderChunkEdges
}

// Grow hints that about m further edges will be added. With the chunked edge
// store appends are already amortized O(1) and bounded at one chunk of
// overallocation; Grow pre-sizes the tail chunk (up to the chunk capacity) so
// generators with known edge counts below it avoid intermediate reallocation
// entirely.
func (b *Builder) Grow(m int) {
	if m <= 0 || b.err != nil {
		return
	}
	if m > b.chunkCap() {
		m = b.chunkCap()
	}
	if len(b.chunks) == 0 {
		b.chunks = append(b.chunks, make([]int32, 0, 2*m))
		return
	}
	tail := b.chunks[len(b.chunks)-1]
	if need := len(tail) + 2*m; need <= 2*b.chunkCap() && need > cap(tail) {
		grown := make([]int32, len(tail), need)
		copy(grown, tail)
		b.chunks[len(b.chunks)-1] = grown
	}
}

// NumNodes returns the number of nodes the builder was created with.
func (b *Builder) NumNodes() int { return b.n }

// Err returns the builder's sticky overflow error, if any: ErrTooManyNodes
// from construction or ErrTooManyEdges once the appended edges exceed the
// 32-bit slot space.
func (b *Builder) Err() error { return b.err }

// AddEdge adds the undirected edge {u, v}. It returns an error for
// self-loops, out-of-range endpoints, and — sticky, see Err — when the graph
// would exceed the 32-bit node plane. Adding an existing edge is a no-op
// (duplicates are collapsed by Build).
func (b *Builder) AddEdge(u, v NodeID) error {
	if b.err != nil {
		return b.err
	}
	if u == v {
		return fmt.Errorf("%w: {%d,%d}", ErrSelfLoop, u, v)
	}
	if int(u) < 0 || int(u) >= b.n || int(v) < 0 || int(v) >= b.n {
		return fmt.Errorf("%w: {%d,%d} with n=%d", ErrNodeOutOfRange, u, v, b.n)
	}
	if b.slots+2 > maxEdgeSlots {
		b.err = fmt.Errorf("%w: %d directed slots > %d", ErrTooManyEdges, b.slots+2, maxEdgeSlots)
		return b.err
	}
	if b.deg == nil {
		b.deg = make([]int32, b.n+1)
	}
	// Chunks grow by append (small graphs never pay a full chunk) and are
	// sealed at the chunk capacity, bounding both the per-append overshoot
	// and the size of the pieces Build releases.
	cc := 2 * b.chunkCap()
	if len(b.chunks) == 0 || len(b.chunks[len(b.chunks)-1]) >= cc {
		b.chunks = append(b.chunks, nil)
	}
	tail := len(b.chunks) - 1
	b.chunks[tail] = append(b.chunks[tail], int32(u), int32(v))
	b.deg[u+1]++
	b.deg[v+1]++
	b.slots += 2
	return nil
}

// HasEdge reports whether the edge {u, v} has been added. It scans the
// chunked pair list (O(edges added)); it exists for tests and small fixtures,
// not for hot paths.
func (b *Builder) HasEdge(u, v NodeID) bool {
	if int(u) < 0 || int(u) >= b.n || int(v) < 0 || int(v) >= b.n {
		return false
	}
	for _, chunk := range b.chunks {
		for i := 0; i+1 < len(chunk); i += 2 {
			cu, cv := NodeID(chunk[i]), NodeID(chunk[i+1])
			if (cu == u && cv == v) || (cu == v && cv == u) {
				return true
			}
		}
	}
	return false
}

// Build finalizes the pending edges into an immutable Graph. Neighbor lists
// are sorted so that iteration order is deterministic; duplicate edges
// collapse. Build consumes the edge list: each chunk is released as soon as
// it has been scattered into the CSR arrays, so the full unsorted pair list
// and the finished CSR never coexist (the transient peak is the chunk store
// plus the CSR, decaying to the CSR alone as chunks free). Afterwards the
// builder is empty and may be reused to assemble a new graph from scratch.
func (b *Builder) Build() *Graph {
	if b.err != nil {
		panic(b.err)
	}
	// The per-node slot counts were maintained by AddEdge; one prefix sum
	// turns them into CSR offsets (reusing the allocation).
	deg := b.deg
	if deg == nil {
		deg = make([]int32, b.n+1)
	}
	for i := 1; i <= b.n; i++ {
		deg[i] += deg[i-1]
	}
	off := deg
	tgt := make([]NodeID, b.slots)
	pos := make([]int32, b.n)
	copy(pos, off[:b.n])
	for ci, chunk := range b.chunks {
		for i := 0; i+1 < len(chunk); i += 2 {
			u, v := chunk[i], chunk[i+1]
			tgt[pos[u]] = NodeID(v)
			pos[u]++
			tgt[pos[v]] = NodeID(u)
			pos[v]++
		}
		b.chunks[ci] = nil // release the chunk before the next one scatters
	}
	b.chunks = nil
	b.deg = nil // consumed (became off); a reused builder re-counts from zero
	b.slots = 0
	// Per-node sort + in-place dedupe, compacting the flat array as we go.
	w := int32(0)
	maxDeg := 0
	prevEnd := int32(0)
	for u := 0; u < b.n; u++ {
		lo, hi := prevEnd, off[u+1]
		prevEnd = hi
		lst := tgt[lo:hi]
		slices.Sort(lst)
		start := w
		for i, v := range lst {
			if i > 0 && v == lst[i-1] {
				continue
			}
			tgt[w] = v
			w++
		}
		off[u] = start
		if d := int(w - start); d > maxDeg {
			maxDeg = d
		}
	}
	off[b.n] = w
	// Shift offsets: off[u] currently holds the start of u; that is already
	// the CSR convention, nothing further to do.
	return &Graph{n: b.n, off: off, tgt: tgt[:w:w], numEdges: int(w) / 2, maxDeg: maxDeg}
}

// fromCSR wraps prebuilt CSR arrays into a Graph. The caller guarantees that
// every node's range of tgt is sorted, duplicate- and self-loop-free, and
// symmetric (v appears under u iff u appears under v).
func fromCSR(n int, off []int32, tgt []NodeID) *Graph {
	maxDeg := 0
	for u := 0; u < n; u++ {
		if d := int(off[u+1] - off[u]); d > maxDeg {
			maxDeg = d
		}
	}
	return &Graph{n: n, off: off, tgt: tgt, numEdges: len(tgt) / 2, maxDeg: maxDeg}
}

// FromEdges builds a graph with n nodes and the given edges. Duplicate edges
// are collapsed; self-loops and out-of-range endpoints cause an error.
func FromEdges(n int, edges []Edge) (*Graph, error) {
	b := NewBuilder(n)
	b.Grow(len(edges))
	for _, e := range edges {
		if err := b.AddEdge(e.U, e.V); err != nil {
			return nil, err
		}
	}
	return b.Build(), nil
}

// MustFromEdges is FromEdges that panics on error. It is intended for tests
// and package-internal fixtures with statically known-good input.
func MustFromEdges(n int, edges []Edge) *Graph {
	g, err := FromEdges(n, edges)
	if err != nil {
		panic(err)
	}
	return g
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return g.n }

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int { return g.numEdges }

// MaxDegree returns Δ, the maximum degree over all nodes (0 for empty graphs).
func (g *Graph) MaxDegree() int { return g.maxDeg }

// Degree returns the degree of node u.
func (g *Graph) Degree(u NodeID) int { return int(g.off[u+1] - g.off[u]) }

// Neighbors returns the neighbor list of u (a subslice of the CSR target
// array, sorted ascending). The returned slice is owned by the graph and must
// not be modified; copy it if mutation is needed.
func (g *Graph) Neighbors(u NodeID) []NodeID { return g.tgt[g.off[u]:g.off[u+1]] }

// NeighborsCopy returns a fresh copy of the neighbor list of u.
func (g *Graph) NeighborsCopy(u NodeID) []NodeID {
	out := make([]NodeID, g.Degree(u))
	copy(out, g.Neighbors(u))
	return out
}

// HasEdge reports whether {u, v} is an edge. Runs in O(log deg(u)).
func (g *Graph) HasEdge(u, v NodeID) bool {
	if int(u) < 0 || int(u) >= g.n || int(v) < 0 || int(v) >= g.n {
		return false
	}
	lst := g.Neighbors(u)
	i := sort.Search(len(lst), func(i int) bool { return lst[i] >= v })
	return i < len(lst) && lst[i] == v
}

// Edges returns all edges in normalized (U < V) order, sorted.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.numEdges)
	for u := 0; u < g.n; u++ {
		for _, v := range g.Neighbors(NodeID(u)) {
			if NodeID(u) < v {
				out = append(out, Edge{U: NodeID(u), V: v})
			}
		}
	}
	return out
}

// Nodes returns the node IDs 0..n-1.
func (g *Graph) Nodes() []NodeID {
	out := make([]NodeID, g.n)
	for i := range out {
		out[i] = NodeID(i)
	}
	return out
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	off := make([]int32, len(g.off))
	copy(off, g.off)
	tgt := make([]NodeID, len(g.tgt))
	copy(tgt, g.tgt)
	return &Graph{n: g.n, off: off, tgt: tgt, numEdges: g.numEdges, maxDeg: g.maxDeg}
}

// InducedSubgraph returns the subgraph induced by keep (nodes with keep[v]
// true), along with a mapping from new dense IDs to original IDs. Nodes not
// kept are dropped together with their incident edges.
func (g *Graph) InducedSubgraph(keep []bool) (*Graph, []NodeID) {
	if len(keep) != g.n {
		panic(fmt.Sprintf("graph: keep mask has length %d, want %d", len(keep), g.n))
	}
	oldToNew := make([]int32, g.n)
	newToOld := make([]NodeID, 0, g.n)
	for v := 0; v < g.n; v++ {
		if keep[v] {
			oldToNew[v] = int32(len(newToOld))
			newToOld = append(newToOld, NodeID(v))
		} else {
			oldToNew[v] = -1
		}
	}
	// Emit the sub-CSR directly: the source lists are sorted and the kept
	// relabelling is monotone, so each new list stays sorted without resorting.
	nn := len(newToOld)
	off := make([]int32, nn+1)
	for i, orig := range newToOld {
		cnt := int32(0)
		for _, v := range g.Neighbors(orig) {
			if keep[v] {
				cnt++
			}
		}
		off[i+1] = off[i] + cnt
	}
	tgt := make([]NodeID, off[nn])
	w := int32(0)
	for _, orig := range newToOld {
		for _, v := range g.Neighbors(orig) {
			if keep[v] {
				tgt[w] = NodeID(oldToNew[v])
				w++
			}
		}
	}
	return fromCSR(nn, off, tgt), newToOld
}

// DegreeHistogram returns a map from degree value to the number of nodes with
// that degree.
func (g *Graph) DegreeHistogram() map[int]int {
	h := make(map[int]int)
	for u := 0; u < g.n; u++ {
		h[g.Degree(NodeID(u))]++
	}
	return h
}

// AverageDegree returns the average degree 2m/n (0 for the empty graph).
func (g *Graph) AverageDegree() float64 {
	if g.n == 0 {
		return 0
	}
	return 2 * float64(g.numEdges) / float64(g.n)
}

// String returns a short human-readable summary of the graph.
func (g *Graph) String() string {
	return fmt.Sprintf("Graph(n=%d, m=%d, Δ=%d)", g.n, g.numEdges, g.maxDeg)
}
