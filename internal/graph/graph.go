// Package graph provides the undirected graph substrate used by every
// algorithm in this repository: adjacency structures, the square graph G²,
// workload generators and basic structural queries.
//
// Graphs are simple (no self-loops, no parallel edges) and undirected. Nodes
// are identified by dense integer indices 0..n-1; the CONGEST simulator
// assigns O(log n)-bit identifiers separately (see internal/congest).
package graph

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// NodeID identifies a node of a Graph. IDs are dense: 0..NumNodes()-1.
type NodeID int

// Edge is an undirected edge between two nodes. By convention U < V in
// normalized form, but Edge values produced by callers are normalized lazily.
type Edge struct {
	U, V NodeID
}

// Normalize returns the edge with endpoints ordered so that U <= V.
func (e Edge) Normalize() Edge {
	if e.U > e.V {
		return Edge{U: e.V, V: e.U}
	}
	return e
}

// Graph is an immutable simple undirected graph with dense node IDs.
// Construct one with a Builder or one of the generators in this package.
type Graph struct {
	n        int
	adj      [][]NodeID
	numEdges int
	maxDeg   int

	// ix is the lazily built CSR edge index (see EdgeIndex).
	ixOnce sync.Once
	ix     *EdgeIndex
}

// Errors returned by graph construction and queries.
var (
	ErrSelfLoop       = errors.New("graph: self-loop edges are not allowed")
	ErrNodeOutOfRange = errors.New("graph: node index out of range")
	ErrDuplicateEdge  = errors.New("graph: duplicate edge")
)

// Builder incrementally assembles a Graph. The zero value is not usable; use
// NewBuilder.
type Builder struct {
	n     int
	adj   []map[NodeID]struct{}
	edges int
}

// NewBuilder returns a Builder for a graph with n nodes and no edges.
func NewBuilder(n int) *Builder {
	if n < 0 {
		n = 0
	}
	adj := make([]map[NodeID]struct{}, n)
	for i := range adj {
		adj[i] = make(map[NodeID]struct{})
	}
	return &Builder{n: n, adj: adj}
}

// NumNodes returns the number of nodes the builder was created with.
func (b *Builder) NumNodes() int { return b.n }

// AddEdge adds the undirected edge {u, v}. It returns an error for self-loops
// and out-of-range endpoints. Adding an existing edge is a no-op.
func (b *Builder) AddEdge(u, v NodeID) error {
	if u == v {
		return fmt.Errorf("%w: {%d,%d}", ErrSelfLoop, u, v)
	}
	if int(u) < 0 || int(u) >= b.n || int(v) < 0 || int(v) >= b.n {
		return fmt.Errorf("%w: {%d,%d} with n=%d", ErrNodeOutOfRange, u, v, b.n)
	}
	if _, ok := b.adj[u][v]; ok {
		return nil
	}
	b.adj[u][v] = struct{}{}
	b.adj[v][u] = struct{}{}
	b.edges++
	return nil
}

// HasEdge reports whether the edge {u, v} has been added.
func (b *Builder) HasEdge(u, v NodeID) bool {
	if int(u) < 0 || int(u) >= b.n || int(v) < 0 || int(v) >= b.n {
		return false
	}
	_, ok := b.adj[u][v]
	return ok
}

// Build finalizes the builder into an immutable Graph. Neighbor lists are
// sorted so that iteration order is deterministic.
func (b *Builder) Build() *Graph {
	adj := make([][]NodeID, b.n)
	maxDeg := 0
	for i := range b.adj {
		lst := make([]NodeID, 0, len(b.adj[i]))
		for v := range b.adj[i] {
			lst = append(lst, v)
		}
		sort.Slice(lst, func(a, c int) bool { return lst[a] < lst[c] })
		adj[i] = lst
		if len(lst) > maxDeg {
			maxDeg = len(lst)
		}
	}
	return &Graph{n: b.n, adj: adj, numEdges: b.edges, maxDeg: maxDeg}
}

// FromEdges builds a graph with n nodes and the given edges. Duplicate edges
// are collapsed; self-loops and out-of-range endpoints cause an error.
func FromEdges(n int, edges []Edge) (*Graph, error) {
	b := NewBuilder(n)
	for _, e := range edges {
		if err := b.AddEdge(e.U, e.V); err != nil {
			return nil, err
		}
	}
	return b.Build(), nil
}

// MustFromEdges is FromEdges that panics on error. It is intended for tests
// and package-internal fixtures with statically known-good input.
func MustFromEdges(n int, edges []Edge) *Graph {
	g, err := FromEdges(n, edges)
	if err != nil {
		panic(err)
	}
	return g
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return g.n }

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int { return g.numEdges }

// MaxDegree returns Δ, the maximum degree over all nodes (0 for empty graphs).
func (g *Graph) MaxDegree() int { return g.maxDeg }

// Degree returns the degree of node u.
func (g *Graph) Degree(u NodeID) int { return len(g.adj[u]) }

// Neighbors returns the neighbor list of u. The returned slice is owned by
// the graph and must not be modified; copy it if mutation is needed.
func (g *Graph) Neighbors(u NodeID) []NodeID { return g.adj[u] }

// NeighborsCopy returns a fresh copy of the neighbor list of u.
func (g *Graph) NeighborsCopy(u NodeID) []NodeID {
	out := make([]NodeID, len(g.adj[u]))
	copy(out, g.adj[u])
	return out
}

// HasEdge reports whether {u, v} is an edge. Runs in O(log deg(u)).
func (g *Graph) HasEdge(u, v NodeID) bool {
	if int(u) < 0 || int(u) >= g.n || int(v) < 0 || int(v) >= g.n {
		return false
	}
	lst := g.adj[u]
	i := sort.Search(len(lst), func(i int) bool { return lst[i] >= v })
	return i < len(lst) && lst[i] == v
}

// Edges returns all edges in normalized (U < V) order, sorted.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.numEdges)
	for u := 0; u < g.n; u++ {
		for _, v := range g.adj[u] {
			if NodeID(u) < v {
				out = append(out, Edge{U: NodeID(u), V: v})
			}
		}
	}
	return out
}

// Nodes returns the node IDs 0..n-1.
func (g *Graph) Nodes() []NodeID {
	out := make([]NodeID, g.n)
	for i := range out {
		out[i] = NodeID(i)
	}
	return out
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	adj := make([][]NodeID, g.n)
	for i := range g.adj {
		adj[i] = make([]NodeID, len(g.adj[i]))
		copy(adj[i], g.adj[i])
	}
	return &Graph{n: g.n, adj: adj, numEdges: g.numEdges, maxDeg: g.maxDeg}
}

// InducedSubgraph returns the subgraph induced by keep (nodes with keep[v]
// true), along with a mapping from new dense IDs to original IDs. Nodes not
// kept are dropped together with their incident edges.
func (g *Graph) InducedSubgraph(keep []bool) (*Graph, []NodeID) {
	if len(keep) != g.n {
		panic(fmt.Sprintf("graph: keep mask has length %d, want %d", len(keep), g.n))
	}
	oldToNew := make([]int, g.n)
	newToOld := make([]NodeID, 0, g.n)
	for v := 0; v < g.n; v++ {
		if keep[v] {
			oldToNew[v] = len(newToOld)
			newToOld = append(newToOld, NodeID(v))
		} else {
			oldToNew[v] = -1
		}
	}
	b := NewBuilder(len(newToOld))
	for u := 0; u < g.n; u++ {
		if !keep[u] {
			continue
		}
		for _, v := range g.adj[u] {
			if NodeID(u) < v && keep[v] {
				// Both endpoints kept and statically in range: error impossible.
				_ = b.AddEdge(NodeID(oldToNew[u]), NodeID(oldToNew[v]))
			}
		}
	}
	return b.Build(), newToOld
}

// DegreeHistogram returns a map from degree value to the number of nodes with
// that degree.
func (g *Graph) DegreeHistogram() map[int]int {
	h := make(map[int]int)
	for u := 0; u < g.n; u++ {
		h[len(g.adj[u])]++
	}
	return h
}

// AverageDegree returns the average degree 2m/n (0 for the empty graph).
func (g *Graph) AverageDegree() float64 {
	if g.n == 0 {
		return 0
	}
	return 2 * float64(g.numEdges) / float64(g.n)
}

// String returns a short human-readable summary of the graph.
func (g *Graph) String() string {
	return fmt.Sprintf("Graph(n=%d, m=%d, Δ=%d)", g.n, g.numEdges, g.maxDeg)
}
