package graph

import (
	"testing"
	"testing/quick"
)

func TestSquareOfPath(t *testing.T) {
	// Path 0-1-2-3-4: in G², node 0 is adjacent to 1 and 2; node 2 to everyone.
	g := Path(5)
	sq := g.Square()
	wantEdges := map[Edge]bool{
		{0, 1}: true, {0, 2}: true,
		{1, 2}: true, {1, 3}: true,
		{2, 3}: true, {2, 4}: true,
		{3, 4}: true,
	}
	if sq.NumEdges() != len(wantEdges) {
		t.Fatalf("square of P5 has %d edges, want %d", sq.NumEdges(), len(wantEdges))
	}
	for e := range wantEdges {
		if !sq.HasEdge(e.U, e.V) {
			t.Errorf("square missing edge %v", e)
		}
	}
}

func TestSquareOfStarIsClique(t *testing.T) {
	g := Star(8)
	sq := g.Square()
	n := g.NumNodes()
	if sq.NumEdges() != n*(n-1)/2 {
		t.Errorf("square of a star should be complete: m=%d, want %d", sq.NumEdges(), n*(n-1)/2)
	}
}

func TestSquareDegreeBound(t *testing.T) {
	// Δ(G²) <= Δ² for every graph (Section 1.1).
	for seed := int64(0); seed < 5; seed++ {
		g := GNP(80, 0.05, seed)
		sq := g.Square()
		bound := g.MaxDegree() * g.MaxDegree()
		if sq.MaxDegree() > bound {
			t.Errorf("seed %d: Δ(G²)=%d exceeds Δ²=%d", seed, sq.MaxDegree(), bound)
		}
	}
}

func TestPower(t *testing.T) {
	g := Path(6)
	if p1 := g.Power(1); p1.NumEdges() != g.NumEdges() {
		t.Errorf("Power(1) edge count %d != %d", p1.NumEdges(), g.NumEdges())
	}
	p2 := g.Power(2)
	sq := g.Square()
	if p2.NumEdges() != sq.NumEdges() {
		t.Errorf("Power(2) has %d edges, Square has %d", p2.NumEdges(), sq.NumEdges())
	}
	p3 := g.Power(3)
	if !p3.HasEdge(0, 3) || p3.HasEdge(0, 4) {
		t.Error("Power(3) of P6 should connect 0-3 but not 0-4")
	}
}

func TestPropertySquareEqualsPower2(t *testing.T) {
	f := func(seed int64) bool {
		g := GNP(30, 0.1, seed)
		sq := g.Square()
		p2 := g.Power(2)
		if sq.NumEdges() != p2.NumEdges() {
			return false
		}
		for _, e := range sq.Edges() {
			if !p2.HasEdge(e.U, e.V) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestDist2Neighbors(t *testing.T) {
	g := Path(5)
	d2 := g.Dist2Neighbors(0)
	if len(d2) != 2 || d2[0] != 1 || d2[1] != 2 {
		t.Errorf("Dist2Neighbors(0) = %v, want [1 2]", d2)
	}
	if g.Dist2Degree(2) != 4 {
		t.Errorf("Dist2Degree(2) = %d, want 4", g.Dist2Degree(2))
	}
}

func TestPropertyDist2MatchesSquare(t *testing.T) {
	f := func(seed int64) bool {
		g := GNP(40, 0.08, seed)
		sq := g.Square()
		for u := 0; u < g.NumNodes(); u++ {
			d2 := g.Dist2Neighbors(NodeID(u))
			if len(d2) != sq.Degree(NodeID(u)) {
				return false
			}
			for _, v := range d2 {
				if !sq.HasEdge(NodeID(u), v) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestCommonDist2Neighbors(t *testing.T) {
	g := Complete(5)
	// In K5, every pair shares the remaining 3 nodes as d2-neighbors... plus
	// each other is a d2 neighbor but not a *common* one with themselves
	// excluded? Common d2-neighbours of u,v are nodes adjacent (in G²) to
	// both; in K5 this is everyone else (3 nodes) plus... u∈N(v) and v∈N(u)
	// are not counted as common since a node is not its own d2-neighbor.
	got := g.CommonDist2Neighbors(0, 1)
	if got != 3 {
		t.Errorf("CommonDist2Neighbors in K5 = %d, want 3", got)
	}
	p := Path(5)
	// d2-neighborhoods: N²(0)={1,2}, N²(4)={2,3}; intersection {2}.
	if got := p.CommonDist2Neighbors(0, 4); got != 1 {
		t.Errorf("CommonDist2Neighbors(0,4) on P5 = %d, want 1", got)
	}
}

func TestTwoPaths(t *testing.T) {
	// C4: two 2-paths between opposite nodes.
	g := Cycle(4)
	if got := g.TwoPaths(0, 2); got != 2 {
		t.Errorf("TwoPaths(0,2) on C4 = %d, want 2", got)
	}
	if got := g.TwoPaths(0, 1); got != 0 {
		t.Errorf("TwoPaths(0,1) on C4 = %d, want 0 (direct edge, no intermediate)", got)
	}
	if got := g.TwoPaths(1, 1); got != 0 {
		t.Errorf("TwoPaths(1,1) = %d, want 0", got)
	}
	star := Star(6)
	if got := star.TwoPaths(1, 2); got != 1 {
		t.Errorf("TwoPaths between two leaves of a star = %d, want 1", got)
	}
}
