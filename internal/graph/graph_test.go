package graph

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestBuilderBasics(t *testing.T) {
	b := NewBuilder(4)
	if got := b.NumNodes(); got != 4 {
		t.Fatalf("NumNodes() = %d, want 4", got)
	}
	if err := b.AddEdge(0, 1); err != nil {
		t.Fatalf("AddEdge(0,1): %v", err)
	}
	if err := b.AddEdge(1, 0); err != nil {
		t.Fatalf("AddEdge(1,0) duplicate should be a no-op, got %v", err)
	}
	if err := b.AddEdge(2, 3); err != nil {
		t.Fatalf("AddEdge(2,3): %v", err)
	}
	if !b.HasEdge(0, 1) || !b.HasEdge(1, 0) {
		t.Error("HasEdge(0,1) should be true in both directions")
	}
	if b.HasEdge(0, 2) {
		t.Error("HasEdge(0,2) should be false")
	}
	g := b.Build()
	if g.NumNodes() != 4 || g.NumEdges() != 2 {
		t.Errorf("built graph has n=%d m=%d, want n=4 m=2", g.NumNodes(), g.NumEdges())
	}
	if g.MaxDegree() != 1 {
		t.Errorf("MaxDegree() = %d, want 1", g.MaxDegree())
	}
}

func TestBuilderErrors(t *testing.T) {
	b := NewBuilder(3)
	if err := b.AddEdge(1, 1); !errors.Is(err, ErrSelfLoop) {
		t.Errorf("AddEdge(1,1) = %v, want ErrSelfLoop", err)
	}
	if err := b.AddEdge(0, 3); !errors.Is(err, ErrNodeOutOfRange) {
		t.Errorf("AddEdge(0,3) = %v, want ErrNodeOutOfRange", err)
	}
	if err := b.AddEdge(-1, 0); !errors.Is(err, ErrNodeOutOfRange) {
		t.Errorf("AddEdge(-1,0) = %v, want ErrNodeOutOfRange", err)
	}
}

func TestFromEdges(t *testing.T) {
	g, err := FromEdges(5, []Edge{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}})
	if err != nil {
		t.Fatalf("FromEdges: %v", err)
	}
	if g.NumEdges() != 5 {
		t.Errorf("NumEdges() = %d, want 5", g.NumEdges())
	}
	for u := 0; u < 5; u++ {
		if g.Degree(NodeID(u)) != 2 {
			t.Errorf("Degree(%d) = %d, want 2", u, g.Degree(NodeID(u)))
		}
	}
	if _, err := FromEdges(2, []Edge{{0, 0}}); err == nil {
		t.Error("FromEdges with self-loop should error")
	}
}

func TestEdgeNormalize(t *testing.T) {
	e := Edge{U: 5, V: 2}.Normalize()
	if e.U != 2 || e.V != 5 {
		t.Errorf("Normalize() = %+v, want {2 5}", e)
	}
	e = Edge{U: 1, V: 3}.Normalize()
	if e.U != 1 || e.V != 3 {
		t.Errorf("Normalize() = %+v, want {1 3}", e)
	}
}

func TestHasEdgeAndNeighbors(t *testing.T) {
	g := MustFromEdges(4, []Edge{{0, 1}, {0, 2}, {0, 3}})
	if !g.HasEdge(0, 2) || !g.HasEdge(2, 0) {
		t.Error("HasEdge(0,2) should hold in both directions")
	}
	if g.HasEdge(1, 2) {
		t.Error("HasEdge(1,2) should be false")
	}
	if g.HasEdge(0, 9) || g.HasEdge(-1, 0) {
		t.Error("HasEdge out of range should be false")
	}
	nbrs := g.Neighbors(0)
	if len(nbrs) != 3 {
		t.Fatalf("Neighbors(0) has %d entries, want 3", len(nbrs))
	}
	for i := 1; i < len(nbrs); i++ {
		if nbrs[i-1] >= nbrs[i] {
			t.Error("Neighbors(0) not sorted")
		}
	}
	cp := g.NeighborsCopy(0)
	cp[0] = 99
	if g.Neighbors(0)[0] == 99 {
		t.Error("NeighborsCopy should not alias internal storage")
	}
}

func TestEdgesRoundTrip(t *testing.T) {
	orig := []Edge{{0, 1}, {1, 2}, {0, 3}, {2, 3}}
	g := MustFromEdges(4, orig)
	edges := g.Edges()
	if len(edges) != len(orig) {
		t.Fatalf("Edges() has %d entries, want %d", len(edges), len(orig))
	}
	g2, err := FromEdges(4, edges)
	if err != nil {
		t.Fatalf("rebuild: %v", err)
	}
	if g2.NumEdges() != g.NumEdges() {
		t.Errorf("rebuilt edge count %d != %d", g2.NumEdges(), g.NumEdges())
	}
}

func TestCloneIndependence(t *testing.T) {
	g := Cycle(6)
	c := g.Clone()
	if c.NumNodes() != g.NumNodes() || c.NumEdges() != g.NumEdges() || c.MaxDegree() != g.MaxDegree() {
		t.Error("clone does not match original")
	}
	// Mutating the clone's CSR storage must not affect the original.
	c.tgt[0] = 99
	if g.tgt[0] == 99 {
		t.Error("Clone should deep-copy the CSR arrays")
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := Complete(5)
	keep := []bool{true, false, true, true, false}
	sub, mapping := g.InducedSubgraph(keep)
	if sub.NumNodes() != 3 {
		t.Fatalf("induced subgraph has %d nodes, want 3", sub.NumNodes())
	}
	if sub.NumEdges() != 3 {
		t.Errorf("induced subgraph of K5 on 3 nodes should be a triangle, got m=%d", sub.NumEdges())
	}
	want := []NodeID{0, 2, 3}
	for i, v := range mapping {
		if v != want[i] {
			t.Errorf("mapping[%d] = %d, want %d", i, v, want[i])
		}
	}
}

func TestInducedSubgraphPanicsOnBadMask(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("InducedSubgraph with wrong-length mask should panic")
		}
	}()
	Complete(3).InducedSubgraph([]bool{true})
}

func TestDegreeHistogramAndAverage(t *testing.T) {
	g := Star(5) // center degree 4, leaves degree 1
	h := g.DegreeHistogram()
	if h[4] != 1 || h[1] != 4 {
		t.Errorf("histogram = %v, want {4:1, 1:4}", h)
	}
	if got, want := g.AverageDegree(), 2.0*4/5; got != want {
		t.Errorf("AverageDegree() = %v, want %v", got, want)
	}
	empty := NewBuilder(0).Build()
	if empty.AverageDegree() != 0 {
		t.Error("empty graph average degree should be 0")
	}
}

func TestStringSummaries(t *testing.T) {
	g := Cycle(4)
	if g.String() == "" {
		t.Error("String() should be non-empty")
	}
	s := GeneratorSpec{Kind: "gnp", N: 10, P: 0.5}
	if s.String() == "" {
		t.Error("GeneratorSpec.String() should be non-empty")
	}
}

// Property: every neighbor relation produced by Build is symmetric and sorted.
func TestPropertyAdjacencySymmetricSorted(t *testing.T) {
	f := func(seed int64) bool {
		g := GNP(40, 0.15, seed)
		for u := 0; u < g.NumNodes(); u++ {
			nbrs := g.Neighbors(NodeID(u))
			for i, v := range nbrs {
				if !g.HasEdge(v, NodeID(u)) {
					return false
				}
				if i > 0 && nbrs[i-1] >= v {
					return false
				}
				if v == NodeID(u) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: sum of degrees equals twice the edge count.
func TestPropertyHandshakeLemma(t *testing.T) {
	f := func(seed int64) bool {
		g := GNP(60, 0.1, seed)
		sum := 0
		for u := 0; u < g.NumNodes(); u++ {
			sum += g.Degree(NodeID(u))
		}
		return sum == 2*g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
