package graph

import "sort"

// Square returns G², the graph on the same node set with an edge {u, v}
// whenever dist_G(u, v) <= 2 and u != v. The maximum degree of G² is at most
// Δ + Δ(Δ-1) = Δ², where Δ is the maximum degree of G (Section 1.1 of the
// paper).
//
// TEST ORACLE ONLY. Every production layer streams distance-2 neighborhoods
// through a Dist2View instead of materializing the square; Square (and Power)
// exist so property tests can compare the streamed view against the explicit
// graph. Do not add non-test call sites outside this package.
func (g *Graph) Square() *Graph {
	b := NewBuilder(g.n)
	for u := 0; u < g.n; u++ {
		for _, v := range g.Neighbors(NodeID(u)) {
			if NodeID(u) < v {
				_ = b.AddEdge(NodeID(u), v)
			}
			// Two-hop neighbors via v.
			for _, w := range g.Neighbors(v) {
				if NodeID(u) < w {
					_ = b.AddEdge(NodeID(u), w)
				}
			}
		}
	}
	return b.Build()
}

// Power returns G^k for k >= 1: the graph with an edge between every pair of
// distinct nodes at distance at most k in G. Power(1) returns a clone.
// TEST ORACLE ONLY — production layers stream through DistKView instead.
func (g *Graph) Power(k int) *Graph {
	if k <= 1 {
		return g.Clone()
	}
	b := NewBuilder(g.n)
	for u := 0; u < g.n; u++ {
		dists := g.BFSLimited(NodeID(u), k)
		for v, d := range dists {
			if d >= 1 && d <= k && NodeID(u) < NodeID(v) {
				_ = b.AddEdge(NodeID(u), NodeID(v))
			}
		}
	}
	return b.Build()
}

// Dist2Neighbors returns the set of distance-2 neighbors of u (nodes at
// distance 1 or 2, excluding u itself), i.e. N_{G²}(u), as a sorted slice.
// It is the map-based reference implementation the Dist2View property tests
// compare against; hot paths use a Dist2View.
func (g *Graph) Dist2Neighbors(u NodeID) []NodeID {
	seen := make(map[NodeID]struct{}, g.Degree(u)*2)
	for _, v := range g.Neighbors(u) {
		seen[v] = struct{}{}
		for _, w := range g.Neighbors(v) {
			if w != u {
				seen[w] = struct{}{}
			}
		}
	}
	out := make([]NodeID, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sortNodeIDs(out)
	return out
}

// Dist2Degree returns |N_{G²}(u)|, the number of distinct distance-2
// neighbors of u, without materializing G².
func (g *Graph) Dist2Degree(u NodeID) int {
	return len(g.Dist2Neighbors(u))
}

// CommonDist2Neighbors returns the number of common distance-2 neighbors of u
// and v, i.e. |N_{G²}(u) ∩ N_{G²}(v)|. This is the similarity measure that
// defines the graphs H_{1-1/k} in Section 2.3.
func (g *Graph) CommonDist2Neighbors(u, v NodeID) int {
	nu := g.Dist2Neighbors(u)
	set := make(map[NodeID]struct{}, len(nu))
	for _, x := range nu {
		set[x] = struct{}{}
	}
	count := 0
	for _, x := range g.Dist2Neighbors(v) {
		if _, ok := set[x]; ok {
			count++
		}
	}
	return count
}

// TwoPaths returns the number of distinct 2-paths u–w–v between u and v in G
// (not counting a direct edge). Reduce-Phase step 2 drops queries that arrive
// along a vertex pair with more than one 2-path.
func (g *Graph) TwoPaths(u, v NodeID) int {
	if u == v {
		return 0
	}
	count := 0
	for _, w := range g.Neighbors(u) {
		if w == v {
			continue
		}
		if g.HasEdge(w, v) {
			count++
		}
	}
	return count
}

func sortNodeIDs(s []NodeID) {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
}
