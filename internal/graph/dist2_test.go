package graph

import (
	"sort"
	"testing"
)

// dist2TestSpecs is the generator-family grid the Dist2View property tests
// sweep: every GeneratorSpec kind at a size where the Square() oracle is
// still cheap to build.
func dist2TestSpecs() []GeneratorSpec {
	return []GeneratorSpec{
		{Kind: "gnp", N: 60, P: 0.08},
		{Kind: "gnp-avg", N: 60, P: 6},
		{Kind: "regular", N: 48, Degree: 5},
		{Kind: "grid", N: 7, M: 8},
		{Kind: "torus", N: 6, M: 6},
		{Kind: "tree", N: 4, Degree: 3},
		{Kind: "cliquechain", N: 5, M: 6},
		{Kind: "unitdisk", N: 70, P: 0.2},
		{Kind: "taskresource", N: 20, M: 15, Degree: 3},
		{Kind: "complete", N: 12},
		{Kind: "cycle", N: 15},
		{Kind: "path", N: 10},
		{Kind: "star", N: 12},
		{Kind: "doublestar", Degree: 5},
		{Kind: "petersen"},
		{Kind: "hoffman-singleton"},
	}
}

func sortedStream(d *Dist2View, u NodeID) []NodeID {
	out := d.AppendDist2(nil, u)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TestPropertyDist2ViewMatchesSquareOracle checks, for every generator family
// and three seeds, that the streaming view agrees with the materialized
// Square() oracle on membership, per-node degree, and the maximum distance-2
// degree.
func TestPropertyDist2ViewMatchesSquareOracle(t *testing.T) {
	for _, spec := range dist2TestSpecs() {
		for seed := int64(1); seed <= 3; seed++ {
			spec.Seed = seed
			g, err := spec.Generate()
			if err != nil {
				t.Fatalf("%s: %v", spec, err)
			}
			sq := g.Square()
			view := NewDist2View(g)
			for u := 0; u < g.NumNodes(); u++ {
				want := sq.NeighborsCopy(NodeID(u)) // sorted by construction
				got := sortedStream(view, NodeID(u))
				if len(got) != len(want) {
					t.Fatalf("%s seed %d: node %d: streamed degree %d, oracle %d", spec, seed, u, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("%s seed %d: node %d: streamed N²=%v, oracle %v", spec, seed, u, got, want)
					}
				}
				if d := view.Dist2Degree(NodeID(u)); d != sq.Degree(NodeID(u)) {
					t.Fatalf("%s seed %d: node %d: Dist2Degree %d, oracle %d", spec, seed, u, d, sq.Degree(NodeID(u)))
				}
			}
			if got, want := view.MaxDist2Degree(), sq.MaxDegree(); got != want {
				t.Fatalf("%s seed %d: MaxDist2Degree %d, oracle Δ(G²) %d", spec, seed, got, want)
			}
			if got, want := view.NumDist2Edges(), sq.NumEdges(); got != want {
				t.Fatalf("%s seed %d: NumDist2Edges %d, oracle m(G²) %d", spec, seed, got, want)
			}
		}
	}
}

// TestPropertyDist2ViewSetOperations checks IsDist2Neighbor, the streamed
// induced subgraph and Materialize against the oracle on a medium random
// graph per seed.
func TestPropertyDist2ViewSetOperations(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		g := GNP(50, 0.1, seed)
		sq := g.Square()
		view := NewDist2View(g)

		for u := 0; u < g.NumNodes(); u++ {
			for v := 0; v < g.NumNodes(); v++ {
				if got, want := view.IsDist2Neighbor(NodeID(u), NodeID(v)), sq.HasEdge(NodeID(u), NodeID(v)); got != want {
					t.Fatalf("seed %d: IsDist2Neighbor(%d,%d)=%v, oracle %v", seed, u, v, got, want)
				}
			}
		}

		mat := view.Materialize()
		if mat.NumEdges() != sq.NumEdges() || mat.NumNodes() != sq.NumNodes() {
			t.Fatalf("seed %d: Materialize n=%d m=%d, oracle n=%d m=%d",
				seed, mat.NumNodes(), mat.NumEdges(), sq.NumNodes(), sq.NumEdges())
		}
		for u := 0; u < g.NumNodes(); u++ {
			a, b := mat.Neighbors(NodeID(u)), sq.Neighbors(NodeID(u))
			if len(a) != len(b) {
				t.Fatalf("seed %d: Materialize degree mismatch at %d", seed, u)
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("seed %d: Materialize neighbors mismatch at %d", seed, u)
				}
			}
		}

		keep := make([]bool, g.NumNodes())
		for v := range keep {
			keep[v] = v%3 != 0
		}
		subStream, mapStream := view.InducedSubgraph(keep)
		subOracle, mapOracle := sq.InducedSubgraph(keep)
		if subStream.NumNodes() != subOracle.NumNodes() || subStream.NumEdges() != subOracle.NumEdges() {
			t.Fatalf("seed %d: induced G²[keep] n=%d m=%d, oracle n=%d m=%d",
				seed, subStream.NumNodes(), subStream.NumEdges(), subOracle.NumNodes(), subOracle.NumEdges())
		}
		for i := range mapStream {
			if mapStream[i] != mapOracle[i] {
				t.Fatalf("seed %d: induced mapping differs at %d", seed, i)
			}
		}
		for u := 0; u < subStream.NumNodes(); u++ {
			if subStream.Degree(NodeID(u)) != subOracle.Degree(NodeID(u)) {
				t.Fatalf("seed %d: induced degree differs at %d", seed, u)
			}
		}
	}
}

// TestPropertyDistKViewMatchesPowerOracle checks the bounded-BFS streaming
// view against the Power(k) oracle.
func TestPropertyDistKViewMatchesPowerOracle(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		g := GNP(40, 0.07, seed)
		for k := 1; k <= 4; k++ {
			pow := g.Power(k)
			view := NewDistKView(g, k)
			for u := 0; u < g.NumNodes(); u++ {
				var got []NodeID
				view.ForEach(NodeID(u), func(v NodeID) bool {
					got = append(got, v)
					return true
				})
				sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
				want := pow.Neighbors(NodeID(u))
				if len(got) != len(want) {
					t.Fatalf("seed %d k=%d: node %d: streamed degree %d, oracle %d", seed, k, u, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("seed %d k=%d: node %d: streamed %v, oracle %v", seed, k, u, got, want)
					}
				}
			}
		}
	}
}

func TestDist2ViewEarlyExitAndReuse(t *testing.T) {
	g := Star(6) // center 0; every leaf sees all nodes within distance 2
	view := NewDist2View(g)
	calls := 0
	view.ForEachDist2(1, func(NodeID) bool {
		calls++
		return calls < 2 // stop after two neighbors
	})
	if calls != 2 {
		t.Fatalf("early exit visited %d neighbors, want 2", calls)
	}
	// The view must recover fully on the next stream.
	if d := view.Dist2Degree(1); d != 5 {
		t.Fatalf("Dist2Degree after early exit = %d, want 5", d)
	}
}

func TestMarkSet(t *testing.T) {
	s := NewMarkSet(4)
	if !s.Add(2) || s.Add(2) {
		t.Error("Add should report first insertion only")
	}
	if !s.Contains(2) || s.Contains(3) {
		t.Error("Contains wrong")
	}
	s.Reset()
	if s.Contains(2) {
		t.Error("Reset should empty the set")
	}
	if !s.Add(2) {
		t.Error("Add after Reset should insert")
	}
}

func TestDist2ViewEmptyAndIsolated(t *testing.T) {
	empty := NewBuilder(0).Build()
	v := NewDist2View(empty)
	if v.MaxDist2Degree() != 0 || v.NumDist2Edges() != 0 {
		t.Error("empty graph should have Δ(G²)=m(G²)=0")
	}
	iso := NewBuilder(3).Build()
	vi := NewDist2View(iso)
	for u := 0; u < 3; u++ {
		if vi.Dist2Degree(NodeID(u)) != 0 {
			t.Error("isolated nodes have empty d2-neighborhoods")
		}
	}
}
