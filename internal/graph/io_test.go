package graph

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestEdgeListRoundTrip(t *testing.T) {
	orig := GNP(40, 0.1, 5)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumNodes() != orig.NumNodes() || back.NumEdges() != orig.NumEdges() {
		t.Fatalf("round trip changed the graph: n %d→%d, m %d→%d",
			orig.NumNodes(), back.NumNodes(), orig.NumEdges(), back.NumEdges())
	}
	for _, e := range orig.Edges() {
		if !back.HasEdge(e.U, e.V) {
			t.Fatalf("edge %v lost in round trip", e)
		}
	}
}

func TestEdgeListRoundTripPreservesIsolatedNodes(t *testing.T) {
	b := NewBuilder(6)
	_ = b.AddEdge(0, 1)
	orig := b.Build() // nodes 2..5 isolated
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumNodes() != 6 {
		t.Errorf("isolated nodes lost: n = %d, want 6", back.NumNodes())
	}
}

func TestReadEdgeListWithoutHeader(t *testing.T) {
	g, err := ReadEdgeList(strings.NewReader("0 1\n1 2\n\n# trailing comment\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 2 {
		t.Errorf("n=%d m=%d, want 3, 2", g.NumNodes(), g.NumEdges())
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := map[string]string{
		"bad node count":      "# nodes: many\n0 1\n",
		"wrong field count":   "0 1 2\n",
		"non-numeric u":       "x 1\n",
		"non-numeric v":       "1 y\n",
		"negative id":         "-1 2\n",
		"endpoint past count": "# nodes: 2\n0 5\n",
		"self loop":           "3 3\n",
	}
	for name, input := range cases {
		if _, err := ReadEdgeList(strings.NewReader(input)); err == nil {
			t.Errorf("%s: expected an error", name)
		}
	}
}

func TestPropertyEdgeListRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		orig := GNP(25, 0.15, seed)
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, orig); err != nil {
			return false
		}
		back, err := ReadEdgeList(&buf)
		if err != nil {
			return false
		}
		if back.NumNodes() != orig.NumNodes() || back.NumEdges() != orig.NumEdges() {
			return false
		}
		for _, e := range orig.Edges() {
			if !back.HasEdge(e.U, e.V) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
