package graph

import "testing"

func TestPetersen(t *testing.T) {
	g := Petersen()
	if g.NumNodes() != 10 || g.NumEdges() != 15 {
		t.Fatalf("Petersen: n=%d m=%d, want 10, 15", g.NumNodes(), g.NumEdges())
	}
	for v := 0; v < 10; v++ {
		if g.Degree(NodeID(v)) != 3 {
			t.Fatalf("Petersen node %d has degree %d, want 3", v, g.Degree(NodeID(v)))
		}
	}
	if d := g.Diameter(); d != 2 {
		t.Errorf("Petersen diameter = %d, want 2", d)
	}
	sq := g.Square()
	if sq.NumEdges() != 45 {
		t.Errorf("Petersen squared should be K10 (45 edges), got %d", sq.NumEdges())
	}
}

func TestHoffmanSingleton(t *testing.T) {
	g := HoffmanSingleton()
	if g.NumNodes() != 50 {
		t.Fatalf("HS: n=%d, want 50", g.NumNodes())
	}
	if g.NumEdges() != 175 {
		t.Fatalf("HS: m=%d, want 175", g.NumEdges())
	}
	for v := 0; v < 50; v++ {
		if g.Degree(NodeID(v)) != 7 {
			t.Fatalf("HS node %d has degree %d, want 7", v, g.Degree(NodeID(v)))
		}
	}
	if d := g.Diameter(); d != 2 {
		t.Errorf("HS diameter = %d, want 2", d)
	}
	// Girth 5: no triangles and no 4-cycles means every node's square
	// neighbourhood is exactly Δ + Δ(Δ-1) = 49, and G² = K50.
	sq := g.Square()
	if sq.NumEdges() != 50*49/2 {
		t.Errorf("HS squared should be K50, got %d edges", sq.NumEdges())
	}
	for v := 0; v < 50; v++ {
		if sq.Degree(NodeID(v)) != 49 {
			t.Fatalf("HS node %d has %d distance-2 neighbours, want 49", v, sq.Degree(NodeID(v)))
		}
	}
}
