package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteEdgeList writes the graph in the plain edge-list format used by
// cmd/graphgen: an optional number of '#' comment lines followed by one
// "u v" pair per line. The node count is emitted as a "# nodes: n" comment so
// that isolated nodes survive a round trip.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# nodes: %d\n", g.NumNodes()); err != nil {
		return err
	}
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintf(bw, "%d %d\n", e.U, e.V); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses the edge-list format written by WriteEdgeList (and by
// cmd/graphgen -edges). Lines starting with '#' are comments; a
// "# nodes: n" comment fixes the node count, otherwise it is inferred as the
// largest endpoint + 1. Blank lines are ignored.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 1024*1024), 1024*1024)
	var edges []Edge
	nodes := -1
	maxID := -1
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := strings.TrimSpace(scanner.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if rest, ok := strings.CutPrefix(line, "# nodes:"); ok {
				n, err := strconv.Atoi(strings.TrimSpace(rest))
				if err != nil {
					return nil, fmt.Errorf("graph: line %d: bad node count: %w", lineNo, err)
				}
				nodes = n
			}
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("graph: line %d: expected 'u v', got %q", lineNo, line)
		}
		u, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %w", lineNo, err)
		}
		v, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %w", lineNo, err)
		}
		if u < 0 || v < 0 {
			return nil, fmt.Errorf("graph: line %d: negative node id", lineNo)
		}
		if u > maxID {
			maxID = u
		}
		if v > maxID {
			maxID = v
		}
		edges = append(edges, Edge{U: NodeID(u), V: NodeID(v)})
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("graph: read edge list: %w", err)
	}
	if nodes < 0 {
		nodes = maxID + 1
	}
	if maxID >= nodes {
		return nil, fmt.Errorf("graph: edge endpoint %d outside declared node count %d", maxID, nodes)
	}
	return FromEdges(nodes, edges)
}
