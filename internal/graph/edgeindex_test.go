package graph

import "testing"

func checkEdgeIndex(t *testing.T, g *Graph) {
	t.Helper()
	ix := g.EdgeIndex()
	if got, want := ix.NumSlots(), 2*g.NumEdges(); got != want {
		t.Fatalf("NumSlots = %d, want %d", got, want)
	}
	if len(ix.Offsets) != g.NumNodes()+1 {
		t.Fatalf("len(Offsets) = %d, want %d", len(ix.Offsets), g.NumNodes()+1)
	}
	for u := 0; u < g.NumNodes(); u++ {
		nbrs := g.Neighbors(NodeID(u))
		if got := int(ix.Offsets[u+1] - ix.Offsets[u]); got != len(nbrs) {
			t.Fatalf("node %d: slot range %d, want degree %d", u, got, len(nbrs))
		}
		for i, v := range nbrs {
			e := ix.OutSlot(NodeID(u), i)
			if ix.Targets[e] != v {
				t.Fatalf("slot %d: target %d, want %d", e, ix.Targets[e], v)
			}
			// Rev is the reverse edge and an involution.
			r := ix.Rev[e]
			if ix.Targets[r] != NodeID(u) || r < ix.Offsets[v] || r >= ix.Offsets[v+1] {
				t.Fatalf("Rev[%d] = %d is not the slot of (%d→%d)", e, r, v, u)
			}
			if ix.Rev[r] != e {
				t.Fatalf("Rev[Rev[%d]] = %d, want %d", e, ix.Rev[r], e)
			}
			// Slot lookup agrees with the layout.
			got, ok := ix.Slot(NodeID(u), v)
			if !ok || got != e {
				t.Fatalf("Slot(%d,%d) = %d,%v, want %d,true", u, v, got, ok, e)
			}
		}
	}
}

func TestEdgeIndexFamilies(t *testing.T) {
	for name, g := range map[string]*Graph{
		"path":     Path(7),
		"cycle":    Cycle(5),
		"star":     Star(9),
		"complete": Complete(8),
		"gnp":      GNP(60, 0.1, 3),
		"isolated": MustFromEdges(4, []Edge{{U: 1, V: 3}}), // nodes 0,2 isolated
	} {
		t.Run(name, func(t *testing.T) { checkEdgeIndex(t, g) })
	}
}

func TestEdgeIndexEmptyAndMissing(t *testing.T) {
	g := MustFromEdges(3, nil)
	ix := g.EdgeIndex()
	if ix.NumSlots() != 0 {
		t.Errorf("empty graph NumSlots = %d, want 0", ix.NumSlots())
	}
	if _, ok := ix.Slot(0, 1); ok {
		t.Error("Slot on a non-edge should report false")
	}
	if _, ok := ix.Slot(-1, 0); ok {
		t.Error("Slot with out-of-range source should report false")
	}
}

func TestEdgeIndexIsCached(t *testing.T) {
	g := Cycle(4)
	if g.EdgeIndex() != g.EdgeIndex() {
		t.Error("EdgeIndex should build once and return the same index")
	}
}
