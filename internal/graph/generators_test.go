package graph

import (
	"testing"
	"testing/quick"
)

func TestGNPDeterministicBySeed(t *testing.T) {
	a := GNP(50, 0.2, 7)
	b := GNP(50, 0.2, 7)
	if a.NumEdges() != b.NumEdges() {
		t.Fatalf("same seed produced different graphs: %d vs %d edges", a.NumEdges(), b.NumEdges())
	}
	for _, e := range a.Edges() {
		if !b.HasEdge(e.U, e.V) {
			t.Fatalf("same seed produced different edge sets (missing %v)", e)
		}
	}
	c := GNP(50, 0.2, 8)
	if c.NumEdges() == a.NumEdges() {
		// Edge counts may coincide; check the edge sets actually differ.
		same := true
		for _, e := range a.Edges() {
			if !c.HasEdge(e.U, e.V) {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical graphs (extremely unlikely)")
		}
	}
}

func TestGNPExtremeProbabilities(t *testing.T) {
	if g := GNP(20, 0, 1); g.NumEdges() != 0 {
		t.Errorf("GNP(p=0) has %d edges, want 0", g.NumEdges())
	}
	if g := GNP(20, 1, 1); g.NumEdges() != 20*19/2 {
		t.Errorf("GNP(p=1) has %d edges, want %d", g.NumEdges(), 20*19/2)
	}
	if g := GNP(20, -0.5, 1); g.NumEdges() != 0 {
		t.Errorf("GNP(p<0) should clamp to 0, got %d edges", g.NumEdges())
	}
	if g := GNP(20, 1.5, 1); g.NumEdges() != 20*19/2 {
		t.Errorf("GNP(p>1) should clamp to 1, got %d edges", g.NumEdges())
	}
	if g := GNP(-3, 0.5, 1); g.NumNodes() != 0 {
		t.Errorf("GNP(n<0) should clamp to empty graph, got n=%d", g.NumNodes())
	}
}

func TestGNPWithAverageDegree(t *testing.T) {
	g := GNPWithAverageDegree(400, 10, 3)
	avg := g.AverageDegree()
	if avg < 7 || avg > 13 {
		t.Errorf("average degree %.2f too far from target 10", avg)
	}
	if g := GNPWithAverageDegree(1, 10, 3); g.NumNodes() != 1 || g.NumEdges() != 0 {
		t.Error("n=1 should produce a single isolated node")
	}
}

func TestRandomRegular(t *testing.T) {
	g := RandomRegular(100, 6, 11)
	if g.MaxDegree() > 6 {
		t.Errorf("RandomRegular max degree %d exceeds requested 6", g.MaxDegree())
	}
	// The pairing model discards a few collisions; the average degree should
	// still be close to d.
	if avg := g.AverageDegree(); avg < 5 {
		t.Errorf("average degree %.2f suspiciously low for d=6", avg)
	}
	// Degenerate parameters.
	if g := RandomRegular(5, 10, 1); g.MaxDegree() > 4 {
		t.Errorf("d >= n should clamp to n-1, got Δ=%d", g.MaxDegree())
	}
	if g := RandomRegular(0, 3, 1); g.NumNodes() != 0 {
		t.Error("n=0 should produce the empty graph")
	}
	if g := RandomRegular(4, -2, 1); g.NumEdges() != 0 {
		t.Error("negative degree should clamp to 0")
	}
}

func TestGridAndTorus(t *testing.T) {
	g := Grid(3, 4)
	if g.NumNodes() != 12 {
		t.Fatalf("grid nodes = %d, want 12", g.NumNodes())
	}
	// Grid edges: 3*(4-1) horizontal + (3-1)*4 vertical = 9 + 8 = 17.
	if g.NumEdges() != 17 {
		t.Errorf("grid edges = %d, want 17", g.NumEdges())
	}
	if g.MaxDegree() != 4 {
		t.Errorf("grid Δ = %d, want 4", g.MaxDegree())
	}
	tor := Torus(4, 5)
	if tor.NumEdges() != 2*4*5 {
		t.Errorf("torus edges = %d, want %d", tor.NumEdges(), 2*4*5)
	}
	for u := 0; u < tor.NumNodes(); u++ {
		if tor.Degree(NodeID(u)) != 4 {
			t.Fatalf("torus node %d has degree %d, want 4", u, tor.Degree(NodeID(u)))
		}
	}
	// Small torus falls back to grid.
	small := Torus(2, 2)
	if small.NumEdges() != Grid(2, 2).NumEdges() {
		t.Error("small torus should fall back to grid")
	}
}

func TestSimpleFamilies(t *testing.T) {
	if g := Path(1); g.NumEdges() != 0 {
		t.Error("P1 should have no edges")
	}
	if g := Path(4); g.NumEdges() != 3 {
		t.Error("P4 should have 3 edges")
	}
	if g := Cycle(5); g.NumEdges() != 5 || g.MaxDegree() != 2 {
		t.Error("C5 should be 2-regular with 5 edges")
	}
	if g := Cycle(2); g.NumEdges() != 1 {
		t.Error("Cycle(2) should fall back to an edge")
	}
	if g := Star(7); g.MaxDegree() != 6 || g.NumEdges() != 6 {
		t.Error("Star(7) should have a degree-6 center")
	}
	if g := Complete(6); g.NumEdges() != 15 || g.MaxDegree() != 5 {
		t.Error("K6 should have 15 edges and Δ=5")
	}
	if g := CompleteBipartite(3, 4); g.NumEdges() != 12 || g.NumNodes() != 7 {
		t.Error("K(3,4) should have 12 edges on 7 nodes")
	}
	if g := CompleteBipartite(-1, 4); g.NumNodes() != 4 {
		t.Error("negative side should clamp to 0")
	}
}

func TestBalancedTree(t *testing.T) {
	g := BalancedTree(2, 3) // 1+2+4+8 = 15 nodes
	if g.NumNodes() != 15 {
		t.Fatalf("binary tree depth 3 has %d nodes, want 15", g.NumNodes())
	}
	if g.NumEdges() != 14 {
		t.Errorf("tree edges = %d, want n-1 = 14", g.NumEdges())
	}
	if !g.IsConnected() {
		t.Error("tree should be connected")
	}
	if g := BalancedTree(0, -1); g.NumNodes() != 1 {
		t.Error("degenerate tree parameters should clamp to a single root")
	}
}

func TestDoubleStar(t *testing.T) {
	g := DoubleStar(10)
	if g.NumNodes() != 22 || g.NumEdges() != 21 {
		t.Fatalf("double star: n=%d m=%d, want n=22 m=21", g.NumNodes(), g.NumEdges())
	}
	if g.Degree(0) != 11 || g.Degree(1) != 11 {
		t.Error("hub degrees should be leaves+1 = 11")
	}
	// In G², every leaf of hub a is adjacent to hub b.
	sq := g.Square()
	if !sq.HasEdge(2, 1) {
		t.Error("leaf of a should be a d2-neighbor of b")
	}
}

func TestCliqueChain(t *testing.T) {
	g := CliqueChain(4, 6, 0)
	if g.NumNodes() != 24 {
		t.Fatalf("clique chain nodes = %d, want 24", g.NumNodes())
	}
	wantEdges := 4*(6*5/2) + 3
	if g.NumEdges() != wantEdges {
		t.Errorf("clique chain edges = %d, want %d", g.NumEdges(), wantEdges)
	}
	if !g.IsConnected() {
		t.Error("clique chain should be connected")
	}
	if g := CliqueChain(0, 5, 0); g.NumNodes() != 0 {
		t.Error("count=0 should be empty")
	}
}

func TestUnitDisk(t *testing.T) {
	g := UnitDisk(100, 0.2, 5)
	if g.NumNodes() != 100 {
		t.Fatalf("unit disk nodes = %d, want 100", g.NumNodes())
	}
	if g.NumEdges() == 0 {
		t.Error("unit disk with radius 0.2 should have some edges")
	}
	if g := UnitDisk(100, 0, 5); g.NumEdges() != 0 {
		t.Error("radius 0 should produce no edges")
	}
	g2, xs, ys := UnitDiskPositions(50, 0.3, 5)
	if len(xs) != 50 || len(ys) != 50 {
		t.Error("positions should have length n")
	}
	if g2.NumNodes() != 50 {
		t.Error("UnitDiskPositions node count mismatch")
	}
}

func TestTaskResource(t *testing.T) {
	g := TaskResource(20, 10, 3, 9)
	if g.NumNodes() != 30 {
		t.Fatalf("task/resource nodes = %d, want 30", g.NumNodes())
	}
	for tsk := 0; tsk < 20; tsk++ {
		if g.Degree(NodeID(tsk)) != 3 {
			t.Errorf("task %d degree = %d, want 3", tsk, g.Degree(NodeID(tsk)))
		}
	}
	// Tasks form an independent set in G: no task-task edges.
	for tsk := 0; tsk < 20; tsk++ {
		for _, v := range g.Neighbors(NodeID(tsk)) {
			if int(v) < 20 {
				t.Fatalf("task %d adjacent to task %d", tsk, v)
			}
		}
	}
	if g := TaskResource(5, 2, 10, 1); g.MaxDegree() > 5 {
		t.Error("perTask should clamp to the number of resources")
	}
}

func TestGeneratorSpec(t *testing.T) {
	specs := []GeneratorSpec{
		{Kind: "gnp", N: 30, P: 0.1, Seed: 1},
		{Kind: "gnp-avg", N: 30, P: 4, Seed: 1},
		{Kind: "regular", N: 30, Degree: 4, Seed: 1},
		{Kind: "grid", N: 5, M: 6},
		{Kind: "torus", N: 5, M: 6},
		{Kind: "tree", N: 3, Degree: 2},
		{Kind: "cliquechain", N: 3, M: 5},
		{Kind: "unitdisk", N: 30, P: 0.3, Seed: 1},
		{Kind: "taskresource", N: 10, M: 5, Degree: 2, Seed: 1},
		{Kind: "complete", N: 6},
		{Kind: "cycle", N: 6},
		{Kind: "path", N: 6},
		{Kind: "star", N: 6},
		{Kind: "doublestar", Degree: 4},
	}
	for _, s := range specs {
		g, err := s.Generate()
		if err != nil {
			t.Errorf("Generate(%s): %v", s.Kind, err)
			continue
		}
		if g == nil {
			t.Errorf("Generate(%s) returned nil graph", s.Kind)
		}
	}
	if _, err := (GeneratorSpec{Kind: "bogus"}).Generate(); err == nil {
		t.Error("unknown generator kind should error")
	}
}

func TestPropertyGeneratorsSimple(t *testing.T) {
	// All generators must produce simple graphs: no self-loops and symmetric
	// adjacency (already enforced by Builder, this guards against regressions
	// if a generator bypasses it).
	f := func(seed int64) bool {
		gs := []*Graph{
			GNP(25, 0.2, seed),
			RandomRegular(25, 4, seed),
			UnitDisk(25, 0.25, seed),
			TaskResource(10, 8, 3, seed),
			CliqueChain(3, 5, seed),
		}
		for _, g := range gs {
			for u := 0; u < g.NumNodes(); u++ {
				for _, v := range g.Neighbors(NodeID(u)) {
					if v == NodeID(u) || !g.HasEdge(v, NodeID(u)) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestBFSAndComponents(t *testing.T) {
	g := Path(6)
	dist := g.BFS(0)
	for i, d := range dist {
		if d != i {
			t.Errorf("BFS dist[%d] = %d, want %d", i, d, i)
		}
	}
	lim := g.BFSLimited(0, 2)
	if lim[3] != -1 || lim[2] != 2 {
		t.Errorf("BFSLimited(0,2) = %v, want nodes beyond distance 2 unreachable", lim)
	}
	if d := g.Dist(0, 5); d != 5 {
		t.Errorf("Dist(0,5) = %d, want 5", d)
	}

	// Two components.
	g2 := MustFromEdges(5, []Edge{{0, 1}, {2, 3}})
	comp, k := g2.ConnectedComponents()
	if k != 3 {
		t.Errorf("components = %d, want 3", k)
	}
	if comp[0] != comp[1] || comp[2] != comp[3] || comp[0] == comp[2] {
		t.Errorf("component labels wrong: %v", comp)
	}
	if g2.IsConnected() {
		t.Error("disconnected graph reported connected")
	}
	if g2.Diameter() != -1 {
		t.Error("diameter of disconnected graph should be -1")
	}
	if d := Cycle(6).Diameter(); d != 3 {
		t.Errorf("diameter of C6 = %d, want 3", d)
	}
	if d := NewBuilder(1).Build().Diameter(); d != 0 {
		t.Errorf("diameter of a single node = %d, want 0", d)
	}
	if e := NewBuilder(0).Build(); !e.IsConnected() {
		t.Error("empty graph should be considered connected")
	}
}

func TestBFSOutOfRangeSource(t *testing.T) {
	g := Path(4)
	dist := g.BFS(NodeID(10))
	for _, d := range dist {
		if d != -1 {
			t.Error("out-of-range source should leave all nodes unreachable")
		}
	}
}

func TestComputeStats(t *testing.T) {
	g := Star(10)
	st := ComputeStats(g)
	if st.Nodes != 10 || st.Edges != 9 || st.MaxDegree != 9 || st.MinDegree != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.MaxDist2Deg != 9 {
		t.Errorf("MaxDist2Deg = %d, want 9 (star squares to a clique)", st.MaxDist2Deg)
	}
	if st.Components != 1 {
		t.Errorf("components = %d, want 1", st.Components)
	}
	if st.SquaredBound != 81 {
		t.Errorf("Δ² = %d, want 81", st.SquaredBound)
	}
	if st.String() == "" {
		t.Error("Stats.String should be non-empty")
	}
	empty := ComputeStats(NewBuilder(0).Build())
	if empty.Nodes != 0 {
		t.Error("empty stats should have 0 nodes")
	}
}

func TestGNPTinyProbabilityDoesNotOverflow(t *testing.T) {
	// Regression: for p small enough that a geometric skip exceeds MaxInt64,
	// the float→int conversion used to wrap negative and emit ~n²/2 edges.
	g := GNP(1000, 1e-300, 1)
	if g.NumEdges() != 0 {
		t.Fatalf("GNP(1000, 1e-300) produced %d edges, want 0", g.NumEdges())
	}
	g = GNP(1000, 4e-18, 2)
	if g.NumEdges() != 0 {
		t.Fatalf("GNP(1000, 4e-18) produced %d edges, want 0", g.NumEdges())
	}
}

func TestBarabasiAlbertDegreeInvariants(t *testing.T) {
	for _, tc := range []struct{ n, m int }{{200, 1}, {200, 3}, {3000, 2}, {3000, 5}} {
		g, eff := BarabasiAlbertEffective(tc.n, tc.m, 42)
		if eff != tc.m {
			t.Fatalf("BA(%d,%d): effective m = %d, want %d", tc.n, tc.m, eff, tc.m)
		}
		// Exact edge count: seed clique on m+1 nodes plus m distinct
		// attachments per later node — the generator never drops an edge.
		wantEdges := tc.m*(tc.m+1)/2 + (tc.n-tc.m-1)*tc.m
		if g.NumEdges() != wantEdges {
			t.Errorf("BA(%d,%d): %d edges, want %d", tc.n, tc.m, g.NumEdges(), wantEdges)
		}
		degSum := 0
		minDeg := tc.n
		for v := 0; v < tc.n; v++ {
			d := g.Degree(NodeID(v))
			degSum += d
			if d < minDeg {
				minDeg = d
			}
		}
		if degSum != 2*wantEdges {
			t.Errorf("BA(%d,%d): degree sum %d, want %d", tc.n, tc.m, degSum, 2*wantEdges)
		}
		if minDeg < tc.m {
			t.Errorf("BA(%d,%d): min degree %d < m", tc.n, tc.m, minDeg)
		}
		// Preferential attachment concentrates degree on hubs: the maximum
		// degree must sit far above the m..2m band a uniform-attachment
		// graph of the same density would produce.
		if g.MaxDegree() < 3*tc.m {
			t.Errorf("BA(%d,%d): max degree %d shows no heavy tail (want >= %d)", tc.n, tc.m, g.MaxDegree(), 3*tc.m)
		}
		if !g.IsConnected() {
			t.Errorf("BA(%d,%d): not connected", tc.n, tc.m)
		}
	}
}

func TestBarabasiAlbertDeterministicBySeed(t *testing.T) {
	a := BarabasiAlbert(500, 3, 7)
	b := BarabasiAlbert(500, 3, 7)
	for v := 0; v < 500; v++ {
		if !slicesEqualNodeIDs(a.Neighbors(NodeID(v)), b.Neighbors(NodeID(v))) {
			t.Fatalf("BA(500,3,7): node %d adjacency differs between identical seeds", v)
		}
	}
	c := BarabasiAlbert(500, 3, 8)
	same := true
	for v := 0; v < 500 && same; v++ {
		same = slicesEqualNodeIDs(a.Neighbors(NodeID(v)), c.Neighbors(NodeID(v)))
	}
	if same {
		t.Fatal("BA(500,3): seeds 7 and 8 produced identical graphs")
	}
}

func slicesEqualNodeIDs(a, b []NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestBarabasiAlbertEffectiveClamps(t *testing.T) {
	if g, eff := BarabasiAlbertEffective(50, 0, 1); eff != 1 || g.NumEdges() != 1+48 {
		t.Errorf("m=0 should clamp to 1: eff=%d edges=%d", eff, g.NumEdges())
	}
	if g, eff := BarabasiAlbertEffective(6, 10, 1); eff != 5 || g.NumEdges() != 15 {
		t.Errorf("m >= n should clamp to n-1 (complete graph): eff=%d edges=%d", eff, g.NumEdges())
	}
	if g, eff := BarabasiAlbertEffective(1, 3, 1); eff != 0 || g.NumNodes() != 1 || g.NumEdges() != 0 {
		t.Errorf("n=1: eff=%d nodes=%d edges=%d", eff, g.NumNodes(), g.NumEdges())
	}
	if g, eff := BarabasiAlbertEffective(-4, 3, 1); eff != 0 || g.NumNodes() != 0 {
		t.Errorf("n<0: eff=%d nodes=%d", eff, g.NumNodes())
	}
}

func TestGeneratorSpecBA(t *testing.T) {
	g, err := GeneratorSpec{Kind: "ba", N: 300, Degree: 2, Seed: 5}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	direct := BarabasiAlbert(300, 2, 5)
	if g.NumNodes() != direct.NumNodes() || g.NumEdges() != direct.NumEdges() {
		t.Fatalf("spec BA (%d nodes, %d edges) != direct (%d, %d)",
			g.NumNodes(), g.NumEdges(), direct.NumNodes(), direct.NumEdges())
	}
}
