package graph

import (
	"fmt"
	"slices"
)

// This file implements the mutation plane of the substrate: a Graph stays an
// immutable CSR, and churn (edge/node insert and delete) accumulates in an
// Overlay — a delta layer over a base CSR that answers the same neighborhood
// and streaming distance-2 queries the static plane does, without ever
// rebuilding the CSR per mutation. Compact folds the accumulated deltas back
// into a fresh CSR when the repair machinery wants the 0-alloc static kernels
// back.
//
// The design extends the generation-stamped MarkSet/Dist2View idea: every
// mutation bumps a generation counter, so downstream caches (views, repair
// sessions) can detect staleness with one integer compare instead of
// subscribing to mutation events.

// Overlay is a mutable delta layer over an immutable base Graph. It supports
// edge insert/delete, appending new nodes, and removing nodes, while serving
// merged adjacency queries over base+delta:
//
//   - per-node added and deleted neighbor lists are kept sorted, so
//     ForEachNeighbor is a sorted three-way merge (base minus deleted, plus
//     added) and iteration order matches what a rebuilt CSR would produce;
//   - removed nodes are tombstoned and filtered from every stream;
//   - ForEachDist2 streams distance-2 neighborhoods over the merged adjacency
//     in exactly Dist2View's visit order (direct neighbors ascending first,
//     then two-hop in walk order), so overlay and rebuilt-CSR views are
//     sequence-identical, not just set-identical.
//
// An Overlay is NOT safe for concurrent use, and like Dist2View its streaming
// methods must not be re-entered from inside a callback. Mutation cost is
// O(deg) per edge op (sorted-slice insert); query cost matches the static
// plane asymptotically. When churn has settled, Compact() emits an immutable
// Graph preserving node IDs (removed nodes become isolated), which the static
// kernels consume.
type Overlay struct {
	base  *Graph
	baseN int
	n     int    // current node count, including appended and tombstoned nodes
	gen   uint64 // bumped by every effective mutation
	dead  []bool
	nDead int
	add   map[NodeID][]NodeID // sorted added neighbors, mirrored on both endpoints
	del   map[NodeID][]NodeID // sorted deleted base neighbors, mirrored
	m     int                 // live undirected edge count

	// dist2 streaming scratch, sized lazily to the current node count.
	marks   *MarkSet
	scratch []NodeID
}

// NewOverlay returns an overlay over base with no pending deltas.
func NewOverlay(base *Graph) *Overlay {
	n := base.NumNodes()
	return &Overlay{
		base:  base,
		baseN: n,
		n:     n,
		dead:  make([]bool, n),
		add:   make(map[NodeID][]NodeID),
		del:   make(map[NodeID][]NodeID),
		m:     base.NumEdges(),
	}
}

// Base returns the immutable graph the overlay was created over.
func (o *Overlay) Base() *Graph { return o.base }

// Generation returns the mutation counter: it increases by at least one for
// every effective mutation (no-op mutations do not bump it), so caches keyed
// on an overlay can detect staleness with one compare.
func (o *Overlay) Generation() uint64 { return o.gen }

// NumNodes returns the size of the dense ID space 0..n-1, including removed
// (tombstoned) nodes — IDs are never recycled.
func (o *Overlay) NumNodes() int { return o.n }

// NumLiveNodes returns the number of nodes that have not been removed.
func (o *Overlay) NumLiveNodes() int { return o.n - o.nDead }

// NumEdges returns the number of live undirected edges.
func (o *Overlay) NumEdges() int { return o.m }

// Alive reports whether v is a valid, non-removed node.
func (o *Overlay) Alive(v NodeID) bool {
	return int(v) >= 0 && int(v) < o.n && !o.dead[v]
}

// AddNodes appends k isolated nodes and returns the ID of the first one.
// It panics with ErrTooManyNodes beyond the 32-bit node plane.
func (o *Overlay) AddNodes(k int) NodeID {
	if k <= 0 {
		return NodeID(o.n)
	}
	if o.n+k > MaxNodes {
		panic(fmt.Errorf("%w: n=%d", ErrTooManyNodes, o.n+k))
	}
	first := NodeID(o.n)
	o.n += k
	o.dead = append(o.dead, make([]bool, k)...)
	o.gen++
	return first
}

// RemoveNode tombstones v and its incident edges. It reports whether v was
// alive (false is a no-op).
func (o *Overlay) RemoveNode(v NodeID) bool {
	if !o.Alive(v) {
		return false
	}
	o.m -= o.Degree(v)
	o.dead[v] = true
	o.nDead++
	o.gen++
	return true
}

// AddEdge inserts the undirected edge {u, v}. Inserting an existing live edge
// is a no-op; re-inserting a deleted base edge un-deletes it. Errors mirror
// Builder.AddEdge: self-loops, out-of-range endpoints, and removed endpoints.
func (o *Overlay) AddEdge(u, v NodeID) error {
	if u == v {
		return fmt.Errorf("%w: {%d,%d}", ErrSelfLoop, u, v)
	}
	if !o.Alive(u) || !o.Alive(v) {
		return fmt.Errorf("%w: {%d,%d} with n=%d", ErrNodeOutOfRange, u, v, o.n)
	}
	if o.baseEdge(u, v) {
		if sortedRemove(o.del, u, v) { // was deleted: un-delete
			sortedRemove(o.del, v, u)
			o.m++
			o.gen++
		}
		return nil
	}
	if sortedInsert(o.add, u, v) {
		sortedInsert(o.add, v, u)
		o.m++
		o.gen++
	}
	return nil
}

// RemoveEdge deletes the undirected edge {u, v}, reporting whether a live
// edge was removed.
func (o *Overlay) RemoveEdge(u, v NodeID) bool {
	if u == v || !o.Alive(u) || !o.Alive(v) {
		return false
	}
	if sortedRemove(o.add, u, v) {
		sortedRemove(o.add, v, u)
		o.m--
		o.gen++
		return true
	}
	if o.baseEdge(u, v) && sortedInsert(o.del, u, v) {
		sortedInsert(o.del, v, u)
		o.m--
		o.gen++
		return true
	}
	return false
}

// HasEdge reports whether {u, v} is a live edge.
func (o *Overlay) HasEdge(u, v NodeID) bool {
	if u == v || !o.Alive(u) || !o.Alive(v) {
		return false
	}
	if containsSorted(o.add[u], v) {
		return true
	}
	return o.baseEdge(u, v) && !containsSorted(o.del[u], v)
}

// baseEdge reports whether {u, v} is an edge of the base CSR (ignoring
// deltas). Appended nodes have no base adjacency.
func (o *Overlay) baseEdge(u, v NodeID) bool {
	return int(u) < o.baseN && int(v) < o.baseN && o.base.HasEdge(u, v)
}

// Degree returns the live degree of u (0 for removed nodes).
func (o *Overlay) Degree(u NodeID) int {
	d := 0
	o.forEachNeighbor(u, func(NodeID) bool { d++; return true })
	return d
}

// ForEachNeighbor calls fn for every live neighbor of u in ascending order.
// fn returning false stops the stream early.
func (o *Overlay) ForEachNeighbor(u NodeID, fn func(v NodeID) bool) {
	o.forEachNeighbor(u, fn)
}

// AppendNeighbors appends the live neighbors of u (ascending) to buf.
func (o *Overlay) AppendNeighbors(buf []NodeID, u NodeID) []NodeID {
	o.forEachNeighbor(u, func(v NodeID) bool {
		buf = append(buf, v)
		return true
	})
	return buf
}

// forEachNeighbor is the sorted merge of base-minus-deleted and added
// neighbor lists, filtered by tombstones. It reports whether the walk ran to
// completion (false = fn stopped it).
func (o *Overlay) forEachNeighbor(u NodeID, fn func(v NodeID) bool) bool {
	if !o.Alive(u) {
		return true
	}
	var base []NodeID
	if int(u) < o.baseN {
		base = o.base.Neighbors(u)
	}
	added := o.add[u]
	deleted := o.del[u]
	i, j, k := 0, 0, 0
	for i < len(base) || j < len(added) {
		var v NodeID
		// Base and added lists are disjoint by invariant, so plain <= never
		// sees a tie; take the smaller head.
		if j >= len(added) || (i < len(base) && base[i] <= added[j]) {
			v = base[i]
			i++
			for k < len(deleted) && deleted[k] < v {
				k++
			}
			if k < len(deleted) && deleted[k] == v {
				continue
			}
		} else {
			v = added[j]
			j++
		}
		if o.dead[v] {
			continue
		}
		if !fn(v) {
			return false
		}
	}
	return true
}

// ensureDist2 sizes the streaming scratch to the current node count.
func (o *Overlay) ensureDist2() {
	if o.marks == nil {
		o.marks = NewMarkSet(o.n)
	} else {
		o.marks.Grow(o.n)
	}
}

// ForEachDist2 calls fn for every live distance-2 neighbor of u (distance 1
// or 2, excluding u), each exactly once, in exactly Dist2View's order: direct
// neighbors first in ascending order, then two-hop neighbors in walk order.
// Streaming a rebuilt Compact() CSR with a Dist2View therefore produces the
// identical sequence. fn returning false stops the stream early. Like
// Dist2View, not re-entrant and not safe for concurrent use.
func (o *Overlay) ForEachDist2(u NodeID, fn func(v NodeID) bool) {
	if !o.Alive(u) {
		return
	}
	o.ensureDist2()
	o.marks.Reset()
	o.marks.Add(u)
	o.scratch = o.scratch[:0]
	done := o.forEachNeighbor(u, func(v NodeID) bool {
		o.scratch = append(o.scratch, v)
		o.marks.Add(v)
		return fn(v)
	})
	if !done {
		return
	}
	// o.scratch now snapshots N(u); nested neighbor walks do not touch it.
	for _, v := range o.scratch {
		done := o.forEachNeighbor(v, func(w NodeID) bool {
			if o.marks.Add(w) {
				return fn(w)
			}
			return true
		})
		if !done {
			return
		}
	}
}

// AppendDist2 appends the live distance-2 neighbors of u to buf.
func (o *Overlay) AppendDist2(buf []NodeID, u NodeID) []NodeID {
	o.ForEachDist2(u, func(v NodeID) bool {
		buf = append(buf, v)
		return true
	})
	return buf
}

// Dist2Degree returns |N_{G²}(u)| over the merged adjacency.
func (o *Overlay) Dist2Degree(u NodeID) int {
	d := 0
	o.ForEachDist2(u, func(NodeID) bool { d++; return true })
	return d
}

// Compact folds the accumulated deltas into a fresh immutable Graph with the
// same dense ID space (removed nodes stay as isolated IDs, so colorings and
// other node-indexed state carry over without relabelling). The overlay
// remains usable afterwards; callers who want a clean slate wrap the result
// in NewOverlay.
func (o *Overlay) Compact() *Graph {
	b := NewBuilder(o.n)
	b.Grow(o.m)
	for u := 0; u < o.n; u++ {
		o.forEachNeighbor(NodeID(u), func(v NodeID) bool {
			if v > NodeID(u) {
				if err := b.AddEdge(NodeID(u), v); err != nil {
					panic(err) // unreachable: overlay invariants imply valid edges
				}
			}
			return true
		})
	}
	return b.Build()
}

// sortedInsert inserts v into m[u] keeping the slice sorted; it reports
// whether v was newly inserted.
func sortedInsert(m map[NodeID][]NodeID, u, v NodeID) bool {
	lst := m[u]
	i, found := slices.BinarySearch(lst, v)
	if found {
		return false
	}
	m[u] = slices.Insert(lst, i, v)
	return true
}

// sortedRemove removes v from m[u], reporting whether it was present.
func sortedRemove(m map[NodeID][]NodeID, u, v NodeID) bool {
	lst := m[u]
	i, found := slices.BinarySearch(lst, v)
	if !found {
		return false
	}
	m[u] = slices.Delete(lst, i, i+1)
	return true
}

// containsSorted reports whether sorted lst contains v.
func containsSorted(lst []NodeID, v NodeID) bool {
	_, found := slices.BinarySearch(lst, v)
	return found
}
