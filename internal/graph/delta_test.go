package graph

import (
	"fmt"
	"slices"
	"testing"

	"d2color/internal/rng"
)

func TestOverlayBasicOps(t *testing.T) {
	base := MustFromEdges(4, []Edge{{0, 1}, {1, 2}, {2, 3}})
	o := NewOverlay(base)
	if o.NumNodes() != 4 || o.NumEdges() != 3 || o.NumLiveNodes() != 4 {
		t.Fatalf("fresh overlay: n=%d m=%d live=%d", o.NumNodes(), o.NumEdges(), o.NumLiveNodes())
	}
	gen := o.Generation()

	// No-op insert of an existing base edge must not bump the generation.
	if err := o.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if o.Generation() != gen || o.NumEdges() != 3 {
		t.Fatalf("no-op AddEdge changed state: gen %d→%d m=%d", gen, o.Generation(), o.NumEdges())
	}

	// Delete a base edge, then re-add it (un-delete path).
	if !o.RemoveEdge(1, 2) || o.HasEdge(1, 2) || o.NumEdges() != 2 {
		t.Fatalf("RemoveEdge(1,2) failed: m=%d has=%v", o.NumEdges(), o.HasEdge(1, 2))
	}
	if o.RemoveEdge(1, 2) {
		t.Fatal("double RemoveEdge reported true")
	}
	if err := o.AddEdge(2, 1); err != nil {
		t.Fatal(err)
	}
	if !o.HasEdge(1, 2) || o.NumEdges() != 3 {
		t.Fatalf("un-delete failed: m=%d", o.NumEdges())
	}

	// New delta edge, then remove it again.
	if err := o.AddEdge(0, 3); err != nil {
		t.Fatal(err)
	}
	if !o.HasEdge(3, 0) || o.NumEdges() != 4 {
		t.Fatal("delta edge missing")
	}
	if !o.RemoveEdge(0, 3) || o.NumEdges() != 3 {
		t.Fatal("delta edge removal failed")
	}

	// Node append + wiring.
	v := o.AddNodes(2)
	if v != 4 || o.NumNodes() != 6 {
		t.Fatalf("AddNodes: first=%d n=%d", v, o.NumNodes())
	}
	if err := o.AddEdge(4, 5); err != nil {
		t.Fatal(err)
	}
	if err := o.AddEdge(4, 0); err != nil {
		t.Fatal(err)
	}
	if got := o.AppendNeighbors(nil, 4); !slices.Equal(got, []NodeID{0, 5}) {
		t.Fatalf("neighbors of appended node: %v", got)
	}

	// Node removal tombstones incident edges and blocks further wiring.
	if !o.RemoveNode(1) || o.Alive(1) || o.NumLiveNodes() != 5 {
		t.Fatal("RemoveNode(1) failed")
	}
	if o.NumEdges() != 3 { // lost {0,1} and {1,2}
		t.Fatalf("edges after RemoveNode: m=%d want 3", o.NumEdges())
	}
	if o.HasEdge(0, 1) || o.Degree(1) != 0 {
		t.Fatal("tombstoned node still adjacent")
	}
	if err := o.AddEdge(1, 3); err == nil {
		t.Fatal("AddEdge to removed node succeeded")
	}
	if err := o.AddEdge(2, 2); err == nil {
		t.Fatal("self-loop accepted")
	}
}

func TestOverlayCompactPreservesIDs(t *testing.T) {
	base := MustFromEdges(5, []Edge{{0, 1}, {1, 2}, {3, 4}})
	o := NewOverlay(base)
	o.RemoveNode(1)
	if err := o.AddEdge(0, 2); err != nil {
		t.Fatal(err)
	}
	g := o.Compact()
	if g.NumNodes() != 5 {
		t.Fatalf("Compact changed node space: n=%d", g.NumNodes())
	}
	if g.Degree(1) != 0 {
		t.Fatalf("removed node has degree %d in compacted graph", g.Degree(1))
	}
	want := []Edge{{0, 2}, {3, 4}}
	if got := g.Edges(); !slices.Equal(got, want) {
		t.Fatalf("compacted edges %v want %v", got, want)
	}
}

// oracleState mirrors an Overlay with a naive edge map so churn scripts can
// be checked against a from-scratch rebuild.
type oracleState struct {
	n     int
	alive []bool
	edges map[Edge]bool
}

func (s *oracleState) addEdge(u, v NodeID)    { s.edges[Edge{u, v}.Normalize()] = true }
func (s *oracleState) removeEdge(u, v NodeID) { delete(s.edges, Edge{u, v}.Normalize()) }

func (s *oracleState) rebuild(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder(s.n)
	for e := range s.edges {
		if err := b.AddEdge(e.U, e.V); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

// TestOverlayMatchesRebuiltCSROracle is the delta-overlay vs rebuilt-CSR
// oracle: random churn scripts (edge insert/delete, node append/remove) run
// against both an Overlay and a naive edge-map mirror, and after every batch
// the overlay's merged adjacency, its Compact() output, and — crucially — its
// ForEachDist2 stream must be sequence-identical to a Dist2View over the
// from-scratch rebuilt CSR.
func TestOverlayMatchesRebuiltCSROracle(t *testing.T) {
	families := []struct {
		name string
		base *Graph
	}{
		{"gnp", GNPWithAverageDegree(120, 6, 3)},
		{"unitdisk", UnitDisk(90, 0.16, 5)},
		{"grid", Grid(8, 9)},
		{"star", Star(30)},
	}
	for _, fam := range families {
		for _, seed := range []uint64{1, 7, 42} {
			t.Run(fmt.Sprintf("%s/seed%d", fam.name, seed), func(t *testing.T) {
				o := NewOverlay(fam.base)
				st := &oracleState{n: fam.base.NumNodes(), alive: make([]bool, fam.base.NumNodes()), edges: map[Edge]bool{}}
				for i := range st.alive {
					st.alive[i] = true
				}
				for _, e := range fam.base.Edges() {
					st.edges[e] = true
				}
				src := rng.New(seed)
				for batch := 0; batch < 6; batch++ {
					churnBatch(t, o, st, src, 25)
					checkOverlayAgainstOracle(t, o, st)
				}
			})
		}
	}
}

// churnBatch applies ops random mutations to both the overlay and the mirror.
func churnBatch(t *testing.T, o *Overlay, st *oracleState, src *rng.Source, ops int) {
	t.Helper()
	for i := 0; i < ops; i++ {
		switch op := src.Intn(100); {
		case op < 45: // insert edge
			u, v := NodeID(src.Intn(st.n)), NodeID(src.Intn(st.n))
			err := o.AddEdge(u, v)
			if u == v || !st.alive[u] || !st.alive[v] {
				if err == nil {
					t.Fatalf("AddEdge(%d,%d) accepted invalid endpoints", u, v)
				}
				continue
			}
			if err != nil {
				t.Fatalf("AddEdge(%d,%d): %v", u, v, err)
			}
			st.addEdge(u, v)
		case op < 80: // delete edge
			u, v := NodeID(src.Intn(st.n)), NodeID(src.Intn(st.n))
			removed := o.RemoveEdge(u, v)
			want := u != v && st.alive[u] && st.alive[v] && st.edges[Edge{u, v}.Normalize()]
			if removed != want {
				t.Fatalf("RemoveEdge(%d,%d)=%v want %v", u, v, removed, want)
			}
			if removed {
				st.removeEdge(u, v)
			}
		case op < 90: // append a node and wire it to two random live nodes
			v := o.AddNodes(1)
			st.n++
			st.alive = append(st.alive, true)
			if int(v) != st.n-1 {
				t.Fatalf("AddNodes returned %d want %d", v, st.n-1)
			}
			for j := 0; j < 2; j++ {
				u := NodeID(src.Intn(st.n))
				if u != v && st.alive[u] {
					if err := o.AddEdge(v, u); err != nil {
						t.Fatal(err)
					}
					st.addEdge(v, u)
				}
			}
		default: // remove a node
			v := NodeID(src.Intn(st.n))
			removed := o.RemoveNode(v)
			if removed != st.alive[v] {
				t.Fatalf("RemoveNode(%d)=%v want %v", v, removed, st.alive[v])
			}
			if removed {
				st.alive[v] = false
				for e := range st.edges {
					if e.U == v || e.V == v {
						delete(st.edges, e)
					}
				}
			}
		}
	}
}

func checkOverlayAgainstOracle(t *testing.T, o *Overlay, st *oracleState) {
	t.Helper()
	want := st.rebuild(t)
	if o.NumNodes() != want.NumNodes() || o.NumEdges() != want.NumEdges() {
		t.Fatalf("overlay n=%d m=%d; oracle n=%d m=%d", o.NumNodes(), o.NumEdges(), want.NumNodes(), want.NumEdges())
	}
	compact := o.Compact()
	if !slices.Equal(compact.Edges(), want.Edges()) {
		t.Fatal("Compact() edge set diverges from oracle rebuild")
	}
	view := NewDist2View(want)
	var got, exp []NodeID
	for u := 0; u < st.n; u++ {
		v := NodeID(u)
		if got := o.Degree(v); got != want.Degree(v) {
			t.Fatalf("Degree(%d)=%d oracle %d", u, got, want.Degree(v))
		}
		if got = o.AppendNeighbors(got[:0], v); !slices.Equal(got, want.Neighbors(v)) {
			t.Fatalf("Neighbors(%d)=%v oracle %v", u, got, want.Neighbors(v))
		}
		got, exp = o.AppendDist2(got[:0], v), view.AppendDist2(exp[:0], v)
		if !st.alive[v] {
			exp = exp[:0] // tombstoned nodes stream nothing from the overlay
		}
		if !slices.Equal(got, exp) {
			t.Fatalf("ForEachDist2(%d) sequence %v, oracle Dist2View %v", u, got, exp)
		}
	}
}

func TestOverlayDist2EarlyStop(t *testing.T) {
	o := NewOverlay(Path(6))
	count := 0
	o.ForEachDist2(2, func(NodeID) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Fatalf("early stop visited %d nodes, want 2", count)
	}
}
