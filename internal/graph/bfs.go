package graph

// BFS performs a breadth-first search from src and returns a slice of
// distances indexed by node ID; unreachable nodes have distance -1.
func (g *Graph) BFS(src NodeID) []int {
	return g.BFSLimited(src, g.n)
}

// BFSLimited performs a breadth-first search from src, exploring only up to
// maxDist hops. Nodes further than maxDist (or unreachable) have distance -1.
func (g *Graph) BFSLimited(src NodeID, maxDist int) []int {
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = -1
	}
	if int(src) < 0 || int(src) >= g.n {
		return dist
	}
	dist[src] = 0
	queue := []NodeID{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		if dist[u] >= maxDist {
			continue
		}
		for _, v := range g.Neighbors(u) {
			if dist[v] == -1 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// ConnectedComponents returns a component label for every node (labels are
// dense, starting at 0) and the number of components.
func (g *Graph) ConnectedComponents() ([]int, int) {
	comp := make([]int, g.n)
	for i := range comp {
		comp[i] = -1
	}
	next := 0
	for s := 0; s < g.n; s++ {
		if comp[s] != -1 {
			continue
		}
		comp[s] = next
		queue := []NodeID{NodeID(s)}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range g.Neighbors(u) {
				if comp[v] == -1 {
					comp[v] = next
					queue = append(queue, v)
				}
			}
		}
		next++
	}
	return comp, next
}

// IsConnected reports whether the graph is connected (the empty graph and the
// single-node graph are connected).
func (g *Graph) IsConnected() bool {
	if g.n <= 1 {
		return true
	}
	_, k := g.ConnectedComponents()
	return k == 1
}

// Eccentricity returns the maximum finite BFS distance from src, or -1 if the
// graph rooted at src reaches no other node.
func (g *Graph) Eccentricity(src NodeID) int {
	dist := g.BFS(src)
	ecc := -1
	for _, d := range dist {
		if d > ecc {
			ecc = d
		}
	}
	return ecc
}

// Diameter returns the exact diameter of the graph (maximum eccentricity over
// all nodes). It returns -1 for disconnected graphs and 0 for graphs with at
// most one node. The computation is O(n·m); intended for test/benchmark-sized
// graphs.
func (g *Graph) Diameter() int {
	if g.n <= 1 {
		return 0
	}
	if !g.IsConnected() {
		return -1
	}
	diam := 0
	for u := 0; u < g.n; u++ {
		if e := g.Eccentricity(NodeID(u)); e > diam {
			diam = e
		}
	}
	return diam
}

// Dist returns the BFS distance between u and v, or -1 if disconnected.
func (g *Graph) Dist(u, v NodeID) int {
	return g.BFS(u)[v]
}
