package graph

import (
	"fmt"
	"testing"
)

// The acceptance workload of the streaming-substrate PR: G(n=20k, avgdeg=32),
// whose square has ~Δ²≈10³-degree neighborhoods. BenchmarkDist2View streams
// every distance-2 neighborhood (the dominant substrate operation of the
// coloring layers) while BenchmarkSquareMaterialize pays for the standing G².
// Compare the allocated-bytes columns: the view stays at O(n) regardless of
// |E(G²)|.
func benchGraph(b *testing.B) *Graph {
	b.Helper()
	return GNPWithAverageDegree(20000, 32, 7)
}

func BenchmarkDist2View(b *testing.B) {
	g := benchGraph(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		view := NewDist2View(g)
		total := 0
		for u := 0; u < g.NumNodes(); u++ {
			view.ForEachDist2(NodeID(u), func(NodeID) bool { total++; return true })
		}
		b.ReportMetric(float64(total/2), "d2-edges")
	}
}

func BenchmarkSquareMaterialize(b *testing.B) {
	g := benchGraph(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sq := NewDist2View(g).Materialize()
		b.ReportMetric(float64(sq.NumEdges()), "d2-edges")
	}
}

// mapBuilderReference is the pre-refactor Builder (per-node hash sets), kept
// here as the benchmark baseline for the append-then-sort-dedupe builder.
type mapBuilderReference struct {
	n   int
	adj []map[NodeID]struct{}
}

func newMapBuilderReference(n int) *mapBuilderReference {
	adj := make([]map[NodeID]struct{}, n)
	for i := range adj {
		adj[i] = make(map[NodeID]struct{})
	}
	return &mapBuilderReference{n: n, adj: adj}
}

func (b *mapBuilderReference) addEdge(u, v NodeID) {
	if _, ok := b.adj[u][v]; ok {
		return
	}
	b.adj[u][v] = struct{}{}
	b.adj[v][u] = struct{}{}
}

func (b *mapBuilderReference) build() *Graph {
	gb := NewBuilder(b.n)
	for u := range b.adj {
		for v := range b.adj[u] {
			if NodeID(u) < v {
				_ = gb.AddEdge(NodeID(u), v)
			}
		}
	}
	return gb.Build()
}

func builderBenchEdges() []Edge {
	g := GNPWithAverageDegree(20000, 32, 7)
	return g.Edges()
}

func BenchmarkBuilderSortDedupe(b *testing.B) {
	edges := builderBenchEdges()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bl := NewBuilder(20000)
		bl.Grow(len(edges))
		for _, e := range edges {
			_ = bl.AddEdge(e.U, e.V)
		}
		g := bl.Build()
		if g.NumEdges() != len(edges) {
			b.Fatal("edge count mismatch")
		}
	}
}

func BenchmarkBuilderMapReference(b *testing.B) {
	edges := builderBenchEdges()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bl := newMapBuilderReference(20000)
		for _, e := range edges {
			bl.addEdge(e.U, e.V)
		}
		g := bl.build()
		if g.NumEdges() != len(edges) {
			b.Fatal("edge count mismatch")
		}
	}
}

// BenchmarkDist2ViewSizes tracks the view's per-scale cost so harness sweeps
// can be sized from benchmark output alone.
func BenchmarkDist2ViewSizes(b *testing.B) {
	for _, n := range []int{1000, 10000, 100000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			g := GNPWithAverageDegree(n, 16, 7)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				view := NewDist2View(g)
				maxDeg := view.MaxDist2Degree()
				_ = maxDeg
			}
		})
	}
}
