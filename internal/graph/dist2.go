package graph

import "fmt"

// This file implements the streaming distance-2 plane: the paper's whole
// point is coloring G² in CONGEST without ever constructing G², and the
// substrate mirrors that. A Dist2View answers neighborhood queries on G² by
// walking the CSR arrays of G with a reusable generation-stamped mark buffer,
// so no per-node set, map, or materialized square adjacency is ever
// allocated. Graph.Square() remains available as a test oracle only.

// MarkSet is a generation-stamped membership set over dense IDs in [0, n).
// Reset is O(1): it bumps the generation instead of clearing the buffer.
// Algorithm layers pool MarkSets next to their Dist2Views for conflict
// checks, sparsity counting and similarity intersection.
type MarkSet struct {
	mark []uint32
	gen  uint32
}

// NewMarkSet returns a MarkSet for IDs 0..n-1.
func NewMarkSet(n int) *MarkSet {
	if n < 0 {
		n = 0
	}
	return &MarkSet{mark: make([]uint32, n), gen: 1}
}

// Reset empties the set in O(1) by advancing the generation stamp.
func (s *MarkSet) Reset() {
	s.gen++
	if s.gen == 0 { // wrapped after 2³² resets: clear once, start over
		for i := range s.mark {
			s.mark[i] = 0
		}
		s.gen = 1
	}
}

// Add inserts v and reports whether it was newly inserted.
func (s *MarkSet) Add(v NodeID) bool {
	if s.mark[v] == s.gen {
		return false
	}
	s.mark[v] = s.gen
	return true
}

// Contains reports whether v is in the set.
func (s *MarkSet) Contains(v NodeID) bool { return s.mark[v] == s.gen }

// Grow extends the ID range to n, preserving current membership. IDs below
// the old range keep their stamps; new IDs start absent.
func (s *MarkSet) Grow(n int) {
	if n <= len(s.mark) {
		return
	}
	grown := make([]uint32, n)
	copy(grown, s.mark)
	s.mark = grown
}

// Dist2View streams distance-2 neighborhoods of a graph: for every query it
// walks N(u) and the N(v) of each neighbor v directly in the CSR arrays,
// deduplicating with an internal MarkSet. Nothing proportional to |E(G²)| is
// ever allocated.
//
// A view is NOT safe for concurrent use (the mark buffer and scratch slice
// are reused across calls); create one view per goroutine — construction is
// O(n). Methods that stream (ForEachDist2, AppendDist2, Neighbors,
// Dist2Degree) must not be re-entered from inside a callback; materialize one
// side with AppendDist2 into a caller-owned buffer when two neighborhoods
// must be inspected together.
type Dist2View struct {
	g       *Graph
	marks   *MarkSet
	scratch []NodeID
	maxD2   int // cached Δ(G²); -1 until computed
	mD2     int // cached m(G²); -1 until computed
}

// NewDist2View returns a streaming distance-2 view of g.
func NewDist2View(g *Graph) *Dist2View {
	return &Dist2View{g: g, marks: NewMarkSet(g.NumNodes()), maxD2: -1, mD2: -1}
}

// Graph returns the underlying graph.
func (d *Dist2View) Graph() *Graph { return d.g }

// NumNodes returns the number of nodes (G and G² share the node set).
func (d *Dist2View) NumNodes() int { return d.g.NumNodes() }

// ForEachDist2 calls fn for every distance-2 neighbor of u (nodes at distance
// 1 or 2, excluding u itself), i.e. N_{G²}(u), each exactly once. Direct
// neighbors are visited first in ascending order, then two-hop neighbors in
// CSR walk order; the order is deterministic but not globally sorted. fn
// returning false stops the stream early.
func (d *Dist2View) ForEachDist2(u NodeID, fn func(v NodeID) bool) {
	d.marks.Reset()
	d.marks.Add(u)
	nbrs := d.g.Neighbors(u)
	for _, v := range nbrs {
		if d.marks.Add(v) && !fn(v) {
			return
		}
	}
	for _, v := range nbrs {
		for _, w := range d.g.Neighbors(v) {
			if d.marks.Add(w) && !fn(w) {
				return
			}
		}
	}
}

// AppendDist2 appends the distance-2 neighbors of u to buf and returns the
// extended slice. buf is caller-owned, so the result survives further view
// calls (unlike Neighbors).
func (d *Dist2View) AppendDist2(buf []NodeID, u NodeID) []NodeID {
	d.ForEachDist2(u, func(v NodeID) bool {
		buf = append(buf, v)
		return true
	})
	return buf
}

// Neighbors returns N_{G²}(u) in the view's internal scratch buffer, so a
// Dist2View satisfies the same conflict-graph shape as *Graph (NumNodes,
// MaxDegree, Neighbors). The slice is INVALIDATED by the next call to any
// streaming method; copy it (or use AppendDist2) if it must survive.
func (d *Dist2View) Neighbors(u NodeID) []NodeID {
	d.scratch = d.AppendDist2(d.scratch[:0], u)
	return d.scratch
}

// Dist2Degree returns |N_{G²}(u)| by streaming, without storing the
// neighborhood.
func (d *Dist2View) Dist2Degree(u NodeID) int {
	count := 0
	d.ForEachDist2(u, func(NodeID) bool { count++; return true })
	return count
}

// MaxDist2Degree returns Δ(G²), computed on first use with one streaming pass
// over all nodes and cached (along with m(G²)) afterwards.
func (d *Dist2View) MaxDist2Degree() int {
	d.computeAggregates()
	return d.maxD2
}

// MaxDegree is MaxDist2Degree under the conflict-graph naming, so a Dist2View
// can stand in for the materialized square wherever an algorithm asks for the
// maximum degree of its conflict graph.
func (d *Dist2View) MaxDegree() int { return d.MaxDist2Degree() }

// NumDist2Edges returns m(G²), the number of undirected edges of the square,
// computed by streaming degrees (cached together with Δ(G²)).
func (d *Dist2View) NumDist2Edges() int {
	d.computeAggregates()
	return d.mD2
}

func (d *Dist2View) computeAggregates() {
	if d.maxD2 >= 0 {
		return
	}
	maxD2, total := 0, 0
	for u := 0; u < d.g.NumNodes(); u++ {
		deg := d.Dist2Degree(NodeID(u))
		total += deg
		if deg > maxD2 {
			maxD2 = deg
		}
	}
	d.maxD2 = maxD2
	d.mD2 = total / 2
}

// IsDist2Neighbor reports whether u and v are at distance 1 or 2 in G. It
// walks the smaller adjacency list with binary searches into the other and
// touches no view state, so it is safe to call from inside a streaming
// callback (and concurrently).
func (d *Dist2View) IsDist2Neighbor(u, v NodeID) bool {
	if u == v {
		return false
	}
	g := d.g
	if int(u) < 0 || int(u) >= g.n || int(v) < 0 || int(v) >= g.n {
		return false
	}
	if g.HasEdge(u, v) {
		return true
	}
	if g.Degree(u) > g.Degree(v) {
		u, v = v, u
	}
	for _, w := range g.Neighbors(u) {
		if g.HasEdge(w, v) {
			return true
		}
	}
	return false
}

// InducedSubgraph returns G²[keep], the subgraph of the square induced by the
// kept nodes, together with the new-to-old ID mapping — without materializing
// the rest of G². It mirrors Graph.InducedSubgraph so either graph can be the
// partitioning target of the Section-3 algorithms.
func (d *Dist2View) InducedSubgraph(keep []bool) (*Graph, []NodeID) {
	n := d.g.NumNodes()
	if len(keep) != n {
		panic(fmt.Sprintf("graph: keep mask has length %d, want %d", len(keep), n))
	}
	oldToNew := make([]int32, n)
	newToOld := make([]NodeID, 0, n)
	for v := 0; v < n; v++ {
		if keep[v] {
			oldToNew[v] = int32(len(newToOld))
			newToOld = append(newToOld, NodeID(v))
		} else {
			oldToNew[v] = -1
		}
	}
	b := NewBuilder(len(newToOld))
	for _, u := range newToOld {
		d.ForEachDist2(u, func(w NodeID) bool {
			if w > u && keep[w] {
				_ = b.AddEdge(NodeID(oldToNew[u]), NodeID(oldToNew[w]))
			}
			return true
		})
	}
	return b.Build(), newToOld
}

// Materialize builds the square graph through the streaming walk and the
// sort-dedupe builder. It exists for the one consumer that genuinely needs G²
// as a standing object — the naive baseline that simulates CONGEST on the
// square — and for benchmarks; every other layer streams.
func (d *Dist2View) Materialize() *Graph {
	n := d.g.NumNodes()
	b := NewBuilder(n)
	b.Grow(2 * d.g.NumEdges())
	for u := 0; u < n; u++ {
		d.ForEachDist2(NodeID(u), func(w NodeID) bool {
			if w > NodeID(u) {
				_ = b.AddEdge(NodeID(u), w)
			}
			return true
		})
	}
	return b.Build()
}

// DistKView streams distance-at-most-k neighborhoods (the conflict
// neighborhoods of G^k) with a bounded BFS over the CSR arrays, using the
// same generation-stamped marking as Dist2View. It backs the distance-k MIS
// so that G^k is never materialized either. Not safe for concurrent use; do
// not re-enter streaming methods from callbacks.
type DistKView struct {
	g     *Graph
	k     int
	marks *MarkSet
	queue []NodeID
}

// NewDistKView returns a streaming distance-k view of g (k >= 1).
func NewDistKView(g *Graph, k int) *DistKView {
	if k < 1 {
		k = 1
	}
	return &DistKView{g: g, k: k, marks: NewMarkSet(g.NumNodes())}
}

// Graph returns the underlying graph.
func (d *DistKView) Graph() *Graph { return d.g }

// K returns the distance parameter.
func (d *DistKView) K() int { return d.k }

// ForEach calls fn for every node at distance 1..k from u, each exactly once,
// in deterministic BFS layer order. fn returning false stops the stream.
func (d *DistKView) ForEach(u NodeID, fn func(v NodeID) bool) {
	d.marks.Reset()
	d.marks.Add(u)
	d.queue = append(d.queue[:0], u)
	head := 0
	for depth := 0; depth < d.k; depth++ {
		levelEnd := len(d.queue)
		if head == levelEnd {
			return
		}
		for ; head < levelEnd; head++ {
			v := d.queue[head]
			for _, w := range d.g.Neighbors(v) {
				if d.marks.Add(w) {
					d.queue = append(d.queue, w)
					if !fn(w) {
						return
					}
				}
			}
		}
	}
}
