package graph

import (
	"fmt"
	"math"
)

// Stats summarizes the structural properties of a graph that the experiment
// harness reports next to every measurement.
type Stats struct {
	Nodes        int     `json:"nodes"`
	Edges        int     `json:"edges"`
	MaxDegree    int     `json:"maxDegree"`
	MinDegree    int     `json:"minDegree"`
	AvgDegree    float64 `json:"avgDegree"`
	MaxDist2Deg  int     `json:"maxDist2Degree"`
	AvgDist2Deg  float64 `json:"avgDist2Degree"`
	Dist2Edges   int     `json:"dist2Edges"` // m(G²), streamed, never materialized
	Components   int     `json:"components"`
	DegreeStdDev float64 `json:"degreeStdDev"`
	SquaredBound int     `json:"deltaSquaredBound"` // Δ², the palette bound used by the paper
}

// ComputeStats computes Stats for g. The distance-2 degree statistics (Δ(G²),
// average d2-degree and m(G²)) are computed through the streaming Dist2View,
// so even large squares cost no memory beyond the view's O(n) mark buffer.
func ComputeStats(g *Graph) Stats {
	st := Stats{
		Nodes:     g.NumNodes(),
		Edges:     g.NumEdges(),
		MaxDegree: g.MaxDegree(),
		AvgDegree: g.AverageDegree(),
	}
	st.SquaredBound = st.MaxDegree * st.MaxDegree
	if g.NumNodes() == 0 {
		return st
	}
	st.MinDegree = g.NumNodes()
	var sum, sumSq float64
	var d2Sum float64
	d2 := NewDist2View(g)
	for u := 0; u < g.NumNodes(); u++ {
		d := g.Degree(NodeID(u))
		if d < st.MinDegree {
			st.MinDegree = d
		}
		sum += float64(d)
		sumSq += float64(d) * float64(d)
		deg2 := d2.Dist2Degree(NodeID(u))
		d2Sum += float64(deg2)
		if deg2 > st.MaxDist2Deg {
			st.MaxDist2Deg = deg2
		}
	}
	n := float64(g.NumNodes())
	mean := sum / n
	st.DegreeStdDev = math.Sqrt(maxFloat(0, sumSq/n-mean*mean))
	st.AvgDist2Deg = d2Sum / n
	st.Dist2Edges = int(d2Sum) / 2
	_, st.Components = g.ConnectedComponents()
	return st
}

// String renders the stats on one line.
func (s Stats) String() string {
	return fmt.Sprintf("n=%d m=%d Δ=%d δ=%d avg=%.2f Δ(G²)=%d m(G²)=%d comps=%d",
		s.Nodes, s.Edges, s.MaxDegree, s.MinDegree, s.AvgDegree, s.MaxDist2Deg, s.Dist2Edges, s.Components)
}

func maxFloat(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
