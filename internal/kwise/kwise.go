// Package kwise implements a family of k-wise independent hash functions
// over a prime field, the substrate required by the derandomization of the
// local refinement splitting (Theorem A.6 / Lemma A.5 of the paper).
//
// A function h drawn from Family(k) maps 64-bit keys to values in [0, m) such
// that for any k distinct keys the outputs are independent and uniform. The
// construction is the classical degree-(k-1) polynomial over F_p evaluated at
// the key, with p a Mersenne prime (2^61 - 1) large enough for O(log n)-bit
// identifiers.
//
// The paper uses such a family with k = Θ(log n) and one-bit outputs to give
// every vertex of a cluster a coin from a shared O(log² n)-bit random seed;
// Seed and FromSeed model exactly that: the seed is the list of polynomial
// coefficients, and the "coin of vertex v" is Hash(ID(v)) mod 2.
package kwise

import (
	"errors"
	"fmt"

	"d2color/internal/rng"
)

// prime is the Mersenne prime 2^61 - 1, used as the field modulus.
const prime = (uint64(1) << 61) - 1

// Family describes a k-wise independent family with outputs in [0, outRange).
type Family struct {
	k        int
	outRange uint64
}

// Hash is one member of a k-wise independent family: a polynomial of degree
// k-1 over F_p together with an output range.
type Hash struct {
	coeffs   []uint64 // k coefficients, constant term first
	outRange uint64
}

// Errors returned by this package.
var (
	ErrBadK     = errors.New("kwise: independence parameter k must be >= 1")
	ErrBadRange = errors.New("kwise: output range must be >= 1")
	ErrBadSeed  = errors.New("kwise: seed has wrong length")
)

// NewFamily returns a k-wise independent family with outputs in [0, outRange).
func NewFamily(k int, outRange uint64) (*Family, error) {
	if k < 1 {
		return nil, fmt.Errorf("%w (got %d)", ErrBadK, k)
	}
	if outRange < 1 {
		return nil, fmt.Errorf("%w (got %d)", ErrBadRange, outRange)
	}
	return &Family{k: k, outRange: outRange}, nil
}

// K returns the independence parameter of the family.
func (f *Family) K() int { return f.k }

// SeedLen returns the number of field elements in a seed for this family.
// Each element is < 2^61, so a seed is k·61 ≈ O(k log n) bits, matching the
// O(log² n)-bit seeds of Theorem A.6 for k = Θ(log n).
func (f *Family) SeedLen() int { return f.k }

// Draw samples a random member of the family using the provided source.
func (f *Family) Draw(src *rng.Source) *Hash {
	coeffs := make([]uint64, f.k)
	for i := range coeffs {
		coeffs[i] = src.Uint64() % prime
	}
	return &Hash{coeffs: coeffs, outRange: f.outRange}
}

// FromSeed constructs the family member identified by the given seed (one
// field element per coefficient). Values are reduced modulo the field prime.
func (f *Family) FromSeed(seed []uint64) (*Hash, error) {
	if len(seed) != f.k {
		return nil, fmt.Errorf("%w: got %d, want %d", ErrBadSeed, len(seed), f.k)
	}
	coeffs := make([]uint64, f.k)
	for i, s := range seed {
		coeffs[i] = s % prime
	}
	return &Hash{coeffs: coeffs, outRange: f.outRange}, nil
}

// Seed returns the seed (coefficient list) of the hash. The returned slice is
// a copy.
func (h *Hash) Seed() []uint64 {
	out := make([]uint64, len(h.coeffs))
	copy(out, h.coeffs)
	return out
}

// Hash evaluates the function at the given key, returning a value in
// [0, outRange).
func (h *Hash) Hash(key uint64) uint64 {
	x := key % prime
	// Horner evaluation of the degree-(k-1) polynomial.
	var acc uint64
	for i := len(h.coeffs) - 1; i >= 0; i-- {
		acc = addMod(mulMod(acc, x), h.coeffs[i])
	}
	return acc % h.outRange
}

// Bit returns the hash of key reduced to a single fair bit. This is the
// "coin of vertex key" used by the splitting derandomization.
func (h *Hash) Bit(key uint64) int {
	// Use a high-order bit of the field element rather than the value mod 2 of
	// the ranged output, to avoid bias when outRange does not divide p.
	x := key % prime
	var acc uint64
	for i := len(h.coeffs) - 1; i >= 0; i-- {
		acc = addMod(mulMod(acc, x), h.coeffs[i])
	}
	return int((acc >> 30) & 1)
}

// addMod returns (a + b) mod p for a, b < p.
func addMod(a, b uint64) uint64 {
	s := a + b
	if s >= prime {
		s -= prime
	}
	return s
}

// mulMod returns (a * b) mod p using 128-bit intermediate arithmetic and the
// Mersenne-prime reduction 2^61 ≡ 1 (mod p).
func mulMod(a, b uint64) uint64 {
	hi, lo := mul64(a, b)
	// a*b = hi·2^64 + lo = hi·8·2^61 + lo ≡ hi·8 + lo (mod 2^61-1), but care
	// is needed to keep partial sums below 2^64. Split lo into low 61 bits and
	// high 3 bits.
	lo61 := lo & prime
	carry := (lo >> 61) | (hi << 3)
	res := lo61 + (carry & prime) + (carry >> 61)
	for res >= prime {
		res -= prime
	}
	return res
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	aLo, aHi := a&mask32, a>>32
	bLo, bHi := b&mask32, b>>32

	t := aLo * bLo
	w0 := t & mask32
	k := t >> 32

	t = aHi*bLo + k
	w1 := t & mask32
	w2 := t >> 32

	t = aLo*bHi + w1
	k = t >> 32

	hi = aHi*bHi + w2 + k
	lo = t<<32 + w0
	return hi, lo
}
