package kwise

import (
	"errors"
	"math"
	"math/bits"
	"testing"
	"testing/quick"

	"d2color/internal/rng"
)

func TestNewFamilyValidation(t *testing.T) {
	if _, err := NewFamily(0, 2); !errors.Is(err, ErrBadK) {
		t.Errorf("NewFamily(0,2) = %v, want ErrBadK", err)
	}
	if _, err := NewFamily(3, 0); !errors.Is(err, ErrBadRange) {
		t.Errorf("NewFamily(3,0) = %v, want ErrBadRange", err)
	}
	f, err := NewFamily(4, 16)
	if err != nil {
		t.Fatalf("NewFamily(4,16): %v", err)
	}
	if f.K() != 4 || f.SeedLen() != 4 {
		t.Errorf("K()=%d SeedLen()=%d, want 4,4", f.K(), f.SeedLen())
	}
}

func TestSeedRoundTrip(t *testing.T) {
	f, _ := NewFamily(5, 100)
	src := rng.New(1)
	h := f.Draw(src)
	seed := h.Seed()
	h2, err := f.FromSeed(seed)
	if err != nil {
		t.Fatalf("FromSeed: %v", err)
	}
	for key := uint64(0); key < 500; key++ {
		if h.Hash(key) != h2.Hash(key) || h.Bit(key) != h2.Bit(key) {
			t.Fatalf("seed round trip mismatch at key %d", key)
		}
	}
	if _, err := f.FromSeed(seed[:2]); !errors.Is(err, ErrBadSeed) {
		t.Errorf("FromSeed with short seed = %v, want ErrBadSeed", err)
	}
}

func TestHashRange(t *testing.T) {
	f, _ := NewFamily(3, 7)
	h := f.Draw(rng.New(2))
	for key := uint64(0); key < 10000; key++ {
		if v := h.Hash(key); v >= 7 {
			t.Fatalf("Hash(%d) = %d out of range [0,7)", key, v)
		}
	}
}

func TestBitBalance(t *testing.T) {
	f, _ := NewFamily(8, 2)
	h := f.Draw(rng.New(3))
	ones := 0
	const keys = 20000
	for key := uint64(0); key < keys; key++ {
		b := h.Bit(key)
		if b != 0 && b != 1 {
			t.Fatalf("Bit returned %d", b)
		}
		ones += b
	}
	frac := float64(ones) / keys
	if frac < 0.45 || frac > 0.55 {
		t.Errorf("bit frequency %.4f, want ≈0.5", frac)
	}
}

func TestPairwiseIndependenceEmpirical(t *testing.T) {
	// For a 2-wise independent family with one-bit outputs, the four joint
	// outcomes of (h(x), h(y)) for fixed x != y should each appear with
	// probability ≈ 1/4 over the draw of h.
	f, _ := NewFamily(2, 2)
	src := rng.New(7)
	var joint [2][2]int
	const draws = 8000
	for i := 0; i < draws; i++ {
		h := f.Draw(src)
		joint[h.Bit(12345)][h.Bit(67890)]++
	}
	for a := 0; a < 2; a++ {
		for b := 0; b < 2; b++ {
			frac := float64(joint[a][b]) / draws
			if math.Abs(frac-0.25) > 0.03 {
				t.Errorf("joint outcome (%d,%d) frequency %.4f, want ≈0.25", a, b, frac)
			}
		}
	}
}

func TestDistinctMembersDiffer(t *testing.T) {
	f, _ := NewFamily(3, 1024)
	src := rng.New(9)
	h1 := f.Draw(src)
	h2 := f.Draw(src)
	same := true
	for key := uint64(0); key < 64; key++ {
		if h1.Hash(key) != h2.Hash(key) {
			same = false
			break
		}
	}
	if same {
		t.Error("independently drawn family members agree on 64 keys (extremely unlikely)")
	}
}

func TestMulModAgainstBigArithmetic(t *testing.T) {
	f := func(a, b uint64) bool {
		a %= prime
		b %= prime
		got := mulMod(a, b)
		// Reference via 128-bit arithmetic from math/bits and a plain mod.
		hi, lo := bits.Mul64(a, b)
		want := bits.Rem64(hi, lo, prime)
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestMul64MatchesBits(t *testing.T) {
	f := func(a, b uint64) bool {
		hi, lo := mul64(a, b)
		whi, wlo := bits.Mul64(a, b)
		return hi == whi && lo == wlo
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestAddMod(t *testing.T) {
	if got := addMod(prime-1, 1); got != 0 {
		t.Errorf("addMod(p-1,1) = %d, want 0", got)
	}
	if got := addMod(5, 7); got != 12 {
		t.Errorf("addMod(5,7) = %d, want 12", got)
	}
}
