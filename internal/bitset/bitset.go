// Package bitset provides the word-parallel palette kernels shared by every
// color-set consumer in the repository: the trial runner's per-node
// known-colors sets, the verifier's conflict tables, the greedy baselines'
// first-free picks and the deterministic pipeline's reduction scratch.
//
// The paper's algorithms spend their hot loops answering two queries — "is
// color c used nearby?" and "what is a free color?". Both are one-word
// operations on a dense bitset: membership is a single AND, free-color
// selection is a word scan driven by bits.TrailingZeros64. The package
// offers three shapes:
//
//   - Row: a raw []uint64 view, for flat per-node regions carved out of one
//     backing slice (the trial kernel stores n palette rows contiguously);
//   - Fixed: a sized bitset with O(1) epoch-free ops and a reusable backing
//     array (Resize reuses capacity), mirroring graph.MarkSet's pooled-reuse
//     contract for callers that clear between uses;
//   - Stamped: a generation-stamped bitset whose Reset is O(1) — each word
//     carries a stamp and lazily zeroes itself on first touch of a new
//     generation — for per-neighborhood scratch reset millions of times.
//
// All three are deliberately bounds-unchecked beyond the slice's own checks:
// callers index within the capacity they allocated, exactly like the flat
// arrays these kernels replace.
package bitset

import "math/bits"

const wordBits = 64

// WordsFor returns the number of uint64 words needed to hold nbits bits.
func WordsFor(nbits int) int {
	if nbits <= 0 {
		return 0
	}
	return (nbits + wordBits - 1) / wordBits
}

// Row is a bitset view over a raw word slice. It carries no length of its
// own: the caller decides which bit range [0, limit) is meaningful and must
// only Set bits inside it (Count and NthSet trust that contract, which is
// what makes them plain popcounts).
type Row []uint64

// Set sets bit i.
func (r Row) Set(i int) { r[i>>6] |= 1 << (uint(i) & 63) }

// Clear clears bit i.
func (r Row) Clear(i int) { r[i>>6] &^= 1 << (uint(i) & 63) }

// Test reports whether bit i is set — the one-AND membership query.
func (r Row) Test(i int) bool { return r[i>>6]&(1<<(uint(i)&63)) != 0 }

// ClearAll zeroes every word.
func (r Row) ClearAll() {
	for i := range r {
		r[i] = 0
	}
}

// Count returns the number of set bits.
func (r Row) Count() int {
	n := 0
	for _, w := range r {
		n += bits.OnesCount64(w)
	}
	return n
}

// UnionInto ors this row into dst (dst must be at least as long).
func (r Row) UnionInto(dst Row) {
	for i, w := range r {
		dst[i] |= w
	}
}

// AndNotCount returns the number of bits set in r but not in other (which
// must be at least as long) — popcount(r &^ other) without materializing it.
func (r Row) AndNotCount(other Row) int {
	n := 0
	for i, w := range r {
		n += bits.OnesCount64(w &^ other[i])
	}
	return n
}

// FirstZero returns the smallest clear bit below limit, or -1 if bits
// [0, limit) are all set. One TrailingZeros64 per full word.
func (r Row) FirstZero(limit int) int {
	return r.NextZero(0, limit)
}

// NextZero returns the smallest clear bit in [from, limit), or -1.
func (r Row) NextZero(from, limit int) int {
	if from < 0 {
		from = 0
	}
	if from >= limit {
		return -1
	}
	wi := from >> 6
	// First (possibly partial) word: mask off bits below from.
	w := ^r[wi] & (^uint64(0) << (uint(from) & 63))
	for {
		if w != 0 {
			i := wi*wordBits + bits.TrailingZeros64(w)
			if i >= limit {
				return -1
			}
			return i
		}
		wi++
		if wi*wordBits >= limit {
			return -1
		}
		w = ^r[wi]
	}
}

// NthZero returns the k-th (0-based, in ascending order) clear bit below
// limit, or -1 if fewer than k+1 bits are clear. It skips whole words by
// popcount and selects inside the final word bit by bit — the free-color
// sampling primitive ("draw the idx-th color not known used").
func (r Row) NthZero(k, limit int) int {
	if k < 0 || limit <= 0 {
		return -1
	}
	full := limit >> 6
	for wi := 0; wi < full; wi++ {
		w := ^r[wi]
		z := bits.OnesCount64(w)
		if k >= z {
			k -= z
			continue
		}
		return wi*wordBits + selectBit(w, k)
	}
	if rem := limit & 63; rem != 0 {
		w := ^r[full] & (1<<uint(rem) - 1)
		if k < bits.OnesCount64(w) {
			return full*wordBits + selectBit(w, k)
		}
	}
	return -1
}

// NthSet returns the k-th (0-based, ascending) set bit, or -1 if fewer than
// k+1 bits are set — the "pick the i-th smallest remaining color" primitive.
func (r Row) NthSet(k int) int {
	if k < 0 {
		return -1
	}
	for wi, w := range r {
		z := bits.OnesCount64(w)
		if k >= z {
			k -= z
			continue
		}
		return wi*wordBits + selectBit(w, k)
	}
	return -1
}

// selectBit returns the position of the k-th (0-based) set bit of w; the
// caller guarantees w has more than k set bits.
func selectBit(w uint64, k int) int {
	for ; k > 0; k-- {
		w &= w - 1
	}
	return bits.TrailingZeros64(w)
}

// Fixed is a sized bitset over [0, Len()). Resize reuses the backing array,
// so a pooled Fixed serves workloads of varying palette sizes without
// reallocating — the same reuse contract as graph.MarkSet.
type Fixed struct {
	bits Row
	n    int
}

// NewFixed returns a bitset for bits 0..n-1, all clear.
func NewFixed(n int) *Fixed {
	f := &Fixed{}
	f.Resize(n)
	return f
}

// Resize re-dimensions the set to n bits and clears it, reusing the backing
// array when it is large enough.
func (f *Fixed) Resize(n int) {
	if n < 0 {
		n = 0
	}
	w := WordsFor(n)
	if cap(f.bits) < w {
		f.bits = make(Row, w)
	} else {
		f.bits = f.bits[:w]
		f.bits.ClearAll()
	}
	f.n = n
}

// Len returns the bit range of the set.
func (f *Fixed) Len() int { return f.n }

// Row exposes the underlying words (for bulk operations such as building a
// complement row).
func (f *Fixed) Row() Row { return f.bits }

// Set sets bit i (i must be < Len()).
func (f *Fixed) Set(i int) { f.bits.Set(i) }

// Clear clears bit i.
func (f *Fixed) Clear(i int) { f.bits.Clear(i) }

// Test reports whether bit i is set.
func (f *Fixed) Test(i int) bool { return f.bits.Test(i) }

// ClearAll clears every bit.
func (f *Fixed) ClearAll() { f.bits.ClearAll() }

// Count returns the number of set bits.
func (f *Fixed) Count() int { return f.bits.Count() }

// FirstZero returns the smallest clear bit, or -1 if the set is full.
func (f *Fixed) FirstZero() int { return f.bits.FirstZero(f.n) }

// NextZero returns the smallest clear bit >= from, or -1.
func (f *Fixed) NextZero(from int) int { return f.bits.NextZero(from, f.n) }

// NthZero returns the k-th clear bit in ascending order, or -1.
func (f *Fixed) NthZero(k int) int { return f.bits.NthZero(k, f.n) }

// NthSet returns the k-th set bit in ascending order, or -1.
func (f *Fixed) NthSet(k int) int { return f.bits.NthSet(k) }

// Stamped is a generation-stamped bitset: Reset is O(1) (a generation bump),
// and each word lazily zeroes itself the first time it is touched in a new
// generation. It is the bit-granular analogue of graph.MarkSet, 32× denser,
// built for per-neighborhood conflict scratch that is reset millions of
// times per pass.
type Stamped struct {
	words []uint64
	stamp []uint32
	gen   uint32
	n     int
}

// NewStamped returns a stamped bitset for bits 0..n-1, all clear.
func NewStamped(n int) *Stamped {
	s := &Stamped{gen: 1}
	s.Grow(n)
	return s
}

// Grow ensures the set covers bits 0..n-1, reusing the backing arrays and
// keeping the current generation (freshly appended words carry stamp 0,
// which never equals a live generation, so they read as clear).
func (s *Stamped) Grow(n int) {
	if n < 0 {
		n = 0
	}
	w := WordsFor(n)
	if w > len(s.words) {
		if w <= cap(s.words) {
			s.words = s.words[:w]
			s.stamp = s.stamp[:w]
		} else {
			words := make([]uint64, w)
			stamp := make([]uint32, w)
			copy(words, s.words)
			copy(stamp, s.stamp)
			s.words, s.stamp = words, stamp
		}
	}
	if n > s.n {
		s.n = n
	}
}

// Len returns the bit range of the set.
func (s *Stamped) Len() int { return s.n }

// Reset clears the whole set in O(1) by advancing the generation.
func (s *Stamped) Reset() {
	s.gen++
	if s.gen == 0 { // wrapped after 2³² resets: clear once, start over
		for i := range s.stamp {
			s.stamp[i] = 0
		}
		s.gen = 1
	}
}

// word returns the current-generation value of word wi, zeroing it lazily.
func (s *Stamped) word(wi int) *uint64 {
	if s.stamp[wi] != s.gen {
		s.stamp[wi] = s.gen
		s.words[wi] = 0
	}
	return &s.words[wi]
}

// Test reports whether bit i is set in the current generation.
func (s *Stamped) Test(i int) bool {
	wi := i >> 6
	return s.stamp[wi] == s.gen && s.words[wi]&(1<<(uint(i)&63)) != 0
}

// Set sets bit i in the current generation.
func (s *Stamped) Set(i int) { *s.word(i >> 6) |= 1 << (uint(i) & 63) }

// TestAndSet sets bit i and reports whether it was already set — the fused
// "have I seen this color in this neighborhood?" query of the verifier.
func (s *Stamped) TestAndSet(i int) bool {
	w := s.word(i >> 6)
	mask := uint64(1) << (uint(i) & 63)
	old := *w&mask != 0
	*w |= mask
	return old
}
