package bitset

import (
	"math/rand"
	"sort"
	"testing"
)

func TestWordsFor(t *testing.T) {
	cases := map[int]int{-1: 0, 0: 0, 1: 1, 63: 1, 64: 1, 65: 2, 128: 2, 129: 3}
	for nbits, want := range cases {
		if got := WordsFor(nbits); got != want {
			t.Errorf("WordsFor(%d) = %d, want %d", nbits, got, want)
		}
	}
}

// boundaryPalettes are the palette sizes straddling word boundaries that the
// word-masked scans must get exactly right.
var boundaryPalettes = []int{1, 2, 63, 64, 65, 127, 128, 129, 200}

func TestFirstZeroNextZeroWordBoundaries(t *testing.T) {
	for _, n := range boundaryPalettes {
		f := NewFixed(n)
		if got := f.FirstZero(); got != 0 {
			t.Errorf("n=%d empty: FirstZero = %d, want 0", n, got)
		}
		// Fill ascending; after setting [0, k) the first zero is k, and the
		// full set reports -1 (including the all-full-words cases 64/128).
		for k := 0; k < n; k++ {
			f.Set(k)
			want := k + 1
			if want == n {
				want = -1
			}
			if got := f.FirstZero(); got != want {
				t.Fatalf("n=%d after filling [0,%d]: FirstZero = %d, want %d", n, k, got, want)
			}
		}
		if got := f.NextZero(0); got != -1 {
			t.Errorf("n=%d full: NextZero(0) = %d, want -1", n, got)
		}
		// Punch one hole at every position and re-find it from every origin.
		for hole := 0; hole < n; hole++ {
			f.Clear(hole)
			for from := 0; from <= hole; from++ {
				if got := f.NextZero(from); got != hole {
					t.Fatalf("n=%d hole=%d: NextZero(%d) = %d", n, hole, from, got)
				}
			}
			if got := f.NextZero(hole + 1); got != -1 {
				t.Fatalf("n=%d hole=%d: NextZero past the hole = %d, want -1", n, hole, got)
			}
			f.Set(hole)
		}
	}
}

func TestNextZeroRangeEdges(t *testing.T) {
	f := NewFixed(64)
	if got := f.NextZero(-3); got != 0 {
		t.Errorf("negative from should clamp to 0, got %d", got)
	}
	if got := f.NextZero(64); got != -1 {
		t.Errorf("from == limit must be -1, got %d", got)
	}
	if got := (Row{}).FirstZero(0); got != -1 {
		t.Errorf("empty limit must be -1, got %d", got)
	}
}

func TestNthZeroNthSetWordBoundaries(t *testing.T) {
	for _, n := range boundaryPalettes {
		f := NewFixed(n)
		// Set every third bit; zeros and ones interleave across word edges.
		var ones, zeros []int
		for i := 0; i < n; i++ {
			if i%3 == 0 {
				f.Set(i)
				ones = append(ones, i)
			} else {
				zeros = append(zeros, i)
			}
		}
		for k, want := range zeros {
			if got := f.NthZero(k); got != want {
				t.Fatalf("n=%d: NthZero(%d) = %d, want %d", n, k, got, want)
			}
		}
		if got := f.NthZero(len(zeros)); got != -1 {
			t.Errorf("n=%d: NthZero past the end = %d, want -1", n, got)
		}
		for k, want := range ones {
			if got := f.NthSet(k); got != want {
				t.Fatalf("n=%d: NthSet(%d) = %d, want %d", n, k, got, want)
			}
		}
		if got := f.NthSet(len(ones)); got != -1 {
			t.Errorf("n=%d: NthSet past the end = %d, want -1", n, got)
		}
		if got := f.NthZero(-1); got != -1 {
			t.Errorf("negative k must be -1, got %d", got)
		}
		if got := f.NthSet(-1); got != -1 {
			t.Errorf("negative k must be -1, got %d", got)
		}
	}
}

func TestNthZeroAllFullWords(t *testing.T) {
	// All-full leading words: the scan must skip them by popcount, not get
	// stuck, and the selection must land in the final partial word.
	f := NewFixed(130)
	for i := 0; i < 128; i++ {
		f.Set(i)
	}
	if got := f.NthZero(0); got != 128 {
		t.Errorf("NthZero(0) = %d, want 128", got)
	}
	if got := f.NthZero(1); got != 129 {
		t.Errorf("NthZero(1) = %d, want 129", got)
	}
	if got := f.NthZero(2); got != -1 {
		t.Errorf("NthZero(2) = %d, want -1", got)
	}
}

func TestRowUnionAndNotCount(t *testing.T) {
	a, b := NewFixed(130), NewFixed(130)
	for _, i := range []int{0, 63, 64, 100, 129} {
		a.Set(i)
	}
	for _, i := range []int{63, 100} {
		b.Set(i)
	}
	if got := a.Row().AndNotCount(b.Row()); got != 3 {
		t.Errorf("AndNotCount = %d, want 3 (bits 0, 64, 129)", got)
	}
	a.Row().UnionInto(b.Row())
	if got := b.Count(); got != 5 {
		t.Errorf("union Count = %d, want 5", got)
	}
	for _, i := range []int{0, 63, 64, 100, 129} {
		if !b.Test(i) {
			t.Errorf("union missing bit %d", i)
		}
	}
}

func TestFixedResizeReusesAndClears(t *testing.T) {
	f := NewFixed(128)
	f.Set(5)
	f.Set(127)
	f.Resize(70) // shrink within capacity: must clear stale bits
	if f.Len() != 70 {
		t.Fatalf("Len = %d, want 70", f.Len())
	}
	if f.Count() != 0 {
		t.Errorf("resized set must be clear, count = %d", f.Count())
	}
	f.Set(69)
	f.Resize(500) // grow beyond capacity
	if f.Count() != 0 || f.Len() != 500 {
		t.Errorf("grown set must be clear: count=%d len=%d", f.Count(), f.Len())
	}
}

func TestStampedResetAndGrow(t *testing.T) {
	s := NewStamped(100)
	s.Set(3)
	s.Set(64)
	if !s.Test(3) || !s.Test(64) || s.Test(4) {
		t.Fatal("basic set/test broken")
	}
	if s.TestAndSet(3) != true {
		t.Error("TestAndSet on a set bit must report true")
	}
	if s.TestAndSet(65) != false {
		t.Error("TestAndSet on a clear bit must report false")
	}
	s.Reset()
	for _, i := range []int{3, 64, 65} {
		if s.Test(i) {
			t.Errorf("bit %d survived Reset", i)
		}
	}
	s.Set(99)
	s.Grow(1000) // grow mid-generation: old bits survive, new words read clear
	if !s.Test(99) || s.Test(999) {
		t.Error("Grow corrupted state")
	}
	s.Set(999)
	if !s.Test(999) {
		t.Error("Set after Grow broken")
	}
	if s.Len() != 1000 {
		t.Errorf("Len = %d, want 1000", s.Len())
	}
}

func TestStampedGenerationWraparound(t *testing.T) {
	s := NewStamped(64)
	s.Set(7)
	s.gen = ^uint32(0) // force the wrap on the next Reset
	s.stamp[0] = s.gen // make bit 7 current in the forced generation
	s.Reset()
	if s.gen != 1 {
		t.Fatalf("gen after wrap = %d, want 1", s.gen)
	}
	if s.Test(7) {
		t.Error("bit alive across a generation wraparound")
	}
}

// TestPropertyRowMatchesMapOracle drives a Row and a map-of-ints oracle
// through the same random op sequence — Set, Clear, Test, Count, FirstZero,
// NextZero, NthZero, NthSet — and demands identical answers, across palette
// sizes straddling word boundaries. This is the kernel-level half of the
// oracle suite; the algorithm-level half is the registry golden test in
// internal/alg.
func TestPropertyRowMatchesMapOracle(t *testing.T) {
	for _, n := range []int{63, 64, 65, 129, 200} {
		rng := rand.New(rand.NewSource(int64(n) * 7919))
		row := make(Row, WordsFor(n))
		oracle := map[int]bool{}
		sortedSet := func() []int {
			out := make([]int, 0, len(oracle))
			for k := range oracle {
				out = append(out, k)
			}
			sort.Ints(out)
			return out
		}
		sortedClear := func() []int {
			out := make([]int, 0, n)
			for i := 0; i < n; i++ {
				if !oracle[i] {
					out = append(out, i)
				}
			}
			return out
		}
		for step := 0; step < 4000; step++ {
			i := rng.Intn(n)
			switch rng.Intn(6) {
			case 0:
				row.Set(i)
				oracle[i] = true
			case 1:
				row.Clear(i)
				delete(oracle, i)
			case 2:
				if got, want := row.Test(i), oracle[i]; got != want {
					t.Fatalf("n=%d step=%d: Test(%d) = %v, want %v", n, step, i, got, want)
				}
			case 3:
				if got, want := row.Count(), len(oracle); got != want {
					t.Fatalf("n=%d step=%d: Count = %d, want %d", n, step, got, want)
				}
			case 4:
				zeros := sortedClear()
				want := -1
				k := 0
				if len(zeros) > 0 {
					k = rng.Intn(len(zeros) + 1)
					if k < len(zeros) {
						want = zeros[k]
					}
				}
				if got := row.NthZero(k, n); got != want {
					t.Fatalf("n=%d step=%d: NthZero(%d) = %d, want %d", n, step, k, got, want)
				}
				from := rng.Intn(n)
				want = -1
				for _, z := range zeros {
					if z >= from {
						want = z
						break
					}
				}
				if got := row.NextZero(from, n); got != want {
					t.Fatalf("n=%d step=%d: NextZero(%d) = %d, want %d", n, step, from, got, want)
				}
			case 5:
				ones := sortedSet()
				want := -1
				k := 0
				if len(ones) > 0 {
					k = rng.Intn(len(ones) + 1)
					if k < len(ones) {
						want = ones[k]
					}
				}
				if got := row.NthSet(k); got != want {
					t.Fatalf("n=%d step=%d: NthSet(%d) = %d, want %d", n, step, k, got, want)
				}
			}
		}
	}
}

// BenchmarkFirstFreePick compares the two free-color selection primitives at
// a Δ²-scale palette: the word scan this package provides for the greedy and
// trial kernels.
func BenchmarkFirstFreePick(b *testing.B) {
	const palette = 1024
	f := NewFixed(palette)
	for i := 0; i < palette-1; i++ {
		f.Set(i) // worst case: only the last color is free
	}
	b.Run("FirstZero", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if f.FirstZero() != palette-1 {
				b.Fatal("wrong pick")
			}
		}
	})
	b.Run("NthZero", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if f.NthZero(0) != palette-1 {
				b.Fatal("wrong pick")
			}
		}
	})
}
