// Package netdecomp provides a deterministic network decomposition of the
// power graph G^k, the substrate required by the derandomization of the
// local refinement splitting (Appendix A, Definition A.1).
//
// The paper obtains an (O(log n), k·O(log³ n))-decomposition with congestion
// O(log n) from Rozhoň–Ghaffari [28]. Re-implementing that algorithm verbatim
// is out of scope; this package substitutes a from-scratch deterministic
// ball-carving construction with the same interface guarantees the
// derandomization needs (see DESIGN.md §2):
//
//   - the clusters partition V;
//   - clusters whose nodes are within distance ≤ k in G receive different
//     cluster colors (so same-colored clusters can fix their random seeds
//     independently and in parallel);
//   - every cluster has weak radius O(k·log n) (each ball stops growing when
//     it no longer doubles, so at most log₂ n growth steps).
//
// The number of cluster colors is O(log n) on the benchmark workloads but is
// not guaranteed to be O(log n) in the worst case (the cluster graph is
// colored greedily); the measured value is reported and only affects the
// charged round count, never correctness.
package netdecomp

import (
	"math"

	"d2color/internal/graph"
)

// Decomposition is a partition of V into colored low-diameter clusters.
type Decomposition struct {
	// ClusterOf maps every node to its cluster index.
	ClusterOf []int
	// Clusters lists the nodes of each cluster.
	Clusters [][]graph.NodeID
	// ColorOf maps every cluster index to its color (0-based).
	ColorOf []int
	// NumColors is the number of distinct cluster colors.
	NumColors int
	// MaxRadius is the maximum weak radius (in G-hops) over all clusters.
	MaxRadius int
	// Rounds is the CONGEST round charge for computing the decomposition.
	// The substitute charges k·⌈log₂ n⌉³ (the paper's construction costs
	// O(k·log⁸ n) rounds, Theorem A.2).
	Rounds int
}

// Compute returns a deterministic decomposition of G^k for k >= 1.
func Compute(g *graph.Graph, k int) Decomposition {
	if k < 1 {
		k = 1
	}
	n := g.NumNodes()
	d := Decomposition{ClusterOf: make([]int, n)}
	for i := range d.ClusterOf {
		d.ClusterOf[i] = -1
	}
	if n == 0 {
		return d
	}

	// Ball carving on G^k over the still-unclustered nodes, processing
	// potential centers in ID order. A ball keeps growing (by k G-hops per
	// step, i.e. one G^k-hop) while it at least doubles; it therefore stops
	// after at most log₂ n steps, giving weak radius ≤ k·log₂ n.
	for center := 0; center < n; center++ {
		if d.ClusterOf[center] != -1 {
			continue
		}
		cluster := len(d.Clusters)
		ball := []graph.NodeID{graph.NodeID(center)}
		d.ClusterOf[center] = cluster
		radius := 0
		for {
			frontier := expandUnclustered(g, d.ClusterOf, ball, k, cluster)
			if len(frontier) == 0 || len(ball)+len(frontier) < 2*len(ball) {
				// Not doubling any more: keep the frontier out (un-claim it)
				// and stop.
				for _, v := range frontier {
					d.ClusterOf[v] = -1
				}
				break
			}
			ball = append(ball, frontier...)
			radius += k
		}
		d.Clusters = append(d.Clusters, ball)
		if radius > d.MaxRadius {
			d.MaxRadius = radius
		}
	}

	d.colorClusters(g, k)
	logN := int(math.Ceil(math.Log2(float64(maxInt(n, 2)))))
	d.Rounds = k * logN * logN * logN
	return d
}

// expandUnclustered returns the unclustered nodes within k G-hops of the
// current ball, claiming them for the cluster (the caller un-claims them if
// the growth step is rejected).
func expandUnclustered(g *graph.Graph, clusterOf []int, ball []graph.NodeID, k, cluster int) []graph.NodeID {
	var frontier []graph.NodeID
	seen := make(map[graph.NodeID]bool, len(ball))
	for _, v := range ball {
		seen[v] = true
	}
	// BFS up to k hops from every ball node, over all of G (weak diameter:
	// paths may leave the cluster), collecting unclustered nodes.
	current := ball
	for hop := 0; hop < k; hop++ {
		var next []graph.NodeID
		for _, v := range current {
			for _, u := range g.Neighbors(v) {
				if seen[u] {
					continue
				}
				seen[u] = true
				next = append(next, u)
				if clusterOf[u] == -1 {
					clusterOf[u] = cluster
					frontier = append(frontier, u)
				}
			}
		}
		current = next
	}
	return frontier
}

// colorClusters greedily colors the cluster graph: two clusters are adjacent
// when they contain nodes within distance ≤ k in G.
func (d *Decomposition) colorClusters(g *graph.Graph, k int) {
	numClusters := len(d.Clusters)
	d.ColorOf = make([]int, numClusters)
	adj := make([]map[int]bool, numClusters)
	for i := range adj {
		adj[i] = make(map[int]bool)
	}
	// Two clusters are adjacent iff some node of one is within k hops of a
	// node of the other. Compute via bounded BFS from every node.
	for v := 0; v < g.NumNodes(); v++ {
		cv := d.ClusterOf[v]
		dist := g.BFSLimited(graph.NodeID(v), k)
		for u, du := range dist {
			if du < 0 || du > k {
				continue
			}
			cu := d.ClusterOf[u]
			if cu != cv {
				adj[cv][cu] = true
				adj[cu][cv] = true
			}
		}
	}
	used := 0
	for c := 0; c < numClusters; c++ {
		taken := make(map[int]bool, len(adj[c]))
		for nbr := range adj[c] {
			if nbr < c {
				taken[d.ColorOf[nbr]] = true
			}
		}
		col := 0
		for taken[col] {
			col++
		}
		d.ColorOf[c] = col
		if col+1 > used {
			used = col + 1
		}
	}
	d.NumColors = used
}

// Validate checks the decomposition invariants against the graph it was
// computed from; it returns false with a reason when an invariant is broken.
// Used by tests and by the splitting package's defensive checks.
func (d *Decomposition) Validate(g *graph.Graph, k int) (bool, string) {
	n := g.NumNodes()
	if len(d.ClusterOf) != n {
		return false, "ClusterOf length mismatch"
	}
	for v := 0; v < n; v++ {
		c := d.ClusterOf[v]
		if c < 0 || c >= len(d.Clusters) {
			return false, "node not assigned to a cluster"
		}
	}
	// Same-colored clusters must not contain nodes within distance ≤ k.
	for v := 0; v < n; v++ {
		dist := g.BFSLimited(graph.NodeID(v), k)
		for u, du := range dist {
			if du < 1 || du > k {
				continue
			}
			cv, cu := d.ClusterOf[v], d.ClusterOf[u]
			if cv != cu && d.ColorOf[cv] == d.ColorOf[cu] {
				return false, "same-colored clusters within distance k"
			}
		}
	}
	return true, ""
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
