package netdecomp

import (
	"testing"
	"testing/quick"

	"d2color/internal/graph"
)

func TestComputeCoversAllNodes(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"gnp":   graph.GNP(80, 0.05, 1),
		"grid":  graph.Grid(9, 9),
		"path":  graph.Path(50),
		"star":  graph.Star(20),
		"chain": graph.CliqueChain(5, 5, 0),
	}
	for name, g := range graphs {
		for _, k := range []int{1, 2} {
			d := Compute(g, k)
			if ok, why := d.Validate(g, k); !ok {
				t.Errorf("%s k=%d: invalid decomposition: %s", name, k, why)
			}
			total := 0
			for _, c := range d.Clusters {
				total += len(c)
			}
			if total != g.NumNodes() {
				t.Errorf("%s k=%d: clusters cover %d of %d nodes", name, k, total, g.NumNodes())
			}
			if d.NumColors < 1 && g.NumNodes() > 0 {
				t.Errorf("%s k=%d: no cluster colors", name, k)
			}
			if d.Rounds <= 0 {
				t.Errorf("%s k=%d: non-positive round charge", name, k)
			}
		}
	}
}

func TestEmptyAndTinyGraphs(t *testing.T) {
	d := Compute(graph.NewBuilder(0).Build(), 2)
	if len(d.Clusters) != 0 {
		t.Error("empty graph should have no clusters")
	}
	d = Compute(graph.NewBuilder(1).Build(), 2)
	if len(d.Clusters) != 1 || d.NumColors != 1 {
		t.Errorf("single node: clusters=%d colors=%d", len(d.Clusters), d.NumColors)
	}
	// k < 1 clamps to 1.
	d = Compute(graph.Path(5), 0)
	if ok, why := d.Validate(graph.Path(5), 1); !ok {
		t.Errorf("k=0 clamp: %s", why)
	}
}

func TestRadiusBounded(t *testing.T) {
	g := graph.GNP(200, 0.03, 3)
	d := Compute(g, 2)
	// Weak radius is at most k·log₂ n by construction.
	bound := 2 * 8 // log2(200) ≈ 7.6
	if d.MaxRadius > bound {
		t.Errorf("max radius %d exceeds k·log₂ n = %d", d.MaxRadius, bound)
	}
}

func TestCliqueIsOneCluster(t *testing.T) {
	g := graph.Complete(16)
	d := Compute(g, 1)
	if len(d.Clusters) != 1 {
		t.Errorf("a clique should form a single cluster, got %d", len(d.Clusters))
	}
	if d.NumColors != 1 {
		t.Errorf("single cluster should use one color, got %d", d.NumColors)
	}
}

func TestPropertyValidOnRandomGraphs(t *testing.T) {
	f := func(seed int64) bool {
		g := graph.GNP(50, 0.08, seed)
		d := Compute(g, 2)
		ok, _ := d.Validate(g, 2)
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestValidateDetectsCorruption(t *testing.T) {
	g := graph.Path(6)
	d := Compute(g, 2)
	if len(d.Clusters) < 2 {
		t.Skip("decomposition produced one cluster; corruption test needs two")
	}
	// Force two clusters that are within distance 2 to share a color.
	d.ColorOf[0] = 0
	d.ColorOf[1] = 0
	if ok, _ := d.Validate(g, 2); ok {
		t.Error("Validate should detect same-colored nearby clusters")
	}
	d2 := Compute(g, 2)
	d2.ClusterOf = d2.ClusterOf[:len(d2.ClusterOf)-1]
	if ok, _ := d2.Validate(g, 2); ok {
		t.Error("Validate should detect length mismatch")
	}
}
