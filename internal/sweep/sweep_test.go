package sweep_test

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"sync/atomic"
	"testing"

	"d2color/internal/alg"
	"d2color/internal/coloring"
	"d2color/internal/graph"
	"d2color/internal/sweep"

	_ "d2color/internal/randd2" // registry entries used by the grid tests
)

// countingAlg is a trivial deterministic algorithm that records how often it
// ran and reports a measure derived from its inputs.
func countingAlg(name string, class alg.Determinism, runs *atomic.Int64) alg.Algorithm {
	return alg.Func{
		AlgName: name,
		Class:   class,
		Palette: func(*graph.Graph) int { return 1 },
		RunFunc: func(g *graph.Graph, _ alg.Engine, seed uint64) (alg.Result, error) {
			runs.Add(1)
			c := coloring.New(g.NumNodes())
			for v := range c {
				c[v] = 0
			}
			return alg.Result{Coloring: c, PaletteSize: 1, Details: seed}, nil
		},
	}
}

func testPoints(ns ...int) []sweep.Point {
	var pts []sweep.Point
	for _, n := range ns {
		n := n
		pts = append(pts, sweep.Point{Build: func() (*graph.Graph, string, error) {
			return graph.Cycle(n), fmt.Sprintf("cycle-%d", n), nil
		}})
	}
	return pts
}

func TestGridShapeAndOrder(t *testing.T) {
	var runs atomic.Int64
	spec := sweep.Spec{
		Name:   "shape",
		Points: testPoints(4, 5, 6),
		Algorithms: []sweep.AlgAxis{
			{Alg: countingAlg("a", alg.Randomized, &runs)},
			{Alg: countingAlg("b", alg.Randomized, &runs)},
		},
		Engines: []sweep.EngineAxis{{Name: "e0"}, {Name: "e1"}},
		Reps:    3,
		Seed:    10,
	}
	grid, err := sweep.Run(spec, sweep.Options{Jobs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(grid.Cells) != 3*2*2 {
		t.Fatalf("cells = %d, want 12", len(grid.Cells))
	}
	if got := runs.Load(); got != 12*3 {
		t.Errorf("runs = %d, want 36 (3 reps per cell)", got)
	}
	for pi := 0; pi < 3; pi++ {
		for ai := 0; ai < 2; ai++ {
			for ei := 0; ei < 2; ei++ {
				c := grid.Cell(pi, ai, ei)
				if c.PointIndex != pi || c.AlgIndex != ai || c.EngineIndex != ei {
					t.Fatalf("Cell(%d,%d,%d) returned indices (%d,%d,%d)", pi, ai, ei, c.PointIndex, c.AlgIndex, c.EngineIndex)
				}
				if c.Label != fmt.Sprintf("cycle-%d", []int{4, 5, 6}[pi]) {
					t.Errorf("cell label %q", c.Label)
				}
				if c.Sample == nil || c.Sample.Details.(uint64) != 10 {
					t.Errorf("Sample should be the rep-0 run (seed 10)")
				}
				if c.Reps != 3 {
					t.Errorf("Reps = %d", c.Reps)
				}
			}
		}
	}
}

func TestDeterministicAlgorithmsRunOnce(t *testing.T) {
	var runs atomic.Int64
	spec := sweep.Spec{
		Name:       "det-once",
		Points:     testPoints(4),
		Algorithms: []sweep.AlgAxis{{Alg: countingAlg("d", alg.Deterministic, &runs)}},
		Reps:       5,
	}
	grid, err := sweep.Run(spec, sweep.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if runs.Load() != 1 {
		t.Errorf("deterministic algorithm ran %d times, want 1", runs.Load())
	}
	if grid.Cell(0, 0, 0).Reps != 1 {
		t.Errorf("cell Reps = %d, want 1", grid.Cell(0, 0, 0).Reps)
	}
}

func TestPerAxisRepsOverride(t *testing.T) {
	var runs atomic.Int64
	spec := sweep.Spec{
		Name:       "override",
		Points:     testPoints(4),
		Algorithms: []sweep.AlgAxis{{Alg: countingAlg("r", alg.Randomized, &runs), Reps: 2}},
		Reps:       7,
	}
	if _, err := sweep.Run(spec, sweep.Options{}); err != nil {
		t.Fatal(err)
	}
	if runs.Load() != 2 {
		t.Errorf("axis override ignored: %d runs, want 2", runs.Load())
	}
}

func TestSeedStride(t *testing.T) {
	var seeds []uint64
	a := alg.Func{
		AlgName: "s", Class: alg.Randomized,
		RunFunc: func(g *graph.Graph, _ alg.Engine, seed uint64) (alg.Result, error) {
			seeds = append(seeds, seed)
			return alg.Result{Coloring: coloring.New(g.NumNodes())}, nil
		},
	}
	spec := sweep.Spec{
		Name: "stride", Points: testPoints(3),
		Algorithms: []sweep.AlgAxis{{Alg: a}},
		Reps:       3, Seed: 5,
	}
	if _, err := sweep.Run(spec, sweep.Options{Jobs: 1}); err != nil {
		t.Fatal(err)
	}
	want := []uint64{5, 5 + 101, 5 + 202}
	for i, s := range seeds {
		if s != want[i] {
			t.Errorf("rep %d seed = %d, want %d (default stride 101)", i, s, want[i])
		}
	}
}

func TestAggStreaming(t *testing.T) {
	var a sweep.Agg
	xs := []float64{4, 7, 13, 16}
	var sum float64
	for _, x := range xs {
		a.Add(x)
		sum += x
	}
	if a.Count != 4 || a.Sum != sum {
		t.Errorf("count/sum = %d/%g", a.Count, a.Sum)
	}
	if a.Mean() != sum/4 {
		t.Errorf("mean = %g, want the order-preserving Sum/Count", a.Mean())
	}
	if a.Min() != 4 || a.Max() != 16 {
		t.Errorf("min/max = %g/%g", a.Min(), a.Max())
	}
	// Population variance of {4,7,13,16} is 22.5.
	if math.Abs(a.Variance()-22.5) > 1e-9 {
		t.Errorf("variance = %g, want 22.5", a.Variance())
	}
	var zero sweep.Agg
	if zero.Mean() != 0 || zero.Min() != 0 || zero.Max() != 0 || zero.Variance() != 0 {
		t.Error("empty aggregate accessors should be 0")
	}
	if sweep.Stddev(&a) != math.Sqrt(a.Variance()) || sweep.Stddev(nil) != 0 {
		t.Error("Stddev wrong")
	}
}

func TestCellErrorIsDeterministicAndLabeled(t *testing.T) {
	boom := errors.New("boom")
	failing := alg.Func{
		AlgName: "fail", Class: alg.Randomized,
		RunFunc: func(g *graph.Graph, _ alg.Engine, _ uint64) (alg.Result, error) {
			if g.NumNodes() >= 5 {
				return alg.Result{}, boom
			}
			return alg.Result{Coloring: coloring.New(g.NumNodes())}, nil
		},
	}
	spec := sweep.Spec{
		Name: "errs", Points: testPoints(4, 5, 6),
		Algorithms: []sweep.AlgAxis{{Alg: failing}},
	}
	for _, jobs := range []int{1, 8} {
		_, err := sweep.Run(spec, sweep.Options{Jobs: jobs})
		if !errors.Is(err, boom) {
			t.Fatalf("jobs=%d: err = %v, want wrapped boom", jobs, err)
		}
		// The lowest-indexed failing cell (point 1, cycle-5) wins even when a
		// later cell fails first on the wall clock.
		if got := err.Error(); !strings.Contains(got, "cycle-5") || !strings.Contains(got, "fail") {
			t.Errorf("jobs=%d: error should name the first failing cell and algorithm: %v", jobs, got)
		}
	}
}

func TestPointBuildErrors(t *testing.T) {
	spec := sweep.Spec{
		Name: "badpoint",
		Points: []sweep.Point{{Label: "p0", Build: func() (*graph.Graph, string, error) {
			return nil, "", errors.New("no graph")
		}}},
		Algorithms: []sweep.AlgAxis{{Alg: alg.MustGet("rand-improved")}},
	}
	if _, err := sweep.Run(spec, sweep.Options{}); err == nil {
		t.Fatal("point build errors must fail the sweep")
	}
	if _, err := sweep.Run(sweep.Spec{Name: "nil-build", Points: []sweep.Point{{Label: "x"}},
		Algorithms: []sweep.AlgAxis{{Alg: alg.MustGet("rand-improved")}}}, sweep.Options{}); err == nil {
		t.Fatal("nil Build must fail the sweep")
	}
}

func TestEmptyAxesAreErrors(t *testing.T) {
	if _, err := sweep.Run(sweep.Spec{Name: "no-points",
		Algorithms: []sweep.AlgAxis{{Alg: alg.MustGet("rand-improved")}}}, sweep.Options{}); err == nil {
		t.Error("no points should be an error")
	}
	if _, err := sweep.Run(sweep.Spec{Name: "no-algs", Points: testPoints(4)}, sweep.Options{}); err == nil {
		t.Error("no algorithms should be an error")
	}
}

// TestKernelReuseAcrossReps asserts that the per-cell memoized trial kernel
// is handed to every repetition of a kernel-using algorithm.
func TestKernelReuseAcrossReps(t *testing.T) {
	var kernels, calls atomic.Int64
	probe := alg.Func{
		AlgName: "probe", Class: alg.Randomized,
		RunFunc: func(g *graph.Graph, eng alg.Engine, _ uint64) (alg.Result, error) {
			calls.Add(1)
			if eng.Kernel == nil {
				t.Error("engine should offer a kernel provider")
			} else {
				k1, k2 := eng.Kernel(), eng.Kernel()
				if k1 != k2 {
					t.Error("kernel provider should memoize within the cell")
				}
				kernels.Add(1)
			}
			return alg.Result{Coloring: coloring.New(g.NumNodes())}, nil
		},
	}
	spec := sweep.Spec{
		Name: "kernel", Points: testPoints(6),
		Algorithms: []sweep.AlgAxis{{Alg: probe}},
		Reps:       3,
	}
	if _, err := sweep.Run(spec, sweep.Options{Jobs: 1}); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 3 || kernels.Load() != 3 {
		t.Errorf("calls/kernel-uses = %d/%d, want 3/3", calls.Load(), kernels.Load())
	}
}

// TestGridDeterminismRealAlgorithm runs a real randomized sweep at several
// worker counts and asserts identical aggregates.
func TestGridDeterminismRealAlgorithm(t *testing.T) {
	spec := sweep.Spec{
		Name: "real",
		Points: []sweep.Point{
			{Label: "gnp-a", Build: func() (*graph.Graph, string, error) { return graph.GNPWithAverageDegree(150, 8, 3), "", nil }},
			{Label: "gnp-b", Build: func() (*graph.Graph, string, error) { return graph.GNPWithAverageDegree(200, 10, 4), "", nil }},
		},
		Algorithms: []sweep.AlgAxis{{Alg: alg.MustGet("rand-improved")}},
		Reps:       2,
		Seed:       1,
	}
	var ref *sweep.Grid
	for _, jobs := range []int{1, 2, 8} {
		grid, err := sweep.Run(spec, sweep.Options{Jobs: jobs})
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = grid
			continue
		}
		for i, c := range grid.Cells {
			want := ref.Cells[i]
			for _, m := range []string{sweep.MeasureRounds, sweep.MeasureColors} {
				if c.Mean(m) != want.Mean(m) || c.Max(m) != want.Max(m) || c.Min(m) != want.Min(m) {
					t.Errorf("jobs=%d cell %d measure %s diverged", jobs, i, m)
				}
			}
			for v := range c.Sample.Coloring {
				if c.Sample.Coloring[v] != want.Sample.Coloring[v] {
					t.Errorf("jobs=%d cell %d sample coloring diverged", jobs, i)
					break
				}
			}
		}
	}
}

// TestEngineAxisWorkerCountsByteIdentical runs a real simulated sweep over an
// engine axis with genuine pooled worker counts — not just axis labels — and
// asserts that every engine produces identical aggregates and colorings. The
// sharded values force multi-worker teams even on single-core machines, so
// the persistent pool, the fused round and the work-stealing tail are all on
// the measured path of the grid engine.
func TestEngineAxisWorkerCountsByteIdentical(t *testing.T) {
	spec := sweep.Spec{
		Name: "engine-axis-workers",
		Points: []sweep.Point{
			{Label: "gnp", Build: func() (*graph.Graph, string, error) { return graph.GNPWithAverageDegree(150, 8, 3), "", nil }},
		},
		Algorithms: []sweep.AlgAxis{{Alg: alg.MustGet("rand-improved")}},
		Engines: []sweep.EngineAxis{
			{Name: "sequential"},
			{Name: "sharded-w2", Engine: alg.Engine{Parallel: true, Workers: 2}},
			{Name: "sharded-w5", Engine: alg.Engine{Parallel: true, Workers: 5}},
		},
		Reps: 2,
		Seed: 1,
	}
	grid, err := sweep.Run(spec, sweep.Options{Jobs: 3})
	if err != nil {
		t.Fatal(err)
	}
	ref := grid.Cell(0, 0, 0)
	for ei := 1; ei < len(spec.Engines); ei++ {
		c := grid.Cell(0, 0, ei)
		for _, m := range []string{sweep.MeasureRounds, sweep.MeasureColors} {
			if c.Mean(m) != ref.Mean(m) || c.Max(m) != ref.Max(m) || c.Min(m) != ref.Min(m) {
				t.Errorf("engine %s measure %s diverged from sequential", spec.Engines[ei].Name, m)
			}
		}
		for v := range c.Sample.Coloring {
			if c.Sample.Coloring[v] != ref.Sample.Coloring[v] {
				t.Errorf("engine %s sample coloring diverged at node %d", spec.Engines[ei].Name, v)
				break
			}
		}
		if c.Sample.Metrics != ref.Sample.Metrics {
			t.Errorf("engine %s sample metrics diverged: %v vs %v", spec.Engines[ei].Name, c.Sample.Metrics, ref.Sample.Metrics)
		}
	}
}
