// Package sweep is the declarative, grid-parallel experiment engine. A Spec
// is data: a grid of workload points × algorithm instances × engines, plus a
// repetition count for randomized measurements. Run executes the grid's cells
// over a bounded worker pool and returns the aggregated Grid; callers shape
// the cells into whatever output they need (the harness turns them into
// tables via small row closures).
//
// Determinism: tables generated from a Grid are byte-identical for every
// worker count. Cells are independent (each owns its networks, kernels and
// scratch; point graphs are shared read-only, which is safe because *graph.
// Graph is immutable after Build and its lazy edge index is built under a
// sync.Once). Within a cell the repetitions run sequentially in repetition
// order and fold into streaming aggregates whose mean is Sum/Count with the
// additions performed in that order — exactly the fold of a serial loop. The
// scheduler hands out cell indices, each cell's slot is written by exactly
// one worker, and consumers read the cells in grid index order, so no result
// ever depends on scheduling.
package sweep

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"d2color/internal/alg"
	"d2color/internal/graph"
	"d2color/internal/trial"
)

// Point is one workload cell of the grid: a deferred graph build plus the
// label the row shaper prints for it. Build runs once per point (not per
// cell); the resulting graph is shared read-only by every cell of the point.
type Point struct {
	// Label describes the workload; a non-empty label returned by Build
	// (typically embedding post-clamp effective generator parameters)
	// overrides it.
	Label string
	// Build produces the graph and optionally a self-describing label.
	Build func() (*graph.Graph, string, error)
}

// Pt is shorthand for a Point generated from a GeneratorSpec.
func Pt(spec graph.GeneratorSpec) Point {
	return Point{
		Label: spec.String(),
		Build: func() (*graph.Graph, string, error) {
			g, err := spec.Generate()
			return g, "", err
		},
	}
}

// AlgAxis is one algorithm instance of the grid's algorithm axis.
type AlgAxis struct {
	Alg alg.Algorithm
	// Reps overrides the Spec's repetition count for this algorithm; 0 means
	// the Spec default. Deterministic algorithms always run once.
	Reps int
}

// EngineAxis is one engine choice of the grid's engine axis. All engines are
// byte-deterministic with each other, so extra axis values change wall-clock
// measurements only.
type EngineAxis struct {
	Name   string
	Engine alg.Engine
}

// Spec declares a sweep: the full grid plus how to measure each repetition.
// Adding a scenario is a data change — a new Point, AlgAxis or EngineAxis
// value — not a new loop.
type Spec struct {
	// Name identifies the sweep in errors.
	Name string
	// Points is the workload axis (required, at least one).
	Points []Point
	// Algorithms is the algorithm axis (required, at least one).
	Algorithms []AlgAxis
	// Engines is the engine axis; empty means one sequential engine.
	Engines []EngineAxis
	// Reps is the default repetition count for randomized algorithms; values
	// below 1 mean 1. Repetition i runs with seed Seed + i·SeedStride.
	Reps int
	// Seed is the base seed handed to the algorithms.
	Seed uint64
	// SeedStride separates repetition seeds; 0 means 101.
	SeedStride uint64
	// Observe records extra per-repetition measures beyond the standard
	// "rounds" and "colors" (e.g. a stage count pulled from Details). It is
	// called once per repetition, possibly concurrently across cells but
	// never concurrently for one cell.
	Observe func(rep int, res *alg.Result, rec *Recorder)
	// PackedColors asks every cell's engine for bit-packed colorings
	// (alg.Engine.PackedColors): results of adapters with a packed path carry
	// ⌈log₂(palette+1)⌉ bits/node instead of 8 bytes — the switch the scale
	// experiments flip so a 10⁷-node cell's resident output stays small.
	// Colors (and all aggregates) are byte-identical either way.
	PackedColors bool
}

// Agg is a streaming aggregate over one measure: count, sum, min, max and a
// Welford variance accumulator. No per-repetition values are retained. The
// mean is Sum/Count with the additions performed in repetition order, so it
// is bit-identical to a serial sum-then-divide fold.
type Agg struct {
	Count    int
	Sum      float64
	MinV     float64
	MaxV     float64
	welfMean float64
	welfM2   float64
}

// Add folds one observation into the aggregate.
func (a *Agg) Add(x float64) {
	if a.Count == 0 {
		a.MinV, a.MaxV = x, x
	} else {
		if x < a.MinV {
			a.MinV = x
		}
		if x > a.MaxV {
			a.MaxV = x
		}
	}
	a.Count++
	a.Sum += x
	d := x - a.welfMean
	a.welfMean += d / float64(a.Count)
	a.welfM2 += d * (x - a.welfMean)
}

// Mean returns Sum/Count (0 for an empty aggregate).
func (a *Agg) Mean() float64 {
	if a.Count == 0 {
		return 0
	}
	return a.Sum / float64(a.Count)
}

// Variance returns the population variance (0 for fewer than 2 samples).
func (a *Agg) Variance() float64 {
	if a.Count < 2 {
		return 0
	}
	return a.welfM2 / float64(a.Count)
}

// Min returns the smallest observation (0 for an empty aggregate).
func (a *Agg) Min() float64 {
	if a.Count == 0 {
		return 0
	}
	return a.MinV
}

// Max returns the largest observation (0 for an empty aggregate).
func (a *Agg) Max() float64 {
	if a.Count == 0 {
		return 0
	}
	return a.MaxV
}

// Recorder collects named measures for one cell.
type Recorder struct {
	aggs  map[string]*Agg
	names []string
}

// Add folds x into the named measure's aggregate.
func (r *Recorder) Add(name string, x float64) {
	if r.aggs == nil {
		r.aggs = make(map[string]*Agg)
	}
	a, ok := r.aggs[name]
	if !ok {
		a = &Agg{}
		r.aggs[name] = a
		r.names = append(r.names, name)
	}
	a.Add(x)
}

// Cell is one executed grid cell: the cross product of one point, one
// algorithm and one engine, with its repetition aggregates and the first
// repetition's full result.
type Cell struct {
	PointIndex, AlgIndex, EngineIndex int

	// Label is the point's (possibly Build-overridden) label.
	Label string
	// G is the point's graph, shared read-only with the point's other cells.
	G *graph.Graph
	// Alg and Engine identify the cell's axes.
	Alg    alg.Algorithm
	Engine EngineAxis
	// Reps is the number of repetitions that actually ran.
	Reps int
	// Sample is the first repetition's full result (seed = Spec.Seed).
	Sample *alg.Result

	rec Recorder
}

// Agg returns the named measure's aggregate, or nil if never recorded.
func (c *Cell) Agg(name string) *Agg { return c.rec.aggs[name] }

// Mean returns the named measure's mean (0 if never recorded).
func (c *Cell) Mean(name string) float64 {
	if a := c.Agg(name); a != nil {
		return a.Mean()
	}
	return 0
}

// Max returns the named measure's maximum (0 if never recorded).
func (c *Cell) Max(name string) float64 {
	if a := c.Agg(name); a != nil {
		return a.Max()
	}
	return 0
}

// Min returns the named measure's minimum (0 if never recorded).
func (c *Cell) Min(name string) float64 {
	if a := c.Agg(name); a != nil {
		return a.Min()
	}
	return 0
}

// Measures returns the recorded measure names in first-recorded order.
func (c *Cell) Measures() []string { return c.rec.names }

// Grid is the executed sweep: every cell in grid index order (point-major,
// then algorithm, then engine).
type Grid struct {
	Spec    *Spec
	Cells   []*Cell
	Elapsed time.Duration
}

// Cell returns the cell at the given axis indices.
func (g *Grid) Cell(point, algo, engine int) *Cell {
	ne := len(g.Spec.Engines)
	if ne == 0 {
		ne = 1
	}
	return g.Cells[(point*len(g.Spec.Algorithms)+algo)*ne+engine]
}

// Options configures the scheduler.
type Options struct {
	// Jobs bounds the worker pool that fans out grid cells; values below 1
	// mean GOMAXPROCS. The generated results are identical for every value.
	Jobs int
}

func (o Options) jobs() int {
	if o.Jobs > 0 {
		return o.Jobs
	}
	return runtime.GOMAXPROCS(0)
}

// Standard measure names recorded for every repetition.
const (
	MeasureRounds = "rounds" // Metrics.TotalRounds()
	MeasureColors = "colors" // Coloring.NumColorsUsed()
	// MeasureSeconds is the wall-clock duration of the repetition's Run
	// call. Unlike every other measure it is scheduling-dependent: tables
	// that print it (the scale experiment E11) are not byte-identical
	// across runs or Jobs values, so determinism comparisons must exclude
	// such columns (see harness.Experiment.Volatile).
	MeasureSeconds = "seconds"
)

// Run executes the spec's grid. Cells fan out over the worker pool; within a
// cell the repetitions run sequentially, sharing one lazily-built trial
// kernel (alg.Engine.Kernel) so kernel-running algorithms reuse their network
// and flat per-node state across repetitions. Errors are reported for the
// lowest-indexed failing point or cell, so the returned error is also
// independent of scheduling.
func Run(spec Spec, opts Options) (*Grid, error) {
	if len(spec.Points) == 0 {
		return nil, fmt.Errorf("sweep %s: no points", spec.Name)
	}
	if len(spec.Algorithms) == 0 {
		return nil, fmt.Errorf("sweep %s: no algorithms", spec.Name)
	}
	engines := spec.Engines
	if len(engines) == 0 {
		engines = []EngineAxis{{Name: "seq"}}
	}
	stride := spec.SeedStride
	if stride == 0 {
		stride = 101
	}
	start := time.Now()
	jobs := opts.jobs()

	// Stage 1: build the point graphs (parallel across points, collected by
	// index so failures are reported deterministically).
	type builtPoint struct {
		g     *graph.Graph
		label string
		err   error
	}
	points := make([]builtPoint, len(spec.Points))
	runIndexed(len(spec.Points), jobs, func(i int) {
		p := spec.Points[i]
		if p.Build == nil {
			points[i] = builtPoint{err: fmt.Errorf("point %d (%s): nil Build", i, p.Label)}
			return
		}
		g, label, err := p.Build()
		if label == "" {
			label = p.Label
		}
		points[i] = builtPoint{g: g, label: label, err: err}
	})
	for i := range points {
		if points[i].err != nil {
			return nil, fmt.Errorf("sweep %s: point %d: %w", spec.Name, i, points[i].err)
		}
	}

	// Stage 2: execute the cells.
	cells := make([]*Cell, len(spec.Points)*len(spec.Algorithms)*len(engines))
	errs := make([]error, len(cells))
	runIndexed(len(cells), jobs, func(idx int) {
		ei := idx % len(engines)
		ai := (idx / len(engines)) % len(spec.Algorithms)
		pi := idx / (len(engines) * len(spec.Algorithms))
		axis := spec.Algorithms[ai]
		c := &Cell{
			PointIndex:  pi,
			AlgIndex:    ai,
			EngineIndex: ei,
			Label:       points[pi].label,
			G:           points[pi].g,
			Alg:         axis.Alg,
			Engine:      engines[ei],
		}
		cells[idx] = c
		reps := axis.Reps
		if reps == 0 {
			reps = spec.Reps
		}
		if reps < 1 || axis.Alg.Determinism() == alg.Deterministic {
			reps = 1
		}
		c.Reps = reps

		// The cell's engine, extended with a memoized per-cell trial kernel:
		// the first kernel-running repetition builds it, the rest reuse it,
		// and the cell closes it on the way out (parking the sharded
		// engine's worker team — cells must not leak pooled goroutines).
		eng := engines[ei].Engine
		eng.PackedColors = eng.PackedColors || spec.PackedColors
		var tk *trial.Runner
		eng.Kernel = func() *trial.Runner {
			if tk == nil {
				tk = trial.NewRunner(c.G, eng.Parallel, eng.Workers)
			}
			return tk
		}
		defer func() {
			if tk != nil {
				tk.Close()
			}
		}()

		for rep := 0; rep < reps; rep++ {
			repStart := time.Now()
			res, err := axis.Alg.Run(c.G, eng, spec.Seed+uint64(rep)*stride)
			repElapsed := time.Since(repStart)
			if err != nil {
				errs[idx] = fmt.Errorf("point %d (%s) × %s × %s, rep %d: %w",
					pi, c.Label, axis.Alg.Name(), engines[ei].Name, rep, err)
				return
			}
			c.rec.Add(MeasureRounds, float64(res.Metrics.TotalRounds()))
			c.rec.Add(MeasureColors, float64(res.ColorsUsed()))
			c.rec.Add(MeasureSeconds, repElapsed.Seconds())
			if spec.Observe != nil {
				spec.Observe(rep, &res, &c.rec)
			}
			if rep == 0 {
				r := res
				c.Sample = &r
			}
		}
	})
	for idx := range errs {
		if errs[idx] != nil {
			return nil, fmt.Errorf("sweep %s: %w", spec.Name, errs[idx])
		}
	}

	return &Grid{Spec: &spec, Cells: cells, Elapsed: time.Since(start)}, nil
}

// runIndexed executes fn(0..n-1) over a pool of at most jobs workers pulling
// indices from a shared atomic counter.
func runIndexed(n, jobs int, fn func(i int)) {
	if jobs > n {
		jobs = n
	}
	if jobs <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// Stddev is a convenience for callers that report spread: the square root of
// the aggregate's population variance.
func Stddev(a *Agg) float64 {
	if a == nil {
		return 0
	}
	return math.Sqrt(a.Variance())
}
