package sweep_test

import (
	"fmt"
	"runtime"
	"testing"

	"d2color/internal/alg"
	"d2color/internal/graph"
	"d2color/internal/sweep"

	_ "d2color/internal/randd2"
)

// benchSpec is a fixed 12-cell grid (4 GNP points × 3 repetitions each over
// the improved randomized algorithm + the deterministic pipeline), the shape
// of one harness experiment.
func benchSpec() sweep.Spec {
	var points []sweep.Point
	for _, n := range []int{256, 512, 768, 1024} {
		n := n
		points = append(points, sweep.Point{
			Label: fmt.Sprintf("gnp-%d", n),
			Build: func() (*graph.Graph, string, error) {
				return graph.GNPWithAverageDegree(n, 12, int64(n)), "", nil
			},
		})
	}
	return sweep.Spec{
		Name:   "bench",
		Points: points,
		Algorithms: []sweep.AlgAxis{
			{Alg: alg.MustGet("rand-improved")},
			{Alg: alg.MustGet("rand-basic")},
			{Alg: alg.MustGet("deterministic")},
		},
		Reps: 3,
		Seed: 1,
	}
}

// BenchmarkSweepGrid measures the grid scheduler: the same 12-cell spec
// executed sequentially and fanned over the machine. The generated aggregates
// are byte-identical (asserted by the sweep and harness determinism tests);
// only the wall clock may differ.
func BenchmarkSweepGrid(b *testing.B) {
	spec := benchSpec()
	for _, bc := range []struct {
		name string
		jobs int
	}{
		{"sequential", 1},
		{fmt.Sprintf("parallel-%d", runtime.GOMAXPROCS(0)), 0},
	} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				grid, err := sweep.Run(spec, sweep.Options{Jobs: bc.jobs})
				if err != nil {
					b.Fatal(err)
				}
				if len(grid.Cells) != 12 {
					b.Fatalf("cells = %d, want 12", len(grid.Cells))
				}
			}
		})
	}
}
