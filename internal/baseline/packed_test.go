package baseline

import (
	"fmt"
	"testing"

	"d2color/internal/graph"
	"d2color/internal/trial"
)

// TestBaselineKernelReuseByteIdentical pins the hoisted-kernel contract: the
// simulated baselines on an injected, repeatedly reused trial kernel produce
// exactly the colorings and Metrics of a fresh throwaway kernel per call.
func TestBaselineKernelReuseByteIdentical(t *testing.T) {
	g := graph.GNPWithAverageDegree(600, 8, 17)
	tk := trial.NewRunner(g, false, 0)
	defer tk.Close()
	type run func(opts Options) (Result, error)
	cases := map[string]run{
		"johansson": func(o Options) (Result, error) { return JohanssonD1(g, o) },
		"relaxed":   func(o Options) (Result, error) { return RelaxedD2(g, o) },
	}
	for name, fn := range cases {
		for _, seed := range []uint64{1, 2, 3} {
			t.Run(fmt.Sprintf("%s/seed=%d", name, seed), func(t *testing.T) {
				fresh, err := fn(Options{Seed: seed})
				if err != nil {
					t.Fatal(err)
				}
				reused, err := fn(Options{Seed: seed, TrialKernel: tk})
				if err != nil {
					t.Fatal(err)
				}
				if fresh.Metrics != reused.Metrics || fresh.PaletteSize != reused.PaletteSize {
					t.Fatalf("metrics diverge:\nfresh:  %+v\nreused: %+v", fresh.Metrics, reused.Metrics)
				}
				for v := range fresh.Coloring {
					if fresh.Coloring[v] != reused.Coloring[v] {
						t.Fatalf("node %d: fresh %d, reused %d", v, fresh.Coloring[v], reused.Coloring[v])
					}
				}
			})
		}
	}
}

// TestBaselineKernelGraphMismatch rejects a kernel built for another graph
// instead of silently running the protocol on the wrong topology.
func TestBaselineKernelGraphMismatch(t *testing.T) {
	gA := graph.GNP(50, 0.1, 1)
	gB := graph.GNP(50, 0.1, 2)
	tk := trial.NewRunner(gA, false, 0)
	defer tk.Close()
	if _, err := JohanssonD1(gB, Options{Seed: 1, TrialKernel: tk}); err == nil {
		t.Error("johansson accepted a kernel built for a different graph")
	}
	if _, err := RelaxedD2(gB, Options{Seed: 1, TrialKernel: tk}); err == nil {
		t.Error("relaxed accepted a kernel built for a different graph")
	}
}

// TestJohanssonHoistedAllocs gates the satellite itself: on a warmed injected
// kernel a JohanssonD1 call allocates a small constant number of objects (the
// output coloring and bookkeeping), not the former ~13-per-node kernel
// construction.
func TestJohanssonHoistedAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation probe skipped in -short mode")
	}
	g := graph.GNPWithAverageDegree(4_000, 8, 29)
	tk := trial.NewRunner(g, false, 0)
	defer tk.Close()
	if _, err := JohanssonD1(g, Options{Seed: 1, TrialKernel: tk}); err != nil {
		t.Fatal(err) // warm the kernel (palette rows grow on first Start)
	}
	seed := uint64(2)
	res := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := JohanssonD1(g, Options{Seed: seed, TrialKernel: tk}); err != nil {
				b.Fatal(err)
			}
		}
	})
	if allocs := res.AllocsPerOp(); allocs > 32 {
		t.Errorf("hoisted JohanssonD1: %d allocs/op, want a small n-independent constant (<= 32)", allocs)
	}
}

// TestBaselinePackedParity checks every baseline's packed path against its
// []int path color by color, on fresh and on injected kernels.
func TestBaselinePackedParity(t *testing.T) {
	g := graph.GNPWithAverageDegree(500, 8, 41)
	tk := trial.NewRunner(g, false, 0)
	defer tk.Close()
	type run func(packed bool) (Result, error)
	cases := map[string]run{
		"greedy": func(packed bool) (Result, error) {
			if packed {
				return GreedyD2Packed(g), nil
			}
			return GreedyD2(g), nil
		},
		"johansson": func(packed bool) (Result, error) {
			return JohanssonD1(g, Options{Seed: 9, PackedColors: packed, TrialKernel: tk})
		},
		"relaxed": func(packed bool) (Result, error) {
			return RelaxedD2(g, Options{Seed: 9, PackedColors: packed, TrialKernel: tk})
		},
		"naive": func(packed bool) (Result, error) {
			return NaiveD2(g, Options{Seed: 9, PackedColors: packed})
		},
	}
	for name, fn := range cases {
		t.Run(name, func(t *testing.T) {
			plain, err := fn(false)
			if err != nil {
				t.Fatal(err)
			}
			packed, err := fn(true)
			if err != nil {
				t.Fatal(err)
			}
			if packed.Packed == nil || packed.Coloring != nil {
				t.Fatal("packed run should fill Packed and leave Coloring nil")
			}
			if plain.Packed != nil || plain.Coloring == nil {
				t.Fatal("plain run should fill Coloring and leave Packed nil")
			}
			if plain.PaletteSize != packed.PaletteSize || plain.Metrics != packed.Metrics {
				t.Fatalf("palette/metrics diverge: %+v vs %+v", plain, packed)
			}
			for v := range plain.Coloring {
				if got := packed.Packed.Get(graph.NodeID(v)); got != plain.Coloring[v] {
					t.Fatalf("node %d: plain %d, packed %d", v, plain.Coloring[v], got)
				}
			}
		})
	}
}
