// Package baseline implements the comparison algorithms used by the
// experiment harness:
//
//   - GreedyD2: the sequential greedy distance-2 coloring, the color-count
//     floor every distributed algorithm is compared against;
//   - JohanssonD1: the classical randomized (Δ+1)-coloring of G from the
//     1980s ([19, 9] in the paper), run on the CONGEST simulator — the
//     algorithm whose d2 analogue the paper's introduction explains cannot be
//     implemented directly;
//   - NaiveD2: the strawman the introduction argues against — run the simple
//     randomized coloring on G² and pay Θ(Δ) CONGEST rounds on G for every
//     simulated G² round;
//   - RelaxedD2: the simple whole-palette random-trial algorithm with
//     (1+ε)Δ² colors (Section 2.1), which runs directly on G and finishes in
//     O(log_{1/ε} n) phases but needs more colors than Δ²+1.
package baseline

import (
	"fmt"

	"d2color/internal/bitset"
	"d2color/internal/coloring"
	"d2color/internal/congest"
	"d2color/internal/graph"
	"d2color/internal/trial"
	"d2color/internal/verify"
)

// Result is the common shape of a baseline run.
type Result struct {
	// Coloring is the assignment as a plain []int; nil when the run was asked
	// for packed output.
	Coloring coloring.Coloring
	// Packed is the bit-packed assignment, set instead of Coloring when
	// Options.PackedColors was requested. Colors are byte-identical.
	Packed      *coloring.Packed
	PaletteSize int
	Metrics     congest.Metrics
	Algorithm   string
}

// Options configures the simulated baselines (the greedy baselines take no
// options: they are sequential reference algorithms with zero communication).
type Options struct {
	// Seed drives the per-node randomness.
	Seed uint64
	// Epsilon is the palette slack of RelaxedD2 (ignored by the others);
	// negative values are treated as 0.
	Epsilon float64
	// Parallel runs the underlying simulator on the sharded-parallel engine
	// (byte-deterministic with the sequential one).
	Parallel bool
	// Workers bounds the sharded engine's goroutine pool; 0 means GOMAXPROCS.
	Workers int
	// TrialKernel optionally injects a reusable trial kernel built for the
	// input graph; JohanssonD1 and RelaxedD2 then run on it instead of
	// building (and tearing down) a fresh network per call — the per-call
	// allocation profile drops from O(n + m) to the output coloring alone.
	// The kernel must have been built for the same graph; it is not closed.
	// NaiveD2 cannot use it (its trial runs on the materialized square).
	TrialKernel *trial.Runner
	// PackedColors emits the result bit-packed (Result.Packed set,
	// Result.Coloring nil); see trial.Config.PackedOutput.
	PackedColors bool
}

// runTrial dispatches a trial run to the injected reusable kernel, or to a
// throwaway one (trial.Run) when none was supplied.
func runTrial(g *graph.Graph, opts Options, cfg trial.Config) (trial.Result, error) {
	if tk := opts.TrialKernel; tk != nil {
		if tk.Graph() != g {
			return trial.Result{}, fmt.Errorf("baseline: injected trial kernel was built for a different graph")
		}
		return tk.Run(cfg)
	}
	return trial.Run(g, cfg)
}

// GreedyD2 colors G² sequentially in node order, always choosing the smallest
// color not used within distance 2. It uses at most Δ(G²)+1 ≤ Δ²+1 colors and
// zero communication rounds; it is the correctness and color-count reference.
// Distance-2 neighborhoods are streamed from the CSR arrays — the square is
// never materialized — and the used-color set is a palette bitset, so the
// first-free pick is a TrailingZeros64 word scan instead of an
// element-at-a-time prefix walk; the greedy floor scales to million-node
// graphs.
func GreedyD2(g *graph.Graph) Result {
	colors, palette := greedyD2Colors(g)
	n := g.NumNodes()
	c := coloring.New(n)
	for v := range c {
		c[v] = int(colors[v])
	}
	return Result{Coloring: c, PaletteSize: palette, Algorithm: "greedy-d2"}
}

// GreedyD2Packed is GreedyD2 emitting the coloring bit-packed: the scan's
// working set is the transient 4-bytes/node scratch plus the
// ⌈log₂(palette+1)⌉-bits/node output — the representation 10⁷-node rows keep
// resident. Colors are byte-identical to GreedyD2.
func GreedyD2Packed(g *graph.Graph) Result {
	colors, palette := greedyD2Colors(g)
	out := coloring.NewPacked(g.NumNodes(), palette)
	for v, c := range colors {
		out.Set(graph.NodeID(v), int(c))
	}
	return Result{Packed: out, PaletteSize: palette, Algorithm: "greedy-d2"}
}

// greedyD2Colors is the shared greedy scan, writing into an int32 scratch
// (every greedy color is at most Δ(G²) < n ≤ 2³¹) that the public entry
// points expand or pack.
func greedyD2Colors(g *graph.Graph) ([]int32, int) {
	d2 := graph.NewDist2View(g)
	n := g.NumNodes()
	c := make([]int32, n)
	for v := range c {
		c[v] = int32(coloring.Uncolored)
	}
	// Greedy assigns node v a color at most its d2-degree, so Δ(G²)+1 bits
	// bound every pick; +1 more keeps FirstZero in range when a node's whole
	// prefix is used. The walk visits the raw 1- and 2-hop lists without
	// deduplication: marking a color twice is idempotent and a one-word
	// bit-op on the L1-resident palette row, cheaper than the dist-2 view's
	// per-visit membership probe into an n-sized mark buffer (v itself needs
	// no exclusion — it is still uncolored when its own pick runs). Only the
	// bits set for the current node (tracked in touched) are cleared between
	// nodes.
	used := bitset.NewFixed(d2.MaxDist2Degree() + 2)
	var touched []int32
	mark := func(col int32) {
		if col != int32(coloring.Uncolored) && !used.Test(int(col)) {
			used.Set(int(col))
			touched = append(touched, col)
		}
	}
	for v := 0; v < n; v++ {
		for _, u := range g.Neighbors(graph.NodeID(v)) {
			mark(c[u])
			for _, w := range g.Neighbors(u) {
				mark(c[w])
			}
		}
		c[v] = int32(used.FirstZero())
		for _, t := range touched {
			used.Clear(int(t))
		}
		touched = touched[:0]
	}
	return c, d2.MaxDist2Degree() + 1
}

// GreedyD1 colors G sequentially with at most Δ+1 colors, picking first-free
// colors by word scan like GreedyD2.
func GreedyD1(g *graph.Graph) Result {
	c := coloring.New(g.NumNodes())
	used := bitset.NewFixed(g.MaxDegree() + 2)
	var touched []int32
	for v := 0; v < g.NumNodes(); v++ {
		for _, u := range g.Neighbors(graph.NodeID(v)) {
			if col := c[u]; col != coloring.Uncolored && !used.Test(col) {
				used.Set(col)
				touched = append(touched, int32(col))
			}
		}
		c[v] = used.FirstZero()
		for _, t := range touched {
			used.Clear(int(t))
		}
		touched = touched[:0]
	}
	return Result{Coloring: c, PaletteSize: g.MaxDegree() + 1, Algorithm: "greedy-d1"}
}

// JohanssonD1 runs the simple randomized (Δ+1)-coloring of G on the CONGEST
// simulator: in every phase each uncolored node tries a uniformly random
// color and keeps it if no neighbor uses or simultaneously tries it.
func JohanssonD1(g *graph.Graph, opts Options) (Result, error) {
	palette := g.MaxDegree() + 1
	res, err := runTrial(g, opts, trial.Config{
		PaletteSize:    palette,
		Scope:          trial.ScopeDistance1,
		Seed:           opts.Seed,
		AvoidKnownUsed: true,
		Parallel:       opts.Parallel,
		Workers:        opts.Workers,
		PackedOutput:   opts.PackedColors,
	})
	if err != nil {
		return Result{}, fmt.Errorf("johansson: %w", err)
	}
	if !res.Complete {
		return Result{}, fmt.Errorf("johansson: did not complete within %d phases", res.Phases)
	}
	return Result{Coloring: res.Coloring, Packed: res.Packed, PaletteSize: palette, Metrics: res.Metrics, Algorithm: "johansson-d1"}, nil
}

// RelaxedD2 runs the simple whole-palette random-trial d2-coloring with
// ceil((1+epsilon)·Δ²)+1 colors directly on G (Section 2.1's first
// observation). It is fast but uses more colors than the paper's main
// algorithms.
func RelaxedD2(g *graph.Graph, opts Options) (Result, error) {
	palette := relaxedPalette(g.MaxDegree(), opts.Epsilon)
	res, err := runTrial(g, opts, trial.Config{
		PaletteSize:  palette,
		Scope:        trial.ScopeDistance2,
		Seed:         opts.Seed,
		Parallel:     opts.Parallel,
		Workers:      opts.Workers,
		PackedOutput: opts.PackedColors,
	})
	if err != nil {
		return Result{}, fmt.Errorf("relaxed-d2: %w", err)
	}
	if !res.Complete {
		return Result{}, fmt.Errorf("relaxed-d2: did not complete within %d phases", res.Phases)
	}
	return Result{Coloring: res.Coloring, Packed: res.Packed, PaletteSize: palette, Metrics: res.Metrics, Algorithm: "relaxed-d2"}, nil
}

// relaxedPalette is the (1+ε)Δ²+1 palette of RelaxedD2 (negative ε means 0),
// shared with the alg adapter's advertised bound.
func relaxedPalette(delta int, epsilon float64) int {
	if epsilon < 0 {
		epsilon = 0
	}
	return int(float64(delta*delta)*(1+epsilon)) + 1
}

// NaiveD2 implements the strawman from the introduction: run the simple
// randomized (Δ(G²)+1)-coloring on the square graph and charge Θ(Δ) CONGEST
// rounds on G for every round simulated on G², because in general a single
// G² round requires Ω(Δ) rounds on G to relay all messages through
// intermediate nodes.
//
// The returned metrics contain the charged G-rounds (simulated G²-rounds ×
// Δ); the simulated rounds of the inner run are reported as G²-rounds via the
// Rounds field of the inner metrics and folded into ChargedRounds here.
func NaiveD2(g *graph.Graph, opts Options) (Result, error) {
	// The strawman genuinely runs a CONGEST simulation ON the square, so this
	// is the one place the square is (deliberately) built as a standing
	// graph — through the streaming view and the sort-dedupe builder, which
	// is the cheapest way to pay the cost the paper's introduction warns
	// about.
	sq := graph.NewDist2View(g).Materialize()
	palette := sq.MaxDegree() + 1
	if palette < 1 {
		palette = 1
	}
	res, err := trial.Run(sq, trial.Config{
		PaletteSize: palette,
		Scope:       trial.ScopeDistance1, // distance-1 on G² is distance-2 on G
		Seed:        opts.Seed,
		Parallel:    opts.Parallel,
		Workers:     opts.Workers,
		// The whole point of paying the Δ-factor simulation is that nodes can
		// track their G²-neighbors' colors, so the simple algorithm picks
		// among colors it has not seen used.
		AvoidKnownUsed: true,
		PackedOutput:   opts.PackedColors,
	})
	if err != nil {
		return Result{}, fmt.Errorf("naive-d2: %w", err)
	}
	if !res.Complete {
		return Result{}, fmt.Errorf("naive-d2: did not complete within %d phases", res.Phases)
	}
	simulationFactor := g.MaxDegree()
	if simulationFactor < 1 {
		simulationFactor = 1
	}
	m := congest.Metrics{
		ChargedRounds: res.Metrics.Rounds * simulationFactor,
		MessagesSent:  res.Metrics.MessagesSent,
		WordsSent:     res.Metrics.WordsSent,
	}
	// Verify on the original graph as a belt-and-braces check: a proper
	// coloring of G² is by definition a d2-coloring of G.
	var rep verify.Report
	if res.Packed != nil {
		rep = verify.CheckD2Packed(g, res.Packed, palette)
	} else {
		rep = verify.CheckD2(g, res.Coloring, palette)
	}
	if !rep.Valid {
		return Result{}, fmt.Errorf("naive-d2: internal error, produced invalid coloring: %w", rep.Error())
	}
	return Result{Coloring: res.Coloring, Packed: res.Packed, PaletteSize: palette, Metrics: m, Algorithm: "naive-d2"}, nil
}
