package baseline

import (
	"fmt"
	"testing"

	"d2color/internal/graph"
	"d2color/internal/trial"
)

// BenchmarkGreedyD2 measures the sequential greedy distance-2 baseline — the
// color-count floor every sweep computes — on sparse GNP workloads. The
// dominant inner operation is the first-free-color pick over the used set.
func BenchmarkGreedyD2(b *testing.B) {
	for _, n := range []int{10_000, 100_000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			g := graph.GNPWithAverageDegree(n, 8, 23)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r := GreedyD2(g)
				if !r.Coloring.Complete() {
					b.Fatal("greedy left nodes uncolored")
				}
			}
		})
	}
}

// BenchmarkJohanssonD1 measures the simulated (Δ+1)-coloring whose picker
// samples uniformly among colors not known used — the availability-sampling
// path of the trial kernel — on a hoisted kernel: the network, its processes
// and every per-node buffer are built once and rewound per run, so the
// per-op allocations are the output coloring plus small constants instead of
// the former ~132k-alloc kernel construction.
func BenchmarkJohanssonD1(b *testing.B) {
	g := graph.GNPWithAverageDegree(10_000, 8, 29)
	tk := trial.NewRunner(g, false, 0)
	defer tk.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := JohanssonD1(g, Options{Seed: uint64(i + 1), TrialKernel: tk}); err != nil {
			b.Fatal(err)
		}
	}
}

// TestGreedyAllocBounded gates the greedy baselines' allocation profile: the
// bitset palette row and the output coloring are the only allocations, so
// the alloc count per run is a small constant independent of n (the former
// per-node map/bool-slice churn would scale with the node count).
func TestGreedyAllocBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation probe skipped in -short mode")
	}
	for _, n := range []int{2_000, 8_000} {
		g := graph.GNPWithAverageDegree(n, 8, 31)
		res := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				GreedyD2(g)
			}
		})
		if allocs := res.AllocsPerOp(); allocs > 16 {
			t.Errorf("GreedyD2 at n=%d: %d allocs/op, want a small n-independent constant (<= 16)", n, allocs)
		}
		res = testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				GreedyD1(g)
			}
		})
		if allocs := res.AllocsPerOp(); allocs > 16 {
			t.Errorf("GreedyD1 at n=%d: %d allocs/op, want a small n-independent constant (<= 16)", n, allocs)
		}
	}
}
