package baseline

import (
	"d2color/internal/alg"
	"d2color/internal/graph"
)

// GreedyAlgorithm wraps the sequential greedy reference in the unified
// alg.Algorithm interface.
func GreedyAlgorithm() alg.Algorithm {
	return alg.Func{
		AlgName: "greedy",
		Class:   alg.Deterministic,
		Palette: alg.D2Palette,
		RunFunc: func(g *graph.Graph, eng alg.Engine, _ uint64) (alg.Result, error) {
			var r Result
			if eng.PackedColors {
				r = GreedyD2Packed(g)
			} else {
				r = GreedyD2(g)
			}
			return alg.Result{Coloring: r.Coloring, Packed: r.Packed, PaletteSize: r.PaletteSize, Metrics: r.Metrics, Details: &r}, nil
		},
	}
}

// NaiveAlgorithm wraps the Θ(Δ)-per-round G²-simulation strawman in the
// unified alg.Algorithm interface.
func NaiveAlgorithm(opts Options) alg.Algorithm {
	return alg.Func{
		AlgName: "naive",
		Class:   alg.Randomized,
		Palette: alg.D2Palette,
		RunFunc: func(g *graph.Graph, eng alg.Engine, seed uint64) (alg.Result, error) {
			o := opts
			o.Seed = seed
			o.Parallel = eng.Parallel
			o.Workers = eng.Workers
			o.PackedColors = eng.PackedColors
			r, err := NaiveD2(g, o)
			if err != nil {
				return alg.Result{}, err
			}
			return alg.Result{Coloring: r.Coloring, Packed: r.Packed, PaletteSize: r.PaletteSize, Metrics: r.Metrics, Details: &r}, nil
		},
	}
}

// RelaxedAlgorithm wraps the whole-palette (1+ε)Δ² random-trial baseline in
// the unified alg.Algorithm interface. A negative Epsilon means 0.
func RelaxedAlgorithm(opts Options) alg.Algorithm {
	return alg.Func{
		AlgName: "relaxed",
		Class:   alg.Randomized,
		Palette: func(g *graph.Graph) int {
			return relaxedPalette(g.MaxDegree(), opts.Epsilon)
		},
		RunFunc: func(g *graph.Graph, eng alg.Engine, seed uint64) (alg.Result, error) {
			o := opts
			o.Seed = seed
			o.Parallel = eng.Parallel
			o.Workers = eng.Workers
			o.PackedColors = eng.PackedColors
			if o.TrialKernel == nil && eng.Kernel != nil {
				o.TrialKernel = eng.Kernel()
			}
			r, err := RelaxedD2(g, o)
			if err != nil {
				return alg.Result{}, err
			}
			return alg.Result{Coloring: r.Coloring, Packed: r.Packed, PaletteSize: r.PaletteSize, Metrics: r.Metrics, Details: &r}, nil
		},
	}
}

func init() {
	alg.Register(GreedyAlgorithm())
	alg.Register(NaiveAlgorithm(Options{}))
	alg.Register(RelaxedAlgorithm(Options{Epsilon: 1}))
}
