package baseline

import (
	"testing"
	"testing/quick"

	"d2color/internal/graph"
	"d2color/internal/verify"
)

func testGraphs() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"gnp":    graph.GNP(70, 0.06, 1),
		"grid":   graph.Grid(7, 7),
		"star":   graph.Star(15),
		"chain":  graph.CliqueChain(4, 5, 0),
		"tree":   graph.BalancedTree(3, 3),
		"single": graph.NewBuilder(1).Build(),
		"empty":  graph.NewBuilder(0).Build(),
	}
}

func TestGreedyD2Valid(t *testing.T) {
	for name, g := range testGraphs() {
		res := GreedyD2(g)
		if rep := verify.CheckD2(g, res.Coloring, res.PaletteSize); !rep.Valid {
			t.Errorf("%s: %v", name, rep.Error())
		}
		if res.Algorithm != "greedy-d2" {
			t.Errorf("%s: algorithm label %q", name, res.Algorithm)
		}
	}
}

func TestGreedyD1Valid(t *testing.T) {
	for name, g := range testGraphs() {
		res := GreedyD1(g)
		if rep := verify.CheckD1(g, res.Coloring, res.PaletteSize); !rep.Valid {
			t.Errorf("%s: %v", name, rep.Error())
		}
	}
}

func TestGreedyD2UsesAtMostSquareDegreePlusOne(t *testing.T) {
	f := func(seed int64) bool {
		g := graph.GNP(50, 0.08, seed)
		res := GreedyD2(g)
		return res.Coloring.MaxColor() < g.Square().MaxDegree()+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestJohanssonD1(t *testing.T) {
	g := graph.GNP(90, 0.07, 2)
	res, err := JohanssonD1(g, Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if rep := verify.CheckD1(g, res.Coloring, res.PaletteSize); !rep.Valid {
		t.Errorf("invalid coloring: %v", rep.Error())
	}
	if res.PaletteSize != g.MaxDegree()+1 {
		t.Errorf("palette = %d, want Δ+1 = %d", res.PaletteSize, g.MaxDegree()+1)
	}
	if res.Metrics.Rounds == 0 {
		t.Error("expected some simulated rounds")
	}
}

func TestRelaxedD2(t *testing.T) {
	g := graph.CliqueChain(5, 5, 0)
	res, err := RelaxedD2(g, Options{Seed: 3, Epsilon: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	delta := g.MaxDegree()
	if res.PaletteSize != 2*delta*delta+1 {
		t.Errorf("palette = %d, want %d", res.PaletteSize, 2*delta*delta+1)
	}
	if rep := verify.CheckD2(g, res.Coloring, res.PaletteSize); !rep.Valid {
		t.Errorf("invalid coloring: %v", rep.Error())
	}
	// Negative epsilon clamps to 0.
	res2, err := RelaxedD2(graph.Star(6), Options{Seed: 3, Epsilon: -1})
	if err != nil {
		t.Fatal(err)
	}
	if res2.PaletteSize != 26 {
		t.Errorf("palette with clamped epsilon = %d, want 26", res2.PaletteSize)
	}
}

func TestNaiveD2(t *testing.T) {
	g := graph.GNP(60, 0.08, 5)
	res, err := NaiveD2(g, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if rep := verify.CheckD2(g, res.Coloring, res.PaletteSize); !rep.Valid {
		t.Errorf("invalid coloring: %v", rep.Error())
	}
	if res.PaletteSize > g.MaxDegree()*g.MaxDegree()+1 {
		t.Errorf("palette %d exceeds Δ²+1", res.PaletteSize)
	}
	// The whole point of the baseline: the charged G-round count is a
	// multiple of Δ (per simulated G² round).
	if res.Metrics.ChargedRounds == 0 || res.Metrics.ChargedRounds%g.MaxDegree() != 0 {
		t.Errorf("charged rounds %d should be a positive multiple of Δ=%d", res.Metrics.ChargedRounds, g.MaxDegree())
	}
}

func TestNaiveD2ChargesGrowWithDelta(t *testing.T) {
	// At (roughly) fixed n, the naive baseline's cost should grow with Δ much
	// faster than logarithmically. Compare two average degrees.
	lo := graph.GNPWithAverageDegree(300, 4, 1)
	hi := graph.GNPWithAverageDegree(300, 16, 1)
	resLo, err := NaiveD2(lo, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	resHi, err := NaiveD2(hi, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if resHi.Metrics.TotalRounds() <= resLo.Metrics.TotalRounds() {
		t.Errorf("naive cost should increase with Δ: low=%d high=%d",
			resLo.Metrics.TotalRounds(), resHi.Metrics.TotalRounds())
	}
}

func TestBaselinesDeterministic(t *testing.T) {
	g := graph.GNP(40, 0.1, 4)
	a, err := NaiveD2(g, Options{Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NaiveD2(g, Options{Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	for v := range a.Coloring {
		if a.Coloring[v] != b.Coloring[v] {
			t.Fatal("same seed should reproduce the same coloring")
		}
	}
}
