package baseline

import (
	"testing"

	"d2color/internal/graph"
)

// BenchmarkGreedyD2Scale1M measures the greedy floor at the million-node
// scale of experiment E11. Excluded from the pinned CI set; run manually to
// reproduce the README scale table.
func BenchmarkGreedyD2Scale1M(b *testing.B) {
	g := graph.GNPWithAverageDegree(1_000_000, 8, 23)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := GreedyD2(g)
		if !r.Coloring.Complete() {
			b.Fatal("greedy left nodes uncolored")
		}
	}
}
