package randd2

import (
	"math"

	"d2color/internal/coloring"
	"d2color/internal/graph"
)

// ReduceStats reports what one call to Reduce accomplished, for the
// experiment harness and tests.
type ReduceStats struct {
	Phi            float64
	Tau            float64
	Phases         int
	QueriesSent    int
	QueriesDropped int
	Proposals      int
	NodesColored   int
	ChargedRounds  int
}

// reduce implements Algorithm Reduce(φ, τ) of Section 2.2.
//
// Precondition (not checked, per the paper it holds w.h.p. at every call
// site): live nodes have leeway less than φ. Postcondition (w.h.p. in the
// asymptotic regime): live nodes have leeway less than τ.
//
// Structure: each node selects a list Ru of ρ = C3·(φ/τ)²·log n uniformly
// random H-neighbours (Lemma 2.3 gives the O(ρ + log n)-round selection
// protocol; we charge that and draw the choices from the node's private
// randomness, which is the distribution the XOR protocol realizes). Then ρ
// phases of Reduce-Phase are run; every live node is active in a phase
// independently with probability τ/(ActiveDenominator·φ); every phase is
// charged RoundsPerReducePhase CONGEST rounds (the paper counts 23).
func (r *runner) reduce(phi, tau float64) ReduceStats {
	stats := ReduceStats{Phi: phi, Tau: tau}
	if phi < 1 {
		phi = 1
	}
	if tau < 1 {
		tau = 1
	}
	ratio := phi / tau
	rho := int(math.Ceil(r.params.C3 * ratio * ratio * log2(r.n)))
	if rho < 1 {
		rho = 1
	}
	stats.Phases = rho

	// Selection of the random H-neighbour lists Ru (Lemma 2.3).
	ru := make([][]graph.NodeID, r.n)
	for u := 0; u < r.n; u++ {
		nbrs := r.sim.hNeighbors(graph.NodeID(u))
		if len(nbrs) == 0 {
			continue
		}
		lst := make([]graph.NodeID, rho)
		for i := range lst {
			lst[i] = nbrs[r.rand[u].Intn(len(nbrs))]
		}
		ru[u] = lst
	}
	selectionRounds := rho + int(math.Ceil(log2(r.n)))
	r.charge(selectionRounds)
	stats.ChargedRounds += selectionRounds

	activeProb := tau / (r.params.ActiveDenominator * phi)
	for phase := 0; phase < rho; phase++ {
		ps := r.reducePhase(phi, activeProb, ru, phase)
		stats.QueriesSent += ps.queriesSent
		stats.QueriesDropped += ps.queriesDropped
		stats.Proposals += ps.proposals
		stats.NodesColored += ps.colored
		r.charge(r.params.RoundsPerReducePhase)
		stats.ChargedRounds += r.params.RoundsPerReducePhase
	}
	return stats
}

// phaseStats aggregates one Reduce-Phase.
type phaseStats struct {
	queriesSent    int
	queriesDropped int
	proposals      int
	colored        int
}

// query is one query travelling from a live node v through the (unique)
// intermediate node mid to the Ĥ-neighbour u (Reduce-Phase step 1). The
// priority implements the random culling of colliding queries: at every point
// where a node must keep only one of several queries it keeps the one with
// the highest priority, which is equivalent to keeping a uniformly random one
// and is exactly the mechanism described in the proof of Lemma 2.8.
type query struct {
	v        graph.NodeID
	u        graph.NodeID
	mid      graph.NodeID
	priority uint64
}

// reducePhase implements Algorithm Reduce-Phase(φ, τ) of Section 2.2.
func (r *runner) reducePhase(phi, activeProb float64, ru [][]graph.NodeID, phase int) phaseStats {
	var st phaseStats
	queryProb := 1 / (r.params.QueryDenominator * phi)

	// Step 0 (implicit): each live node decides whether it is active. The
	// slice is built in node order (the live list stays ascending) so the
	// run is deterministic per seed; the buffer is reused across phases.
	active := r.activeScratch[:0]
	for _, v := range r.live {
		if r.rand[v].Bernoulli(activeProb) {
			active = append(active, v)
		}
	}
	r.activeScratch = active
	if len(active) == 0 {
		return st
	}

	// Step 1: each active live node sends a query across each 2-path to each
	// of its Ĥ-neighbours independently with probability queryProb.
	var all []query
	for _, v := range active {
		for _, u := range r.sim.hHatNeighbors(v) {
			// Enumerate the 2-paths v–mid–u; a direct edge does not count as
			// a 2-path, matching graph.TwoPaths.
			for _, mid := range r.g.Neighbors(v) {
				if mid == u || !r.g.HasEdge(mid, u) {
					continue
				}
				if !r.rand[v].Bernoulli(queryProb) {
					continue
				}
				all = append(all, query{v: v, u: u, mid: mid, priority: r.rand[v].Uint64()})
				st.queriesSent++
			}
		}
	}
	if len(all) == 0 {
		return st
	}

	// Congestion culling after step 1: an intermediate node that receives
	// several queries keeps one (the highest priority), and so does the
	// recipient u.
	surviving := cullByKey(all, func(q query) graph.NodeID { return q.mid })
	surviving = cullByKey(surviving, func(q query) graph.NodeID { return q.u })

	// Step 2: u verifies there is only a single 2-path from v and drops the
	// query otherwise.
	verified := surviving[:0]
	for _, q := range surviving {
		if r.g.TwoPaths(q.v, q.u) == 1 {
			verified = append(verified, q)
		}
	}
	st.queriesDropped = st.queriesSent - len(verified)

	// Steps 3–5: helpers generate proposals.
	proposals := make(map[graph.NodeID][]int, len(active))
	propose := func(v graph.NodeID, color int) {
		proposals[v] = append(proposals[v], color)
		st.proposals++
	}

	// Step 4 collisions: queries forwarded to the same w collide; keep one.
	type forwarded struct {
		q query
		w graph.NodeID
	}
	var forwards []forwarded

	for _, q := range verified {
		u := q.u
		// Step 3: u picks a random colour ĉ different from its own and checks
		// whether any of its H-neighbours uses it; if not, it proposes ĉ to v.
		cHat := r.rand[u].Intn(r.palette)
		if cHat == r.col[u] {
			cHat = (cHat + 1) % r.palette
		}
		usedByHNbr := false
		for _, x := range r.sim.hNeighbors(u) {
			if r.col[x] == cHat {
				usedByHNbr = true
				break
			}
		}
		if !usedByHNbr {
			propose(q.v, cHat)
		}
		// Step 4: u forwards the query to the next random H-neighbour from Ru.
		if lst := ru[u]; len(lst) > 0 {
			forwards = append(forwards, forwarded{q: q, w: lst[phase%len(lst)]})
		}
	}

	// Cull forwarded queries colliding at the same w, then process survivors
	// in a deterministic order (sorted by w) so runs are reproducible per seed.
	byW := make(map[graph.NodeID]forwarded, len(forwards))
	for _, f := range forwards {
		if prev, ok := byW[f.w]; !ok || f.q.priority > prev.q.priority {
			byW[f.w] = f
		}
	}
	ws := make([]graph.NodeID, 0, len(byW))
	for w := range byW {
		ws = append(ws, w)
	}
	sortNodeSlice(ws)
	for _, w := range ws {
		f := byW[w]
		// Step 5: w checks whether v is a d2-neighbour; if not, w's own colour
		// is sent back to v as a proposal (only meaningful if w is colored).
		if r.col[w] == coloring.Uncolored {
			continue
		}
		if !r.d2.IsDist2Neighbor(w, f.q.v) {
			propose(f.q.v, r.col[w])
		}
	}

	// Step 6: every active live node with proposals tries one chosen
	// uniformly at random; simultaneous conflicting tries all fail.
	r.beginTries()
	for v, colors := range proposals {
		if !r.isLive(v) {
			continue
		}
		r.setTry(v, colors[r.rand[v].Intn(len(colors))])
	}
	st.colored = len(r.resolveTries())
	return st
}

// cullByKey keeps, for every distinct key, only the query with the highest
// priority (a uniformly random survivor, since priorities are i.i.d.).
func cullByKey(qs []query, key func(query) graph.NodeID) []query {
	best := make(map[graph.NodeID]query, len(qs))
	for _, q := range qs {
		if prev, ok := best[key(q)]; !ok || q.priority > prev.priority {
			best[key(q)] = q
		}
	}
	out := qs[:0]
	for _, q := range qs {
		if best[key(q)].priority == q.priority && best[key(q)].v == q.v && best[key(q)].u == q.u {
			out = append(out, q)
		}
	}
	return out
}
