package randd2

import (
	"fmt"
	"math"

	"d2color/internal/bitset"
	"d2color/internal/graph"
)

// PaletteStats reports what LearnPalette observed, for experiment E7.
type PaletteStats struct {
	LiveNodes     int
	MaxMissing    int // max over live nodes of |Tv|, the colours learned only via the correction step (Lemma 2.15: O(log n))
	MaxLivePerNbr int // max number of live d2-neighbours of any node (the precondition bound ϕ)
	ChargedRounds int
}

// remainingPalettes is LearnPalette's output: one palette bitset row per
// live node (set bit = colour still available), carved out of a single flat
// backing slice. FinishColoring mutates the rows in place as colours get
// claimed; len is a popcount, the i-th smallest remaining colour a word
// scan.
type remainingPalettes struct {
	words []uint64
	w     int     // words per row
	row   []int32 // node -> row offset in words, -1 for non-live nodes
}

// has reports whether v owns a remaining-palette row.
func (p *remainingPalettes) has(v graph.NodeID) bool { return p.row[v] >= 0 }

// palette returns v's row (caller must check has first).
func (p *remainingPalettes) palette(v graph.NodeID) bitset.Row {
	base := int(p.row[v])
	return bitset.Row(p.words[base : base+p.w])
}

// learnPalette implements Algorithm LearnPalette of Section 2.6.
//
// Outcome: every live node knows its remaining palette — the set of colours
// in [Δ²+1] not used by any of its d2-neighbours. In the protocol this
// knowledge is assembled by handler nodes (one per block of ~Δ colours per
// live node) that colored nodes reach through random 2-paths; the colours a
// live node fails to learn that way (the set Tv) are recovered exactly in the
// final correction step through its immediate neighbours (step 7). We compute
// both quantities: the exact remaining palette (the protocol's guaranteed
// output) and |Tv| — here the colours of d2-neighbours that are not
// H-neighbours of v, the quantity Lemma 2.15 bounds by O(log n) — which the
// harness reports.
//
// The colour sets are palette bitsets: the two observation sets are marked
// bit by bit, |Tv| is popcount(usedAll &^ usedViaH), and the remaining
// palette is the complement of usedAll — word operations over Δ²/64 words
// instead of the former two fresh bool-slices per live node.
//
// Round charge (Theorem 2.16 with Z = Δ and P = Δ·sqrt(Δ·log n)):
// O(ϕ) for the floodings of steps 1–2 plus O(log n) for steps 3–7, which is
// O(log n) when Δ = Ω(log n). We charge ϕ + 4·log₂ n.
func (r *runner) learnPalette() (remaining *remainingPalettes, stats PaletteStats) {
	live := r.live
	stats.LiveNodes = len(live)
	w := bitset.WordsFor(r.palette)
	remaining = &remainingPalettes{
		words: make([]uint64, len(live)*w),
		w:     w,
		row:   make([]int32, r.n),
	}
	for v := range remaining.row {
		remaining.row[v] = -1
	}

	// Precondition quantity ϕ: live d2-neighbours per node.
	for v := 0; v < r.n; v++ {
		liveNbrs := 0
		r.d2.ForEachDist2(graph.NodeID(v), func(u graph.NodeID) bool {
			if r.isLive(u) {
				liveNbrs++
			}
			return true
		})
		if liveNbrs > stats.MaxLivePerNbr {
			stats.MaxLivePerNbr = liveNbrs
		}
	}

	usedAll := bitset.NewFixed(r.palette)  // colours of all colored d2-neighbours
	usedViaH := bitset.NewFixed(r.palette) // colours the handlers learn (from H-neighbours)
	for li, v := range live {
		usedAll.ClearAll()
		usedViaH.ClearAll()
		r.d2.ForEachDist2(v, func(u graph.NodeID) bool {
			c := r.col[u]
			if c < 0 || c >= r.palette {
				return true
			}
			usedAll.Set(c)
			if r.sim.isHNeighbor(v, u) {
				usedViaH.Set(c)
			}
			return true
		})
		// Tv: colours v did not learn through the handler mechanism and must
		// recover via the correction step — exactly the colours used only by
		// non-H d2-neighbours (proof of Lemma 2.15).
		if missing := usedAll.Row().AndNotCount(usedViaH.Row()); missing > stats.MaxMissing {
			stats.MaxMissing = missing
		}
		// The protocol's guaranteed output: the exact remaining palette — the
		// complement of usedAll inside [0, palette).
		remaining.row[v] = int32(li * w)
		rem := remaining.palette(v)
		for wi, word := range usedAll.Row() {
			rem[wi] = ^word
		}
		if extra := uint(w*64 - r.palette); extra > 0 {
			rem[w-1] &= ^uint64(0) >> extra // mask the bits beyond the palette
		}
	}

	stats.ChargedRounds = stats.MaxLivePerNbr + int(math.Ceil(4*log2(r.n)))
	r.charge(stats.ChargedRounds)
	return remaining, stats
}

// FinishStats reports the FinishColoring run for experiment E7.
type FinishStats struct {
	Phases        int
	ChargedRounds int
}

// finishColoring implements Algorithm FinishColoring of Section 2.6: every
// live node repeatedly flips a fair coin to be quiet or to try a uniformly
// random colour from its known remaining palette; successful nodes notify
// their d2-neighbourhood, which removes the colour from the neighbours'
// remaining palettes. Lemma 2.14: completes in O(log n) phases w.h.p.
//
// The per-node palettes are the bitset rows LearnPalette built: the draw is
// a popcount plus an NthSet word scan (the i-th smallest remaining colour,
// matching the former sorted-set pick bit for bit), and a notification is
// a one-word Clear.
//
// Round charge: 3 rounds per phase — the two rounds of the try plus one
// amortized round for forwarding colour notifications two hops (the Busy
// mechanism of Section 2.6 bounds the total backlog by the number of live
// d2-neighbours, which the O(log n) phase bound already absorbs).
func (r *runner) finishColoring(remaining *remainingPalettes) (FinishStats, error) {
	var stats FinishStats
	maxPhases := r.params.MaxFinishPhases
	if maxPhases <= 0 {
		maxPhases = 64*int(math.Ceil(log2(r.n))) + 256
	}

	for phase := 0; phase < maxPhases && r.liveLeft > 0; phase++ {
		stats.Phases++
		r.beginTries()
		for _, v := range r.live {
			if !remaining.has(v) {
				continue
			}
			avail := remaining.palette(v)
			size := avail.Count()
			if size == 0 {
				// Cannot happen for a correct remaining palette (it always
				// contains at least live-degree+1 colours); guard anyway.
				continue
			}
			// Fair coin: quiet or try (Section 2.6).
			if !r.rand[v].Bool() {
				continue
			}
			pick := r.rand[v].Intn(size)
			r.setTry(v, avail.NthSet(pick))
		}
		colored := r.resolveTries()
		for _, v := range colored {
			c := r.col[v]
			r.d2.ForEachDist2(v, func(u graph.NodeID) bool {
				if remaining.has(u) {
					remaining.palette(u).Clear(c)
				}
				return true
			})
		}
		r.charge(3)
		stats.ChargedRounds += 3
	}
	if r.liveLeft > 0 {
		return stats, fmt.Errorf("randd2: FinishColoring left %d live nodes after %d phases", r.liveLeft, stats.Phases)
	}
	return stats, nil
}
