package randd2

import (
	"fmt"
	"math"

	"d2color/internal/graph"
)

// PaletteStats reports what LearnPalette observed, for experiment E7.
type PaletteStats struct {
	LiveNodes     int
	MaxMissing    int // max over live nodes of |Tv|, the colours learned only via the correction step (Lemma 2.15: O(log n))
	MaxLivePerNbr int // max number of live d2-neighbours of any node (the precondition bound ϕ)
	ChargedRounds int
}

// learnPalette implements Algorithm LearnPalette of Section 2.6.
//
// Outcome: every live node knows its remaining palette — the set of colours
// in [Δ²+1] not used by any of its d2-neighbours. In the protocol this
// knowledge is assembled by handler nodes (one per block of ~Δ colours per
// live node) that colored nodes reach through random 2-paths; the colours a
// live node fails to learn that way (the set Tv) are recovered exactly in the
// final correction step through its immediate neighbours (step 7). We compute
// both quantities: the exact remaining palette (the protocol's guaranteed
// output) and |Tv| — here the colours of d2-neighbours that are not
// H-neighbours of v, the quantity Lemma 2.15 bounds by O(log n) — which the
// harness reports.
//
// Round charge (Theorem 2.16 with Z = Δ and P = Δ·sqrt(Δ·log n)):
// O(ϕ) for the floodings of steps 1–2 plus O(log n) for steps 3–7, which is
// O(log n) when Δ = Ω(log n). We charge ϕ + 4·log₂ n.
func (r *runner) learnPalette() (remaining [][]int, stats PaletteStats) {
	live := r.live
	stats.LiveNodes = len(live)
	remaining = make([][]int, r.n)

	// Precondition quantity ϕ: live d2-neighbours per node.
	for v := 0; v < r.n; v++ {
		liveNbrs := 0
		r.d2.ForEachDist2(graph.NodeID(v), func(u graph.NodeID) bool {
			if r.isLive(u) {
				liveNbrs++
			}
			return true
		})
		if liveNbrs > stats.MaxLivePerNbr {
			stats.MaxLivePerNbr = liveNbrs
		}
	}

	for _, v := range live {
		usedAll := make([]bool, r.palette)  // colours of all colored d2-neighbours
		usedViaH := make([]bool, r.palette) // colours the handlers learn (from H-neighbours)
		r.d2.ForEachDist2(v, func(u graph.NodeID) bool {
			c := r.col[u]
			if c < 0 || c >= r.palette {
				return true
			}
			usedAll[c] = true
			if r.sim.isHNeighbor(v, u) {
				usedViaH[c] = true
			}
			return true
		})
		// Tv: colours v did not learn through the handler mechanism and must
		// recover via the correction step — exactly the colours used only by
		// non-H d2-neighbours (proof of Lemma 2.15).
		missing := 0
		for c := 0; c < r.palette; c++ {
			if usedAll[c] && !usedViaH[c] {
				missing++
			}
		}
		if missing > stats.MaxMissing {
			stats.MaxMissing = missing
		}
		// The protocol's guaranteed output: the exact remaining palette.
		rem := make([]int, 0, r.palette)
		for c := 0; c < r.palette; c++ {
			if !usedAll[c] {
				rem = append(rem, c)
			}
		}
		remaining[v] = rem
	}

	stats.ChargedRounds = stats.MaxLivePerNbr + int(math.Ceil(4*log2(r.n)))
	r.charge(stats.ChargedRounds)
	return remaining, stats
}

// FinishStats reports the FinishColoring run for experiment E7.
type FinishStats struct {
	Phases        int
	ChargedRounds int
}

// finishColoring implements Algorithm FinishColoring of Section 2.6: every
// live node repeatedly flips a fair coin to be quiet or to try a uniformly
// random colour from its known remaining palette; successful nodes notify
// their d2-neighbourhood, which removes the colour from the neighbours'
// remaining palettes. Lemma 2.14: completes in O(log n) phases w.h.p.
//
// Round charge: 3 rounds per phase — the two rounds of the try plus one
// amortized round for forwarding colour notifications two hops (the Busy
// mechanism of Section 2.6 bounds the total backlog by the number of live
// d2-neighbours, which the O(log n) phase bound already absorbs).
func (r *runner) finishColoring(remaining [][]int) (FinishStats, error) {
	var stats FinishStats
	maxPhases := r.params.MaxFinishPhases
	if maxPhases <= 0 {
		maxPhases = 64*int(math.Ceil(log2(r.n))) + 256
	}
	// Mutable per-live-node palettes.
	avail := make([]map[int]struct{}, r.n)
	for v := 0; v < r.n; v++ {
		if remaining[v] == nil {
			continue
		}
		m := make(map[int]struct{}, len(remaining[v]))
		for _, c := range remaining[v] {
			m[c] = struct{}{}
		}
		avail[v] = m
	}

	for phase := 0; phase < maxPhases && r.liveLeft > 0; phase++ {
		stats.Phases++
		r.beginTries()
		for _, v := range r.live {
			if avail[v] == nil || len(avail[v]) == 0 {
				// Cannot happen for a correct remaining palette (it always
				// contains at least live-degree+1 colours); guard anyway.
				continue
			}
			// Fair coin: quiet or try (Section 2.6).
			if !r.rand[v].Bool() {
				continue
			}
			pick := r.rand[v].Intn(len(avail[v]))
			r.setTry(v, nthFromSet(avail[v], pick))
		}
		colored := r.resolveTries()
		for _, v := range colored {
			c := r.col[v]
			r.d2.ForEachDist2(v, func(u graph.NodeID) bool {
				if avail[u] != nil {
					delete(avail[u], c)
				}
				return true
			})
		}
		r.charge(3)
		stats.ChargedRounds += 3
	}
	if r.liveLeft > 0 {
		return stats, fmt.Errorf("randd2: FinishColoring left %d live nodes after %d phases", r.liveLeft, stats.Phases)
	}
	return stats, nil
}

// nthFromSet returns the i-th smallest element of the set (deterministic
// given the set contents, so runs are reproducible per seed).
func nthFromSet(set map[int]struct{}, i int) int {
	keys := make([]int, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	// Small sets (remaining palettes are O(log n)); insertion sort is fine.
	for a := 1; a < len(keys); a++ {
		for b := a; b > 0 && keys[b] < keys[b-1]; b-- {
			keys[b], keys[b-1] = keys[b-1], keys[b]
		}
	}
	if i < 0 || i >= len(keys) {
		return -1
	}
	return keys[i]
}
