package randd2

import (
	"fmt"
	"math"

	"d2color/internal/coloring"
	"d2color/internal/congest"
	"d2color/internal/detd2"
	"d2color/internal/graph"
	"d2color/internal/trial"
	"d2color/internal/verify"
)

// Variant selects which final phase the algorithm uses.
type Variant int

// Algorithm variants.
const (
	// VariantImproved is Improved-d2-Color (Section 2.6): LearnPalette +
	// FinishColoring, the O(log Δ · log n) algorithm of Theorem 1.1.
	VariantImproved Variant = iota + 1
	// VariantBasic is d2-Color with the final Reduce(c2·log n, 1) step, the
	// O(log³ n) algorithm of Corollary 2.1.
	VariantBasic
)

func (v Variant) String() string {
	switch v {
	case VariantBasic:
		return "basic"
	case VariantImproved:
		return "improved"
	default:
		return fmt.Sprintf("variant(%d)", int(v))
	}
}

// Options configures a run.
type Options struct {
	// Variant selects the final phase; zero value means VariantImproved.
	Variant Variant
	// Params are the algorithm constants; the zero value means Default().
	Params *Params
	// Seed drives all randomness.
	Seed uint64
	// Parallel runs the simulated sub-protocols (the step-2 trial phases and
	// the deterministic fallback's engine) on the sharded-parallel engine.
	// Results are byte-identical to the sequential engine.
	Parallel bool
	// Workers bounds the sharded engine's goroutine pool; 0 means GOMAXPROCS.
	Workers int
	// SkipVerify disables the internal validity check.
	SkipVerify bool
	// DisableDeterministicFallback forces the randomized machinery even when
	// Δ² < C2·log n (step 0 of d2-Color would normally defer to Theorem 1.2).
	// Used by tests and by experiments that want the randomized path on small
	// graphs.
	DisableDeterministicFallback bool
	// TrialKernel optionally injects a reusable trial kernel built for the
	// same graph (trial.NewRunner). Repeated runs on one topology — the
	// harness's averaged repetitions, parameter sweeps — then share the
	// kernel's network, processes and flat state instead of rebuilding them
	// per run. The kernel's engine selection overrides Parallel/Workers; a
	// kernel must not be shared between concurrent runs. nil means build one
	// internally.
	TrialKernel *trial.Runner
}

// Result is the outcome of a run.
type Result struct {
	Coloring    coloring.Coloring
	PaletteSize int
	Metrics     congest.Metrics
	Variant     Variant

	// UsedDeterministicFallback is set when step 0 dispatched to Theorem 1.2.
	UsedDeterministicFallback bool

	// ActiveRounds is the total round count at the moment the coloring first
	// became complete (the schedule keeps running after that, as the
	// distributed algorithm has no global termination detection).
	ActiveRounds int

	// Per-stage observability.
	SimilarityRounds int
	InitialPhases    int
	InitialColored   int
	ReduceStats      []ReduceStats
	PaletteStats     PaletteStats
	FinishStats      FinishStats
	FallbackPhases   int
}

// Run executes the randomized d2-coloring algorithm on g.
func Run(g *graph.Graph, opts Options) (Result, error) {
	if opts.Variant == 0 {
		opts.Variant = VariantImproved
	}
	params := Default()
	if opts.Params != nil {
		params = *opts.Params
	}
	if err := params.Validate(); err != nil {
		return Result{}, err
	}

	n := g.NumNodes()
	delta := g.MaxDegree()
	if n == 0 {
		return Result{Coloring: coloring.New(0), PaletteSize: 1, Variant: opts.Variant}, nil
	}

	// Step 0: for low-degree graphs use the deterministic algorithm
	// (Theorem 1.2), exactly as Algorithm d2-Color does.
	if float64(delta*delta) < params.C2*log2(n) && !opts.DisableDeterministicFallback {
		det, err := detd2.Run(g, detd2.Options{Seed: opts.Seed, Parallel: opts.Parallel, Workers: opts.Workers, SkipVerify: opts.SkipVerify})
		if err != nil {
			return Result{}, fmt.Errorf("randd2: deterministic fallback: %w", err)
		}
		return Result{
			Coloring:                  det.Coloring,
			PaletteSize:               det.PaletteSize,
			Metrics:                   det.Metrics,
			Variant:                   opts.Variant,
			UsedDeterministicFallback: true,
			ActiveRounds:              det.Metrics.TotalRounds(),
		}, nil
	}

	tk := opts.TrialKernel
	if tk == nil {
		tk = trial.NewRunner(g, opts.Parallel, opts.Workers)
		defer tk.Close() // owned kernel: injected ones are closed by their owner
	} else if tk.Graph() != g {
		return Result{}, fmt.Errorf("randd2: injected trial kernel was built for a different graph")
	}
	r := newRunner(g, params, opts.Seed, tk)
	res := Result{Variant: opts.Variant, PaletteSize: r.palette}

	// Step 1: form the similarity graphs H and Ĥ (Section 2.3).
	r.sim = buildSimilarity(g, r.d2, delta, params, opts.Seed)
	r.charge(r.sim.rounds)
	res.SimilarityRounds = r.sim.rounds

	// Step 2: c0·log n phases of whole-palette random colour trials, simulated
	// message-by-message on the CONGEST simulator.
	initialPhases := int(math.Ceil(params.C0 * log2(n)))
	tr, err := r.tk.Run(trial.Config{
		PaletteSize: r.palette,
		Scope:       trial.ScopeDistance2,
		MaxPhases:   initialPhases,
		Seed:        opts.Seed ^ 0x1234,
	})
	if err != nil {
		return Result{}, fmt.Errorf("randd2: initial phase: %w", err)
	}
	r.adoptColoring(tr.Coloring)
	r.addMetrics(tr.Metrics)
	res.InitialPhases = tr.Phases
	res.InitialColored = tr.Coloring.NumColored()

	// Step 3: the main loop — halve the leeway threshold until it reaches the
	// concentration floor C2·log n.
	floor := params.C2 * log2(n)
	for tau := params.C1 * float64(delta*delta); tau > floor; tau /= 2 {
		stats := r.reduce(2*tau, tau)
		res.ReduceStats = append(res.ReduceStats, stats)
	}

	// Step 4: the final phase.
	switch opts.Variant {
	case VariantBasic:
		stats := r.reduce(floor, 1)
		res.ReduceStats = append(res.ReduceStats, stats)
		// Outside the asymptotic regime the scaled constants may leave a few
		// live nodes; the whole-palette trial loop finishes them off (each
		// live node always has at least one free colour in a Δ²+1 palette).
		// The extra phases are reported so experiments can see them.
		fallback, err := r.fallbackTrials(params)
		if err != nil {
			return Result{}, err
		}
		res.FallbackPhases = fallback
	case VariantImproved:
		remaining, pstats := r.learnPalette()
		res.PaletteStats = pstats
		fstats, err := r.finishColoring(remaining)
		if err != nil {
			return Result{}, err
		}
		res.FinishStats = fstats
	default:
		return Result{}, fmt.Errorf("randd2: unknown variant %d", opts.Variant)
	}

	res.Coloring = r.col
	res.Metrics = r.metrics
	res.ActiveRounds = r.activeRounds
	if res.ActiveRounds < 0 {
		res.ActiveRounds = r.metrics.TotalRounds()
	}
	if !opts.SkipVerify {
		if rep := verify.CheckD2(g, res.Coloring, res.PaletteSize); !rep.Valid {
			return Result{}, fmt.Errorf("randd2: produced invalid coloring: %w", rep.Error())
		}
	}
	return res, nil
}

// fallbackTrials runs whole-palette trial phases until every node is colored.
// Each phase costs 3 rounds (the trial primitive).
func (r *runner) fallbackTrials(params Params) (int, error) {
	maxPhases := params.MaxFallbackPhases
	if maxPhases <= 0 {
		maxPhases = 256*int(math.Ceil(log2(r.n))) + 1024
	}
	phases := 0
	for ; phases < maxPhases && r.liveLeft > 0; phases++ {
		r.beginTries()
		for _, v := range r.live {
			r.setTry(v, r.rand[v].Intn(r.palette))
		}
		r.resolveTries()
		r.charge(3)
	}
	if r.liveLeft > 0 {
		return phases, fmt.Errorf("randd2: fallback trials left %d live nodes after %d phases", r.liveLeft, phases)
	}
	return phases, nil
}
