package randd2

import (
	"errors"
	"testing"
	"testing/quick"

	"d2color/internal/graph"
	"d2color/internal/verify"
)

func testWorkloads() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"gnp-sparse":  graph.GNP(120, 0.04, 1),
		"gnp-denser":  graph.GNPWithAverageDegree(200, 10, 2),
		"grid":        graph.Grid(10, 10),
		"cliquechain": graph.CliqueChain(6, 6, 0),
		"star":        graph.Star(20),
		"tree":        graph.BalancedTree(3, 3),
		"unitdisk":    graph.UnitDisk(120, 0.15, 3),
	}
}

func TestImprovedVariantValidOnWorkloads(t *testing.T) {
	for name, g := range testWorkloads() {
		res, err := Run(g, Options{Variant: VariantImproved, Seed: 7})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		delta := g.MaxDegree()
		if !res.UsedDeterministicFallback && res.PaletteSize != delta*delta+1 {
			t.Errorf("%s: palette %d, want Δ²+1 = %d", name, res.PaletteSize, delta*delta+1)
		}
		if rep := verify.CheckD2(g, res.Coloring, res.PaletteSize); !rep.Valid {
			t.Errorf("%s: %v", name, rep.Error())
		}
		if res.Metrics.TotalRounds() <= 0 {
			t.Errorf("%s: expected positive round count", name)
		}
		if res.ActiveRounds <= 0 || res.ActiveRounds > res.Metrics.TotalRounds() {
			t.Errorf("%s: ActiveRounds %d outside (0, %d]", name, res.ActiveRounds, res.Metrics.TotalRounds())
		}
	}
}

func TestBasicVariantValidOnWorkloads(t *testing.T) {
	for name, g := range testWorkloads() {
		res, err := Run(g, Options{Variant: VariantBasic, Seed: 11})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if rep := verify.CheckD2(g, res.Coloring, res.PaletteSize); !rep.Valid {
			t.Errorf("%s: %v", name, rep.Error())
		}
	}
}

func TestDeterministicFallbackOnLowDegree(t *testing.T) {
	// A long path has Δ = 2, so Δ² = 4 < C2·log n for n = 200: step 0 defers
	// to the deterministic algorithm.
	g := graph.Path(200)
	res, err := Run(g, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.UsedDeterministicFallback {
		t.Error("low-degree graph should trigger the deterministic fallback")
	}
	if rep := verify.CheckD2(g, res.Coloring, res.PaletteSize); !rep.Valid {
		t.Errorf("%v", rep.Error())
	}
	// Forcing the randomized path must still give a valid coloring.
	res2, err := Run(g, Options{Seed: 1, DisableDeterministicFallback: true})
	if err != nil {
		t.Fatal(err)
	}
	if res2.UsedDeterministicFallback {
		t.Error("fallback should have been disabled")
	}
	if rep := verify.CheckD2(g, res2.Coloring, res2.PaletteSize); !rep.Valid {
		t.Errorf("forced randomized path: %v", rep.Error())
	}
}

func TestEmptyGraph(t *testing.T) {
	res, err := Run(graph.NewBuilder(0).Build(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Coloring) != 0 {
		t.Error("empty graph should give an empty coloring")
	}
}

func TestInvalidParamsRejected(t *testing.T) {
	p := Default()
	p.C0 = 0
	if _, err := Run(graph.Star(10), Options{Params: &p}); !errors.Is(err, ErrBadParams) {
		t.Errorf("err = %v, want ErrBadParams", err)
	}
	p = Default()
	p.C1 = 2
	if err := p.Validate(); !errors.Is(err, ErrBadParams) {
		t.Errorf("C1 > 1 should be invalid, got %v", err)
	}
	p = Default()
	p.SimilarityHHat = 0.1 // below SimilarityH
	if err := p.Validate(); !errors.Is(err, ErrBadParams) {
		t.Errorf("Ĥ threshold below H threshold should be invalid, got %v", err)
	}
	if err := Default().Validate(); err != nil {
		t.Errorf("Default params should validate, got %v", err)
	}
	if err := Paper().Validate(); err != nil {
		t.Errorf("Paper params should validate, got %v", err)
	}
}

func TestVariantString(t *testing.T) {
	if VariantBasic.String() != "basic" || VariantImproved.String() != "improved" {
		t.Error("variant labels wrong")
	}
	if Variant(9).String() == "" {
		t.Error("unknown variant should still render")
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	g := graph.CliqueChain(5, 6, 0)
	a, err := Run(g, Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(g, Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	for v := range a.Coloring {
		if a.Coloring[v] != b.Coloring[v] {
			t.Fatalf("node %d: colors differ between identical runs (%d vs %d)", v, a.Coloring[v], b.Coloring[v])
		}
	}
	if a.Metrics.TotalRounds() != b.Metrics.TotalRounds() {
		t.Errorf("round counts differ: %d vs %d", a.Metrics.TotalRounds(), b.Metrics.TotalRounds())
	}
}

func TestDifferentSeedsExploreDifferentColorings(t *testing.T) {
	g := graph.CliqueChain(5, 6, 0)
	a, err := Run(g, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(g, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for v := range a.Coloring {
		if a.Coloring[v] != b.Coloring[v] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical colorings (extremely unlikely)")
	}
}

func TestReduceIsExercisedOnDenseWorkloads(t *testing.T) {
	// On the Hoffman–Singleton graph every d2-neighbourhood is exactly Δ²
	// nodes (zero sparsity), so the similarity graphs are complete and the
	// Reduce machinery — queries across 2-paths, helper colour checks,
	// forwarded proposals — does real work. The initial-phase budget is
	// reduced so that live nodes actually reach the main loop.
	g := graph.HoffmanSingleton()
	params := Default()
	params.C0 = 0.3
	params.C1 = 0.9
	params.QueryDenominator = 1
	params.ActiveDenominator = 1
	res, err := Run(g, Options{Seed: 3, Variant: VariantImproved, Params: &params,
		DisableDeterministicFallback: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep := verify.CheckD2(g, res.Coloring, res.PaletteSize); !rep.Valid {
		t.Fatalf("invalid coloring: %v", rep.Error())
	}
	if len(res.ReduceStats) == 0 {
		t.Fatal("expected at least one Reduce invocation")
	}
	totalPhases, totalQueries, totalProposals := 0, 0, 0
	for _, s := range res.ReduceStats {
		totalPhases += s.Phases
		totalQueries += s.QueriesSent
		totalProposals += s.Proposals
	}
	if totalPhases == 0 {
		t.Error("Reduce should have run phases")
	}
	if totalQueries == 0 {
		t.Error("Reduce should have generated queries on a zero-sparsity workload")
	}
	if totalProposals == 0 {
		t.Error("Reduce queries should have produced proposals")
	}
}

func TestImprovedReportsPaletteAndFinishStats(t *testing.T) {
	g := graph.CliqueChain(6, 7, 0)
	res, err := Run(g, Options{Seed: 5, Variant: VariantImproved})
	if err != nil {
		t.Fatal(err)
	}
	if res.PaletteStats.ChargedRounds <= 0 {
		t.Error("LearnPalette should charge rounds")
	}
	if res.InitialPhases <= 0 {
		t.Error("initial phase count should be positive")
	}
}

func TestPropertyAlwaysValid(t *testing.T) {
	f := func(seed uint64) bool {
		g := graph.GNPWithAverageDegree(80, 8, int64(seed%16))
		res, err := Run(g, Options{Seed: seed, SkipVerify: true})
		if err != nil {
			return false
		}
		return verify.CheckD2(g, res.Coloring, res.PaletteSize).Valid
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestBothVariantsRoundsGrowWithN(t *testing.T) {
	small := graph.GNPWithAverageDegree(100, 12, 1)
	large := graph.GNPWithAverageDegree(800, 12, 1)
	for _, variant := range []Variant{VariantBasic, VariantImproved} {
		rs, err := Run(small, Options{Seed: 1, Variant: variant})
		if err != nil {
			t.Fatal(err)
		}
		rl, err := Run(large, Options{Seed: 1, Variant: variant})
		if err != nil {
			t.Fatal(err)
		}
		if rl.Metrics.TotalRounds() <= rs.Metrics.TotalRounds() {
			t.Errorf("%s: rounds should grow with n: n=100 → %d, n=800 → %d",
				variant, rs.Metrics.TotalRounds(), rl.Metrics.TotalRounds())
		}
	}
}
