package randd2

import (
	"d2color/internal/coloring"
	"d2color/internal/congest"
	"d2color/internal/graph"
	"d2color/internal/rng"
	"d2color/internal/trial"
)

// runner holds the mutable state of one execution of the randomized
// algorithm: the graph, its streamed distance-2 view, the current partial coloring, the
// similarity graphs, per-node random streams and the accumulated cost
// metrics.
//
// Every decision made by the runner uses only information the corresponding
// node could have gathered in the distributed protocol (its own state, its
// neighbours' colors via the trial/notification mechanism, its H/Ĥ adjacency,
// and the payloads of queries routed to it); the runner merely executes those
// decisions phase by phase and charges the CONGEST rounds the paper assigns
// to each phase.
//
// The hot per-phase machinery is allocation-free: the set of live nodes is a
// maintained (ascending) list compacted as nodes color, and color tries are
// recorded in generation-stamped flat scratch arrays instead of per-phase
// maps (see beginTries/setTry/resolveTries).
type runner struct {
	g       *graph.Graph
	d2      *graph.Dist2View // streaming distance-2 plane; G² is never materialized
	n       int
	delta   int
	palette int
	params  Params
	seed    uint64

	col      coloring.Coloring
	liveLeft int
	sim      *similarity
	rand     []*rng.Source
	tk       *trial.Runner // reusable trial kernel (step 2; shared across reps when injected)

	// live is the maintained list of uncolored nodes, always in ascending
	// node order (compaction preserves order), replacing the former O(n)
	// liveNodes() scan per phase.
	live []graph.NodeID

	// Per-round try scratch, generation-stamped so a new round clears it in
	// O(1): tryColor[v] is the color v tries this round iff tryGen[v] equals
	// the current generation. tryList holds the triers in registration
	// order; winners is the reusable result buffer of resolveTries.
	tryColor []int32
	tryGen   []uint32
	curGen   uint32
	tryList  []graph.NodeID
	winners  []graph.NodeID

	// activeScratch is the reusable buffer behind the per-phase "active
	// live nodes" selections of Reduce-Phase.
	activeScratch []graph.NodeID

	metrics      congest.Metrics
	activeRounds int // TotalRounds when the coloring first became complete (-1 while incomplete)
}

func newRunner(g *graph.Graph, p Params, seed uint64, tk *trial.Runner) *runner {
	n := g.NumNodes()
	delta := g.MaxDegree()
	r := &runner{
		g:            g,
		d2:           graph.NewDist2View(g),
		n:            n,
		delta:        delta,
		palette:      delta*delta + 1,
		params:       p,
		seed:         seed,
		col:          coloring.New(n),
		liveLeft:     n,
		rand:         make([]*rng.Source, n),
		tk:           tk,
		live:         make([]graph.NodeID, n),
		tryColor:     make([]int32, n),
		tryGen:       make([]uint32, n),
		curGen:       0,
		tryList:      make([]graph.NodeID, 0, n),
		winners:      make([]graph.NodeID, 0, n),
		activeRounds: -1,
	}
	for v := 0; v < n; v++ {
		r.rand[v] = rng.Split(seed, uint64(v)+1)
		r.live[v] = graph.NodeID(v)
	}
	return r
}

// charge adds k charged CONGEST rounds to the run's metrics.
func (r *runner) charge(k int) {
	if k > 0 {
		r.metrics.ChargedRounds += k
	}
	r.noteCompletion()
}

// addMetrics folds the metrics of a simulated sub-protocol into the run.
func (r *runner) addMetrics(m congest.Metrics) {
	r.metrics = r.metrics.Add(m)
	r.noteCompletion()
}

// noteCompletion records the first point at which the coloring is complete.
func (r *runner) noteCompletion() {
	if r.activeRounds < 0 && r.liveLeft == 0 {
		r.activeRounds = r.metrics.TotalRounds()
	}
}

// isLive reports whether v is still uncolored.
func (r *runner) isLive(v graph.NodeID) bool { return r.col[v] == coloring.Uncolored }

// compactLive removes freshly colored nodes from the live list, preserving
// the ascending order. O(live), no allocation.
func (r *runner) compactLive() {
	out := r.live[:0]
	for _, v := range r.live {
		if r.isLive(v) {
			out = append(out, v)
		}
	}
	r.live = out
}

// adoptColoring merges a coloring produced by a sub-protocol (e.g. the step-2
// trial run) into the runner's coloring.
func (r *runner) adoptColoring(c coloring.Coloring) {
	for v := 0; v < r.n; v++ {
		if r.col[v] == coloring.Uncolored && c[v] != coloring.Uncolored {
			r.col[v] = c[v]
			r.liveLeft--
		}
	}
	r.compactLive()
	r.noteCompletion()
}

// colorUsedByColoredD2Neighbor reports whether color c is already used by a
// colored distance-2 neighbour of v. In the protocol this is exactly the
// answer v's immediate neighbours give when v tries c.
func (r *runner) colorUsedByColoredD2Neighbor(v graph.NodeID, c int) bool {
	used := false
	r.d2.ForEachDist2(v, func(u graph.NodeID) bool {
		if r.col[u] == c {
			used = true
			return false
		}
		return true
	})
	return used
}

// beginTries starts a new synchronous round of color tries, logically
// clearing the try scratch in O(1) by advancing the generation stamp.
func (r *runner) beginTries() {
	r.curGen++
	if r.curGen == 0 {
		// uint32 wraparound: wipe the stamps so an entry written 2³² rounds
		// ago cannot alias as current.
		clear(r.tryGen)
		r.curGen = 1
	}
	r.tryList = r.tryList[:0]
}

// setTry records that v tries color c in the current round (at most one try
// per node; the last registration wins, matching the former map semantics).
func (r *runner) setTry(v graph.NodeID, c int) {
	if r.tryGen[v] != r.curGen {
		r.tryGen[v] = r.curGen
		r.tryList = append(r.tryList, v)
	}
	r.tryColor[v] = int32(c)
}

// tryOf returns the color u tries this round, or false if u is not trying.
func (r *runner) tryOf(u graph.NodeID) (int, bool) {
	if r.tryGen[u] != r.curGen {
		return 0, false
	}
	return int(r.tryColor[u]), true
}

// resolveTries applies the current round of color tries (registered via
// beginTries/setTry). A try succeeds iff no colored distance-2 neighbour
// already has the color and no other node tries the same color at distance
// at most 2 (both such tries fail, as in the trial primitive). It returns
// the nodes that became colored; the slice is reused across rounds.
func (r *runner) resolveTries() []graph.NodeID {
	colored := r.winners[:0]
	for _, v := range r.tryList {
		c, _ := r.tryOf(v)
		if c < 0 || c >= r.palette || !r.isLive(v) {
			continue
		}
		ok := true
		r.d2.ForEachDist2(v, func(u graph.NodeID) bool {
			if r.col[u] == c {
				ok = false
				return false
			}
			if other, trying := r.tryOf(u); trying && other == c {
				ok = false
				return false
			}
			return true
		})
		if ok {
			colored = append(colored, v)
		}
	}
	for _, v := range colored {
		c, _ := r.tryOf(v)
		r.col[v] = c
		r.liveLeft--
	}
	r.winners = colored
	if len(colored) > 0 {
		r.compactLive()
	}
	r.noteCompletion()
	return colored
}
