package randd2

import (
	"d2color/internal/coloring"
	"d2color/internal/congest"
	"d2color/internal/graph"
	"d2color/internal/rng"
)

// runner holds the mutable state of one execution of the randomized
// algorithm: the graph, its streamed distance-2 view, the current partial coloring, the
// similarity graphs, per-node random streams and the accumulated cost
// metrics.
//
// Every decision made by the runner uses only information the corresponding
// node could have gathered in the distributed protocol (its own state, its
// neighbours' colors via the trial/notification mechanism, its H/Ĥ adjacency,
// and the payloads of queries routed to it); the runner merely executes those
// decisions phase by phase and charges the CONGEST rounds the paper assigns
// to each phase.
type runner struct {
	g       *graph.Graph
	d2      *graph.Dist2View // streaming distance-2 plane; G² is never materialized
	n       int
	delta   int
	palette int
	params  Params
	seed    uint64

	col      coloring.Coloring
	liveLeft int
	sim      *similarity
	rand     []*rng.Source

	metrics      congest.Metrics
	activeRounds int // TotalRounds when the coloring first became complete (-1 while incomplete)
}

func newRunner(g *graph.Graph, p Params, seed uint64) *runner {
	n := g.NumNodes()
	delta := g.MaxDegree()
	r := &runner{
		g:            g,
		d2:           graph.NewDist2View(g),
		n:            n,
		delta:        delta,
		palette:      delta*delta + 1,
		params:       p,
		seed:         seed,
		col:          coloring.New(n),
		liveLeft:     n,
		rand:         make([]*rng.Source, n),
		activeRounds: -1,
	}
	for v := 0; v < n; v++ {
		r.rand[v] = rng.Split(seed, uint64(v)+1)
	}
	return r
}

// charge adds k charged CONGEST rounds to the run's metrics.
func (r *runner) charge(k int) {
	if k > 0 {
		r.metrics.ChargedRounds += k
	}
	r.noteCompletion()
}

// addMetrics folds the metrics of a simulated sub-protocol into the run.
func (r *runner) addMetrics(m congest.Metrics) {
	r.metrics = r.metrics.Add(m)
	r.noteCompletion()
}

// noteCompletion records the first point at which the coloring is complete.
func (r *runner) noteCompletion() {
	if r.activeRounds < 0 && r.liveLeft == 0 {
		r.activeRounds = r.metrics.TotalRounds()
	}
}

// isLive reports whether v is still uncolored.
func (r *runner) isLive(v graph.NodeID) bool { return r.col[v] == coloring.Uncolored }

// adoptColoring merges a coloring produced by a sub-protocol (e.g. the step-2
// trial run) into the runner's coloring.
func (r *runner) adoptColoring(c coloring.Coloring) {
	for v := 0; v < r.n; v++ {
		if r.col[v] == coloring.Uncolored && c[v] != coloring.Uncolored {
			r.col[v] = c[v]
			r.liveLeft--
		}
	}
	r.noteCompletion()
}

// colorUsedByColoredD2Neighbor reports whether color c is already used by a
// colored distance-2 neighbour of v. In the protocol this is exactly the
// answer v's immediate neighbours give when v tries c.
func (r *runner) colorUsedByColoredD2Neighbor(v graph.NodeID, c int) bool {
	used := false
	r.d2.ForEachDist2(v, func(u graph.NodeID) bool {
		if r.col[u] == c {
			used = true
			return false
		}
		return true
	})
	return used
}

// resolveTries applies one synchronous round of color tries: tries maps live
// nodes to the color they try this phase. A try succeeds iff no colored
// distance-2 neighbour already has the color and no other node tries the same
// color at distance at most 2 (both such tries fail, as in the trial
// primitive). It returns the nodes that became colored.
func (r *runner) resolveTries(tries map[graph.NodeID]int) []graph.NodeID {
	colored := make([]graph.NodeID, 0, len(tries))
	for v, c := range tries {
		if c < 0 || c >= r.palette || !r.isLive(v) {
			continue
		}
		ok := true
		r.d2.ForEachDist2(v, func(u graph.NodeID) bool {
			if r.col[u] == c {
				ok = false
				return false
			}
			if other, trying := tries[u]; trying && other == c {
				ok = false
				return false
			}
			return true
		})
		if ok {
			colored = append(colored, v)
		}
	}
	for _, v := range colored {
		r.col[v] = tries[v]
		r.liveLeft--
	}
	r.noteCompletion()
	return colored
}

// liveNodes returns the currently uncolored nodes.
func (r *runner) liveNodes() []graph.NodeID {
	out := make([]graph.NodeID, 0, r.liveLeft)
	for v := 0; v < r.n; v++ {
		if r.isLive(graph.NodeID(v)) {
			out = append(out, graph.NodeID(v))
		}
	}
	return out
}
