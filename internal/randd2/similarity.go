package randd2

import (
	"sort"

	"d2color/internal/graph"
	"d2color/internal/rng"
)

// similarity holds the similarity graphs H = H_{2/3} and Ĥ = H_{5/6} of
// Section 2.3: two d2-neighbours are H_{1-1/k}-adjacent when they share at
// least (1-1/k)·Δ² common d2-neighbours. H decides which colored nodes may
// assist which live nodes in Reduce-Phase; Ĥ (the stricter graph) decides
// which nodes a live node queries.
type similarity struct {
	h      [][]graph.NodeID // adjacency lists of H, indexed by node
	hHat   [][]graph.NodeID // adjacency lists of Ĥ
	rounds int              // CONGEST rounds charged for the construction
}

// hNeighbors returns the H-neighbour list of v.
func (s *similarity) hNeighbors(v graph.NodeID) []graph.NodeID { return s.h[v] }

// hHatNeighbors returns the Ĥ-neighbour list of v.
func (s *similarity) hHatNeighbors(v graph.NodeID) []graph.NodeID { return s.hHat[v] }

// hDegree returns deg_H(v).
func (s *similarity) hDegree(v graph.NodeID) int { return len(s.h[v]) }

// isHNeighbor reports whether u is an H-neighbour of v.
func (s *similarity) isHNeighbor(v, u graph.NodeID) bool {
	lst := s.h[v]
	i := sort.Search(len(lst), func(i int) bool { return lst[i] >= u })
	return i < len(lst) && lst[i] == u
}

// buildSimilarity constructs H and Ĥ.
//
// When p.ExactSimilarity is set (or Δ² = O(log n), where the paper gathers
// whole neighbourhoods directly), the exact common-d2-neighbour counts are
// used. Otherwise the sampling protocol of Section 2.3 is followed: every
// node enters a sample S independently with probability c10·log n / Δ²; each
// node learns the sampled nodes in its d2-neighbourhood (Sv); two
// d2-neighbours are declared H_{1-1/k}-adjacent when |Su ∩ Sv| is at least a
// (1 − 1/(2k)) fraction of the expected sample size (Theorem 2.2).
//
// Round charge: the sampling, the O(log n)-size set exchange and the
// pipelined comparison all fit in O(log n) rounds (Section 2.3); the exact
// variant for Δ² = O(log n) also costs O(log n) rounds.
//
// Implementation: distance-2 neighborhoods are streamed from the Dist2View;
// the exact common-neighbour counts |N²(u) ∩ N²(v)| are taken against a
// pooled MarkSet holding N²(v), so no square adjacency and no per-pair sets
// are ever allocated.
func buildSimilarity(g *graph.Graph, d2v *graph.Dist2View, delta int, p Params, seed uint64) *similarity {
	n := g.NumNodes()
	s := &similarity{
		h:    make([][]graph.NodeID, n),
		hHat: make([][]graph.NodeID, n),
	}
	logN := log2(n)
	d2 := delta * delta
	s.rounds = int(2*logN) + 2 // Section 2.3: O(log n) rounds, constant 2 for the exchange + comparison

	if d2 == 0 {
		return s
	}

	useExact := p.ExactSimilarity || float64(d2) <= p.C10*logN

	// inV marks N²(v) while the inner loop streams N²(u); nbrsV is the
	// caller-owned materialization of N²(v) (the view's stream cannot be
	// nested inside itself).
	inV := graph.NewMarkSet(n)
	nbrsV := make([]graph.NodeID, 0, d2)

	var samples [][]graph.NodeID
	var expected float64
	if !useExact {
		// Sampling protocol. S is drawn with per-node coins; Sv is the sorted
		// list of sampled d2-neighbours of v.
		prob := p.C10 * logN / float64(d2)
		if prob > 1 {
			prob = 1
		}
		inSample := make([]bool, n)
		src := rng.Split(seed, 0x51A11)
		for v := 0; v < n; v++ {
			inSample[v] = src.Bernoulli(prob)
		}
		samples = make([][]graph.NodeID, n)
		for v := 0; v < n; v++ {
			d2v.ForEachDist2(graph.NodeID(v), func(u graph.NodeID) bool {
				if inSample[u] {
					samples[v] = append(samples[v], u)
				}
				return true
			})
			sortNodeSlice(samples[v])
		}
		expected = prob * float64(d2)
	}

	// Thresholds per Theorem 2.2: H_{1-1/k} requires a (1 − 1/(2k)) fraction
	// of the reference quantity (Δ² exactly, or the expected sample size).
	kH := 1 / (1 - p.SimilarityH)      // k = 3 for H_{2/3}
	kHat := 1 / (1 - p.SimilarityHHat) // k = 6 for H_{5/6}
	fracH := 1 - 1/(2*kH)              // 5/6 of the sample for H
	fracHat := 1 - 1/(2*kHat)          // 11/12 of the sample for Ĥ
	if useExact {
		// With exact counts the thresholds are the definitional fractions.
		fracH = p.SimilarityH
		fracHat = p.SimilarityHHat
	}

	for v := 0; v < n; v++ {
		nbrsV = d2v.AppendDist2(nbrsV[:0], graph.NodeID(v))
		if useExact {
			inV.Reset()
			for _, u := range nbrsV {
				inV.Add(u)
			}
		}
		for _, u := range nbrsV {
			if u <= graph.NodeID(v) {
				continue
			}
			var count int
			var denom float64
			if useExact {
				// |N²(u) ∩ N²(v)| streamed against the mark set (v itself is
				// never marked, matching the set semantics of N²(v)).
				d2v.ForEachDist2(u, func(w graph.NodeID) bool {
					if inV.Contains(w) {
						count++
					}
					return true
				})
				denom = float64(d2)
			} else {
				count = commonSortedCount(samples[u], samples[v])
				denom = expected
			}
			if denom <= 0 {
				continue
			}
			frac := float64(count) / denom
			if frac >= fracH {
				s.h[v] = append(s.h[v], u)
				s.h[u] = append(s.h[u], graph.NodeID(v))
			}
			if frac >= fracHat {
				s.hHat[v] = append(s.hHat[v], u)
				s.hHat[u] = append(s.hHat[u], graph.NodeID(v))
			}
		}
	}
	for v := 0; v < n; v++ {
		sortNodeSlice(s.h[v])
		sortNodeSlice(s.hHat[v])
	}
	return s
}

// commonSortedCount returns |a ∩ b| for sorted slices.
func commonSortedCount(a, b []graph.NodeID) int {
	i, j, count := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			count++
			i++
			j++
		}
	}
	return count
}

func sortNodeSlice(s []graph.NodeID) {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
}
