package randd2

import (
	"testing"

	"d2color/internal/graph"
)

func buildSim(t *testing.T, g *graph.Graph, exact bool) *similarity {
	t.Helper()
	p := Default()
	p.ExactSimilarity = exact
	return buildSimilarity(g, graph.NewDist2View(g), g.MaxDegree(), p, 99)
}

func TestSimilaritySymmetricAndSubsetOfSquare(t *testing.T) {
	g := graph.CliqueChain(5, 6, 0)
	sq := g.Square() // materialized oracle, test-only
	for _, exact := range []bool{true, false} {
		sim := buildSim(t, g, exact)
		for v := 0; v < g.NumNodes(); v++ {
			for _, u := range sim.hNeighbors(graph.NodeID(v)) {
				if !sim.isHNeighbor(u, graph.NodeID(v)) {
					t.Fatalf("exact=%v: H not symmetric at (%d,%d)", exact, v, u)
				}
				if !sq.HasEdge(graph.NodeID(v), u) {
					t.Fatalf("exact=%v: H edge (%d,%d) not a d2 pair", exact, v, u)
				}
			}
			for _, u := range sim.hHatNeighbors(graph.NodeID(v)) {
				if !sim.isHNeighbor(graph.NodeID(v), u) {
					t.Fatalf("exact=%v: Ĥ edge (%d,%d) missing from H (Ĥ ⊆ H must hold)", exact, v, u)
				}
			}
		}
	}
}

func TestSimilarityExactOnCliqueIsComplete(t *testing.T) {
	// Inside one clique of a clique chain, all nodes share almost all of
	// their d2-neighbourhood... but the definitional denominator is Δ², so
	// whether they qualify depends on neighbourhood size vs Δ². Use a single
	// clique: every pair of nodes has the same d2-neighbourhood of size n-1,
	// while Δ² = (n-1)². The common fraction (n-2)/(n-1)² is far below 2/3,
	// so H must be empty — this documents that H only becomes rich when
	// neighbourhoods approach the Δ² bound (the dense regime of Section 2.1).
	g := graph.Complete(10)
	sim := buildSim(t, g, true)
	for v := 0; v < g.NumNodes(); v++ {
		if sim.hDegree(graph.NodeID(v)) != 0 {
			t.Fatalf("H should be empty on a small clique, node %d has degree %d", v, sim.hDegree(graph.NodeID(v)))
		}
	}
}

func TestSimilarityCompleteOnMooreGraphs(t *testing.T) {
	// On the Hoffman–Singleton graph every distance-2 neighbourhood is
	// exactly Δ² = 49 nodes and every pair of nodes shares 48 of them, so the
	// definitional thresholds 2/3 and 5/6 are comfortably met: H and Ĥ must
	// both be the complete graph on 50 nodes. This is the dense regime the
	// Reduce machinery is designed for (Section 2.1).
	g := graph.HoffmanSingleton()
	sim := buildSim(t, g, true)
	for v := 0; v < g.NumNodes(); v++ {
		if got := sim.hDegree(graph.NodeID(v)); got != 49 {
			t.Fatalf("H degree of node %d = %d, want 49", v, got)
		}
		if got := len(sim.hHatNeighbors(graph.NodeID(v))); got != 49 {
			t.Fatalf("Ĥ degree of node %d = %d, want 49", v, got)
		}
	}
	// Petersen (Δ = 3, Δ² = 9, common = 8 ≥ 5/6·9): also complete.
	p := graph.Petersen()
	simP := buildSim(t, p, true)
	for v := 0; v < p.NumNodes(); v++ {
		if got := simP.hDegree(graph.NodeID(v)); got != 9 {
			t.Fatalf("Petersen H degree of node %d = %d, want 9", v, got)
		}
	}
}

func TestSimilarityEmptyOnCliqueChain(t *testing.T) {
	// The similarity thresholds are fractions of Δ², not of the actual
	// neighbourhood size; on a clique chain neighbourhoods have ≈ Δ nodes, so
	// no pair can share 2Δ²/3 of them and H is empty. (Such graphs are
	// handled by the slack generated in the initial phase — Prop 2.5 — not by
	// Reduce.)
	g := graph.CliqueChain(6, 8, 0)
	sim := buildSim(t, g, true)
	for v := 0; v < g.NumNodes(); v++ {
		if sim.hDegree(graph.NodeID(v)) != 0 {
			t.Fatalf("expected empty H on a clique chain, node %d has degree %d", v, sim.hDegree(graph.NodeID(v)))
		}
	}
}

func TestSimilaritySampledApproximatesExact(t *testing.T) {
	// Theorem 2.2 (one direction, with room for the sampling noise at this
	// tiny scale): every edge the sampled construction declares must be a
	// genuinely high-overlap pair — at least a 1/3 fraction of Δ² common
	// distance-2 neighbours — and the sampled graph must cover a substantial
	// part of the exact one on the Hoffman–Singleton graph, where the exact H
	// is complete with a wide margin.
	g := graph.HoffmanSingleton()
	delta := g.MaxDegree()
	p := Default()
	p.C10 = 8 // a larger sample keeps the concentration argument valid at n = 50
	sim := buildSimilarity(g, graph.NewDist2View(g), delta, p, 99)
	declared := 0
	for v := 0; v < g.NumNodes(); v++ {
		declared += sim.hDegree(graph.NodeID(v))
		for _, u := range sim.hNeighbors(graph.NodeID(v)) {
			common := g.CommonDist2Neighbors(graph.NodeID(v), u)
			if float64(common) < float64(delta*delta)/3 {
				t.Errorf("sampled H edge (%d,%d) has only %d/%d common d2-neighbours", v, u, common, delta*delta)
			}
		}
	}
	// The exact H has 50·49 directed edges; the sample (≈17 of 49 nodes per
	// neighbourhood at this n) should recover at least half of them.
	if declared < 50*49/2 {
		t.Errorf("sampled H recovered only %d of %d directed edges", declared, 50*49)
	}
}

func TestSimilarityDegenerate(t *testing.T) {
	empty := graph.NewBuilder(3).Build()
	sim := buildSimilarity(empty, graph.NewDist2View(empty), 0, Default(), 1)
	for v := 0; v < 3; v++ {
		if sim.hDegree(graph.NodeID(v)) != 0 {
			t.Error("similarity graph of an edgeless graph should be empty")
		}
	}
	if sim.rounds <= 0 {
		t.Error("similarity construction should still charge its rounds")
	}
}

func TestSimilarityRoundChargeLogarithmic(t *testing.T) {
	small := graph.GNP(64, 0.1, 1)
	large := graph.GNP(1024, 0.006, 1)
	simSmall := buildSim(t, small, false)
	simLarge := buildSim(t, large, false)
	if simLarge.rounds <= simSmall.rounds {
		t.Errorf("round charge should grow with log n: %d vs %d", simSmall.rounds, simLarge.rounds)
	}
	if simLarge.rounds > 10*simSmall.rounds {
		t.Errorf("round charge should grow only logarithmically: %d vs %d", simSmall.rounds, simLarge.rounds)
	}
}
