// Package randd2 implements the randomized distance-2 coloring algorithms of
// Section 2 of the paper:
//
//   - Algorithm d2-Color (Section 2.2) with the basic final phase, giving the
//     O(log³ n)-round bound of Corollary 2.1, and
//   - Algorithm Improved-d2-Color (Section 2.6) with LearnPalette +
//     FinishColoring, giving the O(log Δ · log n)-round bound of Theorem 1.1.
//
// Both use Δ²+1 colors. The structure follows the paper exactly:
//
//  0. if Δ² < c2·log n, fall back to the deterministic algorithm (Thm 1.2);
//  1. form the similarity graphs H = H_{2/3} and Ĥ = H_{5/6};
//  2. run c0·log n phases of whole-palette random color trials;
//  3. for τ = c1·Δ²; τ > c2·log n; τ /= 2: Reduce(2τ, τ);
//  4. finish: either Reduce(c2·log n, 1) (basic) or LearnPalette +
//     FinishColoring (improved).
//
// Fidelity: color trials of step 2 are simulated message-by-message on the
// CONGEST simulator (package trial); the similarity-graph construction,
// Reduce phases, LearnPalette and FinishColoring are executed at phase
// granularity with node-local information only, and their CONGEST rounds are
// charged according to the cost statements in the paper (each charge cites
// its source). The paper's probability constants are far outside the regime
// reachable on test-size graphs (e.g. query probability 1/(6000·φ)); Params
// exposes them, Default() scales them so the asymptotic behaviour is visible
// at n ≤ 10⁵, and Paper() preserves the published values.
package randd2

import (
	"errors"
	"fmt"
	"math"
)

// Params collects every tunable constant of Section 2. Field comments name
// the constant used in the paper.
type Params struct {
	// C0 — Step 2 runs ceil(C0·log₂ n) whole-palette trial phases
	// (paper: c0 ≤ 3e/c1).
	C0 float64
	// C1 — the main loop starts at leeway threshold τ = C1·Δ²
	// (paper: c1 ≤ 1/(402e³)).
	C1 float64
	// C2 — the main loop stops when τ ≤ C2·log₂ n, and the whole randomized
	// algorithm defers to the deterministic one when Δ² < C2·log₂ n
	// (paper: c2 "sufficiently large for concentration").
	C2 float64
	// C3 — Reduce(φ, τ) runs ρ = ceil(C3·(φ/τ)²·log₂ n) phases
	// (paper: c3 = 32/c7).
	C3 float64
	// C10 — similarity sampling probability p = C10·log₂ n / Δ² (paper: c10).
	C10 float64
	// ActiveDenominator — a live node is active in a Reduce phase with
	// probability τ/(ActiveDenominator·φ) (paper: 8).
	ActiveDenominator float64
	// QueryDenominator — an active live node sends a query across a given
	// 2-path with probability 1/(QueryDenominator·φ) (paper: 6000).
	QueryDenominator float64
	// RoundsPerReducePhase — CONGEST rounds charged per Reduce-Phase
	// (paper, Section 2.2 "Complexity": 23).
	RoundsPerReducePhase int
	// SimilarityH and SimilarityHHat are the common-neighbour fractions
	// defining H = H_{2/3} and Ĥ = H_{5/6} (paper: 2/3 and 5/6).
	SimilarityH    float64
	SimilarityHHat float64
	// ExactSimilarity computes the similarity graphs from exact common
	// d2-neighbour counts instead of the sampling protocol of Section 2.3.
	// The sampling protocol is the CONGEST-feasible construction; the exact
	// variant is what it approximates (Theorem 2.2) and is cheaper to
	// simulate on very dense graphs.
	ExactSimilarity bool
	// MaxFinishPhases bounds the FinishColoring loop (it completes in
	// O(log n) phases w.h.p., Lemma 2.14); 0 means an automatic bound.
	MaxFinishPhases int
	// MaxFallbackPhases bounds the whole-palette fallback used if the basic
	// variant's final Reduce leaves live nodes outside the asymptotic regime;
	// 0 means an automatic bound.
	MaxFallbackPhases int
}

// Default returns parameters scaled so that every stage of the algorithm is
// exercised on graphs of the size used in tests and experiments
// (n ≤ ~10⁵, Δ ≤ ~64). The structure and all inequalities of the paper are
// preserved; only the absolute constants differ (see DESIGN.md §2).
func Default() Params {
	return Params{
		C0:                   3,
		C1:                   0.5,
		C2:                   2,
		C3:                   1,
		C10:                  3,
		ActiveDenominator:    4,
		QueryDenominator:     4,
		RoundsPerReducePhase: 23,
		SimilarityH:          2.0 / 3.0,
		SimilarityHHat:       5.0 / 6.0,
	}
}

// Paper returns the constants exactly as stated in the paper. They are
// astronomically conservative: with n and Δ reachable in a simulation, the
// Reduce machinery degenerates (query probabilities round to zero), so these
// values are used only by dedicated tests documenting that behaviour.
func Paper() Params {
	c1 := 1.0 / (402 * math.E * math.E * math.E)
	return Params{
		C0:                   3 * math.E / c1,
		C1:                   c1,
		C2:                   16,
		C3:                   32 / 1e-6, // c3 = 32/c7 with c7 the (tiny) progress constant of Lemma 2.12
		C10:                  64,
		ActiveDenominator:    8,
		QueryDenominator:     6000,
		RoundsPerReducePhase: 23,
		SimilarityH:          2.0 / 3.0,
		SimilarityHHat:       5.0 / 6.0,
	}
}

// Errors returned by parameter validation.
var ErrBadParams = errors.New("randd2: invalid parameters")

// Validate checks that the parameters are usable.
func (p Params) Validate() error {
	switch {
	case p.C0 <= 0, p.C1 <= 0, p.C2 <= 0, p.C3 <= 0, p.C10 <= 0:
		return fmt.Errorf("%w: multipliers must be positive: %+v", ErrBadParams, p)
	case p.C1 > 1:
		return fmt.Errorf("%w: C1 must be at most 1 (leeway cannot exceed the palette)", ErrBadParams)
	case p.ActiveDenominator < 1, p.QueryDenominator < 1:
		return fmt.Errorf("%w: denominators must be at least 1", ErrBadParams)
	case p.RoundsPerReducePhase < 1:
		return fmt.Errorf("%w: RoundsPerReducePhase must be at least 1", ErrBadParams)
	case p.SimilarityH <= 0 || p.SimilarityH >= 1 || p.SimilarityHHat <= 0 || p.SimilarityHHat >= 1:
		return fmt.Errorf("%w: similarity thresholds must be in (0,1)", ErrBadParams)
	case p.SimilarityHHat < p.SimilarityH:
		return fmt.Errorf("%w: Ĥ threshold must be at least the H threshold", ErrBadParams)
	}
	return nil
}

// log2 returns log₂(x), at least 1, so that round counts never collapse to
// zero on tiny inputs.
func log2(x int) float64 {
	if x < 2 {
		return 1
	}
	return math.Log2(float64(x))
}
