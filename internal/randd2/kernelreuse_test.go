package randd2

import (
	"fmt"
	"testing"

	"d2color/internal/graph"
	"d2color/internal/trial"
)

// TestTrialKernelReuseByteDeterminism is the byte-determinism property suite
// for the word-encoded kernel: for every graph family, variant, engine and
// seed, a run that injects a shared, repeatedly reused trial kernel produces
// colorings and Metrics identical to a run that builds everything fresh —
// i.e. kernel reuse (the Reset path) is observationally invisible. The
// shared kernel survives across all seeds and variants of a family, so the
// test also exercises back-to-back reuse with differing configs.
func TestTrialKernelReuseByteDeterminism(t *testing.T) {
	families := []struct {
		name string
		g    *graph.Graph
	}{
		{"gnp", graph.GNPWithAverageDegree(64, 6, 3)},
		{"grid", graph.Grid(8, 8)},
		{"cliquechain", graph.CliqueChain(4, 5, 0)},
	}
	seeds := []uint64{1, 7, 42}
	engines := []struct {
		parallel bool
		workers  int
	}{
		{false, 0},
		{true, 0}, // GOMAXPROCS workers (inline fast path on 1-core machines)
		{true, 3}, // forces a real pooled worker team regardless of the machine
	}
	for _, fam := range families {
		for _, eng := range engines {
			shared := trial.NewRunner(fam.g, eng.parallel, eng.workers)
			defer shared.Close()
			for _, variant := range []Variant{VariantImproved, VariantBasic} {
				for _, seed := range seeds {
					t.Run(fmt.Sprintf("%s/%s/parallel=%v/workers=%d/seed=%d", fam.name, variant, eng.parallel, eng.workers, seed), func(t *testing.T) {
						fresh, err := Run(fam.g, Options{Variant: variant, Seed: seed, Parallel: eng.parallel, Workers: eng.workers,
							DisableDeterministicFallback: true})
						if err != nil {
							t.Fatalf("fresh: %v", err)
						}
						reused, err := Run(fam.g, Options{Variant: variant, Seed: seed, Parallel: eng.parallel, Workers: eng.workers,
							DisableDeterministicFallback: true, TrialKernel: shared})
						if err != nil {
							t.Fatalf("reused: %v", err)
						}
						if fresh.Metrics != reused.Metrics {
							t.Fatalf("metrics differ:\nfresh:  %v\nreused: %v", fresh.Metrics, reused.Metrics)
						}
						if fresh.ActiveRounds != reused.ActiveRounds {
							t.Fatalf("active rounds differ: %d vs %d", fresh.ActiveRounds, reused.ActiveRounds)
						}
						for v := range fresh.Coloring {
							if fresh.Coloring[v] != reused.Coloring[v] {
								t.Fatalf("node %d: fresh color %d, reused color %d",
									v, fresh.Coloring[v], reused.Coloring[v])
							}
						}
					})
				}
			}
		}
	}
}

// A kernel built for a different graph must be rejected up front instead of
// panicking deep inside the trial run.
func TestTrialKernelGraphMismatchRejected(t *testing.T) {
	gA := graph.Grid(8, 8)
	gB := graph.Grid(4, 4)
	tk := trial.NewRunner(gA, false, 0)
	if _, err := Run(gB, Options{Seed: 1, TrialKernel: tk, DisableDeterministicFallback: true}); err == nil {
		t.Fatal("mismatched trial kernel should be rejected")
	}
}
