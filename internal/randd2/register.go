package randd2

import (
	"d2color/internal/alg"
	"d2color/internal/graph"
)

// Algorithm wraps the randomized d2-coloring in the unified alg.Algorithm
// interface. The fixed options carry everything but the seed and the engine,
// which are supplied per Run call; a reusable trial kernel offered by the
// engine (alg.Engine.Kernel) is consumed unless the options already inject
// one.
func Algorithm(opts Options) alg.Algorithm {
	name := "rand-improved"
	if opts.Variant == VariantBasic {
		name = "rand-basic"
	}
	return alg.Func{
		AlgName: name,
		Class:   alg.Randomized,
		Palette: alg.D2Palette,
		RunFunc: func(g *graph.Graph, eng alg.Engine, seed uint64) (alg.Result, error) {
			o := opts
			o.Seed = seed
			o.Parallel = eng.Parallel
			o.Workers = eng.Workers
			if o.TrialKernel == nil && eng.Kernel != nil {
				o.TrialKernel = eng.Kernel()
			}
			r, err := Run(g, o)
			if err != nil {
				return alg.Result{}, err
			}
			return alg.Result{Coloring: r.Coloring, PaletteSize: r.PaletteSize, Metrics: r.Metrics, Details: &r}, nil
		},
	}
}

func init() {
	alg.Register(Algorithm(Options{Variant: VariantImproved}))
	alg.Register(Algorithm(Options{Variant: VariantBasic}))
}
