package randd2

import (
	"testing"

	"d2color/internal/coloring"
	"d2color/internal/graph"
	"d2color/internal/trial"
	"d2color/internal/verify"
)

// newTestRunner builds a runner with the similarity graphs already in place.
func newTestRunner(t *testing.T, g *graph.Graph, p Params, seed uint64) *runner {
	t.Helper()
	r := newRunner(g, p, seed, trial.NewRunner(g, false, 0))
	r.sim = buildSimilarity(g, r.d2, r.delta, p, seed)
	return r
}

func TestResolveTriesSemantics(t *testing.T) {
	// Star: all nodes are pairwise at distance ≤ 2.
	g := graph.Star(5)
	r := newTestRunner(t, g, Default(), 1)

	// Two nodes trying the same color both fail; distinct colors succeed.
	r.beginTries()
	r.setTry(1, 3)
	r.setTry(2, 3)
	r.setTry(3, 4)
	colored := r.resolveTries()
	if len(colored) != 1 || colored[0] != 3 {
		t.Fatalf("colored = %v, want only node 3", colored)
	}
	if r.col[1] != coloring.Uncolored || r.col[2] != coloring.Uncolored || r.col[3] != 4 {
		t.Fatalf("coloring after tries: %v", r.col)
	}
	// A try conflicting with an existing color fails.
	r.beginTries()
	r.setTry(1, 4)
	if got := r.resolveTries(); len(got) != 0 {
		t.Error("try of an already used color within distance 2 should fail")
	}
	// Colors outside the palette are ignored.
	r.beginTries()
	r.setTry(1, r.palette+5)
	if got := r.resolveTries(); len(got) != 0 {
		t.Error("out-of-palette try should be ignored")
	}
	// Already-colored nodes cannot try again.
	r.beginTries()
	r.setTry(3, 7)
	if got := r.resolveTries(); len(got) != 0 {
		t.Error("colored node should not be recolored")
	}
	if rep := verify.CheckPartialD2(g, r.col); !rep.Valid {
		t.Errorf("partial coloring invalid: %v", rep.Error())
	}
	// liveLeft bookkeeping.
	if r.liveLeft != g.NumNodes()-1 {
		t.Errorf("liveLeft = %d, want %d", r.liveLeft, g.NumNodes()-1)
	}
}

func TestColorUsedByColoredD2Neighbor(t *testing.T) {
	g := graph.Path(4) // 0-1-2-3
	r := newTestRunner(t, g, Default(), 1)
	r.col[0] = 2
	r.liveLeft--
	r.compactLive()
	if !r.colorUsedByColoredD2Neighbor(2, 2) {
		t.Error("node 2 is at distance 2 from node 0; color 2 should be reported used")
	}
	if r.colorUsedByColoredD2Neighbor(3, 2) {
		t.Error("node 3 is at distance 3 from node 0; color 2 should not be reported used")
	}
}

func TestAdoptColoring(t *testing.T) {
	g := graph.Cycle(6)
	r := newTestRunner(t, g, Default(), 1)
	partial := coloring.New(6)
	partial[0] = 1
	partial[3] = 2
	r.adoptColoring(partial)
	if r.liveLeft != 4 {
		t.Errorf("liveLeft = %d, want 4", r.liveLeft)
	}
	// Adopting again must not double-count.
	r.adoptColoring(partial)
	if r.liveLeft != 4 {
		t.Errorf("liveLeft after re-adoption = %d, want 4", r.liveLeft)
	}
	if got := len(r.live); got != 4 {
		t.Errorf("live list length = %d, want 4", got)
	}
}

func TestChargeAndCompletionTracking(t *testing.T) {
	g := graph.Path(3)
	r := newTestRunner(t, g, Default(), 1)
	r.charge(5)
	if r.activeRounds != -1 {
		t.Error("completion should not be recorded while nodes are live")
	}
	full := coloring.New(3)
	full[0], full[1], full[2] = 0, 1, 2
	r.adoptColoring(full)
	if r.activeRounds != 5 {
		t.Errorf("activeRounds = %d, want 5 (rounds at completion)", r.activeRounds)
	}
	r.charge(10)
	if r.activeRounds != 5 {
		t.Error("activeRounds must not move after completion")
	}
	if r.metrics.TotalRounds() != 15 {
		t.Errorf("TotalRounds = %d, want 15", r.metrics.TotalRounds())
	}
}

func TestReduceOnMooreGraphMakesProgress(t *testing.T) {
	// Hoffman–Singleton with everything live and a rich similarity graph: a
	// Reduce call with aggressive probabilities must send queries, produce
	// proposals and color at least one node while keeping the partial
	// coloring valid.
	g := graph.HoffmanSingleton()
	p := Default()
	p.QueryDenominator = 1
	p.ActiveDenominator = 1
	r := newTestRunner(t, g, p, 7)
	// Give the helpers something to work with: color half the nodes greedily
	// (validly) so that colored H-neighbours exist.
	for v := 0; v < g.NumNodes()/2; v++ {
		used := make(map[int]bool)
		r.d2.ForEachDist2(graph.NodeID(v), func(u graph.NodeID) bool {
			if r.col[u] != coloring.Uncolored {
				used[r.col[u]] = true
			}
			return true
		})
		c := 0
		for used[c] {
			c++
		}
		r.col[v] = c
		r.liveLeft--
	}
	r.compactLive()
	stats := r.reduce(float64(r.palette), float64(r.palette)/2)
	if stats.QueriesSent == 0 {
		t.Fatal("expected queries on a zero-sparsity graph with aggressive probabilities")
	}
	if stats.Proposals == 0 {
		t.Error("expected at least one proposal")
	}
	if stats.ChargedRounds == 0 {
		t.Error("Reduce must charge rounds")
	}
	if rep := verify.CheckPartialD2(g, r.col); !rep.Valid {
		t.Errorf("Reduce broke the partial coloring: %v", rep.Error())
	}
}

func TestReduceHandlesDegenerateArguments(t *testing.T) {
	g := graph.Petersen()
	r := newTestRunner(t, g, Default(), 3)
	// phi, tau below 1 are clamped; the call must not panic and must charge.
	stats := r.reduce(0, 0)
	if stats.Phases < 1 || stats.ChargedRounds == 0 {
		t.Errorf("degenerate reduce: %+v", stats)
	}
}

func TestCullByKey(t *testing.T) {
	qs := []query{
		{v: 1, u: 10, mid: 5, priority: 3},
		{v: 2, u: 10, mid: 6, priority: 9},
		{v: 3, u: 11, mid: 5, priority: 7},
	}
	// Cull by destination u: only the priority-9 query survives for u=10.
	byU := cullByKey(append([]query(nil), qs...), func(q query) graph.NodeID { return q.u })
	if len(byU) != 2 {
		t.Fatalf("cull by u kept %d queries, want 2", len(byU))
	}
	for _, q := range byU {
		if q.u == 10 && q.priority != 9 {
			t.Error("wrong survivor for u=10")
		}
	}
	// Cull by intermediate node: mid=5 appears twice; the priority-7 one wins.
	byMid := cullByKey(append([]query(nil), qs...), func(q query) graph.NodeID { return q.mid })
	if len(byMid) != 2 {
		t.Fatalf("cull by mid kept %d queries, want 2", len(byMid))
	}
	// Empty input.
	if got := cullByKey(nil, func(q query) graph.NodeID { return q.u }); len(got) != 0 {
		t.Error("cull of empty slice should be empty")
	}
}

func TestFallbackTrialsCompletes(t *testing.T) {
	g := graph.Complete(12)
	p := Default()
	r := newTestRunner(t, g, p, 5)
	phases, err := r.fallbackTrials(p)
	if err != nil {
		t.Fatal(err)
	}
	if phases == 0 {
		t.Error("fallback should need at least one phase on an uncolored clique")
	}
	if r.liveLeft != 0 {
		t.Errorf("fallback left %d live nodes", r.liveLeft)
	}
	if rep := verify.CheckD2(g, r.col, r.palette); !rep.Valid {
		t.Errorf("fallback coloring invalid: %v", rep.Error())
	}
}

func TestPaperParamsStillProduceValidColoring(t *testing.T) {
	// With the published constants the Reduce machinery degenerates at this
	// scale (query probabilities round to zero); the algorithm must still
	// terminate with a valid Δ²+1 coloring because the initial trials and the
	// final phase carry it (documented in DESIGN.md §2).
	g := graph.Petersen()
	p := Paper()
	// The paper's C0 would schedule ~500k initial phases; cap it so the test
	// finishes while keeping every other constant at its published value.
	p.C0 = 3
	res, err := Run(g, Options{Params: &p, Seed: 1, Variant: VariantImproved,
		DisableDeterministicFallback: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep := verify.CheckD2(g, res.Coloring, res.PaletteSize); !rep.Valid {
		t.Errorf("%v", rep.Error())
	}
}
