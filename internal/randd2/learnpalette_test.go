package randd2

import (
	"testing"

	"d2color/internal/bitset"
	"d2color/internal/coloring"
	"d2color/internal/graph"
	"d2color/internal/sparsity"
	"d2color/internal/verify"
)

func TestLearnPaletteExactness(t *testing.T) {
	// Color part of a Hoffman–Singleton graph, then check that the remaining
	// palette LearnPalette reports for every live node is exactly the set of
	// colours not used among its distance-2 neighbours.
	g := graph.HoffmanSingleton()
	p := Default()
	p.ExactSimilarity = true // the |Tv| assertion below needs the exact H, not the sampled one
	r := newTestRunner(t, g, p, 2)
	for v := 0; v < 30; v++ {
		used := make(map[int]bool)
		r.d2.ForEachDist2(graph.NodeID(v), func(u graph.NodeID) bool {
			if r.col[u] != coloring.Uncolored {
				used[r.col[u]] = true
			}
			return true
		})
		c := 0
		for used[c] {
			c++
		}
		r.col[v] = c
		r.liveLeft--
	}
	r.compactLive()
	remaining, stats := r.learnPalette()
	if stats.LiveNodes != 20 {
		t.Fatalf("live nodes = %d, want 20", stats.LiveNodes)
	}
	if stats.ChargedRounds <= 0 {
		t.Error("LearnPalette should charge rounds")
	}
	for _, v := range r.live {
		want := sparsity.Leeway(r.d2, r.col, r.palette, v)
		rem := remainingColors(remaining, v)
		if len(rem) != want {
			t.Fatalf("node %d: remaining palette size %d, want leeway %d", v, len(rem), want)
		}
		for _, c := range rem {
			if r.colorUsedByColoredD2Neighbor(v, c) {
				t.Fatalf("node %d: colour %d reported available but used within distance 2", v, c)
			}
		}
	}
	// On the Hoffman–Singleton graph every d2-neighbour is an H-neighbour, so
	// the handler mechanism learns everything and |Tv| = 0.
	if stats.MaxMissing != 0 {
		t.Errorf("MaxMissing = %d, want 0 on a Moore graph", stats.MaxMissing)
	}
}

func TestFinishColoringCompletesAndStaysValid(t *testing.T) {
	g := graph.HoffmanSingleton()
	r := newTestRunner(t, g, Default(), 3)
	remaining, _ := r.learnPalette()
	fstats, err := r.finishColoring(remaining)
	if err != nil {
		t.Fatal(err)
	}
	if r.liveLeft != 0 {
		t.Fatalf("FinishColoring left %d live nodes", r.liveLeft)
	}
	if fstats.Phases == 0 || fstats.ChargedRounds != 3*fstats.Phases {
		t.Errorf("stats = %+v", fstats)
	}
	if rep := verify.CheckD2(g, r.col, r.palette); !rep.Valid {
		t.Errorf("%v", rep.Error())
	}
}

func TestFinishColoringRespectsPreexistingColors(t *testing.T) {
	g := graph.Petersen()
	r := newTestRunner(t, g, Default(), 4)
	r.col[0] = 5
	r.liveLeft--
	r.compactLive()
	remaining, _ := r.learnPalette()
	// Node 0's colour must not appear in any live node's remaining palette
	// (everyone is within distance 2 of node 0 on the Petersen graph).
	for _, v := range r.live {
		for _, c := range remainingColors(remaining, v) {
			if c == 5 {
				t.Fatalf("node %d offered colour 5, already used by its d2-neighbour 0", v)
			}
		}
	}
	if _, err := r.finishColoring(remaining); err != nil {
		t.Fatal(err)
	}
	if r.col[0] != 5 {
		t.Error("pre-existing colour was overwritten")
	}
	if rep := verify.CheckD2(g, r.col, r.palette); !rep.Valid {
		t.Errorf("%v", rep.Error())
	}
}

// remainingColors enumerates v's remaining palette in ascending colour
// order (test helper over the bitset rows).
func remainingColors(p *remainingPalettes, v graph.NodeID) []int {
	if !p.has(v) {
		return nil
	}
	row := p.palette(v)
	out := make([]int, 0, row.Count())
	for k := 0; ; k++ {
		c := row.NthSet(k)
		if c < 0 {
			return out
		}
		out = append(out, c)
	}
}

// nthFromSet is the sorted-map oracle the bitset pick replaced: the i-th
// smallest element of the set. TestFinishPickMatchesSetOracle pits the
// bitset row's popcount+NthSet pick against it.
func nthFromSet(set map[int]struct{}, i int) int {
	keys := make([]int, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	for a := 1; a < len(keys); a++ {
		for b := a; b > 0 && keys[b] < keys[b-1]; b-- {
			keys[b], keys[b-1] = keys[b-1], keys[b]
		}
	}
	if i < 0 || i >= len(keys) {
		return -1
	}
	return keys[i]
}

func TestNthFromSetOracle(t *testing.T) {
	set := map[int]struct{}{7: {}, 2: {}, 9: {}}
	if nthFromSet(set, 0) != 2 || nthFromSet(set, 1) != 7 || nthFromSet(set, 2) != 9 {
		t.Error("nthFromSet should enumerate in increasing order")
	}
	if nthFromSet(set, 3) != -1 || nthFromSet(set, -1) != -1 {
		t.Error("out-of-range index should return -1")
	}
}

// TestFinishPickMatchesSetOracle pits FinishColoring's bitset palette pick
// (popcount + NthSet) against the sorted-map oracle it replaced, across
// palette sizes straddling word boundaries and every pick index.
func TestFinishPickMatchesSetOracle(t *testing.T) {
	for _, palette := range []int{63, 64, 65, 130} {
		p := &remainingPalettes{
			words: make([]uint64, bitset.WordsFor(palette)),
			w:     bitset.WordsFor(palette),
			row:   []int32{0},
		}
		set := map[int]struct{}{}
		row := p.palette(0)
		for c := 0; c < palette; c += 3 {
			row.Set(c)
			set[c] = struct{}{}
		}
		if got, want := row.Count(), len(set); got != want {
			t.Fatalf("palette=%d: Count = %d, oracle size %d", palette, got, want)
		}
		for k := 0; k <= len(set); k++ {
			if got, want := row.NthSet(k), nthFromSet(set, k); got != want {
				t.Fatalf("palette=%d: NthSet(%d) = %d, oracle %d", palette, k, got, want)
			}
		}
		// Claims clear bits exactly like map deletion.
		row.Clear(3)
		delete(set, 3)
		if got, want := row.NthSet(1), nthFromSet(set, 1); got != want {
			t.Fatalf("palette=%d after clear: NthSet(1) = %d, oracle %d", palette, got, want)
		}
	}
}

func TestLearnPaletteOnFullyColoredGraph(t *testing.T) {
	g := graph.Petersen()
	r := newTestRunner(t, g, Default(), 6)
	for v := 0; v < g.NumNodes(); v++ {
		r.col[v] = v
	}
	r.liveLeft = 0
	r.compactLive()
	remaining, stats := r.learnPalette()
	if stats.LiveNodes != 0 || stats.MaxLivePerNbr != 0 {
		t.Errorf("stats = %+v, want no live nodes", stats)
	}
	fstats, err := r.finishColoring(remaining)
	if err != nil {
		t.Fatal(err)
	}
	if fstats.Phases != 0 {
		t.Errorf("finish on a complete coloring should take 0 phases, got %d", fstats.Phases)
	}
}
