package splitting

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"d2color/internal/graph"
)

func TestOptionValidation(t *testing.T) {
	g := graph.Complete(10)
	parts := UniformPartition(10)
	if _, err := RandomizedSplit(g, parts, Options{Lambda: 0}); !errors.Is(err, ErrBadLambda) {
		t.Errorf("lambda 0: %v", err)
	}
	if _, err := RandomizedSplit(g, parts, Options{Lambda: 2}); !errors.Is(err, ErrBadLambda) {
		t.Errorf("lambda 2: %v", err)
	}
	if _, err := RandomizedSplit(g, []int{0, 1}, Options{Lambda: 0.5}); !errors.Is(err, ErrBadPartition) {
		t.Errorf("short partition: %v", err)
	}
	bad := UniformPartition(10)
	bad[3] = -1
	if _, err := DeterministicSplit(g, bad, Options{Lambda: 0.5}); !errors.Is(err, ErrBadPartition) {
		t.Errorf("negative label: %v", err)
	}
}

func TestRandomizedSplitRoughlyBalanced(t *testing.T) {
	// On K_{200,200}, with lambda 0.5 and the paper threshold, the guarantee
	// binds (deg = 200 ≥ 12·log₂(400)/0.25 ≈ 415? no — use a lower coefficient
	// to make it bind) and a random split is balanced w.h.p.
	g := graph.CompleteBipartite(200, 200)
	parts := UniformPartition(g.NumNodes())
	res, err := RandomizedSplit(g, parts, Options{Lambda: 0.5, ThresholdCoeff: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Constrained == 0 {
		t.Fatal("constraint should bind on K_{200,200} with coefficient 1")
	}
	if res.Violations != 0 {
		t.Errorf("random split violated %d of %d constraints (possible but very unlikely)", res.Violations, res.Constrained)
	}
	if res.MaxImbalance > 0.25 {
		t.Errorf("max imbalance %.3f too large", res.MaxImbalance)
	}
}

func TestLimitedIndependenceSplit(t *testing.T) {
	g := graph.CompleteBipartite(150, 150)
	parts := UniformPartition(g.NumNodes())
	res, err := LimitedIndependenceSplit(g, parts, Options{Lambda: 0.5, ThresholdCoeff: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Constrained == 0 {
		t.Fatal("constraints should bind")
	}
	if res.Violations != 0 {
		t.Errorf("limited-independence split violated %d constraints", res.Violations)
	}
	// Different seeds give different splits.
	res2, err := LimitedIndependenceSplit(g, parts, Options{Lambda: 0.5, ThresholdCoeff: 1, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for v := range res.Red {
		if res.Red[v] != res2.Red[v] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds should give different splits")
	}
}

func TestDeterministicSplitZeroViolations(t *testing.T) {
	cases := map[string]*graph.Graph{
		"bipartite": graph.CompleteBipartite(120, 120),
		"clique":    graph.Complete(150),
		"gnp-dense": graph.GNP(200, 0.4, 2),
	}
	for name, g := range cases {
		parts := UniformPartition(g.NumNodes())
		res, err := DeterministicSplit(g, parts, Options{Lambda: 0.5, ThresholdCoeff: 1})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Constrained == 0 {
			t.Fatalf("%s: expected binding constraints", name)
		}
		if res.Violations != 0 {
			t.Errorf("%s: deterministic split violated %d of %d constraints",
				name, res.Violations, res.Constrained)
		}
		if res.Rounds <= 0 {
			t.Errorf("%s: deterministic split should charge rounds", name)
		}
		if res.DecompositionColors < 1 {
			t.Errorf("%s: expected at least one decomposition color", name)
		}
	}
}

func TestDeterministicSplitIsDeterministic(t *testing.T) {
	g := graph.GNP(100, 0.3, 5)
	parts := UniformPartition(100)
	a, err := DeterministicSplit(g, parts, Options{Lambda: 0.5, ThresholdCoeff: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := DeterministicSplit(g, parts, Options{Lambda: 0.5, ThresholdCoeff: 1})
	if err != nil {
		t.Fatal(err)
	}
	for v := range a.Red {
		if a.Red[v] != b.Red[v] {
			t.Fatal("deterministic split differed between runs")
		}
	}
}

func TestDeterministicSplitWithMultipleParts(t *testing.T) {
	// Two groups: each vertex of the clique has neighbours in both parts.
	g := graph.Complete(160)
	parts := make([]int, 160)
	for v := range parts {
		parts[v] = v % 2
	}
	res, err := DeterministicSplit(g, parts, Options{Lambda: 0.5, ThresholdCoeff: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violations != 0 {
		t.Errorf("violations = %d", res.Violations)
	}
	if res.Constrained == 0 {
		t.Error("expected binding constraints in both parts")
	}
}

func TestPaperThresholdIsVacuousAtSmallScale(t *testing.T) {
	// Documents the scaling note from DESIGN.md: with the paper's coefficient
	// 12 and λ = 0.1, the degree threshold 12·log n/λ² exceeds every degree in
	// a small graph, so no constraint binds and any split is valid.
	g := graph.GNP(100, 0.2, 1)
	parts := UniformPartition(100)
	res, err := RandomizedSplit(g, parts, Options{Lambda: 0.1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Constrained != 0 {
		t.Errorf("expected no binding constraints, got %d", res.Constrained)
	}
	if res.Violations != 0 {
		t.Errorf("vacuous constraints cannot be violated, got %d", res.Violations)
	}
}

func TestRefinePartitionAndMaxPartDegree(t *testing.T) {
	g := graph.Complete(8)
	parts := UniformPartition(8)
	if got := MaxPartDegree(g, parts); got != 7 {
		t.Errorf("MaxPartDegree of K8 single part = %d, want 7", got)
	}
	red := []bool{true, false, true, false, true, false, true, false}
	refined := RefinePartition(parts, red)
	distinct := make(map[int]bool)
	for _, p := range refined {
		distinct[p] = true
	}
	if len(distinct) != 2 {
		t.Errorf("refining one part with a proper red/blue split should give 2 parts, got %d", len(distinct))
	}
	if got := MaxPartDegree(g, refined); got != 4 {
		t.Errorf("MaxPartDegree after refinement = %d, want 4", got)
	}
	// Labels must be dense.
	for _, p := range refined {
		if p < 0 || p >= len(distinct) {
			t.Errorf("non-dense label %d", p)
		}
	}
}

func TestBinomialSuffix(t *testing.T) {
	s := binomialSuffix(4)
	// P[Bin(4,1/2) >= 0] = 1, >= 5 would be 0 (not in slice), >= 2 = 11/16.
	if math.Abs(s[0]-1) > 1e-12 {
		t.Errorf("s[0] = %v, want 1", s[0])
	}
	if math.Abs(s[2]-11.0/16.0) > 1e-12 {
		t.Errorf("s[2] = %v, want 11/16", s[2])
	}
	if math.Abs(s[4]-1.0/16.0) > 1e-12 {
		t.Errorf("s[4] = %v, want 1/16", s[4])
	}
}

func TestEstimatorTailAbove(t *testing.T) {
	e := &estimator{tails: make(map[int][]float64)}
	if got := e.tailAbove(10, -0.5); got != 1 {
		t.Errorf("tailAbove with negative t = %v, want 1", got)
	}
	if got := e.tailAbove(10, 10); got != 0 {
		t.Errorf("tailAbove with t >= m = %v, want 0", got)
	}
	// P[Bin(4,1/2) > 1.5] = P[X >= 2] = 11/16.
	if got := e.tailAbove(4, 1.5); math.Abs(got-11.0/16.0) > 1e-12 {
		t.Errorf("tailAbove(4,1.5) = %v, want 11/16", got)
	}
}

func TestPropertyRefineKeepsPartitionValid(t *testing.T) {
	f := func(seed uint64) bool {
		g := graph.GNP(40, 0.2, int64(seed%10))
		parts := UniformPartition(40)
		res, err := RandomizedSplit(g, parts, Options{Lambda: 0.5, Seed: seed})
		if err != nil {
			return false
		}
		refined := RefinePartition(parts, res.Red)
		if len(refined) != 40 {
			return false
		}
		// Dense labels starting at 0.
		maxLbl := 0
		for _, p := range refined {
			if p < 0 {
				return false
			}
			if p > maxLbl {
				maxLbl = p
			}
		}
		seen := make([]bool, maxLbl+1)
		for _, p := range refined {
			seen[p] = true
		}
		for _, s := range seen {
			if !s {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
