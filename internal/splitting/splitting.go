// Package splitting implements the local refinement splitting problem of
// Definition 3.1 and its solutions:
//
//   - RandomizedSplit: the zero-round algorithm in which every vertex picks
//     red or blue with a private fair coin (fully independent);
//   - LimitedIndependenceSplit: the same algorithm with Θ(log n)-wise
//     independent coins drawn from one short seed per run (Lemma A.5 /
//     Theorem A.6), implemented with the k-wise independent hash family of
//     internal/kwise;
//   - DeterministicSplit: the derandomization of Theorem 3.2 — a network
//     decomposition of G² is computed, and the color choices of each cluster
//     are fixed by the method of conditional expectation, cluster colors
//     processed one after the other and same-colored clusters in parallel.
//
// Derandomization fidelity: the paper fixes the bits of one shared random
// seed per cluster; we fix the per-vertex coins of the cluster directly, with
// the exact conditional failure probability (a binomial tail) as the
// pessimistic estimator. The two are equivalent derandomizations of the same
// zero-round algorithm; the seed indirection in the paper exists to keep the
// CONGEST messages short, a cost we account for in the charged rounds (see
// DeterministicSplit). The k-wise-seed machinery itself is exercised by
// LimitedIndependenceSplit.
package splitting

import (
	"errors"
	"fmt"
	"math"

	"d2color/internal/graph"
	"d2color/internal/kwise"
	"d2color/internal/netdecomp"
	"d2color/internal/rng"
)

// Options tunes the splitting.
type Options struct {
	// Lambda is the balance parameter λ of Definition 3.1.
	Lambda float64
	// ThresholdCoeff is the constant in the degree threshold
	// degᵢ(v) ≥ ThresholdCoeff·log n / λ²; the paper uses 12. Experiments may
	// lower it to make the guarantee bind on laptop-scale graphs.
	ThresholdCoeff float64
	// Seed drives the randomized variants.
	Seed uint64
	// Independence is the k of the k-wise independent coins used by
	// LimitedIndependenceSplit; 0 means ⌈10·log₂ n⌉ as in Lemma A.5.
	Independence int
}

// Result is a red/blue splitting together with its quality and cost.
type Result struct {
	// Red[v] is true when v is colored red.
	Red []bool
	// Violations counts pairs (v, i) with degᵢ(v) above the threshold and
	// more than (1+λ)·degᵢ(v)/2 neighbours of one color in Vᵢ.
	Violations int
	// Constrained counts pairs (v, i) whose degree is above the threshold
	// (i.e. the pairs the guarantee applies to).
	Constrained int
	// MaxImbalance is the maximum over constrained pairs of
	// max(red, blue)/degᵢ(v) − 1/2 (0 when no pair is constrained).
	MaxImbalance float64
	// Rounds is the CONGEST round charge (0 for the zero-round randomized
	// variants, decomposition + aggregation for the deterministic one).
	Rounds int
	// DecompositionColors reports the number of cluster colors used by the
	// deterministic variant (0 otherwise).
	DecompositionColors int
}

// Errors.
var (
	ErrBadLambda    = errors.New("splitting: lambda must be in (0, 1]")
	ErrBadPartition = errors.New("splitting: partition labels must cover every node")
)

func (o Options) normalize(n int) (Options, error) {
	if o.Lambda <= 0 || o.Lambda > 1 {
		return o, fmt.Errorf("%w (got %g)", ErrBadLambda, o.Lambda)
	}
	if o.ThresholdCoeff <= 0 {
		o.ThresholdCoeff = 12
	}
	if o.Independence <= 0 {
		o.Independence = int(math.Ceil(10 * math.Log2(float64(maxInt(n, 2)))))
	}
	return o, nil
}

// threshold returns the degree threshold below which a (v, i) pair is
// unconstrained.
func threshold(o Options, n int) float64 {
	return o.ThresholdCoeff * math.Log2(float64(maxInt(n, 2))) / (o.Lambda * o.Lambda)
}

// validatePartition checks that parts assigns a non-negative label to every
// node and returns the number of parts.
func validatePartition(g *graph.Graph, parts []int) (int, error) {
	if len(parts) != g.NumNodes() {
		return 0, fmt.Errorf("%w: %d labels for %d nodes", ErrBadPartition, len(parts), g.NumNodes())
	}
	p := 0
	for v, lbl := range parts {
		if lbl < 0 {
			return 0, fmt.Errorf("%w: node %d has negative label", ErrBadPartition, v)
		}
		if lbl+1 > p {
			p = lbl + 1
		}
	}
	return p, nil
}

// RandomizedSplit colors every vertex red or blue with an independent fair
// coin (the zero-round algorithm the paper derandomizes).
func RandomizedSplit(g *graph.Graph, parts []int, opts Options) (Result, error) {
	opts, err := opts.normalize(g.NumNodes())
	if err != nil {
		return Result{}, err
	}
	if _, err := validatePartition(g, parts); err != nil {
		return Result{}, err
	}
	red := make([]bool, g.NumNodes())
	src := rng.New(opts.Seed)
	for v := range red {
		red[v] = src.Bool()
	}
	return evaluate(g, parts, red, opts, 0, 0), nil
}

// LimitedIndependenceSplit colors every vertex with a coin that is k-wise
// independent across vertices, derived from a single short seed via the
// polynomial hash family of Theorem A.6 (the vertex's key is its identifier).
func LimitedIndependenceSplit(g *graph.Graph, parts []int, opts Options) (Result, error) {
	opts, err := opts.normalize(g.NumNodes())
	if err != nil {
		return Result{}, err
	}
	if _, err := validatePartition(g, parts); err != nil {
		return Result{}, err
	}
	fam, err := kwise.NewFamily(opts.Independence, 2)
	if err != nil {
		return Result{}, fmt.Errorf("splitting: %w", err)
	}
	h := fam.Draw(rng.New(opts.Seed))
	red := make([]bool, g.NumNodes())
	for v := range red {
		red[v] = h.Bit(uint64(v)) == 1
	}
	return evaluate(g, parts, red, opts, 0, 0), nil
}

// DeterministicSplit implements Theorem 3.2: it computes a network
// decomposition of G² and fixes the vertex colors cluster by cluster with the
// method of conditional expectation, producing a λ-local refinement splitting
// with zero violations whenever the initial expected number of violations is
// below one (which the threshold of Definition 3.1 guarantees).
//
// Round charge: the decomposition's charge plus, per cluster color class,
// seed-length · aggregation-diameter rounds (the paper's accounting in the
// proof of Theorem 3.2: O(log n) color classes × O(log² n) seed bits ×
// O(log⁴ n) aggregation).
func DeterministicSplit(g *graph.Graph, parts []int, opts Options) (Result, error) {
	n := g.NumNodes()
	opts, err := opts.normalize(n)
	if err != nil {
		return Result{}, err
	}
	numParts, err := validatePartition(g, parts)
	if err != nil {
		return Result{}, err
	}
	_ = numParts

	decomp := netdecomp.Compute(g, 2)
	thr := threshold(opts, n)

	// assigned[v]: -1 unknown, 0 blue, 1 red.
	assigned := make([]int8, n)
	for v := range assigned {
		assigned[v] = -1
	}

	// Process cluster colors in increasing order; clusters with the same
	// color are at distance > 2 in G, so no vertex's constraint involves two
	// of them and they can be fixed independently (in parallel in the
	// distributed implementation).
	order := make([][]int, decomp.NumColors)
	for c := range decomp.Clusters {
		col := decomp.ColorOf[c]
		order[col] = append(order[col], c)
	}
	est := newEstimator(g, parts, thr, opts.Lambda, opts.Seed)
	for _, clusters := range order {
		for _, c := range clusters {
			est.fixCluster(decomp.Clusters[c], assigned)
		}
	}

	red := make([]bool, n)
	for v := range red {
		red[v] = assigned[v] == 1
	}

	logN := math.Ceil(math.Log2(float64(maxInt(n, 2))))
	seedBits := int(math.Ceil(10 * logN * logN))
	aggregation := 2*decomp.MaxRadius + int(logN) + 1
	rounds := decomp.Rounds + decomp.NumColors*seedBits*aggregation

	return evaluate(g, parts, red, opts, rounds, decomp.NumColors), nil
}

// partCounts tracks, for one vertex u and one part i, how many of u's
// Vᵢ-neighbours are already red, already blue, or still unassigned.
type partCounts struct{ red, blue, free, deg int }

// estimator maintains the pessimistic estimator of the conditional-expectation
// derandomization incrementally: for every vertex u and part i it keeps the
// red/blue/unassigned counts among u's Vᵢ-neighbours, and it caches binomial
// tail tables so that each query is O(1).
//
// The estimator for a constrained pair (u, i) is
//
//	P[redᵢ(u) + Bin(freeᵢ(u), ½) > (1+λ)·degᵢ(u)/2]
//	  + P[blueᵢ(u) + Bin(freeᵢ(u), ½) > (1+λ)·degᵢ(u)/2],
//
// the exact conditional failure probability of the two one-sided events
// (their sum upper-bounds the failure indicator, so the greedy argmin choice
// keeps the total non-increasing — the standard pessimistic-estimator
// argument behind Theorem 3.2).
type estimator struct {
	g      *graph.Graph
	parts  []int
	thr    float64
	lambda float64
	salt   uint64
	counts []map[int]*partCounts
	tails  map[int][]float64 // m -> suffix array s with s[j] = P[Bin(m,½) >= j]
}

func newEstimator(g *graph.Graph, parts []int, thr, lambda float64, salt uint64) *estimator {
	n := g.NumNodes()
	e := &estimator{
		g:      g,
		parts:  parts,
		thr:    thr,
		lambda: lambda,
		salt:   salt,
		counts: make([]map[int]*partCounts, n),
		tails:  make(map[int][]float64),
	}
	for u := 0; u < n; u++ {
		m := make(map[int]*partCounts)
		for _, w := range g.Neighbors(graph.NodeID(u)) {
			pc := m[parts[w]]
			if pc == nil {
				pc = &partCounts{}
				m[parts[w]] = pc
			}
			pc.deg++
			pc.free++
		}
		e.counts[u] = m
	}
	return e
}

// fixCluster fixes the colors of one cluster's vertices greedily, in node
// order, choosing for each vertex the color that minimizes the estimator.
// Only the constraints of the vertex's neighbours (in the part containing the
// vertex) depend on its choice, so the comparison is local.
func (e *estimator) fixCluster(cluster []graph.NodeID, assigned []int8) {
	for _, v := range cluster {
		if assigned[v] != -1 {
			continue
		}
		part := e.parts[v]
		costRed, costBlue := 0.0, 0.0
		for _, u := range e.g.Neighbors(v) {
			pc := e.counts[u][part]
			if pc == nil || float64(pc.deg) < e.thr {
				continue
			}
			costRed += e.pairFailure(pc.red+1, pc.blue, pc.free-1, pc.deg)
			costBlue += e.pairFailure(pc.red, pc.blue+1, pc.free-1, pc.deg)
		}
		var color int8
		switch {
		case costRed < costBlue:
			color = 1
		case costBlue < costRed:
			color = 0
		default:
			// Tie (in particular when no constraint of v's neighbours binds):
			// the vertex behaves like its seed coin. Mixing the identifier
			// with the run's salt keeps the choice deterministic given the
			// inputs yet balanced and different across invocations, which is
			// what the shared-seed coins of the paper's construction give
			// unconstrained vertices.
			color = int8(mixParity(uint64(v)*0x9E3779B97F4A7C15 ^ e.salt))
		}
		assigned[v] = color
		for _, u := range e.g.Neighbors(v) {
			pc := e.counts[u][part]
			pc.free--
			if color == 1 {
				pc.red++
			} else {
				pc.blue++
			}
		}
	}
}

// pairFailure returns the estimator value for one (vertex, part) constraint
// with the given counts.
func (e *estimator) pairFailure(red, blue, free, deg int) float64 {
	limit := (1 + e.lambda) * float64(deg) / 2
	return e.tailAbove(free, limit-float64(red)) + e.tailAbove(free, limit-float64(blue))
}

// tailAbove returns P[Bin(m, ½) > t].
func (e *estimator) tailAbove(m int, t float64) float64 {
	if m < 0 {
		m = 0
	}
	if t < 0 {
		return 1
	}
	if float64(m) <= t {
		return 0
	}
	suffix, ok := e.tails[m]
	if !ok {
		suffix = binomialSuffix(m)
		e.tails[m] = suffix
	}
	j := int(math.Floor(t)) + 1
	if j < 0 {
		j = 0
	}
	if j > m {
		return 0
	}
	return suffix[j]
}

// mixParity returns a balanced deterministic bit derived from x (SplitMix64
// finalizer parity).
func mixParity(x uint64) int {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return int(x & 1)
}

// binomialSuffix returns s with s[j] = P[Bin(m, ½) >= j] for j in 0..m.
func binomialSuffix(m int) []float64 {
	pmf := make([]float64, m+1)
	// pmf[0] = 2^-m; iterate pmf[j+1] = pmf[j]·(m-j)/(j+1).
	pmf[0] = math.Exp(float64(m) * math.Log(0.5))
	for j := 0; j < m; j++ {
		pmf[j+1] = pmf[j] * float64(m-j) / float64(j+1)
	}
	suffix := make([]float64, m+2)
	for j := m; j >= 0; j-- {
		suffix[j] = suffix[j+1] + pmf[j]
	}
	if suffix[0] > 1 {
		suffix[0] = 1
	}
	return suffix[:m+1]
}

// evaluate computes the quality statistics of a splitting.
func evaluate(g *graph.Graph, parts []int, red []bool, opts Options, rounds, decompColors int) Result {
	n := g.NumNodes()
	thr := threshold(opts, n)
	res := Result{Red: red, Rounds: rounds, DecompositionColors: decompColors}
	for v := 0; v < n; v++ {
		perPart := make(map[int][2]int) // part -> [red, blue]
		for _, u := range g.Neighbors(graph.NodeID(v)) {
			c := perPart[parts[u]]
			if red[u] {
				c[0]++
			} else {
				c[1]++
			}
			perPart[parts[u]] = c
		}
		for _, c := range perPart {
			deg := c[0] + c[1]
			if float64(deg) < thr {
				continue
			}
			res.Constrained++
			limit := (1 + opts.Lambda) * float64(deg) / 2
			worst := c[0]
			if c[1] > worst {
				worst = c[1]
			}
			if float64(worst) > limit {
				res.Violations++
			}
			imbalance := float64(worst)/float64(deg) - 0.5
			if imbalance > res.MaxImbalance {
				res.MaxImbalance = imbalance
			}
		}
	}
	return res
}

// UniformPartition returns the trivial one-part partition (V₁ = V), the
// starting point of the recursive splitting of Lemma 3.3.
func UniformPartition(n int) []int {
	return make([]int, n)
}

// RefinePartition splits every part of the given partition in two according
// to the red/blue assignment, producing the partition used by the next
// recursion level of Lemma 3.3.
func RefinePartition(parts []int, red []bool) []int {
	out := make([]int, len(parts))
	for v := range parts {
		out[v] = 2 * parts[v]
		if red[v] {
			out[v]++
		}
	}
	return compactLabels(out)
}

// compactLabels renumbers part labels densely (empty parts removed).
func compactLabels(parts []int) []int {
	remap := make(map[int]int)
	out := make([]int, len(parts))
	for v, lbl := range parts {
		if _, ok := remap[lbl]; !ok {
			remap[lbl] = len(remap)
		}
		out[v] = remap[lbl]
	}
	return out
}

// MaxPartDegree returns the maximum, over nodes v and parts i, of the number
// of neighbours of v inside part i — the quantity the recursive splitting
// drives down (Lemma 3.3).
func MaxPartDegree(g *graph.Graph, parts []int) int {
	maxDeg := 0
	for v := 0; v < g.NumNodes(); v++ {
		perPart := make(map[int]int)
		for _, u := range g.Neighbors(graph.NodeID(v)) {
			perPart[parts[u]]++
			if perPart[parts[u]] > maxDeg {
				maxDeg = perPart[parts[u]]
			}
		}
	}
	return maxDeg
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
