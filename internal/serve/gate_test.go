package serve

import (
	"os"
	"testing"
)

// TestServeGate is the serving-plane performance gate. It always runs a small
// query-heavy load twice (batched and unbatched twins with identical request
// schedules) and logs the percentiles; the assertions — warm p99 under 10×
// p50, and batched throughput at least matching unbatched — are enforced only
// under D2_SERVE_GATE=1 (the CI serve-gate job), mirroring the repair gate:
// timing claims don't fail local runs on loaded machines.
func TestServeGate(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a load mix twice")
	}
	enforce := os.Getenv("D2_SERVE_GATE") == "1"

	spec := LoadSpec{
		Mix:            "gate/query",
		Sessions:       2,
		Family:         "ba",
		N:              1500,
		Deg:            3,
		Algorithm:      "relaxed",
		Requests:       1200,
		Concurrency:    8,
		VerifyFraction: 0.9,
		ColorSeeds:     1,
		Seed:           17,
	}
	batched, err := RunLoad(spec)
	if err != nil {
		t.Fatal(err)
	}
	un := spec
	un.Unbatched = true
	unbatched, err := RunLoad(un)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("batched:   p50=%v p99=%v %.0f req/s (mean batch %.1f, %d coalesced)",
		batched.P50, batched.P99, batched.RequestsPerSec, batched.MeanBatch, batched.Coalesced)
	t.Logf("unbatched: p50=%v p99=%v %.0f req/s", unbatched.P50, unbatched.P99, unbatched.RequestsPerSec)
	if batched.Errors != 0 || unbatched.Errors != 0 {
		t.Fatalf("load errors: batched %d, unbatched %d", batched.Errors, unbatched.Errors)
	}

	check := func(ok bool, format string, args ...any) {
		if ok {
			return
		}
		if enforce {
			t.Errorf(format, args...)
		} else {
			t.Logf("(not enforced, set D2_SERVE_GATE=1) "+format, args...)
		}
	}
	check(batched.P99 < 10*batched.P50,
		"warm tail too heavy: p99 %v >= 10x p50 %v", batched.P99, batched.P50)
	check(batched.RequestsPerSec >= unbatched.RequestsPerSec,
		"batched throughput %.0f req/s below unbatched %.0f req/s",
		batched.RequestsPerSec, unbatched.RequestsPerSec)
}
