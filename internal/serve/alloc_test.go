package serve

import (
	"testing"

	"d2color/internal/graph"
	"d2color/internal/repair"
)

// TestServeWarmRequestAllocFree enforces the zero-alloc steady-state claim
// with the same teeth as the trial plane's TestTrialPhaseAllocFree: once a
// session is warm, a verify request and an explicit-dirty recolor request
// (ModeGlobal) allocate nothing — not in the dispatch path, not in the
// kernels. testing.Benchmark measures the whole request round-trip through
// the client, so a regression anywhere in the hot path fails this test.
func TestServeWarmRequestAllocFree(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a 5k-node session")
	}
	srv := NewServer(Options{RepairMode: repair.ModeGlobal})
	defer srv.Close()
	spec := graph.GeneratorSpec{Kind: "gnp-avg", N: 5000, P: 8, Seed: 3}
	cl := srv.NewClient()
	var resp Response
	if err := cl.Do(&Request{Op: OpOpen, Session: "g", Spec: &spec}, &resp); err != nil {
		t.Fatal(err)
	}
	if err := cl.Do(&Request{Op: OpColor, Session: "g", Algorithm: "relaxed", Seed: 5}, &resp); err != nil {
		t.Fatal(err)
	}
	dirty := []graph.NodeID{10, 500, 1500, 2500, 3500, 4500}

	// Warm every lazy path: checker, repair session, scratch buffers.
	for i := 0; i < 3; i++ {
		if err := cl.Do(&Request{Op: OpVerify, Session: "g"}, &resp); err != nil {
			t.Fatal(err)
		}
		if err := cl.Do(&Request{Op: OpRecolor, Session: "g", Dirty: dirty, Seed: uint64(20 + i)}, &resp); err != nil {
			t.Fatal(err)
		}
	}

	verifyReq := Request{Op: OpVerify, Session: "g"}
	verifyRes := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := cl.Do(&verifyReq, &resp); err != nil {
				b.Fatal(err)
			}
		}
	})
	if allocs := verifyRes.AllocsPerOp(); allocs != 0 {
		t.Errorf("warm verify request: %d allocs/op, want 0", allocs)
	}

	recolorReq := Request{Op: OpRecolor, Session: "g", Dirty: dirty}
	recolorRes := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			recolorReq.Seed++
			if err := cl.Do(&recolorReq, &resp); err != nil {
				b.Fatal(err)
			}
		}
	})
	if allocs := recolorRes.AllocsPerOp(); allocs != 0 {
		t.Errorf("warm recolor request (global mode, explicit dirty): %d allocs/op, want 0", allocs)
	}
}
