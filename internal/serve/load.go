package serve

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"d2color/internal/graph"
	"d2color/internal/repair"
)

// LoadSpec describes one closed-loop load mix: a session population, a
// request mix over it, and a concurrency level. The schedule is
// deterministic (one SplitMix64 stream per worker, seeded from Seed), so two
// runs of the same spec issue byte-identical request sequences — only the
// measured latencies are machine-dependent.
type LoadSpec struct {
	// Mix names the workload for reports ("many-small/query", ...).
	Mix string
	// Sessions is the session population; Family/N/Deg describe each
	// session's graph ("ba" → BarabasiAlbert(N, Deg), "gnp" → average
	// degree Deg, "unitdisk" → radius Deg). Session i gets seed Seed+i.
	Sessions int
	Family   string
	N        int
	Deg      float64
	// Algorithm colors the sessions (registry name; default "relaxed").
	Algorithm string
	// Requests is the total closed-loop request count, split evenly across
	// Concurrency workers.
	Requests    int
	Concurrency int
	// The op mix: VerifyFraction of requests verify, RecolorFraction run a
	// churn epoch (Corrupt corrupted colors each), and the remainder are
	// color requests drawing their seed from ColorSeeds distinct values
	// (1 = the same coloring re-requested every time — the read-shaped
	// query the batch coalescer collapses).
	VerifyFraction  float64
	RecolorFraction float64
	Corrupt         int
	ColorSeeds      int
	// Hot skews the session pick: this fraction of requests target session 0
	// (the rest draw uniformly), modeling the hot-key skew of real query
	// traffic — and the condition under which same-session requests pile into
	// one dispatch window and coalesce.
	Hot  float64
	Seed uint64
	// Server shape.
	Unbatched bool
	BatchMax  int
	Budget    int64
	Mode      repair.Mode
	Parallel  bool
	Workers   int
	// Overload shape (RunLoad's in-process server; remote servers bring their
	// own): per-session queue depth, in-flight byte budget, and the
	// consecutive-panic quarantine threshold (all 0 = serve defaults).
	QueueDepth      int
	InflightBudget  int64
	QuarantineAfter int
	// DeadlineMillis attaches a per-request deadline to every load request
	// (0: none).
	DeadlineMillis int64
	// Retries caps client-side retries of transiently rejected requests —
	// the 503 family (overloaded/draining/quarantined) and deadline cancels.
	// Each retry backs off exponentially from RetryBase (0: 200µs), capped at
	// 16× and jittered from a dedicated seeded stream, so retry timing never
	// perturbs the deterministic request schedule. 0 disables retries.
	Retries   int
	RetryBase time.Duration
	// Chaos configures fault injection: transport-side faults (delays,
	// deadline storms) wrap every worker transport in a ChaosTransport;
	// PanicFraction additionally installs PanicPlan as the in-process
	// server's ChaosPanic hook.
	Chaos ChaosOptions
}

func (s LoadSpec) algorithm() string {
	if s.Algorithm == "" {
		return "relaxed"
	}
	return s.Algorithm
}

func (s LoadSpec) colorSeeds() uint64 {
	if s.ColorSeeds <= 0 {
		return 1
	}
	return uint64(s.ColorSeeds)
}

// sessionSpec is the generator spec of session i.
func (s LoadSpec) sessionSpec(i int) *graph.GeneratorSpec {
	spec := &graph.GeneratorSpec{N: s.N, Seed: int64(s.Seed) + int64(i)}
	switch s.Family {
	case "gnp":
		spec.Kind, spec.P = "gnp-avg", s.Deg
	case "unitdisk":
		spec.Kind, spec.P = "unitdisk", s.Deg
	default:
		spec.Kind, spec.Degree = "ba", int(s.Deg)
	}
	return spec
}

// LoadReport is the outcome of one load run. Latency quantiles are measured
// per request at the transport boundary (closed loop: a worker issues its
// next request only after the previous response).
type LoadReport struct {
	Mix         string        `json:"mix"`
	Sessions    int           `json:"sessions"`
	Nodes       int           `json:"nodes"`
	Requests    int           `json:"requests"`
	Concurrency int           `json:"concurrency"`
	Unbatched   bool          `json:"unbatched,omitempty"`
	Errors      int           `json:"errors"`
	Reopens     int           `json:"reopens"`
	Elapsed     time.Duration `json:"elapsed"`

	P50 time.Duration `json:"p50"`
	P95 time.Duration `json:"p95"`
	P99 time.Duration `json:"p99"`
	Max time.Duration `json:"max"`

	// Overload outcome, client-side. Retried counts retry attempts issued
	// (a request shed then accepted on retry contributes to Retried but not
	// Shed); Canceled counts requests whose final outcome after retries was
	// ErrCanceled, Shed those finally rejected for load reasons (the 503
	// family, or an eviction-churn race that outlived every reopen+retry).
	// The Accepted percentiles cover only ultimately-successful requests,
	// timed end-to-end including their retries and backoff — the tail a
	// well-behaved client actually sees under overload (the plain P50/P95/P99
	// above include rejected requests, whose fast 503s drag the distribution
	// down).
	Retried     int           `json:"retried,omitempty"`
	Shed        int           `json:"shed,omitempty"`
	Canceled    int           `json:"canceled,omitempty"`
	AcceptedP50 time.Duration `json:"acceptedP50,omitempty"`
	AcceptedP95 time.Duration `json:"acceptedP95,omitempty"`
	AcceptedP99 time.Duration `json:"acceptedP99,omitempty"`

	// Server-side overload counters (from the stats op after the run).
	ServerShed   int64 `json:"serverShed,omitempty"`
	ServerPanics int64 `json:"serverPanics,omitempty"`
	Quarantined  int64 `json:"quarantined,omitempty"`

	RequestsPerSec float64 `json:"requestsPerSec"`
	// Colorings counts full-coloring responses served (color requests,
	// including coalesced ones and cache-miss reopens); ColoringsPerSec is
	// the sustained rate over the run.
	Colorings       int     `json:"colorings"`
	ColoringsPerSec float64 `json:"coloringsPerSec"`
	// RecoloredNodes sums Response.Recolored over churn epochs.
	RecoloredNodes int64 `json:"recoloredNodes"`

	// Server-side counters (from the stats op after the run).
	MeanBatch float64 `json:"meanBatch"`
	Coalesced int64   `json:"coalesced"`
	Evictions int64   `json:"evictions"`
}

// splitmix64 is the load driver's per-worker schedule stream (the same
// generator the fault injector uses).
type splitmix64 struct{ state uint64 }

func (r *splitmix64) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *splitmix64) float64() float64 { return float64(r.next()>>11) / (1 << 53) }

func (r *splitmix64) intn(n int) int {
	if n <= 1 {
		return 0
	}
	return int(r.next() % uint64(n))
}

// RunLoad builds an in-process server shaped by the spec, replays the mix
// against it with per-worker Clients, and tears it down.
func RunLoad(spec LoadSpec) (LoadReport, error) {
	srv := NewServer(Options{
		ResidentBudget:  spec.Budget,
		Unbatched:       spec.Unbatched,
		BatchMax:        spec.BatchMax,
		RepairMode:      spec.Mode,
		Parallel:        spec.Parallel,
		Workers:         spec.Workers,
		QueueDepth:      spec.QueueDepth,
		InflightBudget:  spec.InflightBudget,
		QuarantineAfter: spec.QuarantineAfter,
		ChaosPanic:      PanicPlan(spec.Chaos.Seed, spec.Chaos.PanicFraction),
	})
	defer srv.Close()
	return RunLoadWith(func() Transport { return srv.NewClient() }, spec)
}

// RunLoadWith replays the mix through caller-supplied transports (one per
// worker) — the entry point cmd/d2load uses to drive a remote HTTP server
// with the identical schedule.
func RunLoadWith(newTransport func() Transport, spec LoadSpec) (LoadReport, error) {
	if spec.Sessions <= 0 || spec.Requests <= 0 {
		return LoadReport{}, fmt.Errorf("serve: load spec needs sessions and requests")
	}
	if spec.Concurrency <= 0 {
		spec.Concurrency = 1
	}
	setup := newTransport()
	var resp Response
	for i := 0; i < spec.Sessions; i++ {
		req := Request{Op: OpOpen, Session: sessionKey(i), Spec: spec.sessionSpec(i)}
		if err := setup.Do(&req, &resp); err != nil {
			return LoadReport{}, fmt.Errorf("serve: load setup open %s: %w", req.Session, err)
		}
		req = Request{Op: OpColor, Session: sessionKey(i), Algorithm: spec.algorithm(), Seed: spec.Seed}
		if err := setup.Do(&req, &resp); err != nil {
			return LoadReport{}, fmt.Errorf("serve: load setup color %s: %w", req.Session, err)
		}
	}

	workers := make([]*loadWorker, spec.Concurrency)
	per := spec.Requests / spec.Concurrency
	extra := spec.Requests % spec.Concurrency
	for w := range workers {
		n := per
		if w < extra {
			n++
		}
		tr := newTransport()
		if spec.Chaos.transportActive() {
			// One chaos stream per worker, disjoint from the schedule stream:
			// injected faults never perturb which requests are issued.
			tr = NewChaosTransport(tr, spec.Chaos.forWorker(w))
		}
		workers[w] = &loadWorker{
			spec:      spec,
			transport: tr,
			rng:       splitmix64{state: spec.Seed ^ (uint64(w+1) * 0xa5a5a5a5a5a5a5a5)},
			jitter:    splitmix64{state: spec.Seed ^ (uint64(w+1) * 0xc6a4a7935bd1e995)},
			budget:    n,
			latencies: make([]time.Duration, 0, n),
		}
	}
	start := time.Now()
	done := make(chan struct{})
	for _, w := range workers {
		go func(w *loadWorker) {
			w.run()
			done <- struct{}{}
		}(w)
	}
	for range workers {
		<-done
	}
	elapsed := time.Since(start)

	rep := LoadReport{
		Mix:         spec.Mix,
		Sessions:    spec.Sessions,
		Nodes:       spec.N,
		Concurrency: spec.Concurrency,
		Unbatched:   spec.Unbatched,
		Elapsed:     elapsed,
	}
	var all, accepted []time.Duration
	for _, w := range workers {
		all = append(all, w.latencies...)
		accepted = append(accepted, w.accepted...)
		rep.Requests += len(w.latencies)
		rep.Errors += w.errors
		rep.Reopens += w.reopens
		rep.Colorings += w.colorings
		rep.RecoloredNodes += w.recolored
		rep.Retried += w.retried
		rep.Shed += w.shed
		rep.Canceled += w.canceled
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	rep.P50 = quantile(all, 0.50)
	rep.P95 = quantile(all, 0.95)
	rep.P99 = quantile(all, 0.99)
	if len(all) > 0 {
		rep.Max = all[len(all)-1]
	}
	sort.Slice(accepted, func(i, j int) bool { return accepted[i] < accepted[j] })
	rep.AcceptedP50 = quantile(accepted, 0.50)
	rep.AcceptedP95 = quantile(accepted, 0.95)
	rep.AcceptedP99 = quantile(accepted, 0.99)
	if secs := elapsed.Seconds(); secs > 0 {
		rep.RequestsPerSec = float64(rep.Requests) / secs
		rep.ColoringsPerSec = float64(rep.Colorings) / secs
	}
	// Server-side counters via the stats op — works identically for the
	// in-process and remote transports.
	statsReq := Request{Op: OpStats}
	if err := setup.Do(&statsReq, &resp); err == nil && resp.Stats != nil {
		var reqs, batches int64
		for _, ss := range resp.Stats.Sessions {
			reqs += ss.Requests
			batches += ss.Batches
			rep.Coalesced += ss.Coalesced
		}
		if batches > 0 {
			rep.MeanBatch = float64(reqs) / float64(batches)
		}
		rep.Evictions = resp.Stats.Evicted
		rep.ServerShed = resp.Stats.Shed
		rep.ServerPanics = resp.Stats.Panics
		rep.Quarantined = resp.Stats.Quarantined
	}
	return rep, nil
}

func sessionKey(i int) string { return fmt.Sprintf("s%d", i) }

func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// loadWorker is one closed-loop client: it issues its request budget
// sequentially, reopening evicted sessions (the cache-miss path) and
// recording one latency per request.
type loadWorker struct {
	spec      LoadSpec
	transport Transport
	rng       splitmix64 // schedule stream: which requests to issue
	jitter    splitmix64 // backoff stream: retry jitter only, never the schedule
	budget    int

	latencies []time.Duration
	accepted  []time.Duration // latencies of ultimately-successful requests
	errors    int
	reopens   int
	colorings int
	recolored int64
	retried   int
	shed      int
	canceled  int
}

func (w *loadWorker) run() {
	var req Request
	var resp Response
	for i := 0; i < w.budget; i++ {
		idx := 0
		if w.rng.float64() >= w.spec.Hot {
			idx = w.rng.intn(w.spec.Sessions)
		}
		ses := sessionKey(idx)
		r := w.rng.float64()
		switch {
		case r < w.spec.VerifyFraction:
			req = Request{Op: OpVerify, Session: ses}
		case r < w.spec.VerifyFraction+w.spec.RecolorFraction:
			corrupt := w.spec.Corrupt
			if corrupt <= 0 {
				corrupt = 1
			}
			req = Request{Op: OpRecolor, Session: ses, Corrupt: corrupt, Seed: w.rng.next()}
		default:
			seed := w.spec.Seed + w.rng.next()%w.spec.colorSeeds()
			req = Request{Op: OpColor, Session: ses, Algorithm: w.spec.algorithm(), Seed: seed}
		}
		req.DeadlineMillis = w.spec.DeadlineMillis
		start := time.Now()
		err := w.attempt(&req, &resp, ses)
		for retry := 0; retry < w.spec.Retries && transientError(err); retry++ {
			// Transient rejection (503 family, deadline cancel, or an
			// eviction-churn race): back off with capped exponential + jitter,
			// then retry. The jitter draws come from a stream disjoint from
			// the schedule stream, so retry timing never changes which
			// requests this worker issues.
			w.retried++
			w.backoff(retry)
			err = w.attempt(&req, &resp, ses)
		}
		lat := time.Since(start)
		w.latencies = append(w.latencies, lat)
		if err != nil {
			w.errors++
			switch {
			case errors.Is(err, ErrCanceled):
				w.canceled++
			case transientError(err):
				w.shed++
			}
			continue
		}
		w.accepted = append(w.accepted, lat)
		switch req.Op {
		case OpColor:
			w.colorings++
		case OpRecolor:
			w.recolored += int64(resp.Recolored)
		}
	}
}

// attempt is one issue of the request, including the reopen-on-cache-miss
// path (an evicted or quarantined session looks like one that never existed).
func (w *loadWorker) attempt(req *Request, resp *Response, ses string) error {
	err := w.transport.Do(req, resp)
	for attempt := 0; errors.Is(err, ErrUnknownSession) && attempt < 3; attempt++ {
		// The session was evicted under the resident budget: reopen and
		// recolor it — the cold path a cache miss costs a real client —
		// then retry, all inside this request's latency window.
		ok, reopenErr := w.reopen(ses)
		if !ok {
			if retryableError(reopenErr) {
				// The reopen itself was rejected transiently (e.g. the recolor
				// shed against a full queue): surface that instead of the
				// unknown-session it caused, so the outer backoff loop retries
				// the whole request rather than giving up on the session.
				return reopenErr
			}
			break
		}
		w.reopens++
		err = w.transport.Do(req, resp)
	}
	return err
}

// retryableError matches the outcomes a client-side retry can fix: transient
// 503s, deadline cancels, and the not-colored window while a concurrent
// worker's reopen has re-created the session but its initial color is still
// in flight. Unknown-session is handled by reopen inside attempt, and hard
// errors (bad request, closed server) never retry.
func retryableError(err error) bool {
	return errors.Is(err, ErrOverloaded) || errors.Is(err, ErrDraining) ||
		errors.Is(err, ErrQuarantined) || errors.Is(err, ErrCanceled) ||
		errors.Is(err, ErrNotColored)
}

// transientError additionally covers an unknown-session that survived the
// reopen attempts — under heavy eviction churn the reopened session can be
// evicted again before the request lands, and a fresh backoff + reopen cycle
// is exactly what a real client would do.
func transientError(err error) bool {
	return retryableError(err) || errors.Is(err, ErrUnknownSession)
}

// backoff sleeps the capped exponential delay for the given retry ordinal:
// base·2^retry capped at 16·base, scaled by a jitter factor in [0.5, 1.5).
func (w *loadWorker) backoff(retry int) {
	base := w.spec.RetryBase
	if base <= 0 {
		base = 200 * time.Microsecond
	}
	d := base << uint(retry)
	if max := 16 * base; d > max {
		d = max
	}
	time.Sleep(time.Duration((0.5 + w.jitter.float64()) * float64(d)))
}

// reopen rebuilds an evicted session (open + initial color). A concurrent
// worker may win the race; ErrSessionExists means the session is back either
// way. On failure it reports the blocking error so the caller can tell a
// transient rejection (shed recolor under overload) from a hard one.
func (w *loadWorker) reopen(ses string) (bool, error) {
	var resp Response
	idx := 0
	fmt.Sscanf(ses, "s%d", &idx)
	req := Request{Op: OpOpen, Session: ses, Spec: w.spec.sessionSpec(idx)}
	if err := w.transport.Do(&req, &resp); err != nil && !errors.Is(err, ErrSessionExists) {
		return false, err
	}
	req = Request{Op: OpColor, Session: ses, Algorithm: w.spec.algorithm(), Seed: w.spec.Seed}
	if err := w.transport.Do(&req, &resp); err != nil && !errors.Is(err, ErrUnknownSession) {
		return false, err
	}
	return true, nil
}

// estimateSessionBytes mirrors the server's admission estimate (the
// graphgen closed forms plus the unpacked working coloring) so the standard
// mixes can size eviction-exercising budgets deterministically.
func estimateSessionBytes(n int, m float64) int64 {
	return int64(graph.EstimateResidency(float64(n), m).Total()) + int64(8*n)
}

// StandardMixes returns the four named reference mixes of experiment E13 —
// {many-small-graphs, one-huge-graph} × {query-heavy, churn-heavy} — at full
// or quick scale. The many-small mixes run under a resident budget of ~70%
// of the population, so LRU eviction and the reopen cold path are part of
// the measured distribution; the one-huge mixes hold a single resident
// session and measure pure warm-path latency.
func StandardMixes(quick bool) []LoadSpec {
	smallN, smallSessions, smallReqs := 2000, 12, 4000
	hugeN, hugeReqs := 30000, 1500
	conc := 8
	churnReqs, hugeChurnReqs := 1500, 600
	if quick {
		smallN, smallSessions, smallReqs = 600, 6, 400
		hugeN, hugeReqs = 4000, 250
		conc = 4
		churnReqs, hugeChurnReqs = 250, 120
	}
	const baM = 3
	smallEdges := float64(baM*(baM+1)/2 + (smallN-baM-1)*baM)
	smallBudget := estimateSessionBytes(smallN, smallEdges) * int64(smallSessions) * 7 / 10
	return []LoadSpec{
		{
			Mix: "many-small/query", Sessions: smallSessions, Family: "ba", N: smallN, Deg: baM,
			Requests: smallReqs, Concurrency: conc,
			VerifyFraction: 0.82, RecolorFraction: 0.06, Corrupt: 4, ColorSeeds: 1, Hot: 0.5,
			Seed: 1, Budget: smallBudget, Mode: repair.ModeLocal,
		},
		{
			Mix: "many-small/churn", Sessions: smallSessions, Family: "ba", N: smallN, Deg: baM,
			Requests: churnReqs, Concurrency: conc,
			VerifyFraction: 0.15, RecolorFraction: 0.78, Corrupt: 8, ColorSeeds: 4,
			Seed: 2, Budget: smallBudget, Mode: repair.ModeLocal,
		},
		{
			Mix: "one-huge/query", Sessions: 1, Family: "gnp", N: hugeN, Deg: 8,
			Requests: hugeReqs, Concurrency: conc,
			VerifyFraction: 0.9, RecolorFraction: 0.06, Corrupt: 16, ColorSeeds: 1,
			Seed: 3, Mode: repair.ModeGlobal,
		},
		{
			Mix: "one-huge/churn", Sessions: 1, Family: "gnp", N: hugeN, Deg: 8,
			Requests: hugeChurnReqs, Concurrency: conc,
			VerifyFraction: 0.12, RecolorFraction: 0.84, Corrupt: 32, ColorSeeds: 1,
			Seed: 4, Mode: repair.ModeGlobal,
		},
	}
}
