package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
)

// Transport is the wire-agnostic request interface the load driver runs
// against: the in-process *Client implements it (zero-copy, zero-alloc), and
// HTTPTransport implements it over HTTP/JSON. Implementations need not be
// safe for concurrent use; the driver creates one per worker.
type Transport interface {
	Do(req *Request, resp *Response) error
}

// errorCode maps a sentinel error to a stable wire code (and HTTP status),
// so remote clients can discriminate the same way in-process callers errors.Is.
func errorCode(err error) (code string, status int) {
	switch {
	case err == nil:
		return "", http.StatusOK
	case errors.Is(err, ErrUnknownSession):
		return "unknown-session", http.StatusNotFound
	case errors.Is(err, ErrSessionExists):
		return "session-exists", http.StatusConflict
	case errors.Is(err, ErrNotColored):
		return "not-colored", http.StatusConflict
	case errors.Is(err, ErrNotD2):
		return "not-d2", http.StatusConflict
	case errors.Is(err, ErrServerClosed):
		return "server-closed", http.StatusServiceUnavailable
	case errors.Is(err, ErrOverloaded):
		return "overloaded", http.StatusServiceUnavailable
	case errors.Is(err, ErrDraining):
		return "draining", http.StatusServiceUnavailable
	case errors.Is(err, ErrQuarantined):
		return "quarantined", http.StatusServiceUnavailable
	case errors.Is(err, ErrCanceled):
		return "canceled", http.StatusGatewayTimeout
	case errors.Is(err, ErrPanicked):
		return "panic", http.StatusInternalServerError
	case errors.Is(err, ErrBadRequest):
		return "bad-request", http.StatusBadRequest
	default:
		return "internal", http.StatusInternalServerError
	}
}

// retryable reports whether a wire code marks a transient rejection worth a
// client-side backoff-and-retry (the 503 family: the request was never
// executed, the server just refused it right now).
func retryable(code string) bool {
	switch code {
	case "overloaded", "draining", "quarantined":
		return true
	}
	return false
}

// codeError maps a wire code back to its sentinel (the reverse of errorCode);
// unknown codes surface the remote message verbatim.
func codeError(code, message string) error {
	switch code {
	case "":
		return nil
	case "unknown-session":
		return ErrUnknownSession
	case "session-exists":
		return ErrSessionExists
	case "not-colored":
		return ErrNotColored
	case "not-d2":
		return ErrNotD2
	case "server-closed":
		return ErrServerClosed
	case "overloaded":
		return ErrOverloaded
	case "draining":
		return ErrDraining
	case "quarantined":
		return ErrQuarantined
	case "canceled":
		return ErrCanceled
	case "panic":
		return ErrPanicked
	case "bad-request":
		return ErrBadRequest
	default:
		return fmt.Errorf("serve: remote error: %s", message)
	}
}

// wireError is the JSON error body.
type wireError struct {
	Code  string `json:"code"`
	Error string `json:"error"`
}

// NewHandler wraps a Server in an http.Handler:
//
//	POST /v1/do      one Request in, one Response out (JSON)
//	GET  /v1/stats   the Stats snapshot
//	GET  /healthz    liveness
func NewHandler(s *Server) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/do", func(w http.ResponseWriter, r *http.Request) {
		var req Request
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, fmt.Errorf("%w: %v", ErrBadRequest, err))
			return
		}
		var resp Response
		// The request context links cancellation: a client that disconnects
		// (or whose request deadline passes server-side) stops burning kernel
		// time within O(one simulated round).
		if err := s.DoContext(r.Context(), &req, &resp); err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, &resp)
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		st := s.Stats()
		writeJSON(w, http.StatusOK, &st)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		if s.Draining() {
			// Fail readiness the moment a drain starts, so load balancers
			// hand traffic off while in-flight work finishes.
			w.WriteHeader(http.StatusServiceUnavailable)
			io.WriteString(w, "draining\n")
			return
		}
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, "ok\n")
	})
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, err error) {
	code, status := errorCode(err)
	if retryable(code) {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, status, wireError{Code: code, Error: err.Error()})
}

// HTTPTransport drives a remote serve endpoint through the same Transport
// interface the in-process client satisfies, so the load driver measures a
// network deployment with the identical request schedule. Not safe for
// concurrent use (per-worker buffers); create one per load worker.
type HTTPTransport struct {
	base   string // e.g. "http://127.0.0.1:8080"
	client *http.Client
	buf    bytes.Buffer
}

// NewHTTPTransport builds a transport against base (scheme://host:port).
// client may be nil for http.DefaultClient.
func NewHTTPTransport(base string, client *http.Client) *HTTPTransport {
	if client == nil {
		client = http.DefaultClient
	}
	return &HTTPTransport{base: base, client: client}
}

// Do posts the request to /v1/do and decodes the response or error.
func (t *HTTPTransport) Do(req *Request, resp *Response) error {
	t.buf.Reset()
	if err := json.NewEncoder(&t.buf).Encode(req); err != nil {
		return err
	}
	httpResp, err := t.client.Post(t.base+"/v1/do", "application/json", &t.buf)
	if err != nil {
		return err
	}
	defer httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusOK {
		var we wireError
		if err := json.NewDecoder(httpResp.Body).Decode(&we); err != nil {
			return fmt.Errorf("serve: remote status %d", httpResp.StatusCode)
		}
		return codeError(we.Code, we.Error)
	}
	*resp = Response{}
	return json.NewDecoder(httpResp.Body).Decode(resp)
}
