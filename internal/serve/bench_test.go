package serve

import (
	"sync"
	"testing"
	"time"

	"d2color/internal/graph"
	"d2color/internal/repair"
)

// BenchmarkWarmVerifyRequest measures one warm verify round-trip through the
// client — the steady-state read path. Allocations must report 0.
func BenchmarkWarmVerifyRequest(b *testing.B) {
	srv := NewServer(Options{})
	defer srv.Close()
	spec := graph.GeneratorSpec{Kind: "gnp-avg", N: 10000, P: 8, Seed: 3}
	cl := srv.NewClient()
	var resp Response
	if err := cl.Do(&Request{Op: OpOpen, Session: "g", Spec: &spec}, &resp); err != nil {
		b.Fatal(err)
	}
	if err := cl.Do(&Request{Op: OpColor, Session: "g", Algorithm: "relaxed", Seed: 5}, &resp); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := cl.Do(&Request{Op: OpVerify, Session: "g"}, &resp); err != nil {
			b.Fatal(err)
		}
	}
	req := Request{Op: OpVerify, Session: "g"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := cl.Do(&req, &resp); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWarmRecolorRequest measures one warm explicit-dirty recolor
// round-trip on a global-mode server — the steady-state churn path.
// Allocations must report 0.
func BenchmarkWarmRecolorRequest(b *testing.B) {
	srv := NewServer(Options{RepairMode: repair.ModeGlobal})
	defer srv.Close()
	spec := graph.GeneratorSpec{Kind: "gnp-avg", N: 10000, P: 8, Seed: 3}
	cl := srv.NewClient()
	var resp Response
	if err := cl.Do(&Request{Op: OpOpen, Session: "g", Spec: &spec}, &resp); err != nil {
		b.Fatal(err)
	}
	if err := cl.Do(&Request{Op: OpColor, Session: "g", Algorithm: "relaxed", Seed: 5}, &resp); err != nil {
		b.Fatal(err)
	}
	dirty := []graph.NodeID{10, 1000, 3000, 5000, 7000, 9000}
	for i := 0; i < 3; i++ {
		if err := cl.Do(&Request{Op: OpRecolor, Session: "g", Dirty: dirty, Seed: uint64(20 + i)}, &resp); err != nil {
			b.Fatal(err)
		}
	}
	req := Request{Op: OpRecolor, Session: "g", Dirty: dirty, Seed: 100}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req.Seed++
		if err := cl.Do(&req, &resp); err != nil {
			b.Fatal(err)
		}
	}
}

// benchColorQuery drives one fixed same-session query block — 8 workers each
// issuing 16 same-(algorithm, seed) color requests plus verifies — per
// benchmark iteration, and reports requests/sec. With batching on, queued
// same-window requests coalesce onto one kernel pass; the unbatched twin
// below is the control arm. cmd/bench runs these with benchtime=1x, so the
// whole block is the measured unit.
func benchColorQuery(b *testing.B, unbatched bool) {
	srv := NewServer(Options{Unbatched: unbatched})
	defer srv.Close()
	spec := graph.GeneratorSpec{Kind: "ba", N: 600, Degree: 3, Seed: 2}
	var resp Response
	if err := srv.Do(&Request{Op: OpOpen, Session: "g", Spec: &spec}, &resp); err != nil {
		b.Fatal(err)
	}
	if err := srv.Do(&Request{Op: OpColor, Session: "g", Algorithm: "relaxed", Seed: 7}, &resp); err != nil {
		b.Fatal(err)
	}
	const workers = 8
	const perWorker = 16
	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				cl := srv.NewClient()
				var r Response
				for j := 0; j < perWorker; j++ {
					var err error
					if j%4 == 3 {
						err = cl.Do(&Request{Op: OpVerify, Session: "g"}, &r)
					} else {
						err = cl.Do(&Request{Op: OpColor, Session: "g", Algorithm: "relaxed", Seed: 7}, &r)
					}
					if err != nil {
						b.Error(err)
						return
					}
				}
			}(w)
		}
		wg.Wait()
	}
	b.StopTimer()
	elapsed := time.Since(start)
	if elapsed > 0 {
		b.ReportMetric(float64(b.N*workers*perWorker)/elapsed.Seconds(), "req/s")
	}
}

// BenchmarkServeColorQueryBatched is the batched arm of the same-session
// query-heavy throughput comparison.
func BenchmarkServeColorQueryBatched(b *testing.B) { benchColorQuery(b, false) }

// BenchmarkServeColorQueryUnbatched is the control arm: one request per
// worker wakeup, no coalescing.
func BenchmarkServeColorQueryUnbatched(b *testing.B) { benchColorQuery(b, true) }
