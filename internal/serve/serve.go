// Package serve is the long-lived serving plane: warm per-graph sessions
// behind a request API, the shape every reuse mechanism in the repository
// (Engine.Reset, pooled trial kernels, 0-alloc warmed verify, ball-confined
// repair) was built for but that the one-shot CLIs never exercise.
//
// A Server holds a cache of sessions keyed by client-chosen names. Each
// session owns a built CSR and, built lazily on first use, a resident warm
// trial kernel (and through it a congest.Engine), a pooled verify.Checker,
// and a repair.Session — and is driven by exactly one goroutine (per-session
// affinity), so the warm kernels run without any locking on the hot path.
// Requests against the same session that are queued at dispatch time are
// executed as one batch; read-shaped requests inside a batch window
// (verify, and repeat color requests with the same algorithm and seed) are
// coalesced into a single kernel pass, which is where batched dispatch beats
// unbatched on query-heavy mixes.
//
// The cache is bounded by a resident-bytes budget using the same closed-form
// estimates as `graphgen -estimate` (graph.EstimateResidency): opening a
// session past the budget evicts least-recently-used sessions first. Every
// evicted or closed session shuts its worker down and closes its kernels —
// the engine-close lifecycle tests pin that no goroutine or kernel outlives
// its session.
//
// Responses are byte-identical to direct library calls: a color request
// reports the same coloring hash, palette, and engine metrics as
// alg.Get(name).Run on a fresh graph; a recolor request matches a direct
// repair.Session fed the same fault script. Warm verify and recolor requests
// perform zero heap allocations (enforced the same way the trial and verify
// planes enforce it).
package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"d2color/internal/alg"
	"d2color/internal/coloring"
	"d2color/internal/congest"
	"d2color/internal/graph"
	"d2color/internal/repair"
)

// Op names a request operation.
type Op string

const (
	// OpOpen builds a session: generates the spec's graph and admits it into
	// the cache (evicting LRU sessions if the budget requires).
	OpOpen Op = "open"
	// OpColor runs a registry algorithm on the session's graph and installs
	// the result as the session's working coloring.
	OpColor Op = "color"
	// OpVerify checks the working coloring against the distance-2 constraint
	// on the warm checker. Zero allocations warm.
	OpVerify Op = "verify"
	// OpRecolor is a churn epoch: corrupt-and-repair (Corrupt > 0), repair an
	// explicit dirty set (Dirty), or a full Stabilize sweep (neither). Zero
	// allocations warm for the explicit-dirty global-mode path.
	OpRecolor Op = "recolor"
	// OpStats snapshots the server and per-session counters.
	OpStats Op = "stats"
	// OpClose tears one session down.
	OpClose Op = "close"
)

// Request is one operation against the server. The zero value of unused
// fields is fine; Session names the target for everything except OpStats
// (where it is optional and ignored).
type Request struct {
	Op      Op     `json:"op"`
	Session string `json:"session,omitempty"`
	// Spec describes the graph to build (OpOpen only).
	Spec *graph.GeneratorSpec `json:"spec,omitempty"`
	// Algorithm is a registry name (OpColor; default "relaxed").
	Algorithm string `json:"algorithm,omitempty"`
	Seed      uint64 `json:"seed,omitempty"`
	// Dirty is an explicit dirty set for OpRecolor.
	Dirty []graph.NodeID `json:"dirty,omitempty"`
	// Corrupt, for OpRecolor, corrupts this many uniformly chosen colors
	// (seeded by Seed) before repairing them — the fault-injection epoch.
	Corrupt int `json:"corrupt,omitempty"`
	// DeadlineMillis is an optional per-request deadline: once it elapses, a
	// queued request fails with ErrCanceled before touching a kernel, and an
	// executing request's kernels stop cooperatively within O(one simulated
	// round) and return ErrCanceled with whatever partial work was done
	// discarded. 0 (the default) means no deadline — and keeps the warm
	// dispatch path timer-free and allocation-free.
	DeadlineMillis int64 `json:"deadlineMillis,omitempty"`
}

// Response is the result of one request. It carries only scalars on the hot
// paths (the coloring hash stands in for the coloring itself), so filling it
// never allocates. Hash is FNV-64a over the per-node colors as 8-byte
// little-endian words — the registry golden's hash, comparable across
// serve/direct runs.
type Response struct {
	Op      Op     `json:"op"`
	Session string `json:"session,omitempty"`

	// OpOpen.
	Nodes          int   `json:"nodes,omitempty"`
	Edges          int   `json:"edges,omitempty"`
	EstimatedBytes int64 `json:"estimatedBytes,omitempty"`

	// OpColor / OpVerify / OpRecolor.
	Algorithm   string          `json:"algorithm,omitempty"`
	Hash        uint64          `json:"hash,omitempty"`
	PaletteSize int             `json:"paletteSize,omitempty"`
	ColorsUsed  int             `json:"colorsUsed,omitempty"`
	Valid       bool            `json:"valid,omitempty"`
	MaxColor    int             `json:"maxColor,omitempty"`
	Metrics     congest.Metrics `json:"metrics,omitzero"`

	// OpRecolor.
	Dirty      int  `json:"dirty,omitempty"`
	Ball       int  `json:"ball,omitempty"`
	Recolored  int  `json:"recolored,omitempty"`
	Phases     int  `json:"phases,omitempty"`
	Iterations int  `json:"iterations,omitempty"`
	Complete   bool `json:"complete,omitempty"`

	// OpStats.
	Stats *Stats `json:"stats,omitempty"`
}

// Sentinel errors; the HTTP layer maps them to codes and back, so a remote
// client can discriminate (e.g. reopen after ErrUnknownSession — an evicted
// session looks exactly like one that never existed).
var (
	ErrServerClosed   = errors.New("serve: server closed")
	ErrUnknownSession = errors.New("serve: unknown session")
	ErrSessionExists  = errors.New("serve: session already exists")
	ErrNotColored     = errors.New("serve: session has no working coloring yet (issue a color request first)")
	ErrNotD2          = errors.New("serve: session's working coloring is not a d2-coloring")
	ErrBadRequest     = errors.New("serve: bad request")
	// ErrOverloaded is the shed signal: the session's bounded queue is full,
	// or admitting the request would push the in-flight resident-bytes
	// estimate past Options.InflightBudget. The HTTP layer maps it to
	// 503 + Retry-After; clients back off and retry.
	ErrOverloaded = errors.New("serve: overloaded, retry later")
	// ErrDraining rejects new work while Server.Drain runs; the HTTP layer
	// maps it to 503 + Retry-After so a load balancer fails the instance over.
	ErrDraining = errors.New("serve: server draining")
	// ErrCanceled reports a request stopped by its deadline, a disconnected
	// HTTP client, or a drain hard-cancel — before or during kernel work.
	ErrCanceled = errors.New("serve: request canceled")
	// ErrPanicked reports that the session worker recovered a panic while
	// executing this request. Only the in-flight request fails; the session
	// survives unless the panic streak reaches Options.QuarantineAfter.
	ErrPanicked = errors.New("serve: request failed: worker panic")
	// ErrQuarantined reports that the session was evicted after too many
	// consecutive worker panics; queued requests are failed with it. The
	// session key is free again — clients reopen, as with any eviction.
	ErrQuarantined = errors.New("serve: session quarantined after repeated panics")
)

// Options configures a Server.
type Options struct {
	// ResidentBudget bounds the summed residency estimates of cached
	// sessions, in bytes; opening past it evicts least-recently-used
	// sessions first. 0 means unlimited. A single session larger than the
	// whole budget is still admitted (after evicting everything else):
	// refusing it would make the one-huge-graph workload unservable.
	ResidentBudget int64
	// BatchMax bounds how many queued same-session requests one dispatch
	// window executes; 0 means 64.
	BatchMax int
	// Unbatched disables the dispatch window entirely (one request per
	// wakeup, no coalescing) — the control arm of the batching benchmarks.
	Unbatched bool
	// Parallel/Workers select the sharded engine for the session kernels
	// (byte-identical results either way).
	Parallel bool
	Workers  int
	// RepairMode confines recolor requests (ModeLocal extracts the ball's
	// subgraph; ModeGlobal reuses the session's warm kernel — the
	// allocation-free path).
	RepairMode repair.Mode
	// QueueDepth bounds how many requests may be queued or executing against
	// one session at a time; a request arriving past the bound is shed with
	// ErrOverloaded instead of blocking its dispatcher. 0 means 1024.
	QueueDepth int
	// InflightBudget bounds the summed residency estimates of sessions with
	// work queued or executing, in bytes: a request that would wake an idle
	// session while the in-flight estimate already exceeds the budget is
	// shed with ErrOverloaded. Sessions with work in flight admit more
	// requests freely (their bytes are already resident and counted once).
	// A single session larger than the whole budget still gets work when
	// nothing else is in flight. 0 means unlimited.
	InflightBudget int64
	// QuarantineAfter is the consecutive-panic threshold after which a
	// session is quarantined: removed from the cache through the same
	// provably-closing shutdown path as an eviction, its queued requests
	// failed with ErrQuarantined. Any successfully served request resets the
	// streak. 0 means 3; negative disables quarantine.
	QuarantineAfter int
	// ChaosPanic is the chaos harness's fault hook: when set, the session
	// worker calls it just before executing each request and panics (inside
	// its recovery scope) when it returns true. Deterministic plans live in
	// chaos.go. Nil in production.
	ChaosPanic func(req *Request) bool
}

func (o Options) batchMax() int {
	if o.BatchMax <= 0 {
		return 64
	}
	return o.BatchMax
}

func (o Options) queueDepth() int {
	if o.QueueDepth <= 0 {
		return 1024
	}
	return o.QueueDepth
}

func (o Options) quarantineAfter() int {
	if o.QuarantineAfter == 0 {
		return 3
	}
	return o.QuarantineAfter
}

// Server is the session cache plus dispatcher. All methods are safe for
// concurrent use.
type Server struct {
	opts Options

	mu       sync.RWMutex
	closed   bool
	sessions map[string]*session

	clock    atomic.Int64 // LRU recency ticks
	estTotal atomic.Int64 // summed residency estimates of cached sessions

	opened    atomic.Int64
	evicted   atomic.Int64
	shutdowns atomic.Int64 // workers fully shut down (kernels closed)
	requests  atomic.Int64

	// Overload/failure plane counters and state.
	shed          atomic.Int64 // requests rejected with ErrOverloaded
	canceled      atomic.Int64 // requests that ended in ErrCanceled
	panics        atomic.Int64 // worker panics recovered
	quarantined   atomic.Int64 // sessions evicted by the panic quarantine
	inflight      atomic.Int64 // session requests dispatched, not yet answered
	inflightBytes atomic.Int64 // summed est of sessions with work in flight
	draining      atomic.Bool  // Drain started: admission rejects new work
	hardCancel    atomic.Bool  // Drain deadline passed: cancel all in-flight work

	wg       sync.WaitGroup
	callPool sync.Pool
}

// NewServer builds an empty server.
func NewServer(opts Options) *Server {
	s := &Server{opts: opts, sessions: make(map[string]*session)}
	s.callPool.New = func() any { return newCall() }
	return s
}

// call is the envelope a request travels in: pre-allocated (pooled or owned
// by a Client), so enqueueing is allocation-free.
//
// cancel, when non-nil, is the request's cooperative cancel flag. It is a
// pointer to a flag owned by this request — not a flag embedded in the call —
// so a late time.AfterFunc or context.AfterFunc callback can only ever touch
// its own request's flag, never a pooled call already reused by the next one.
// Entry points reset the pointer before dispatch; the deadline path composes
// onto an already-installed flag (DoContext's context link) instead of
// replacing it.
type call struct {
	req      *Request
	resp     *Response
	err      error
	shutdown bool // sentinel: drain, close kernels, exit
	cancel   atomic.Pointer[atomic.Bool]
	done     chan struct{}
}

func newCall() *call {
	return &call{done: make(chan struct{}, 1)}
}

// Client is a per-goroutine handle whose Do is allocation-free once warm: it
// owns a reusable call envelope. A Client must not be used concurrently;
// create one per goroutine (they are cheap).
type Client struct {
	srv *Server
	c   call
}

// NewClient returns a dedicated client handle for hot request loops.
func (s *Server) NewClient() *Client {
	cl := &Client{srv: s}
	cl.c.done = make(chan struct{}, 1)
	return cl
}

// Do executes one request, filling resp (cleared first). resp must outlive
// the call only; the client may reuse both req and resp immediately after.
func (cl *Client) Do(req *Request, resp *Response) error {
	c := &cl.c
	c.req, c.resp, c.err = req, resp, nil
	c.cancel.Store(nil) // drop any stale flag from a previous deadline
	return cl.srv.dispatch(c)
}

// Do executes one request using a pooled envelope — the convenience entry
// point for control-plane callers and the HTTP layer. Hot loops should
// prefer a Client.
func (s *Server) Do(req *Request, resp *Response) error {
	c := s.callPool.Get().(*call)
	c.req, c.resp, c.err = req, resp, nil
	c.cancel.Store(nil)
	err := s.dispatch(c)
	c.req, c.resp = nil, nil
	s.callPool.Put(c)
	return err
}

// DoContext is Do with a cancellation link: once ctx is done, the request's
// cancel flag trips and the worker abandons it cooperatively (ErrCanceled) —
// the HTTP layer uses it so a disconnected client stops burning kernel time.
// It always uses a fresh (non-pooled) envelope: the context callback may run
// after DoContext returns, and must never touch a reused call.
func (s *Server) DoContext(ctx context.Context, req *Request, resp *Response) error {
	if ctx == nil || ctx.Done() == nil {
		return s.Do(req, resp)
	}
	c := newCall()
	c.req, c.resp = req, resp
	flag := new(atomic.Bool)
	c.cancel.Store(flag)
	stop := context.AfterFunc(ctx, func() { flag.Store(true) })
	defer stop()
	return s.dispatch(c)
}

func (s *Server) dispatch(c *call) error {
	s.requests.Add(1)
	req, resp := c.req, c.resp
	*resp = Response{Op: req.Op, Session: req.Session}
	switch req.Op {
	case OpOpen:
		return s.open(req, resp)
	case OpClose:
		return s.closeSession(req.Session)
	case OpStats:
		resp.Stats = s.statsSnapshot()
		return nil
	case OpColor, OpVerify, OpRecolor:
	default:
		return fmt.Errorf("%w: unknown op %q", ErrBadRequest, req.Op)
	}
	// Session ops. The in-flight count brackets everything from admission to
	// answer, and is incremented before the draining check: Drain first sets
	// draining, then polls inflight to zero, so every request that slipped
	// past the draining check is already visible to the poll — no waiter is
	// ever stranded by a drain.
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	// Look up and enqueue while holding the read lock, so an evictor (which
	// takes the write lock before sending the shutdown sentinel) can never
	// observe the session in the map while a sender is still about to
	// enqueue. The wait itself happens lock-free.
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return ErrServerClosed
	}
	if s.draining.Load() {
		s.mu.RUnlock()
		return ErrDraining
	}
	ses := s.sessions[req.Session]
	if ses == nil {
		s.mu.RUnlock()
		return ErrUnknownSession
	}
	ses.lastUsed.Store(s.clock.Add(1))
	// Admission control. pending counts this session's queued-or-executing
	// requests; the first one in also charges the session's residency
	// estimate to the server-wide in-flight bytes. Both shed paths undo
	// their increment before rejecting.
	p := ses.pending.Add(1)
	if p == 1 {
		s.inflightBytes.Add(ses.est)
	}
	if p > int64(s.opts.queueDepth()) {
		s.shedLocked(ses)
		return ErrOverloaded
	}
	if b := s.opts.InflightBudget; b > 0 && p == 1 {
		// Waking an idle session must fit the in-flight byte budget — unless
		// this session alone exceeds it and nothing else is in flight
		// (mirroring the resident budget's one-huge-graph rule).
		if total := s.inflightBytes.Load(); total > b && total > ses.est {
			s.shedLocked(ses)
			return ErrOverloaded
		}
	}
	// The send cannot block: pending ≤ queueDepth is enforced above and the
	// channel has queueDepth+1 capacity — the spare slot keeps the shutdown
	// sentinel's lock-held send non-blocking too (see evictLRULocked).
	ses.reqs <- c
	s.mu.RUnlock()

	// A deadline arms a timer against the request's cancel flag. Composes
	// with a flag DoContext already installed; allocates only on this path,
	// so deadline-free warm requests stay 0 allocs/op.
	if req.DeadlineMillis > 0 {
		flag := c.cancel.Load()
		if flag == nil {
			flag = new(atomic.Bool)
			c.cancel.Store(flag)
		}
		timer := time.AfterFunc(time.Duration(req.DeadlineMillis)*time.Millisecond,
			func() { flag.Store(true) })
		<-c.done
		timer.Stop()
		return c.err
	}
	<-c.done
	return c.err
}

// shedLocked undoes an admission increment and accounts one shed request.
// Caller holds s.mu.RLock (released here).
func (s *Server) shedLocked(ses *session) {
	if ses.pending.Add(-1) == 0 {
		s.inflightBytes.Add(-ses.est)
	}
	ses.nShed.Add(1)
	s.shed.Add(1)
	s.mu.RUnlock()
}

// open generates the spec's graph, admits the session under the budget
// (evicting LRU sessions as needed), and starts its worker.
func (s *Server) open(req *Request, resp *Response) error {
	if req.Session == "" {
		return fmt.Errorf("%w: open needs a session name", ErrBadRequest)
	}
	if req.Spec == nil {
		return fmt.Errorf("%w: open needs a graph spec", ErrBadRequest)
	}
	g, err := req.Spec.Generate()
	if err != nil {
		return err
	}
	n, m := g.NumNodes(), g.NumEdges()
	// The closed-form estimate `graphgen -estimate` prints, plus the 8-byte
	// working coloring sessions keep unpacked for repair.
	est := int64(graph.EstimateResidency(float64(n), float64(m)).Total()) + int64(8*n)

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrServerClosed
	}
	if s.draining.Load() {
		s.mu.Unlock()
		return ErrDraining
	}
	if _, ok := s.sessions[req.Session]; ok {
		s.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrSessionExists, req.Session)
	}
	if budget := s.opts.ResidentBudget; budget > 0 {
		for s.estTotal.Load()+est > budget && len(s.sessions) > 0 {
			s.evictLRULocked()
		}
	}
	ses := &session{
		srv: s,
		key: req.Session,
		g:   g,
		est: est,
		// One slot beyond the admission bound: dispatch sheds past
		// queueDepth pending requests, so the extra slot is reserved for the
		// shutdown sentinel — its lock-held send can never block on a full
		// queue (which would deadlock against a worker waiting for the same
		// lock to quarantine itself).
		reqs: make(chan *call, s.opts.queueDepth()+1),
	}
	ses.cancelFn = ses.canceledNow
	ses.lastUsed.Store(s.clock.Add(1))
	s.sessions[req.Session] = ses
	s.estTotal.Add(est)
	s.opened.Add(1)
	s.wg.Add(1)
	go ses.loop()
	s.mu.Unlock()

	resp.Nodes, resp.Edges, resp.EstimatedBytes = n, m, est
	return nil
}

// evictLRULocked removes the least-recently-used session from the map and
// sends its worker the shutdown sentinel. Caller holds s.mu.
func (s *Server) evictLRULocked() {
	var victim *session
	for _, ses := range s.sessions {
		if victim == nil || ses.lastUsed.Load() < victim.lastUsed.Load() {
			victim = ses
		}
	}
	if victim == nil {
		return
	}
	delete(s.sessions, victim.key)
	s.estTotal.Add(-victim.est)
	s.evicted.Add(1)
	// Holding the write lock guarantees no dispatcher is mid-enqueue, so
	// the sentinel is the last call the worker ever receives; it drains the
	// queue ahead of it, closes its kernels and exits. The send never
	// blocks: admission bounds pending requests to queueDepth and the
	// channel keeps one spare slot for exactly this sentinel.
	victim.reqs <- &call{shutdown: true, done: make(chan struct{}, 1)}
}

// removeQuarantined pulls ses out of the cache on behalf of its own worker
// after a panic streak. It returns true when the worker now owns the
// shutdown (drain the queue, close kernels, exit); false when an evictor or
// Close removed the session first — a sentinel is already queued (sentinel
// sends happen under the write lock, before this acquires it), and the
// worker proceeds normally until it reads it.
func (s *Server) removeQuarantined(ses *session) bool {
	s.mu.Lock()
	if s.sessions[ses.key] != ses {
		s.mu.Unlock()
		return false
	}
	delete(s.sessions, ses.key)
	s.estTotal.Add(-ses.est)
	s.quarantined.Add(1)
	s.mu.Unlock()
	return true
}

// closeSession tears one session down and waits for its worker to finish
// closing the kernels.
func (s *Server) closeSession(key string) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrServerClosed
	}
	ses, ok := s.sessions[key]
	if !ok {
		s.mu.Unlock()
		return ErrUnknownSession
	}
	delete(s.sessions, key)
	s.estTotal.Add(-ses.est)
	sentinel := &call{shutdown: true, done: make(chan struct{}, 1)}
	ses.reqs <- sentinel
	s.mu.Unlock()
	<-sentinel.done
	return nil
}

// Draining reports whether Drain has started; the HTTP layer flips /healthz
// to 503 on it so load balancers hand traffic off.
func (s *Server) Draining() bool { return s.draining.Load() }

// Drain gracefully winds the server down: it stops admitting new work
// (session ops and opens fail with ErrDraining; stats and closes still
// serve), waits for every in-flight request to finish, then closes the
// server. If ctx expires first, the remaining in-flight requests are
// hard-canceled — every kernel polls the drain flag between simulated
// rounds, so they unwind within O(one round) and their callers get
// ErrCanceled — and Drain returns ctx.Err() after the (now prompt) close.
// Either way, every session's worker has exited and every engine is closed
// when Drain returns. Idempotent; concurrent calls all block until the
// close completes.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	const poll = 200 * time.Microsecond
	for s.inflight.Load() > 0 {
		select {
		case <-ctx.Done():
			// Deadline: flip the server-wide hard-cancel every per-call
			// cancel check consults, then wait out the O(one round) unwind.
			s.hardCancel.Store(true)
			for s.inflight.Load() > 0 {
				time.Sleep(poll)
			}
			s.Close()
			return ctx.Err()
		default:
			time.Sleep(poll)
		}
	}
	s.Close()
	return nil
}

// Close shuts every session down (closing all kernels) and rejects further
// requests. It blocks until every worker has exited.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	for key, ses := range s.sessions {
		delete(s.sessions, key)
		s.estTotal.Add(-ses.est)
		ses.reqs <- &call{shutdown: true, done: make(chan struct{}, 1)}
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// SessionStats is one session's counter snapshot. QueueDepth is the number
// of requests queued or executing against the session at snapshot time;
// Shed/Canceled/Panics are the session's slices of the overload counters.
type SessionStats struct {
	Session         string `json:"session"`
	Nodes           int    `json:"nodes"`
	Edges           int    `json:"edges"`
	EstimatedBytes  int64  `json:"estimatedBytes"`
	Requests        int64  `json:"requests"`
	Color           int64  `json:"color"`
	Verify          int64  `json:"verify"`
	Recolor         int64  `json:"recolor"`
	Batches         int64  `json:"batches"`
	BatchedRequests int64  `json:"batchedRequests"`
	MaxBatch        int64  `json:"maxBatch"`
	Coalesced       int64  `json:"coalesced"`
	QueueDepth      int64  `json:"queueDepth"`
	Shed            int64  `json:"shed"`
	Canceled        int64  `json:"canceled"`
	Panics          int64  `json:"panics"`
}

// Stats is a point-in-time snapshot of the server counters — the payload of
// OpStats and of the expvar hook. The whole snapshot is assembled under one
// session read-lock acquisition, so the server-wide counters and the
// per-session rows describe a single consistent point: no open, eviction,
// quarantine or close can land between the fields (individual requests still
// tick atomics mid-snapshot — the lock is the structural consistency point,
// not a stop-the-world).
type Stats struct {
	Sessions         []SessionStats `json:"sessions"`
	Opened           int64          `json:"opened"`
	Evicted          int64          `json:"evicted"`
	Shutdown         int64          `json:"shutdown"` // workers fully exited, kernels closed
	Requests         int64          `json:"requests"`
	Shed             int64          `json:"shed"`
	Canceled         int64          `json:"canceled"`
	Panics           int64          `json:"panics"`
	Quarantined      int64          `json:"quarantined"`
	QueueDepth       int64          `json:"queueDepth"` // summed session queue depths
	Inflight         int64          `json:"inflight"`
	InflightBytes    int64          `json:"inflightBytes"`
	InflightBudget   int64          `json:"inflightBudget"`
	ResidentEstimate int64          `json:"residentEstimate"`
	ResidentBudget   int64          `json:"residentBudget"`
	Draining         bool           `json:"draining,omitempty"`
	Unbatched        bool           `json:"unbatched,omitempty"`
}

// Stats snapshots the server counters.
func (s *Server) Stats() Stats { return *s.statsSnapshot() }

func (s *Server) statsSnapshot() *Stats {
	s.mu.RLock()
	st := &Stats{
		Opened:           s.opened.Load(),
		Evicted:          s.evicted.Load(),
		Shutdown:         s.shutdowns.Load(),
		Requests:         s.requests.Load(),
		Shed:             s.shed.Load(),
		Canceled:         s.canceled.Load(),
		Panics:           s.panics.Load(),
		Quarantined:      s.quarantined.Load(),
		Inflight:         s.inflight.Load(),
		InflightBytes:    s.inflightBytes.Load(),
		InflightBudget:   s.opts.InflightBudget,
		ResidentEstimate: s.estTotal.Load(),
		ResidentBudget:   s.opts.ResidentBudget,
		Draining:         s.draining.Load(),
		Unbatched:        s.opts.Unbatched,
	}
	for _, ses := range s.sessions {
		row := ses.statsSnapshot()
		st.QueueDepth += row.QueueDepth
		st.Sessions = append(st.Sessions, row)
	}
	s.mu.RUnlock()
	sortSessionStats(st.Sessions)
	return st
}

func sortSessionStats(ss []SessionStats) {
	for i := 1; i < len(ss); i++ {
		for j := i; j > 0 && ss[j].Session < ss[j-1].Session; j-- {
			ss[j], ss[j-1] = ss[j-1], ss[j]
		}
	}
}

// HashColors is the registry golden's coloring hash: FNV-64a over the
// per-node colors as 8-byte little-endian words. Two colorings hash equal
// iff they are byte-identical (modulo hash collisions).
func HashColors(c coloring.Coloring) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, col := range c {
		w := uint64(col)
		for b := 0; b < 8; b++ {
			h ^= w & 0xff
			h *= prime64
			w >>= 8
		}
	}
	return h
}

// resolveAlgorithm maps a request's algorithm name to a registry instance.
func resolveAlgorithm(name string) (alg.Algorithm, string, error) {
	if name == "" {
		name = "relaxed"
	}
	a, ok := alg.Get(name)
	if !ok {
		return nil, name, fmt.Errorf("%w: unknown algorithm %q", ErrBadRequest, name)
	}
	return a, name, nil
}
