// Package serve is the long-lived serving plane: warm per-graph sessions
// behind a request API, the shape every reuse mechanism in the repository
// (Engine.Reset, pooled trial kernels, 0-alloc warmed verify, ball-confined
// repair) was built for but that the one-shot CLIs never exercise.
//
// A Server holds a cache of sessions keyed by client-chosen names. Each
// session owns a built CSR and, built lazily on first use, a resident warm
// trial kernel (and through it a congest.Engine), a pooled verify.Checker,
// and a repair.Session — and is driven by exactly one goroutine (per-session
// affinity), so the warm kernels run without any locking on the hot path.
// Requests against the same session that are queued at dispatch time are
// executed as one batch; read-shaped requests inside a batch window
// (verify, and repeat color requests with the same algorithm and seed) are
// coalesced into a single kernel pass, which is where batched dispatch beats
// unbatched on query-heavy mixes.
//
// The cache is bounded by a resident-bytes budget using the same closed-form
// estimates as `graphgen -estimate` (graph.EstimateResidency): opening a
// session past the budget evicts least-recently-used sessions first. Every
// evicted or closed session shuts its worker down and closes its kernels —
// the engine-close lifecycle tests pin that no goroutine or kernel outlives
// its session.
//
// Responses are byte-identical to direct library calls: a color request
// reports the same coloring hash, palette, and engine metrics as
// alg.Get(name).Run on a fresh graph; a recolor request matches a direct
// repair.Session fed the same fault script. Warm verify and recolor requests
// perform zero heap allocations (enforced the same way the trial and verify
// planes enforce it).
package serve

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"d2color/internal/alg"
	"d2color/internal/coloring"
	"d2color/internal/congest"
	"d2color/internal/graph"
	"d2color/internal/repair"
)

// Op names a request operation.
type Op string

const (
	// OpOpen builds a session: generates the spec's graph and admits it into
	// the cache (evicting LRU sessions if the budget requires).
	OpOpen Op = "open"
	// OpColor runs a registry algorithm on the session's graph and installs
	// the result as the session's working coloring.
	OpColor Op = "color"
	// OpVerify checks the working coloring against the distance-2 constraint
	// on the warm checker. Zero allocations warm.
	OpVerify Op = "verify"
	// OpRecolor is a churn epoch: corrupt-and-repair (Corrupt > 0), repair an
	// explicit dirty set (Dirty), or a full Stabilize sweep (neither). Zero
	// allocations warm for the explicit-dirty global-mode path.
	OpRecolor Op = "recolor"
	// OpStats snapshots the server and per-session counters.
	OpStats Op = "stats"
	// OpClose tears one session down.
	OpClose Op = "close"
)

// Request is one operation against the server. The zero value of unused
// fields is fine; Session names the target for everything except OpStats
// (where it is optional and ignored).
type Request struct {
	Op      Op     `json:"op"`
	Session string `json:"session,omitempty"`
	// Spec describes the graph to build (OpOpen only).
	Spec *graph.GeneratorSpec `json:"spec,omitempty"`
	// Algorithm is a registry name (OpColor; default "relaxed").
	Algorithm string `json:"algorithm,omitempty"`
	Seed      uint64 `json:"seed,omitempty"`
	// Dirty is an explicit dirty set for OpRecolor.
	Dirty []graph.NodeID `json:"dirty,omitempty"`
	// Corrupt, for OpRecolor, corrupts this many uniformly chosen colors
	// (seeded by Seed) before repairing them — the fault-injection epoch.
	Corrupt int `json:"corrupt,omitempty"`
}

// Response is the result of one request. It carries only scalars on the hot
// paths (the coloring hash stands in for the coloring itself), so filling it
// never allocates. Hash is FNV-64a over the per-node colors as 8-byte
// little-endian words — the registry golden's hash, comparable across
// serve/direct runs.
type Response struct {
	Op      Op     `json:"op"`
	Session string `json:"session,omitempty"`

	// OpOpen.
	Nodes          int   `json:"nodes,omitempty"`
	Edges          int   `json:"edges,omitempty"`
	EstimatedBytes int64 `json:"estimatedBytes,omitempty"`

	// OpColor / OpVerify / OpRecolor.
	Algorithm   string          `json:"algorithm,omitempty"`
	Hash        uint64          `json:"hash,omitempty"`
	PaletteSize int             `json:"paletteSize,omitempty"`
	ColorsUsed  int             `json:"colorsUsed,omitempty"`
	Valid       bool            `json:"valid,omitempty"`
	MaxColor    int             `json:"maxColor,omitempty"`
	Metrics     congest.Metrics `json:"metrics,omitzero"`

	// OpRecolor.
	Dirty      int  `json:"dirty,omitempty"`
	Ball       int  `json:"ball,omitempty"`
	Recolored  int  `json:"recolored,omitempty"`
	Phases     int  `json:"phases,omitempty"`
	Iterations int  `json:"iterations,omitempty"`
	Complete   bool `json:"complete,omitempty"`

	// OpStats.
	Stats *Stats `json:"stats,omitempty"`
}

// Sentinel errors; the HTTP layer maps them to codes and back, so a remote
// client can discriminate (e.g. reopen after ErrUnknownSession — an evicted
// session looks exactly like one that never existed).
var (
	ErrServerClosed   = errors.New("serve: server closed")
	ErrUnknownSession = errors.New("serve: unknown session")
	ErrSessionExists  = errors.New("serve: session already exists")
	ErrNotColored     = errors.New("serve: session has no working coloring yet (issue a color request first)")
	ErrNotD2          = errors.New("serve: session's working coloring is not a d2-coloring")
	ErrBadRequest     = errors.New("serve: bad request")
)

// Options configures a Server.
type Options struct {
	// ResidentBudget bounds the summed residency estimates of cached
	// sessions, in bytes; opening past it evicts least-recently-used
	// sessions first. 0 means unlimited. A single session larger than the
	// whole budget is still admitted (after evicting everything else):
	// refusing it would make the one-huge-graph workload unservable.
	ResidentBudget int64
	// BatchMax bounds how many queued same-session requests one dispatch
	// window executes; 0 means 64.
	BatchMax int
	// Unbatched disables the dispatch window entirely (one request per
	// wakeup, no coalescing) — the control arm of the batching benchmarks.
	Unbatched bool
	// Parallel/Workers select the sharded engine for the session kernels
	// (byte-identical results either way).
	Parallel bool
	Workers  int
	// RepairMode confines recolor requests (ModeLocal extracts the ball's
	// subgraph; ModeGlobal reuses the session's warm kernel — the
	// allocation-free path).
	RepairMode repair.Mode
	// QueueDepth is the per-session request channel capacity; 0 means 1024.
	QueueDepth int
}

func (o Options) batchMax() int {
	if o.BatchMax <= 0 {
		return 64
	}
	return o.BatchMax
}

func (o Options) queueDepth() int {
	if o.QueueDepth <= 0 {
		return 1024
	}
	return o.QueueDepth
}

// Server is the session cache plus dispatcher. All methods are safe for
// concurrent use.
type Server struct {
	opts Options

	mu       sync.RWMutex
	closed   bool
	sessions map[string]*session

	clock    atomic.Int64 // LRU recency ticks
	estTotal atomic.Int64 // summed residency estimates of cached sessions

	opened    atomic.Int64
	evicted   atomic.Int64
	shutdowns atomic.Int64 // workers fully shut down (kernels closed)
	requests  atomic.Int64

	wg       sync.WaitGroup
	callPool sync.Pool
}

// NewServer builds an empty server.
func NewServer(opts Options) *Server {
	s := &Server{opts: opts, sessions: make(map[string]*session)}
	s.callPool.New = func() any { return newCall() }
	return s
}

// call is the envelope a request travels in: pre-allocated (pooled or owned
// by a Client), so enqueueing is allocation-free.
type call struct {
	req      *Request
	resp     *Response
	err      error
	shutdown bool // sentinel: drain, close kernels, exit
	done     chan struct{}
}

func newCall() *call {
	return &call{done: make(chan struct{}, 1)}
}

// Client is a per-goroutine handle whose Do is allocation-free once warm: it
// owns a reusable call envelope. A Client must not be used concurrently;
// create one per goroutine (they are cheap).
type Client struct {
	srv *Server
	c   call
}

// NewClient returns a dedicated client handle for hot request loops.
func (s *Server) NewClient() *Client {
	cl := &Client{srv: s}
	cl.c.done = make(chan struct{}, 1)
	return cl
}

// Do executes one request, filling resp (cleared first). resp must outlive
// the call only; the client may reuse both req and resp immediately after.
func (cl *Client) Do(req *Request, resp *Response) error {
	c := &cl.c
	c.req, c.resp, c.err = req, resp, nil
	return cl.srv.dispatch(c)
}

// Do executes one request using a pooled envelope — the convenience entry
// point for control-plane callers and the HTTP layer. Hot loops should
// prefer a Client.
func (s *Server) Do(req *Request, resp *Response) error {
	c := s.callPool.Get().(*call)
	c.req, c.resp, c.err = req, resp, nil
	err := s.dispatch(c)
	c.req, c.resp = nil, nil
	s.callPool.Put(c)
	return err
}

func (s *Server) dispatch(c *call) error {
	s.requests.Add(1)
	req, resp := c.req, c.resp
	*resp = Response{Op: req.Op, Session: req.Session}
	switch req.Op {
	case OpOpen:
		return s.open(req, resp)
	case OpClose:
		return s.closeSession(req.Session)
	case OpStats:
		resp.Stats = s.statsSnapshot()
		return nil
	case OpColor, OpVerify, OpRecolor:
	default:
		return fmt.Errorf("%w: unknown op %q", ErrBadRequest, req.Op)
	}
	// Session ops: look up and enqueue while holding the read lock, so an
	// evictor (which takes the write lock before sending the shutdown
	// sentinel) can never observe the session in the map while a sender is
	// still about to enqueue. The wait itself happens lock-free.
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return ErrServerClosed
	}
	ses := s.sessions[req.Session]
	if ses == nil {
		s.mu.RUnlock()
		return ErrUnknownSession
	}
	ses.lastUsed.Store(s.clock.Add(1))
	ses.reqs <- c
	s.mu.RUnlock()
	<-c.done
	return c.err
}

// open generates the spec's graph, admits the session under the budget
// (evicting LRU sessions as needed), and starts its worker.
func (s *Server) open(req *Request, resp *Response) error {
	if req.Session == "" {
		return fmt.Errorf("%w: open needs a session name", ErrBadRequest)
	}
	if req.Spec == nil {
		return fmt.Errorf("%w: open needs a graph spec", ErrBadRequest)
	}
	g, err := req.Spec.Generate()
	if err != nil {
		return err
	}
	n, m := g.NumNodes(), g.NumEdges()
	// The closed-form estimate `graphgen -estimate` prints, plus the 8-byte
	// working coloring sessions keep unpacked for repair.
	est := int64(graph.EstimateResidency(float64(n), float64(m)).Total()) + int64(8*n)

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrServerClosed
	}
	if _, ok := s.sessions[req.Session]; ok {
		s.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrSessionExists, req.Session)
	}
	if budget := s.opts.ResidentBudget; budget > 0 {
		for s.estTotal.Load()+est > budget && len(s.sessions) > 0 {
			s.evictLRULocked()
		}
	}
	ses := &session{
		srv:  s,
		key:  req.Session,
		g:    g,
		est:  est,
		reqs: make(chan *call, s.opts.queueDepth()),
	}
	ses.lastUsed.Store(s.clock.Add(1))
	s.sessions[req.Session] = ses
	s.estTotal.Add(est)
	s.opened.Add(1)
	s.wg.Add(1)
	go ses.loop()
	s.mu.Unlock()

	resp.Nodes, resp.Edges, resp.EstimatedBytes = n, m, est
	return nil
}

// evictLRULocked removes the least-recently-used session from the map and
// sends its worker the shutdown sentinel. Caller holds s.mu.
func (s *Server) evictLRULocked() {
	var victim *session
	for _, ses := range s.sessions {
		if victim == nil || ses.lastUsed.Load() < victim.lastUsed.Load() {
			victim = ses
		}
	}
	if victim == nil {
		return
	}
	delete(s.sessions, victim.key)
	s.estTotal.Add(-victim.est)
	s.evicted.Add(1)
	// Holding the write lock guarantees no dispatcher is mid-enqueue, so
	// the sentinel is the last call the worker ever receives; it drains the
	// queue ahead of it, closes its kernels and exits. The send cannot block
	// forever: the worker is alive until it processes the sentinel.
	victim.reqs <- &call{shutdown: true, done: make(chan struct{}, 1)}
}

// closeSession tears one session down and waits for its worker to finish
// closing the kernels.
func (s *Server) closeSession(key string) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrServerClosed
	}
	ses, ok := s.sessions[key]
	if !ok {
		s.mu.Unlock()
		return ErrUnknownSession
	}
	delete(s.sessions, key)
	s.estTotal.Add(-ses.est)
	sentinel := &call{shutdown: true, done: make(chan struct{}, 1)}
	ses.reqs <- sentinel
	s.mu.Unlock()
	<-sentinel.done
	return nil
}

// Close shuts every session down (closing all kernels) and rejects further
// requests. It blocks until every worker has exited.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	for key, ses := range s.sessions {
		delete(s.sessions, key)
		s.estTotal.Add(-ses.est)
		ses.reqs <- &call{shutdown: true, done: make(chan struct{}, 1)}
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// SessionStats is one session's counter snapshot.
type SessionStats struct {
	Session         string `json:"session"`
	Nodes           int    `json:"nodes"`
	Edges           int    `json:"edges"`
	EstimatedBytes  int64  `json:"estimatedBytes"`
	Requests        int64  `json:"requests"`
	Color           int64  `json:"color"`
	Verify          int64  `json:"verify"`
	Recolor         int64  `json:"recolor"`
	Batches         int64  `json:"batches"`
	BatchedRequests int64  `json:"batchedRequests"`
	MaxBatch        int64  `json:"maxBatch"`
	Coalesced       int64  `json:"coalesced"`
}

// Stats is a point-in-time snapshot of the server counters — the payload of
// OpStats and of the expvar hook.
type Stats struct {
	Sessions         []SessionStats `json:"sessions"`
	Opened           int64          `json:"opened"`
	Evicted          int64          `json:"evicted"`
	Shutdown         int64          `json:"shutdown"` // workers fully exited, kernels closed
	Requests         int64          `json:"requests"`
	ResidentEstimate int64          `json:"residentEstimate"`
	ResidentBudget   int64          `json:"residentBudget"`
	Unbatched        bool           `json:"unbatched,omitempty"`
}

// Stats snapshots the server counters.
func (s *Server) Stats() Stats { return *s.statsSnapshot() }

func (s *Server) statsSnapshot() *Stats {
	st := &Stats{
		Opened:           s.opened.Load(),
		Evicted:          s.evicted.Load(),
		Shutdown:         s.shutdowns.Load(),
		Requests:         s.requests.Load(),
		ResidentEstimate: s.estTotal.Load(),
		ResidentBudget:   s.opts.ResidentBudget,
		Unbatched:        s.opts.Unbatched,
	}
	s.mu.RLock()
	for _, ses := range s.sessions {
		st.Sessions = append(st.Sessions, ses.statsSnapshot())
	}
	s.mu.RUnlock()
	sortSessionStats(st.Sessions)
	return st
}

func sortSessionStats(ss []SessionStats) {
	for i := 1; i < len(ss); i++ {
		for j := i; j > 0 && ss[j].Session < ss[j-1].Session; j-- {
			ss[j], ss[j-1] = ss[j-1], ss[j]
		}
	}
}

// HashColors is the registry golden's coloring hash: FNV-64a over the
// per-node colors as 8-byte little-endian words. Two colorings hash equal
// iff they are byte-identical (modulo hash collisions).
func HashColors(c coloring.Coloring) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, col := range c {
		w := uint64(col)
		for b := 0; b < 8; b++ {
			h ^= w & 0xff
			h *= prime64
			w >>= 8
		}
	}
	return h
}

// resolveAlgorithm maps a request's algorithm name to a registry instance.
func resolveAlgorithm(name string) (alg.Algorithm, string, error) {
	if name == "" {
		name = "relaxed"
	}
	a, ok := alg.Get(name)
	if !ok {
		return nil, name, fmt.Errorf("%w: unknown algorithm %q", ErrBadRequest, name)
	}
	return a, name, nil
}
