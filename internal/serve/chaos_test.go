package serve

import (
	"context"
	"errors"
	"fmt"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"d2color/internal/graph"
)

// bigSpec is a graph whose color run takes well over a millisecond on any
// machine, so a ~1ms deadline is guaranteed to cancel mid-kernel.
var bigSpec = graph.GeneratorSpec{Kind: "gnp-avg", N: 20000, P: 8, Seed: 11}

// TestServeCancelWarmKernelByteIdentical pins the cancellation acceptance
// criterion: a canceled run must leave the warm kernel fully reusable — the
// next same-seed run returns hash and metrics byte-identical to the
// pre-cancel run and to a fresh server's run. Checked across the sequential
// and the sharded engine.
func TestServeCancelWarmKernelByteIdentical(t *testing.T) {
	for _, parallel := range []bool{false, true} {
		name := "sequential"
		if parallel {
			name = "sharded"
		}
		t.Run(name, func(t *testing.T) {
			run := func() (first, again Response) {
				srv := NewServer(Options{Parallel: parallel, Workers: 2})
				defer srv.Close()
				var resp Response
				if err := srv.Do(&Request{Op: OpOpen, Session: "x", Spec: &bigSpec}, &resp); err != nil {
					t.Fatal(err)
				}
				if err := srv.Do(&Request{Op: OpColor, Session: "x", Seed: 7}, &first); err != nil {
					t.Fatal(err)
				}
				err := srv.Do(&Request{Op: OpColor, Session: "x", Seed: 8, DeadlineMillis: 1}, &resp)
				if !errors.Is(err, ErrCanceled) {
					t.Fatalf("deadline run: got %v, want ErrCanceled", err)
				}
				if err := srv.Do(&Request{Op: OpColor, Session: "x", Seed: 7}, &again); err != nil {
					t.Fatal(err)
				}
				st := srv.Stats()
				if st.Canceled == 0 {
					t.Errorf("stats canceled = 0 after a canceled request")
				}
				return first, again
			}
			first, again := run()
			fresh, _ := run()
			if again.Hash != first.Hash || again.Metrics != first.Metrics {
				t.Errorf("post-cancel rerun diverged from pre-cancel run: hash %016x vs %016x",
					again.Hash, first.Hash)
			}
			if again.Hash != fresh.Hash || again.Metrics != fresh.Metrics {
				t.Errorf("post-cancel rerun diverged from fresh server: hash %016x vs %016x",
					again.Hash, fresh.Hash)
			}
		})
	}
}

// TestServeDoContextCancel links cancellation to a context: once the context
// is canceled, an in-flight request unwinds cooperatively with ErrCanceled.
func TestServeDoContextCancel(t *testing.T) {
	srv := NewServer(Options{})
	defer srv.Close()
	var resp Response
	if err := srv.Do(&Request{Op: OpOpen, Session: "x", Spec: &bigSpec}, &resp); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(2 * time.Millisecond)
		cancel()
	}()
	err := srv.DoContext(ctx, &Request{Op: OpColor, Session: "x", Seed: 7}, &resp)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("DoContext after cancel: got %v, want ErrCanceled", err)
	}
	// An already-canceled context cancels before any kernel work.
	err = srv.DoContext(ctx, &Request{Op: OpColor, Session: "x", Seed: 9}, &resp)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("DoContext with dead context: got %v, want ErrCanceled", err)
	}
}

// TestServeOverloadShed pins the backpressure contract: with a queue depth of
// 1, a request arriving while another is executing is shed with
// ErrOverloaded instead of queueing, and the shed shows up in the server and
// session counters.
func TestServeOverloadShed(t *testing.T) {
	srv := NewServer(Options{QueueDepth: 1})
	defer srv.Close()
	var resp Response
	if err := srv.Do(&Request{Op: OpOpen, Session: "x", Spec: &bigSpec}, &resp); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		cl := srv.NewClient()
		var r Response
		done <- cl.Do(&Request{Op: OpColor, Session: "x", Seed: 7}, &r)
	}()
	// Wait until the slow color is admitted (pending = 1), then overflow.
	for {
		if st := srv.Stats(); st.QueueDepth >= 1 {
			break
		}
		time.Sleep(100 * time.Microsecond)
	}
	err := srv.Do(&Request{Op: OpVerify, Session: "x"}, &resp)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("second request past queue depth: got %v, want ErrOverloaded", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("admitted request failed: %v", err)
	}
	st := srv.Stats()
	if st.Shed == 0 {
		t.Error("server shed counter is 0 after a shed")
	}
	if len(st.Sessions) != 1 || st.Sessions[0].Shed == 0 {
		t.Error("session shed counter is 0 after a shed")
	}
}

// TestServeInflightBudgetShed pins the byte-budget half of admission: a
// request that would wake an idle session while the in-flight estimate is
// over budget sheds — unless that session alone would exceed the budget and
// nothing else is in flight (the one-huge-graph rule).
func TestServeInflightBudgetShed(t *testing.T) {
	small := graph.GeneratorSpec{Kind: "ba", N: 400, Degree: 3, Seed: 5}
	srv := NewServer(Options{InflightBudget: 1}) // any in-flight session busts it
	defer srv.Close()
	var resp Response
	if err := srv.Do(&Request{Op: OpOpen, Session: "a", Spec: &bigSpec}, &resp); err != nil {
		t.Fatal(err)
	}
	if err := srv.Do(&Request{Op: OpOpen, Session: "b", Spec: &small}, &resp); err != nil {
		t.Fatal(err)
	}
	// One-huge rule: with nothing in flight, a session over the whole budget
	// still gets work.
	if err := srv.Do(&Request{Op: OpColor, Session: "b", Seed: 1}, &resp); err != nil {
		t.Fatalf("idle server, over-budget session: got %v, want success", err)
	}
	done := make(chan error, 1)
	go func() {
		cl := srv.NewClient()
		var r Response
		done <- cl.Do(&Request{Op: OpColor, Session: "a", Seed: 7}, &r)
	}()
	for {
		if st := srv.Stats(); st.InflightBytes > 0 {
			break
		}
		time.Sleep(100 * time.Microsecond)
	}
	// Waking idle session b now exceeds the in-flight budget (a's bytes are
	// charged, and the total is above b's own estimate) — shed.
	err := srv.Do(&Request{Op: OpVerify, Session: "b"}, &resp)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("waking idle session over budget: got %v, want ErrOverloaded", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("admitted request failed: %v", err)
	}
}

// TestServePanicQuarantine pins panic isolation end to end: an injected
// worker panic fails only the in-flight request (structured ErrPanicked), a
// second consecutive panic trips the quarantine (threshold 2), the session
// is evicted through the provably-closing shutdown path (opened == shutdown,
// no goroutine leak), and the key is immediately reusable.
func TestServePanicQuarantine(t *testing.T) {
	baseline := runtime.NumGoroutine()
	spec := graph.GeneratorSpec{Kind: "ba", N: 300, Degree: 3, Seed: 4}
	srv := NewServer(Options{
		QuarantineAfter: 2,
		Parallel:        true, Workers: 2, // quarantine must close live engines too
		ChaosPanic: func(req *Request) bool { return req.Op == OpRecolor },
	})
	var resp Response
	if err := srv.Do(&Request{Op: OpOpen, Session: "x", Spec: &spec}, &resp); err != nil {
		t.Fatal(err)
	}
	if err := srv.Do(&Request{Op: OpColor, Session: "x", Seed: 1}, &resp); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		err := srv.Do(&Request{Op: OpRecolor, Session: "x", Corrupt: 2, Seed: 9}, &resp)
		if !errors.Is(err, ErrPanicked) {
			t.Fatalf("recolor %d: got %v, want ErrPanicked", i, err)
		}
	}
	// The worker survives the first panic: between the two panics the session
	// still answers (and a success would reset the streak — verify does not
	// panic but also must not reset it... it does reset it, so drive the two
	// panics back to back as above and only now probe the aftermath).
	deadline := time.Now().Add(5 * time.Second)
	for {
		err := srv.Do(&Request{Op: OpVerify, Session: "x"}, &resp)
		if errors.Is(err, ErrUnknownSession) {
			break // quarantined and gone
		}
		if err != nil && !errors.Is(err, ErrQuarantined) {
			t.Fatalf("post-panic probe: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("session never quarantined after the panic streak")
		}
		time.Sleep(time.Millisecond)
	}
	st := srv.Stats()
	if st.Panics != 2 {
		t.Errorf("panics = %d, want 2", st.Panics)
	}
	if st.Quarantined != 1 {
		t.Errorf("quarantined = %d, want 1", st.Quarantined)
	}
	// The quarantine exits through the same shutdown path as an eviction.
	for st.Shutdown != st.Opened {
		if time.Now().After(deadline) {
			t.Fatalf("shutdowns %d never reached opened %d", st.Shutdown, st.Opened)
		}
		time.Sleep(time.Millisecond)
		st = srv.Stats()
	}
	// The key is free again, like any eviction.
	if err := srv.Do(&Request{Op: OpOpen, Session: "x", Spec: &spec}, &resp); err != nil {
		t.Fatalf("reopen after quarantine: %v", err)
	}
	srv.Close()
	for runtime.NumGoroutine() > baseline+2 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not return to baseline: %d > %d+2", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestServeDrain pins both drain outcomes. Graceful: with fast work in
// flight, Drain finishes it and closes with a nil error. Deadline: with a
// slow kernel run in flight and a tight context, Drain hard-cancels — the
// run unwinds with ErrCanceled within O(one round) — and still closes every
// session before returning.
func TestServeDrain(t *testing.T) {
	t.Run("graceful", func(t *testing.T) {
		small := graph.GeneratorSpec{Kind: "ba", N: 400, Degree: 3, Seed: 5}
		srv := NewServer(Options{})
		var resp Response
		if err := srv.Do(&Request{Op: OpOpen, Session: "x", Spec: &small}, &resp); err != nil {
			t.Fatal(err)
		}
		if err := srv.Do(&Request{Op: OpColor, Session: "x", Seed: 1}, &resp); err != nil {
			t.Fatal(err)
		}
		if err := srv.Drain(context.Background()); err != nil {
			t.Fatalf("drain with idle server: %v", err)
		}
		if !srv.Draining() {
			t.Error("Draining() = false after Drain")
		}
		if err := srv.Do(&Request{Op: OpVerify, Session: "x"}, &resp); !errors.Is(err, ErrServerClosed) && !errors.Is(err, ErrDraining) {
			t.Errorf("request after drain: got %v, want draining/closed", err)
		}
		st := srv.Stats()
		if st.Opened != st.Shutdown {
			t.Errorf("opened %d != shutdown %d after drain", st.Opened, st.Shutdown)
		}
	})
	t.Run("deadline", func(t *testing.T) {
		srv := NewServer(Options{})
		var resp Response
		if err := srv.Do(&Request{Op: OpOpen, Session: "x", Spec: &bigSpec}, &resp); err != nil {
			t.Fatal(err)
		}
		done := make(chan error, 1)
		go func() {
			cl := srv.NewClient()
			var r Response
			done <- cl.Do(&Request{Op: OpColor, Session: "x", Seed: 7}, &r)
		}()
		for srv.Stats().Inflight == 0 {
			time.Sleep(100 * time.Microsecond)
		}
		ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
		defer cancel()
		if err := srv.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("drain past deadline: got %v, want DeadlineExceeded", err)
		}
		if err := <-done; !errors.Is(err, ErrCanceled) {
			t.Fatalf("in-flight run under hard cancel: got %v, want ErrCanceled", err)
		}
		st := srv.Stats()
		if st.Inflight != 0 {
			t.Errorf("inflight = %d after drain returned", st.Inflight)
		}
		if st.Opened != st.Shutdown {
			t.Errorf("opened %d != shutdown %d after drain", st.Opened, st.Shutdown)
		}
	})
}

// TestServeEvictionRacesFullQueue is the -race stress for the
// eviction-vs-dispatch corner: a resident budget that fits one session, a
// shallow queue kept full by a pack of dispatchers, and a main loop that
// keeps opening fresh sessions (each open evicting the LRU victim out from
// under the queued work). Every waiter must get a definite answer — a
// result, or a structured error (shed / unknown-session after eviction) —
// and the teardown must account every worker (opened == shutdown, no
// goroutine leak). A deadlock here is the bug the spare sentinel queue slot
// exists to prevent.
func TestServeEvictionRacesFullQueue(t *testing.T) {
	baseline := runtime.NumGoroutine()
	spec := graph.GeneratorSpec{Kind: "ba", N: 800, Degree: 3, Seed: 6}
	var resp Response
	probe := NewServer(Options{})
	if err := probe.Do(&Request{Op: OpOpen, Session: "p", Spec: &spec}, &resp); err != nil {
		t.Fatal(err)
	}
	est := resp.EstimatedBytes
	probe.Close()

	srv := NewServer(Options{ResidentBudget: est + est/2, QueueDepth: 2})
	if err := srv.Do(&Request{Op: OpOpen, Session: "s0", Spec: &spec}, &resp); err != nil {
		t.Fatal(err)
	}
	if err := srv.Do(&Request{Op: OpColor, Session: "s0", Seed: 1}, &resp); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl := srv.NewClient()
			var r Response
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				err := cl.Do(&Request{Op: OpVerify, Session: "s0"}, &r)
				switch {
				case err == nil,
					errors.Is(err, ErrOverloaded),
					errors.Is(err, ErrNotColored),
					errors.Is(err, ErrUnknownSession),
					errors.Is(err, ErrServerClosed):
					// Definite answers: served, shed, or structurally evicted.
				default:
					errs <- fmt.Errorf("worker %d: unexpected %v", w, err)
					return
				}
			}
		}(w)
	}
	// Churn: every open evicts the previous resident while its queue is full.
	for i := 1; i <= 40; i++ {
		s := spec
		s.Seed = int64(6 + i%3)
		name := fmt.Sprintf("s%d", i)
		if err := srv.Do(&Request{Op: OpOpen, Session: name, Spec: &s}, &resp); err != nil {
			t.Fatalf("open %s: %v", name, err)
		}
		// Re-admit s0 half the time so the dispatchers' target keeps coming
		// back (open → evict → reopen), exercising both sides of the race.
		if i%2 == 0 {
			s0 := spec
			if err := srv.Do(&Request{Op: OpOpen, Session: "s0", Spec: &s0}, &resp); err != nil && !errors.Is(err, ErrSessionExists) {
				t.Fatalf("reopen s0: %v", err)
			}
			if err := srv.Do(&Request{Op: OpColor, Session: "s0", Seed: 1}, &resp); err != nil && !errors.Is(err, ErrUnknownSession) && !errors.Is(err, ErrOverloaded) {
				t.Fatalf("recolor s0: %v", err)
			}
		}
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	srv.Close()
	st := srv.Stats()
	if st.Opened != st.Shutdown {
		t.Errorf("opened %d != shutdown %d after close", st.Opened, st.Shutdown)
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline+2 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not return to baseline: %d > %d+2", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestChaosGate is the chaos-plane gate. It always runs a panic storm and an
// overload mix and logs the outcomes; the assertions — post-storm goroutines
// at baseline with opened == shutdown, and the accepted-request p99 under
// shedding within 10× the unloaded p99 — are enforced only under
// D2_CHAOS_GATE=1 (the CI chaos-gate job), mirroring the serve gate: timing
// claims don't fail local runs on loaded machines.
func TestChaosGate(t *testing.T) {
	if testing.Short() {
		t.Skip("runs load mixes")
	}
	enforce := os.Getenv("D2_CHAOS_GATE") == "1"
	check := func(ok bool, format string, args ...any) {
		if ok {
			return
		}
		if enforce {
			t.Errorf(format, args...)
		} else {
			t.Logf("(not enforced, set D2_CHAOS_GATE=1) "+format, args...)
		}
	}

	// Panic storm: quarantine threshold 2, every 3rd recolor seed panics via
	// the deterministic plan; clients just hammer and tolerate the fallout.
	baseline := runtime.NumGoroutine()
	plan := PanicPlan(17, 0.5)
	spec := LoadSpec{
		Mix: "gate/panic-storm", Sessions: 2, Family: "ba", N: 1000, Deg: 3,
		Requests: 800, Concurrency: 8,
		VerifyFraction: 0.3, RecolorFraction: 0.6, Corrupt: 4, ColorSeeds: 4,
		Hot: 0.8, Seed: 17, QuarantineAfter: 2, Retries: 2,
	}
	srv := NewServer(Options{
		QuarantineAfter: spec.QuarantineAfter,
		ChaosPanic:      func(req *Request) bool { return req.Op == OpRecolor && plan(req) },
	})
	storm, err := RunLoadWith(func() Transport { return srv.NewClient() }, spec)
	if err != nil {
		t.Fatal(err)
	}
	srv.Close()
	st := srv.Stats()
	t.Logf("panic-storm: %d panics, %d quarantined, %d reopens, opened=%d shutdown=%d",
		st.Panics, st.Quarantined, storm.Reopens, st.Opened, st.Shutdown)
	if st.Panics == 0 {
		t.Error("panic plan injected no panics")
	}
	check(st.Opened == st.Shutdown, "opened %d != shutdown %d after panic storm", st.Opened, st.Shutdown)
	settled := false
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+2 {
			settled = true
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	check(settled, "goroutines %d above baseline %d after panic storm", runtime.NumGoroutine(), baseline)

	// Shed-mode tail: the same mix unloaded and at ~2x capacity against a
	// queue depth of 2. Accepted requests must keep a bounded tail — the
	// point of shedding is that admitted work stays fast.
	quiet := LoadSpec{
		Mix: "gate/unloaded", Sessions: 2, Family: "ba", N: 1500, Deg: 3,
		Requests: 600, Concurrency: 2,
		VerifyFraction: 0.9, ColorSeeds: 1, Hot: 1.0, Seed: 17,
	}
	unloaded, err := RunLoad(quiet)
	if err != nil {
		t.Fatal(err)
	}
	hot := quiet
	hot.Mix, hot.Concurrency, hot.QueueDepth = "gate/overload", 16, 2
	shed, err := RunLoad(hot)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("unloaded: p99=%v; overload: shed=%d accepted-p99=%v", unloaded.P99, shed.Shed, shed.AcceptedP99)
	if shed.Shed == 0 {
		t.Error("overload mix shed nothing at 2x capacity")
	}
	check(shed.AcceptedP99 < 10*unloaded.P99,
		"accepted p99 under shedding %v >= 10x unloaded p99 %v", shed.AcceptedP99, unloaded.P99)
}
