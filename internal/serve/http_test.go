package serve

import (
	"errors"
	"net/http/httptest"
	"testing"

	"d2color/internal/graph"
)

// TestHTTPTransportRoundTrip pins that the HTTP layer is a faithful carrier:
// the same request sequence through httptest + HTTPTransport produces the
// same responses (hash, palette, metrics, repair counters) as a direct
// in-process client against an identical server.
func TestHTTPTransportRoundTrip(t *testing.T) {
	spec := graph.GeneratorSpec{Kind: "ba", N: 300, Degree: 3, Seed: 6}
	reqs := []Request{
		{Op: OpOpen, Session: "g", Spec: &spec},
		{Op: OpColor, Session: "g", Algorithm: "greedy", Seed: 2},
		{Op: OpVerify, Session: "g"},
		{Op: OpRecolor, Session: "g", Corrupt: 4, Seed: 3},
		{Op: OpVerify, Session: "g"},
	}

	run := func(tr Transport) []Response {
		var out []Response
		for i := range reqs {
			req := reqs[i]
			var resp Response
			if err := tr.Do(&req, &resp); err != nil {
				t.Fatalf("%s: %v", req.Op, err)
			}
			resp.Stats = nil
			out = append(out, resp)
		}
		return out
	}

	direct := NewServer(Options{})
	defer direct.Close()
	want := run(direct.NewClient())

	remote := NewServer(Options{})
	defer remote.Close()
	ts := httptest.NewServer(NewHandler(remote))
	defer ts.Close()
	got := run(NewHTTPTransport(ts.URL, ts.Client()))

	for i := range want {
		if got[i] != want[i] {
			t.Errorf("response %d over HTTP %+v != direct %+v", i, got[i], want[i])
		}
	}

	// Stats endpoint decodes and reflects the traffic.
	var resp Response
	if err := NewHTTPTransport(ts.URL, ts.Client()).Do(&Request{Op: OpStats}, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Stats == nil || resp.Stats.Opened != 1 || len(resp.Stats.Sessions) != 1 {
		t.Errorf("stats over HTTP: %+v", resp.Stats)
	}
}

// TestHTTPErrorMapping pins that sentinel errors survive the wire: a remote
// client can errors.Is-discriminate exactly like an in-process caller.
func TestHTTPErrorMapping(t *testing.T) {
	srv := NewServer(Options{})
	defer srv.Close()
	ts := httptest.NewServer(NewHandler(srv))
	defer ts.Close()
	tr := NewHTTPTransport(ts.URL, ts.Client())

	var resp Response
	if err := tr.Do(&Request{Op: OpVerify, Session: "nope"}, &resp); !errors.Is(err, ErrUnknownSession) {
		t.Errorf("unknown session over HTTP: %v", err)
	}
	spec := graph.GeneratorSpec{Kind: "star", N: 8}
	if err := tr.Do(&Request{Op: OpOpen, Session: "x", Spec: &spec}, &resp); err != nil {
		t.Fatal(err)
	}
	if err := tr.Do(&Request{Op: OpOpen, Session: "x", Spec: &spec}, &resp); !errors.Is(err, ErrSessionExists) {
		t.Errorf("duplicate open over HTTP: %v", err)
	}
	if err := tr.Do(&Request{Op: OpVerify, Session: "x"}, &resp); !errors.Is(err, ErrNotColored) {
		t.Errorf("verify before color over HTTP: %v", err)
	}
	if err := tr.Do(&Request{Op: OpColor, Session: "x", Algorithm: "no-such"}, &resp); !errors.Is(err, ErrBadRequest) {
		t.Errorf("unknown algorithm over HTTP: %v", err)
	}
}
