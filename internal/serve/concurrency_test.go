package serve

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"d2color/internal/alg"
	"d2color/internal/graph"
)

// TestServeConcurrentSessionsIdentical hammers three sessions from eight
// goroutines under the race detector: every color response must be
// byte-identical (hash, palette, metrics) to a direct library call with the
// same (algorithm, seed), no matter how requests interleave or batch. This is
// the -race half of the byte-identity acceptance bar.
func TestServeConcurrentSessionsIdentical(t *testing.T) {
	specs := map[string]graph.GeneratorSpec{
		"s0": {Kind: "ba", N: 240, Degree: 3, Seed: 1},
		"s1": {Kind: "gnp-avg", N: 200, P: 6, Seed: 2},
		"s2": {Kind: "star", N: 64},
	}
	algos := []string{"greedy", "relaxed"}
	seeds := []uint64{1, 2, 3}

	// Precompute the direct answers once, outside the server.
	type key struct {
		ses  string
		alg  string
		seed uint64
	}
	type want struct {
		hash    uint64
		palette int
	}
	wants := make(map[key]want)
	for name, spec := range specs {
		g, err := spec.Generate()
		if err != nil {
			t.Fatal(err)
		}
		for _, an := range algos {
			a, ok := alg.Get(an)
			if !ok {
				t.Fatalf("algorithm %q not registered", an)
			}
			for _, seed := range seeds {
				res, err := a.Run(g, alg.Engine{}, seed)
				if err != nil {
					t.Fatal(err)
				}
				wants[key{name, an, seed}] = want{HashColors(res.Coloring), res.PaletteSize}
			}
		}
	}

	srv := NewServer(Options{})
	defer srv.Close()
	for name := range specs {
		spec := specs[name]
		var resp Response
		if err := srv.Do(&Request{Op: OpOpen, Session: name, Spec: &spec}, &resp); err != nil {
			t.Fatal(err)
		}
	}

	const workers = 8
	const perWorker = 40
	var wg sync.WaitGroup
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl := srv.NewClient()
			rng := splitmix64{state: uint64(w)*0x9e3779b97f4a7c15 + 1}
			var resp Response
			for i := 0; i < perWorker; i++ {
				ses := fmt.Sprintf("s%d", rng.intn(len(specs)))
				an := algos[rng.intn(len(algos))]
				seed := seeds[rng.intn(len(seeds))]
				k := key{ses, an, seed}
				if rng.float64() < 0.3 {
					// Interleave verifies; they must reflect whatever color
					// request last won, which is some entry of wants.
					if err := cl.Do(&Request{Op: OpVerify, Session: ses}, &resp); err != nil {
						errc <- fmt.Errorf("worker %d: verify %s: %w", w, ses, err)
						return
					}
					if !resp.Valid {
						errc <- fmt.Errorf("worker %d: verify %s reported invalid", w, ses)
						return
					}
					continue
				}
				if err := cl.Do(&Request{Op: OpColor, Session: ses, Algorithm: an, Seed: seed}, &resp); err != nil {
					errc <- fmt.Errorf("worker %d: color %s/%s/%d: %w", w, ses, an, seed, err)
					return
				}
				if resp.Hash != wants[k].hash || resp.PaletteSize != wants[k].palette {
					errc <- fmt.Errorf("worker %d: %s/%s/%d: hash %016x palette %d, want %016x %d",
						w, ses, an, seed, resp.Hash, resp.PaletteSize, wants[k].hash, wants[k].palette)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	st := srv.Stats()
	if st.Requests < workers*perWorker {
		t.Errorf("stats recorded %d requests, want >= %d", st.Requests, workers*perWorker)
	}
}

// TestServeShutdownReleasesEngines pins the lifecycle contract: every session
// that is evicted, closed, or alive at server Close gets exactly one kernel
// shutdown, and the engine goroutines all exit — no leaks across a full
// open/evict/close cycle.
func TestServeShutdownReleasesEngines(t *testing.T) {
	baseline := runtime.NumGoroutine()

	spec := graph.GeneratorSpec{Kind: "ba", N: 300, Degree: 3, Seed: 4}
	probe := NewServer(Options{Parallel: true, Workers: 2})
	var resp Response
	if err := probe.Do(&Request{Op: OpOpen, Session: "p", Spec: &spec}, &resp); err != nil {
		t.Fatal(err)
	}
	est := resp.EstimatedBytes
	probe.Close()

	// Budget for three resident sessions; opening six forces three evictions,
	// each of which must close a live parallel engine.
	srv := NewServer(Options{ResidentBudget: 3*est + est/2, Parallel: true, Workers: 2})
	for i := 0; i < 6; i++ {
		s := spec
		name := fmt.Sprintf("g%d", i)
		if err := srv.Do(&Request{Op: OpOpen, Session: name, Spec: &s}, &resp); err != nil {
			t.Fatal(err)
		}
		if err := srv.Do(&Request{Op: OpColor, Session: name, Algorithm: "relaxed", Seed: 1}, &resp); err != nil {
			t.Fatal(err)
		}
		if err := srv.Do(&Request{Op: OpRecolor, Session: name, Corrupt: 3, Seed: 2}, &resp); err != nil {
			t.Fatal(err)
		}
	}
	// Explicitly close one surviving session too.
	if err := srv.Do(&Request{Op: OpClose, Session: "g5"}, &resp); err != nil {
		t.Fatal(err)
	}
	srv.Close()

	st := srv.Stats()
	if st.Opened != 6 {
		t.Errorf("opened = %d, want 6", st.Opened)
	}
	if st.Evicted != 3 {
		t.Errorf("evicted = %d, want 3", st.Evicted)
	}
	if st.Shutdown != st.Opened {
		t.Errorf("shutdowns = %d, want %d (one per opened session)", st.Shutdown, st.Opened)
	}

	// Engine goroutines unwind asynchronously after Close returns; poll.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not return to baseline: %d > %d+2", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
