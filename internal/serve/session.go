package serve

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"

	"d2color/internal/alg"
	"d2color/internal/coloring"
	"d2color/internal/congest"
	"d2color/internal/fault"
	"d2color/internal/graph"
	"d2color/internal/repair"
	"d2color/internal/trial"
	"d2color/internal/verify"
)

// session is one cached graph plus its warm kernels, owned by exactly one
// worker goroutine: every field below the channel is touched only by the
// worker (per-session affinity), so the hot paths run without locks. The
// counters are atomics only because Stats reads them from other goroutines.
type session struct {
	srv      *Server
	key      string
	g        *graph.Graph
	est      int64
	reqs     chan *call
	lastUsed atomic.Int64
	pending  atomic.Int64 // queued-or-executing requests; the admission bound

	// cancelFn is canceledNow bound once at open, so installing it into the
	// warm kernels (trial runner, checker, repair session) never allocates.
	cancelFn func() bool

	// Worker-owned warm state, built lazily on first use.
	tk        *trial.Runner
	checker   *verify.Checker
	rs        *repair.Session
	colors    coloring.Coloring
	palette   int
	algorithm string
	isD2      bool
	memo      batchMemo

	// Worker-owned failure state. cur is the request currently executing —
	// the kernels' cancel hook reads it between simulated rounds (always on
	// this worker's stack, so no lock). panicStreak counts consecutive
	// ErrPanicked requests; condemned persists a quarantine decision across
	// batches when an evictor beat removeQuarantined to the session.
	cur         *call
	panicStreak int
	condemned   bool

	nRequests atomic.Int64
	nColor    atomic.Int64
	nVerify   atomic.Int64
	nRecolor  atomic.Int64
	nBatches  atomic.Int64
	nBatched  atomic.Int64 // requests that shared a window with at least one other
	maxBatch  atomic.Int64
	coalesced atomic.Int64
	nShed     atomic.Int64
	nCanceled atomic.Int64
	nPanics   atomic.Int64
}

// canceledNow is the cooperative cancel hook every warm kernel polls (the
// trial runner and checker via SetCancel, the repair session via
// Options.Cancel). It runs on the worker goroutine between simulated rounds
// or scan strides: true once the server is hard-canceling (a drain past its
// deadline) or the current request's own cancel flag has tripped (deadline
// timer, disconnected HTTP client).
func (ses *session) canceledNow() bool {
	if ses.srv.hardCancel.Load() {
		return true
	}
	c := ses.cur
	if c == nil {
		return false
	}
	p := c.cancel.Load()
	return p != nil && p.Load()
}

// batchMemo caches read-shaped results within one dispatch window: verify
// responses, and the response of the last color request (keyed by resolved
// algorithm + seed — rerunning the same deterministic-by-seed algorithm on
// the same graph cannot change the answer). Mutating requests invalidate it;
// the memo never crosses a window boundary.
type batchMemo struct {
	verifyOK  bool
	verify    Response
	colorOK   bool
	colorAlg  string
	colorSeed uint64
	color     Response
}

// loop is the session worker: blocking receive, then (unless the server is
// unbatched) a non-blocking drain of whatever else is already queued, up to
// BatchMax — the dispatch window. No timers: the only concession is a single
// scheduler yield between the receive and the drain, so concurrent
// dispatchers that are about to park on their done channels get one chance
// to publish into the window first (without it, the channel send's runnext
// hand-off wakes the worker before any other producer has run, and windows
// degenerate to size one under GOMAXPROCS=1). One yield costs nanoseconds;
// a missed coalescing window costs a kernel pass.
func (ses *session) loop() {
	defer ses.srv.wg.Done()
	batchMax := ses.srv.opts.batchMax()
	batch := make([]*call, 0, batchMax)
	for c := range ses.reqs {
		batch = append(batch[:0], c)
		if !ses.srv.opts.Unbatched {
			runtime.Gosched()
		drain:
			for len(batch) < batchMax {
				select {
				case c2 := <-ses.reqs:
					batch = append(batch, c2)
				default:
					break drain
				}
			}
		}
		if ses.runBatch(batch) {
			return
		}
	}
}

// runBatch executes one dispatch window and reports whether the worker must
// exit — either the shutdown sentinel was seen or the worker quarantined its
// own session after a panic streak (kernels are closed in both cases).
func (ses *session) runBatch(batch []*call) (shutdown bool) {
	ses.nBatches.Add(1)
	if n := int64(len(batch)); n > 1 {
		ses.nBatched.Add(n)
		if n > ses.maxBatch.Load() {
			ses.maxBatch.Store(n)
		}
	} else if ses.maxBatch.Load() == 0 {
		ses.maxBatch.Store(1)
	}
	ses.memo = batchMemo{}
	quarantine := ses.condemned
	var sentinel *call
	for _, c := range batch {
		if c.shutdown {
			// The evictor sends the sentinel while holding the write lock,
			// after removing the session from the map — it is necessarily
			// the last call in the queue.
			sentinel = c
			continue
		}
		ses.nRequests.Add(1)
		if quarantine {
			// Already condemned this batch (or a previous one, if an evictor
			// won the removal race): fail fast, never touch the kernels again.
			c.err = ErrQuarantined
			ses.finish(c)
			continue
		}
		ses.serveOne(c)
		if errors.Is(c.err, ErrPanicked) {
			ses.panicStreak++
			if k := ses.srv.opts.quarantineAfter(); k > 0 && ses.panicStreak >= k {
				quarantine = true
				ses.condemned = true
			}
		} else if c.err == nil {
			ses.panicStreak = 0
		}
		ses.finish(c)
	}
	if sentinel != nil {
		ses.closeKernels()
		ses.srv.shutdowns.Add(1)
		sentinel.done <- struct{}{}
		return true
	}
	if quarantine {
		if ses.srv.removeQuarantined(ses) {
			// The worker owns the shutdown: no dispatcher can find the
			// session anymore and sends happen under the read lock
			// removeQuarantined just excluded, so a non-blocking drain
			// observes every call that was ever queued.
			ses.drainQuarantined()
			ses.closeKernels()
			ses.srv.shutdowns.Add(1)
			return true
		}
		// An evictor or Close removed the session first; its sentinel is
		// already queued. Keep looping — condemned requests fail fast above —
		// until the sentinel arrives.
	}
	return false
}

// serveOne executes one request on the worker with panic isolation: finishOne
// is the deferred recovery point, so a panicking kernel fails only this
// request and the worker survives to serve (or quarantine) the rest.
func (ses *session) serveOne(c *call) {
	defer ses.finishOne(c)
	ses.cur = c
	if ses.cancelFn() {
		// Canceled while queued (deadline storm, drain hard-cancel): answer
		// without touching a kernel.
		c.err = ErrCanceled
		return
	}
	if hook := ses.srv.opts.ChaosPanic; hook != nil && hook(c.req) {
		panic("chaos: injected worker panic")
	}
	switch c.req.Op {
	case OpVerify:
		ses.nVerify.Add(1)
		if ses.memo.verifyOK {
			ses.coalesced.Add(1)
			*c.resp = ses.memo.verify
		} else if c.err = ses.doVerify(c.resp); c.err == nil {
			ses.memo.verifyOK = true
			ses.memo.verify = *c.resp
		}
	case OpColor:
		ses.nColor.Add(1)
		name := c.req.Algorithm
		if name == "" {
			name = "relaxed"
		}
		if ses.memo.colorOK && ses.memo.colorAlg == name && ses.memo.colorSeed == c.req.Seed {
			ses.coalesced.Add(1)
			*c.resp = ses.memo.color
		} else if c.err = ses.doColor(c.req, c.resp); c.err == nil {
			// A fresh run with different parameters replaced the working
			// coloring; a memo-hit rerun would have produced the same
			// bytes, so the verify memo only drops on the former.
			ses.memo = batchMemo{colorOK: true, colorAlg: name, colorSeed: c.req.Seed, color: *c.resp}
		} else {
			ses.memo = batchMemo{}
		}
	case OpRecolor:
		ses.nRecolor.Add(1)
		ses.memo = batchMemo{}
		c.err = ses.doRecolor(c.req, c.resp)
	default:
		c.err = ErrBadRequest
	}
}

// finishOne is serveOne's deferred epilogue: recover a kernel panic into a
// structured ErrPanicked, fold the kernels' cooperative-cancel sentinels into
// serve's own, and clear the current-request hook either way.
func (ses *session) finishOne(c *call) {
	ses.cur = nil
	if p := recover(); p != nil {
		ses.srv.panics.Add(1)
		ses.nPanics.Add(1)
		// Whatever the panicking op half-wrote is suspect; drop the window's
		// memo so no later request coalesces onto it.
		ses.memo = batchMemo{}
		c.err = fmt.Errorf("%w: %v", ErrPanicked, p)
		return
	}
	if c.err != nil &&
		(errors.Is(c.err, ErrCanceled) || errors.Is(c.err, trial.ErrCanceled) || errors.Is(c.err, congest.ErrCanceled)) {
		c.err = ErrCanceled
		ses.srv.canceled.Add(1)
		ses.nCanceled.Add(1)
	}
}

// finish answers one dispatched call: undo its admission accounting (the
// session's pending count and, when it was the last in-flight request, the
// server-wide in-flight bytes), then release the waiter.
func (ses *session) finish(c *call) {
	if ses.pending.Add(-1) == 0 {
		ses.srv.inflightBytes.Add(-ses.est)
	}
	c.done <- struct{}{}
}

// drainQuarantined fails every still-queued request after the worker removed
// its own session from the cache (removeQuarantined returned true: no
// sentinel is queued and no new dispatcher can reach the channel).
func (ses *session) drainQuarantined() {
	for {
		select {
		case c := <-ses.reqs:
			ses.nRequests.Add(1)
			c.err = ErrQuarantined
			ses.finish(c)
		default:
			return
		}
	}
}

// closeKernels releases the warm kernels (and through them their
// congest.Engine goroutines). Called exactly once, by the worker, on
// shutdown — the lifecycle the leak tests pin.
func (ses *session) closeKernels() {
	if ses.rs != nil {
		ses.rs.Close()
		ses.rs = nil
	}
	if ses.tk != nil {
		ses.tk.Close()
		ses.tk = nil
	}
}

// kernel memoizes the session's warm trial kernel — the same hook the sweep
// grid hands to alg.Engine.Kernel, so repeated color requests share one
// network and one set of flat per-node arrays.
func (ses *session) kernel() *trial.Runner {
	if ses.tk == nil {
		ses.tk = trial.NewRunner(ses.g, ses.srv.opts.Parallel, ses.srv.opts.Workers)
		// The runner-level hook points at "the current request's cancel
		// flag", so the long-lived kernel follows per-request deadlines
		// without threading Cancel through every registry algorithm's Config.
		ses.tk.SetCancel(ses.cancelFn)
	}
	return ses.tk
}

func (ses *session) lazyChecker() *verify.Checker {
	if ses.checker == nil {
		ses.checker = verify.NewChecker()
		ses.checker.SetCancel(ses.cancelFn)
	}
	return ses.checker
}

// doColor runs a registry algorithm on the warm kernel and installs the
// result as the session's working coloring.
func (ses *session) doColor(req *Request, resp *Response) error {
	a, name, err := resolveAlgorithm(req.Algorithm)
	if err != nil {
		return err
	}
	res, err := a.Run(ses.g, alg.Engine{
		Parallel: ses.srv.opts.Parallel,
		Workers:  ses.srv.opts.Workers,
		Kernel:   ses.kernel,
	}, req.Seed)
	if err != nil {
		return err
	}
	if ses.rs != nil {
		// The repair session's working coloring is superseded; rebuild it
		// lazily from the fresh one on the next recolor.
		ses.rs.Close()
		ses.rs = nil
	}
	ses.colors = res.Coloring
	ses.palette = res.PaletteSize
	ses.algorithm = name
	ses.isD2 = alg.IsD2Coloring(a)
	resp.Algorithm = name
	resp.Hash = HashColors(res.Coloring)
	resp.PaletteSize = res.PaletteSize
	resp.Metrics = res.Metrics
	if ses.isD2 {
		rep := ses.lazyChecker().CheckD2(ses.g, res.Coloring, res.PaletteSize)
		if rep.Canceled {
			// The run itself finished (the coloring is installed), but its
			// validation was cut short — report cancellation rather than an
			// unverified "valid: false".
			return ErrCanceled
		}
		resp.Valid = rep.Valid
		resp.ColorsUsed = rep.ColorsUsed
		resp.MaxColor = rep.MaxColor
	} else {
		// MIS-shaped outputs have no d2 constraint to check; Valid is
		// vacuously true.
		resp.Valid = true
		resp.ColorsUsed = res.ColorsUsed()
		for _, c := range res.Coloring {
			if c > resp.MaxColor {
				resp.MaxColor = c
			}
		}
	}
	return nil
}

// doVerify checks the working coloring on the warm checker. Allocation-free
// once the checker is warm and the coloring valid.
func (ses *session) doVerify(resp *Response) error {
	if ses.colors == nil {
		return ErrNotColored
	}
	rep := ses.lazyChecker().CheckD2(ses.g, ses.colors, ses.palette)
	if rep.Canceled {
		return ErrCanceled
	}
	resp.Algorithm = ses.algorithm
	resp.Hash = HashColors(ses.colors)
	resp.PaletteSize = ses.palette
	resp.Valid = rep.Valid
	resp.ColorsUsed = rep.ColorsUsed
	resp.MaxColor = rep.MaxColor
	return nil
}

// doRecolor is one churn epoch against the session's repair kernel: corrupt
// k colors and repair them (Corrupt), repair an explicit dirty set (Dirty),
// or run the self-stabilization sweep (neither). The explicit-dirty path on
// a ModeGlobal server is allocation-free once warm.
func (ses *session) doRecolor(req *Request, resp *Response) error {
	if ses.colors == nil {
		return ErrNotColored
	}
	if !ses.isD2 {
		return ErrNotD2
	}
	if ses.rs == nil {
		ses.rs = repair.NewSession(ses.g, ses.colors, repair.Options{
			Palette:        ses.palette,
			Mode:           ses.srv.opts.RepairMode,
			Parallel:       ses.srv.opts.Parallel,
			Workers:        ses.srv.opts.Workers,
			ScratchReports: true,
			Cancel:         ses.cancelFn,
		})
		// The repair session copies and then owns the working coloring;
		// alias it so verify sees every repair.
		ses.colors = ses.rs.Colors()
	}
	switch {
	case req.Corrupt > 0:
		inj := fault.NewInjector(req.Seed)
		victims := inj.CorruptColors(ses.g, ses.rs.Colors(), req.Corrupt, fault.TargetUniform, ses.rs.Palette())
		rep, err := ses.rs.Repair(victims, req.Seed)
		if err != nil {
			return err
		}
		fillRepairResponse(resp, rep, 1)
	case len(req.Dirty) > 0:
		rep, err := ses.rs.Repair(req.Dirty, req.Seed)
		if err != nil {
			return err
		}
		fillRepairResponse(resp, rep, 1)
	default:
		reports, err := ses.rs.Stabilize(req.Seed, 0)
		for _, rep := range reports {
			resp.Dirty += rep.Dirty
			resp.Ball += rep.Ball
			resp.Recolored += len(rep.Recolored)
			resp.Phases += rep.Phases
		}
		resp.Iterations = len(reports)
		if len(reports) > 0 {
			resp.Metrics = reports[len(reports)-1].Metrics
		}
		if err != nil {
			return err
		}
		resp.Complete = true
	}
	resp.Algorithm = ses.algorithm
	resp.PaletteSize = ses.palette
	resp.Hash = HashColors(ses.rs.Colors())
	return nil
}

func fillRepairResponse(resp *Response, rep repair.Report, iters int) {
	resp.Dirty = rep.Dirty
	resp.Ball = rep.Ball
	resp.Recolored = len(rep.Recolored)
	resp.Phases = rep.Phases
	resp.Iterations = iters
	resp.Metrics = rep.Metrics
	resp.Complete = rep.Complete
}

func (ses *session) statsSnapshot() SessionStats {
	return SessionStats{
		Session:         ses.key,
		Nodes:           ses.g.NumNodes(),
		Edges:           ses.g.NumEdges(),
		EstimatedBytes:  ses.est,
		Requests:        ses.nRequests.Load(),
		Color:           ses.nColor.Load(),
		Verify:          ses.nVerify.Load(),
		Recolor:         ses.nRecolor.Load(),
		Batches:         ses.nBatches.Load(),
		BatchedRequests: ses.nBatched.Load(),
		MaxBatch:        ses.maxBatch.Load(),
		Coalesced:       ses.coalesced.Load(),
		QueueDepth:      ses.pending.Load(),
		Shed:            ses.nShed.Load(),
		Canceled:        ses.nCanceled.Load(),
		Panics:          ses.nPanics.Load(),
	}
}
