package serve

import (
	"errors"
	"testing"

	"d2color/internal/alg"
	"d2color/internal/fault"
	"d2color/internal/graph"
	"d2color/internal/repair"

	// Blank imports populate the registry with every default instance.
	_ "d2color/internal/baseline"
	_ "d2color/internal/detd2"
	_ "d2color/internal/mis"
	_ "d2color/internal/polylogd2"
	_ "d2color/internal/randd2"
)

// goldenSpecs mirrors the registry golden's family list (internal/alg's
// goldenFamilies) as generator specs, so the served byte-identity claim is
// pinned against exactly the instances the palette-kernel golden pins.
func goldenSpecs() []struct {
	name string
	spec graph.GeneratorSpec
} {
	return []struct {
		name string
		spec graph.GeneratorSpec
	}{
		{"gnp", graph.GeneratorSpec{Kind: "gnp-avg", N: 96, P: 8, Seed: 3}},
		{"unitdisk", graph.GeneratorSpec{Kind: "unitdisk", N: 90, P: 0.16, Seed: 5}},
		{"grid", graph.GeneratorSpec{Kind: "grid", N: 9, M: 9}},
		{"cliquechain", graph.GeneratorSpec{Kind: "cliquechain", N: 4, M: 5}},
		{"star", graph.GeneratorSpec{Kind: "star", N: 24}},
		{"regular", graph.GeneratorSpec{Kind: "regular", N: 80, Degree: 6, Seed: 7}},
	}
}

// TestServedMatchesDirect pins the tentpole byte-identity claim: a color
// request against a warm session returns exactly the coloring hash, palette
// and Metrics of a direct alg.Run on a fresh graph, for every registered
// algorithm × golden family × seed — even though the session reuses one warm
// kernel across all of them.
func TestServedMatchesDirect(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full registry three times per family")
	}
	seeds := []uint64{1, 7, 42}
	for _, fam := range goldenSpecs() {
		srv := NewServer(Options{})
		spec := fam.spec
		var resp Response
		if err := srv.Do(&Request{Op: OpOpen, Session: fam.name, Spec: &spec}, &resp); err != nil {
			t.Fatalf("%s: open: %v", fam.name, err)
		}
		g, err := fam.spec.Generate()
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range alg.All() {
			for _, seed := range seeds {
				direct, err := a.Run(g, alg.Engine{}, seed)
				if err != nil {
					t.Fatalf("%s/%s/%d: direct: %v", fam.name, a.Name(), seed, err)
				}
				req := Request{Op: OpColor, Session: fam.name, Algorithm: a.Name(), Seed: seed}
				if err := srv.Do(&req, &resp); err != nil {
					t.Fatalf("%s/%s/%d: served: %v", fam.name, a.Name(), seed, err)
				}
				if want := HashColors(direct.Coloring); resp.Hash != want {
					t.Errorf("%s/%s/%d: served hash %016x != direct %016x", fam.name, a.Name(), seed, resp.Hash, want)
				}
				if resp.PaletteSize != direct.PaletteSize {
					t.Errorf("%s/%s/%d: served palette %d != direct %d", fam.name, a.Name(), seed, resp.PaletteSize, direct.PaletteSize)
				}
				if resp.Metrics != direct.Metrics {
					t.Errorf("%s/%s/%d: served metrics %+v != direct %+v", fam.name, a.Name(), seed, resp.Metrics, direct.Metrics)
				}
				if want := direct.ColorsUsed(); resp.ColorsUsed != want {
					t.Errorf("%s/%s/%d: served colorsUsed %d != direct %d", fam.name, a.Name(), seed, resp.ColorsUsed, want)
				}
				if alg.IsD2Coloring(a) && !resp.Valid {
					t.Errorf("%s/%s/%d: served coloring reported invalid", fam.name, a.Name(), seed)
				}
			}
		}
		srv.Close()
	}
}

// TestServeRecolorMatchesDirectRepair pins recolor byte-identity: the served
// churn epoch (corrupt k colors, repair the victims) produces exactly the
// working coloring of a direct repair.Session fed the same injector script,
// in both repair modes.
func TestServeRecolorMatchesDirectRepair(t *testing.T) {
	spec := graph.GeneratorSpec{Kind: "gnp-avg", N: 500, P: 8, Seed: 11}
	for _, mode := range []repair.Mode{repair.ModeLocal, repair.ModeGlobal} {
		srv := NewServer(Options{RepairMode: mode})
		var resp Response
		if err := srv.Do(&Request{Op: OpOpen, Session: "g", Spec: &spec}, &resp); err != nil {
			t.Fatal(err)
		}
		if err := srv.Do(&Request{Op: OpColor, Session: "g", Algorithm: "relaxed", Seed: 5}, &resp); err != nil {
			t.Fatal(err)
		}

		// The direct twin: same graph, same algorithm, same repair options,
		// same fault script.
		g, _ := spec.Generate()
		a, _ := alg.Get("relaxed")
		direct, err := a.Run(g, alg.Engine{}, 5)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := resp.Hash, HashColors(direct.Coloring); got != want {
			t.Fatalf("mode %v: initial coloring diverged before any repair", mode)
		}
		rs := repair.NewSession(g, direct.Coloring, repair.Options{
			Palette: direct.PaletteSize, Mode: mode,
		})
		defer rs.Close()

		for epoch := uint64(0); epoch < 3; epoch++ {
			seed := 100 + epoch
			if err := srv.Do(&Request{Op: OpRecolor, Session: "g", Corrupt: 20, Seed: seed}, &resp); err != nil {
				t.Fatalf("mode %v epoch %d: served recolor: %v", mode, epoch, err)
			}
			inj := fault.NewInjector(seed)
			victims := inj.CorruptColors(g, rs.Colors(), 20, fault.TargetUniform, rs.Palette())
			rep, err := rs.Repair(victims, seed)
			if err != nil {
				t.Fatalf("mode %v epoch %d: direct repair: %v", mode, epoch, err)
			}
			if want := HashColors(rs.Colors()); resp.Hash != want {
				t.Errorf("mode %v epoch %d: served hash %016x != direct %016x", mode, epoch, resp.Hash, want)
			}
			if resp.Dirty != rep.Dirty || resp.Ball != rep.Ball || resp.Recolored != len(rep.Recolored) {
				t.Errorf("mode %v epoch %d: served (dirty=%d ball=%d recolored=%d) != direct (%d %d %d)",
					mode, epoch, resp.Dirty, resp.Ball, resp.Recolored, rep.Dirty, rep.Ball, len(rep.Recolored))
			}
			if resp.Metrics != rep.Metrics {
				t.Errorf("mode %v epoch %d: served metrics %+v != direct %+v", mode, epoch, resp.Metrics, rep.Metrics)
			}
			if !resp.Complete {
				t.Errorf("mode %v epoch %d: served repair incomplete", mode, epoch)
			}
		}

		// Explicit-dirty path.
		dirty := []graph.NodeID{3, 77, 250, 499}
		if err := srv.Do(&Request{Op: OpRecolor, Session: "g", Dirty: dirty, Seed: 7}, &resp); err != nil {
			t.Fatal(err)
		}
		if _, err := rs.Repair(dirty, 7); err != nil {
			t.Fatal(err)
		}
		if want := HashColors(rs.Colors()); resp.Hash != want {
			t.Errorf("mode %v: explicit-dirty served hash %016x != direct %016x", mode, resp.Hash, want)
		}

		// Stabilize path on a clean coloring: no iterations, hash unchanged.
		if err := srv.Do(&Request{Op: OpRecolor, Session: "g", Seed: 9}, &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Iterations != 0 || !resp.Complete {
			t.Errorf("mode %v: stabilize on clean coloring: iterations=%d complete=%v", mode, resp.Iterations, resp.Complete)
		}
		if want := HashColors(rs.Colors()); resp.Hash != want {
			t.Errorf("mode %v: stabilize changed the coloring", mode)
		}

		// The served working coloring must verify clean after the epochs.
		if err := srv.Do(&Request{Op: OpVerify, Session: "g"}, &resp); err != nil {
			t.Fatal(err)
		}
		if !resp.Valid {
			t.Errorf("mode %v: post-churn working coloring invalid", mode)
		}
		srv.Close()
	}
}

// TestServeBatchedAndUnbatchedIdentical drives the same request sequence
// through a batched and an unbatched server: every response must match
// field-for-field — batching is a scheduling optimization, never a semantic
// one.
func TestServeBatchedAndUnbatchedIdentical(t *testing.T) {
	spec := graph.GeneratorSpec{Kind: "ba", N: 300, Degree: 3, Seed: 2}
	run := func(unbatched bool) []Response {
		srv := NewServer(Options{Unbatched: unbatched})
		defer srv.Close()
		var out []Response
		var resp Response
		do := func(req Request) {
			if err := srv.Do(&req, &resp); err != nil {
				t.Fatalf("unbatched=%v %s: %v", unbatched, req.Op, err)
			}
			r := resp
			r.Stats = nil
			out = append(out, r)
		}
		do(Request{Op: OpOpen, Session: "x", Spec: &spec})
		do(Request{Op: OpColor, Session: "x", Algorithm: "greedy", Seed: 1})
		do(Request{Op: OpVerify, Session: "x"})
		do(Request{Op: OpRecolor, Session: "x", Corrupt: 5, Seed: 3})
		do(Request{Op: OpVerify, Session: "x"})
		do(Request{Op: OpColor, Session: "x", Algorithm: "relaxed", Seed: 4})
		do(Request{Op: OpRecolor, Session: "x", Dirty: []graph.NodeID{1, 2, 3}, Seed: 5})
		do(Request{Op: OpVerify, Session: "x"})
		return out
	}
	batched, unbatched := run(false), run(true)
	for i := range batched {
		if batched[i] != unbatched[i] {
			t.Errorf("response %d differs: batched %+v != unbatched %+v", i, batched[i], unbatched[i])
		}
	}
}

// TestServeEvictionLRU pins the budget/eviction contract: opening past the
// resident budget evicts the least-recently-used session, which then behaves
// exactly like one that never existed.
func TestServeEvictionLRU(t *testing.T) {
	spec := graph.GeneratorSpec{Kind: "ba", N: 200, Degree: 3, Seed: 1}
	// Learn one session's estimate, then budget for two.
	probe := NewServer(Options{})
	var resp Response
	if err := probe.Do(&Request{Op: OpOpen, Session: "p", Spec: &spec}, &resp); err != nil {
		t.Fatal(err)
	}
	est := resp.EstimatedBytes
	probe.Close()
	if est <= 0 {
		t.Fatalf("estimate = %d, want > 0", est)
	}

	srv := NewServer(Options{ResidentBudget: 2*est + est/2})
	defer srv.Close()
	for _, name := range []string{"a", "b"} {
		s := spec
		if err := srv.Do(&Request{Op: OpOpen, Session: name, Spec: &s}, &resp); err != nil {
			t.Fatal(err)
		}
		if err := srv.Do(&Request{Op: OpColor, Session: name, Algorithm: "greedy", Seed: 1}, &resp); err != nil {
			t.Fatal(err)
		}
	}
	// Touch "a" so "b" is the LRU victim.
	if err := srv.Do(&Request{Op: OpVerify, Session: "a"}, &resp); err != nil {
		t.Fatal(err)
	}
	s := spec
	if err := srv.Do(&Request{Op: OpOpen, Session: "c", Spec: &s}, &resp); err != nil {
		t.Fatal(err)
	}
	if err := srv.Do(&Request{Op: OpVerify, Session: "b"}, &resp); !errors.Is(err, ErrUnknownSession) {
		t.Errorf("evicted session b: err = %v, want ErrUnknownSession", err)
	}
	if err := srv.Do(&Request{Op: OpVerify, Session: "a"}, &resp); err != nil {
		t.Errorf("session a should have survived: %v", err)
	}
	st := srv.Stats()
	if st.Evicted != 1 {
		t.Errorf("evictions = %d, want 1", st.Evicted)
	}
	if st.ResidentEstimate != 2*est {
		t.Errorf("resident estimate = %d, want %d", st.ResidentEstimate, 2*est)
	}
	// An evicted name is reusable immediately.
	s = spec
	if err := srv.Do(&Request{Op: OpOpen, Session: "b", Spec: &s}, &resp); err != nil {
		t.Errorf("reopen of evicted b: %v", err)
	}
}

// TestServeErrors pins the error contract of the request surface.
func TestServeErrors(t *testing.T) {
	srv := NewServer(Options{})
	var resp Response
	if err := srv.Do(&Request{Op: OpVerify, Session: "nope"}, &resp); !errors.Is(err, ErrUnknownSession) {
		t.Errorf("verify on unknown session: %v", err)
	}
	if err := srv.Do(&Request{Op: OpOpen, Session: "x"}, &resp); !errors.Is(err, ErrBadRequest) {
		t.Errorf("open without spec: %v", err)
	}
	spec := graph.GeneratorSpec{Kind: "star", N: 10}
	if err := srv.Do(&Request{Op: OpOpen, Session: "x", Spec: &spec}, &resp); err != nil {
		t.Fatal(err)
	}
	if err := srv.Do(&Request{Op: OpOpen, Session: "x", Spec: &spec}, &resp); !errors.Is(err, ErrSessionExists) {
		t.Errorf("duplicate open: %v", err)
	}
	if err := srv.Do(&Request{Op: OpVerify, Session: "x"}, &resp); !errors.Is(err, ErrNotColored) {
		t.Errorf("verify before color: %v", err)
	}
	if err := srv.Do(&Request{Op: OpRecolor, Session: "x", Corrupt: 2, Seed: 1}, &resp); !errors.Is(err, ErrNotColored) {
		t.Errorf("recolor before color: %v", err)
	}
	if err := srv.Do(&Request{Op: OpColor, Session: "x", Algorithm: "mis"}, &resp); err != nil {
		t.Fatal(err)
	}
	if err := srv.Do(&Request{Op: OpRecolor, Session: "x", Corrupt: 2, Seed: 1}, &resp); !errors.Is(err, ErrNotD2) {
		t.Errorf("recolor on MIS session: %v", err)
	}
	if err := srv.Do(&Request{Op: OpColor, Session: "x", Algorithm: "no-such-alg"}, &resp); !errors.Is(err, ErrBadRequest) {
		t.Errorf("unknown algorithm: %v", err)
	}
	if err := srv.Do(&Request{Op: Op("bogus"), Session: "x"}, &resp); !errors.Is(err, ErrBadRequest) {
		t.Errorf("unknown op: %v", err)
	}
	srv.Close()
	if err := srv.Do(&Request{Op: OpVerify, Session: "x"}, &resp); !errors.Is(err, ErrServerClosed) {
		t.Errorf("request after close: %v", err)
	}
}
