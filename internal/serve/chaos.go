package serve

import (
	"math"
	"time"
)

// This file is the chaos harness: deterministic fault injection for the
// serving plane, mirroring internal/fault's design for the simulator —
// SplitMix64-seeded streams for scheduling-shaped faults, hash-pure plans
// where a fault must be a function of the request alone. Transport-side
// faults (delayed dispatch, deadline storms) live in ChaosTransport, a
// middleware any Transport composes with; worker-panic injection is
// server-side, through Options.ChaosPanic and the PanicPlan builder.

// ChaosOptions shapes one chaos run. The zero value injects nothing.
type ChaosOptions struct {
	// Seed roots every fault stream (per-worker transports derive disjoint
	// streams from it; PanicPlan hashes it into every decision).
	Seed uint64
	// DelayFraction of dispatches sleep a uniform duration up to MaxDelay
	// before reaching the wire — scheduling jitter that breaks up the
	// closed-loop lockstep and widens batching windows unpredictably.
	DelayFraction float64
	MaxDelay      time.Duration
	// CancelFraction of requests have their deadline forced to
	// StormDeadlineMillis (default 1ms) — the deadline storm: most of these
	// cancel while queued or mid-kernel, exercising the cooperative
	// cancellation path under load.
	CancelFraction      float64
	StormDeadlineMillis int64
	// PanicFraction of requests (hash-pure per request content, see
	// PanicPlan) panic inside the session worker — the crash-isolation and
	// quarantine driver. Transport middleware cannot inject these; RunLoad
	// installs PanicPlan(Seed, PanicFraction) as the in-process server's
	// ChaosPanic hook.
	PanicFraction float64
}

// transportActive reports whether any transport-side fault is configured.
func (o ChaosOptions) transportActive() bool {
	return (o.DelayFraction > 0 && o.MaxDelay > 0) || o.CancelFraction > 0
}

// forWorker derives the worker-local option set: same shape, disjoint seed —
// so per-worker fault streams are independent and the whole run is
// reproducible from one root seed.
func (o ChaosOptions) forWorker(w int) ChaosOptions {
	o.Seed = o.Seed ^ (uint64(w+1) * 0x2545f4914f6cdd1d)
	return o
}

// ChaosTransport is fault-injecting middleware around any Transport. Like
// the transports it wraps it is not safe for concurrent use; create one per
// worker (forWorker keeps their streams disjoint).
type ChaosTransport struct {
	inner Transport
	opts  ChaosOptions
	rng   splitmix64
}

// NewChaosTransport wraps inner with the configured fault injection.
func NewChaosTransport(inner Transport, opts ChaosOptions) *ChaosTransport {
	return &ChaosTransport{inner: inner, opts: opts, rng: splitmix64{state: opts.Seed ^ 0x9e3779b97f4a7c15}}
}

// Do injects the configured faults, then forwards to the wrapped transport.
// A forced storm deadline overwrites the request's own DeadlineMillis and
// persists across the caller's retries of the same request — a client
// retrying into a storm keeps its tightened deadline, which is exactly the
// cascading-timeout shape the harness wants to exercise.
func (t *ChaosTransport) Do(req *Request, resp *Response) error {
	if f := t.opts.DelayFraction; f > 0 && t.opts.MaxDelay > 0 && t.rng.float64() < f {
		time.Sleep(time.Duration(t.rng.float64() * float64(t.opts.MaxDelay)))
	}
	if f := t.opts.CancelFraction; f > 0 && t.rng.float64() < f {
		d := t.opts.StormDeadlineMillis
		if d <= 0 {
			d = 1
		}
		req.DeadlineMillis = d
	}
	return t.inner.Do(req, resp)
}

// PanicPlan builds a deterministic Options.ChaosPanic hook: whether a request
// panics is a pure hash of (seed, op, session, request seed, corrupt count),
// independent of scheduling order or which worker executes it. Under a
// deterministic load schedule the set of panicking request contents is
// therefore itself deterministic — identical requests panic identically, so
// a hot-key storm produces the consecutive-panic streaks that trip the
// quarantine. Returns nil for fraction <= 0; fraction >= 1 panics on
// everything.
func PanicPlan(seed uint64, fraction float64) func(*Request) bool {
	if fraction <= 0 {
		return nil
	}
	if fraction >= 1 {
		return func(*Request) bool { return true }
	}
	limit := uint64(fraction * float64(math.MaxUint64))
	return func(req *Request) bool {
		return hashRequest(seed, req) < limit
	}
}

// hashRequest is FNV-64a over the request's identity fields, finalized with
// a SplitMix64 mix so low-entropy inputs still spread across the full range.
func hashRequest(seed uint64, req *Request) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64) ^ seed
	fold := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= prime64
		}
		h ^= 0xff // separator
		h *= prime64
	}
	fold(string(req.Op))
	fold(req.Session)
	fold(req.Algorithm)
	w := req.Seed ^ uint64(req.Corrupt)<<48
	for b := 0; b < 8; b++ {
		h ^= w & 0xff
		h *= prime64
		w >>= 8
	}
	h += 0x9e3779b97f4a7c15
	h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
	h = (h ^ (h >> 27)) * 0x94d049bb133111eb
	return h ^ (h >> 31)
}
