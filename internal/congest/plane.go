package congest

import "d2color/internal/graph"

// plane is the preallocated, edge-sliced message plane at the heart of the
// engine. Every directed edge of the topology owns a fixed slot (see
// graph.EdgeIndex); a slot holds the messages sent over that edge in the
// current round in a bucket whose backing array is reused across rounds, so
// a warmed-up simulation sends and delivers without allocating.
//
// Freshness is tracked with a per-slot generation stamp instead of clearing:
// advancing the generation at the end of a round logically empties every
// slot in O(1). A slot's bucket is truncated lazily on its first write of a
// round.
//
// Ownership discipline: only the tail node of a directed edge writes its
// slot, and writes happen strictly before reads of the same round (the
// engines place a barrier between the compute and delivery phases). That
// makes the plane data-race free under the sharded engine without any
// locking.
type plane struct {
	ix    *graph.EdgeIndex
	slots [][]Message // per-slot buckets; capacity persists across rounds
	gen   []uint32    // generation that last wrote each slot
	cur   uint32      // generation of the round being filled
}

func newPlane(ix *graph.EdgeIndex) *plane {
	n := ix.NumSlots()
	return &plane{
		ix:    ix,
		slots: make([][]Message, n),
		gen:   make([]uint32, n),
		cur:   1,
	}
}

// put appends m to slot e. Must only be called by the node owning the
// out-slot (the edge's tail).
func (p *plane) put(e int32, m Message) {
	if p.gen[e] != p.cur {
		p.gen[e] = p.cur
		p.slots[e] = p.slots[e][:0]
	}
	p.slots[e] = append(p.slots[e], m)
}

// fresh returns the messages written into slot e this round, in send order,
// or nil if the slot was not written.
func (p *plane) fresh(e int32) []Message {
	if p.gen[e] != p.cur {
		return nil
	}
	return p.slots[e]
}

// advance starts the next round's generation, logically clearing every slot.
func (p *plane) advance() {
	p.cur++
	if p.cur == 0 {
		// uint32 wraparound (once every 2³² rounds): wipe the stamps so a
		// slot last written 2³² rounds ago cannot alias as fresh.
		clear(p.gen)
		p.cur = 1
	}
}
