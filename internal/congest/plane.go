package congest

import (
	"sync"

	"d2color/internal/graph"
)

// plane is the preallocated, edge-sliced message plane at the heart of the
// engine. Every directed edge of the topology owns a fixed slot (see
// graph.EdgeIndex); a slot holds the messages sent over that edge in the
// current round.
//
// The storage is two-tier. The first message of a slot's round lives inline
// in a flat []Message — one 24-byte record per slot, no per-slot slice
// header, no per-slot heap object. Every protocol in this repository sends
// at most one message per directed edge per round, so the overflow tier
// (per-slot []Message buckets for the second and later messages) is
// allocated lazily on the first double-send of the plane's lifetime; a
// protocol that never double-sends never pays its 24 bytes per slot of
// headers. At n = 10⁷ / avg degree 8 the inline tier is what bounds the
// plane: ~0.5 GB instead of the ~1 GB the bucket-per-slot layout cost.
//
// Freshness is tracked with a per-slot generation stamp instead of clearing:
// advancing the generation at the end of a round logically empties every
// slot in O(1). A slot's count is reset lazily on its first write of a
// round.
//
// Ownership discipline: only the tail node of a directed edge writes its
// slot, and writes happen strictly before reads of the same round (the
// engines place a barrier between the compute and delivery phases). That
// makes the plane data-race free under the sharded engine without any
// locking; the overflow tier's one-time allocation goes through a sync.Once
// so concurrent first double-sends from different workers stay safe.
type plane struct {
	ix    *graph.EdgeIndex
	first []Message // inline tier: the first message written to each slot this round
	cnt   []int32   // messages written to the slot this round (valid when gen matches)
	gen   []uint32  // generation that last wrote each slot
	cur   uint32    // generation of the round being filled

	extra     [][]Message // overflow tier; nil until the first double-send
	extraOnce sync.Once
}

func newPlane(ix *graph.EdgeIndex) *plane {
	n := ix.NumSlots()
	return &plane{
		ix:    ix,
		first: make([]Message, n),
		cnt:   make([]int32, n),
		gen:   make([]uint32, n),
		cur:   1,
	}
}

// put appends m to slot e. Must only be called by the node owning the
// out-slot (the edge's tail).
func (p *plane) put(e int32, m Message) {
	if p.gen[e] != p.cur {
		p.gen[e] = p.cur
		p.cnt[e] = 1
		p.first[e] = m
		return
	}
	p.extraOnce.Do(p.growExtra)
	if p.cnt[e] == 1 {
		p.extra[e] = p.extra[e][:0] // first overflow write of the round truncates lazily
	}
	p.extra[e] = append(p.extra[e], m)
	p.cnt[e]++
}

// growExtra allocates the overflow tier's headers (once per plane lifetime;
// bucket capacities then persist across rounds like the old layout's did).
func (p *plane) growExtra() {
	p.extra = make([][]Message, len(p.first))
}

// fresh reports whether slot e was written this round.
func (p *plane) fresh(e int32) bool { return p.gen[e] == p.cur }

// appendFresh appends the messages written into slot e this round to dst in
// send order and returns the extended slice plus their total accounted word
// count; words is 0 iff the slot was not written this round.
func (p *plane) appendFresh(e int32, dst []Message) (out []Message, words int) {
	if p.gen[e] != p.cur {
		return dst, 0
	}
	m := p.first[e]
	dst = append(dst, m)
	words = m.words()
	if k := p.cnt[e]; k > 1 {
		for _, om := range p.extra[e][:k-1] {
			dst = append(dst, om)
			words += om.words()
		}
	}
	return dst, words
}

// advance starts the next round's generation, logically clearing every slot.
func (p *plane) advance() {
	p.cur++
	if p.cur == 0 {
		// uint32 wraparound (once every 2³² rounds): wipe the stamps so a
		// slot last written 2³² rounds ago cannot alias as fresh.
		clear(p.gen)
		p.cur = 1
	}
}
