package congest

import (
	"errors"
	"fmt"

	"d2color/internal/graph"
)

// This file provides small reusable CONGEST protocols built on the simulator:
// leader election by max-UID flooding, BFS tree construction and a
// convergecast aggregation. They are the standard building blocks the paper's
// constructions take for granted (flooding live-node information, aggregating
// conditional expectations over cluster trees, ...) and are exercised by the
// library's tests as end-to-end validation of the simulator itself.

// ErrProtocol is returned when a protocol terminates without reaching its
// expected final state (e.g. run on a disconnected graph).
var ErrProtocol = errors.New("congest: protocol failed")

// Message kinds of the built-in protocols. Kinds are scoped to the network a
// protocol runs on, so these values are free for reuse by other protocols.
const (
	kindFloodUID   Kind = iota + 1 // Word = the flooded UID
	kindBFSDepth                   // Word = sender's BFS depth
	kindPartialSum                 // Word = EncodeInt64(partial subtree sum)
)

// FloodMaxResult is the outcome of FloodMax.
type FloodMaxResult struct {
	// LeaderUID is the maximum UID in each node's component, indexed by node.
	LeaderUID []uint64
	// Metrics is the simulation cost.
	Metrics Metrics
}

// floodMaxProcess floods the maximum UID seen so far for a fixed number of
// rounds (an upper bound on the diameter).
type floodMaxProcess struct {
	best   uint64
	rounds int
}

func (p *floodMaxProcess) Step(ctx *Context, round int, inbox []Message) bool {
	if round == 0 {
		p.best = ctx.UID()
	}
	changed := round == 0
	for _, m := range inbox {
		if m.Kind == kindFloodUID && m.Word > p.best {
			p.best = m.Word
			changed = true
		}
	}
	if round >= p.rounds {
		return true
	}
	if changed {
		ctx.Broadcast(kindFloodUID, p.best)
	}
	return false
}

// FloodMax runs max-UID flooding for maxRounds rounds (use an upper bound on
// the diameter; n always works) and returns the maximum UID each node has
// seen — in a connected graph, the elected leader.
func FloodMax(g *graph.Graph, cfg Config, maxRounds int) (FloodMaxResult, error) {
	if maxRounds <= 0 {
		maxRounds = g.NumNodes()
	}
	net := New(g, cfg)
	procs := make([]*floodMaxProcess, g.NumNodes())
	net.SetProcesses(func(v graph.NodeID) Process {
		procs[v] = &floodMaxProcess{rounds: maxRounds}
		return procs[v]
	})
	if _, err := net.Run(); err != nil {
		return FloodMaxResult{}, fmt.Errorf("floodmax: %w", err)
	}
	res := FloodMaxResult{LeaderUID: make([]uint64, g.NumNodes()), Metrics: net.Metrics()}
	for v, p := range procs {
		res.LeaderUID[v] = p.best
	}
	return res, nil
}

// BFSTreeResult is the outcome of BFSTree.
type BFSTreeResult struct {
	// Parent[v] is v's parent in the BFS tree rooted at Root; the root's
	// parent is itself; unreachable nodes have parent -1.
	Parent []graph.NodeID
	// Depth[v] is the BFS depth (-1 if unreachable).
	Depth []int
	// Metrics is the simulation cost.
	Metrics Metrics
}

type bfsProcess struct {
	root     bool
	joined   bool
	parent   graph.NodeID
	depth    int
	maxRound int
}

func (p *bfsProcess) Step(ctx *Context, round int, inbox []Message) bool {
	if round == 0 && p.root {
		p.joined = true
		p.depth = 0
		p.parent = ctx.NodeID()
		ctx.Broadcast(kindBFSDepth, 0)
	}
	if !p.joined {
		for _, m := range inbox {
			if m.Kind == kindBFSDepth {
				p.joined = true
				p.parent = m.From
				p.depth = int(m.Word) + 1
				ctx.Broadcast(kindBFSDepth, uint64(p.depth))
				break
			}
		}
	}
	return round >= p.maxRound
}

// BFSTree builds a BFS spanning tree rooted at root. maxRounds bounds the
// execution (use an upper bound on the eccentricity of the root; n works).
func BFSTree(g *graph.Graph, cfg Config, root graph.NodeID, maxRounds int) (BFSTreeResult, error) {
	n := g.NumNodes()
	if int(root) < 0 || int(root) >= n {
		return BFSTreeResult{}, fmt.Errorf("%w: root %d out of range", ErrProtocol, root)
	}
	if maxRounds <= 0 {
		maxRounds = n
	}
	net := New(g, cfg)
	procs := make([]*bfsProcess, n)
	net.SetProcesses(func(v graph.NodeID) Process {
		procs[v] = &bfsProcess{root: v == root, maxRound: maxRounds}
		return procs[v]
	})
	if _, err := net.Run(); err != nil {
		return BFSTreeResult{}, fmt.Errorf("bfstree: %w", err)
	}
	res := BFSTreeResult{
		Parent:  make([]graph.NodeID, n),
		Depth:   make([]int, n),
		Metrics: net.Metrics(),
	}
	for v, p := range procs {
		if p.joined {
			res.Parent[v] = p.parent
			res.Depth[v] = p.depth
		} else {
			res.Parent[v] = -1
			res.Depth[v] = -1
		}
	}
	return res, nil
}

// ConvergecastSum aggregates the sum of per-node values up a BFS tree to the
// root and returns the total the root computed. The tree must come from
// BFSTree on the same graph; unreachable nodes are ignored. The protocol runs
// for depth(tree) rounds: in round r, nodes at depth maxDepth-r send their
// partial sums to their parents.
func ConvergecastSum(g *graph.Graph, cfg Config, tree BFSTreeResult, values []int64) (int64, Metrics, error) {
	n := g.NumNodes()
	if len(values) != n || len(tree.Parent) != n {
		return 0, Metrics{}, fmt.Errorf("%w: convergecast input lengths mismatch", ErrProtocol)
	}
	maxDepth := 0
	for _, d := range tree.Depth {
		if d > maxDepth {
			maxDepth = d
		}
	}
	sums := make([]int64, n)
	copy(sums, values)

	net := New(g, cfg)
	var rootTotal int64
	net.SetProcesses(func(v graph.NodeID) Process {
		return ProcessFunc(func(ctx *Context, round int, inbox []Message) bool {
			for _, m := range inbox {
				if m.Kind == kindPartialSum {
					sums[v] += DecodeInt64(m.Word)
				}
			}
			depth := tree.Depth[v]
			if depth < 0 {
				return true
			}
			// Send to the parent exactly when every child has reported:
			// children are at depth+1 and send in round maxDepth-(depth+1),
			// so this node sends in round maxDepth-depth.
			if round == maxDepth-depth {
				if depth == 0 {
					rootTotal = sums[v]
					return true
				}
				_ = ctx.Send(tree.Parent[v], kindPartialSum, EncodeInt64(sums[v]))
				return true
			}
			return false
		})
	})
	if _, err := net.Run(); err != nil {
		return 0, Metrics{}, fmt.Errorf("convergecast: %w", err)
	}
	return rootTotal, net.Metrics(), nil
}
