package congest

import "fmt"

// Metrics aggregates the cost of a simulation run. Rounds counts simulated
// synchronous rounds; ChargedRounds counts additional rounds accounted via
// ChargeRounds for pipelined sub-protocols (see the package comment);
// TotalRounds is their sum and is the quantity the experiments report.
type Metrics struct {
	Rounds               int
	ChargedRounds        int
	MessagesSent         int
	WordsSent            int
	MaxEdgeWordsPerRound int // maximum words sent over one directed edge in one round
	BandwidthViolations  int // rounds×edges where the configured limit was exceeded
	ProtocolViolations   int // sends to non-neighbors or other model violations (messages dropped)
	HaltedNodes          int
}

// TotalRounds returns simulated plus charged rounds.
func (m Metrics) TotalRounds() int { return m.Rounds + m.ChargedRounds }

// Add returns the element-wise sum of two metrics (MaxEdgeWordsPerRound takes
// the max). Used when an algorithm is composed of several simulator runs on
// the same graph.
func (m Metrics) Add(o Metrics) Metrics {
	out := Metrics{
		Rounds:              m.Rounds + o.Rounds,
		ChargedRounds:       m.ChargedRounds + o.ChargedRounds,
		MessagesSent:        m.MessagesSent + o.MessagesSent,
		WordsSent:           m.WordsSent + o.WordsSent,
		BandwidthViolations: m.BandwidthViolations + o.BandwidthViolations,
		ProtocolViolations:  m.ProtocolViolations + o.ProtocolViolations,
		HaltedNodes:         o.HaltedNodes,
	}
	out.MaxEdgeWordsPerRound = m.MaxEdgeWordsPerRound
	if o.MaxEdgeWordsPerRound > out.MaxEdgeWordsPerRound {
		out.MaxEdgeWordsPerRound = o.MaxEdgeWordsPerRound
	}
	return out
}

// String renders the metrics on one line.
func (m Metrics) String() string {
	return fmt.Sprintf("rounds=%d (+%d charged = %d) msgs=%d words=%d maxEdgeWords=%d bwViol=%d protoViol=%d",
		m.Rounds, m.ChargedRounds, m.TotalRounds(), m.MessagesSent, m.WordsSent,
		m.MaxEdgeWordsPerRound, m.BandwidthViolations, m.ProtocolViolations)
}
