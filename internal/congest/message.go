// Package congest implements a simulator for the synchronous CONGEST model
// of distributed computing (Peleg 2000), the model the paper's algorithms are
// designed for.
//
// The network topology is an undirected graph. Computation proceeds in
// synchronous rounds; in every round each node performs arbitrary local
// computation and sends one message of O(log n) bits to each of its
// neighbors. Messages sent in round r are delivered at the start of round
// r+1.
//
// The simulator offers:
//
//   - two engine implementations behind the Engine interface, selected by
//     Config: a sequential engine and a sharded-parallel engine that runs
//     both the per-node state machines and message delivery on a pool of
//     goroutines, sharded by node. The two are byte-deterministic with each
//     other (identical message orders, colorings and Metrics);
//   - a preallocated, edge-sliced message plane: every directed edge owns a
//     fixed slot (graph.EdgeIndex), outbox buckets and inbox buffers are
//     reused across rounds, and inboxes arrive sorted by sender by
//     construction — a warmed-up simulation executes rounds without
//     allocating;
//   - bandwidth accounting: every message declares its size in O(log n)-bit
//     words, and the simulator records the maximum per-edge per-round load
//     and any violations of a configured bandwidth limit;
//   - round charging: the paper frequently pipelines fixed-length
//     sub-protocols whose internal scheduling does not affect the outcome;
//     ChargeRounds lets an algorithm account for those rounds without
//     simulating each bit (every use in this repository cites the paper's
//     cost statement).
package congest

import (
	"fmt"

	"d2color/internal/graph"
)

// Message is a single CONGEST message. Payload is an arbitrary (typically
// small struct) value; Words declares its size in O(log n)-bit words so the
// simulator can account bandwidth. A Words value of 0 is treated as 1.
type Message struct {
	From    graph.NodeID
	To      graph.NodeID
	Payload any
	Words   int
}

// words returns the accounted size of the message.
func (m Message) words() int {
	if m.Words <= 0 {
		return 1
	}
	return m.Words
}

// String formats the message for diagnostics.
func (m Message) String() string {
	return fmt.Sprintf("msg %d→%d (%d words): %v", m.From, m.To, m.words(), m.Payload)
}
