// Package congest implements a simulator for the synchronous CONGEST model
// of distributed computing (Peleg 2000), the model the paper's algorithms are
// designed for.
//
// The network topology is an undirected graph. Computation proceeds in
// synchronous rounds; in every round each node performs arbitrary local
// computation and sends one message of O(log n) bits to each of its
// neighbors. Messages sent in round r are delivered at the start of round
// r+1.
//
// The simulator offers:
//
//   - two engine implementations behind the Engine interface, selected by
//     Config: a sequential engine and a sharded-parallel engine that runs
//     both the per-node state machines and message delivery on a pool of
//     goroutines, sharded by node. The two are byte-deterministic with each
//     other (identical message orders, colorings and Metrics);
//   - a preallocated, edge-sliced message plane over unboxed messages: every
//     directed edge owns a fixed slot (graph.EdgeIndex), outbox buckets and
//     inbox buffers are reused across rounds, inboxes arrive sorted by sender
//     by construction, and a message's payload is a plain uint64 word (see
//     Message), so a warmed-up simulation executes rounds without touching
//     the allocator at all — including the payloads;
//   - bandwidth accounting: every message declares its size in O(log n)-bit
//     words, and the simulator records the maximum per-edge per-round load
//     and any violations of a configured bandwidth limit;
//   - round charging: the paper frequently pipelines fixed-length
//     sub-protocols whose internal scheduling does not affect the outcome;
//     ChargeRounds lets an algorithm account for those rounds without
//     simulating each bit (every use in this repository cites the paper's
//     cost statement).
package congest

import (
	"fmt"

	"d2color/internal/graph"
)

// Kind is a small per-protocol message tag. Kinds are local to the protocol
// running on a network: two different protocols may reuse the same values.
// The tag models the constant number of message types a CONGEST protocol
// distinguishes (its O(1) bits ride along with the payload word and are
// charged inside the message's declared word count).
type Kind uint8

// Message is a single CONGEST message. The payload is a fixed-width word:
// Kind says which of the protocol's message types this is, and Word carries
// the O(log n)-bit content, encoded by the protocol's codec (see codec.go
// and each protocol's encode/decode helpers). Words declares the size in
// O(log n)-bit words for bandwidth accounting; 0 is treated as 1.
//
// The struct is deliberately flat — no interfaces, no pointers — so that the
// message plane's per-edge buckets hold messages inline and a warmed-up
// round never boxes a payload onto the heap.
type Message struct {
	From  graph.NodeID
	To    graph.NodeID
	Kind  Kind
	Words uint16
	Word  uint64
}

// words returns the accounted size of the message.
func (m Message) words() int {
	if m.Words == 0 {
		return 1
	}
	return int(m.Words)
}

// String formats the message for diagnostics.
func (m Message) String() string {
	return fmt.Sprintf("msg %d→%d kind=%d (%d words): %#x", m.From, m.To, m.Kind, m.words(), m.Word)
}
