package congest

import (
	"testing"

	"d2color/internal/graph"
	"d2color/internal/rng"
)

// hashFaults is a minimal deterministic FaultModel for engine tests: drop
// decisions and crash windows are pure hashes of (seed, round, slot/node), so
// sequential and sharded engines — which consult the model in different
// orders — must still agree byte-for-byte.
type hashFaults struct {
	seed      uint64
	dropP     float64
	crashP    float64
	crashFrom int
	crashTo   int
}

func (f *hashFaults) DropMessage(round int, slot int32) bool {
	var s rng.Source
	s.ResetSplit(f.seed^0xD509, uint64(round)<<32|uint64(uint32(slot)))
	return s.Float64() < f.dropP
}

func (f *hashFaults) Crashed(round int, v graph.NodeID) bool {
	if round < f.crashFrom || round >= f.crashTo {
		return false
	}
	var s rng.Source
	s.ResetSplit(f.seed^0xC4A54, uint64(v))
	return s.Float64() < f.crashP
}

// runDigestRounds runs the digest protocol for a fixed round count with an
// optional activation mask and fault model installed.
func runDigestRounds(t *testing.T, g *graph.Graph, cfg Config, rounds int, mask []bool, f FaultModel) ([]uint64, Metrics) {
	t.Helper()
	net := New(g, cfg)
	defer net.Close()
	procs := make([]*digestProcess, g.NumNodes())
	net.SetProcesses(func(v graph.NodeID) Process {
		procs[v] = &digestProcess{rounds: rounds}
		return procs[v]
	})
	net.SetActive(mask)
	net.SetFaults(f)
	net.RunRounds(rounds)
	out := make([]uint64, len(procs))
	for v := range procs {
		out[v] = procs[v].digest
	}
	return out, net.Metrics()
}

// TestFaultyShardedMatchesSequential pins the byte-identity contract under
// injection: with the same deterministic fault model and activation mask, the
// sharded engine must reproduce the sequential engine's digests and metrics
// at every worker count, exactly as it does in the clean case.
func TestFaultyShardedMatchesSequential(t *testing.T) {
	g := skewGraphN(400, 4, 30)
	mask := make([]bool, g.NumNodes())
	for v := range mask {
		mask[v] = v%5 != 3
	}
	faults := &hashFaults{seed: 99, dropP: 0.2, crashP: 0.3, crashFrom: 2, crashTo: 5}
	const rounds = 8
	wantDigest, wantMetrics := runDigestRounds(t, g, Config{Seed: 11, BandwidthWords: 2}, rounds, mask, faults)
	for _, workers := range []int{1, 3, 8} {
		digest, metrics := runDigestRounds(t, g,
			Config{Seed: 11, BandwidthWords: 2, Parallel: true, Workers: workers}, rounds, mask, faults)
		if metrics != wantMetrics {
			t.Fatalf("workers=%d: metrics diverged\nsharded:    %v\nsequential: %v", workers, metrics, wantMetrics)
		}
		for v := range digest {
			if digest[v] != wantDigest[v] {
				t.Fatalf("workers=%d node %d: digest %x != sequential %x", workers, v, digest[v], wantDigest[v])
			}
		}
	}
}

// TestPartialActivationFreezesNodes: masked-out nodes neither step nor
// receive — their digests stay zero and they send nothing — while active
// nodes keep running.
func TestPartialActivationFreezesNodes(t *testing.T) {
	g := graph.Cycle(12)
	mask := make([]bool, 12)
	for v := 0; v < 12; v++ {
		mask[v] = v >= 6
	}
	digest, metrics := runDigestRounds(t, g, Config{Seed: 3}, 6, mask, nil)
	for v := 0; v < 6; v++ {
		if digest[v] != 0 {
			t.Errorf("inactive node %d accumulated digest %x", v, digest[v])
		}
	}
	active := 0
	for v := 6; v < 12; v++ {
		if digest[v] != 0 {
			active++
		}
	}
	if active == 0 {
		t.Error("no active node accumulated anything")
	}
	// 6 active nodes broadcasting on a cycle: strictly fewer messages than
	// the all-active run.
	_, full := runDigestRounds(t, g, Config{Seed: 3}, 6, nil, nil)
	if metrics.MessagesSent >= full.MessagesSent {
		t.Errorf("masked run sent %d messages, all-active %d — mask had no effect",
			metrics.MessagesSent, full.MessagesSent)
	}
}

// TestDropAllSeversNetwork: a model that drops every message must leave all
// receivers with empty inboxes (digest 0) even though sends are accounted.
func TestDropAllSeversNetwork(t *testing.T) {
	g := graph.GNP(40, 0.2, 7)
	dropAll := &hashFaults{dropP: 1.1}
	digest, metrics := runDigestRounds(t, g, Config{Seed: 2}, 5, nil, dropAll)
	for v, d := range digest {
		if d != 0 {
			t.Fatalf("node %d received something through a drop-all model (digest %x)", v, d)
		}
	}
	if metrics.MessagesSent == 0 {
		t.Fatal("senders went quiet; drop must lose messages at delivery, not suppress sends")
	}
	if metrics.MaxEdgeWordsPerRound != 0 {
		t.Errorf("dropped traffic still accounted for bandwidth: MaxEdgeWordsPerRound=%d", metrics.MaxEdgeWordsPerRound)
	}
}

// TestPartialActivationResetRegression is the satellite regression: after a
// masked, fault-injected run, Reset must return the engine to a state
// byte-identical to a freshly constructed one — the all-active determinism
// goldens cannot shift because a repair pass borrowed the engine first.
func TestPartialActivationResetRegression(t *testing.T) {
	g := graph.GNP(150, 0.06, 9)
	const rounds = 7
	for _, parallel := range []bool{false, true} {
		wantDigest, wantMetrics := runDigestRounds(t, g, Config{Seed: 21, Parallel: parallel, Workers: 4}, rounds, nil, nil)

		net := New(g, Config{Seed: 21, Parallel: parallel, Workers: 4})
		mask := make([]bool, g.NumNodes())
		for v := range mask {
			mask[v] = v%3 == 0
		}
		procs := make([]*digestProcess, g.NumNodes())
		install := func() {
			net.SetProcesses(func(v graph.NodeID) Process {
				procs[v] = &digestProcess{rounds: rounds}
				return procs[v]
			})
		}
		install()
		net.SetActive(mask)
		net.SetFaults(&hashFaults{seed: 5, dropP: 0.5})
		net.RunRounds(4) // dirty the engine under mask + faults

		net.Reset(21) // must clear mask and faults, not just the round state
		install()
		net.RunRounds(rounds)
		if got := net.Metrics(); got != wantMetrics {
			t.Fatalf("parallel=%v: post-Reset metrics %+v, fresh engine %+v", parallel, got, wantMetrics)
		}
		for v := range procs {
			if procs[v].digest != wantDigest[v] {
				t.Fatalf("parallel=%v node %d: post-Reset digest %x, fresh engine %x", parallel, v, procs[v].digest, wantDigest[v])
			}
		}
		net.Close()
	}
}

// TestCrashWindowRestart: a node inside a crash window misses rounds but
// resumes stepping from its retained state once the window closes.
func TestCrashWindowRestart(t *testing.T) {
	g := graph.Path(3)
	stepped := make([]int, 3)
	net := New(g, Config{Seed: 1})
	defer net.Close()
	net.SetProcesses(func(v graph.NodeID) Process {
		return ProcessFunc(func(ctx *Context, round int, inbox []Message) bool {
			stepped[ctx.NodeID()]++
			ctx.Broadcast(kindTestData, uint64(round))
			return false
		})
	})
	net.SetFaults(&hashFaults{crashP: 1.1, crashFrom: 2, crashTo: 4}) // everyone down in rounds 2,3
	net.RunRounds(6)
	for v, got := range stepped {
		if got != 4 {
			t.Errorf("node %d stepped %d rounds, want 4 (6 minus 2 crashed)", v, got)
		}
	}
}
