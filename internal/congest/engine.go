package congest

import (
	"runtime"
	"sync"

	"d2color/internal/graph"
)

// Engine is one CONGEST simulation instance: a topology, a process per node,
// and the accumulated metrics. New returns the implementation selected by
// Config (sequential or sharded-parallel); the two are byte-deterministic
// with respect to each other — same colorings, same message orders, same
// Metrics for the same Config.Seed.
//
// An Engine is not safe for concurrent use by multiple goroutines; the
// sharded engine synchronizes internally.
type Engine interface {
	// Graph returns the topology.
	Graph() *graph.Graph
	// Name identifies the engine implementation ("sequential" or "sharded").
	Name() string
	// SetProcess installs the process for one node.
	SetProcess(v graph.NodeID, p Process)
	// SetProcesses installs a process for every node using the factory.
	SetProcesses(factory func(v graph.NodeID) Process)
	// Run executes rounds until every process has halted, returning the
	// number of simulated rounds. It returns ErrRoundLimit if the configured
	// limit is hit and ErrNoProcess if some node has no process installed.
	Run() (int, error)
	// RunRounds executes exactly k rounds (halted processes are not stepped).
	RunRounds(k int)
	// Round returns the number of simulated rounds executed so far.
	Round() int
	// Metrics returns the metrics accumulated so far.
	Metrics() Metrics
	// ID returns the model identifier assigned to node v.
	ID(v graph.NodeID) uint64
	// ChargeRounds accounts k additional rounds for a pipelined sub-protocol
	// that is not simulated message-by-message. Negative charges are ignored.
	ChargeRounds(k int)
	// AllHalted reports whether every node with a process has halted.
	AllHalted() bool
	// Reset rewinds the engine to round 0 with per-node randomness re-seeded
	// from seed, keeping the installed processes, the ID assignment and every
	// pooled buffer. A reset engine is byte-identical to a freshly
	// constructed one with the same topology, processes and seed.
	Reset(seed uint64)
}

// New creates a simulation over the given topology, selecting the engine
// implementation from cfg: the sharded-parallel engine when cfg.Parallel is
// set, the sequential engine otherwise.
func New(g *graph.Graph, cfg Config) Engine {
	if cfg.Parallel {
		return newSharded(g, cfg)
	}
	return newSequential(g, cfg)
}

// sequentialEngine steps nodes and delivers messages on the calling
// goroutine, in node order.
type sequentialEngine struct {
	engineCore
}

func newSequential(g *graph.Graph, cfg Config) *sequentialEngine {
	e := &sequentialEngine{engineCore: newEngineCore(g, cfg)}
	e.initContexts()
	return e
}

func (e *sequentialEngine) Name() string { return "sequential" }

func (e *sequentialEngine) Run() (int, error) { return e.run(e.step) }

func (e *sequentialEngine) RunRounds(k int) {
	for i := 0; i < k; i++ {
		e.step()
	}
}

// step executes one synchronous round: compute, account, deliver, advance.
func (e *sequentialEngine) step() {
	c := &e.engineCore
	for v := range c.procs {
		if c.procs[v] == nil || c.halted[v] {
			continue
		}
		c.halted[v] = c.procs[v].Step(&c.ctxs[v], c.round, c.inboxes[v])
	}
	c.collectSendCounters()
	c.deliverRange(0, c.g.NumNodes(), &c.metrics)
	c.finishRound()
}

// shardedEngine runs the compute phase and the delivery phase on a pool of
// goroutines, sharded by node. Determinism relies on ownership: a node's
// step writes only its own state and its own out-slots of the message plane,
// and delivery for a destination reads the plane (frozen after compute) and
// writes only that destination's inbox. Shard-local bandwidth metrics are
// merged in shard order, and all merges are commutative (sums and maxima),
// so the result is byte-identical to the sequential engine.
type shardedEngine struct {
	engineCore
	workers      int
	shardMetrics []Metrics
}

func newSharded(g *graph.Graph, cfg Config) *shardedEngine {
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers < 1 {
		workers = 1
	}
	if n := g.NumNodes(); workers > n && n > 0 {
		workers = n
	}
	e := &shardedEngine{
		engineCore:   newEngineCore(g, cfg),
		workers:      workers,
		shardMetrics: make([]Metrics, workers),
	}
	e.initContexts()
	return e
}

func (e *shardedEngine) Name() string { return "sharded" }

func (e *shardedEngine) Run() (int, error) { return e.run(e.step) }

func (e *shardedEngine) RunRounds(k int) {
	for i := 0; i < k; i++ {
		e.step()
	}
}

// forEachShard invokes f(w, lo, hi) concurrently over contiguous node ranges
// and waits for all shards to finish.
func (e *shardedEngine) forEachShard(f func(w, lo, hi int)) {
	n := e.g.NumNodes()
	chunk := (n + e.workers - 1) / e.workers
	var wg sync.WaitGroup
	for w := 0; w < e.workers; w++ {
		lo := w * chunk
		if lo >= n {
			break
		}
		hi := min(lo+chunk, n)
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			f(w, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
}

// step executes one synchronous round with both phases sharded by node.
func (e *shardedEngine) step() {
	c := &e.engineCore

	// Compute phase: nodes step concurrently; each writes only its own
	// halted flag, context counters and out-slots.
	e.forEachShard(func(_, lo, hi int) {
		for v := lo; v < hi; v++ {
			if c.procs[v] == nil || c.halted[v] {
				continue
			}
			c.halted[v] = c.procs[v].Step(&c.ctxs[v], c.round, c.inboxes[v])
		}
	})
	c.collectSendCounters()

	// Delivery phase: sharded by destination node. The plane is read-only
	// now, and shard w writes only inboxes[lo:hi) and shardMetrics[w].
	e.forEachShard(func(w, lo, hi int) {
		e.shardMetrics[w] = Metrics{}
		c.deliverRange(lo, hi, &e.shardMetrics[w])
	})
	for w := range e.shardMetrics {
		sm := &e.shardMetrics[w]
		if sm.MaxEdgeWordsPerRound > c.metrics.MaxEdgeWordsPerRound {
			c.metrics.MaxEdgeWordsPerRound = sm.MaxEdgeWordsPerRound
		}
		c.metrics.BandwidthViolations += sm.BandwidthViolations
	}
	c.finishRound()
}
