package congest

import (
	"runtime"

	"d2color/internal/graph"
)

// Engine is one CONGEST simulation instance: a topology, a process per node,
// and the accumulated metrics. New returns the implementation selected by
// Config (sequential or sharded-parallel); the two are byte-deterministic
// with respect to each other — same colorings, same message orders, same
// Metrics for the same Config.Seed.
//
// An Engine is not safe for concurrent use by multiple goroutines; the
// sharded engine synchronizes internally.
type Engine interface {
	// Graph returns the topology.
	Graph() *graph.Graph
	// Name identifies the engine implementation ("sequential" or "sharded").
	Name() string
	// SetProcess installs the process for one node.
	SetProcess(v graph.NodeID, p Process)
	// SetProcesses installs a process for every node using the factory.
	SetProcesses(factory func(v graph.NodeID) Process)
	// Run executes rounds until every process has halted, returning the
	// number of simulated rounds. It returns ErrRoundLimit if the configured
	// limit is hit and ErrNoProcess if some node has no process installed.
	Run() (int, error)
	// RunRounds executes exactly k rounds (halted processes are not stepped).
	RunRounds(k int)
	// Round returns the number of simulated rounds executed so far.
	Round() int
	// Metrics returns the metrics accumulated so far.
	Metrics() Metrics
	// ID returns the model identifier assigned to node v.
	ID(v graph.NodeID) uint64
	// ChargeRounds accounts k additional rounds for a pipelined sub-protocol
	// that is not simulated message-by-message. Negative charges are ignored.
	ChargeRounds(k int)
	// AllHalted reports whether every node with a process has halted.
	AllHalted() bool
	// SetActive installs a partial-activation mask: nodes with mask[v] false
	// neither step nor receive (nil = all active). Partial activation is
	// RunRounds-driven; Run and AllHalted ignore inactive nodes. See
	// faults.go for the full contract.
	SetActive(mask []bool)
	// SetFaults installs a fault model (message drops, transient crashes)
	// for subsequent rounds; nil disables injection.
	SetFaults(f FaultModel)
	// SetCancel installs a cooperative cancellation hook polled between
	// rounds: once it returns true, RunRounds returns early and Run returns
	// ErrCanceled, both within O(one round). Nil disables polling. Cleared
	// by Reset. See faults.go for the full contract.
	SetCancel(f func() bool)
	// Reset rewinds the engine to round 0 with per-node randomness re-seeded
	// from seed, keeping the installed processes, the ID assignment and every
	// pooled buffer — on the sharded engine that includes the worker team and
	// the shard plan, which survive any number of Resets. The activation mask
	// and fault model are cleared. A reset engine is byte-identical to a
	// freshly constructed one with the same topology, processes and seed.
	Reset(seed uint64)
	// Close releases engine resources; for the sharded engine it parks the
	// persistent worker team (idempotent, never blocks on a pending round —
	// see shardTeam.stop). A closed engine must not be stepped again;
	// everything else (Metrics, ID, Graph, ...) stays readable.
	Close()
}

// New creates a simulation over the given topology, selecting the engine
// implementation from cfg: the sharded-parallel engine when cfg.Parallel is
// set, the sequential engine otherwise.
func New(g *graph.Graph, cfg Config) Engine {
	if cfg.Parallel {
		return newSharded(g, cfg)
	}
	return newSequential(g, cfg)
}

// sequentialEngine steps nodes and delivers messages on the calling
// goroutine, in node order.
type sequentialEngine struct {
	engineCore
}

func newSequential(g *graph.Graph, cfg Config) *sequentialEngine {
	e := &sequentialEngine{engineCore: newEngineCore(g, cfg)}
	e.initContexts()
	return e
}

func (e *sequentialEngine) Name() string { return "sequential" }

func (e *sequentialEngine) Run() (int, error) { return e.run(e.step) }

func (e *sequentialEngine) RunRounds(k int) {
	for i := 0; i < k; i++ {
		if e.cancel != nil && e.cancel() {
			return
		}
		e.step()
	}
}

// step executes one synchronous round: compute, account, deliver, advance.
func (e *sequentialEngine) step() {
	c := &e.engineCore
	faulty := c.active != nil || c.faults != nil
	for v := range c.procs {
		if c.procs[v] == nil || c.halted[v] || (faulty && c.skipped(v)) {
			continue
		}
		c.halted[v] = c.procs[v].Step(&c.ctxs[v], c.round, c.inboxes[v])
	}
	c.collectSendCounters()
	c.deliverRange(0, c.g.NumNodes(), &c.metrics)
	c.finishRound()
}

// shardedEngine runs the compute phase and the delivery phase on a
// persistent team of workers (see shardTeam in pool.go): the goroutines are
// created once, parked on an epoch gate between rounds, and each round is
// one fused compute+deliver pipeline with a single barrier between the
// phases. Node ownership follows the edge-balanced shardPlan; a worker that
// drains its own chunks steals unclaimed chunks from the slowest shards
// through their atomic cursors.
//
// Determinism relies on ownership and commutativity, not scheduling: a
// node's step writes only its own state and its own out-slots of the message
// plane, delivery for a destination reads the plane (frozen at the barrier)
// and writes only that destination's inbox, and every chunk is claimed by
// exactly one worker per phase (one atomic cursor claim). The per-worker
// delivery metrics merge by integer sum and maximum — order-independent and
// exact — and the compute-side send counters are folded by the publisher in
// node order, so the result is byte-identical to the sequential engine for
// every worker count and every steal schedule.
type shardedEngine struct {
	engineCore
	workers int
	plan    shardPlan
	ws      []shardWorker
	team    *shardTeam // nil when workers == 1 (phases run inline)
}

func newSharded(g *graph.Graph, cfg Config) *shardedEngine {
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers < 1 {
		workers = 1
	}
	if n := g.NumNodes(); workers > n {
		workers = max(n, 1)
	}
	e := &shardedEngine{
		engineCore: newEngineCore(g, cfg),
		workers:    workers,
	}
	e.plan = buildShardPlan(e.ix, g.NumNodes(), workers)
	e.ws = make([]shardWorker, workers)
	if workers > 1 {
		e.team = newShardTeam(e)
	}
	e.initContexts()
	return e
}

func (e *shardedEngine) Name() string { return "sharded" }

func (e *shardedEngine) Run() (int, error) { return e.run(e.step) }

func (e *shardedEngine) RunRounds(k int) {
	for i := 0; i < k; i++ {
		if e.cancel != nil && e.cancel() {
			return
		}
		e.step()
	}
}

// Close parks the worker team permanently. Idempotent; the engine must not
// be stepped afterwards.
func (e *shardedEngine) Close() {
	if e.team != nil {
		e.team.stop()
	}
}

// step executes one synchronous round. The publisher (this goroutine) resets
// the per-worker cursors and metrics, wakes the team, works as rank 0
// through the fused compute+deliver pipeline, and merges the shard metrics
// once every rank is done. Reset never touches the team or the plan, so a
// reused engine keeps its goroutines and its ownership map.
func (e *shardedEngine) step() {
	c := &e.engineCore
	if e.team == nil {
		// Single-worker degenerate case: the same pipeline inline, with no
		// gate to cross.
		e.computeChunk(0, int32(c.g.NumNodes()))
		c.collectSendCounters()
		c.deliverRange(0, c.g.NumNodes(), &c.metrics)
		c.finishRound()
		return
	}
	for w := range e.ws {
		ws := &e.ws[w]
		ws.metrics = Metrics{}
		ws.computeNext.Store(e.plan.firstChunk[w])
		ws.deliverNext.Store(e.plan.firstChunk[w])
	}
	e.team.publish() // compute ∥ … barrier … deliver ∥ …
	c.collectSendCounters()
	for w := range e.ws {
		sm := &e.ws[w].metrics
		if sm.MaxEdgeWordsPerRound > c.metrics.MaxEdgeWordsPerRound {
			c.metrics.MaxEdgeWordsPerRound = sm.MaxEdgeWordsPerRound
		}
		c.metrics.BandwidthViolations += sm.BandwidthViolations
	}
	c.finishRound()
}

// collectSendCounters runs after delivery here rather than between the
// phases (the sequential engine's order): the counters are only written by
// node steps and only read by the fold, and they land in Metrics fields
// disjoint from the delivery-phase ones, so folding them after the fused
// round is byte-identical.

// computePhase steps the nodes of every chunk rank w claims: its own chunks
// first, then — work-stealing tail — whatever chunks the other shards have
// not claimed yet, scanning victims round-robin from its right neighbor.
// Claiming via the victim's own cursor keeps "exactly one executor per
// chunk" a single atomic invariant.
func (e *shardedEngine) computePhase(w int) {
	for off := 0; off < e.workers; off++ {
		v := w + off
		if v >= e.workers {
			v -= e.workers
		}
		vw, end := &e.ws[v], e.plan.firstChunk[v+1]
		for {
			chunk := vw.computeNext.Add(1) - 1
			if chunk >= end {
				break
			}
			e.computeChunk(e.plan.chunkLo[chunk], e.plan.chunkLo[chunk+1])
		}
	}
}

func (e *shardedEngine) computeChunk(lo, hi int32) {
	c := &e.engineCore
	faulty := c.active != nil || c.faults != nil
	for v := lo; v < hi; v++ {
		if c.procs[v] == nil || c.halted[v] || (faulty && c.skipped(int(v))) {
			continue
		}
		c.halted[v] = c.procs[v].Step(&c.ctxs[v], c.round, c.inboxes[v])
	}
}

// deliverPhase assembles inboxes for every chunk rank w claims, with the
// same owned-then-steal walk as computePhase. Stolen chunks account into the
// thief's metrics — sums and maxima make the merge independent of who
// delivered what.
func (e *shardedEngine) deliverPhase(w int) {
	c := &e.engineCore
	m := &e.ws[w].metrics
	for off := 0; off < e.workers; off++ {
		v := w + off
		if v >= e.workers {
			v -= e.workers
		}
		vw, end := &e.ws[v], e.plan.firstChunk[v+1]
		for {
			chunk := vw.deliverNext.Add(1) - 1
			if chunk >= end {
				break
			}
			c.deliverRange(int(e.plan.chunkLo[chunk]), int(e.plan.chunkLo[chunk+1]), m)
		}
	}
}
