package congest

import (
	"testing"
	"testing/quick"
)

func TestInt64CodecRoundTrip(t *testing.T) {
	for _, v := range []int64{0, 1, -1, 1 << 40, -(1 << 40), 9_223_372_036_854_775_807, -9_223_372_036_854_775_808} {
		if got := DecodeInt64(EncodeInt64(v)); got != v {
			t.Errorf("round trip of %d = %d", v, got)
		}
	}
	f := func(v int64) bool { return DecodeInt64(EncodeInt64(v)) == v }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWordBits(t *testing.T) {
	cases := []struct{ n, want int }{
		{0, 1}, {1, 1}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {1024, 10}, {1025, 11},
	}
	for _, c := range cases {
		if got := WordBits(c.n); got != c.want {
			t.Errorf("WordBits(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

// WordsFor is the honesty check for payload codecs: a value that does not
// fit one ⌈log₂ n⌉-bit word must declare more words.
func TestWordsForAccounting(t *testing.T) {
	cases := []struct {
		value uint64
		n     int
		want  int
	}{
		{0, 1024, 1},               // zero still occupies a word
		{1023, 1024, 1},            // exactly fits 10 bits
		{1024, 1024, 2},            // 11 bits > one 10-bit word
		{1 << 20, 1024, 3},         // 21 bits → 3 words
		{uint64(1) << 63, 1024, 7}, // 64 bits → ⌈64/10⌉
		{5, 2, 3},                  // tiny network: 1-bit words
	}
	for _, c := range cases {
		if got := WordsFor(c.value, c.n); got != c.want {
			t.Errorf("WordsFor(%d, n=%d) = %d, want %d", c.value, c.n, got, c.want)
		}
	}
	// A UID from the standard n³ space fits in 3 words, for any n.
	for _, n := range []int{4, 100, 1024, 1 << 20} {
		uid := uint64(n)*uint64(n)*uint64(n) - 1
		if got := WordsFor(uid, n); got > 3 {
			t.Errorf("n=%d: UID %d needs %d words, want <= 3", n, uid, got)
		}
	}
}
