package congest

import (
	"fmt"
	"testing"

	"d2color/internal/graph"
)

// benchGraph is the workload the delivery benchmarks run on: a 10k-node
// random graph with average degree 12, the scale the experiment sweeps target.
func benchGraph() *graph.Graph {
	return graph.GNPWithAverageDegree(10_000, 12, 42)
}

// BenchmarkDeliver measures one full simulator round (step + delivery) of an
// all-neighbours broadcast on a 10k-node random graph. The broadcast
// saturates every directed edge with one message per round, which makes the
// benchmark a direct probe of the message plane's per-round overhead: inbox
// assembly, bandwidth accounting and context management.
func BenchmarkDeliver(b *testing.B) {
	for _, parallel := range []bool{false, true} {
		name := "engine=sequential"
		if parallel {
			name = "engine=sharded"
		}
		b.Run(name, func(b *testing.B) {
			g := benchGraph()
			net := New(g, Config{Seed: 1, Parallel: parallel})
			net.SetProcesses(func(v graph.NodeID) Process {
				return ProcessFunc(func(ctx *Context, round int, inbox []Message) bool {
					// Small payload values stay in the runtime's static box
					// cache, so the benchmark measures the plane, not
					// interface boxing.
					ctx.Broadcast(uint64(round & 1))
					return false
				})
			})
			// Warm one round so one-time buffer growth is outside the
			// measured loop.
			net.RunRounds(1)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				net.RunRounds(1)
			}
		})
	}
}

// BenchmarkDeliverSparse measures a round where only a small fraction of the
// nodes speak, the regime of the later phases of the coloring algorithms
// (most nodes are already colored and quiet).
func BenchmarkDeliverSparse(b *testing.B) {
	g := benchGraph()
	net := New(g, Config{Seed: 1})
	net.SetProcesses(func(v graph.NodeID) Process {
		return ProcessFunc(func(ctx *Context, round int, inbox []Message) bool {
			if v%100 == 0 {
				ctx.Broadcast(uint64(round & 1))
			}
			return false
		})
	})
	net.RunRounds(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.RunRounds(1)
	}
}

// BenchmarkEdgeIndex measures building the CSR edge index for graphs of
// growing size (paid once per topology, amortized across every round).
func BenchmarkEdgeIndex(b *testing.B) {
	for _, n := range []int{1_000, 10_000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				g := graph.GNPWithAverageDegree(n, 12, 7)
				_ = g.EdgeIndex()
			}
		})
	}
}
