package congest

import (
	"fmt"
	"runtime"
	"testing"

	"d2color/internal/graph"
)

// benchGraph is the workload the delivery benchmarks run on: a 10k-node
// random graph with average degree 12, the scale the experiment sweeps target.
func benchGraph() *graph.Graph {
	return graph.GNPWithAverageDegree(10_000, 12, 42)
}

// skewGraphN is the star-heavy stress topology for the edge-balanced shard
// plan: a ring over all n nodes (so no node is isolated) plus `hubs` hub
// nodes at the front of the ID space, each wired to ~spokes pseudo-random
// non-hub targets. The hubs concentrate most of the graph's edge slots on a
// tiny prefix of the node range — contiguous equal-node chunking hands that
// prefix to one shard, edge-balanced ownership splits it.
func skewGraphN(n, hubs, spokes int) *graph.Graph {
	edges := make([]graph.Edge, 0, n+hubs*spokes)
	for v := 0; v < n; v++ {
		edges = append(edges, graph.Edge{U: graph.NodeID(v), V: graph.NodeID((v + 1) % n)})
	}
	x := uint64(0x9E3779B97F4A7C15) // deterministic xorshift, no rng dependency
	for h := 0; h < hubs; h++ {
		for i := 0; i < spokes; i++ {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			t := hubs + int(x%uint64(n-hubs)) // always a non-hub: no self-loops
			edges = append(edges, graph.Edge{U: graph.NodeID(h), V: graph.NodeID(t)})
		}
	}
	return graph.MustFromEdges(n, edges) // duplicates collapse in the builder
}

// skewGraph is the benchmark-scale instance: 10k nodes, 16 hubs × ~600
// spokes, so roughly half of all edge slots belong to 0.16% of the nodes.
func skewGraph() *graph.Graph {
	return skewGraphN(10_000, 16, 600)
}

// BenchmarkDeliver measures one full simulator round (step + delivery) of an
// all-neighbours broadcast: a direct probe of the engines' per-round
// overhead — inbox assembly, bandwidth accounting, context management, and
// (sharded) the worker team's wake/barrier/wait cycle. Two topologies: the
// uniform 10k-node random graph, and the star-heavy skew graph that punishes
// node-count chunking (the per-worker load only balances if shard ownership
// follows edge slots). The sharded variants record the worker count in the
// benchmark name so BENCH_*.json snapshots from differently-sized runners
// stay interpretable.
func BenchmarkDeliver(b *testing.B) {
	topos := []struct {
		name  string
		build func() *graph.Graph
	}{
		{"gnp", benchGraph},
		{"skew", skewGraph},
	}
	for _, topo := range topos {
		g := topo.build()
		run := func(b *testing.B, cfg Config) {
			net := New(g, cfg)
			defer net.Close()
			net.SetProcesses(func(v graph.NodeID) Process {
				return ProcessFunc(func(ctx *Context, round int, inbox []Message) bool {
					ctx.Broadcast(1, uint64(round&1))
					return false
				})
			})
			// Warm one round so one-time buffer growth (and the team spawn)
			// is outside the measured loop.
			net.RunRounds(1)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				net.RunRounds(1)
			}
		}
		b.Run(fmt.Sprintf("topo=%s/engine=sequential", topo.name), func(b *testing.B) {
			run(b, Config{Seed: 1})
		})
		b.Run(fmt.Sprintf("topo=%s/engine=sharded/workers=%d", topo.name, runtime.GOMAXPROCS(0)), func(b *testing.B) {
			run(b, Config{Seed: 1, Parallel: true})
		})
	}
}

// BenchmarkDeliverSparse measures a round where only a small fraction of the
// nodes speak, the regime of the later phases of the coloring algorithms
// (most nodes are already colored and quiet).
func BenchmarkDeliverSparse(b *testing.B) {
	g := benchGraph()
	net := New(g, Config{Seed: 1})
	net.SetProcesses(func(v graph.NodeID) Process {
		return ProcessFunc(func(ctx *Context, round int, inbox []Message) bool {
			if v%100 == 0 {
				ctx.Broadcast(1, uint64(round&1))
			}
			return false
		})
	})
	net.RunRounds(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.RunRounds(1)
	}
}

// BenchmarkEdgeIndex measures building the CSR edge index for graphs of
// growing size (paid once per topology, amortized across every round).
func BenchmarkEdgeIndex(b *testing.B) {
	for _, n := range []int{1_000, 10_000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				g := graph.GNPWithAverageDegree(n, 12, 7)
				_ = g.EdgeIndex()
			}
		})
	}
}

// BenchmarkPayloadRound is the payload-allocation probe: every node
// broadcasts a payload word too large for any runtime small-value cache, so
// any residual boxing or per-message heap traffic would show up as allocs/op.
// A warmed-up round must report 0 allocs/op — the message plane carries
// payloads inline as uint64 words.
func BenchmarkPayloadRound(b *testing.B) {
	g := benchGraph()
	net := New(g, Config{Seed: 1})
	net.SetProcesses(func(v graph.NodeID) Process {
		return ProcessFunc(func(ctx *Context, round int, inbox []Message) bool {
			sum := uint64(0)
			for i := range inbox {
				sum += inbox[i].Word
			}
			ctx.Broadcast(2, sum|0x1_0000_0000) // > 32 bits: never cached
			return false
		})
	})
	net.RunRounds(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.RunRounds(1)
	}
}
