package congest

import (
	"fmt"
	"testing"

	"d2color/internal/graph"
)

// benchGraph is the workload the delivery benchmarks run on: a 10k-node
// random graph with average degree 12, the scale the experiment sweeps target.
func benchGraph() *graph.Graph {
	return graph.GNPWithAverageDegree(10_000, 12, 42)
}

// BenchmarkDeliver measures one full simulator round (step + delivery) of an
// all-neighbours broadcast on a 10k-node random graph. The broadcast
// saturates every directed edge with one message per round, which makes the
// benchmark a direct probe of the message plane's per-round overhead: inbox
// assembly, bandwidth accounting and context management.
func BenchmarkDeliver(b *testing.B) {
	for _, parallel := range []bool{false, true} {
		name := "engine=sequential"
		if parallel {
			name = "engine=sharded"
		}
		b.Run(name, func(b *testing.B) {
			g := benchGraph()
			net := New(g, Config{Seed: 1, Parallel: parallel})
			net.SetProcesses(func(v graph.NodeID) Process {
				return ProcessFunc(func(ctx *Context, round int, inbox []Message) bool {
					ctx.Broadcast(1, uint64(round&1))
					return false
				})
			})
			// Warm one round so one-time buffer growth is outside the
			// measured loop.
			net.RunRounds(1)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				net.RunRounds(1)
			}
		})
	}
}

// BenchmarkDeliverSparse measures a round where only a small fraction of the
// nodes speak, the regime of the later phases of the coloring algorithms
// (most nodes are already colored and quiet).
func BenchmarkDeliverSparse(b *testing.B) {
	g := benchGraph()
	net := New(g, Config{Seed: 1})
	net.SetProcesses(func(v graph.NodeID) Process {
		return ProcessFunc(func(ctx *Context, round int, inbox []Message) bool {
			if v%100 == 0 {
				ctx.Broadcast(1, uint64(round&1))
			}
			return false
		})
	})
	net.RunRounds(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.RunRounds(1)
	}
}

// BenchmarkEdgeIndex measures building the CSR edge index for graphs of
// growing size (paid once per topology, amortized across every round).
func BenchmarkEdgeIndex(b *testing.B) {
	for _, n := range []int{1_000, 10_000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				g := graph.GNPWithAverageDegree(n, 12, 7)
				_ = g.EdgeIndex()
			}
		})
	}
}

// BenchmarkPayloadRound is the payload-allocation probe: every node
// broadcasts a payload word too large for any runtime small-value cache, so
// any residual boxing or per-message heap traffic would show up as allocs/op.
// A warmed-up round must report 0 allocs/op — the message plane carries
// payloads inline as uint64 words.
func BenchmarkPayloadRound(b *testing.B) {
	g := benchGraph()
	net := New(g, Config{Seed: 1})
	net.SetProcesses(func(v graph.NodeID) Process {
		return ProcessFunc(func(ctx *Context, round int, inbox []Message) bool {
			sum := uint64(0)
			for i := range inbox {
				sum += inbox[i].Word
			}
			ctx.Broadcast(2, sum|0x1_0000_0000) // > 32 bits: never cached
			return false
		})
	})
	net.RunRounds(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.RunRounds(1)
	}
}
