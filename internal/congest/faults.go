package congest

import "d2color/internal/graph"

// This file is the engine side of the robustness plane: partial activation
// (only a masked subset of nodes runs — how the repair kernel confines a
// recoloring to a dirty distance-2 ball) and fault injection (message drops
// and transient node crashes, decided by a pluggable FaultModel).
//
// Both features are strictly opt-in overlays on the round loop: with a nil
// mask and a nil fault model the engines take the exact code paths they took
// before, so the byte-determinism goldens of the all-active case are
// untouched. Reset clears both — a reset engine is byte-identical to a
// freshly constructed one, which is the contract the warm-reuse machinery
// depends on.

// FaultModel injects faults into an engine's round loop. Implementations
// must be deterministic pure functions of their own configuration and the
// (round, slot/node) arguments — the engines may evaluate them from multiple
// workers concurrently and in any order, so any internal counters must be
// atomic and must not influence results.
//
// Concrete models live in internal/fault; the interface is defined here so
// the engine does not depend on the injector package.
type FaultModel interface {
	// DropMessage reports whether the message in directed-edge out-slot slot
	// is lost during round's delivery phase. It is consulted once per slot
	// that actually carries a message this round, so implementations may
	// count invocations to report exact loss totals.
	DropMessage(round int, slot int32) bool
	// Crashed reports whether node v is down in round: a crashed node does
	// not step and its incoming messages for the round are lost. A node
	// whose crash window ends resumes from its retained process state
	// (crash-restart, not crash-stop).
	Crashed(round int, v graph.NodeID) bool
}

// SetActive installs a partial-activation mask: nodes with mask[v] false are
// frozen — they do not step, and their incoming messages are discarded. A nil
// mask (the default) activates every node. The mask must have length
// NumNodes; the engine keeps a reference, so the caller must not mutate it
// while rounds run. Reset clears the mask.
//
// Frozen nodes never halt, so Run would spin against AllHalted; partial
// activation is therefore a RunRounds-driven mode — AllHalted and Run ignore
// inactive nodes, matching "the frozen part of the network is not the
// protocol's problem".
func (c *engineCore) SetActive(mask []bool) {
	if mask != nil && len(mask) != c.g.NumNodes() {
		panic("congest: activation mask length does not match node count")
	}
	c.active = mask
}

// SetFaults installs a fault model for subsequent rounds (nil disables
// injection). Reset clears it.
func (c *engineCore) SetFaults(f FaultModel) { c.faults = f }

// SetCancel installs a cooperative cancellation hook, polled by RunRounds
// (and Run) between rounds: the first poll that returns true stops the loop
// before the next round starts, so a canceled run ends within O(one round)
// regardless of how many rounds were requested. The hook is never consulted
// mid-round — a round either runs to completion or not at all — which keeps
// the per-round state machine (message plane epoch, inbox buffers, metrics)
// consistent at every stopping point. Reset clears the hook along with the
// activation mask and fault model, so warm reuse after a cancel is
// byte-identical to a fresh engine. A nil hook (the default) disables
// polling entirely; the hot path pays one nil check per round.
func (c *engineCore) SetCancel(f func() bool) { c.cancel = f }

// skipped reports whether node v sits out the current round — masked
// inactive or inside a crash window. Used by both the compute and delivery
// phases, which run within the same round, so the two observe the same
// answer.
func (c *engineCore) skipped(v int) bool {
	if c.active != nil && !c.active[v] {
		return true
	}
	return c.faults != nil && c.faults.Crashed(c.round, graph.NodeID(v))
}
