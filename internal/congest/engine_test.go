package congest

import (
	"runtime"
	"testing"

	"d2color/internal/graph"
)

// digestProcess folds every delivered message into an order-sensitive
// per-node digest and gossips pseudo-random words, exercising Send (slot
// lookup), SendToNeighbor and Broadcast. Two engines agree byte-for-byte iff
// all digests and Metrics agree.
type digestProcess struct {
	digest uint64
	rounds int
}

func (p *digestProcess) Step(ctx *Context, round int, inbox []Message) bool {
	for i := range inbox {
		m := &inbox[i]
		p.digest = p.digest*1099511628211 ^ uint64(m.From)<<32 ^ uint64(round) ^ m.Word
	}
	if d := ctx.Degree(); d > 0 {
		switch round % 3 {
		case 0:
			ctx.Broadcast(kindTestData, p.digest|1)
		case 1:
			ctx.SendToNeighbor(int(ctx.Rand().Uint64()%uint64(d)), kindTestData, p.digest)
		case 2:
			to := ctx.Neighbors()[ctx.Rand().Uint64()%uint64(d)]
			_ = ctx.SendWords(to, kindTestData, p.digest, 3)
		}
	}
	return round >= p.rounds
}

func runDigest(t *testing.T, g *graph.Graph, cfg Config, rounds int) ([]uint64, Metrics) {
	t.Helper()
	net := New(g, cfg)
	defer net.Close()
	procs := make([]*digestProcess, g.NumNodes())
	net.SetProcesses(func(v graph.NodeID) Process {
		procs[v] = &digestProcess{rounds: rounds}
		return procs[v]
	})
	if _, err := net.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	out := make([]uint64, len(procs))
	for v := range procs {
		out[v] = procs[v].digest
	}
	return out, net.Metrics()
}

// TestShardedMatchesSequentialSkewWorkers pins the pooled engine's
// byte-identity to the sequential engine on the star-heavy topology — the
// workload the edge-balanced shard plan and the work-stealing tail exist
// for — across worker counts that exercise the degenerate inline path (1),
// an uneven chunk split (3) and more workers than chunks would naturally
// balance (16).
func TestShardedMatchesSequentialSkewWorkers(t *testing.T) {
	g := skewGraphN(600, 4, 40)
	const rounds = 7
	wantDigest, wantMetrics := runDigest(t, g, Config{Seed: 11, BandwidthWords: 2}, rounds)
	for _, workers := range []int{1, 2, 3, 16} {
		digest, metrics := runDigest(t, g,
			Config{Seed: 11, BandwidthWords: 2, Parallel: true, Workers: workers}, rounds)
		if metrics != wantMetrics {
			t.Fatalf("workers=%d: metrics diverged\nsharded:    %v\nsequential: %v", workers, metrics, wantMetrics)
		}
		for v := range digest {
			if digest[v] != wantDigest[v] {
				t.Fatalf("workers=%d node %d: digest %x != sequential %x", workers, v, digest[v], wantDigest[v])
			}
		}
	}
}

// TestShardedStepAllocFree is the pooled-engine allocation gate: after
// warm-up, a sharded broadcast round must not touch the allocator at all —
// the persistent team replaced the 2×workers goroutine spawns (8 allocs,
// 216 B per round at GOMAXPROCS=4) the per-round pool design paid.
func TestShardedStepAllocFree(t *testing.T) {
	g := graph.GNP(300, 0.05, 1)
	net := New(g, Config{Seed: 1, Parallel: true, Workers: 4})
	defer net.Close()
	net.SetProcesses(func(v graph.NodeID) Process {
		return ProcessFunc(func(ctx *Context, round int, inbox []Message) bool {
			ctx.Broadcast(kindTestData, uint64(round&1))
			return false
		})
	})
	net.RunRounds(2) // warm-up: spawn the team, grow buckets and inboxes
	allocs := testing.AllocsPerRun(10, func() { net.RunRounds(1) })
	if allocs > 0 {
		t.Errorf("warmed-up sharded round allocated %.1f times, want 0", allocs)
	}
}

// TestShardedResetReusesTeam asserts Engine.Reset re-seeds in place: no new
// goroutines (the worker team survives), no allocation, and byte-identical
// results from the reused pooled engine — the reuse contract the sweep
// repetitions and the server-to-come lean on.
func TestShardedResetReusesTeam(t *testing.T) {
	g := graph.GNP(200, 0.06, 3)
	net := New(g, Config{Seed: 5, Parallel: true, Workers: 4})
	defer net.Close()
	net.SetProcesses(func(v graph.NodeID) Process {
		return ProcessFunc(func(ctx *Context, round int, inbox []Message) bool {
			ctx.Broadcast(kindTestData, ctx.Rand().Uint64())
			return false
		})
	})
	net.RunRounds(3)
	before := runtime.NumGoroutine()
	first := net.Metrics()
	net.Reset(5)
	net.RunRounds(3)
	if again := net.Metrics(); again != first {
		t.Fatalf("reset run diverged: %v vs %v", again, first)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("goroutines grew across Reset: %d -> %d (team must be reused)", before, after)
	}
	allocs := testing.AllocsPerRun(5, func() {
		net.Reset(5)
		net.RunRounds(3)
	})
	if allocs > 0 {
		t.Errorf("warmed reset+rounds allocated %.1f times, want 0", allocs)
	}
}

// TestCloseSemantics: Close is idempotent on both engines, never hangs, and
// a closed sharded engine fails loudly (panic) rather than deadlocking if
// stepped again; read-only accessors stay usable.
func TestCloseSemantics(t *testing.T) {
	g := graph.GNP(50, 0.1, 2)
	install := func(net Engine) {
		net.SetProcesses(func(v graph.NodeID) Process {
			return ProcessFunc(func(ctx *Context, round int, inbox []Message) bool {
				ctx.Broadcast(kindTestData, 1)
				return false
			})
		})
	}
	for _, parallel := range []bool{false, true} {
		net := New(g, Config{Seed: 1, Parallel: parallel, Workers: 4})
		install(net)
		net.RunRounds(2)
		rounds := net.Round()
		net.Close()
		net.Close() // idempotent
		if net.Round() != rounds || net.Metrics().Rounds != rounds {
			t.Errorf("parallel=%v: accessors unusable after Close", parallel)
		}
	}

	// Closing before the team ever ran (lazy spawn) must also be safe.
	never := New(g, Config{Parallel: true, Workers: 4})
	never.Close()

	closed := New(g, Config{Parallel: true, Workers: 4})
	install(closed)
	closed.RunRounds(1)
	closed.Close()
	defer func() {
		if recover() == nil {
			t.Error("stepping a closed sharded engine should panic, not hang")
		}
	}()
	closed.RunRounds(1)
}

// TestShardPlanEdgeBalanced checks the ownership map directly: the chunks
// partition the node range, every worker owns a non-degenerate run, and on
// the star-heavy topology the per-worker edge-slot weights are far closer to
// uniform than contiguous equal-node chunking would put them.
func TestShardPlanEdgeBalanced(t *testing.T) {
	g := skewGraphN(2000, 8, 400)
	ix := g.EdgeIndex()
	n, workers := g.NumNodes(), 8
	plan := buildShardPlan(ix, n, workers)

	if got := plan.chunkLo[0]; got != 0 {
		t.Fatalf("first chunk starts at %d, want 0", got)
	}
	if got := plan.chunkLo[plan.numChunks()]; got != int32(n) {
		t.Fatalf("last chunk ends at %d, want %d", got, n)
	}
	for c := 0; c < plan.numChunks(); c++ {
		if plan.chunkLo[c] > plan.chunkLo[c+1] {
			t.Fatalf("chunk %d range inverted: [%d, %d)", c, plan.chunkLo[c], plan.chunkLo[c+1])
		}
	}

	slots := func(lo, hi int32) int { return int(ix.Offsets[hi] - ix.Offsets[lo]) }
	fair := float64(ix.NumSlots()) / float64(workers)
	worstPlan, worstNaive := 0.0, 0.0
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := plan.nodeRange(w)
		if over := float64(slots(lo, hi)) / fair; over > worstPlan {
			worstPlan = over
		}
		nlo := min(w*chunk, n)
		nhi := min(nlo+chunk, n)
		if over := float64(slots(int32(nlo), int32(nhi))) / fair; over > worstNaive {
			worstNaive = over
		}
	}
	// The 64 hubs sit in the first equal-node chunk, so naive chunking
	// overloads one shard with most of the graph's slots; the edge-balanced
	// plan must stay near fair (one chunk of slack) and beat it decisively.
	if worstPlan > 1.5 {
		t.Errorf("edge-balanced plan: worst shard carries %.2f× the fair slot share", worstPlan)
	}
	if worstNaive < 2*worstPlan {
		t.Errorf("skew fixture too tame: naive worst %.2f× vs plan worst %.2f× — the plan should win big here",
			worstNaive, worstPlan)
	}
}

// TestShardPlanTinyGraphs: plans on graphs smaller than the worker count
// must stay well-formed (every chunk in range, full coverage), and the
// engine must run them correctly with absurd worker requests.
func TestShardPlanTinyGraphs(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5} {
		g := graph.Path(n)
		plan := buildShardPlan(g.EdgeIndex(), n, max(n, 1))
		if got := int(plan.chunkLo[plan.numChunks()]); got != n {
			t.Errorf("n=%d: plan covers %d nodes", n, got)
		}
		net := New(g, Config{Parallel: true, Workers: 64})
		net.SetProcesses(func(v graph.NodeID) Process {
			return ProcessFunc(func(ctx *Context, round int, inbox []Message) bool {
				ctx.Broadcast(kindTestData, uint64(v))
				return round >= 1
			})
		})
		if _, err := net.Run(); err != nil {
			t.Errorf("n=%d workers=64: %v", n, err)
		}
		net.Close()
	}
}
