package congest

import (
	"errors"
	"testing"
	"testing/quick"

	"d2color/internal/graph"
)

func TestFloodMaxElectsGlobalLeader(t *testing.T) {
	g := graph.Grid(6, 7)
	res, err := FloodMax(g, Config{Seed: 3, IDs: IDSparseRandom}, g.NumNodes())
	if err != nil {
		t.Fatal(err)
	}
	want := res.LeaderUID[0]
	for v, got := range res.LeaderUID {
		if got != want {
			t.Fatalf("node %d elected %d, node 0 elected %d", v, got, want)
		}
	}
	if res.Metrics.Rounds == 0 || res.Metrics.MessagesSent == 0 {
		t.Error("flooding should cost rounds and messages")
	}
}

func TestFloodMaxPerComponent(t *testing.T) {
	// Two disjoint paths: each component elects its own maximum.
	g := graph.MustFromEdges(6, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 3, V: 4}, {U: 4, V: 5}})
	res, err := FloodMax(g, Config{Seed: 1}, 6)
	if err != nil {
		t.Fatal(err)
	}
	if res.LeaderUID[0] != 2 || res.LeaderUID[1] != 2 || res.LeaderUID[2] != 2 {
		t.Errorf("first component leaders: %v", res.LeaderUID[:3])
	}
	if res.LeaderUID[3] != 5 || res.LeaderUID[5] != 5 {
		t.Errorf("second component leaders: %v", res.LeaderUID[3:])
	}
}

func TestBFSTreeMatchesCentralBFS(t *testing.T) {
	g := graph.GNP(60, 0.08, 4)
	root := graph.NodeID(0)
	res, err := BFSTree(g, Config{Seed: 2}, root, g.NumNodes())
	if err != nil {
		t.Fatal(err)
	}
	want := g.BFS(root)
	for v := 0; v < g.NumNodes(); v++ {
		if res.Depth[v] != want[v] {
			t.Fatalf("node %d: distributed depth %d, BFS distance %d", v, res.Depth[v], want[v])
		}
		if want[v] > 0 {
			p := res.Parent[v]
			if p < 0 || !g.HasEdge(graph.NodeID(v), p) || want[p] != want[v]-1 {
				t.Fatalf("node %d has invalid parent %d", v, p)
			}
		}
	}
	if res.Parent[root] != root || res.Depth[root] != 0 {
		t.Error("root should be its own parent at depth 0")
	}
}

func TestBFSTreeRootValidation(t *testing.T) {
	if _, err := BFSTree(graph.Path(3), Config{}, 7, 3); !errors.Is(err, ErrProtocol) {
		t.Errorf("out-of-range root: %v", err)
	}
}

func TestConvergecastSum(t *testing.T) {
	g := graph.BalancedTree(3, 3)
	root := graph.NodeID(0)
	tree, err := BFSTree(g, Config{Seed: 5}, root, g.NumNodes())
	if err != nil {
		t.Fatal(err)
	}
	values := make([]int64, g.NumNodes())
	var want int64
	for v := range values {
		values[v] = int64(v + 1)
		want += int64(v + 1)
	}
	got, metrics, err := ConvergecastSum(g, Config{Seed: 5}, tree, values)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("convergecast sum = %d, want %d", got, want)
	}
	if metrics.MessagesSent != g.NumNodes()-1 {
		t.Errorf("convergecast should send exactly one message per non-root node, sent %d", metrics.MessagesSent)
	}
}

func TestConvergecastInputValidation(t *testing.T) {
	g := graph.Path(4)
	tree, err := BFSTree(g, Config{}, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ConvergecastSum(g, Config{}, tree, []int64{1, 2}); !errors.Is(err, ErrProtocol) {
		t.Errorf("length mismatch: %v", err)
	}
}

func TestConvergecastIgnoresUnreachableNodes(t *testing.T) {
	// Node 3 is isolated: its value must not reach the root.
	g := graph.MustFromEdges(4, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	tree, err := BFSTree(g, Config{}, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := ConvergecastSum(g, Config{}, tree, []int64{1, 10, 100, 1000})
	if err != nil {
		t.Fatal(err)
	}
	if got != 111 {
		t.Errorf("sum = %d, want 111 (isolated node excluded)", got)
	}
}

func TestPropertyProtocolsAgreeAcrossEngines(t *testing.T) {
	f := func(seed uint64) bool {
		g := graph.GNP(40, 0.1, int64(seed%8))
		seq, err := BFSTree(g, Config{Seed: seed, Parallel: false}, 0, g.NumNodes())
		if err != nil {
			return false
		}
		par, err := BFSTree(g, Config{Seed: seed, Parallel: true, Workers: 3}, 0, g.NumNodes())
		if err != nil {
			return false
		}
		for v := range seq.Depth {
			if seq.Depth[v] != par.Depth[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}
