package congest

import (
	"errors"
	"testing"
	"testing/quick"

	"d2color/internal/graph"
)

// Test-local message kinds.
const (
	kindTestFlood Kind = iota + 1
	kindTestData
)

// broadcastMaxProcess floods the maximum UID seen so far and halts after a
// fixed number of rounds. It is used to exercise the engine end to end.
type broadcastMaxProcess struct {
	best     uint64
	maxRound int
}

func (p *broadcastMaxProcess) Step(ctx *Context, round int, inbox []Message) bool {
	if round == 0 {
		p.best = ctx.UID()
	}
	for _, m := range inbox {
		if m.Kind == kindTestFlood && m.Word > p.best {
			p.best = m.Word
		}
	}
	if round >= p.maxRound {
		return true
	}
	ctx.Broadcast(kindTestFlood, p.best)
	return false
}

func runBroadcastMax(t *testing.T, g *graph.Graph, cfg Config) []uint64 {
	t.Helper()
	net := New(g, cfg)
	procs := make([]*broadcastMaxProcess, g.NumNodes())
	diam := g.Diameter()
	if diam < 0 {
		diam = g.NumNodes()
	}
	net.SetProcesses(func(v graph.NodeID) Process {
		procs[v] = &broadcastMaxProcess{maxRound: diam + 1}
		return procs[v]
	})
	if _, err := net.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	out := make([]uint64, g.NumNodes())
	for v := range procs {
		out[v] = procs[v].best
	}
	return out
}

func TestBroadcastMaxConverges(t *testing.T) {
	g := graph.Grid(5, 6)
	best := runBroadcastMax(t, g, Config{Seed: 1, IDs: IDSparseRandom})
	// Everyone should agree on the global max UID.
	want := best[0]
	for v, b := range best {
		if b != want {
			t.Fatalf("node %d converged to %d, node 0 to %d", v, b, want)
		}
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	g := graph.GNP(80, 0.08, 3)
	seq := runBroadcastMax(t, g, Config{Seed: 7, IDs: IDRandomPermutation, Parallel: false})
	par := runBroadcastMax(t, g, Config{Seed: 7, IDs: IDRandomPermutation, Parallel: true, Workers: 4})
	for v := range seq {
		if seq[v] != par[v] {
			t.Fatalf("node %d: sequential %d vs parallel %d", v, seq[v], par[v])
		}
	}
}

func TestRunErrorsWithoutProcess(t *testing.T) {
	net := New(graph.Path(3), Config{})
	net.SetProcess(0, ProcessFunc(func(ctx *Context, round int, inbox []Message) bool { return true }))
	if _, err := net.Run(); !errors.Is(err, ErrNoProcess) {
		t.Errorf("Run = %v, want ErrNoProcess", err)
	}
}

func TestRoundLimit(t *testing.T) {
	net := New(graph.Path(2), Config{MaxRounds: 10})
	net.SetProcesses(func(v graph.NodeID) Process {
		return ProcessFunc(func(ctx *Context, round int, inbox []Message) bool { return false })
	})
	if _, err := net.Run(); !errors.Is(err, ErrRoundLimit) {
		t.Errorf("Run = %v, want ErrRoundLimit", err)
	}
	if net.Metrics().Rounds != 10 {
		t.Errorf("rounds = %d, want 10", net.Metrics().Rounds)
	}
}

func TestSendToNonNeighborIsViolation(t *testing.T) {
	g := graph.Path(3) // 0-1-2; 0 and 2 are not adjacent
	net := New(g, Config{})
	net.SetProcesses(func(v graph.NodeID) Process {
		return ProcessFunc(func(ctx *Context, round int, inbox []Message) bool {
			if ctx.NodeID() == 0 && round == 0 {
				if err := ctx.Send(2, kindTestData, 0x41); !errors.Is(err, ErrNotNeighbor) {
					t.Errorf("Send to non-neighbor = %v, want ErrNotNeighbor", err)
				}
			}
			return round >= 1
		})
	})
	if _, err := net.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if net.Metrics().ProtocolViolations != 1 {
		t.Errorf("protocol violations = %d, want 1", net.Metrics().ProtocolViolations)
	}
	if net.Metrics().MessagesSent != 0 {
		t.Errorf("violating message should not be delivered, sent=%d", net.Metrics().MessagesSent)
	}
}

func TestBandwidthAccounting(t *testing.T) {
	g := graph.Path(2)
	net := New(g, Config{BandwidthWords: 2})
	net.SetProcesses(func(v graph.NodeID) Process {
		return ProcessFunc(func(ctx *Context, round int, inbox []Message) bool {
			if ctx.NodeID() == 0 && round == 0 {
				_ = ctx.SendWords(1, kindTestData, 0xB16, 5)
			}
			return round >= 1
		})
	})
	if _, err := net.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	m := net.Metrics()
	if m.MaxEdgeWordsPerRound != 5 {
		t.Errorf("MaxEdgeWordsPerRound = %d, want 5", m.MaxEdgeWordsPerRound)
	}
	if m.BandwidthViolations != 1 {
		t.Errorf("BandwidthViolations = %d, want 1", m.BandwidthViolations)
	}
	if m.WordsSent != 5 || m.MessagesSent != 1 {
		t.Errorf("words=%d msgs=%d, want 5,1", m.WordsSent, m.MessagesSent)
	}
}

func TestChargeRounds(t *testing.T) {
	net := New(graph.Path(2), Config{})
	net.ChargeRounds(7)
	net.ChargeRounds(-3) // ignored
	m := net.Metrics()
	if m.ChargedRounds != 7 {
		t.Errorf("ChargedRounds = %d, want 7", m.ChargedRounds)
	}
	if m.TotalRounds() != 7 {
		t.Errorf("TotalRounds = %d, want 7", m.TotalRounds())
	}
}

func TestRunRoundsAndHaltedNodes(t *testing.T) {
	g := graph.Cycle(4)
	net := New(g, Config{})
	net.SetProcesses(func(v graph.NodeID) Process {
		return ProcessFunc(func(ctx *Context, round int, inbox []Message) bool {
			return int(ctx.NodeID())%2 == 0 // even nodes halt immediately
		})
	})
	net.RunRounds(3)
	if net.Round() != 3 {
		t.Errorf("Round() = %d, want 3", net.Round())
	}
	if got := net.Metrics().HaltedNodes; got != 2 {
		t.Errorf("halted nodes = %d, want 2", got)
	}
	if net.AllHalted() {
		t.Error("odd nodes never halt; AllHalted should be false")
	}
}

func TestIDAssignments(t *testing.T) {
	g := graph.Complete(20)
	for _, mode := range []IDAssignment{IDSequential, IDRandomPermutation, IDSparseRandom} {
		net := New(g, Config{Seed: 5, IDs: mode})
		seen := make(map[uint64]bool)
		for v := 0; v < g.NumNodes(); v++ {
			id := net.ID(graph.NodeID(v))
			if seen[id] {
				t.Errorf("mode %d: duplicate ID %d", mode, id)
			}
			seen[id] = true
		}
	}
	// Sequential is the identity.
	net := New(g, Config{})
	if net.ID(7) != 7 {
		t.Errorf("sequential ID(7) = %d, want 7", net.ID(7))
	}
}

func TestContextAccessors(t *testing.T) {
	g := graph.Star(5)
	net := New(g, Config{Seed: 2})
	var sawDegree, sawN, sawDelta int
	net.SetProcesses(func(v graph.NodeID) Process {
		return ProcessFunc(func(ctx *Context, round int, inbox []Message) bool {
			if ctx.NodeID() == 0 {
				sawDegree = ctx.Degree()
				sawN = ctx.N()
				sawDelta = ctx.MaxDegree()
				if len(ctx.Neighbors()) != 4 {
					t.Errorf("Neighbors() length = %d, want 4", len(ctx.Neighbors()))
				}
				if ctx.NeighborUID(1) != net.ID(1) {
					t.Error("NeighborUID mismatch")
				}
				if ctx.Rand() == nil {
					t.Error("Rand() should not be nil")
				}
			}
			return true
		})
	})
	if _, err := net.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if sawDegree != 4 || sawN != 5 || sawDelta != 4 {
		t.Errorf("accessors: degree=%d n=%d Δ=%d", sawDegree, sawN, sawDelta)
	}
}

func TestMessageWordsDefault(t *testing.T) {
	m := Message{}
	if m.words() != 1 {
		t.Errorf("default words = %d, want 1", m.words())
	}
	if m.String() == "" {
		t.Error("Message.String should be non-empty")
	}
}

func TestMetricsAdd(t *testing.T) {
	a := Metrics{Rounds: 3, ChargedRounds: 2, MessagesSent: 10, WordsSent: 12, MaxEdgeWordsPerRound: 4}
	b := Metrics{Rounds: 5, MessagesSent: 1, WordsSent: 1, MaxEdgeWordsPerRound: 7, BandwidthViolations: 1}
	sum := a.Add(b)
	if sum.Rounds != 8 || sum.ChargedRounds != 2 || sum.MessagesSent != 11 || sum.WordsSent != 13 {
		t.Errorf("Add = %+v", sum)
	}
	if sum.MaxEdgeWordsPerRound != 7 {
		t.Errorf("MaxEdgeWordsPerRound = %d, want 7", sum.MaxEdgeWordsPerRound)
	}
	if sum.TotalRounds() != 10 {
		t.Errorf("TotalRounds = %d, want 10", sum.TotalRounds())
	}
	if sum.String() == "" {
		t.Error("Metrics.String should be non-empty")
	}
}

// Property: message delivery is exactly "sent in round r, delivered in round
// r+1", and inboxes are sorted by sender.
func TestPropertyDeliveryNextRoundSorted(t *testing.T) {
	f := func(seed uint64) bool {
		g := graph.Cycle(6)
		net := New(g, Config{Seed: seed})
		ok := true
		net.SetProcesses(func(v graph.NodeID) Process {
			return ProcessFunc(func(ctx *Context, round int, inbox []Message) bool {
				if round == 0 && len(inbox) != 0 {
					ok = false // nothing can arrive in round 0
				}
				if round == 1 {
					// Every node has two neighbors that each sent one message.
					if len(inbox) != 2 {
						ok = false
					}
					for i := 1; i < len(inbox); i++ {
						if inbox[i-1].From > inbox[i].From {
							ok = false
						}
					}
				}
				ctx.Broadcast(kindTestData, uint64(round))
				return round >= 1
			})
		})
		if _, err := net.Run(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() Metrics {
		g := graph.GNP(40, 0.1, 11)
		net := New(g, Config{Seed: 99})
		net.SetProcesses(func(v graph.NodeID) Process {
			return ProcessFunc(func(ctx *Context, round int, inbox []Message) bool {
				// Random gossip: send a random value to a random neighbor.
				if ctx.Degree() > 0 {
					to := ctx.Neighbors()[ctx.Rand().Intn(ctx.Degree())]
					_ = ctx.Send(to, kindTestData, ctx.Rand().Uint64())
				}
				return round >= 5
			})
		})
		if _, err := net.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return net.Metrics()
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("two identical runs produced different metrics:\n%v\n%v", a, b)
	}
}

// Regression test for the Config.BandwidthWords semantics: a message
// exceeding the bandwidth limit is a *bandwidth* violation — counted, but
// still delivered — while a send to a non-neighbor is a *protocol*
// violation — counted, and dropped before delivery.
func TestViolationSemantics(t *testing.T) {
	g := graph.Path(3) // 0-1-2; 0 and 2 are not adjacent
	net := New(g, Config{BandwidthWords: 2})
	var got []Message
	net.SetProcesses(func(v graph.NodeID) Process {
		return ProcessFunc(func(ctx *Context, round int, inbox []Message) bool {
			if round == 0 && ctx.NodeID() == 0 {
				// Oversized (5 > 2 words) but to a neighbor: delivered.
				if err := ctx.SendWords(1, kindTestData, 0xB16, 5); err != nil {
					t.Errorf("oversized send to neighbor returned %v", err)
				}
				// Non-neighbor: dropped.
				if err := ctx.Send(2, kindTestData, 0x6057); !errors.Is(err, ErrNotNeighbor) {
					t.Errorf("send to non-neighbor = %v, want ErrNotNeighbor", err)
				}
			}
			if round == 1 && ctx.NodeID() != 0 {
				got = append(got, inbox...)
			}
			return round >= 1
		})
	})
	if _, err := net.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(got) != 1 || got[0].Word != 0xB16 || got[0].To != 1 {
		t.Fatalf("delivered messages = %v, want exactly the oversized message at node 1", got)
	}
	m := net.Metrics()
	if m.BandwidthViolations != 1 {
		t.Errorf("BandwidthViolations = %d, want 1", m.BandwidthViolations)
	}
	if m.ProtocolViolations != 1 {
		t.Errorf("ProtocolViolations = %d, want 1", m.ProtocolViolations)
	}
	if m.MessagesSent != 1 || m.WordsSent != 5 {
		t.Errorf("sent msgs=%d words=%d, want 1, 5 (dropped message must not be accounted)", m.MessagesSent, m.WordsSent)
	}
}

// IDSparseRandom must terminate and produce distinct IDs even for tiny
// graphs, where the n³ space collapses to the 1024 floor and random redraw
// collisions are plausible; the assignment is guarded by a retry bound with
// a deterministic linear-probe fallback.
func TestIDSparseRandomSmallN(t *testing.T) {
	for n := 1; n <= 3; n++ {
		var edges []graph.Edge
		for v := 1; v < n; v++ {
			edges = append(edges, graph.Edge{U: 0, V: graph.NodeID(v)})
		}
		g := graph.MustFromEdges(n, edges)
		for seed := uint64(0); seed < 50; seed++ {
			net := New(g, Config{Seed: seed, IDs: IDSparseRandom})
			seen := make(map[uint64]bool, n)
			for v := 0; v < n; v++ {
				id := net.ID(graph.NodeID(v))
				if seen[id] {
					t.Fatalf("n=%d seed=%d: duplicate ID %d", n, seed, id)
				}
				if id >= 1024 {
					t.Fatalf("n=%d seed=%d: ID %d outside the max(n³, 1024) space", n, seed, id)
				}
				seen[id] = true
			}
		}
	}
}

// Multiple messages over the same edge in one round must all be delivered in
// send order (they share one slot of the message plane).
func TestMultipleMessagesPerEdgePerRound(t *testing.T) {
	for _, parallel := range []bool{false, true} {
		g := graph.Path(2)
		net := New(g, Config{Parallel: parallel})
		var got []Message
		net.SetProcesses(func(v graph.NodeID) Process {
			return ProcessFunc(func(ctx *Context, round int, inbox []Message) bool {
				if round == 0 && ctx.NodeID() == 0 {
					_ = ctx.Send(1, kindTestData, 1)
					_ = ctx.Send(1, kindTestData, 2)
					_ = ctx.Send(1, kindTestData, 3)
				}
				if round == 1 && ctx.NodeID() == 1 {
					got = append(got, inbox...)
				}
				return round >= 1
			})
		})
		if _, err := net.Run(); err != nil {
			t.Fatalf("parallel=%v Run: %v", parallel, err)
		}
		if len(got) != 3 || got[0].Word != 1 || got[1].Word != 2 || got[2].Word != 3 {
			t.Fatalf("parallel=%v inbox = %v, want words 1/2/3 in send order", parallel, got)
		}
	}
}

// The engines report their identity and New selects by Config.
func TestEngineSelection(t *testing.T) {
	g := graph.Path(2)
	if name := New(g, Config{}).Name(); name != "sequential" {
		t.Errorf("default engine = %q, want sequential", name)
	}
	if name := New(g, Config{Parallel: true}).Name(); name != "sharded" {
		t.Errorf("parallel engine = %q, want sharded", name)
	}
}

// A long-running simulation must reuse its buffers: after a warm-up round,
// additional broadcast rounds on the sequential engine allocate nothing.
func TestSteadyStateRoundsDoNotAllocate(t *testing.T) {
	g := graph.GNP(200, 0.05, 1)
	net := New(g, Config{Seed: 1})
	net.SetProcesses(func(v graph.NodeID) Process {
		return ProcessFunc(func(ctx *Context, round int, inbox []Message) bool {
			ctx.Broadcast(kindTestData, uint64(round&1))
			return false
		})
	})
	net.RunRounds(2) // warm-up: buckets and inboxes grow to steady state
	allocs := testing.AllocsPerRun(10, func() { net.RunRounds(1) })
	if allocs > 0 {
		t.Errorf("steady-state round allocated %.1f times, want 0", allocs)
	}
}

// Reset must rewind an engine to the exact state of a freshly constructed
// one: same results, same metrics, same (seed-derived) IDs, for either
// engine implementation and for seed-dependent ID assignments.
func TestResetMatchesFreshEngine(t *testing.T) {
	g := graph.GNP(60, 0.08, 5)
	for _, ids := range []IDAssignment{IDSequential, IDRandomPermutation, IDSparseRandom} {
		testResetMatchesFreshEngine(t, g, ids)
	}
}

func testResetMatchesFreshEngine(t *testing.T, g *graph.Graph, ids IDAssignment) {
	for _, parallel := range []bool{false, true} {
		run := func(net Engine) ([]uint64, Metrics) {
			if _, err := net.Run(); err != nil {
				t.Fatalf("parallel=%v Run: %v", parallel, err)
			}
			out := make([]uint64, g.NumNodes())
			for v := range out {
				out[v] = net.ID(graph.NodeID(v))
			}
			return out, net.Metrics()
		}
		install := func(net Engine) []*broadcastMaxProcess {
			procs := make([]*broadcastMaxProcess, g.NumNodes())
			net.SetProcesses(func(v graph.NodeID) Process {
				procs[v] = &broadcastMaxProcess{maxRound: g.NumNodes() / 2}
				return procs[v]
			})
			return procs
		}
		for _, seed := range []uint64{3, 77} {
			fresh := New(g, Config{Seed: seed, IDs: ids, Parallel: parallel})
			fp := install(fresh)
			fid, fm := run(fresh)

			reused := New(g, Config{Seed: 12345, IDs: ids, Parallel: parallel})
			rp := install(reused)
			run(reused) // dirty the plane, inboxes, metrics and RNG streams
			reused.Reset(seed)
			for v := range rp {
				*rp[v] = broadcastMaxProcess{maxRound: g.NumNodes() / 2}
			}
			rid, rm := run(reused)

			if fm != rm {
				t.Fatalf("ids=%d parallel=%v seed=%d: metrics differ\nfresh: %v\nreset: %v", ids, parallel, seed, fm, rm)
			}
			for v := range fp {
				if fid[v] != rid[v] {
					t.Fatalf("ids=%d parallel=%v seed=%d node %d: fresh ID %d, reset ID %d",
						ids, parallel, seed, v, fid[v], rid[v])
				}
				if fp[v].best != rp[v].best {
					t.Fatalf("ids=%d parallel=%v seed=%d node %d: fresh best %d, reset best %d",
						ids, parallel, seed, v, fp[v].best, rp[v].best)
				}
			}
		}
	}
}

// A reset engine must not allocate beyond its first warm-up: the pooled
// buffers survive the reset.
func TestResetDoesNotAllocate(t *testing.T) {
	g := graph.GNP(100, 0.06, 2)
	net := New(g, Config{Seed: 1})
	net.SetProcesses(func(v graph.NodeID) Process {
		return ProcessFunc(func(ctx *Context, round int, inbox []Message) bool {
			ctx.Broadcast(kindTestData, uint64(round))
			return false
		})
	})
	net.RunRounds(2)
	allocs := testing.AllocsPerRun(10, func() {
		net.Reset(7)
		net.RunRounds(2)
	})
	if allocs > 0 {
		t.Errorf("reset + warmed rounds allocated %.1f times, want 0", allocs)
	}
}
