package congest

import (
	"sort"
	"sync"
	"sync/atomic"

	"d2color/internal/graph"
)

// This file holds the machinery of the persistent sharded engine: the
// edge-balanced shard plan, the padded per-worker state, and the worker team
// with its epoch gate and single per-round barrier. See DESIGN.md §10.

// Shard plan tuning constants.
const (
	// shardChunksPerWorker subdivides each worker's owned range so the
	// work-stealing tail has chunks to migrate when the degree distribution
	// is skewed; with a perfectly balanced plan the extra cursors cost a few
	// atomic adds per round and nothing else.
	shardChunksPerWorker = 8
	// shardMinChunkWeight floors the weight (edge slots + nodes) of one
	// chunk, so tiny graphs do not shatter into chunks whose claim overhead
	// exceeds their work.
	shardMinChunkWeight = 2048
)

// shardPlan is the ownership map of the sharded engine, computed once per
// topology from the CSR offsets and shared by the compute and delivery
// phases. The node range is cut into edge-balanced chunks — boundaries
// chosen so every chunk carries roughly the same weight, where the weight of
// node u is its directed slot count plus one (slots dominate the cost of
// both stepping and delivering a node; the +1 keeps zero-edge graphs
// balanced by node count) — and each worker owns a contiguous run of chunks,
// hence a contiguous node range: compute writes (halted flags, contexts) and
// delivery writes (inboxes) stay partition-local.
type shardPlan struct {
	workers int
	// chunkLo has nChunks+1 entries; chunk c covers nodes
	// [chunkLo[c], chunkLo[c+1]). A chunk may be empty when a single node
	// outweighs the chunk target (a hub in a star-heavy topology).
	chunkLo []int32
	// firstChunk has workers+1 entries; worker w owns chunks
	// [firstChunk[w], firstChunk[w+1]).
	firstChunk []int32
}

func (p *shardPlan) numChunks() int { return len(p.chunkLo) - 1 }

// nodeRange returns the contiguous node range worker w owns.
func (p *shardPlan) nodeRange(w int) (lo, hi int32) {
	return p.chunkLo[p.firstChunk[w]], p.chunkLo[p.firstChunk[w+1]]
}

// buildShardPlan cuts n nodes into edge-balanced chunks grouped into one
// contiguous owned run per worker. The cumulative weight of the first u
// nodes is Offsets[u] + u, strictly increasing, so boundary b_c for target
// weight total·c/nChunks is found by binary search; equal chunk counts per
// worker then give equal worker weights up to one chunk.
func buildShardPlan(ix *graph.EdgeIndex, n, workers int) shardPlan {
	total := int(ix.Offsets[n]) + n // slots + nodes
	nChunks := workers * shardChunksPerWorker
	if most := total / shardMinChunkWeight; nChunks > most {
		nChunks = most
	}
	if nChunks > n {
		nChunks = n
	}
	if nChunks < workers {
		nChunks = workers
	}
	plan := shardPlan{
		workers:    workers,
		chunkLo:    make([]int32, nChunks+1),
		firstChunk: make([]int32, workers+1),
	}
	weight := func(u int) int { return int(ix.Offsets[u]) + u }
	for c := 1; c < nChunks; c++ {
		target := total * c / nChunks
		// Smallest u with weight(u) >= target; boundaries are monotone
		// because the targets are.
		plan.chunkLo[c] = int32(sort.Search(n, func(u int) bool { return weight(u) >= target }))
	}
	plan.chunkLo[nChunks] = int32(n)
	for w := 0; w <= workers; w++ {
		plan.firstChunk[w] = int32(w * nChunks / workers)
	}
	return plan
}

// shardWorker is the per-worker round state: the two phase cursors the
// work-stealing walk claims chunks through, and the worker's delivery
// metrics. The trailing pad keeps adjacent workers on separate cache lines —
// the cursors are hammered by atomics and the metrics by delivery-phase
// stores, and false sharing here is exactly the kind of silent multicore
// regression this engine exists to avoid.
type shardWorker struct {
	computeNext atomic.Int32
	deliverNext atomic.Int32
	metrics     Metrics
	_           [56]byte // pad past one 64-byte line (8B cursors + 64B Metrics + 56B = 128)
}

// shardTeam is the persistent worker pool: workers-1 long-lived goroutines
// (the engine's calling goroutine acts as rank 0) parked on an epoch gate.
// step publishes a round by bumping the epoch; every rank runs the fused
// compute+deliver pipeline — compute its chunks, cross the one barrier (the
// plane is frozen from here), deliver its chunks — and the spawned ranks
// mark the round done on the WaitGroup the publisher drains. Per round that
// is one broadcast wake, one barrier crossing and one wait, against the two
// full spawn+join cycles of the per-round-goroutine design it replaces.
type shardTeam struct {
	e *shardedEngine

	mu      sync.Mutex
	cond    sync.Cond
	epoch   uint64 // guarded by mu
	closed  bool   // guarded by mu
	started bool   // guarded by mu; goroutines spawn on first publish

	barrier phaseBarrier   // compute → deliver crossing, all ranks
	done    sync.WaitGroup // round completion of ranks 1..workers-1
}

func newShardTeam(e *shardedEngine) *shardTeam {
	t := &shardTeam{e: e}
	t.cond.L = &t.mu
	t.barrier.cond.L = &t.barrier.mu
	t.barrier.parties = e.workers
	return t
}

// publish wakes the team for one round (spawning it on first use) and runs
// rank 0's share on the calling goroutine; it returns once every rank has
// finished delivery. The caller must reset the per-worker cursors first.
func (t *shardTeam) publish() {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		panic("congest: round stepped on a closed sharded engine")
	}
	if !t.started {
		t.started = true
		for w := 1; w < t.e.workers; w++ {
			go t.workerLoop(w)
		}
	}
	t.done.Add(t.e.workers - 1)
	t.epoch++
	t.cond.Broadcast()
	t.mu.Unlock()

	t.e.computePhase(0)
	t.barrier.await()
	t.e.deliverPhase(0)
	t.done.Wait()
}

// workerLoop is one spawned rank: wait for a new epoch, run the fused round,
// repeat until closed. A close that races with a published round still runs
// that round to completion first, so publish never hangs on a dying team.
func (t *shardTeam) workerLoop(w int) {
	var seen uint64
	for {
		t.mu.Lock()
		for t.epoch == seen && !t.closed {
			t.cond.Wait()
		}
		if t.epoch == seen { // closed, no round pending
			t.mu.Unlock()
			return
		}
		seen = t.epoch
		t.mu.Unlock()

		t.e.computePhase(w)
		t.barrier.await()
		t.e.deliverPhase(w)
		t.done.Done()
	}
}

// stop parks the team permanently. Idempotent and finalizer-free: the
// spawned ranks drain any round already published, then exit.
func (t *shardTeam) stop() {
	t.mu.Lock()
	if !t.closed {
		t.closed = true
		t.cond.Broadcast()
	}
	t.mu.Unlock()
}

// phaseBarrier is a reusable generation barrier: the parties-th arrival of a
// generation releases the rest and opens the next one. It allocates nothing
// per crossing, so a warmed-up sharded round stays at 0 allocs/op.
type phaseBarrier struct {
	mu      sync.Mutex
	cond    sync.Cond
	parties int
	waiting int
	gen     uint64
}

func (b *phaseBarrier) await() {
	b.mu.Lock()
	gen := b.gen
	b.waiting++
	if b.waiting == b.parties {
		b.waiting = 0
		b.gen++
		b.cond.Broadcast()
		b.mu.Unlock()
		return
	}
	for gen == b.gen {
		b.cond.Wait()
	}
	b.mu.Unlock()
}
