package congest

import "math/bits"

// This file holds the shared payload-word codec helpers. A Message carries
// its payload as one fixed-width uint64 (see Message); protocols encode
// their structured payloads into that word with small per-protocol codecs
// (e.g. internal/trial's propose/answer codecs, the BFS depth codec in
// protocols.go). The helpers here keep those codecs honest about the model:
// a CONGEST message is O(log n) bits, so a value that needs more than
// ⌈log₂ n⌉ bits must declare a correspondingly larger word count.

// EncodeInt64 maps a signed payload onto a word (two's complement).
// DecodeInt64 inverts it. Used by protocols whose payloads are signed
// aggregates (e.g. ConvergecastSum partial sums).
func EncodeInt64(v int64) uint64 { return uint64(v) }

// DecodeInt64 inverts EncodeInt64.
func DecodeInt64(w uint64) int64 { return int64(w) }

// WordBits returns the modeled word width for an n-node network: ⌈log₂ n⌉
// bits, floored at 1. This is the "O(log n) bits" of the model with constant
// exactly 1; IDs from the standard n³ space therefore occupy 3 words' worth
// of bits but are conventionally still charged as one O(log n)-bit word.
func WordBits(n int) int {
	if n < 2 {
		return 1
	}
	return bits.Len(uint(n - 1))
}

// WordsFor returns the number of ⌈log₂ n⌉-bit words needed to carry value —
// the honest Words declaration for a message whose payload word holds value.
// A zero value still occupies one word.
func WordsFor(value uint64, n int) int {
	need := bits.Len64(value)
	if need == 0 {
		need = 1
	}
	w := WordBits(n)
	return (need + w - 1) / w
}
