package congest

import (
	"os"
	"runtime"
	"testing"
	"time"

	"d2color/internal/graph"
)

// multicoreGateEnv opts the wall-clock gate in. Timing assertions are only
// meaningful when the test has the machine to itself, so the gate does not
// run in ordinary `go test ./...` sweeps — CI's dedicated multicore job sets
// the variable (with GOMAXPROCS pinned) and nothing else on the runner
// competes with it.
const multicoreGateEnv = "D2_MULTICORE_GATE"

// TestShardedBeatsSequentialMulticore is the multicore performance gate from
// ISSUE 6: on a runner with at least 4 cores, the pooled sharded engine must
// beat the sequential engine on a full-broadcast workload at n = 10⁶ — the
// single-large-graph regime (E11's relaxed row) where every parallel win
// previously came from the sweep grid and the engine itself lost. A failure
// here is a build failure: the engine regressed to decoration.
func TestShardedBeatsSequentialMulticore(t *testing.T) {
	if os.Getenv(multicoreGateEnv) == "" {
		t.Skipf("wall-clock gate: set %s=1 (CI multicore job) to enable", multicoreGateEnv)
	}
	if procs := runtime.GOMAXPROCS(0); procs < 4 {
		t.Skipf("wall-clock gate needs GOMAXPROCS >= 4, have %d", procs)
	}
	const (
		n      = 1_000_000
		rounds = 3
		trials = 2 // best-of, to damp scheduler noise
	)
	g := graph.GNPWithAverageDegree(n, 8, 42)

	measure := func(parallel bool) time.Duration {
		net := New(g, Config{Seed: 1, Parallel: parallel})
		defer net.Close()
		net.SetProcesses(func(v graph.NodeID) Process {
			return ProcessFunc(func(ctx *Context, round int, inbox []Message) bool {
				ctx.Broadcast(1, uint64(round&1))
				return false
			})
		})
		net.RunRounds(1) // warm: buckets, inboxes, worker team
		best := time.Duration(1<<63 - 1)
		for i := 0; i < trials; i++ {
			start := time.Now()
			net.RunRounds(rounds)
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}

	seq := measure(false)
	shd := measure(true)
	t.Logf("n=%d rounds=%d GOMAXPROCS=%d: sequential %v, sharded %v (%.2fx)",
		n, rounds, runtime.GOMAXPROCS(0), seq, shd, float64(seq)/float64(shd))
	if shd >= seq {
		t.Fatalf("sharded engine (%v) did not beat sequential (%v) at n=%d on %d procs",
			shd, seq, n, runtime.GOMAXPROCS(0))
	}
}
