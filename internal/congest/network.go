package congest

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"d2color/internal/graph"
	"d2color/internal/rng"
)

// Process is the state machine a node runs. The simulator calls Step once per
// round with the messages delivered this round; the process sends messages
// for the next round through the Context and returns true once it has halted.
// A halted process is not stepped again (its neighbors may keep running).
type Process interface {
	Step(ctx *Context, round int, inbox []Message) (halted bool)
}

// ProcessFunc adapts a function to the Process interface, convenient for
// small test protocols.
type ProcessFunc func(ctx *Context, round int, inbox []Message) bool

// Step implements Process.
func (f ProcessFunc) Step(ctx *Context, round int, inbox []Message) bool { return f(ctx, round, inbox) }

// IDAssignment selects how the simulator assigns the O(log n)-bit unique
// identifiers the model gives to nodes.
type IDAssignment int

// Identifier assignment strategies.
const (
	// IDSequential assigns ID(v) = v. Simplest; adequate for algorithms that
	// only need distinctness.
	IDSequential IDAssignment = iota + 1
	// IDRandomPermutation assigns a random permutation of 1..n, modelling an
	// adversarially scrambled but compact ID space.
	IDRandomPermutation
	// IDSparseRandom assigns distinct random values from a space of size n³,
	// modelling the general O(log n)-bit ID assumption.
	IDSparseRandom
)

// Config controls a simulation.
type Config struct {
	// Seed is the root seed for all per-node randomness.
	Seed uint64
	// BandwidthWords is the number of O(log n)-bit words a node may send over
	// one edge in one round. 0 means "account but do not limit". Violations
	// are recorded in Metrics and the offending messages are still delivered,
	// so an algorithm bug is observable rather than silently masked.
	BandwidthWords int
	// MaxRounds aborts Run with ErrRoundLimit if the protocol has not
	// terminated. 0 means the package default (defaultMaxRounds).
	MaxRounds int
	// Parallel runs node steps on a goroutine pool. Results are identical to
	// the sequential engine because processes only touch their own state.
	Parallel bool
	// Workers bounds the goroutine pool for the parallel engine; 0 means
	// GOMAXPROCS.
	Workers int
	// IDs selects the identifier assignment; zero value means IDSequential.
	IDs IDAssignment
}

// defaultMaxRounds is a generous cap that terminates runaway protocols in
// tests and experiments.
const defaultMaxRounds = 1_000_000

// Errors returned by the simulator.
var (
	ErrRoundLimit  = errors.New("congest: protocol did not terminate within the round limit")
	ErrNoProcess   = errors.New("congest: node has no process installed")
	ErrNotNeighbor = errors.New("congest: attempted to send to a non-neighbor")
)

// Network is one simulation instance: a topology, a process per node, and the
// accumulated metrics. A Network is not safe for concurrent use by multiple
// goroutines; the parallel engine synchronizes internally.
type Network struct {
	g       *graph.Graph
	cfg     Config
	procs   []Process
	halted  []bool
	inboxes [][]Message
	metrics Metrics
	ids     []uint64
	rands   []*rng.Source
	round   int
}

// NewNetwork creates a simulation over the given topology.
func NewNetwork(g *graph.Graph, cfg Config) *Network {
	n := g.NumNodes()
	if cfg.MaxRounds <= 0 {
		cfg.MaxRounds = defaultMaxRounds
	}
	if cfg.IDs == 0 {
		cfg.IDs = IDSequential
	}
	net := &Network{
		g:       g,
		cfg:     cfg,
		procs:   make([]Process, n),
		halted:  make([]bool, n),
		inboxes: make([][]Message, n),
		ids:     make([]uint64, n),
		rands:   make([]*rng.Source, n),
	}
	net.assignIDs()
	for v := 0; v < n; v++ {
		net.rands[v] = rng.Split(cfg.Seed, uint64(v))
	}
	return net
}

func (net *Network) assignIDs() {
	n := net.g.NumNodes()
	switch net.cfg.IDs {
	case IDRandomPermutation:
		src := rng.Split(net.cfg.Seed, 0xC0FFEE)
		perm := src.Perm(n)
		for v := 0; v < n; v++ {
			net.ids[v] = uint64(perm[v]) + 1
		}
	case IDSparseRandom:
		src := rng.Split(net.cfg.Seed, 0xC0FFEE)
		space := uint64(n) * uint64(n) * uint64(n)
		if space < 1024 {
			space = 1024
		}
		seen := make(map[uint64]bool, n)
		for v := 0; v < n; v++ {
			for {
				id := src.Uint64() % space
				if !seen[id] {
					seen[id] = true
					net.ids[v] = id
					break
				}
			}
		}
	default:
		for v := 0; v < n; v++ {
			net.ids[v] = uint64(v)
		}
	}
}

// Graph returns the topology.
func (net *Network) Graph() *graph.Graph { return net.g }

// SetProcess installs the process for one node.
func (net *Network) SetProcess(v graph.NodeID, p Process) { net.procs[v] = p }

// SetProcesses installs a process for every node using the factory.
func (net *Network) SetProcesses(factory func(v graph.NodeID) Process) {
	for v := 0; v < net.g.NumNodes(); v++ {
		net.procs[v] = factory(graph.NodeID(v))
	}
}

// Metrics returns the metrics accumulated so far.
func (net *Network) Metrics() Metrics {
	m := net.metrics
	m.HaltedNodes = net.countHalted()
	return m
}

// Round returns the number of simulated rounds executed so far.
func (net *Network) Round() int { return net.round }

// ID returns the model identifier assigned to node v.
func (net *Network) ID(v graph.NodeID) uint64 { return net.ids[v] }

// ChargeRounds accounts k additional rounds for a pipelined sub-protocol that
// is not simulated message-by-message. Negative charges are ignored.
func (net *Network) ChargeRounds(k int) {
	if k > 0 {
		net.metrics.ChargedRounds += k
	}
}

// AllHalted reports whether every node with a process has halted.
func (net *Network) AllHalted() bool {
	for v := range net.procs {
		if net.procs[v] != nil && !net.halted[v] {
			return false
		}
	}
	return true
}

func (net *Network) countHalted() int {
	c := 0
	for _, h := range net.halted {
		if h {
			c++
		}
	}
	return c
}

// Run executes rounds until every process has halted, returning the number of
// simulated rounds. It returns ErrRoundLimit if the configured limit is hit
// and ErrNoProcess if some node has no process installed.
func (net *Network) Run() (int, error) {
	for v := range net.procs {
		if net.procs[v] == nil {
			return net.round, fmt.Errorf("%w: node %d", ErrNoProcess, v)
		}
	}
	start := net.round
	for !net.AllHalted() {
		if net.round-start >= net.cfg.MaxRounds {
			return net.round, fmt.Errorf("%w (%d rounds)", ErrRoundLimit, net.cfg.MaxRounds)
		}
		net.step()
	}
	return net.round, nil
}

// RunRounds executes exactly k rounds (even if all processes have halted,
// halted processes are simply not stepped).
func (net *Network) RunRounds(k int) {
	for i := 0; i < k; i++ {
		net.step()
	}
}

// step executes one synchronous round.
func (net *Network) step() {
	n := net.g.NumNodes()
	contexts := make([]*Context, n)
	for v := 0; v < n; v++ {
		if net.procs[v] == nil || net.halted[v] {
			continue
		}
		contexts[v] = &Context{net: net, id: graph.NodeID(v)}
	}

	if net.cfg.Parallel {
		net.stepParallel(contexts)
	} else {
		for v := 0; v < n; v++ {
			if contexts[v] == nil {
				continue
			}
			net.halted[v] = net.procs[v].Step(contexts[v], net.round, net.inboxes[v])
		}
	}

	net.deliver(contexts)
	net.round++
	net.metrics.Rounds = net.round
}

// stepParallel runs the per-node steps on a bounded pool of goroutines. Each
// context owns its outbox and RNG stream, so node steps are data-race free;
// delivery happens after all steps complete, preserving the synchronous
// semantics and determinism.
func (net *Network) stepParallel(contexts []*Context) {
	workers := net.cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers < 1 {
		workers = 1
	}
	n := len(contexts)
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if lo >= n {
			break
		}
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for v := lo; v < hi; v++ {
				if contexts[v] == nil {
					continue
				}
				net.halted[v] = net.procs[v].Step(contexts[v], net.round, net.inboxes[v])
			}
		}(lo, hi)
	}
	wg.Wait()
}

// deliver collects the outboxes, applies bandwidth accounting and fills the
// inboxes for the next round. Inboxes are sorted by sender so that the
// parallel and sequential engines produce identical message orders.
func (net *Network) deliver(contexts []*Context) {
	n := net.g.NumNodes()
	next := make([][]Message, n)
	type edgeKey struct{ from, to graph.NodeID }
	edgeWords := make(map[edgeKey]int)

	for v := 0; v < n; v++ {
		ctx := contexts[v]
		if ctx == nil {
			continue
		}
		net.metrics.ProtocolViolations += ctx.violations
		for _, m := range ctx.outbox {
			next[m.To] = append(next[m.To], m)
			net.metrics.MessagesSent++
			w := m.words()
			net.metrics.WordsSent += w
			k := edgeKey{from: m.From, to: m.To}
			edgeWords[k] += w
		}
	}
	for _, w := range edgeWords {
		if w > net.metrics.MaxEdgeWordsPerRound {
			net.metrics.MaxEdgeWordsPerRound = w
		}
		if net.cfg.BandwidthWords > 0 && w > net.cfg.BandwidthWords {
			net.metrics.BandwidthViolations++
		}
	}
	for v := 0; v < n; v++ {
		sort.SliceStable(next[v], func(i, j int) bool { return next[v][i].From < next[v][j].From })
		net.inboxes[v] = next[v]
	}
}

// Context is the interface a process uses to interact with the network during
// one Step call. It is valid only for the duration of that call.
type Context struct {
	net        *Network
	id         graph.NodeID
	outbox     []Message
	violations int
}

// NodeID returns the dense index of this node (0..n-1).
func (c *Context) NodeID() graph.NodeID { return c.id }

// UID returns the model's O(log n)-bit unique identifier of this node.
func (c *Context) UID() uint64 { return c.net.ids[c.id] }

// N returns the number of nodes in the network (globally known, as the model
// assumes knowledge of n or a polynomial upper bound).
func (c *Context) N() int { return c.net.g.NumNodes() }

// MaxDegree returns Δ, assumed globally known (Section 2.6 "We assume ∆ is
// known to the nodes").
func (c *Context) MaxDegree() int { return c.net.g.MaxDegree() }

// Degree returns this node's degree.
func (c *Context) Degree() int { return c.net.g.Degree(c.id) }

// Neighbors returns this node's neighbor list (shared slice; do not modify).
func (c *Context) Neighbors() []graph.NodeID { return c.net.g.Neighbors(c.id) }

// NeighborUID returns the unique identifier of a neighbor. In the CONGEST
// model a node learns its neighbors' IDs in one round; exposing the lookup
// here models that without boilerplate in every algorithm.
func (c *Context) NeighborUID(v graph.NodeID) uint64 { return c.net.ids[v] }

// Rand returns this node's private random stream.
func (c *Context) Rand() *rng.Source { return c.net.rands[c.id] }

// Send queues a 1-word message to a neighbor for delivery next round. Sends
// to non-neighbors are dropped and recorded as protocol violations.
func (c *Context) Send(to graph.NodeID, payload any) error {
	return c.SendWords(to, payload, 1)
}

// SendWords queues a message of the given word size to a neighbor.
func (c *Context) SendWords(to graph.NodeID, payload any, words int) error {
	if !c.net.g.HasEdge(c.id, to) {
		c.violations++
		return fmt.Errorf("%w: %d → %d", ErrNotNeighbor, c.id, to)
	}
	c.outbox = append(c.outbox, Message{From: c.id, To: to, Payload: payload, Words: words})
	return nil
}

// Broadcast sends the same payload to every neighbor (1 word each).
func (c *Context) Broadcast(payload any) {
	for _, v := range c.Neighbors() {
		// Neighbors are by construction adjacent, so Send cannot fail.
		_ = c.Send(v, payload)
	}
}
