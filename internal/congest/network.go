package congest

import (
	"errors"
	"fmt"

	"d2color/internal/graph"
	"d2color/internal/rng"
)

// Process is the state machine a node runs. The simulator calls Step once per
// round with the messages delivered this round; the process sends messages
// for the next round through the Context and returns true once it has halted.
// A halted process is not stepped again (its neighbors may keep running).
//
// The inbox slice is owned by the engine and reused across rounds: it is
// valid only for the duration of the Step call. Copy out anything that must
// survive the round.
type Process interface {
	Step(ctx *Context, round int, inbox []Message) (halted bool)
}

// ProcessFunc adapts a function to the Process interface, convenient for
// small test protocols.
type ProcessFunc func(ctx *Context, round int, inbox []Message) bool

// Step implements Process.
func (f ProcessFunc) Step(ctx *Context, round int, inbox []Message) bool { return f(ctx, round, inbox) }

// IDAssignment selects how the simulator assigns the O(log n)-bit unique
// identifiers the model gives to nodes.
type IDAssignment int

// Identifier assignment strategies.
const (
	// IDSequential assigns ID(v) = v. Simplest; adequate for algorithms that
	// only need distinctness.
	IDSequential IDAssignment = iota + 1
	// IDRandomPermutation assigns a random permutation of 1..n, modelling an
	// adversarially scrambled but compact ID space.
	IDRandomPermutation
	// IDSparseRandom assigns distinct random values from a space of size n³,
	// modelling the general O(log n)-bit ID assumption.
	IDSparseRandom
)

// Config controls a simulation.
type Config struct {
	// Seed is the root seed for all per-node randomness.
	Seed uint64
	// BandwidthWords is the number of O(log n)-bit words a node may send over
	// one edge in one round. 0 means "account but do not limit". Exceeding
	// the limit is a bandwidth violation: it is counted in
	// Metrics.BandwidthViolations but the messages are still delivered, so an
	// algorithm bug is observable rather than silently masked. Sends to
	// non-neighbors are a different class of fault (protocol violations):
	// those messages are dropped, never delivered, and counted in
	// Metrics.ProtocolViolations (see Context.SendWords).
	BandwidthWords int
	// MaxRounds aborts Run with ErrRoundLimit if the protocol has not
	// terminated. 0 means the package default (defaultMaxRounds).
	MaxRounds int
	// Parallel selects the sharded engine, which runs node steps and message
	// delivery on a goroutine pool. Results are byte-identical to the
	// sequential engine: processes only touch their own state, the message
	// plane assigns every directed edge a fixed slot owned by its tail, and
	// delivery is sharded by destination node.
	Parallel bool
	// Workers bounds the goroutine pool of the sharded engine; 0 means
	// GOMAXPROCS.
	Workers int
	// IDs selects the identifier assignment; zero value means IDSequential.
	IDs IDAssignment
}

// defaultMaxRounds is a generous cap that terminates runaway protocols in
// tests and experiments.
const defaultMaxRounds = 1_000_000

// idSparseRetries bounds the random redraws IDSparseRandom performs per node
// before falling back to a deterministic linear probe. The probe terminates
// because the ID space is always strictly larger than n.
const idSparseRetries = 64

// Errors returned by the simulator.
var (
	ErrRoundLimit  = errors.New("congest: protocol did not terminate within the round limit")
	ErrNoProcess   = errors.New("congest: node has no process installed")
	ErrNotNeighbor = errors.New("congest: attempted to send to a non-neighbor")
	ErrCanceled    = errors.New("congest: run canceled")
)

// engineCore is the state shared by both engine implementations: the
// topology and its CSR edge index, the per-node processes, the preallocated
// message plane, pooled contexts and inbox buffers, and the accumulated
// metrics. All buffers are allocated once at construction and reused every
// round.
type engineCore struct {
	g       *graph.Graph
	cfg     Config
	ix      *graph.EdgeIndex
	plane   *plane
	procs   []Process
	halted  []bool
	ctxs    []Context   // pooled, one per node, reused across rounds
	inboxes [][]Message // pooled per-destination buffers, reused across rounds
	// ids is nil under IDSequential (ID(v) = v needs no table); the
	// randomized assignments allocate it on demand. At n = 10⁷ the implicit
	// default saves 80 MB per engine.
	ids []uint64
	// rands is one flat slice of 8-byte sources, not n separately boxed
	// *Source values: no per-node pointer, no per-node heap object, and
	// Context.Rand hands out interior pointers.
	rands   []rng.Source
	metrics Metrics
	round   int

	// active is the optional partial-activation mask (nil = every node runs)
	// and faults the optional fault model; see faults.go. Both are cleared by
	// Reset so warm reuse stays byte-identical to a fresh engine.
	active []bool
	faults FaultModel

	// cancel is the optional cooperative cancellation hook, polled between
	// rounds (never mid-round); see SetCancel in faults.go. Cleared by Reset
	// for the same reason as active/faults: a warm reused engine must be
	// byte-identical to a fresh one.
	cancel func() bool
}

func newEngineCore(g *graph.Graph, cfg Config) engineCore {
	n := g.NumNodes()
	if cfg.MaxRounds <= 0 {
		cfg.MaxRounds = defaultMaxRounds
	}
	if cfg.IDs == 0 {
		cfg.IDs = IDSequential
	}
	ix := g.EdgeIndex()
	c := engineCore{
		g:       g,
		cfg:     cfg,
		ix:      ix,
		plane:   newPlane(ix),
		procs:   make([]Process, n),
		halted:  make([]bool, n),
		ctxs:    make([]Context, n),
		inboxes: make([][]Message, n),
		rands:   make([]rng.Source, n),
	}
	// The per-destination inbox buffers are carved out of one exact-size
	// arena — one Message slot per incoming directed edge, the most a
	// one-message-per-edge round can deliver. Full-capacity slicing keeps the
	// regions disjoint, so delivery appends in place with no growth doubling
	// and no per-node allocations; a protocol that double-sends over an edge
	// overflows that node's region onto the heap (append past cap) and simply
	// keeps the grown buffer, exactly like the old lazily-grown layout.
	arena := make([]Message, ix.NumSlots())
	for v := 0; v < n; v++ {
		lo, hi := ix.Offsets[v], ix.Offsets[v+1]
		c.inboxes[v] = arena[lo:lo:hi]
	}
	c.assignIDs()
	for v := 0; v < n; v++ {
		c.rands[v].ResetSplit(cfg.Seed, uint64(v))
	}
	return c
}

// initContexts wires the pooled contexts to their engine. Called by the
// concrete engine constructors after the core has reached its final address.
func (c *engineCore) initContexts() {
	for v := range c.ctxs {
		c.ctxs[v] = Context{
			core: c,
			id:   graph.NodeID(v),
			base: c.ix.Offsets[v],
		}
	}
}

func (c *engineCore) assignIDs() {
	n := c.g.NumNodes()
	switch c.cfg.IDs {
	case IDRandomPermutation:
		if c.ids == nil {
			c.ids = make([]uint64, n)
		}
		src := rng.Split(c.cfg.Seed, 0xC0FFEE)
		perm := src.Perm(n)
		for v := 0; v < n; v++ {
			c.ids[v] = uint64(perm[v]) + 1
		}
	case IDSparseRandom:
		if c.ids == nil {
			c.ids = make([]uint64, n)
		}
		src := rng.Split(c.cfg.Seed, 0xC0FFEE)
		space := uint64(n) * uint64(n) * uint64(n)
		if n > 0 && space/uint64(n)/uint64(n) != uint64(n) {
			// n³ overflowed uint64; any power-of-two-ish huge space models
			// the O(log n)-bit assumption just as well.
			space = 1 << 62
		}
		if space < 1024 {
			// Keeps the space strictly larger than n for tiny graphs, so
			// distinct IDs always exist (and collisions stay rare).
			space = 1024
		}
		seen := make(map[uint64]bool, n)
		for v := 0; v < n; v++ {
			id := src.Uint64() % space
			for redraws := 0; seen[id]; redraws++ {
				if redraws < idSparseRetries {
					id = src.Uint64() % space
				} else {
					// Pathological collision streak: finish deterministically
					// with a linear probe instead of looping on the RNG.
					id = (id + 1) % space
				}
			}
			seen[id] = true
			c.ids[v] = id
		}
	default:
		// IDSequential: ID(v) = v, represented implicitly (ids stays nil).
	}
}

// Graph returns the topology.
func (c *engineCore) Graph() *graph.Graph { return c.g }

// SetProcess installs the process for one node.
func (c *engineCore) SetProcess(v graph.NodeID, p Process) { c.procs[v] = p }

// SetProcesses installs a process for every node using the factory.
func (c *engineCore) SetProcesses(factory func(v graph.NodeID) Process) {
	for v := 0; v < c.g.NumNodes(); v++ {
		c.procs[v] = factory(graph.NodeID(v))
	}
}

// Metrics returns the metrics accumulated so far.
func (c *engineCore) Metrics() Metrics {
	m := c.metrics
	m.HaltedNodes = c.countHalted()
	return m
}

// Round returns the number of simulated rounds executed so far.
func (c *engineCore) Round() int { return c.round }

// Reset rewinds the engine to the state of a freshly constructed network
// with the given seed, without reallocating any of its pooled round buffers:
// the round counter, metrics and halted flags are cleared, pending messages
// and inboxes are discarded, every node's private random stream is re-seeded
// to rng.Split(seed, node), and the ID assignment is re-derived from the new
// seed (a no-op allocation-wise for IDSequential; the randomized modes pay
// their usual assignment cost). Installed processes are kept. Reset is what
// makes a network reusable across runs — a reset engine behaves
// byte-identically to a brand-new one with the same topology, processes,
// Config and seed.
func (c *engineCore) Reset(seed uint64) {
	c.round = 0
	c.metrics = Metrics{}
	c.active = nil
	c.faults = nil
	c.cancel = nil
	clear(c.halted)
	for v := range c.inboxes {
		c.inboxes[v] = c.inboxes[v][:0]
	}
	c.plane.advance() // logically clears every pending slot
	for v := range c.rands {
		(&c.rands[v]).ResetSplit(seed, uint64(v))
	}
	if c.cfg.Seed != seed && c.cfg.IDs != IDSequential {
		c.cfg.Seed = seed
		c.assignIDs()
	}
	c.cfg.Seed = seed
}

// ID returns the model identifier assigned to node v.
func (c *engineCore) ID(v graph.NodeID) uint64 {
	if c.ids == nil {
		return uint64(v) // IDSequential
	}
	return c.ids[v]
}

// Close is a no-op for the sequential engine (no pooled goroutines to park);
// the sharded engine overrides it.
func (c *engineCore) Close() {}

// ChargeRounds accounts k additional rounds for a pipelined sub-protocol that
// is not simulated message-by-message. Negative charges are ignored.
func (c *engineCore) ChargeRounds(k int) {
	if k > 0 {
		c.metrics.ChargedRounds += k
	}
}

// AllHalted reports whether every active node with a process has halted.
// Nodes masked out by SetActive are ignored: they never step, so they could
// never halt, and counting them would make Run spin forever under partial
// activation. Crashed nodes still count — crash windows are transient.
func (c *engineCore) AllHalted() bool {
	for v := range c.procs {
		if c.procs[v] != nil && !c.halted[v] && (c.active == nil || c.active[v]) {
			return false
		}
	}
	return true
}

func (c *engineCore) countHalted() int {
	n := 0
	for _, h := range c.halted {
		if h {
			n++
		}
	}
	return n
}

// run executes rounds until every process has halted. step is the concrete
// engine's round implementation.
func (c *engineCore) run(step func()) (int, error) {
	for v := range c.procs {
		if c.procs[v] == nil {
			return c.round, fmt.Errorf("%w: node %d", ErrNoProcess, v)
		}
	}
	start := c.round
	for !c.AllHalted() {
		if c.round-start >= c.cfg.MaxRounds {
			return c.round, fmt.Errorf("%w (%d rounds)", ErrRoundLimit, c.cfg.MaxRounds)
		}
		if c.cancel != nil && c.cancel() {
			return c.round, fmt.Errorf("%w (after %d rounds)", ErrCanceled, c.round-start)
		}
		step()
	}
	return c.round, nil
}

// collectSendCounters folds the per-context send counters into the metrics
// (in node order, so both engines account identically) and resets them.
func (c *engineCore) collectSendCounters() {
	for v := range c.ctxs {
		ctx := &c.ctxs[v]
		c.metrics.MessagesSent += int(ctx.msgs)
		c.metrics.WordsSent += int(ctx.words)
		c.metrics.ProtocolViolations += int(ctx.violations)
		ctx.msgs, ctx.words, ctx.violations = 0, 0, 0
	}
}

// deliverRange assembles the inboxes of destination nodes [lo, hi) from the
// message plane and accounts per-edge bandwidth into m. Because a node's
// incoming slots are visited in ascending neighbor order, inboxes arrive
// sorted by sender with no per-round sort; messages from one sender keep
// their send order. The range discipline makes the call safe to shard by
// destination: it writes only inboxes[lo:hi] and *m, and reads the plane,
// which is frozen between the compute and delivery phases.
func (c *engineCore) deliverRange(lo, hi int, m *Metrics) {
	ix, p := c.ix, c.plane
	limit := c.cfg.BandwidthWords
	faulty := c.active != nil || c.faults != nil
	for u := lo; u < hi; u++ {
		if faulty && c.skipped(u) {
			// Inactive or crashed destination: its round of traffic is lost.
			c.inboxes[u] = c.inboxes[u][:0]
			continue
		}
		inbox := c.inboxes[u][:0]
		for e, end := ix.Offsets[u], ix.Offsets[u+1]; e < end; e++ {
			slot := ix.Rev[e]
			// The drop oracle is consulted only for slots that carry a
			// message this round, so fault models can count exact losses.
			if c.faults != nil && p.fresh(slot) && c.faults.DropMessage(c.round, slot) {
				continue
			}
			var w int
			if inbox, w = p.appendFresh(slot, inbox); w == 0 {
				continue
			}
			if w > m.MaxEdgeWordsPerRound {
				m.MaxEdgeWordsPerRound = w
			}
			if limit > 0 && w > limit {
				m.BandwidthViolations++
			}
		}
		c.inboxes[u] = inbox
	}
}

// finishRound advances the plane generation and the round counter after
// delivery completes.
func (c *engineCore) finishRound() {
	c.plane.advance()
	c.round++
	c.metrics.Rounds = c.round
}

// Context is the interface a process uses to interact with the network during
// one Step call. Contexts are pooled by the engine (one per node, reused
// every round); a Context value is valid only for the duration of the Step
// call it is passed to.
type Context struct {
	core *engineCore
	id   graph.NodeID
	base int32 // first out-slot of this node in the edge index

	// Per-round send counters, folded into the engine metrics after the
	// compute phase. Only this node's step touches them, so the sharded
	// engine needs no synchronization here. The counters are reset every
	// round, so the narrow widths cannot overflow on any feasible round
	// (2³¹ messages from one node would need a 48 GB plane). The neighbor
	// list is not cached here: it is two loads away in the graph's CSR, and
	// dropping the slice header keeps a Context at 32 bytes — 320 MB less
	// pooled state at n = 10⁷ than the 64-byte layout.
	words      int64
	msgs       int32
	violations int32
}

// NodeID returns the dense index of this node (0..n-1).
func (c *Context) NodeID() graph.NodeID { return c.id }

// UID returns the model's O(log n)-bit unique identifier of this node.
func (c *Context) UID() uint64 { return c.core.ID(c.id) }

// N returns the number of nodes in the network (globally known, as the model
// assumes knowledge of n or a polynomial upper bound).
func (c *Context) N() int { return c.core.g.NumNodes() }

// MaxDegree returns Δ, assumed globally known (Section 2.6 "We assume ∆ is
// known to the nodes").
func (c *Context) MaxDegree() int { return c.core.g.MaxDegree() }

// Degree returns this node's degree.
func (c *Context) Degree() int { return int(c.core.ix.Offsets[c.id+1] - c.base) }

// Neighbors returns this node's neighbor list (shared slice; do not modify).
func (c *Context) Neighbors() []graph.NodeID { return c.core.g.Neighbors(c.id) }

// NeighborUID returns the unique identifier of a neighbor. In the CONGEST
// model a node learns its neighbors' IDs in one round; exposing the lookup
// here models that without boilerplate in every algorithm.
func (c *Context) NeighborUID(v graph.NodeID) uint64 { return c.core.ID(v) }

// Rand returns this node's private random stream.
func (c *Context) Rand() *rng.Source { return &c.core.rands[c.id] }

// Send queues a 1-word message to a neighbor for delivery next round. The
// payload is a kind tag plus one word, encoded by the caller's codec (see
// codec.go). Sends to non-neighbors are dropped and recorded as protocol
// violations.
func (c *Context) Send(to graph.NodeID, kind Kind, word uint64) error {
	return c.SendWords(to, kind, word, 1)
}

// SendWords queues a message of the given word size to a neighbor. Sending
// to a non-neighbor is a protocol violation: the message is dropped (never
// delivered) and Metrics.ProtocolViolations is incremented. Oversized
// messages, by contrast, are delivered and accounted as bandwidth violations
// at delivery time (see Config.BandwidthWords).
func (c *Context) SendWords(to graph.NodeID, kind Kind, word uint64, words int) error {
	e, ok := c.core.ix.Slot(c.id, to)
	if !ok {
		c.violations++
		return fmt.Errorf("%w: %d → %d", ErrNotNeighbor, c.id, to)
	}
	if words <= 0 {
		words = 1
	}
	c.core.plane.put(e, Message{From: c.id, To: to, Kind: kind, Word: word, Words: clampWords(words)})
	c.msgs++
	c.words += int64(words)
	return nil
}

// SendToNeighbor queues a 1-word message to this node's i-th neighbor (in
// sorted neighbor order), addressing the out-slot directly (base+i) instead
// of paying Send's O(log deg) neighbor lookup. i must be in [0, Degree());
// it is not range-checked beyond the slice bounds.
func (c *Context) SendToNeighbor(i int, kind Kind, word uint64) {
	c.core.plane.put(c.base+int32(i), Message{From: c.id, To: c.core.g.Neighbors(c.id)[i], Kind: kind, Word: word, Words: 1})
	c.msgs++
	c.words++
}

// Broadcast sends the same payload to every neighbor (1 word each). The i-th
// neighbor's slot is addressed directly (base+i), so a broadcast does not
// pay the per-send neighbor lookup.
func (c *Context) Broadcast(kind Kind, word uint64) {
	nbrs := c.core.g.Neighbors(c.id)
	for i, v := range nbrs {
		c.core.plane.put(c.base+int32(i), Message{From: c.id, To: v, Kind: kind, Word: word, Words: 1})
	}
	c.msgs += int32(len(nbrs))
	c.words += int64(len(nbrs))
}

// clampWords saturates a declared word count into the Message.Words field.
// 2¹⁶-1 words is far beyond any O(log n)-bit discipline; the accounting in
// Context.words (an int) stays exact either way.
func clampWords(words int) uint16 {
	if words > int(^uint16(0)) {
		return ^uint16(0)
	}
	return uint16(words)
}
