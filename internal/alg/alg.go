// Package alg is the unified algorithm registry: every coloring (and
// coloring-shaped) algorithm in the repository is exposed behind one small
// interface and registered by name, so the sweep engine, the experiment
// harness and the CLIs dispatch through a single table instead of re-wrapping
// each package's entry point.
//
// The algorithm packages self-register their default instances from init()
// (see the register.go file in randd2, detd2, polylogd2, baseline and mis);
// importing any of them — directly or transitively, e.g. via internal/core —
// populates the registry. Parameterized instances (custom constants, a
// non-default ε, ...) are built with the packages' Algorithm constructors and
// used unregistered, typically as one axis value of a sweep.Spec.
package alg

import (
	"fmt"
	"sort"
	"sync"

	"d2color/internal/coloring"
	"d2color/internal/congest"
	"d2color/internal/graph"
	"d2color/internal/trial"
)

// Determinism classifies an algorithm's output as a function of the seed.
type Determinism int

const (
	// Deterministic algorithms produce the same result on every run with the
	// same input (the seed at most permutes internal identifiers). The sweep
	// engine runs them once per cell regardless of the repetition count.
	Deterministic Determinism = iota
	// Randomized algorithms produce seed-dependent results; measurements are
	// averaged over repetitions with distinct seeds.
	Randomized
)

func (d Determinism) String() string {
	if d == Deterministic {
		return "deterministic"
	}
	return "randomized"
}

// Engine selects the CONGEST execution substrate for one run. All engines are
// byte-deterministic with each other, so the choice changes wall-clock time,
// never results.
type Engine struct {
	// Parallel selects the sharded-parallel simulator engine.
	Parallel bool
	// Workers bounds the sharded engine's goroutine pool; 0 means GOMAXPROCS.
	Workers int
	// Kernel, when non-nil, returns a reusable trial kernel built for the
	// graph being solved. Adapters whose algorithm runs random-trial phases
	// (the randd2 family) call it instead of letting the algorithm build a
	// throwaway kernel, so repeated runs on one topology — the sweep engine's
	// seed repetitions — share the kernel's network and flat per-node state.
	// The provider is expected to memoize; algorithms that do not run trial
	// phases never call it, so no kernel is built for them.
	Kernel func() *trial.Runner
	// PackedColors asks the adapter to emit the coloring bit-packed
	// (Result.Packed instead of Result.Coloring): ⌈log₂(palette+1)⌉ bits/node,
	// the representation the 10⁷-node scale runs keep resident. The colors
	// are byte-identical either way. Adapters that have no packed path
	// (results flowing through Details) ignore the flag and fill Coloring.
	PackedColors bool
}

// Result is the algorithm-independent outcome of one run.
type Result struct {
	// Coloring assigns a color to every node (for MIS-shaped algorithms,
	// membership encoded as colors 1/0). Nil when the run produced a packed
	// coloring instead; use ColorsUsed/ColorAt for backing-agnostic reads.
	Coloring coloring.Coloring
	// Packed is the bit-packed assignment, set instead of Coloring when the
	// engine requested Engine.PackedColors and the adapter supports it.
	Packed *coloring.Packed
	// PaletteSize is the palette bound the run guarantees.
	PaletteSize int
	// Metrics is the CONGEST cost of the run.
	Metrics congest.Metrics
	// Details carries the package-specific result (e.g. *randd2.Result) for
	// callers that need per-stage observability. May be nil.
	Details any
}

// ColorsUsed returns the distinct-color count of whichever backing the run
// produced.
func (r *Result) ColorsUsed() int {
	if r.Packed != nil {
		return r.Packed.NumColorsUsed()
	}
	return r.Coloring.NumColorsUsed()
}

// ColorAt returns node v's color from whichever backing the run produced.
func (r *Result) ColorAt(v graph.NodeID) int {
	if r.Packed != nil {
		return r.Packed.Get(v)
	}
	return r.Coloring.Get(v)
}

// Algorithm is one runnable algorithm instance. Implementations must be safe
// for concurrent Run calls on distinct graphs; a single instance is shared by
// every cell of a sweep grid.
type Algorithm interface {
	// Name identifies the instance (registry key for registered instances).
	Name() string
	// Determinism reports whether distinct seeds yield distinct results.
	Determinism() Determinism
	// PaletteBound returns the palette size the algorithm guarantees on g
	// (e.g. Δ²+1), without running it.
	PaletteBound(g *graph.Graph) int
	// Run executes the algorithm on g with the given engine and seed.
	Run(g *graph.Graph, eng Engine, seed uint64) (Result, error)
}

// IsD2Coloring reports whether a's results are proper distance-2 colorings
// of the input graph (the default assumption). Coloring-shaped algorithms
// whose output merely reuses the Coloring representation — MIS membership,
// red/blue splits — opt out via the optional interface
// { D2Coloring() bool }, and verifiers must not apply the distance-2
// conflict check to them.
func IsD2Coloring(a Algorithm) bool {
	if s, ok := a.(interface{ D2Coloring() bool }); ok {
		return s.D2Coloring()
	}
	return true
}

// Func adapts plain closures to the Algorithm interface; it is the glue used
// by the package register files and by inline experiment-specific algorithms.
type Func struct {
	AlgName string
	Class   Determinism
	Palette func(g *graph.Graph) int
	RunFunc func(g *graph.Graph, eng Engine, seed uint64) (Result, error)
	// NotD2 marks coloring-shaped results (MIS membership, splits) that are
	// not distance-2 colorings; see IsD2Coloring.
	NotD2 bool
}

func (f Func) Name() string             { return f.AlgName }
func (f Func) Determinism() Determinism { return f.Class }
func (f Func) D2Coloring() bool         { return !f.NotD2 }

func (f Func) PaletteBound(g *graph.Graph) int {
	if f.Palette == nil {
		return 0
	}
	return f.Palette(g)
}

func (f Func) Run(g *graph.Graph, eng Engine, seed uint64) (Result, error) {
	return f.RunFunc(g, eng, seed)
}

// D2Palette is the Δ²+1 palette bound shared by the exact algorithms.
func D2Palette(g *graph.Graph) int {
	d := g.MaxDegree()
	return d*d + 1
}

var (
	mu       sync.RWMutex
	registry = map[string]Algorithm{}
)

// Register adds a to the registry. It panics on an empty name or a duplicate
// registration: both indicate a wiring bug in a package's init().
func Register(a Algorithm) {
	name := a.Name()
	if name == "" {
		panic("alg: Register with empty name")
	}
	mu.Lock()
	defer mu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("alg: duplicate registration of %q", name))
	}
	registry[name] = a
}

// Get returns the registered algorithm with the given name.
func Get(name string) (Algorithm, bool) {
	mu.RLock()
	defer mu.RUnlock()
	a, ok := registry[name]
	return a, ok
}

// MustGet returns the registered algorithm or panics; for wiring that is
// statically known to be present (the harness specs over the default set).
func MustGet(name string) Algorithm {
	a, ok := Get(name)
	if !ok {
		panic(fmt.Sprintf("alg: %q is not registered (missing import of its package?)", name))
	}
	return a
}

// Names returns the registered algorithm names in sorted order.
func Names() []string {
	mu.RLock()
	defer mu.RUnlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// All returns the registered algorithms in name order.
func All() []Algorithm {
	mu.RLock()
	defer mu.RUnlock()
	out := make([]Algorithm, 0, len(registry))
	for _, a := range registry {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}
