package alg_test

import (
	"testing"

	"d2color/internal/alg"
	"d2color/internal/congest"
	"d2color/internal/detd2"
	"d2color/internal/graph"
	"d2color/internal/polylogd2"
	"d2color/internal/verify"

	// Trigger the remaining self-registrations under test.
	_ "d2color/internal/baseline"
	_ "d2color/internal/mis"
	_ "d2color/internal/randd2"
)

func TestDefaultRegistrations(t *testing.T) {
	for _, name := range []string{
		"rand-improved", "rand-basic", "deterministic", "polylog",
		"greedy", "naive", "relaxed", "mis", "mis-d2",
	} {
		a, ok := alg.Get(name)
		if !ok {
			t.Errorf("%s: not registered", name)
			continue
		}
		if a.Name() != name {
			t.Errorf("%s: Name() = %q", name, a.Name())
		}
	}
	names := alg.Names()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("Names() not sorted: %v", names)
		}
	}
	if len(alg.All()) != len(names) {
		t.Errorf("All() and Names() disagree: %d vs %d", len(alg.All()), len(names))
	}
}

func TestDeterminismClasses(t *testing.T) {
	for name, want := range map[string]alg.Determinism{
		"rand-improved": alg.Randomized,
		"rand-basic":    alg.Randomized,
		"deterministic": alg.Deterministic,
		"polylog":       alg.Deterministic,
		"greedy":        alg.Deterministic,
		"naive":         alg.Randomized,
		"relaxed":       alg.Randomized,
		"mis":           alg.Randomized,
	} {
		if got := alg.MustGet(name).Determinism(); got != want {
			t.Errorf("%s: determinism = %v, want %v", name, got, want)
		}
	}
}

// TestColoringAlgorithmsProduceValidColorings runs every registered coloring
// algorithm through the uniform interface and verifies the result against its
// own palette bound.
func TestColoringAlgorithmsProduceValidColorings(t *testing.T) {
	g := graph.GNPWithAverageDegree(150, 8, 7)
	for _, a := range alg.All() {
		if !alg.IsD2Coloring(a) {
			continue // coloring-shaped (MIS membership), not a d2-coloring
		}
		res, err := a.Run(g, alg.Engine{}, 3)
		if err != nil {
			t.Errorf("%s: %v", a.Name(), err)
			continue
		}
		if res.PaletteSize > a.PaletteBound(g) {
			t.Errorf("%s: palette %d exceeds advertised bound %d", a.Name(), res.PaletteSize, a.PaletteBound(g))
		}
		if rep := verify.CheckD2(g, res.Coloring, res.PaletteSize); !rep.Valid {
			t.Errorf("%s: invalid coloring: %v", a.Name(), rep.Error())
		}
	}
}

func TestDeterministicClassIsSeedInvariant(t *testing.T) {
	g := graph.GNPWithAverageDegree(120, 6, 11)
	for _, a := range alg.All() {
		if a.Determinism() != alg.Deterministic {
			continue
		}
		r1, err1 := a.Run(g, alg.Engine{}, 1)
		r2, err2 := a.Run(g, alg.Engine{}, 999)
		if err1 != nil || err2 != nil {
			t.Errorf("%s: %v / %v", a.Name(), err1, err2)
			continue
		}
		for v := range r1.Coloring {
			if r1.Coloring[v] != r2.Coloring[v] {
				t.Errorf("%s: deterministic class but seed-dependent coloring at node %d", a.Name(), v)
				break
			}
		}
	}
}

// TestSeedDependentOptionsFlipDeterminismClass pins the classification of
// parameterized instances whose options make the output seed-dependent: the
// sweep engine must average those over repetitions, not collapse them to one.
func TestSeedDependentOptionsFlipDeterminismClass(t *testing.T) {
	if got := polylogd2.Algorithm(polylogd2.Options{UseRandomizedSplit: true}).Determinism(); got != alg.Randomized {
		t.Errorf("polylog with randomized splitting classed %v, want randomized", got)
	}
	// Randomized IDs seed Linial's first iteration, so the output is
	// seed-dependent.
	if got := detd2.Algorithm(detd2.Options{IDs: congest.IDSparseRandom}).Determinism(); got != alg.Randomized {
		t.Errorf("deterministic pipeline with randomized IDs classed %v, want randomized", got)
	}
	if got := detd2.Algorithm(detd2.Options{}).Determinism(); got != alg.Deterministic {
		t.Errorf("default deterministic pipeline classed %v, want deterministic", got)
	}
}

func TestMISIsNotAD2Coloring(t *testing.T) {
	if alg.IsD2Coloring(alg.MustGet("mis")) {
		t.Error("mis should opt out of d2 verification")
	}
	if !alg.IsD2Coloring(alg.MustGet("rand-improved")) {
		t.Error("rand-improved is a d2 coloring")
	}
}

func TestRegisterPanics(t *testing.T) {
	mustPanic := func(name string, a alg.Algorithm) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: Register should panic", name)
			}
		}()
		alg.Register(a)
	}
	mustPanic("empty name", alg.Func{AlgName: ""})
	mustPanic("duplicate", alg.Func{AlgName: "greedy"})
}

func TestMustGetPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustGet on an unknown name should panic")
		}
	}()
	alg.MustGet("no-such-algorithm")
}
