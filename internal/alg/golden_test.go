package alg_test

import (
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"testing"

	"d2color/internal/alg"
	"d2color/internal/graph"

	// Blank imports populate the registry with every default instance.
	_ "d2color/internal/baseline"
	_ "d2color/internal/detd2"
	_ "d2color/internal/mis"
	_ "d2color/internal/polylogd2"
	_ "d2color/internal/randd2"
)

var updateGolden = flag.Bool("update", false, "rewrite the palette-kernel golden file")

// goldenRecord pins one run's observable outcome: a hash of the full
// coloring, the palette bound, the distinct-color count and the complete
// Metrics struct. Any representation change that alters a single color or a
// single metric field flips the record.
type goldenRecord struct {
	ColoringHash string `json:"coloringHash"`
	PaletteSize  int    `json:"paletteSize"`
	ColorsUsed   int    `json:"colorsUsed"`
	Metrics      string `json:"metrics"`
}

// goldenFamilies is one representative per generator family the repository
// sweeps over (random sparse, geometric, structured grid, dense blocks,
// high-degree hub, regular).
func goldenFamilies() []struct {
	name string
	g    *graph.Graph
} {
	return []struct {
		name string
		g    *graph.Graph
	}{
		{"gnp", graph.GNPWithAverageDegree(96, 8, 3)},
		{"unitdisk", graph.UnitDisk(90, 0.16, 5)},
		{"grid", graph.Grid(9, 9)},
		{"cliquechain", graph.CliqueChain(4, 5, 0)},
		{"star", graph.Star(24)},
		{"regular", graph.RandomRegular(80, 6, 7)},
	}
}

func hashColoring(c []int) string {
	h := fnv.New64a()
	var buf [8]byte
	for _, col := range c {
		v := uint64(int64(col))
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// TestRegistryMatchesPaletteKernelGolden pins every registered algorithm ×
// generator family × seed to a golden captured before the word-parallel
// palette kernels landed (sorted-prefix / per-neighborhood-map era). The
// bitset kernels are a faster representation of the same color sets, so
// colorings AND Metrics must stay byte-identical; regenerate with -update
// only for a change that intentionally alters algorithm behavior.
func TestRegistryMatchesPaletteKernelGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full registry three times per family")
	}
	seeds := []uint64{1, 7, 42}
	got := map[string]goldenRecord{}
	for _, fam := range goldenFamilies() {
		for _, a := range alg.All() {
			for _, seed := range seeds {
				key := fmt.Sprintf("%s/%s/seed=%d", a.Name(), fam.name, seed)
				res, err := a.Run(fam.g, alg.Engine{}, seed)
				if err != nil {
					t.Fatalf("%s: %v", key, err)
				}
				got[key] = goldenRecord{
					ColoringHash: hashColoring(res.Coloring),
					PaletteSize:  res.PaletteSize,
					ColorsUsed:   res.Coloring.NumColorsUsed(),
					Metrics:      fmt.Sprintf("%+v", res.Metrics),
				}
			}
		}
	}

	path := filepath.Join("testdata", "palette_kernel.golden.json")
	if *updateGolden {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d records to %s", len(got), path)
		return
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update to capture): %v", err)
	}
	want := map[string]goldenRecord{}
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) {
		t.Errorf("golden has %d records, run produced %d (new algorithm registered? regenerate with -update)", len(want), len(got))
	}
	for key, w := range want {
		g, ok := got[key]
		if !ok {
			t.Errorf("%s: missing from this run", key)
			continue
		}
		if g != w {
			t.Errorf("%s diverged from the pre-bitset path:\n got %+v\nwant %+v", key, g, w)
		}
	}
}

// TestRegistryPackedColorsByteIdentical runs the full registry with
// Engine.PackedColors on and off over the golden families × seeds and demands
// identical colors, palettes and Metrics: the bit-packed backing is a
// representation change only. Adapters without a packed path fill Coloring
// either way and pass trivially.
func TestRegistryPackedColorsByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full registry twice per family")
	}
	sawPacked := false
	for _, fam := range goldenFamilies() {
		for _, a := range alg.All() {
			for _, seed := range []uint64{1, 7, 42} {
				key := fmt.Sprintf("%s/%s/seed=%d", a.Name(), fam.name, seed)
				plain, err := a.Run(fam.g, alg.Engine{}, seed)
				if err != nil {
					t.Fatalf("%s: %v", key, err)
				}
				packed, err := a.Run(fam.g, alg.Engine{PackedColors: true}, seed)
				if err != nil {
					t.Fatalf("%s (packed): %v", key, err)
				}
				if plain.PaletteSize != packed.PaletteSize || plain.Metrics != packed.Metrics {
					t.Fatalf("%s: palette/metrics diverge under PackedColors", key)
				}
				if packed.Packed != nil {
					sawPacked = true
				}
				for v := 0; v < fam.g.NumNodes(); v++ {
					id := graph.NodeID(v)
					if plain.ColorAt(id) != packed.ColorAt(id) {
						t.Fatalf("%s: node %d: plain %d, packed %d", key, v, plain.ColorAt(id), packed.ColorAt(id))
					}
				}
			}
		}
	}
	if !sawPacked {
		t.Error("no registered adapter produced a packed coloring; the PackedColors plumbing is dead")
	}
}
