// Package detcolor implements the deterministic coloring pipeline of
// Appendix B of the paper, generically over an arbitrary conflict graph H
// (anything that can enumerate conflict neighborhoods — a materialized
// *graph.Graph or a streaming *graph.Dist2View):
//
//  1. Linial's algorithm (Theorem B.1): from unique identifiers to an
//     O(Δ(H)²)-coloring in O(log* n) iterations;
//  2. the locally-iterative algorithm (Theorem B.4): from an O(Δ(H)²)-coloring
//     to an O(Δ(H))-coloring, by assigning each input color a distinct degree-1
//     polynomial over a prime field and trying its evaluations phase by phase;
//  3. iterative color reduction (Theorem B.2): from an O(Δ(H))-coloring down to
//     exactly Δ(H)+1 colors by repeatedly recoloring local maxima.
//
// The package is used with H = G² (and an appropriate CONGEST cost model) to
// prove Theorem 1.2, and with H = an induced subgraph of G or G² inside the
// polylogarithmic-time algorithms of Section 3.
//
// The three stages are implemented at the granularity of their phases: each
// phase uses only information a node could have gathered from its H-neighbors,
// and the CONGEST round cost of every phase is accounted through a CostModel
// that encodes the paper's cost statements (e.g. one G²-phase of the locally
// iterative algorithm costs two rounds on G, Theorem B.4).
package detcolor

import (
	"errors"
	"fmt"
	"math"

	"d2color/internal/bitset"
	"d2color/internal/coloring"
	"d2color/internal/congest"
	"d2color/internal/graph"
)

// CostModel translates phases of the pipeline into CONGEST rounds on the
// underlying communication graph. The defaults (DefaultCostModelG2, Δ passed
// at construction) follow the accounting in Appendix B.
type CostModel struct {
	// LinialBootstrap is charged once for the first two pipelined Linial
	// iterations (2Δ rounds on G when H = G², Theorem B.1).
	LinialBootstrap int
	// LinialPerIteration is charged for every further Linial iteration (one
	// round each once colors fit in a single message, Theorem B.1).
	LinialPerIteration int
	// TrialPerPhase is charged per locally-iterative phase (two rounds on G,
	// Theorem B.4).
	TrialPerPhase int
	// ReductionSetup is charged once before color reduction (learning all
	// colors in the d2-neighborhood costs Δ rounds, Theorem B.2).
	ReductionSetup int
	// ReductionPerPhase is charged per reduction phase (O(1), Theorem B.2).
	ReductionPerPhase int
}

// DefaultCostModelG2 returns the cost model for running the pipeline on
// H = G² over the communication graph G with maximum degree delta.
func DefaultCostModelG2(delta int) CostModel {
	if delta < 1 {
		delta = 1
	}
	return CostModel{
		LinialBootstrap:    2 * delta,
		LinialPerIteration: 1,
		TrialPerPhase:      2,
		ReductionSetup:     delta,
		ReductionPerPhase:  1,
	}
}

// DefaultCostModelG returns the cost model for running the pipeline directly
// on the communication graph itself (H = G).
func DefaultCostModelG() CostModel {
	return CostModel{
		LinialBootstrap:    2,
		LinialPerIteration: 1,
		TrialPerPhase:      2,
		ReductionSetup:     1,
		ReductionPerPhase:  1,
	}
}

// Scale returns the cost model with every charge multiplied by factor. It is
// used by Lemma 3.5: running an algorithm on an induced subgraph Hᵢ of G²
// costs a multiplicative Δ_h overhead.
func (c CostModel) Scale(factor int) CostModel {
	if factor < 1 {
		factor = 1
	}
	return CostModel{
		LinialBootstrap:    c.LinialBootstrap * factor,
		LinialPerIteration: c.LinialPerIteration * factor,
		TrialPerPhase:      c.TrialPerPhase * factor,
		ReductionSetup:     c.ReductionSetup * factor,
		ReductionPerPhase:  c.ReductionPerPhase * factor,
	}
}

// ConflictGraph is the read-only view of the conflict graph H the pipeline
// needs. *graph.Graph satisfies it directly; *graph.Dist2View satisfies it by
// streaming distance-2 neighborhoods of the communication graph, so running
// the pipeline on H = G² no longer materializes the square.
//
// Neighbors may return a slice that is reused (invalidated) by the next
// Neighbors call on the same value; the pipeline only ever inspects one
// neighborhood at a time.
type ConflictGraph interface {
	NumNodes() int
	MaxDegree() int
	Neighbors(v graph.NodeID) []graph.NodeID
}

// Result reports the outcome of the pipeline together with the intermediate
// palette sizes (useful for experiment E6).
type Result struct {
	Coloring        coloring.Coloring
	PaletteSize     int // final palette: Δ(H)+1
	LinialColors    int // palette size after the Linial stage
	IterativeColors int // palette size (the prime q) after the locally-iterative stage
	LinialRounds    int
	IterativeRounds int
	ReductionRounds int
	Metrics         congest.Metrics
}

// Errors returned by the pipeline.
var (
	ErrIDsNotDistinct = errors.New("detcolor: initial identifiers must be distinct")
	ErrIncomplete     = errors.New("detcolor: internal error, stage left nodes uncolored")
)

// Color deterministically computes a (Δ(H)+1)-coloring of h. ids provides the
// initial distinct identifiers (the model's O(log n)-bit IDs); if nil, node
// indices are used. The cost model translates phases into charged rounds.
func Color(h ConflictGraph, ids []int, cost CostModel) (Result, error) {
	n := h.NumNodes()
	res := Result{}
	if n == 0 {
		res.Coloring = coloring.New(0)
		res.PaletteSize = 1
		return res, nil
	}
	if ids == nil {
		ids = make([]int, n)
		for i := range ids {
			ids[i] = i
		}
	}
	if len(ids) != n {
		return res, fmt.Errorf("detcolor: got %d ids for %d nodes", len(ids), n)
	}
	seen := make(map[int]bool, n)
	maxID := 0
	for _, id := range ids {
		if id < 0 {
			return res, fmt.Errorf("%w: negative id %d", ErrIDsNotDistinct, id)
		}
		if seen[id] {
			return res, fmt.Errorf("%w: id %d repeated", ErrIDsNotDistinct, id)
		}
		seen[id] = true
		if id > maxID {
			maxID = id
		}
	}

	d := h.MaxDegree()
	if d == 0 {
		// No conflicts at all: color 0 everywhere, one palette entry.
		c := coloring.New(n)
		for v := range c {
			c[v] = 0
		}
		res.Coloring = c
		res.PaletteSize = 1
		res.LinialColors = 1
		res.IterativeColors = 1
		return res, nil
	}

	// Stage 1: Linial.
	linialColoring, linialPalette, linialIters, err := linial(h, ids, maxID+1)
	if err != nil {
		return res, err
	}
	res.LinialColors = linialPalette
	res.LinialRounds = cost.LinialBootstrap
	if linialIters > 2 {
		res.LinialRounds += (linialIters - 2) * cost.LinialPerIteration
	}

	// Stage 2: locally-iterative reduction to O(Δ(H)) colors.
	iterColoring, q, phases, err := locallyIterative(h, linialColoring, linialPalette)
	if err != nil {
		return res, err
	}
	res.IterativeColors = q
	res.IterativeRounds = phases * cost.TrialPerPhase

	// Stage 3: color reduction to Δ(H)+1 colors.
	final, redPhases, err := reduceColors(h, iterColoring, d+1)
	if err != nil {
		return res, err
	}
	res.ReductionRounds = cost.ReductionSetup + redPhases*cost.ReductionPerPhase

	res.Coloring = final
	res.PaletteSize = d + 1
	res.Metrics = congest.Metrics{ChargedRounds: res.LinialRounds + res.IterativeRounds + res.ReductionRounds}
	return res, nil
}

// linial iterates Linial's polynomial-based color reduction starting from the
// given distinct identifiers (treated as a proper m-coloring, m = idSpace)
// until the palette stops shrinking. It returns the coloring, the final
// palette size and the number of iterations performed.
//
// One iteration with polynomials of degree deg over F_q maps a proper
// m-coloring to a proper q²-coloring provided q^(deg+1) >= m (so distinct
// colors get distinct polynomials) and q > deg·Δ(H) (so each node finds an
// evaluation point avoiding all neighbors).
func linial(h ConflictGraph, ids []int, idSpace int) (coloring.Coloring, int, int, error) {
	n := h.NumNodes()
	d := h.MaxDegree()
	cur := make(coloring.Coloring, n)
	for v := range cur {
		cur[v] = ids[v]
	}
	palette := idSpace
	iterations := 0
	for {
		deg, q := linialParams(palette, d)
		newPalette := q * q
		if newPalette >= palette {
			break
		}
		next := make(coloring.Coloring, n)
		for v := 0; v < n; v++ {
			coeffs := digitsBaseQ(cur[v], q, deg+1)
			point := -1
			// One neighborhood fetch per node, reused across evaluation
			// points (a streaming ConflictGraph may reuse the slice on the
			// NEXT Neighbors call, so no other fetch may intervene).
			nbrs := h.Neighbors(graph.NodeID(v))
			for i := 0; i < q && point < 0; i++ {
				ok := true
				fv := evalPoly(coeffs, i, q)
				for _, u := range nbrs {
					cu := digitsBaseQ(cur[u], q, deg+1)
					if evalPoly(cu, i, q) == fv {
						ok = false
						break
					}
				}
				if ok {
					point = i
				}
			}
			if point < 0 {
				// Cannot happen when q > deg·Δ(H); a failure here indicates a
				// parameter-selection bug, so surface it.
				return nil, 0, 0, fmt.Errorf("detcolor: linial found no evaluation point for node %d (q=%d deg=%d)", v, q, deg)
			}
			next[v] = point*q + evalPoly(coeffs, point, q)
		}
		cur = next
		palette = newPalette
		iterations++
		if iterations > 64 {
			break // defensive: log* n is tiny; this can only trip on a bug
		}
	}
	return cur, palette, iterations, nil
}

// linialParams picks the smallest polynomial degree deg >= 1 and prime q with
// q > deg·d and q^(deg+1) >= m minimizing the resulting palette q².
func linialParams(m, d int) (deg, q int) {
	bestDeg, bestQ := 1, 0
	for cand := 1; cand <= 8; cand++ {
		// Smallest q satisfying both constraints for this degree.
		minQ := cand*d + 1
		root := int(math.Ceil(math.Pow(float64(m), 1/float64(cand+1))))
		if root > minQ {
			minQ = root
		}
		p := nextPrime(minQ)
		// Guard against floating point undershoot of the root.
		for pow(p, cand+1) < m {
			p = nextPrime(p + 1)
		}
		if bestQ == 0 || p*p < bestQ*bestQ {
			bestDeg, bestQ = cand, p
		}
	}
	return bestDeg, bestQ
}

// locallyIterative implements Theorem B.4 generically: given a proper
// coloring of h with inputPalette colors, it produces a proper coloring with
// q = O(Δ(h)) colors in q phases, where q is a prime with q > 2Δ(h) and
// q² >= inputPalette.
func locallyIterative(h ConflictGraph, input coloring.Coloring, inputPalette int) (coloring.Coloring, int, int, error) {
	n := h.NumNodes()
	d := h.MaxDegree()
	minQ := 2*d + 2
	if r := int(math.Ceil(math.Sqrt(float64(inputPalette)))); r > minQ {
		minQ = r
	}
	q := nextPrime(minQ)
	for q*q < inputPalette {
		q = nextPrime(q + 1)
	}

	// Each node's color sequence is the evaluation of the degree-<=1
	// polynomial p_v(x) = a_v + b_v·x with a_v = ψ(v) / q, b_v = ψ(v) mod q.
	as := make([]int, n)
	bs := make([]int, n)
	for v := 0; v < n; v++ {
		if input[v] < 0 || input[v] >= q*q {
			return nil, 0, 0, fmt.Errorf("detcolor: input color %d of node %d outside [0,%d)", input[v], v, q*q)
		}
		as[v] = input[v] / q
		bs[v] = input[v] % q
	}

	out := coloring.New(n)
	phasesUsed := 0
	remaining := n
	// Phase scratch, hoisted out of the loop: the snapshot semantics only
	// need the buffers rewritten, not reallocated, each phase.
	tries := make([]int, n)
	adopt := make([]bool, n)
	for i := 0; i < q && remaining > 0; i++ {
		phasesUsed++
		// Every uncolored node tries p_v(i); a try succeeds iff no H-neighbor
		// already has that color and no uncolored H-neighbor tries it too
		// (simultaneous identical tries both fail, as in the paper). Adoption
		// decisions are evaluated against the snapshot at the start of the
		// phase and applied afterwards.
		for v := 0; v < n; v++ {
			tries[v] = -1
			if out[v] == coloring.Uncolored {
				tries[v] = (as[v] + bs[v]*i) % q
			}
		}
		for v := 0; v < n; v++ {
			adopt[v] = false
			if tries[v] < 0 {
				continue
			}
			blocked := false
			for _, u := range h.Neighbors(graph.NodeID(v)) {
				if out[u] == tries[v] || (out[u] == coloring.Uncolored && tries[u] == tries[v]) {
					blocked = true
					break
				}
			}
			adopt[v] = !blocked
		}
		for v := 0; v < n; v++ {
			if adopt[v] {
				out[v] = tries[v]
				remaining--
			}
		}
	}
	if remaining > 0 {
		return nil, 0, 0, fmt.Errorf("%w: %d nodes left after %d locally-iterative phases", ErrIncomplete, remaining, phasesUsed)
	}
	return out, q, phasesUsed, nil
}

// reduceColors implements Theorem B.2 generically: given a proper coloring of
// h, it reduces the palette to target colors (target must be at least
// Δ(h)+1). In every phase, each node whose color is >= target and is the
// strict maximum among its H-neighborhood recolors itself with a free color
// below target; the global maximum color strictly decreases every phase.
func reduceColors(h ConflictGraph, input coloring.Coloring, target int) (coloring.Coloring, int, error) {
	n := h.NumNodes()
	if target < h.MaxDegree()+1 {
		return nil, 0, fmt.Errorf("detcolor: reduction target %d below Δ+1 = %d", target, h.MaxDegree()+1)
	}
	out := input.Clone()
	phases := 0
	maxPhases := out.MaxColor() - target + 2
	if maxPhases < 1 {
		maxPhases = 1
	}
	// used is the palette bitset behind every free-color pick, shared across
	// phases; the pick itself is a FirstZero word scan.
	used := bitset.NewFixed(target)
	var recolor []int
	for ; phases < maxPhases; phases++ {
		recolor = recolor[:0]
		for v := 0; v < n; v++ {
			if out[v] < target {
				continue
			}
			isMax := true
			for _, u := range h.Neighbors(graph.NodeID(v)) {
				if out[u] > out[v] {
					isMax = false
					break
				}
			}
			if isMax {
				recolor = append(recolor, v)
			}
		}
		if len(recolor) == 0 {
			break
		}
		for _, v := range recolor {
			used.ClearAll()
			for _, u := range h.Neighbors(graph.NodeID(v)) {
				if out[u] >= 0 && out[u] < target {
					used.Set(out[u])
				}
			}
			newColor := used.FirstZero()
			if newColor < 0 {
				return nil, phases, fmt.Errorf("%w: no free color below %d for node %d", ErrIncomplete, target, v)
			}
			out[v] = newColor
		}
	}
	// Final sanity: everything below target.
	for v := 0; v < n; v++ {
		if out[v] >= target || out[v] < 0 {
			return nil, phases, fmt.Errorf("%w: node %d still has color %d (target %d)", ErrIncomplete, v, out[v], target)
		}
	}
	return out, phases, nil
}

// digitsBaseQ returns the count least-significant base-q digits of x.
func digitsBaseQ(x, q, count int) []int {
	out := make([]int, count)
	for i := 0; i < count; i++ {
		out[i] = x % q
		x /= q
	}
	return out
}

// evalPoly evaluates the polynomial with the given coefficients (constant
// term first) at point x over F_q.
func evalPoly(coeffs []int, x, q int) int {
	acc := 0
	for i := len(coeffs) - 1; i >= 0; i-- {
		acc = (acc*x + coeffs[i]) % q
	}
	return acc
}

// pow returns base^exp for small non-negative exponents, saturating at
// math.MaxInt64 / 2 to avoid overflow in comparisons.
func pow(base, exp int) int {
	result := 1
	for i := 0; i < exp; i++ {
		if result > math.MaxInt64/2/base {
			return math.MaxInt64 / 2
		}
		result *= base
	}
	return result
}

// nextPrime returns the smallest prime >= x (and at least 2).
func nextPrime(x int) int {
	if x <= 2 {
		return 2
	}
	for p := x; ; p++ {
		if isPrime(p) {
			return p
		}
	}
}

func isPrime(p int) bool {
	if p < 2 {
		return false
	}
	if p%2 == 0 {
		return p == 2
	}
	for f := 3; f*f <= p; f += 2 {
		if p%f == 0 {
			return false
		}
	}
	return true
}
