package detcolor

import (
	"errors"
	"testing"
	"testing/quick"

	"d2color/internal/graph"
	"d2color/internal/verify"
)

func TestColorProducesDeltaPlusOneColoring(t *testing.T) {
	cases := map[string]*graph.Graph{
		"path":   graph.Path(30),
		"cycle":  graph.Cycle(31),
		"grid":   graph.Grid(8, 9),
		"gnp":    graph.GNP(80, 0.06, 1),
		"star":   graph.Star(12),
		"clique": graph.Complete(9),
		"tree":   graph.BalancedTree(3, 3),
	}
	for name, g := range cases {
		res, err := Color(g, nil, DefaultCostModelG())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.PaletteSize != g.MaxDegree()+1 {
			t.Errorf("%s: palette %d, want Δ+1 = %d", name, res.PaletteSize, g.MaxDegree()+1)
		}
		if rep := verify.CheckD1(g, res.Coloring, res.PaletteSize); !rep.Valid {
			t.Errorf("%s: invalid coloring: %v", name, rep.Error())
		}
		if res.Metrics.TotalRounds() == 0 && g.MaxDegree() > 0 {
			t.Errorf("%s: expected a positive round charge", name)
		}
	}
}

func TestColorOnSquareGraphGivesD2Coloring(t *testing.T) {
	// Theorem 1.2's core: run the pipeline on H = G².
	g := graph.GNP(60, 0.06, 2)
	sq := g.Square()
	res, err := Color(sq, nil, DefaultCostModelG2(g.MaxDegree()))
	if err != nil {
		t.Fatal(err)
	}
	if rep := verify.CheckD2(g, res.Coloring, res.PaletteSize); !rep.Valid {
		t.Errorf("invalid d2-coloring: %v", rep.Error())
	}
	if res.PaletteSize > g.MaxDegree()*g.MaxDegree()+1 {
		t.Errorf("palette %d exceeds Δ²+1 = %d", res.PaletteSize, g.MaxDegree()*g.MaxDegree()+1)
	}
}

func TestIntermediatePalettes(t *testing.T) {
	g := graph.GNP(100, 0.05, 3)
	res, err := Color(g, nil, DefaultCostModelG())
	if err != nil {
		t.Fatal(err)
	}
	d := g.MaxDegree()
	// Linial's stage ends with O(Δ²) colors; our construction guarantees at
	// most (2Δ+O(Δ/ log Δ))² which we bound loosely by 36·Δ²+64 for the test.
	if res.LinialColors > 36*d*d+64 {
		t.Errorf("Linial palette %d too large for Δ=%d", res.LinialColors, d)
	}
	// Locally-iterative stage ends with a prime q = O(Δ): bounded by 8Δ+64.
	if res.IterativeColors > 8*d+64 {
		t.Errorf("iterative palette %d too large for Δ=%d", res.IterativeColors, d)
	}
	if res.LinialRounds <= 0 || res.IterativeRounds <= 0 || res.ReductionRounds <= 0 {
		t.Errorf("stage rounds should be positive: %d %d %d",
			res.LinialRounds, res.IterativeRounds, res.ReductionRounds)
	}
}

func TestColorWithExplicitSparseIDs(t *testing.T) {
	g := graph.Cycle(20)
	ids := make([]int, 20)
	for i := range ids {
		ids[i] = i*i*7 + 13 // sparse, distinct, non-contiguous
	}
	res, err := Color(g, ids, DefaultCostModelG())
	if err != nil {
		t.Fatal(err)
	}
	if rep := verify.CheckD1(g, res.Coloring, res.PaletteSize); !rep.Valid {
		t.Errorf("invalid coloring: %v", rep.Error())
	}
}

func TestColorRejectsBadIDs(t *testing.T) {
	g := graph.Path(4)
	if _, err := Color(g, []int{1, 2, 2, 3}, DefaultCostModelG()); !errors.Is(err, ErrIDsNotDistinct) {
		t.Errorf("duplicate ids: err = %v, want ErrIDsNotDistinct", err)
	}
	if _, err := Color(g, []int{1, -2, 3, 4}, DefaultCostModelG()); !errors.Is(err, ErrIDsNotDistinct) {
		t.Errorf("negative id: err = %v, want ErrIDsNotDistinct", err)
	}
	if _, err := Color(g, []int{1, 2}, DefaultCostModelG()); err == nil {
		t.Error("wrong id count should error")
	}
}

func TestColorDegenerateGraphs(t *testing.T) {
	empty, err := Color(graph.NewBuilder(0).Build(), nil, DefaultCostModelG())
	if err != nil {
		t.Fatal(err)
	}
	if len(empty.Coloring) != 0 {
		t.Error("empty graph should produce empty coloring")
	}
	// Edgeless graph: everything gets color 0.
	iso, err := Color(graph.NewBuilder(5).Build(), nil, DefaultCostModelG())
	if err != nil {
		t.Fatal(err)
	}
	if iso.PaletteSize != 1 {
		t.Errorf("edgeless graph palette = %d, want 1", iso.PaletteSize)
	}
	for v, c := range iso.Coloring {
		if c != 0 {
			t.Errorf("node %d color %d, want 0", v, c)
		}
	}
}

func TestCostModels(t *testing.T) {
	m := DefaultCostModelG2(5)
	if m.LinialBootstrap != 10 || m.ReductionSetup != 5 {
		t.Errorf("G² cost model for Δ=5: %+v", m)
	}
	if dm := DefaultCostModelG2(0); dm.LinialBootstrap != 2 {
		t.Errorf("degenerate Δ should clamp to 1: %+v", dm)
	}
	s := DefaultCostModelG().Scale(3)
	if s.TrialPerPhase != 6 || s.LinialBootstrap != 6 {
		t.Errorf("scaled cost model: %+v", s)
	}
	if s2 := DefaultCostModelG().Scale(0); s2.TrialPerPhase != DefaultCostModelG().TrialPerPhase {
		t.Error("scale factor < 1 should clamp to 1")
	}
}

func TestDeterministic(t *testing.T) {
	g := graph.GNP(50, 0.08, 7)
	a, err := Color(g, nil, DefaultCostModelG())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Color(g, nil, DefaultCostModelG())
	if err != nil {
		t.Fatal(err)
	}
	for v := range a.Coloring {
		if a.Coloring[v] != b.Coloring[v] {
			t.Fatal("deterministic algorithm produced different colorings")
		}
	}
}

func TestPropertyAlwaysValidAndWithinPalette(t *testing.T) {
	f := func(seed int64) bool {
		g := graph.GNP(40, 0.12, seed)
		res, err := Color(g, nil, DefaultCostModelG())
		if err != nil {
			return false
		}
		if !verify.CheckD1(g, res.Coloring, res.PaletteSize).Valid {
			return false
		}
		return res.Coloring.MaxColor() < g.MaxDegree()+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestPrimeHelpers(t *testing.T) {
	primes := []int{2, 3, 5, 7, 11, 13}
	for _, p := range primes {
		if !isPrime(p) {
			t.Errorf("isPrime(%d) = false", p)
		}
	}
	for _, np := range []int{0, 1, 4, 9, 15, 21, 25} {
		if isPrime(np) {
			t.Errorf("isPrime(%d) = true", np)
		}
	}
	if nextPrime(14) != 17 || nextPrime(17) != 17 || nextPrime(-5) != 2 {
		t.Error("nextPrime gave wrong answers")
	}
	if pow(3, 4) != 81 || pow(2, 0) != 1 {
		t.Error("pow gave wrong answers")
	}
	if pow(1<<31, 4) <= 0 {
		t.Error("pow should saturate, not overflow to non-positive")
	}
}

func TestPolynomialHelpers(t *testing.T) {
	digits := digitsBaseQ(23, 5, 3) // 23 = 3 + 4*5
	if digits[0] != 3 || digits[1] != 4 || digits[2] != 0 {
		t.Errorf("digitsBaseQ(23,5,3) = %v", digits)
	}
	// p(x) = 3 + 4x over F_5 at x=2: 3+8 = 11 mod 5 = 1.
	if got := evalPoly([]int{3, 4}, 2, 5); got != 1 {
		t.Errorf("evalPoly = %d, want 1", got)
	}
}

func TestLinialParamsConstraints(t *testing.T) {
	f := func(mRaw, dRaw uint16) bool {
		m := int(mRaw%5000) + 2
		d := int(dRaw%50) + 1
		deg, q := linialParams(m, d)
		if q <= deg*d {
			return false
		}
		return pow(q, deg+1) >= m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestReduceColorsRejectsImpossibleTarget(t *testing.T) {
	g := graph.Complete(5)
	res, err := Color(g, nil, DefaultCostModelG())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := reduceColors(g, res.Coloring, g.MaxDegree()); err == nil {
		t.Error("target below Δ+1 should be rejected")
	}
}
