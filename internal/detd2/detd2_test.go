package detd2

import (
	"testing"
	"testing/quick"

	"d2color/internal/congest"
	"d2color/internal/graph"
	"d2color/internal/verify"
)

func TestRunOnVariousGraphs(t *testing.T) {
	cases := map[string]*graph.Graph{
		"gnp":   graph.GNP(70, 0.05, 1),
		"grid":  graph.Grid(8, 8),
		"star":  graph.Star(14),
		"chain": graph.CliqueChain(4, 5, 0),
		"tree":  graph.BalancedTree(2, 4),
		"path":  graph.Path(25),
	}
	for name, g := range cases {
		res, err := Run(g, Options{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		delta := g.MaxDegree()
		if res.PaletteSize > delta*delta+1 {
			t.Errorf("%s: palette %d exceeds Δ²+1 = %d", name, res.PaletteSize, delta*delta+1)
		}
		if rep := verify.CheckD2(g, res.Coloring, res.PaletteSize); !rep.Valid {
			t.Errorf("%s: %v", name, rep.Error())
		}
	}
}

func TestRunEmptyGraph(t *testing.T) {
	res, err := Run(graph.NewBuilder(0).Build(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Coloring) != 0 {
		t.Error("empty graph should give empty coloring")
	}
}

func TestRoundsScaleRoughlyWithDeltaSquared(t *testing.T) {
	// Theorem 1.2: O(Δ² + log* n) rounds. With n fixed, quadrupling Δ should
	// increase the round count by far more than a constant.
	n := 400
	small := graph.RandomRegular(n, 4, 1)
	large := graph.RandomRegular(n, 16, 1)
	rs, err := Run(small, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rl, err := Run(large, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rl.Metrics.TotalRounds() <= rs.Metrics.TotalRounds() {
		t.Errorf("rounds should grow with Δ: Δ=4 → %d, Δ=16 → %d",
			rs.Metrics.TotalRounds(), rl.Metrics.TotalRounds())
	}
	// Loose quantitative check on the shape: the ratio should exceed the
	// linear ratio 4 (it is dominated by the Δ² term).
	ratio := float64(rl.Metrics.TotalRounds()) / float64(rs.Metrics.TotalRounds())
	if ratio < 3 {
		t.Errorf("round ratio %.1f suspiciously small for a Δ² algorithm", ratio)
	}
}

func TestIDAssignmentsProduceValidColorings(t *testing.T) {
	g := graph.GNP(50, 0.07, 2)
	for _, ids := range []congest.IDAssignment{congest.IDSequential, congest.IDRandomPermutation, congest.IDSparseRandom} {
		res, err := Run(g, Options{IDs: ids, Seed: 3})
		if err != nil {
			t.Fatalf("ids=%d: %v", ids, err)
		}
		if rep := verify.CheckD2(g, res.Coloring, res.PaletteSize); !rep.Valid {
			t.Errorf("ids=%d: %v", ids, rep.Error())
		}
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	g := graph.Grid(6, 7)
	a, err := Run(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for v := range a.Coloring {
		if a.Coloring[v] != b.Coloring[v] {
			t.Fatal("deterministic algorithm produced different colorings")
		}
	}
	if a.Metrics.TotalRounds() != b.Metrics.TotalRounds() {
		t.Error("round counts should be identical across runs")
	}
}

func TestStagesReported(t *testing.T) {
	g := graph.GNP(60, 0.06, 9)
	res, err := Run(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stages.LinialColors == 0 || res.Stages.IterativeColors == 0 {
		t.Error("intermediate palette sizes should be reported")
	}
	sum := res.Stages.LinialRounds + res.Stages.IterativeRounds + res.Stages.ReductionRounds
	if sum != res.Metrics.TotalRounds() {
		t.Errorf("stage rounds %d do not sum to total %d", sum, res.Metrics.TotalRounds())
	}
}

func TestPropertyValidOnRandomGraphs(t *testing.T) {
	f := func(seed int64) bool {
		g := graph.GNP(40, 0.1, seed)
		res, err := Run(g, Options{SkipVerify: true})
		if err != nil {
			return false
		}
		return verify.CheckD2(g, res.Coloring, g.MaxDegree()*g.MaxDegree()+1).Valid
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}
