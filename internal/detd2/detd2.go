// Package detd2 implements Theorem 1.2 of the paper: a deterministic CONGEST
// algorithm that distance-2 colors a graph with Δ²+1 colors in
// O(Δ² + log* n) rounds.
//
// The algorithm is the Appendix-B pipeline (Linial → locally-iterative →
// color reduction) executed on the conflict graph H = G², with the CONGEST
// cost model of Appendix B: the first two Linial iterations are pipelined in
// O(Δ) rounds, each further iteration fits in one message, each
// locally-iterative phase costs two rounds on G, and the color reduction
// costs O(Δ) setup plus O(1) rounds per phase. See internal/detcolor for the
// stage implementations.
package detd2

import (
	"fmt"

	"d2color/internal/coloring"
	"d2color/internal/congest"
	"d2color/internal/detcolor"
	"d2color/internal/graph"
	"d2color/internal/verify"
)

// Result is the outcome of a deterministic d2-coloring run.
type Result struct {
	Coloring    coloring.Coloring
	PaletteSize int // Δ(G²)+1 ≤ Δ²+1
	Metrics     congest.Metrics
	Stages      detcolor.Result // intermediate palettes and per-stage rounds
}

// Options configures the run.
type Options struct {
	// IDs selects how the model's unique identifiers are assigned (they seed
	// Linial's first iteration). Zero value means sequential IDs.
	IDs congest.IDAssignment
	// Seed is used only for the ID assignment when IDs is randomized.
	Seed uint64
	// Parallel selects the sharded-parallel simulator engine. The
	// deterministic pipeline charges its rounds rather than simulating them
	// message-by-message, so this only affects the engine construction, but
	// it keeps the option surface uniform across the algorithm layers.
	Parallel bool
	// Workers bounds the sharded engine's goroutine pool; 0 means GOMAXPROCS.
	Workers int
	// SkipVerify disables the internal validity check (used by benchmarks
	// that verify separately).
	SkipVerify bool
}

// Run executes the deterministic algorithm of Theorem 1.2 on g.
func Run(g *graph.Graph, opts Options) (Result, error) {
	n := g.NumNodes()
	if n == 0 {
		return Result{Coloring: coloring.New(0), PaletteSize: 1}, nil
	}

	// The simulator owns ID assignment; Linial consumes the IDs as its
	// initial coloring. IDSparseRandom produces IDs from a space of size n³,
	// exactly the O(log n)-bit assumption.
	net := congest.New(g, congest.Config{Seed: opts.Seed, IDs: opts.IDs, Parallel: opts.Parallel, Workers: opts.Workers})
	defer net.Close()
	ids := make([]int, n)
	for v := 0; v < n; v++ {
		ids[v] = int(net.ID(graph.NodeID(v)))
	}

	// The conflict graph H = G² is streamed, never materialized: the pipeline
	// pulls distance-2 neighborhoods straight from the CSR arrays of g.
	stages, err := detcolor.Color(graph.NewDist2View(g), ids, detcolor.DefaultCostModelG2(g.MaxDegree()))
	if err != nil {
		return Result{}, fmt.Errorf("detd2: %w", err)
	}

	res := Result{
		Coloring:    stages.Coloring,
		PaletteSize: stages.PaletteSize,
		Metrics:     stages.Metrics,
		Stages:      stages,
	}
	if !opts.SkipVerify {
		if rep := verify.CheckD2(g, res.Coloring, res.PaletteSize); !rep.Valid {
			return Result{}, fmt.Errorf("detd2: produced invalid coloring: %w", rep.Error())
		}
	}
	return res, nil
}
