package detd2

import (
	"d2color/internal/alg"
	"d2color/internal/congest"
	"d2color/internal/graph"
)

// Algorithm wraps the deterministic Theorem-1.2 pipeline in the unified
// alg.Algorithm interface. With the default sequential IDs the run is
// seed-invariant and classed Deterministic (the sweep engine runs it once
// per cell); randomized ID assignments seed Linial's first iteration, making
// the output seed-dependent, so those instances are classed Randomized.
func Algorithm(opts Options) alg.Algorithm {
	class := alg.Deterministic
	if opts.IDs != congest.IDSequential && opts.IDs != 0 {
		class = alg.Randomized
	}
	return alg.Func{
		AlgName: "deterministic",
		Class:   class,
		Palette: alg.D2Palette,
		RunFunc: func(g *graph.Graph, eng alg.Engine, seed uint64) (alg.Result, error) {
			o := opts
			o.Seed = seed
			o.Parallel = eng.Parallel
			o.Workers = eng.Workers
			r, err := Run(g, o)
			if err != nil {
				return alg.Result{}, err
			}
			return alg.Result{Coloring: r.Coloring, PaletteSize: r.PaletteSize, Metrics: r.Metrics, Details: &r}, nil
		},
	}
}

func init() { alg.Register(Algorithm(Options{})) }
