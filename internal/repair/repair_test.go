package repair

import (
	"fmt"
	"os"
	"slices"
	"testing"
	"time"

	"d2color/internal/baseline"
	"d2color/internal/coloring"
	"d2color/internal/fault"
	"d2color/internal/graph"
	"d2color/internal/verify"
)

// greedyD2 builds a valid complete distance-2 coloring as the pre-churn
// fixture.
func greedyD2(g *graph.Graph) coloring.Coloring {
	view := graph.NewDist2View(g)
	c := coloring.New(g.NumNodes())
	used := make(map[int]bool)
	for v := 0; v < g.NumNodes(); v++ {
		clear(used)
		view.ForEachDist2(graph.NodeID(v), func(w graph.NodeID) bool {
			if c[w] != coloring.Uncolored {
				used[c[w]] = true
			}
			return true
		})
		col := 0
		for used[col] {
			col++
		}
		c[v] = col
	}
	return c
}

func requireValidComplete(t *testing.T, g *graph.Graph, c coloring.Coloring) {
	t.Helper()
	if rep := verify.CheckD2(g, c, 0); !rep.Valid {
		t.Fatalf("coloring invalid after repair: %v", rep.Error())
	}
	for v, col := range c {
		if col == coloring.Uncolored {
			t.Fatalf("node %d left uncolored", v)
		}
	}
}

func testFamilies() []struct {
	name string
	g    *graph.Graph
} {
	return []struct {
		name string
		g    *graph.Graph
	}{
		{"gnp", graph.GNPWithAverageDegree(300, 6, 3)},
		{"unitdisk", graph.UnitDisk(200, 0.12, 5)},
		{"grid", graph.Grid(15, 16)},
		{"star", graph.Star(40)},
	}
}

// TestRepairCorruption: corrupt k colors, repair, and check the repaired
// coloring is valid and complete, only dirty nodes were touched, and the
// reports are internally consistent — for both confinement modes and all
// three corruption targets.
func TestRepairCorruption(t *testing.T) {
	for _, fam := range testFamilies() {
		clean := greedyD2(fam.g)
		for _, mode := range []Mode{ModeLocal, ModeGlobal} {
			for _, target := range []fault.Target{fault.TargetUniform, fault.TargetHighDegree, fault.TargetConflictDense} {
				t.Run(fmt.Sprintf("%s/%s/%s", fam.name, mode, target), func(t *testing.T) {
					corrupt := slices.Clone(clean)
					victims := fault.NewInjector(31).CorruptColors(fam.g, corrupt, 8, target, 0)
					s := NewSession(fam.g, corrupt, Options{Mode: mode})
					defer s.Close()
					rep, err := s.Repair(victims, 7)
					if err != nil {
						t.Fatal(err)
					}
					if !rep.Complete {
						t.Fatal("repair reported incomplete without faults or phase caps")
					}
					requireValidComplete(t, fam.g, s.Colors())
					if rep.Dirty != len(victims) {
						t.Fatalf("Dirty = %d, want %d", rep.Dirty, len(victims))
					}
					for _, v := range rep.Recolored {
						if _, ok := slices.BinarySearch(victims, v); !ok {
							t.Fatalf("non-dirty node %d was recolored", v)
						}
					}
					for v := 0; v < fam.g.NumNodes(); v++ {
						if _, dirty := slices.BinarySearch(victims, graph.NodeID(v)); !dirty && s.Colors()[v] != clean[v] {
							t.Fatalf("fixed node %d changed color %d -> %d", v, clean[v], s.Colors()[v])
						}
					}
					if rep.Locality < 0 || rep.Locality > 1 {
						t.Fatalf("locality %f outside [0,1] for a dirty-only repair", rep.Locality)
					}
					if rep.Rounds != 3*rep.Phases {
						t.Fatalf("Rounds = %d, want 3·Phases = %d", rep.Rounds, 3*rep.Phases)
					}
				})
			}
		}
	}
}

// TestRepairWarmVsFresh is the property-suite core: a warm session repairing
// epoch after epoch on one kernel produces byte-identical colorings and
// recolored sets to a session built from scratch for each epoch's snapshot.
// This is exactly the Engine.Reset reuse contract surfaced at the repair
// level.
func TestRepairWarmVsFresh(t *testing.T) {
	for _, fam := range testFamilies() {
		for _, mode := range []Mode{ModeLocal, ModeGlobal} {
			t.Run(fmt.Sprintf("%s/%s", fam.name, mode), func(t *testing.T) {
				colors := greedyD2(fam.g)
				warm := NewSession(fam.g, colors, Options{Mode: mode})
				defer warm.Close()
				in := fault.NewInjector(99)
				for epoch := 0; epoch < 4; epoch++ {
					// Corrupt the warm session's current coloring, snapshot
					// it, and repair the same snapshot warm and fresh.
					working := slices.Clone(warm.Colors())
					victims := in.CorruptColors(fam.g, working, 6, fault.TargetUniform, 0)
					seed := uint64(100 + epoch)

					fresh := NewSession(fam.g, working, Options{Mode: mode})
					freshRep, err := fresh.Repair(victims, seed)
					if err != nil {
						t.Fatal(err)
					}

					// Rebind drops the global kernel, so this loop checks
					// scratch reuse across epochs; the no-Rebind warm-kernel
					// path is pinned by TestRepairWarmKernelReuse below.
					warm.Rebind(fam.g, working)
					warmRep, err := warm.Repair(victims, seed)
					if err != nil {
						t.Fatal(err)
					}
					if !slices.Equal(warm.Colors(), fresh.Colors()) {
						t.Fatalf("epoch %d: warm and fresh colorings diverge", epoch)
					}
					if !slices.Equal(warmRep.Recolored, freshRep.Recolored) {
						t.Fatalf("epoch %d: recolored sets diverge: %v vs %v", epoch, warmRep.Recolored, freshRep.Recolored)
					}
					if warmRep.Metrics != freshRep.Metrics {
						t.Fatalf("epoch %d: metrics diverge:\nwarm  %+v\nfresh %+v", epoch, warmRep.Metrics, freshRep.Metrics)
					}
					fresh.Close()
				}
			})
		}
	}
}

// TestRepairWarmKernelReuse pins the no-Rebind path: one global-mode session
// repairing many corruption rounds on one warm kernel stays byte-identical
// to fresh per-round sessions — without ever rebuilding its engine.
func TestRepairWarmKernelReuse(t *testing.T) {
	g := graph.GNPWithAverageDegree(250, 7, 11)
	colors := greedyD2(g)
	warm := NewSession(g, colors, Options{Mode: ModeGlobal})
	defer warm.Close()
	in := fault.NewInjector(5)
	for round := 0; round < 5; round++ {
		victims := in.CorruptColors(g, warm.colors, 5, fault.TargetConflictDense, 0)
		snapshot := slices.Clone(warm.Colors())
		seed := uint64(round)

		rep, err := warm.Repair(victims, seed)
		if err != nil {
			t.Fatal(err)
		}
		fresh := NewSession(g, snapshot, Options{Mode: ModeGlobal})
		freshRep, err := fresh.Repair(victims, seed)
		if err != nil {
			t.Fatal(err)
		}
		if !slices.Equal(warm.Colors(), fresh.Colors()) {
			t.Fatalf("round %d: warm kernel diverged from fresh", round)
		}
		if !slices.Equal(rep.Recolored, freshRep.Recolored) || rep.Metrics != freshRep.Metrics {
			t.Fatalf("round %d: warm transcript diverged from fresh", round)
		}
		fresh.Close()
		requireValidComplete(t, g, warm.Colors())
	}
}

// TestChurnStabilize drives overlay churn scripts — edge inserts and
// deletes, node arrivals and departures — through Compact and Rebind, then
// lets the self-stabilization loop detect and absorb the damage, across
// families and seeds.
func TestChurnStabilize(t *testing.T) {
	families := []struct {
		name string
		g    *graph.Graph
	}{
		{"gnp", graph.GNPWithAverageDegree(200, 6, 3)},
		{"unitdisk", graph.UnitDisk(150, 0.14, 5)},
	}
	for _, fam := range families {
		for _, seed := range []uint64{1, 42} {
			t.Run(fmt.Sprintf("%s/seed%d", fam.name, seed), func(t *testing.T) {
				g := fam.g
				colors := greedyD2(g)
				s := NewSession(g, colors, Options{})
				defer s.Close()
				in := fault.NewInjector(seed)
				for epoch := 0; epoch < 3; epoch++ {
					o := graph.NewOverlay(g)
					in.InsertRandomEdges(o, 12)
					in.DeleteRandomEdges(o, 8)
					in.AddWiredNode(o, 3)
					removed, _, _ := in.RemoveRandomNode(o)
					g = o.Compact()

					// Carry colors across the compaction: IDs are preserved,
					// new nodes arrive uncolored, departed nodes are wiped.
					next := coloring.New(g.NumNodes())
					for v := range next {
						if v < len(s.Colors()) && graph.NodeID(v) != removed {
							next[v] = s.Colors()[v]
						} else {
							next[v] = coloring.Uncolored
						}
					}
					s.Rebind(g, next)
					reports, err := s.Stabilize(seed+uint64(epoch), 0)
					if err != nil {
						t.Fatalf("epoch %d: %v", epoch, err)
					}
					requireValidComplete(t, g, s.Colors())
					if len(reports) > 1 {
						t.Errorf("epoch %d: fault-free stabilization took %d iterations, want <= 1", epoch, len(reports))
					}
				}
			})
		}
	}
}

// TestStabilizeUnderMessageLoss: repair runs themselves execute on a lossy
// network (bounded phases per iteration), and the stabilization loop still
// converges to a valid complete coloring.
func TestStabilizeUnderMessageLoss(t *testing.T) {
	g := graph.GNPWithAverageDegree(200, 6, 7)
	corrupt := greedyD2(g)
	victims := fault.NewInjector(3).CorruptColors(g, corrupt, 15, fault.TargetUniform, 0)
	if len(victims) != 15 {
		t.Fatalf("fixture: got %d victims", len(victims))
	}
	s := NewSession(g, corrupt, Options{
		MaxPhases: 6,
		Faults:    &fault.DropPlan{Seed: 8, P: 0.05},
	})
	defer s.Close()
	reports, err := s.Stabilize(21, 16)
	if err != nil {
		t.Fatal(err)
	}
	requireValidComplete(t, g, s.Colors())
	t.Logf("stabilized in %d iterations under 5%% message loss", len(reports))
}

func TestRepairEdgeCases(t *testing.T) {
	g := graph.Path(6)
	colors := greedyD2(g)
	s := NewSession(g, colors, Options{})
	defer s.Close()
	rep, err := s.Repair(nil, 1)
	if err != nil || !rep.Complete || rep.Dirty != 0 {
		t.Fatalf("empty dirty set: rep=%+v err=%v", rep, err)
	}
	if _, err := s.Repair([]graph.NodeID{99}, 1); err == nil {
		t.Fatal("out-of-range dirty node was accepted")
	}
	// Duplicates collapse.
	rep, err = s.Repair([]graph.NodeID{2, 2, 2}, 1)
	if err != nil || rep.Dirty != 1 {
		t.Fatalf("duplicated dirty node: rep=%+v err=%v", rep, err)
	}
	requireValidComplete(t, g, s.Colors())
}

// TestRepairLocalityGate is the acceptance gate: on a sparse 10⁵-node graph
// with 100 adversarially corrupted colors, incremental repair must stay
// local (locality ratio ≤ 2×, and in fact recolors only dirty nodes) and
// complete in < 5% of the wall time of a full rerun of the relaxed
// (1+ε)Δ²-palette baseline; the whole pipeline must be byte-deterministic
// per seed across two runs.
func TestRepairLocalityGate(t *testing.T) {
	if testing.Short() {
		t.Skip("locality gate runs the full 10⁵-node scenario; skipped in -short")
	}
	const n = 100_000
	g := graph.GNPWithAverageDegree(n, 8, 17)
	base, err := baseline.RelaxedD2(g, baseline.Options{Epsilon: 1, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}

	type outcome struct {
		victims   []graph.NodeID
		recolored []graph.NodeID
		colors    coloring.Coloring
		locality  float64
		ball      int
		wall      time.Duration
	}
	runOnce := func() outcome {
		corrupt := slices.Clone(base.Coloring)
		victims := fault.NewInjector(23).CorruptColors(g, corrupt, 100, fault.TargetConflictDense, 0)
		s := NewSession(g, corrupt, Options{})
		defer s.Close()
		start := time.Now()
		rep, err := s.Repair(victims, 9)
		wall := time.Since(start)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Complete {
			t.Fatal("gate repair incomplete")
		}
		return outcome{victims, rep.Recolored, slices.Clone(s.Colors()), rep.Locality, rep.Ball, wall}
	}

	first := runOnce()
	second := runOnce()

	// Determinism: byte-identical dirty sets and repair transcripts.
	if !slices.Equal(first.victims, second.victims) {
		t.Fatal("fault injector dirty sets diverge across two same-seed runs")
	}
	if !slices.Equal(first.recolored, second.recolored) || !slices.Equal(first.colors, second.colors) {
		t.Fatal("repair transcripts diverge across two same-seed runs")
	}

	// Locality: the repair touches O(dirty d2-ball) nodes.
	if first.locality > 2.0 {
		t.Fatalf("locality ratio %.3f exceeds the 2x gate", first.locality)
	}
	if len(first.recolored) > len(first.victims) {
		t.Fatalf("recolored %d nodes for %d dirty — repair escaped the dirty set", len(first.recolored), len(first.victims))
	}
	if rep := verify.CheckD2(g, first.colors, 0); !rep.Valid {
		t.Fatalf("gate repair produced an invalid coloring: %v", rep.Error())
	}

	// Wall time: < 5% of a full rerun of the relaxed baseline.
	start := time.Now()
	if _, err := baseline.RelaxedD2(g, baseline.Options{Epsilon: 1, Seed: 9}); err != nil {
		t.Fatal(err)
	}
	rerun := time.Since(start)
	repairWall := min(first.wall, second.wall)
	t.Logf("gate: ball=%d locality=%.4f repair=%v rerun=%v ratio=%.2f%%",
		first.ball, first.locality, repairWall, rerun, 100*float64(repairWall)/float64(rerun))
	if float64(repairWall) >= 0.05*float64(rerun) {
		// The wall-clock half of the gate hard-fails only where the run owns
		// the machine (the dedicated CI job sets D2_REPAIR_GATE=1), mirroring
		// the multicore and memory gates: a loaded developer machine must
		// never flake a local sweep. Locality, determinism and validity above
		// are timing-free and always enforced.
		if os.Getenv("D2_REPAIR_GATE") != "" {
			t.Fatalf("repair took %v, not < 5%% of the %v full rerun", repairWall, rerun)
		}
		t.Logf("advisory: repair %v is not < 5%% of the %v rerun (set D2_REPAIR_GATE=1 to enforce)", repairWall, rerun)
	}
}

func BenchmarkRepairCorrupt(b *testing.B) {
	g := graph.GNPWithAverageDegree(20_000, 8, 13)
	base := greedyD2(g)
	for _, mode := range []Mode{ModeLocal, ModeGlobal} {
		b.Run(mode.String(), func(b *testing.B) {
			corrupt := slices.Clone(base)
			victims := fault.NewInjector(23).CorruptColors(g, corrupt, 20, fault.TargetConflictDense, 0)
			s := NewSession(g, corrupt, Options{Mode: mode})
			defer s.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Repair(victims, uint64(i)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkChurnEpoch(b *testing.B) {
	g0 := graph.GNPWithAverageDegree(20_000, 8, 13)
	base := greedyD2(g0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s := NewSession(g0, base, Options{})
		in := fault.NewInjector(uint64(i))
		b.StartTimer()
		o := graph.NewOverlay(g0)
		in.InsertRandomEdges(o, 50)
		in.DeleteRandomEdges(o, 50)
		g := o.Compact()
		next := coloring.New(g.NumNodes())
		copy(next, s.Colors())
		s.Rebind(g, next)
		if _, err := s.Stabilize(uint64(i), 0); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		s.Close()
		b.StartTimer()
	}
}
