// Package repair is the incremental side of the robustness plane: given a
// set of dirty nodes — corrupted by a fault injector, invalidated by churn,
// or flagged by the verifier's conflict-node scan — it recolors only the
// affected distance-2 neighborhoods instead of rerunning a full coloring.
//
// The kernel rests on one locality fact. Let D be the dirty set and
// B = N²[D] its closed distance-2 ball. Uncoloring exactly D and re-running
// the trial primitive confined to B is indistinguishable, for every dirty
// node, from running it on the whole graph: a dirty node's proposal is
// answered by its neighbors (⊆ N[D] ⊆ B), and each answerer's veto knowledge
// covers all its own neighbors, which sit within distance 2 of D and hence
// inside B as well. Nodes outside B can therefore be frozen wholesale — they
// neither step nor receive — and the repaired coloring is valid by the same
// argument that makes the trial primitive correct globally.
//
// Two execution modes realize the confinement (byte-different but both
// valid; fixed colors outside the dirty set are never touched in either):
//
//   - ModeLocal extracts the induced subgraph G[B] and runs a fresh trial
//     kernel on it — O(|B|) work per phase after one O(n + m) extraction,
//     the fastest path when balls are small (the repair-locality gate's
//     regime).
//   - ModeGlobal reuses the session's warm full-graph trial kernel — and
//     through it a warm congest.Engine via Reset — with an activation mask
//     confining the run to B. Nothing is rebuilt between repairs, the
//     reuse machinery the engine was designed for.
//
// Both modes report rounds, messages, and the exact recolored-node set, and
// both are deterministic per seed: a warm session and a freshly built one
// produce byte-identical repairs (the property suite pins this).
package repair

import (
	"fmt"
	"slices"

	"d2color/internal/coloring"
	"d2color/internal/congest"
	"d2color/internal/graph"
	"d2color/internal/trial"
	"d2color/internal/verify"
)

// Mode selects how a repair run is confined to the dirty ball.
type Mode int

const (
	// ModeLocal runs a fresh trial kernel on the induced subgraph of the
	// ball. Cheapest when |ball| ≪ n.
	ModeLocal Mode = iota
	// ModeGlobal runs the session's warm full-graph kernel under a
	// partial-activation mask covering the ball, reusing the warm
	// congest.Engine via Reset.
	ModeGlobal
)

func (m Mode) String() string {
	if m == ModeGlobal {
		return "global"
	}
	return "local"
}

// Options configures a Session.
type Options struct {
	// Palette is the repair palette [0, Palette); 0 means Δ²+1 for the
	// session's graph — large enough that a dirty node always has a free
	// color no matter what fixed colors surround it.
	Palette int
	// Mode selects local-subgraph or warm-global confinement.
	Mode Mode
	// Parallel runs the underlying trial kernels on the sharded engine
	// (byte-identical results either way).
	Parallel bool
	// Workers bounds the sharded engine's pool; 0 means GOMAXPROCS.
	Workers int
	// MaxPhases bounds each repair run; 0 means run to completion (with the
	// trial package's phase-cap backstop).
	MaxPhases int
	// Faults is an optional fault model installed for repair runs — repair
	// itself can be exercised under message loss and crashes. Incomplete
	// repairs then simply report Complete == false; Stabilize loops until
	// the coloring is clean anyway.
	Faults congest.FaultModel
	// Cancel is an optional cooperative cancellation hook threaded into every
	// kernel the session drives: the trial configs of both repair modes (so a
	// confined run stops within O(one simulated round)), the conflict-scan
	// checker, and Stabilize's iteration loop. A canceled call returns
	// trial.ErrCanceled (wrapped); the session itself stays fully usable —
	// the working coloring simply keeps whatever the interrupted run had
	// committed, which is always a valid partial state (colors are only ever
	// written after a run finishes its read-back). nil disables polling.
	Cancel func() bool
	// ScratchReports makes Repair reuse one session-owned buffer for
	// Report.Recolored instead of allocating a fresh slice per call: the
	// returned slice is then valid only until the next Repair on this
	// session. Combined with ModeGlobal this makes the warm steady-state
	// repair path allocation-free — the serving plane's recolor requests
	// run with it on. Off by default: callers that retain reports across
	// calls (Stabilize's per-iteration list, cross-run comparisons) keep
	// the safe copying behavior.
	ScratchReports bool
}

// Report describes one repair run.
type Report struct {
	// Dirty is the number of distinct dirty nodes after deduplication.
	Dirty int
	// Ball is |N²[D]|, the closed distance-2 ball of the dirty set — the
	// region the run was confined to.
	Ball int
	// Recolored lists, ascending, exactly the nodes whose color changed
	// (including formerly uncolored nodes that got a color). Always a
	// subset of the dirty set: fixed nodes are never touched.
	Recolored []graph.NodeID
	// Phases and Rounds are the trial phases executed and the simulated
	// rounds they cost (3 per phase).
	Phases int
	Rounds int
	// Metrics is the engine's message/bandwidth accounting for the run.
	Metrics congest.Metrics
	// Complete reports whether every dirty node ended up colored. False is
	// possible only under an explicit MaxPhases bound or injected faults.
	Complete bool
	// Locality is |Recolored| / |Ball| — the fraction of the affected
	// region the repair actually rewrote (0 for an empty ball). The
	// experiment plane's repair-locality column.
	Locality float64
}

// Session is a reusable repair kernel bound to one graph and one working
// coloring. The working coloring is owned by the session (NewSession
// copies); Colors exposes it, Repair and Stabilize mutate it in place.
// Sessions keep their scratch (ball marks, masks, the warm global kernel)
// across calls, so steady-state churn repair stops allocating. Not safe for
// concurrent use.
type Session struct {
	g       *graph.Graph
	colors  coloring.Coloring
	opts    Options
	palette int

	runner  *trial.Runner // ModeGlobal's warm kernel, built on first use
	checker *verify.Checker

	ballMark  *graph.MarkSet
	dirtyMark *graph.MarkSet
	dirty     []graph.NodeID
	ball      []graph.NodeID
	oldColors []int          // pre-repair colors of the ball, index-aligned with ball
	recolored []graph.NodeID // Report.Recolored scratch under Options.ScratchReports

	// ModeGlobal scratch.
	active  []bool
	initial coloring.Coloring
	// ModeLocal scratch.
	keep []bool
}

// NewSession builds a repair session for g starting from colors (copied, so
// the caller's slice is never mutated). colors may be partial; uncolored
// nodes are simply candidates for future dirty sets. It panics if colors and
// g disagree on the node count.
func NewSession(g *graph.Graph, colors coloring.Coloring, opts Options) *Session {
	n := g.NumNodes()
	if len(colors) != n {
		panic(fmt.Sprintf("repair: coloring has %d entries for %d nodes", len(colors), n))
	}
	s := &Session{opts: opts, checker: verify.NewChecker()}
	s.checker.SetCancel(opts.Cancel)
	s.bind(g, colors)
	return s
}

// canceled reports whether the session's cancellation hook has fired.
func (s *Session) canceled() bool { return s.opts.Cancel != nil && s.opts.Cancel() }

func (s *Session) bind(g *graph.Graph, colors coloring.Coloring) {
	s.g = g
	s.colors = slices.Clone(colors)
	s.palette = s.opts.Palette
	if s.palette <= 0 {
		d := g.MaxDegree()
		s.palette = d*d + 1
	}
	s.ballMark = graph.NewMarkSet(g.NumNodes())
	s.dirtyMark = graph.NewMarkSet(g.NumNodes())
	if s.runner != nil {
		s.runner.Close()
		s.runner = nil
	}
	s.active = nil
	s.initial = nil
	s.keep = nil
}

// Rebind points the session at a new topology and working coloring — the
// post-Compact step of a churn epoch, where the overlay's deltas were folded
// into a fresh CSR. All topology-bound scratch (including the warm global
// kernel) is dropped and rebuilt on demand.
func (s *Session) Rebind(g *graph.Graph, colors coloring.Coloring) {
	if len(colors) != g.NumNodes() {
		panic(fmt.Sprintf("repair: coloring has %d entries for %d nodes", len(colors), g.NumNodes()))
	}
	s.bind(g, colors)
}

// Close releases the warm global kernel (if one was built). The session must
// not be used afterwards.
func (s *Session) Close() {
	if s.runner != nil {
		s.runner.Close()
		s.runner = nil
	}
}

// Graph returns the session's current topology.
func (s *Session) Graph() *graph.Graph { return s.g }

// Colors returns the session's working coloring — the live slice, not a
// copy; treat it as read-only between repair calls.
func (s *Session) Colors() coloring.Coloring { return s.colors }

// Palette returns the session's effective repair palette size.
func (s *Session) Palette() int { return s.palette }

// Conflicts returns the current distance-2 conflict-node set of the working
// coloring, sorted ascending — the detection half of the stabilization loop.
func (s *Session) Conflicts() []graph.NodeID {
	return s.checker.AppendConflictNodesD2(s.g, s.colors, nil)
}

// Repair uncolors the dirty nodes and recolors them confined to their
// distance-2 ball, leaving every other node's color untouched. dirty may
// contain duplicates and uncolored nodes (churn introduces both); it is not
// modified. Nodes out of range are an error. An empty (or nil) dirty set is
// a no-op reporting Complete.
func (s *Session) Repair(dirty []graph.NodeID, seed uint64) (Report, error) {
	n := s.g.NumNodes()
	s.dirtyMark.Reset()
	s.dirty = s.dirty[:0]
	for _, v := range dirty {
		if v < 0 || int(v) >= n {
			return Report{}, fmt.Errorf("repair: dirty node %d out of range [0, %d)", v, n)
		}
		if s.dirtyMark.Add(v) {
			s.dirty = append(s.dirty, v)
		}
	}
	if len(s.dirty) == 0 {
		return Report{Complete: true}, nil
	}
	if s.canceled() {
		return Report{}, fmt.Errorf("repair: %w", trial.ErrCanceled)
	}
	slices.Sort(s.dirty)

	// The ball B = N²[D]: the dirty nodes, their neighbors, and their
	// neighbors' neighbors — exactly the set of nodes whose participation
	// the dirty trials can observe.
	s.ballMark.Reset()
	s.ball = s.ball[:0]
	for _, d := range s.dirty {
		if s.ballMark.Add(d) {
			s.ball = append(s.ball, d)
		}
		for _, u := range s.g.Neighbors(d) {
			if s.ballMark.Add(u) {
				s.ball = append(s.ball, u)
			}
			for _, w := range s.g.Neighbors(u) {
				if s.ballMark.Add(w) {
					s.ball = append(s.ball, w)
				}
			}
		}
	}
	slices.Sort(s.ball)
	s.oldColors = s.oldColors[:0]
	for _, v := range s.ball {
		s.oldColors = append(s.oldColors, s.colors[v])
	}

	var (
		res Report
		err error
	)
	if s.opts.Mode == ModeGlobal {
		res, err = s.repairGlobal(seed)
	} else {
		res, err = s.repairLocal(seed)
	}
	if err != nil {
		return Report{}, err
	}

	res.Dirty = len(s.dirty)
	res.Ball = len(s.ball)
	if s.opts.ScratchReports {
		res.Recolored = s.recolored[:0]
	}
	for i, v := range s.ball {
		if s.colors[v] != s.oldColors[i] {
			res.Recolored = append(res.Recolored, v)
		}
	}
	if s.opts.ScratchReports {
		s.recolored = res.Recolored
	}
	if res.Ball > 0 {
		res.Locality = float64(len(res.Recolored)) / float64(res.Ball)
	}
	return res, nil
}

// repairLocal extracts G[N[D]] — just the dirty nodes and their direct
// neighbors — and runs a fresh trial kernel on it to completion. The rest of
// the ball never enters the subgraph: its only role is color context for the
// answerers, which preloaded knowledge supplies instead (Initial colors are
// pre-announced, and each boundary node carries the colors of its
// out-of-subgraph neighbors via ExtraKnown). Correctness is the package-doc
// ball argument one step tighter: every answerer of a dirty proposal is in
// N[D], every common neighbor of two dirty nodes is in N[D], and every veto
// an answerer could base on an N²[D]-boundary color is preserved verbatim in
// its preloaded known set.
func (s *Session) repairLocal(seed uint64) (Report, error) {
	n := s.g.NumNodes()
	if s.keep == nil {
		s.keep = make([]bool, n)
	} else {
		clear(s.keep)
	}
	for _, d := range s.dirty {
		s.keep[d] = true
		for _, u := range s.g.Neighbors(d) {
			s.keep[u] = true
		}
	}
	sub, newToOld := s.g.InducedSubgraph(s.keep)
	initial := coloring.New(sub.NumNodes())
	extra := make([][]int32, sub.NumNodes())
	for i, orig := range newToOld {
		if s.dirtyMark.Contains(orig) {
			initial[i] = coloring.Uncolored
			continue // a dirty node's full neighborhood is in the subgraph
		}
		initial[i] = s.colors[orig]
		for _, w := range s.g.Neighbors(orig) {
			if !s.keep[w] && s.colors[w] != coloring.Uncolored {
				extra[i] = append(extra[i], int32(s.colors[w]))
			}
		}
	}
	r := trial.NewRunner(sub, s.opts.Parallel, s.opts.Workers)
	defer r.Close()
	res, err := r.Run(trial.Config{
		PaletteSize:    s.palette,
		Scope:          trial.ScopeDistance2,
		MaxPhases:      s.opts.MaxPhases,
		Seed:           seed,
		Initial:        initial,
		PreloadInitial: true,
		ExtraKnown:     extra,
		Faults:         s.opts.Faults,
		Cancel:         s.opts.Cancel,
	})
	if err != nil {
		return Report{}, err
	}
	for i, orig := range newToOld {
		if s.dirtyMark.Contains(orig) {
			s.colors[orig] = res.Coloring[i]
		}
	}
	return Report{
		Phases:   res.Phases,
		Rounds:   res.Metrics.Rounds,
		Metrics:  res.Metrics,
		Complete: res.Complete,
	}, nil
}

// repairGlobal runs the warm full-graph kernel under an activation mask
// covering the ball; everything outside is frozen.
func (s *Session) repairGlobal(seed uint64) (Report, error) {
	if s.runner == nil {
		s.runner = trial.NewRunner(s.g, s.opts.Parallel, s.opts.Workers)
	}
	n := s.g.NumNodes()
	if s.active == nil {
		s.active = make([]bool, n)
		s.initial = coloring.New(n)
	}
	clear(s.active)
	for _, v := range s.ball {
		s.active[v] = true
	}
	copy(s.initial, s.colors)
	for _, d := range s.dirty {
		s.initial[d] = coloring.Uncolored
	}
	// Start + RunPhases + Color read-back instead of Run: Finish would
	// materialize a full fresh coloring per call just so the dirty handful
	// can be copied out of it. Reading the kernel's flat color array
	// directly keeps the warm steady-state repair path allocation-free.
	if err := s.runner.Start(trial.Config{
		PaletteSize: s.palette,
		Scope:       trial.ScopeDistance2,
		MaxPhases:   s.opts.MaxPhases,
		Seed:        seed,
		Initial:     s.initial,
		Active:      s.active,
		Faults:      s.opts.Faults,
		Cancel:      s.opts.Cancel,
	}); err != nil {
		return Report{}, err
	}
	if err := s.runner.RunPhases(); err != nil {
		return Report{}, err
	}
	// A masked run leaves frozen uncolored nodes uncolored; completeness of
	// the *repair* is about the dirty set.
	complete := true
	for _, d := range s.dirty {
		s.colors[d] = s.runner.Color(d)
		if s.colors[d] == coloring.Uncolored {
			complete = false
		}
	}
	m := s.runner.Metrics()
	return Report{
		Phases:   s.runner.Phases(),
		Rounds:   m.Rounds,
		Metrics:  m,
		Complete: complete,
	}, nil
}

// RepairConflicts detects the current conflict-node set and repairs it —
// detection-seeded repair, the common churn-epoch step. Uncolored nodes are
// not conflicts; pass them to Repair explicitly (or use Stabilize, which
// sweeps both).
func (s *Session) RepairConflicts(seed uint64) (Report, error) {
	return s.Repair(s.Conflicts(), seed)
}

// Stabilize runs the self-stabilization loop: detect every conflicting or
// uncolored node, repair, repeat until the coloring is complete and
// conflict-free or maxIters repairs have run (maxIters <= 0 means 16). Under
// a fault-free configuration one iteration always suffices — uncoloring
// every conflict node makes the trial recolor them validly — so extra
// iterations only occur under injected loss. Returns one Report per
// iteration; err is non-nil if the loop exhausted maxIters while still
// unstable.
func (s *Session) Stabilize(seed uint64, maxIters int) ([]Report, error) {
	if maxIters <= 0 {
		maxIters = 16
	}
	var reports []Report
	var dirty []graph.NodeID
	for iter := 0; iter < maxIters; iter++ {
		if s.canceled() {
			return reports, fmt.Errorf("repair: stabilize %w", trial.ErrCanceled)
		}
		dirty = s.checker.AppendConflictNodesD2(s.g, s.colors, dirty[:0])
		// Sweep in uncolored nodes: self-stabilization must also finish
		// nodes that churn or loss left colorless.
		withUncolored := dirty
		for v := 0; v < s.g.NumNodes(); v++ {
			if s.colors[v] == coloring.Uncolored {
				withUncolored = append(withUncolored, graph.NodeID(v))
			}
		}
		if len(withUncolored) == 0 {
			return reports, nil
		}
		rep, err := s.Repair(withUncolored, seed+uint64(iter))
		if err != nil {
			return reports, err
		}
		reports = append(reports, rep)
	}
	if dirty = s.checker.AppendConflictNodesD2(s.g, s.colors, dirty[:0]); len(dirty) == 0 {
		complete := true
		for _, c := range s.colors {
			if c == coloring.Uncolored {
				complete = false
				break
			}
		}
		if complete {
			return reports, nil
		}
	}
	return reports, fmt.Errorf("repair: still unstable after %d iterations (%d conflict nodes)", maxIters, len(dirty))
}
