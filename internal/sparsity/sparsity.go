// Package sparsity computes the structural quantities that drive the
// analysis of the randomized algorithm (Section 2.4 of the paper): the
// sparsity ζ of a node's distance-2 neighborhood, and the slack / leeway of a
// node with respect to a partial coloring.
//
// These quantities are never used by the distributed algorithms themselves
// (the paper stresses that nodes do not know their leeway); they exist for
// analysis, tests, and experiment E9, which validates the slack-generation
// claim of Proposition 2.5 / Observation 1.
package sparsity

import (
	"d2color/internal/coloring"
	"d2color/internal/graph"
)

// Sparsity returns ζ(v), defined (Definition 2.4) by
//
//	|E(G²[v])| = C(Δ², 2) − Δ² · ζ(v),
//
// i.e. ζ(v) = (C(Δ²,2) − |E(G²[v])|) / Δ², where G²[v] is the subgraph of G²
// induced by the distance-2 neighbors of v and Δ is the maximum degree of G.
// The value lies in [0, (Δ²−1)/2]. It is 0 exactly when the d2-neighborhood
// of v is a clique of size Δ².
//
// sq must be the square graph g.Square(); passing it in avoids recomputing it
// per call. delta is the maximum degree Δ of the base graph.
func Sparsity(g *graph.Graph, sq *graph.Graph, delta int, v graph.NodeID) float64 {
	d2 := delta * delta
	if d2 == 0 {
		return 0
	}
	nbrs := sq.Neighbors(v)
	inNbr := make(map[graph.NodeID]struct{}, len(nbrs))
	for _, u := range nbrs {
		inNbr[u] = struct{}{}
	}
	edges := 0
	for _, u := range nbrs {
		for _, w := range sq.Neighbors(u) {
			if w <= u {
				continue
			}
			if _, ok := inNbr[w]; ok {
				edges++
			}
		}
	}
	full := float64(d2) * float64(d2-1) / 2
	zeta := (full - float64(edges)) / float64(d2)
	if zeta < 0 {
		return 0
	}
	return zeta
}

// AllSparsities returns ζ(v) for every node.
func AllSparsities(g *graph.Graph, sq *graph.Graph, delta int) []float64 {
	out := make([]float64, g.NumNodes())
	for v := 0; v < g.NumNodes(); v++ {
		out[v] = Sparsity(g, sq, delta, graph.NodeID(v))
	}
	return out
}

// Leeway returns the leeway of v under the partial coloring c: the number of
// colors of the palette [0, paletteSize) that are not used among the
// distance-2 neighbors of v (Section 2, "Notation").
func Leeway(sq *graph.Graph, c coloring.Coloring, paletteSize int, v graph.NodeID) int {
	used := make(map[int]struct{})
	for _, u := range sq.Neighbors(v) {
		if col := c[u]; col != coloring.Uncolored && col >= 0 && col < paletteSize {
			used[col] = struct{}{}
		}
	}
	return paletteSize - len(used)
}

// Slack returns the slack of v: leeway minus the number of live (uncolored)
// distance-2 neighbors. A node has slack q when the number of distinct colors
// of d2-neighbors plus the number of live d2-neighbors equals paletteSize − q.
func Slack(sq *graph.Graph, c coloring.Coloring, paletteSize int, v graph.NodeID) int {
	live := 0
	used := make(map[int]struct{})
	for _, u := range sq.Neighbors(v) {
		col := c[u]
		if col == coloring.Uncolored {
			live++
			continue
		}
		if col >= 0 && col < paletteSize {
			used[col] = struct{}{}
		}
	}
	return paletteSize - len(used) - live
}

// LiveD2Neighbors returns the number of uncolored distance-2 neighbors of v.
func LiveD2Neighbors(sq *graph.Graph, c coloring.Coloring, v graph.NodeID) int {
	live := 0
	for _, u := range sq.Neighbors(v) {
		if c[u] == coloring.Uncolored {
			live++
		}
	}
	return live
}

// IsSolid reports whether v is solid in the sense of Definition 2.4: its
// leeway is at most c1·Δ² and its sparsity is at most 4e³ times its leeway.
// c1 is passed in because the algorithm parameters expose it.
func IsSolid(g *graph.Graph, sq *graph.Graph, c coloring.Coloring, delta int, c1 float64, v graph.NodeID) bool {
	const fourECubed = 4 * 2.718281828459045 * 2.718281828459045 * 2.718281828459045
	paletteSize := delta*delta + 1
	lw := Leeway(sq, c, paletteSize, v)
	if float64(lw) > c1*float64(delta*delta) {
		return false
	}
	zeta := Sparsity(g, sq, delta, v)
	return zeta <= fourECubed*float64(lw)
}
