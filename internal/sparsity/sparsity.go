// Package sparsity computes the structural quantities that drive the
// analysis of the randomized algorithm (Section 2.4 of the paper): the
// sparsity ζ of a node's distance-2 neighborhood, and the slack / leeway of a
// node with respect to a partial coloring.
//
// These quantities are never used by the distributed algorithms themselves
// (the paper stresses that nodes do not know their leeway); they exist for
// analysis, tests, and experiment E9, which validates the slack-generation
// claim of Proposition 2.5 / Observation 1.
//
// All functions take a *graph.Dist2View and walk the CSR arrays of the base
// graph with pooled mark buffers; the square graph is never materialized.
package sparsity

import (
	"d2color/internal/coloring"
	"d2color/internal/graph"
)

// Sparsity returns ζ(v), defined (Definition 2.4) by
//
//	|E(G²[v])| = C(Δ², 2) − Δ² · ζ(v),
//
// i.e. ζ(v) = (C(Δ²,2) − |E(G²[v])|) / Δ², where G²[v] is the subgraph of G²
// induced by the distance-2 neighbors of v and Δ is the maximum degree of G.
// The value lies in [0, (Δ²−1)/2]. It is 0 exactly when the d2-neighborhood
// of v is a clique of size Δ².
//
// d2 is a streaming view of the base graph; delta is its maximum degree Δ.
func Sparsity(d2 *graph.Dist2View, delta int, v graph.NodeID) float64 {
	return sparsityBuf(d2, graph.NewMarkSet(d2.NumNodes()), nil, delta, v)
}

// sparsityBuf is Sparsity with caller-pooled scratch: in holds the membership
// marks of N_{G²}(v) and buf is reused for the materialized neighbor list
// (AllSparsities amortizes both across all nodes).
func sparsityBuf(d2 *graph.Dist2View, in *graph.MarkSet, buf []graph.NodeID, delta int, v graph.NodeID) float64 {
	dd := delta * delta
	if dd == 0 {
		return 0
	}
	// Materialize N_{G²}(v) once into the caller-owned buffer (the view's
	// stream cannot be nested inside itself), then mark it for membership.
	buf = d2.AppendDist2(buf[:0], v)
	in.Reset()
	for _, u := range buf {
		in.Add(u)
	}
	edges := 0
	for _, u := range buf {
		d2.ForEachDist2(u, func(w graph.NodeID) bool {
			if w > u && in.Contains(w) {
				edges++
			}
			return true
		})
	}
	full := float64(dd) * float64(dd-1) / 2
	zeta := (full - float64(edges)) / float64(dd)
	if zeta < 0 {
		return 0
	}
	return zeta
}

// AllSparsities returns ζ(v) for every node, reusing one mark buffer and one
// neighborhood buffer across the whole pass.
func AllSparsities(d2 *graph.Dist2View, delta int) []float64 {
	n := d2.NumNodes()
	out := make([]float64, n)
	in := graph.NewMarkSet(n)
	buf := make([]graph.NodeID, 0, delta*delta+1)
	for v := 0; v < n; v++ {
		out[v] = sparsityBuf(d2, in, buf, delta, graph.NodeID(v))
	}
	return out
}

// Leeway returns the leeway of v under the partial coloring c: the number of
// colors of the palette [0, paletteSize) that are not used among the
// distance-2 neighbors of v (Section 2, "Notation").
func Leeway(d2 *graph.Dist2View, c coloring.Coloring, paletteSize int, v graph.NodeID) int {
	used := make(map[int]struct{})
	d2.ForEachDist2(v, func(u graph.NodeID) bool {
		if col := c[u]; col != coloring.Uncolored && col >= 0 && col < paletteSize {
			used[col] = struct{}{}
		}
		return true
	})
	return paletteSize - len(used)
}

// Slack returns the slack of v: leeway minus the number of live (uncolored)
// distance-2 neighbors. A node has slack q when the number of distinct colors
// of d2-neighbors plus the number of live d2-neighbors equals paletteSize − q.
func Slack(d2 *graph.Dist2View, c coloring.Coloring, paletteSize int, v graph.NodeID) int {
	live := 0
	used := make(map[int]struct{})
	d2.ForEachDist2(v, func(u graph.NodeID) bool {
		col := c[u]
		if col == coloring.Uncolored {
			live++
			return true
		}
		if col >= 0 && col < paletteSize {
			used[col] = struct{}{}
		}
		return true
	})
	return paletteSize - len(used) - live
}

// LiveD2Neighbors returns the number of uncolored distance-2 neighbors of v.
func LiveD2Neighbors(d2 *graph.Dist2View, c coloring.Coloring, v graph.NodeID) int {
	live := 0
	d2.ForEachDist2(v, func(u graph.NodeID) bool {
		if c[u] == coloring.Uncolored {
			live++
		}
		return true
	})
	return live
}

// IsSolid reports whether v is solid in the sense of Definition 2.4: its
// leeway is at most c1·Δ² and its sparsity is at most 4e³ times its leeway.
// c1 is passed in because the algorithm parameters expose it.
func IsSolid(d2 *graph.Dist2View, c coloring.Coloring, delta int, c1 float64, v graph.NodeID) bool {
	const fourECubed = 4 * 2.718281828459045 * 2.718281828459045 * 2.718281828459045
	paletteSize := delta*delta + 1
	lw := Leeway(d2, c, paletteSize, v)
	if float64(lw) > c1*float64(delta*delta) {
		return false
	}
	zeta := Sparsity(d2, delta, v)
	return zeta <= fourECubed*float64(lw)
}
